(* Fixture: polymorphic comparison operators on protocol-typed operands. *)
let is_start l = l = Lsn.none
let stale e = e <> Epoch.initial
let third_wins b = compare (Txn_id.of_int 3) b > 0
let newest a = max a (Lsn.of_int 9)
let oldest a b = min (a : Lsn.t) b
