(* Fixture: one use of each identifier family the determinism rule bans. *)
let now () = Unix.gettimeofday ()
let cpu () = Sys.time ()
let roll () = Random.int 6
let digest x = Hashtbl.hash x
let qualified x = Stdlib.Random.float x
