(* Fixture: the disciplined versions of everything the bad fixtures do.
   Linted under a logical path where every expression rule is active; must
   produce zero findings. *)
let is_start l = Lsn.equal l Lsn.none
let stale e = not (Epoch.equal e Epoch.initial)
let order a b = Epoch.compare a b
let newest a b = Lsn.max a b
let bump l = Lsn.add l 1
let lag a b = Lsn.diff a b
let render tbl = Stable.sorted_bindings ~cmp:String.compare tbl
