(* Fixture: hash-order iteration in an output-feeding module. *)
let dump tbl = Hashtbl.iter (fun k v -> Printf.printf "%s=%d\n" k v) tbl
let pairs tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
