(* Sim-state purity fixtures: [naked] has neither a reset hook nor an
   annotation (the one expected finding); [covered] is cleared by a
   registered hook; [blessed] carries [@@sim_global]. *)

let naked : (int, int) Hashtbl.t = Hashtbl.create 8
let covered : (int, int) Hashtbl.t = Hashtbl.create 8
let blessed = ref 0 [@@sim_global]
let () =
  Simcore.Reset.register ~name:"tf_global" (fun () -> Hashtbl.reset covered)
let bump k = Hashtbl.replace naked k (k + 1)
let peek () = !blessed
