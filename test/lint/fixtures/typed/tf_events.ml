(* Event-emission fixture: [Seen] is built by [Tf_emitter]; [Ignored] is
   only ever built inside this defining module, which the emit rule must
   not count as coverage. *)

type t =
  | Seen of int
  | Ignored of int

let local = Ignored 0
let tag = function Seen n -> n | Ignored n -> n
