(* Builds [Tf_events.Seen] from outside the defining module, which is what
   counts as emission coverage for that constructor. *)

let note n = Tf_events.Seen n
