(* Hot-path allocation fixtures.  [entry] is registered as a hot root by
   the test config; the tuple in [helper] and the blocklisted
   [string_of_int] in [shout] are both reachable from it only through the
   call graph.  [entry_ok] reaches nothing but the [@@alloc_ok]-annotated
   [blessed], so it must stay finding-free. *)

let helper x = (x, x + 1)
let middle x = fst (helper x)
let shout x = string_of_int x
let entry x = String.length (shout (middle x))
let blessed x = [ x ] [@@alloc_ok "fixture: deliberate and annotated"]
let entry_ok x = List.hd (blessed x)
