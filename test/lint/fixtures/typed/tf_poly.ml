(* Typed poly-compare fixture: polymorphic equality at [Wal.Lsn.t] must be
   flagged even with no syntactic module hint at the call site; the int
   comparison in [good] must not be. *)

let bad (a : Wal.Lsn.t) b = a = b
let good a b = Wal.Lsn.compare a b = 0
