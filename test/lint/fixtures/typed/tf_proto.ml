(* Protocol-coverage fixture: [describe] handles [Ping] explicitly but
   hides [Pong] and [Ack] behind a wildcard — exactly the rot the
   describe-coverage rule exists to reject. *)

type t =
  | Ping
  | Pong
  | Ack

let describe = function
  | Ping -> "ping"
  | _ -> "opaque"
