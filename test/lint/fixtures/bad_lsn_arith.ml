(* Fixture: raw integer arithmetic on LSN-carrying values. *)
let bump l = Lsn.to_int l + 1
let gap a b = Lsn.to_int a - Lsn.to_int b
let scaled n l = n * Lsn.to_int l
