(* Tests for the aurora_lint engine: one fixture per rule asserting the
   exact expected findings, a clean-fixture negative test, scope/allowlist
   behaviour, baseline round-trips, and a meta-test running the linter over
   the real tree (the same check `dune build @lint` enforces). *)

let read_fixture name =
  let ic = open_in_bin (Filename.concat "fixtures" name) in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Lint a fixture as if it lived at [path], so rule scoping applies. *)
let lint_as ~path name = Lint.Engine.lint_source ~path (read_fixture name)

(* (rule, line, col) triples, the part of a finding fixtures pin down. *)
let shape (f : Lint.Finding.t) = (f.rule, f.line, f.col)

let check_shapes msg expected findings =
  Alcotest.(check (list (triple string int int)))
    msg expected (List.map shape findings)

(* -- one fixture per rule ------------------------------------------------ *)

let test_determinism () =
  let fs = lint_as ~path:"lib/fake/bad_determinism.ml" "bad_determinism.ml" in
  check_shapes "five banned identifiers"
    [
      ("determinism", 2, 13);
      ("determinism", 3, 13);
      ("determinism", 4, 14);
      ("determinism", 5, 15);
      ("determinism", 6, 18);
    ]
    fs

let test_stable_iteration () =
  let fs =
    lint_as ~path:"lib/obs/bad_stable_iteration.ml" "bad_stable_iteration.ml"
  in
  check_shapes "iter and fold both flagged"
    [ ("stable-iteration", 2, 15); ("stable-iteration", 3, 16) ]
    fs

let test_poly_compare () =
  let fs =
    lint_as ~path:"lib/fake/bad_poly_compare.ml" "bad_poly_compare.ml"
  in
  check_shapes "=, <>, compare, max, and constrained min all flagged"
    [
      ("poly-compare", 2, 17);
      ("poly-compare", 3, 14);
      ("poly-compare", 4, 19);
      ("poly-compare", 5, 15);
      ("poly-compare", 6, 17);
    ]
    fs

let test_lsn_arith () =
  let fs = lint_as ~path:"lib/fake/bad_lsn_arith.ml" "bad_lsn_arith.ml" in
  check_shapes "+, -, * on LSN-carrying operands"
    [
      ("lsn-arith", 2, 13);
      ("lsn-arith", 3, 14);
      ("lsn-arith", 4, 17);
    ]
    fs

let test_mli_coverage () =
  let fs =
    Lint.Rules.mli_coverage
      ~ml_files:[ "lib/foo/a.ml"; "lib/foo/b.ml"; "bin/tool.ml" ]
      ~mli_files:[ "lib/foo/a.mli" ]
  in
  (* b.ml lacks an interface; bin/ is out of scope. *)
  check_shapes "only the lib module without an mli" [ ("mli-coverage", 1, 0) ] fs;
  Alcotest.(check (list string))
    "finding names the missing interface"
    [ "lib/foo/b.ml" ]
    (List.map (fun (f : Lint.Finding.t) -> f.file) fs)

(* -- negative / scoping / allowlists ------------------------------------- *)

let test_clean_fixture () =
  check_shapes "disciplined code is finding-free" []
    (lint_as ~path:"lib/obs/clean.ml" "clean.ml")

let test_scope () =
  (* bench/ is sim code too: harness timing must route through Perf.Clock,
     so raw wall-clock reads are findings there as well. *)
  check_shapes "determinism rule active in bench/"
    [
      ("determinism", 2, 13);
      ("determinism", 3, 13);
      ("determinism", 4, 14);
      ("determinism", 5, 15);
      ("determinism", 6, 18);
    ]
    (lint_as ~path:"bench/bad_determinism.ml" "bad_determinism.ml");
  (* ...but test/ is not sim code. *)
  check_shapes "determinism rule inactive in test/" []
    (lint_as ~path:"test/fake/bad_determinism.ml" "bad_determinism.ml");
  (* Hash iteration is only a finding in output-feeding modules. *)
  check_shapes "stable-iteration inactive outside lib/obs" []
    (lint_as ~path:"lib/core/bad_stable_iteration.ml" "bad_stable_iteration.ml")

let test_allowlist () =
  (* lib/obs/stable.ml is the audited helper: folding there is the point. *)
  check_shapes "stable.ml may fold hash tables" []
    (lint_as ~path:"lib/obs/stable.ml" "bad_stable_iteration.ml");
  (* lib/wal/lsn.ml owns LSN arithmetic. *)
  check_shapes "lsn.ml may do LSN arithmetic" []
    (lint_as ~path:"lib/wal/lsn.ml" "bad_lsn_arith.ml");
  (* lib/perf/clock.ml is the single wall-clock gateway. *)
  check_shapes "clock.ml may read real time" []
    (lint_as ~path:"lib/perf/clock.ml" "bad_determinism.ml")

let test_parse_error () =
  let fs = Lint.Engine.lint_source ~path:"lib/fake/broken.ml" "let let let" in
  check_shapes "syntax errors surface as a finding" [ ("parse-error", 1, 0) ] fs

(* -- baseline ------------------------------------------------------------ *)

let test_baseline_roundtrip () =
  let fs = lint_as ~path:"lib/fake/bad_lsn_arith.ml" "bad_lsn_arith.ml" in
  let file = Filename.temp_file "aurora_lint_baseline" ".txt" in
  Lint.Baseline.save file fs;
  let b = Lint.Baseline.load file in
  Sys.remove file;
  Alcotest.(check int) "every finding frozen" (List.length fs)
    (Lint.Baseline.size b);
  Alcotest.(check bool) "saved findings are suppressed" true
    (List.for_all (Lint.Baseline.mem b) fs);
  let other = lint_as ~path:"lib/fake/bad_determinism.ml" "bad_determinism.ml" in
  Alcotest.(check bool) "unrelated findings are not" false
    (List.exists (Lint.Baseline.mem b) other)

let test_baseline_missing () =
  Alcotest.(check int) "missing baseline file is empty" 0
    (Lint.Baseline.size (Lint.Baseline.load "no/such/baseline.txt"))

(* -- the real tree ------------------------------------------------------- *)

let test_real_tree () =
  let roots = [ "../../lib"; "../../bin"; "../../bench"; "../../test" ] in
  List.iter
    (fun r ->
      if not (Sys.file_exists r) then
        Alcotest.failf "real tree not visible from test sandbox: %s" r)
    roots;
  let findings = Lint.Engine.lint_tree ~roots in
  let baseline = Lint.Baseline.load "../../lint/baseline.txt" in
  let fresh =
    List.filter (fun f -> not (Lint.Baseline.mem baseline f)) findings
  in
  Alcotest.(check (list string))
    "no non-baselined findings in the real tree" []
    (List.map Lint.Finding.to_string fresh)

(* -- reporting ----------------------------------------------------------- *)

let test_rendering () =
  let f =
    Lint.Finding.make ~rule:"determinism" ~file:"lib/a.ml" ~line:3 ~col:7
      "message with \"quotes\""
  in
  Alcotest.(check string)
    "compiler-style text" "lib/a.ml:3:7: [determinism] message with \"quotes\""
    (Lint.Finding.to_string f);
  Alcotest.(check string)
    "baseline key excludes the message" "determinism|lib/a.ml|3|7"
    (Lint.Finding.key f);
  Alcotest.(check string)
    "json escapes quotes"
    "{\"rule\":\"determinism\",\"file\":\"lib/a.ml\",\"line\":3,\"col\":7,\"message\":\"message with \\\"quotes\\\"\"}"
    (Lint.Finding.to_json f)

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "stable-iteration" `Quick test_stable_iteration;
          Alcotest.test_case "poly-compare" `Quick test_poly_compare;
          Alcotest.test_case "lsn-arith" `Quick test_lsn_arith;
          Alcotest.test_case "mli-coverage" `Quick test_mli_coverage;
        ] );
      ( "scoping",
        [
          Alcotest.test_case "clean fixture" `Quick test_clean_fixture;
          Alcotest.test_case "rule scope" `Quick test_scope;
          Alcotest.test_case "allowlists" `Quick test_allowlist;
          Alcotest.test_case "parse error" `Quick test_parse_error;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "roundtrip" `Quick test_baseline_roundtrip;
          Alcotest.test_case "missing file" `Quick test_baseline_missing;
        ] );
      ( "meta",
        [
          Alcotest.test_case "real tree is clean" `Quick test_real_tree;
          Alcotest.test_case "rendering" `Quick test_rendering;
        ] );
    ]
