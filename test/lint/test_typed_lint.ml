(* Tests for the typed lint tier: a deliberately-dirty fixture library
   (compiled to real .cmt trees — see fixtures/typed/dune) is checked
   against a fixture-scoped rule config, one test per rule pinning the
   exact finding positions.  A meta-test then runs the production config
   over the real library tree (the same check `dune build @lint-typed`
   enforces), and a final test pins the baseline writer's position
   ordering so --update-baseline output is byte-stable across tiers. *)

let fixture_dir = "fixtures/typed/.lint_typed_fixtures.objs/byte"
let fixture_units = lazy (Lint.Typed_loader.load_dir fixture_dir)
let fx name = "test/lint/fixtures/typed/" ^ name

let fixture_config : Lint.Typed_rules.config =
  {
    hot_roots =
      [
        "Lint_typed_fixtures.Tf_hot.entry";
        "Lint_typed_fixtures.Tf_hot.entry_ok";
      ];
    sim_scope = String.equal (fx "tf_global.ml");
    sim_allow = [];
    describe_checks =
      [
        ( "Lint_typed_fixtures.Tf_proto.t",
          "Lint_typed_fixtures.Tf_proto.describe" );
      ];
    emit_checks = [ ("Lint_typed_fixtures.Tf_events.t", fx "tf_events.ml") ];
    poly_types = [ "Wal.Lsn.t" ];
  }

let fixture_findings =
  lazy
    (Lint.Typed_engine.lint_units ~config:fixture_config
       (Lazy.force fixture_units))

(* (file, line) sites for one rule — columns are the compiler's business. *)
let sites rule =
  List.filter_map
    (fun (f : Lint.Finding.t) ->
      if String.equal f.rule rule then Some (f.file, f.line) else None)
    (Lazy.force fixture_findings)

let check_sites msg expected rule =
  Alcotest.(check (list (pair string int))) msg expected (sites rule)

let test_loader () =
  let units = Lazy.force fixture_units in
  Alcotest.(check (list string))
    "six fixture units, wrapper module skipped, sorted by source"
    [
      fx "tf_emitter.ml";
      fx "tf_events.ml";
      fx "tf_global.ml";
      fx "tf_hot.ml";
      fx "tf_poly.ml";
      fx "tf_proto.ml";
    ]
    (List.map (fun (u : Lint.Typed_loader.unit_info) -> u.source) units);
  Alcotest.(check bool)
    "module names are normalized to dotted form" true
    (List.exists
       (fun (u : Lint.Typed_loader.unit_info) ->
         String.equal u.modname "Lint_typed_fixtures.Tf_hot")
       units)

(* The tuple in [helper] (line 7) and the blocklisted [string_of_int] in
   [shout] (line 9) are reachable from the hot root [entry] only through
   the call graph; [entry_ok] reaches only [@@alloc_ok]-blessed code and
   must contribute nothing. *)
let test_hot_alloc () =
  check_sites "call-graph-reachable allocations, annotated path clean"
    [ (fx "tf_hot.ml", 7); (fx "tf_hot.ml", 9) ]
    "typed-hot-alloc"

(* [naked] (line 5) has no hook and no annotation; [covered] is cleared by
   the registered hook, [blessed] carries [@@sim_global]. *)
let test_sim_global () =
  check_sites "only the hookless, unannotated global is flagged"
    [ (fx "tf_global.ml", 5) ]
    "typed-sim-global"

(* [describe]'s wildcard hides [Pong] (line 7) and [Ack] (line 8); the
   findings anchor to the constructor declarations. *)
let test_describe_coverage () =
  check_sites "wildcard-hidden constructors flagged at their declarations"
    [ (fx "tf_proto.ml", 7); (fx "tf_proto.ml", 8) ]
    "typed-describe-coverage"

(* [Seen] is built by Tf_emitter (outside the defining module); [Ignored]
   (line 7) is only built inside it, which must not count. *)
let test_event_emit () =
  check_sites "constructor never built outside the defining module"
    [ (fx "tf_events.ml", 7) ]
    "typed-event-emit"

(* Polymorphic [=] at Wal.Lsn.t in [bad] (line 5); the int comparison in
   [good] is fine. *)
let test_poly_compare () =
  check_sites "polymorphic equality at a protocol type"
    [ (fx "tf_poly.ml", 5) ]
    "typed-poly-compare"

let test_no_extra_findings () =
  Alcotest.(check int)
    "the five rule tests account for every finding" 7
    (List.length (Lazy.force fixture_findings))

(* A renamed hot root, type, or total function must degrade loudly — to a
   finding anchored at the manifest pseudo-file — never to a silently
   disabled rule. *)
let test_manifest_rot () =
  let cfg =
    {
      fixture_config with
      hot_roots = [ "Lint_typed_fixtures.Tf_hot.renamed" ];
      describe_checks =
        [
          ( "Lint_typed_fixtures.Tf_proto.gone",
            "Lint_typed_fixtures.Tf_proto.describe" );
        ];
      emit_checks =
        [ ("Lint_typed_fixtures.Tf_events.gone", fx "tf_events.ml") ];
      sim_scope = (fun _ -> false);
      poly_types = [];
    }
  in
  let fs =
    Lint.Typed_engine.lint_units ~config:cfg (Lazy.force fixture_units)
  in
  Alcotest.(check (list (pair string string)))
    "one manifest-rot finding per stale entry, anchored to the pseudo-file"
    [
      ("(typed-lint-manifest)", "typed-describe-coverage");
      ("(typed-lint-manifest)", "typed-event-emit");
      ("(typed-lint-manifest)", "typed-hot-alloc");
    ]
    (List.map (fun (f : Lint.Finding.t) -> (f.file, f.rule)) fs)

(* The same gate `dune build @lint-typed` enforces: the production config
   over the real library tree, zero findings expected.  Failure messages
   print the offending findings verbatim. *)
let test_real_tree_clean () =
  let fs = Lint.Typed_engine.lint ~cmt_roots:[ "../../lib" ] () in
  Alcotest.(check (list string))
    "typed tier is finding-free on the real tree" []
    (List.map Lint.Finding.to_string fs)

(* --update-baseline must write the same bytes for the same finding set
   regardless of input order or duplication: sorted by position (file,
   line, col, rule), deduplicated by key. *)
let test_baseline_order () =
  let mk rule file line col =
    Lint.Finding.make ~rule ~file ~line ~col "msg"
  in
  let findings =
    [
      mk "typed-hot-alloc" "lib/b.ml" 9 2;
      mk "determinism" "lib/a.ml" 12 0;
      mk "typed-hot-alloc" "lib/b.ml" 9 2;
      mk "stable-iteration" "lib/a.ml" 3 4;
    ]
  in
  let path = Filename.temp_file "aurora_lint_typed_baseline" ".txt" in
  let read () =
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | exception End_of_file -> List.rev acc
      | line when line = "" || line.[0] = '#' -> go acc
      | line -> go (line :: acc)
    in
    let lines = go [] in
    close_in ic;
    lines
  in
  Lint.Baseline.save path findings;
  let first = read () in
  Alcotest.(check (list string))
    "keys deduplicated and in source-position order"
    [
      "stable-iteration|lib/a.ml|3|4";
      "determinism|lib/a.ml|12|0";
      "typed-hot-alloc|lib/b.ml|9|2";
    ]
    first;
  Lint.Baseline.save path (List.rev findings);
  let second = read () in
  Sys.remove path;
  Alcotest.(check (list string))
    "byte-stable under input permutation" first second

let () =
  Alcotest.run "typed_lint"
    [
      ("loader", [ Alcotest.test_case "fixture units" `Quick test_loader ]);
      ( "rules",
        [
          Alcotest.test_case "hot-alloc" `Quick test_hot_alloc;
          Alcotest.test_case "sim-global" `Quick test_sim_global;
          Alcotest.test_case "describe-coverage" `Quick
            test_describe_coverage;
          Alcotest.test_case "event-emit" `Quick test_event_emit;
          Alcotest.test_case "poly-compare" `Quick test_poly_compare;
          Alcotest.test_case "no extra findings" `Quick
            test_no_extra_findings;
          Alcotest.test_case "manifest rot is loud" `Quick test_manifest_rot;
        ] );
      ( "gate",
        [
          Alcotest.test_case "real tree clean" `Quick test_real_tree_clean;
          Alcotest.test_case "baseline ordering" `Quick test_baseline_order;
        ] );
    ]
