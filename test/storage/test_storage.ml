(* Tests for the storage substrate: block store, segments, disk, S3, and
   storage-node actors over the simulated network. *)
open Simcore
open Wal
open Quorum
module Protocol = Storage.Protocol

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let lsn = Lsn.of_int
let blk = Block_id.of_int
let txn = Txn_id.of_int

let put ~l ?(prev = Lsn.none) ?(prev_block = Lsn.none) ?(t = 1) ~block key value =
  Log_record.make ~lsn:(lsn l) ~prev_volume:(lsn (l - 1)) ~prev_segment:prev
    ~prev_block ~block:(blk block) ~txn:(txn t) ~mtr_id:l ~mtr_end:true
    ~op:(Log_record.Put { key; value })

(* ---- Block_store ---- *)

let test_block_store_versions () =
  let s = Storage.Block_store.create () in
  Storage.Block_store.apply s (put ~l:1 ~block:0 "a" "v1");
  Storage.Block_store.apply s (put ~l:2 ~prev_block:(lsn 1) ~t:2 ~block:0 "a" "v2");
  let vs = Storage.Block_store.versions s (blk 0) ~key:"a" in
  check_int "two versions" 2 (List.length vs);
  (match vs with
  | v :: _ -> check_int "newest first" 2 (Lsn.to_int v.Storage.Block_store.lsn)
  | [] -> Alcotest.fail "no versions");
  check_int "applied_upto" 2 (Lsn.to_int (Storage.Block_store.applied_upto s))

let test_block_store_read_at () =
  let s = Storage.Block_store.create () in
  Storage.Block_store.apply s (put ~l:1 ~block:0 "a" "v1");
  Storage.Block_store.apply s (put ~l:5 ~prev_block:(lsn 1) ~t:2 ~block:0 "a" "v2");
  let at l =
    match
      Storage.Block_store.read_at s (blk 0) ~key:"a" ~as_of:(lsn l)
        ~exclude:Txn_id.Set.empty
    with
    | Some v -> v.Storage.Block_store.value
    | None -> None
  in
  Alcotest.(check (option string)) "old view" (Some "v1") (at 3);
  Alcotest.(check (option string)) "new view" (Some "v2") (at 5);
  Alcotest.(check (option string)) "before everything" None (at 0);
  (* Exclusion backs out a transaction (undo semantics). *)
  (match
     Storage.Block_store.read_at s (blk 0) ~key:"a" ~as_of:(lsn 5)
       ~exclude:(Txn_id.Set.singleton (txn 2))
   with
  | Some v -> Alcotest.(check (option string)) "excluded" (Some "v1") v.Storage.Block_store.value
  | None -> Alcotest.fail "expected v1")

let test_block_store_gc () =
  let s = Storage.Block_store.create () in
  for i = 1 to 5 do
    Storage.Block_store.apply s
      (put ~l:i ~prev_block:(if i = 1 then Lsn.none else lsn (i - 1)) ~block:0
         "a" (Printf.sprintf "v%d" i))
  done;
  (* Floor at 3: versions 1,2 superseded by the committed version 3 ->
     collected. *)
  let dropped =
    Storage.Block_store.gc s ~keep_at_or_above:(lsn 3) ~is_committed:(fun _ -> true)
  in
  check_int "collected" 2 dropped;
  check_int "remaining" 3 (List.length (Storage.Block_store.versions s (blk 0) ~key:"a"));
  (* The floor's visible version survives. *)
  (match
     Storage.Block_store.read_at s (blk 0) ~key:"a" ~as_of:(lsn 3)
       ~exclude:Txn_id.Set.empty
   with
  | Some v -> Alcotest.(check (option string)) "floor view" (Some "v3") v.Storage.Block_store.value
  | None -> Alcotest.fail "floor version collected");
  (* Uncommitted versions never anchor the cut: with nothing committed,
     GC collects nothing. *)
  let s2 = Storage.Block_store.create () in
  for i = 1 to 4 do
    Storage.Block_store.apply s2
      (put ~l:i ~prev_block:(if i = 1 then Lsn.none else lsn (i - 1)) ~block:0
         "a" (Printf.sprintf "v%d" i))
  done;
  check_int "conservative without commit info" 0
    (Storage.Block_store.gc s2 ~keep_at_or_above:(lsn 4)
       ~is_committed:(fun _ -> false))

let test_block_store_rollback () =
  let s = Storage.Block_store.create () in
  for i = 1 to 5 do
    Storage.Block_store.apply s
      (put ~l:i ~prev_block:(if i = 1 then Lsn.none else lsn (i - 1)) ~block:0
         "a" (Printf.sprintf "v%d" i))
  done;
  let dropped = Storage.Block_store.rollback_above s (lsn 2) in
  check_int "rolled back" 3 dropped;
  check_int "applied clamped" 2 (Lsn.to_int (Storage.Block_store.applied_upto s))

let test_block_store_scrub () =
  let s = Storage.Block_store.create () in
  Storage.Block_store.apply s (put ~l:1 ~block:0 "a" "v1");
  check_bool "clean verifies" true (Storage.Block_store.verify s (blk 0));
  check_bool "corruption injected" true (Storage.Block_store.corrupt s (blk 0));
  check_bool "detected" false (Storage.Block_store.verify s (blk 0));
  (* Repair by reloading a good snapshot. *)
  let good = Storage.Block_store.create () in
  Storage.Block_store.apply good (put ~l:1 ~block:0 "a" "v1");
  Storage.Block_store.load_snapshot s (blk 0)
    (Storage.Block_store.block_snapshot good (blk 0));
  check_bool "repaired" true (Storage.Block_store.verify s (blk 0))

(* ---- Disk ---- *)

let test_disk_fifo () =
  let sim = Sim.create () in
  let rng = Rng.create 1 in
  let d =
    Storage.Disk.create ~sim ~rng ~service:(Distribution.constant (Time_ns.us 100))
      ~per_byte_ns:10
  in
  let log = ref [] in
  Storage.Disk.submit d ~bytes:100 (fun () -> log := 1 :: !log);
  Storage.Disk.submit d ~bytes:100 (fun () -> log := 2 :: !log);
  Sim.run sim;
  Alcotest.(check (list int)) "fifo" [ 1; 2 ] (List.rev !log);
  (* Two ops of 100us + 1us transfer each, serialized. *)
  check_int "completion time" (Time_ns.us 202) (Sim.now sim);
  check_int "completed" 2 (Storage.Disk.completed d)

(* ---- Segment ---- *)

let make_segment ?(kind = Membership.Full) () =
  Storage.Segment.create ~pg:(Storage.Pg_id.of_int 0) ~seg:(Member_id.of_int 0) ~kind

let chain n =
  List.init n (fun i ->
      let l = i + 1 in
      put ~l ~prev:(if l = 1 then Lsn.none else lsn (l - 1)) ~block:(l mod 3)
        (Printf.sprintf "k%d" (l mod 3))
        (Printf.sprintf "v%d" l))

let test_segment_insert_coalesce_read () =
  let s = make_segment () in
  ignore (Storage.Segment.insert_records s (chain 6) : Lsn.t);
  check_int "scl" 6 (Lsn.to_int (Storage.Segment.scl s));
  check_int "coalesced" 6 (Storage.Segment.coalesce s);
  check_int "coalesced point" 6 (Lsn.to_int (Storage.Segment.coalesced_upto s));
  Storage.Segment.note_pgcl s (lsn 6);
  match Storage.Segment.read_block s ~block:(blk 0) ~as_of:(lsn 6) with
  | Ok img ->
    check_bool "has key" true
      (List.exists (fun (k, _) -> k = "k0") img.Protocol.image_entries)
  | Error e -> Alcotest.failf "read failed: %a" Protocol.pp_read_error e

let test_segment_read_acceptance () =
  let s = make_segment () in
  ignore (Storage.Segment.insert_records s (chain 4) : Lsn.t);
  Storage.Segment.note_pgcl s (lsn 4);
  (* as_of beyond SCL while the group's durable point says records exist
     there this segment lacks: refused. *)
  Storage.Segment.note_pgcl s (lsn 9);
  (match Storage.Segment.read_block s ~block:(blk 0) ~as_of:(lsn 9) with
  | Error (Protocol.Beyond_scl _) -> ()
  | _ -> Alcotest.fail "expected Beyond_scl");
  (* Fresh segment: as_of beyond SCL but PGCL proves the group has no
     records between SCL and as_of -> served. *)
  let s = make_segment () in
  ignore (Storage.Segment.insert_records s (chain 4) : Lsn.t);
  Storage.Segment.note_pgcl s (lsn 4);
  (match Storage.Segment.read_block s ~block:(blk 1) ~as_of:(lsn 9) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "unexpected: %a" Protocol.pp_read_error e);
  (* Tail segments never serve blocks. *)
  let t = make_segment ~kind:Membership.Tail () in
  ignore (Storage.Segment.insert_records t (chain 4) : Lsn.t);
  match Storage.Segment.read_block t ~block:(blk 0) ~as_of:(lsn 2) with
  | Error Protocol.Tail_segment -> ()
  | _ -> Alcotest.fail "expected Tail_segment"

let test_segment_epochs () =
  let s = make_segment () in
  let e v m = { Protocol.volume = Epoch.of_int v; membership = Epoch.of_int m } in
  (match Storage.Segment.check_epochs s (e 1 1) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "initial epochs rejected");
  (* Higher volume epoch adopted; the old one then fenced. *)
  (match Storage.Segment.check_epochs s (e 3 1) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "new epoch rejected");
  (match Storage.Segment.check_epochs s (e 1 1) with
  | Error (Protocol.Stale_volume_epoch cur) ->
    check_int "current reported" 3 (Epoch.to_int cur)
  | _ -> Alcotest.fail "stale volume epoch accepted");
  Storage.Segment.install_membership s ~epoch:(Epoch.of_int 2) ~peers:[];
  match Storage.Segment.check_epochs s (e 3 1) with
  | Error (Protocol.Stale_membership_epoch _) -> ()
  | _ -> Alcotest.fail "stale membership epoch accepted"

let test_segment_truncate () =
  let s = make_segment () in
  ignore (Storage.Segment.insert_records s (chain 8) : Lsn.t);
  ignore (Storage.Segment.coalesce s : int);
  let dropped = Storage.Segment.truncate s ~above:(lsn 5) ~upto:(lsn 100) in
  check_bool "dropped records and versions" true (dropped > 0);
  check_int "scl" 5 (Lsn.to_int (Storage.Segment.scl s));
  check_int "coalesced rolled back" 5 (Lsn.to_int (Storage.Segment.coalesced_upto s))

let test_segment_hydrate_roundtrip () =
  let donor = make_segment () in
  ignore (Storage.Segment.insert_records donor (chain 10) : Lsn.t);
  ignore (Storage.Segment.coalesce donor : int);
  let records, blocks = Storage.Segment.hydrate_export donor ~since:Lsn.none ~want_blocks:true in
  check_int "all records" 10 (List.length records);
  check_bool "blocks included" true (blocks <> []);
  let fresh = make_segment () in
  Storage.Segment.hydrate_import fresh ~records ~blocks
    ~donor_scl:(Storage.Segment.scl donor)
    ~coalesced:(Storage.Segment.coalesced_upto donor);
  check_int "scl matches donor" 10 (Lsn.to_int (Storage.Segment.scl fresh));
  Storage.Segment.note_pgcl fresh (lsn 10);
  match Storage.Segment.read_block fresh ~block:(blk 1) ~as_of:(lsn 10) with
  | Ok img -> check_bool "readable" true (img.Protocol.image_entries <> [])
  | Error e -> Alcotest.failf "read failed: %a" Protocol.pp_read_error e

let test_segment_hydrate_from_gced_donor () =
  (* Donor whose hot log was fully collected: hydration must still hand
     over the chain position (anchor = donor SCL) and blocks. *)
  let donor = make_segment () in
  ignore (Storage.Segment.insert_records donor (chain 10) : Lsn.t);
  ignore (Storage.Segment.coalesce donor : int);
  Storage.Segment.set_backup_upto donor (lsn 10);
  ignore (Storage.Segment.advance_pgmrpl donor (lsn 10) : int);
  ignore (Storage.Segment.gc_hot_log donor : int);
  let records, blocks =
    Storage.Segment.hydrate_export donor ~since:Lsn.none ~want_blocks:true
  in
  check_int "nothing retained" 0 (List.length records);
  let fresh = make_segment () in
  Storage.Segment.hydrate_import fresh ~records ~blocks
    ~donor_scl:(Storage.Segment.scl donor)
    ~coalesced:(Storage.Segment.coalesced_upto donor);
  check_int "adopted donor chain position" 10
    (Lsn.to_int (Storage.Segment.scl fresh));
  check_bool "blocks installed" true
    (Storage.Block_store.blocks (Storage.Segment.store fresh) <> [])

let test_segment_hydrate_stale_snapshot_ignored () =
  (* Regression: a later hydration round whose donor has coalesced {e less}
     far than the importer must not install the donor's block snapshots.
     The importer materialized "v10" into block 1 off the live stream; the
     donor's snapshot still says "v7".  Loading it would roll the block
     back while the importer's coalesce watermark stayed at 10, so records
     8..10 would never be re-applied from the hot log — a silent loss of
     acknowledged writes. *)
  let donor = make_segment () in
  ignore (Storage.Segment.insert_records donor (chain 7) : Lsn.t);
  ignore (Storage.Segment.coalesce donor : int);
  let importer = make_segment () in
  ignore (Storage.Segment.insert_records importer (chain 10) : Lsn.t);
  ignore (Storage.Segment.coalesce importer : int);
  let records, blocks =
    Storage.Segment.hydrate_export donor ~since:(Storage.Segment.scl importer)
      ~want_blocks:true
  in
  check_int "donor has no newer records" 0 (List.length records);
  check_bool "donor still offers snapshots" true (blocks <> []);
  Storage.Segment.hydrate_import importer ~records ~blocks
    ~donor_scl:(Storage.Segment.scl donor)
    ~coalesced:(Storage.Segment.coalesced_upto donor);
  check_int "importer scl untouched" 10 (Lsn.to_int (Storage.Segment.scl importer));
  check_int "coalesce watermark untouched" 10
    (Lsn.to_int (Storage.Segment.coalesced_upto importer));
  Storage.Segment.note_pgcl importer (lsn 10);
  match Storage.Segment.read_block importer ~block:(blk 1) ~as_of:(lsn 10) with
  | Error e -> Alcotest.failf "read failed: %a" Protocol.pp_read_error e
  | Ok img -> (
    (* chain writes key "k1" on block 1 at LSNs 1,4,7,10; newest is v10. *)
    match List.assoc_opt "k1" img.Protocol.image_entries with
    | Some ({ Storage.Block_store.value = Some v; _ } :: _) ->
      Alcotest.(check string) "newest write survived the stale import" "v10" v
    | _ -> Alcotest.fail "k1 lost its newest version")

let test_segment_txn_statuses () =
  let s = make_segment () in
  let commit =
    Log_record.make ~lsn:(lsn 1) ~prev_volume:Lsn.none ~prev_segment:Lsn.none
      ~prev_block:Lsn.none ~block:(blk 0) ~txn:(txn 7) ~mtr_id:1 ~mtr_end:true
      ~op:Log_record.Commit
  in
  ignore (Storage.Segment.insert_records s [ commit ] : Lsn.t);
  (match Storage.Segment.txn_statuses s with
  | [ (t7, l, false) ] ->
    check_int "txn" 7 (Txn_id.to_int t7);
    check_int "scn" 1 (Lsn.to_int l)
  | _ -> Alcotest.fail "expected one commit status");
  Storage.Segment.merge_statuses s [ (txn 9, lsn 3, true) ];
  check_int "merged" 2 (List.length (Storage.Segment.txn_statuses s))

(* ---- Storage node over network ---- *)

let node_fixture () =
  let sim = Sim.create () in
  let rng = Rng.create 42 in
  let net =
    Simnet.Net.create ~sim ~rng:(Rng.split rng)
      ~default_latency:(Distribution.constant (Time_ns.us 100)) ()
  in
  let s3 =
    Storage.S3.create ~sim ~latency:(Distribution.constant (Time_ns.ms 1))
      ~rng:(Rng.split rng)
  in
  (sim, rng, net, s3)

let epochs1 = { Protocol.volume = Epoch.initial; membership = Epoch.initial }

let test_node_write_ack () =
  let sim, rng, net, s3 = node_fixture () in
  let addr = Simnet.Addr.of_int 1 and client = Simnet.Addr.of_int 0 in
  let node =
    Storage.Storage_node.create ~sim ~rng ~net ~addr ~s3
      ~config:Storage.Storage_node.default_config ()
  in
  Storage.Storage_node.add_segment node (make_segment ());
  Storage.Storage_node.start node;
  let acks = ref [] in
  Simnet.Net.register net client (fun env ->
      match env.Simnet.Net.msg with
      | Protocol.Write_ack { scl; _ } -> acks := Lsn.to_int scl :: !acks
      | _ -> ());
  Simnet.Net.send net ~src:client ~dst:addr
    (Protocol.Write_batch
       {
         pg = Storage.Pg_id.of_int 0;
         seg = Member_id.of_int 0;
         records = chain 3;
         pgcl = Lsn.none;
         epochs = epochs1;
       });
  Sim.run_until sim (Time_ns.ms 10);
  Alcotest.(check (list int)) "ack carries SCL" [ 3 ] !acks

let test_node_gossip_fills_hole () =
  let sim, rng, net, s3 = node_fixture () in
  let a1 = Simnet.Addr.of_int 1 and a2 = Simnet.Addr.of_int 2 in
  let mk addr seg_id =
    let node =
      Storage.Storage_node.create ~sim ~rng:(Rng.split rng) ~net ~addr ~s3
        ~config:Storage.Storage_node.default_config ()
    in
    let seg =
      Storage.Segment.create ~pg:(Storage.Pg_id.of_int 0)
        ~seg:(Member_id.of_int seg_id) ~kind:Membership.Full
    in
    Storage.Segment.set_peers seg [ (Member_id.of_int 0, a1); (Member_id.of_int 1, a2) ];
    Storage.Storage_node.add_segment node seg;
    Storage.Storage_node.start node;
    (node, seg)
  in
  let _, seg1 = mk a1 0 in
  let _, seg2 = mk a2 1 in
  (* Node 1 has the full chain; node 2 has a hole (missing record 2). *)
  let records = chain 5 in
  ignore (Storage.Segment.insert_records seg1 records : Lsn.t);
  ignore
    (Storage.Segment.insert_records seg2
       (List.filter (fun (r : Log_record.t) -> Lsn.to_int r.lsn <> 2) records)
      : Lsn.t);
  check_int "hole blocks SCL" 1 (Lsn.to_int (Storage.Segment.scl seg2));
  Sim.run_until sim (Time_ns.sec 2);
  check_int "gossip filled the hole" 5 (Lsn.to_int (Storage.Segment.scl seg2))

let test_node_crash_restart () =
  let sim, rng, net, s3 = node_fixture () in
  let addr = Simnet.Addr.of_int 1 and client = Simnet.Addr.of_int 0 in
  let node =
    Storage.Storage_node.create ~sim ~rng ~net ~addr ~s3
      ~config:Storage.Storage_node.default_config ()
  in
  let seg = make_segment () in
  Storage.Storage_node.add_segment node seg;
  Storage.Storage_node.start node;
  ignore (Storage.Segment.insert_records seg (chain 3) : Lsn.t);
  Storage.Storage_node.crash node;
  let got_reply = ref false in
  Simnet.Net.register net client (fun _ -> got_reply := true);
  Simnet.Net.send net ~src:client ~dst:addr
    (Protocol.Scl_probe
       { req = 0; pg = Storage.Pg_id.of_int 0; seg = Member_id.of_int 0; epochs = epochs1 });
  Sim.run_until sim (Time_ns.ms 10);
  check_bool "down node silent" false !got_reply;
  Storage.Storage_node.restart node;
  check_int "durable state survives crash" 3 (Lsn.to_int (Storage.Segment.scl seg));
  Simnet.Net.send net ~src:client ~dst:addr
    (Protocol.Scl_probe
       { req = 0; pg = Storage.Pg_id.of_int 0; seg = Member_id.of_int 0; epochs = epochs1 });
  Sim.run_until sim (Time_ns.ms 20);
  check_bool "restarted node answers" true !got_reply

let test_s3_backup () =
  let sim, _, _, s3 = node_fixture () in
  let durable = ref false in
  Storage.S3.upload s3
    {
      Storage.S3.pg = Storage.Pg_id.of_int 0;
      seg = Member_id.of_int 0;
      upto = lsn 10;
      bytes = 1000;
      taken_at = Sim.now sim;
    }
    ~on_durable:(fun () -> durable := true);
  check_int "in flight" 1 (Storage.S3.uploads_in_flight s3);
  Sim.run sim;
  check_bool "durable" true !durable;
  check_int "coverage" 10
    (Lsn.to_int (Storage.S3.durable_upto s3 (Storage.Pg_id.of_int 0) (Member_id.of_int 0)))

let () =
  Alcotest.run "storage"
    [
      ( "block_store",
        [
          Alcotest.test_case "version chains" `Quick test_block_store_versions;
          Alcotest.test_case "mvcc read_at" `Quick test_block_store_read_at;
          Alcotest.test_case "gc keeps floor version" `Quick test_block_store_gc;
          Alcotest.test_case "rollback_above" `Quick test_block_store_rollback;
          Alcotest.test_case "checksum scrub" `Quick test_block_store_scrub;
        ] );
      ("disk", [ Alcotest.test_case "fifo queueing" `Quick test_disk_fifo ]);
      ( "segment",
        [
          Alcotest.test_case "insert/coalesce/read" `Quick
            test_segment_insert_coalesce_read;
          Alcotest.test_case "read acceptance" `Quick test_segment_read_acceptance;
          Alcotest.test_case "epoch fencing" `Quick test_segment_epochs;
          Alcotest.test_case "truncate" `Quick test_segment_truncate;
          Alcotest.test_case "hydrate roundtrip" `Quick test_segment_hydrate_roundtrip;
          Alcotest.test_case "hydrate from GCed donor" `Quick
            test_segment_hydrate_from_gced_donor;
          Alcotest.test_case "hydrate ignores stale snapshot" `Quick
            test_segment_hydrate_stale_snapshot_ignored;
          Alcotest.test_case "txn statuses" `Quick test_segment_txn_statuses;
        ] );
      ( "node",
        [
          Alcotest.test_case "write -> ack with SCL" `Quick test_node_write_ack;
          Alcotest.test_case "gossip fills hole" `Quick test_node_gossip_fills_hole;
          Alcotest.test_case "crash/restart" `Quick test_node_crash_restart;
          Alcotest.test_case "s3 backup" `Quick test_s3_backup;
        ] );
    ]
