(* Tests for lib/vopr: scenario text-format round-trips, parser error
   reporting, shrink fingerprint preservation, runner determinism, the
   checkers catching a deliberately broken invariant, and the nemesis
   generator. *)
open Simcore
open Vopr
module Cluster = Harness.Cluster

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ---- text format ---- *)

let test_curated_roundtrip () =
  check_bool "curated names unique" true
    (List.sort_uniq compare Curated.names = List.sort compare Curated.names);
  List.iter
    (fun sc ->
      match Scenario.of_string (Scenario.to_string sc) with
      | Ok sc' -> check_bool (sc.Scenario.name ^ " round-trips") true (sc' = sc)
      | Error e -> Alcotest.failf "%s: parse failed: %s" sc.Scenario.name e)
    Curated.all

let test_parser_freedom () =
  (* Comments, blank lines, header order, and k=v argument order are all
     insignificant; expectations chain after the action. *)
  let src =
    String.concat "\n"
      [
        "# a shrunk repro";
        "rate 900";
        "";
        "scenario demo";
        "layout tiered   # trailing comment";
        "step at=250ms crash_node m=4 pg=0 expect writer_open=true \
         expect commits_progressing";
        "step at_lsn=1200 noop expect epoch min=2 pg=0";
      ]
  in
  match Scenario.of_string src with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok sc ->
    check_string "name" "demo" sc.Scenario.name;
    check_bool "layout" true (sc.Scenario.layout = Cluster.Tiered);
    check_bool "rate" true (sc.Scenario.rate = 900.);
    check_int "defaults kept" 1500 sc.Scenario.duration_ms;
    (match sc.Scenario.steps with
    | [ s1; s2 ] ->
      check_bool "arg order" true (s1.Scenario.action = Scenario.Crash_node (0, 4));
      check_int "two expects" 2 (List.length s1.Scenario.expect);
      check_bool "lsn trigger" true (s2.Scenario.trigger = Scenario.at_lsn 1200);
      check_bool "epoch expect" true
        (s2.Scenario.expect = [ Scenario.Epoch_at_least (0, 2) ])
    | _ -> Alcotest.fail "expected two steps")

let test_parser_errors () =
  let cases =
    [
      ("pgs 1\n", "missing scenario");
      ("scenario x\nstep at=5ms explode", "line 2");
      ("scenario x\nstep at=5ms explode", "unknown action");
      ("scenario x\nstep at=5 noop", "duration like 500ms");
      ("scenario x\nstep at=5ms crash_node pg=0", "missing argument m=");
      ("scenario x\nstep at_lsn=zz noop", "expected an integer");
      ("scenario x\nstep at=5ms noop junk", "expected key=value or expect");
      ("scenario x\nstep at=5ms noop expect wat=1", "unknown expectation");
      ("scenario x\n\nlayout v9", "line 3");
      ("step at=5ms noop\nscenario late", "after the first step");
      ("scenario x\nwhatever 3", "unknown directive");
    ]
  in
  List.iter
    (fun (src, frag) ->
      match Scenario.of_string src with
      | Ok _ -> Alcotest.failf "accepted bad input %S" src
      | Error e ->
        check_bool (Printf.sprintf "%S mentions %S (got %S)" src frag e) true
          (contains e frag))
    cases

(* qcheck: any scenario the combinators can build at the text format's
   granularity (ms times, %g-clean floats) survives print-then-parse. *)
let scenario_gen =
  let open QCheck.Gen in
  let small_float = map float_of_int (int_range 1 10_000) in
  let trigger =
    oneof [ map Scenario.at_ms (int_range 0 60_000); map Scenario.at_lsn (int_range 1 1_000_000) ]
  in
  let pg = int_range 0 3 and m = int_range 0 6 and az = int_range 1 3 in
  let action =
    oneof
      [
        return Scenario.Noop;
        map2 (fun p m -> Scenario.Crash_node (p, m)) pg m;
        map2 (fun p m -> Scenario.Restart_node (p, m)) pg m;
        map2 (fun p m -> Scenario.Destroy_node (p, m)) pg m;
        map3 (fun p m f -> Scenario.Slow_node (p, m, f)) pg m small_float;
        map (fun a -> Scenario.Fail_az a) az;
        map (fun a -> Scenario.Restore_az a) az;
        map (fun a -> Scenario.Partition_az a) az;
        map (fun a -> Scenario.Heal_az a) az;
        map2 (fun p m -> Scenario.Start_replacement (p, m)) pg m;
        map2 (fun p m -> Scenario.Finish_replacement (p, m)) pg m;
        map2 (fun p m -> Scenario.Finish_when_caught_up (p, m)) pg m;
        map2 (fun p m -> Scenario.Revert_replacement (p, m)) pg m;
        return Scenario.Grow_volume;
        map2 (fun p a -> Scenario.Change_scheme_3_of_4 (p, a)) pg az;
        return Scenario.Crash_writer;
        return Scenario.Recover_writer;
      ]
  in
  let expectation =
    oneof
      [
        map (fun b -> Scenario.Write_available b) bool;
        map (fun b -> Scenario.Az_plus_one b) bool;
        map (fun b -> Scenario.Writer_open b) bool;
        return Scenario.Commits_progressing;
        map2 (fun p e -> Scenario.Epoch_at_least (p, e)) pg (int_range 1 9);
        map2 (fun p m -> Scenario.Caught_up (p, m)) pg m;
      ]
  in
  let step =
    map3 (fun t a e -> Scenario.step ~expect:e t a) trigger action
      (list_size (int_range 0 3) expectation)
  in
  let* name = map (Printf.sprintf "s%d") (int_range 0 999) in
  let* n_pgs = int_range 1 4 in
  let* layout = oneofl [ Cluster.V6; Cluster.Tiered; Cluster.V3 ] in
  let* replicas = int_range 0 3 in
  let* rate = small_float in
  let* duration_ms = int_range 1 10_000 in
  let* quiesce_ms = int_range 1 10_000 in
  let* recorder_depth =
    int_range Recorder.Rings.min_depth Recorder.Rings.max_depth
  in
  let* steps = list_size (int_range 0 8) step in
  return
    (Scenario.make ~name ~n_pgs ~layout ~replicas ~rate ~duration_ms
       ~quiesce_ms ~recorder_depth steps)

let prop_scenario_roundtrip =
  QCheck.Test.make ~name:"print-then-parse is the identity" ~count:300
    (QCheck.make ~print:Scenario.to_string scenario_gen)
    (fun sc -> Scenario.of_string (Scenario.to_string sc) = Ok sc)

(* ---- shrink ---- *)

(* A synthetic failure landscape exercising fingerprint preservation: the
   "real" bug needs steps A and B together ("durability"); a scenario that
   kept step Y but lost A&&B fails differently ("expectation").  A greedy
   minimizer that only asked "does it still fail?" would happily delete A,
   chase the decoy, and report [Y]; preserving the checker-id fingerprint
   must land on exactly [A; B]. *)
let test_shrink_fingerprint () =
  let a = Scenario.step (Scenario.at_ms 100) (Scenario.Crash_node (0, 1)) in
  let b = Scenario.step (Scenario.at_ms 200) (Scenario.Fail_az 2) in
  let x = Scenario.step (Scenario.at_ms 300) Scenario.Noop in
  let y = Scenario.step (Scenario.at_ms 400) (Scenario.Restart_node (0, 1)) in
  let violation checker =
    { Checker.checker; at = Time_ns.zero; detail = "synthetic" }
  in
  let outcome sc violations =
    {
      Runner.scenario = sc.Scenario.name;
      seed = 7;
      violations;
      total_violations = List.length violations;
      action_errors = [];
      issued = 0;
      acked = 0;
      wl_failed = 0;
      commits = 0;
      final_vcl = 0;
      final_vdl = 0;
      write_available = 1.;
      recorder = None;
    }
  in
  let runs = ref 0 in
  let run sc =
    incr runs;
    let has s = List.mem s sc.Scenario.steps in
    let violations =
      if has a && has b then [ violation "durability" ]
      else if has y then [ violation "expectation" ]
      else []
    in
    outcome sc violations
  in
  let sc = Scenario.make ~name:"shrink-me" [ a; x; b; y ] in
  (match Shrink.minimize ~run sc with
  | None -> Alcotest.fail "original scenario fails, minimize said it did not"
  | Some (small, out) ->
    check_bool "1-minimal step list" true (small.Scenario.steps = [ a; b ]);
    check_bool "same fingerprint" true
      (List.exists (fun v -> v.Checker.checker = "durability") out.Runner.violations);
    check_bool "header preserved" true (small.Scenario.name = "shrink-me"));
  check_bool "shrink actually reran candidates" true (!runs > 3);
  (* A passing scenario has nothing to minimize. *)
  match Shrink.minimize ~run (Scenario.make ~name:"fine" [ x ]) with
  | None -> ()
  | Some _ -> Alcotest.fail "minimized a passing scenario"

(* ---- runner ---- *)

let tiny_scenario =
  Scenario.make ~name:"tiny-crash" ~rate:800. ~duration_ms:400 ~quiesce_ms:800
    [
      Scenario.step (Scenario.at_ms 120) (Scenario.Crash_node (0, 2))
        ~expect:[ Scenario.Write_available true; Scenario.Commits_progressing ];
      Scenario.step (Scenario.at_ms 260) (Scenario.Restart_node (0, 2));
      Scenario.step (Scenario.at_ms 390) Scenario.Noop
        ~expect:[ Scenario.Writer_open true ];
    ]

let test_runner_clean_and_deterministic () =
  let o1 = Runner.run ~seed:1 tiny_scenario in
  check_bool "no violations" false (Runner.failed o1);
  check_int "no action errors" 0 (List.length o1.Runner.action_errors);
  check_bool "workload made progress" true (o1.Runner.acked > 0);
  check_bool "vdl covers commits" true (o1.Runner.final_vdl > 0);
  (* Byte-identical digest on replay: the repro contract. *)
  let o2 = Runner.run ~seed:1 tiny_scenario in
  check_string "replay digest" (Runner.digest o1) (Runner.digest o2);
  (* A different seed is a genuinely different execution. *)
  let o3 = Runner.run ~seed:2 tiny_scenario in
  check_bool "different seed, different digest" true
    (Runner.digest o3 <> Runner.digest o1)

let test_runner_catches_failed_expectation () =
  (* writer_open=false is simply untrue here — the runner must record an
     "expectation" violation rather than erroring out. *)
  let sc =
    Scenario.make ~name:"bad-expect" ~rate:500. ~duration_ms:200 ~quiesce_ms:400
      [ Scenario.step (Scenario.at_ms 100) Scenario.Noop
          ~expect:[ Scenario.Writer_open false ] ]
  in
  let o = Runner.run ~seed:3 sc in
  check_bool "failed" true (Runner.failed o);
  check_bool "as an expectation violation" true
    (List.exists (fun v -> v.Checker.checker = "expectation") o.Runner.violations)

(* ---- checker vs. a deliberately broken invariant ---- *)

let test_checker_catches_pgmrpl_breach () =
  (* Drive a live cluster, then push one segment's PGMRPL GC floor above
     the writer's VDL by hand — exactly the §3.1 discipline the storage
     fleet must never violate.  The 5 ms watch tick must flag it. *)
  let cluster = Cluster.create { Cluster.default_config with seed = 21 } in
  let sim = Cluster.sim cluster in
  let checker = Checker.create ~cluster () in
  let gen =
    Workload.Txn_gen.create ~sim ~rng:(Rng.create 99) ~db:(Cluster.db cluster)
      ~profile:Workload.Txn_gen.default_profile ()
  in
  Workload.Txn_gen.run_open_loop gen ~rate_per_sec:1000. ~duration:(Time_ns.ms 300);
  ignore
    (Sim.schedule sim ~delay:(Time_ns.ms 350) (fun () ->
         let vdl = Wal.Lsn.to_int (Aurora_core.Database.vdl (Cluster.db cluster)) in
         match Cluster.node_of_member cluster (Storage.Pg_id.of_int 0) (Quorum.Member_id.of_int 0) with
         | None -> Alcotest.fail "node 0 missing"
         | Some node -> (
           match Storage.Storage_node.segment node (Storage.Pg_id.of_int 0) with
           | None -> Alcotest.fail "segment missing"
           | Some seg ->
             ignore
               (Storage.Segment.advance_pgmrpl seg (Wal.Lsn.of_int (vdl + 500))
                 : int))));
  Sim.run_until sim (Time_ns.ms 500);
  Checker.stop checker;
  check_bool "pgmrpl-above-vdl flagged" true
    (List.exists
       (fun v -> v.Checker.checker = "pgmrpl-above-vdl")
       (Checker.violations checker));
  check_bool "total counts it" true (Checker.total checker > 0)

(* ---- swarm ---- *)

let test_nemesis_generator () =
  let sc = Swarm.generate ~seed:5 in
  check_string "name carries the seed" "nemesis-5" sc.Scenario.name;
  check_bool "non-trivial schedule" true (List.length sc.Scenario.steps >= 2);
  check_bool "deterministic" true (Swarm.generate ~seed:5 = sc);
  check_bool "distinct per seed" true (Swarm.generate ~seed:6 <> sc);
  (* The printed table alone must reproduce the schedule. *)
  check_bool "repro via text" true (Scenario.of_string (Scenario.to_string sc) = Ok sc);
  (* The generated final step asserts the run ended recovered. *)
  match List.rev sc.Scenario.steps with
  | last :: _ ->
    check_bool "final recovery assertion" true
      (List.mem (Scenario.Writer_open true) last.Scenario.expect
      && List.mem (Scenario.Write_available true) last.Scenario.expect)
  | [] -> Alcotest.fail "empty schedule"

let test_mini_swarm () =
  let progress = ref 0 in
  let result =
    Swarm.run
      ~progress:(fun ~done_:_ ~total:_ -> incr progress)
      {
        Swarm.seeds = 2;
        first_seed = 1;
        scenarios = [ tiny_scenario ];
        nemesis = false;
      }
  in
  check_int "two runs" 2 result.Swarm.runs;
  check_int "progress per run" 2 !progress;
  check_int "no failures" 0 (List.length result.Swarm.failures)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "vopr"
    [
      ( "scenario",
        [
          Alcotest.test_case "curated round-trip" `Quick test_curated_roundtrip;
          Alcotest.test_case "parser freedom" `Quick test_parser_freedom;
          Alcotest.test_case "parser errors" `Quick test_parser_errors;
          qc prop_scenario_roundtrip;
        ] );
      ("shrink", [ Alcotest.test_case "fingerprint preserved" `Quick test_shrink_fingerprint ]);
      ( "runner",
        [
          Alcotest.test_case "clean + deterministic" `Slow
            test_runner_clean_and_deterministic;
          Alcotest.test_case "failed expectation" `Slow
            test_runner_catches_failed_expectation;
        ] );
      ( "checker",
        [
          Alcotest.test_case "pgmrpl breach caught" `Slow
            test_checker_catches_pgmrpl_breach;
        ] );
      ( "swarm",
        [
          Alcotest.test_case "nemesis generator" `Quick test_nemesis_generator;
          Alcotest.test_case "mini swarm" `Slow test_mini_swarm;
        ] );
    ]
