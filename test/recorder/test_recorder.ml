(* Tests for lib/recorder: qcheck event encode/decode round-trips, ring
   bounds and eviction, artifact JSON round-trips, the crash/recover
   fenced-writer event ordering, and a golden fixture pinning the bytes of
   [aurora_cli explain] for a curated vopr scenario. *)

module Event = Recorder.Event
module Rings = Recorder.Rings
module Correlate = Recorder.Correlate
module Artifact = Recorder.Artifact

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ---- event encode/decode ---- *)

(* Any event the constructors can express — ids and LSNs both in-range and
   -1 ("not applicable"), every message kind and drop cause. *)
let event_gen =
  let open QCheck.Gen in
  let id = frequency [ (5, int_range 0 99); (1, return (-1)) ] in
  let lsn = frequency [ (5, int_range 0 1_000_000); (1, return (-1)) ] in
  let kind = oneofl Event.all_msg_kinds in
  let cause = oneofl Event.all_drop_causes in
  let net ctor =
    let* kind = kind in
    let* peer = int_range 0 99 in
    let* pg = id in
    let* lsn_lo = lsn in
    let* lsn_hi = lsn in
    return (ctor kind peer pg lsn_lo lsn_hi)
  in
  oneof
    [
      net (fun kind peer pg lsn_lo lsn_hi ->
          Event.Send { kind; peer; pg; lsn_lo; lsn_hi });
      net (fun kind peer pg lsn_lo lsn_hi ->
          Event.Receive { kind; peer; pg; lsn_lo; lsn_hi });
      (let* cause = cause in
       net (fun kind peer pg lsn_lo lsn_hi ->
           Event.Drop { kind; peer; pg; lsn_lo; lsn_hi; cause }));
      (let* pg = id in
       let* scl = lsn in
       let* stored = int_range 0 50 in
       return (Event.Scl_advance { pg; scl; stored }));
      (let* pg = id in
       let* scl = lsn in
       let* filled = int_range 0 50 in
       return (Event.Gossip_fill { pg; scl; filled }));
      (let* pg = id in
       let* scl = lsn in
       return (Event.Hydrate_import { pg; scl }));
      map (fun vcl -> Event.Vcl_advance { vcl }) lsn;
      map (fun vdl -> Event.Vdl_advance { vdl }) lsn;
      (let* pg = id in
       let* floor = lsn in
       return (Event.Pgmrpl_advance { pg; floor }));
      (let* pg = id in
       let* volume_epoch = int_range 0 20 in
       let* membership_epoch = int_range 0 20 in
       return (Event.Epoch_change { pg; volume_epoch; membership_epoch }));
      (let* txn = int_range 0 9999 in
       let* scn = lsn in
       return (Event.Commit_submit { txn; scn }));
      (let* txn = int_range 0 9999 in
       let* scn = lsn in
       return (Event.Commit_ack { txn; scn }));
      return Event.Started;
      return Event.Crashed;
      return Event.Destroyed;
      map (fun epoch -> Event.Fenced { epoch }) (int_range 0 20);
      map (fun epoch -> Event.Recovery_start { epoch }) (int_range 0 20);
      (let* vcl = lsn in
       let* vdl = lsn in
       return (Event.Recovery_finish { vcl; vdl }));
    ]

let prop_event_roundtrip =
  QCheck.Test.make ~name:"event to_json/of_json is the identity" ~count:500
    (QCheck.make ~print:Event.describe event_gen)
    (fun ev ->
      match Event.of_json (Event.to_json ev) with
      | Ok ev' -> Event.equal ev ev'
      | Error _ -> false)

(* The artifact reader parses printed JSON, so the trip must also survive
   the text layer (and the "at" field an artifact splices in). *)
let prop_event_roundtrip_via_text =
  QCheck.Test.make ~name:"event survives print-then-parse JSON text"
    ~count:200
    (QCheck.make ~print:Event.describe event_gen)
    (fun ev ->
      let txt = Obs.Json.to_string (Event.to_json ev) in
      match Obs.Json.of_string txt with
      | Error _ -> false
      | Ok j -> (
        match Event.of_json j with
        | Ok ev' -> Event.equal ev ev'
        | Error _ -> false))

let test_event_names () =
  List.iter
    (fun k ->
      check_bool (Event.msg_kind_name k) true
        (Event.msg_kind_of_name (Event.msg_kind_name k) = Some k))
    Event.all_msg_kinds;
  List.iter
    (fun r ->
      check_bool (Event.role_name r) true
        (Event.role_of_name (Event.role_name r) = Some r))
    Event.all_roles;
  List.iter
    (fun c ->
      check_bool (Event.drop_cause_name c) true
        (Event.drop_cause_of_name (Event.drop_cause_name c) = Some c))
    Event.all_drop_causes

(* ---- rings ---- *)

let test_ring_depth_bounds () =
  Rings.reset ();
  check_bool "defaults in range" true
    (Rings.default_depth >= Rings.min_depth
    && Rings.default_depth <= Rings.max_depth);
  Alcotest.check_raises "below min"
    (Invalid_argument
       (Printf.sprintf "Recorder.Rings.set_depth: %d outside [%d, %d]"
          (Rings.min_depth - 1) Rings.min_depth Rings.max_depth)) (fun () ->
      Rings.set_depth (Rings.min_depth - 1));
  Alcotest.check_raises "above max"
    (Invalid_argument
       (Printf.sprintf "Recorder.Rings.set_depth: %d outside [%d, %d]"
          (Rings.max_depth + 1) Rings.min_depth Rings.max_depth)) (fun () ->
      Rings.set_depth (Rings.max_depth + 1));
  Rings.reset ()

let test_ring_eviction () =
  Rings.reset ();
  Rings.set_depth Rings.min_depth;
  Rings.enable ();
  Rings.register ~node:3 ~role:Event.Storage;
  for i = 1 to Rings.min_depth + 4 do
    Rings.note ~node:3 ~at:i (Event.Vcl_advance { vcl = i })
  done;
  let snap = Rings.snapshot () in
  (match snap.Rings.nodes with
  | [ r ] ->
    check_int "node id" 3 r.Rings.node;
    check_bool "role kept" true (r.Rings.role = Event.Storage);
    check_int "capacity bounds retention" Rings.min_depth
      (List.length r.Rings.events);
    check_int "evicted counted" 4 r.Rings.evicted;
    (* Oldest events fell off the front; order is preserved. *)
    (match r.Rings.events with
    | (at0, Event.Vcl_advance { vcl }) :: _ ->
      check_int "oldest retained" 5 at0;
      check_int "payload matches" 5 vcl
    | _ -> Alcotest.fail "unexpected first event");
    (match List.rev r.Rings.events with
    | (at_last, _) :: _ ->
      check_int "newest retained" (Rings.min_depth + 4) at_last
    | [] -> Alcotest.fail "empty ring")
  | rings -> Alcotest.failf "expected one ring, got %d" (List.length rings));
  Rings.disable ();
  Rings.reset ()

let test_ring_disabled_is_noop () =
  Rings.reset ();
  check_bool "disabled by default" false (Rings.enabled ());
  Rings.note ~node:9 ~at:1 Event.Started;
  check_int "nothing recorded while disabled" 0
    (List.length (Rings.snapshot ()).Rings.nodes);
  Rings.reset ()

(* ---- artifact round-trip ---- *)

let test_artifact_roundtrip () =
  Rings.reset ();
  Rings.enable ();
  Rings.register ~node:0 ~role:Event.Writer;
  Rings.register ~node:1 ~role:Event.Storage;
  Rings.note ~node:0 ~at:10
    (Event.Send
       { kind = Event.Write_batch; peer = 1; pg = 0; lsn_lo = 5; lsn_hi = 9 });
  Rings.note ~node:1 ~at:12
    (Event.Receive
       { kind = Event.Write_batch; peer = 0; pg = 0; lsn_lo = 5; lsn_hi = 9 });
  Rings.note ~node:1 ~at:13 (Event.Scl_advance { pg = 0; scl = 9; stored = 5 });
  Rings.note ~node:0 ~at:20
    (Event.Drop
       {
         kind = Event.Write_batch;
         peer = 1;
         pg = 0;
         lsn_lo = 9;
         lsn_hi = 11;
         cause = Event.Partitioned;
       });
  let net =
    {
      Artifact.sent = 4;
      delivered = 3;
      dropped_down = 0;
      dropped_blocked = 0;
      dropped_partition = 1;
      dropped_random = 0;
      links =
        [
          {
            Artifact.src = 0;
            dst = 1;
            l_sent = 4;
            l_delivered = 3;
            l_down = 0;
            l_blocked = 0;
            l_partition = 1;
            l_random = 0;
          };
        ];
    }
  in
  let a = Artifact.make ~snapshot:(Rings.snapshot ()) ~net () in
  Rings.disable ();
  Rings.reset ();
  let txt = Artifact.to_string a in
  (match Artifact.of_string txt with
  | Error e -> Alcotest.failf "artifact parse failed: %s" e
  | Ok a' ->
    check_string "byte-stable reprint" txt (Artifact.to_string a');
    check_int "rings survive" 2
      (List.length a'.Artifact.snapshot.Rings.nodes);
    check_bool "net survives" true (a'.Artifact.net = Some net));
  (* The drop's cause is visible in the explain text — the "why a send
     never arrived" satellite. *)
  let explained = Artifact.explain a (Artifact.Lsn 9) in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  check_bool "drop cause surfaced" true (contains explained "drop(partitioned)");
  check_bool "per-link stats surfaced" true (contains explained "link n0->n1")

(* ---- crash/recover ordering across the live stack ---- *)

(* A writer crash + recovery must leave the writer's ring telling the §2.4
   story in order: Crashed, then Recovery_start (the epoch bump that
   changes the locks), then Recovery_finish with the recovered VCL/VDL,
   then Started — and the storage fleet must have recorded the new volume
   epoch being installed (the fence that locks out the old writer). *)
let test_crash_recover_ordering () =
  (* Max ring depth: the writer's ring sees every send/receive, and the
     lifecycle events from t=300ms must survive to the end of the run. *)
  let sc =
    Vopr.Scenario.make ~name:"recorder-crash-recover" ~rate:400.
      ~duration_ms:700 ~quiesce_ms:900 ~recorder_depth:Rings.max_depth
      [
        Vopr.Scenario.step (Vopr.Scenario.at_ms 300) Vopr.Scenario.Crash_writer;
        Vopr.Scenario.step (Vopr.Scenario.at_ms 450)
          Vopr.Scenario.Recover_writer;
      ]
  in
  let o = Vopr.Runner.run ~seed:11 ~record_always:true sc in
  check_bool "run is clean" false (Vopr.Runner.failed o);
  let a =
    match o.Vopr.Runner.recorder with
    | Some a -> a
    | None -> Alcotest.fail "no recorder artifact"
  in
  let writer_ring =
    match
      List.find_opt
        (fun (r : Rings.node_ring) -> r.Rings.role = Event.Writer)
        a.Artifact.snapshot.Rings.nodes
    with
    | Some r -> r
    | None -> Alcotest.fail "no writer ring"
  in
  let index p =
    let rec go i = function
      | [] -> None
      | (_, ev) :: rest -> if p ev then Some i else go (i + 1) rest
    in
    go 0 writer_ring.Rings.events
  in
  let must what p =
    match index p with
    | Some i -> i
    | None -> Alcotest.failf "writer ring has no %s event" what
  in
  let crashed = must "Crashed" (fun ev -> ev = Event.Crashed) in
  let rec_start =
    must "Recovery_start" (function Event.Recovery_start _ -> true | _ -> false)
  in
  let rec_finish =
    must "Recovery_finish" (function
      | Event.Recovery_finish _ -> true
      | _ -> false)
  in
  ignore (must "a Started" (fun ev -> ev = Event.Started));
  (* The second Started (post-recovery) must follow Recovery_finish. *)
  let started_after_finish =
    let rec go i seen = function
      | [] -> seen
      | (_, Event.Started) :: rest when i > rec_finish -> go (i + 1) true rest
      | _ :: rest -> go (i + 1) seen rest
    in
    go 0 false writer_ring.Rings.events
  in
  check_bool "Crashed before Recovery_start" true (crashed < rec_start);
  check_bool "Recovery_start before Recovery_finish" true
    (rec_start < rec_finish);
  check_bool "Started follows Recovery_finish" true started_after_finish;
  (* Recovery_finish carries the recovered durability points. *)
  (match List.nth writer_ring.Rings.events rec_finish with
  | _, Event.Recovery_finish { vcl; vdl } ->
    check_bool "recovered VCL positive" true (vcl > 0);
    check_bool "recovered VDL sane" true (vdl >= 0 && vdl <= vcl)
  | _ -> assert false);
  (* The fence: some storage node recorded the bumped volume epoch. *)
  let fence_epoch =
    match List.nth writer_ring.Rings.events rec_start with
    | _, Event.Recovery_start { epoch } -> epoch
    | _ -> assert false
  in
  let storage_saw_fence =
    List.exists
      (fun (r : Rings.node_ring) ->
        r.Rings.role = Event.Storage
        && List.exists
             (fun (_, ev) ->
               match ev with
               | Event.Epoch_change { volume_epoch; _ } ->
                 volume_epoch >= fence_epoch
               | _ -> false)
             r.Rings.events)
      a.Artifact.snapshot.Rings.nodes
  in
  check_bool "storage installed the fencing epoch" true storage_saw_fence

(* ---- golden explain fixture ---- *)

(* Pins the exact bytes of [aurora_cli explain 400] for the curated
   writer-crash-recovery scenario at seed 1.  Regenerate (after a
   deliberate format change) with:
     dune exec bin/aurora_cli.exe -- explain 400 \
       --scenario writer-crash-recovery --seed 1 \
       > test/recorder/explain_writer_crash_recovery.golden *)
let test_golden_explain () =
  let sc =
    match Vopr.Curated.find "writer-crash-recovery" with
    | Some sc -> sc
    | None -> Alcotest.fail "curated scenario missing"
  in
  let o = Vopr.Runner.run ~seed:1 ~record_always:true sc in
  let a =
    match o.Vopr.Runner.recorder with
    | Some a -> a
    | None -> Alcotest.fail "no recorder artifact"
  in
  let got = Artifact.explain a (Artifact.Lsn 400) in
  let want =
    In_channel.with_open_bin "explain_writer_crash_recovery.golden"
      In_channel.input_all
  in
  check_string "golden explain bytes" want got

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "recorder"
    [
      ( "event",
        [
          qc prop_event_roundtrip;
          qc prop_event_roundtrip_via_text;
          Alcotest.test_case "name tables invert" `Quick test_event_names;
        ] );
      ( "rings",
        [
          Alcotest.test_case "depth bounds" `Quick test_ring_depth_bounds;
          Alcotest.test_case "eviction" `Quick test_ring_eviction;
          Alcotest.test_case "disabled is a no-op" `Quick
            test_ring_disabled_is_noop;
        ] );
      ( "artifact",
        [ Alcotest.test_case "round-trip + explain" `Quick test_artifact_roundtrip ] );
      ( "stack",
        [
          Alcotest.test_case "crash/recover fencing order" `Slow
            test_crash_recover_ordering;
          Alcotest.test_case "golden explain" `Slow test_golden_explain;
        ] );
    ]
