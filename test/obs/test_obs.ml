open Simcore

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* Naive substring search; fine at test sizes. *)
module Astring_contains = struct
  let find ?(start = 0) haystack needle =
    let hl = String.length haystack and nl = String.length needle in
    let rec scan i =
      if i + nl > hl then None
      else if String.sub haystack i nl = needle then Some i
      else scan (i + 1)
    in
    if nl = 0 then Some start else scan start

  let contains haystack needle = find haystack needle <> None
end

(* ---- json ---- *)

let test_json_escaping () =
  check_str "quotes and control"
    "{\"k\\\"\\n\":\"a\\\\b\\tc\"}"
    (Obs.Json.to_string (Obs.Json.Obj [ ("k\"\n", Obs.Json.String "a\\b\tc") ]));
  check_str "unicode passthrough" "\"a\xe2\x86\x92b\""
    (Obs.Json.to_string (Obs.Json.String "a\xe2\x86\x92b"))

let test_json_floats () =
  check_str "integral float gets .0" "1.0"
    (Obs.Json.to_string (Obs.Json.Float 1.));
  check_str "nan is null" "null" (Obs.Json.to_string (Obs.Json.Float Float.nan));
  check_str "inf is null" "null"
    (Obs.Json.to_string (Obs.Json.Float Float.infinity));
  check_str "fraction stable" "0.25"
    (Obs.Json.to_string (Obs.Json.Float 0.25))

(* ---- registry ---- *)

let test_registry_identity () =
  let r = Obs.Registry.create () in
  let c1 = Obs.Registry.counter r "hits" in
  let c2 = Obs.Registry.counter r "hits" in
  incr c1;
  check_int "owned counter: same ref returned" 1 !c2;
  (* Distinct label sets are distinct instruments, in any key order. *)
  let la = Obs.Registry.counter r ~labels:[ ("pg", "0"); ("az", "az1") ] "hits" in
  let lb = Obs.Registry.counter r ~labels:[ ("az", "az1"); ("pg", "0") ] "hits" in
  let lc = Obs.Registry.counter r ~labels:[ ("pg", "1"); ("az", "az1") ] "hits" in
  incr la;
  check_int "label order irrelevant" 1 !lb;
  check_int "different labels distinct" 0 !lc;
  check_int "cardinality" 3 (Obs.Registry.cardinality r);
  (* Same identity, different kind: refused. *)
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Obs.Registry: hits{} already registered as a counter")
    (fun () -> ignore (Obs.Registry.gauge r "hits" : float ref))

let test_registry_snapshot_filter () =
  let r = Obs.Registry.create () in
  let c = Obs.Registry.counter r ~labels:[ ("pg", "0") ] "x" in
  incr c;
  ignore (Obs.Registry.counter r ~labels:[ ("pg", "1") ] "x" : int ref);
  ignore (Obs.Registry.counter r "global" : int ref);
  let rendered where = Obs.Json.to_string (Obs.Registry.snapshot ~where r) in
  let with_pg0 = rendered [ ("pg", "0") ] in
  Alcotest.(check bool) "keeps pg=0" true
    (String.length with_pg0 > 0
    && Astring_contains.contains with_pg0 "\"pg\":\"0\"");
  Alcotest.(check bool) "drops pg=1" false
    (Astring_contains.contains with_pg0 "\"pg\":\"1\"");
  Alcotest.(check bool) "keeps unlabelled" true
    (Astring_contains.contains with_pg0 "global")

(* ---- trace ring ---- *)

let test_trace_ring () =
  let tr = Obs.Trace.create ~capacity:3 () in
  Obs.Trace.enable tr;
  for i = 1 to 5 do
    Obs.Trace.read tr ~at:(Time_ns.ns i) ~pg:i Obs.Trace.Read_tracked
  done;
  check_int "capped" 3 (Obs.Trace.length tr);
  (match Obs.Trace.events tr with
  | (at, Obs.Trace.Read { pg; _ }) :: _ ->
    check_int "oldest surviving at" 3 at;
    check_int "oldest surviving pg" 3 pg
  | _ -> Alcotest.fail "expected Read events");
  check_int "tail 2" 2 (List.length (Obs.Trace.tail tr 2));
  Obs.Trace.clear tr;
  check_int "cleared" 0 (Obs.Trace.length tr)

let test_trace_disabled_zero_alloc () =
  let tr = Obs.Trace.create ~capacity:64 () in
  (* Warm up so any one-time allocation is out of the measured window. *)
  Obs.Trace.read tr ~at:0 ~pg:0 Obs.Trace.Read_tracked;
  let before = Gc.minor_words () in
  for i = 1 to 1000 do
    Obs.Trace.commit_stage tr ~at:i ~lsn:i ~member:(-1) Obs.Trace.Lsn_allocated;
    Obs.Trace.read tr ~at:i ~pg:0 Obs.Trace.Read_cache_hit
  done;
  let allocated = Gc.minor_words () -. before in
  check_int "disabled trace stays empty" 0 (Obs.Trace.length tr);
  Alcotest.(check bool)
    (Printf.sprintf "allocation-free while disabled (%.0f words)" allocated)
    true (allocated < 256.)

(* ---- commit path ---- *)

let test_commit_path_pairs () =
  let reg = Obs.Registry.create () in
  let tr = Obs.Trace.create () in
  let cp = Obs.Commit_path.create ~registry:reg ~trace:tr () in
  let mark ~at ~lsn ?member st = Obs.Commit_path.mark cp ~at ~lsn ?member st in
  (* One record through the whole pipeline. *)
  mark ~at:0 ~lsn:1 Obs.Trace.Lsn_allocated;
  mark ~at:10 ~lsn:1 Obs.Trace.Boxcar_flushed;
  mark ~at:10 ~lsn:1 Obs.Trace.Net_sent;
  mark ~at:510 ~lsn:1 ~member:2 Obs.Trace.Node_acked;
  mark ~at:520 ~lsn:1 ~member:4 Obs.Trace.Node_acked (* idempotent: later ack ignored *);
  mark ~at:600 ~lsn:1 Obs.Trace.Pgcl_advanced;
  mark ~at:600 ~lsn:1 Obs.Trace.Vcl_advanced;
  mark ~at:700 ~lsn:1 Obs.Trace.Vdl_advanced;
  mark ~at:650 ~lsn:1 Obs.Trace.Commit_acked;
  let hist stage_a stage_b =
    let label = Obs.Commit_path.stage_label stage_a stage_b in
    match
      List.find_opt
        (fun (labels, _) -> List.mem ("stage", label) labels)
        (Obs.Registry.find_histograms reg "commit_stage_ns")
    with
    | Some (_, h) -> h
    | None -> Alcotest.failf "no histogram for %s" label
  in
  let h = hist Obs.Trace.Boxcar_flushed Obs.Trace.Node_acked in
  check_int "marquee boxcar->ack count" 1 (Histogram.count h);
  check_int "marquee boxcar->ack value" 500 (Histogram.max_value h);
  let h = hist Obs.Trace.Vcl_advanced Obs.Trace.Commit_acked in
  check_int "marquee vcl->commit count" 1 (Histogram.count h);
  check_int "marquee vcl->commit value" 50 (Histogram.max_value h);
  let h = hist Obs.Trace.Net_sent Obs.Trace.Node_acked in
  check_int "nearest-prev pair value" 500 (Histogram.max_value h);
  check_int "one live timeline" 1 (Obs.Commit_path.live_timelines cp);
  Obs.Commit_path.clear cp;
  check_int "cleared" 0 (Obs.Commit_path.live_timelines cp)

let test_commit_path_eviction () =
  let reg = Obs.Registry.create () in
  let tr = Obs.Trace.create () in
  let cp = Obs.Commit_path.create ~capacity:8 ~registry:reg ~trace:tr () in
  for lsn = 1 to 20 do
    Obs.Commit_path.mark cp ~at:lsn ~lsn Obs.Trace.Lsn_allocated
  done;
  check_int "timelines capped" 8 (Obs.Commit_path.live_timelines cp);
  (* A mark on an evicted LSN is dropped, not resurrected. *)
  Obs.Commit_path.mark cp ~at:100 ~lsn:1 Obs.Trace.Boxcar_flushed;
  check_int "evicted lsn not resurrected" 8 (Obs.Commit_path.live_timelines cp)

(* ---- whole-cluster determinism ---- *)

let run_cluster seed =
  let cluster =
    Harness.Cluster.create { Harness.Cluster.default_config with seed }
  in
  Obs.Ctx.enable_tracing (Harness.Cluster.obs cluster);
  let sim = Harness.Cluster.sim cluster in
  let gen =
    Workload.Txn_gen.create ~sim ~rng:(Rng.create (seed + 1))
      ~db:(Harness.Cluster.db cluster)
      ~profile:Workload.Txn_gen.default_profile ()
  in
  Workload.Txn_gen.run_open_loop gen ~rate_per_sec:2000.
    ~duration:(Time_ns.ms 100);
  Sim.run_until sim (Time_ns.sec 2);
  let obs = Harness.Cluster.obs cluster in
  Obs.Json.to_string
    (Obs.Ctx.snapshot_at ~at:(Sim.now sim) ~trace_tail:50 obs)

let test_cluster_snapshot_deterministic () =
  let a = run_cluster 11 in
  let b = run_cluster 11 in
  check_str "same seed, byte-identical snapshots" a b;
  let c = run_cluster 12 in
  Alcotest.(check bool) "different seed differs" false (String.equal a c)

let test_cluster_snapshot_contents () =
  let s = run_cluster 11 in
  let has sub = Astring_contains.contains s sub in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "snapshot has %s" needle) true
        (has needle))
    [
      (* marquee commit-path stage histograms *)
      "boxcar_flushed\xe2\x86\x92node_acked";
      "vcl_advanced\xe2\x86\x92commit_acked";
      (* every pre-existing ad-hoc metric record surfaces *)
      "db_txns_committed";
      "db_commit_latency_ns";
      "net_dropped_random";
      "storage_records_stored";
      "read_latency_ns";
      "pg_pgcl";
    ];
  (* Marquee histograms must have nonzero counts: find the first
     commit_stage_ns entry for the marquee label and check count > 0. *)
  let idx =
    match Astring_contains.find s "boxcar_flushed\xe2\x86\x92node_acked" with
    | Some i -> i
    | None -> Alcotest.fail "marquee label missing"
  in
  let count_idx =
    match Astring_contains.find ~start:idx s "\"count\":" with
    | Some i -> i + String.length "\"count\":"
    | None -> Alcotest.fail "no count after marquee label"
  in
  Alcotest.(check bool) "marquee count nonzero" true
    (s.[count_idx] <> '0')

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "floats" `Quick test_json_floats;
        ] );
      ( "registry",
        [
          Alcotest.test_case "identity" `Quick test_registry_identity;
          Alcotest.test_case "snapshot filter" `Quick
            test_registry_snapshot_filter;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring eviction" `Quick test_trace_ring;
          Alcotest.test_case "disabled zero-alloc" `Quick
            test_trace_disabled_zero_alloc;
        ] );
      ( "commit path",
        [
          Alcotest.test_case "stage pairs" `Quick test_commit_path_pairs;
          Alcotest.test_case "timeline eviction" `Quick
            test_commit_path_eviction;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "snapshot determinism" `Quick
            test_cluster_snapshot_deterministic;
          Alcotest.test_case "snapshot contents" `Quick
            test_cluster_snapshot_contents;
        ] );
    ]
