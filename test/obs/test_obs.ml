open Simcore

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

(* Naive substring search; fine at test sizes. *)
module Astring_contains = struct
  let find ?(start = 0) haystack needle =
    let hl = String.length haystack and nl = String.length needle in
    let rec scan i =
      if i + nl > hl then None
      else if String.sub haystack i nl = needle then Some i
      else scan (i + 1)
    in
    if nl = 0 then Some start else scan start

  let contains haystack needle = find haystack needle <> None
end

(* ---- json ---- *)

let test_json_escaping () =
  check_str "quotes and control"
    "{\"k\\\"\\n\":\"a\\\\b\\tc\"}"
    (Obs.Json.to_string (Obs.Json.Obj [ ("k\"\n", Obs.Json.String "a\\b\tc") ]));
  check_str "unicode passthrough" "\"a\xe2\x86\x92b\""
    (Obs.Json.to_string (Obs.Json.String "a\xe2\x86\x92b"))

let test_json_floats () =
  check_str "integral float gets .0" "1.0"
    (Obs.Json.to_string (Obs.Json.Float 1.));
  check_str "nan is null" "null" (Obs.Json.to_string (Obs.Json.Float Float.nan));
  check_str "inf is null" "null"
    (Obs.Json.to_string (Obs.Json.Float Float.infinity));
  check_str "fraction stable" "0.25"
    (Obs.Json.to_string (Obs.Json.Float 0.25))

(* ---- registry ---- *)

let test_registry_identity () =
  let r = Obs.Registry.create () in
  let c1 = Obs.Registry.counter r "hits" in
  let c2 = Obs.Registry.counter r "hits" in
  incr c1;
  check_int "owned counter: same ref returned" 1 !c2;
  (* Distinct label sets are distinct instruments, in any key order. *)
  let la = Obs.Registry.counter r ~labels:[ ("pg", "0"); ("az", "az1") ] "hits" in
  let lb = Obs.Registry.counter r ~labels:[ ("az", "az1"); ("pg", "0") ] "hits" in
  let lc = Obs.Registry.counter r ~labels:[ ("pg", "1"); ("az", "az1") ] "hits" in
  incr la;
  check_int "label order irrelevant" 1 !lb;
  check_int "different labels distinct" 0 !lc;
  check_int "cardinality" 3 (Obs.Registry.cardinality r);
  (* Same identity, different kind: refused. *)
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Obs.Registry: hits{} already registered as a counter")
    (fun () -> ignore (Obs.Registry.gauge r "hits" : float ref))

let test_registry_snapshot_filter () =
  let r = Obs.Registry.create () in
  let c = Obs.Registry.counter r ~labels:[ ("pg", "0") ] "x" in
  incr c;
  ignore (Obs.Registry.counter r ~labels:[ ("pg", "1") ] "x" : int ref);
  ignore (Obs.Registry.counter r "global" : int ref);
  let rendered where = Obs.Json.to_string (Obs.Registry.snapshot ~where r) in
  let with_pg0 = rendered [ ("pg", "0") ] in
  Alcotest.(check bool) "keeps pg=0" true
    (String.length with_pg0 > 0
    && Astring_contains.contains with_pg0 "\"pg\":\"0\"");
  Alcotest.(check bool) "drops pg=1" false
    (Astring_contains.contains with_pg0 "\"pg\":\"1\"");
  Alcotest.(check bool) "keeps unlabelled" true
    (Astring_contains.contains with_pg0 "global")

(* ---- trace ring ---- *)

let test_trace_ring () =
  let tr = Obs.Trace.create ~capacity:3 () in
  Obs.Trace.enable tr;
  for i = 1 to 5 do
    Obs.Trace.read tr ~at:(Time_ns.ns i) ~pg:i Obs.Trace.Read_tracked
  done;
  check_int "capped" 3 (Obs.Trace.length tr);
  (match Obs.Trace.events tr with
  | (at, Obs.Trace.Read { pg; _ }) :: _ ->
    check_int "oldest surviving at" 3 at;
    check_int "oldest surviving pg" 3 pg
  | _ -> Alcotest.fail "expected Read events");
  check_int "tail 2" 2 (List.length (Obs.Trace.tail tr 2));
  Obs.Trace.clear tr;
  check_int "cleared" 0 (Obs.Trace.length tr)

let test_trace_disabled_zero_alloc () =
  let tr = Obs.Trace.create ~capacity:64 () in
  (* Warm up so any one-time allocation is out of the measured window. *)
  Obs.Trace.read tr ~at:0 ~pg:0 Obs.Trace.Read_tracked;
  let before = Gc.minor_words () in
  for i = 1 to 1000 do
    Obs.Trace.commit_stage tr ~at:i ~lsn:i ~member:(-1) ~pg:(-1)
      Obs.Trace.Lsn_allocated;
    Obs.Trace.read tr ~at:i ~pg:0 Obs.Trace.Read_cache_hit
  done;
  let allocated = Gc.minor_words () -. before in
  check_int "disabled trace stays empty" 0 (Obs.Trace.length tr);
  Alcotest.(check bool)
    (Printf.sprintf "allocation-free while disabled (%.0f words)" allocated)
    true (allocated < 256.)

(* ---- commit path ---- *)

let test_commit_path_pairs () =
  let reg = Obs.Registry.create () in
  let tr = Obs.Trace.create () in
  let cp = Obs.Commit_path.create ~registry:reg ~trace:tr () in
  let mark ~at ~lsn ?member st = Obs.Commit_path.mark cp ~at ~lsn ?member st in
  (* One record through the whole pipeline. *)
  mark ~at:0 ~lsn:1 Obs.Trace.Lsn_allocated;
  mark ~at:10 ~lsn:1 Obs.Trace.Boxcar_flushed;
  mark ~at:10 ~lsn:1 Obs.Trace.Net_sent;
  mark ~at:510 ~lsn:1 ~member:2 Obs.Trace.Node_acked;
  mark ~at:520 ~lsn:1 ~member:4 Obs.Trace.Node_acked (* idempotent: later ack ignored *);
  mark ~at:600 ~lsn:1 Obs.Trace.Pgcl_advanced;
  mark ~at:600 ~lsn:1 Obs.Trace.Vcl_advanced;
  mark ~at:700 ~lsn:1 Obs.Trace.Vdl_advanced;
  mark ~at:650 ~lsn:1 Obs.Trace.Commit_acked;
  let hist stage_a stage_b =
    let label = Obs.Commit_path.stage_label stage_a stage_b in
    match
      List.find_opt
        (fun (labels, _) -> List.mem ("stage", label) labels)
        (Obs.Registry.find_histograms reg "commit_stage_ns")
    with
    | Some (_, h) -> h
    | None -> Alcotest.failf "no histogram for %s" label
  in
  let h = hist Obs.Trace.Boxcar_flushed Obs.Trace.Node_acked in
  check_int "marquee boxcar->ack count" 1 (Histogram.count h);
  check_int "marquee boxcar->ack value" 500 (Histogram.max_value h);
  let h = hist Obs.Trace.Vcl_advanced Obs.Trace.Commit_acked in
  check_int "marquee vcl->commit count" 1 (Histogram.count h);
  check_int "marquee vcl->commit value" 50 (Histogram.max_value h);
  let h = hist Obs.Trace.Net_sent Obs.Trace.Node_acked in
  check_int "nearest-prev pair value" 500 (Histogram.max_value h);
  check_int "one live timeline" 1 (Obs.Commit_path.live_timelines cp);
  Obs.Commit_path.clear cp;
  check_int "cleared" 0 (Obs.Commit_path.live_timelines cp)

let test_commit_path_eviction () =
  let reg = Obs.Registry.create () in
  let tr = Obs.Trace.create () in
  let cp = Obs.Commit_path.create ~capacity:8 ~registry:reg ~trace:tr () in
  for lsn = 1 to 20 do
    Obs.Commit_path.mark cp ~at:lsn ~lsn Obs.Trace.Lsn_allocated
  done;
  check_int "timelines capped" 8 (Obs.Commit_path.live_timelines cp);
  (* A mark on an evicted LSN is dropped, not resurrected. *)
  Obs.Commit_path.mark cp ~at:100 ~lsn:1 Obs.Trace.Boxcar_flushed;
  check_int "evicted lsn not resurrected" 8 (Obs.Commit_path.live_timelines cp)

(* ---- whole-cluster determinism ---- *)

let run_cluster seed =
  let cluster =
    Harness.Cluster.create { Harness.Cluster.default_config with seed }
  in
  Obs.Ctx.enable_tracing (Harness.Cluster.obs cluster);
  let sim = Harness.Cluster.sim cluster in
  let gen =
    Workload.Txn_gen.create ~sim ~rng:(Rng.create (seed + 1))
      ~db:(Harness.Cluster.db cluster)
      ~profile:Workload.Txn_gen.default_profile ()
  in
  Workload.Txn_gen.run_open_loop gen ~rate_per_sec:2000.
    ~duration:(Time_ns.ms 100);
  Sim.run_until sim (Time_ns.sec 2);
  let obs = Harness.Cluster.obs cluster in
  Obs.Json.to_string
    (Obs.Ctx.snapshot_at ~at:(Sim.now sim) ~trace_tail:50 obs)

let test_cluster_snapshot_deterministic () =
  let a = run_cluster 11 in
  let b = run_cluster 11 in
  check_str "same seed, byte-identical snapshots" a b;
  let c = run_cluster 12 in
  Alcotest.(check bool) "different seed differs" false (String.equal a c)

let test_cluster_snapshot_contents () =
  let s = run_cluster 11 in
  let has sub = Astring_contains.contains s sub in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "snapshot has %s" needle) true
        (has needle))
    [
      (* marquee commit-path stage histograms *)
      "boxcar_flushed\xe2\x86\x92node_acked";
      "vcl_advanced\xe2\x86\x92commit_acked";
      (* every pre-existing ad-hoc metric record surfaces *)
      "db_txns_committed";
      "db_commit_latency_ns";
      "net_dropped_random";
      "storage_records_stored";
      "read_latency_ns";
      "pg_pgcl";
    ];
  (* Marquee histograms must have nonzero counts: find the first
     commit_stage_ns entry for the marquee label and check count > 0. *)
  let idx =
    match Astring_contains.find s "boxcar_flushed\xe2\x86\x92node_acked" with
    | Some i -> i
    | None -> Alcotest.fail "marquee label missing"
  in
  let count_idx =
    match Astring_contains.find ~start:idx s "\"count\":" with
    | Some i -> i + String.length "\"count\":"
    | None -> Alcotest.fail "no count after marquee label"
  in
  Alcotest.(check bool) "marquee count nonzero" true
    (s.[count_idx] <> '0')

(* ---- json properties (qcheck) ---- *)

(* Minimal JSON reader, just enough to validate the encoder's output:
   numbers containing '.', 'e' or 'E' read back as [Float], others as
   [Int].  Raises [Bad] on anything malformed, so "it parses" is itself
   the property under test. *)
module Json_parse = struct
  exception Bad of string

  let parse (s : string) : Obs.Json.t =
    let pos = ref 0 in
    let len = String.length s in
    let peek () = if !pos >= len then raise (Bad "eof") else s.[!pos] in
    let advance () = incr pos in
    let expect c =
      if peek () <> c then raise (Bad (Printf.sprintf "expected %c" c));
      advance ()
    in
    let rec skip_ws () =
      if
        !pos < len
        && match s.[!pos] with ' ' | '\n' | '\t' | '\r' -> true | _ -> false
      then begin
        advance ();
        skip_ws ()
      end
    in
    let hex c =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> raise (Bad "hex digit")
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '"' ->
          advance ();
          Buffer.contents b
        | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char b '"'; advance ()
          | '\\' -> Buffer.add_char b '\\'; advance ()
          | '/' -> Buffer.add_char b '/'; advance ()
          | 'n' -> Buffer.add_char b '\n'; advance ()
          | 'r' -> Buffer.add_char b '\r'; advance ()
          | 't' -> Buffer.add_char b '\t'; advance ()
          | 'b' -> Buffer.add_char b '\b'; advance ()
          | 'f' -> Buffer.add_char b '\012'; advance ()
          | 'u' ->
            advance ();
            let code = ref 0 in
            for _ = 1 to 4 do
              code := (!code * 16) + hex (peek ());
              advance ()
            done;
            if !code > 0xff then raise (Bad "non-latin1 \\u escape")
            else Buffer.add_char b (Char.chr !code)
          | c -> raise (Bad (Printf.sprintf "escape \\%c" c)));
          go ()
        | c ->
          Buffer.add_char b c;
          advance ();
          go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < len && is_num_char s.[!pos] do
        advance ()
      done;
      let tok = String.sub s start (!pos - start) in
      if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
        Obs.Json.Float (float_of_string tok)
      else Obs.Json.Int (int_of_string tok)
    in
    let literal word v =
      let n = String.length word in
      if !pos + n <= len && String.sub s !pos n = word then begin
        pos := !pos + n;
        v
      end
      else raise (Bad word)
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '"' -> Obs.Json.String (parse_string ())
      | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obs.Json.Obj []
        end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | ',' -> advance (); fields_loop ()
            | '}' -> advance ()
            | _ -> raise (Bad "object separator")
          in
          fields_loop ();
          Obs.Json.Obj (List.rev !fields)
        end
      | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          Obs.Json.List []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | ',' -> advance (); items_loop ()
            | ']' -> advance ()
            | _ -> raise (Bad "array separator")
          in
          items_loop ();
          Obs.Json.List (List.rev !items)
        end
      | 't' -> literal "true" (Obs.Json.Bool true)
      | 'f' -> literal "false" (Obs.Json.Bool false)
      | 'n' -> literal "null" Obs.Json.Null
      | _ -> parse_number ()
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then raise (Bad "trailing garbage");
    v
end

let prop_json_escape_valid =
  QCheck.Test.make ~name:"escape: arbitrary bytes round-trip through parse"
    ~count:500 QCheck.string (fun s ->
      Json_parse.parse ("\"" ^ Obs.Json.escape s ^ "\"") = Obs.Json.String s)

let prop_json_float_roundtrip =
  QCheck.Test.make
    ~name:"float repr: emitted values reparse to the exact same value"
    ~count:1000 QCheck.float
    (fun f0 ->
      QCheck.assume (Float.is_finite f0);
      let repr f = Obs.Json.to_string (Obs.Json.Float f) in
      (* One encode+parse lands on the decimal grid the encoder emits
         (9 significant digits, or exact fixed-point for integral values);
         from there print/parse must be lossless both ways. *)
      let f = float_of_string (repr f0) in
      let s = repr f in
      Float.equal (float_of_string s) f && String.equal (repr (float_of_string s)) s)

let test_json_nonfinite_null () =
  check_str "nan and infinities all encode as null" "[null,null,null]"
    (Obs.Json.to_string
       (Obs.Json.List
          [
            Obs.Json.Float Float.nan;
            Obs.Json.Float Float.infinity;
            Obs.Json.Float Float.neg_infinity;
          ]))

let json_gen : Obs.Json.t QCheck.Gen.t =
  let open QCheck.Gen in
  let finite f = if Float.is_finite f then f else 0. in
  let scalar =
    oneof
      [
        return Obs.Json.Null;
        map (fun b -> Obs.Json.Bool b) bool;
        map (fun i -> Obs.Json.Int i) int;
        map (fun f -> Obs.Json.Float (finite f)) float;
        map (fun s -> Obs.Json.String s) (string_size (int_bound 12));
      ]
  in
  sized
    (fix (fun self n ->
         if n <= 0 then scalar
         else
           frequency
             [
               (3, scalar);
               ( 1,
                 map
                   (fun l -> Obs.Json.List l)
                   (list_size (int_bound 4) (self (n / 2))) );
               ( 1,
                 map
                   (fun kvs -> Obs.Json.Obj kvs)
                   (list_size (int_bound 4)
                      (pair (string_size (int_bound 6)) (self (n / 2)))) );
             ]))

let prop_json_pretty_equiv =
  QCheck.Test.make ~name:"pretty and compact renderings parse identically"
    ~count:300
    (QCheck.make ~print:(fun j -> Obs.Json.to_string ~pretty:true j) json_gen)
    (fun j ->
      Json_parse.parse (Obs.Json.to_string j)
      = Json_parse.parse (Obs.Json.to_string ~pretty:true j))

(* ---- Obs.Json.of_string (the library's own parser) ---- *)

let test_json_of_string_values () =
  let ok s = match Obs.Json.of_string s with
    | Ok v -> v
    | Error e -> Alcotest.failf "%S should parse: %s" s e
  in
  check_bool "null" true (ok "null" = Obs.Json.Null);
  check_bool "bools" true
    (ok " true " = Obs.Json.Bool true && ok "false" = Obs.Json.Bool false);
  check_bool "int stays Int" true (ok "-42" = Obs.Json.Int (-42));
  check_bool "dotted number becomes Float" true
    (ok "1.0" = Obs.Json.Float 1.0);
  check_bool "exponent becomes Float" true
    (ok "5e3" = Obs.Json.Float 5000.);
  check_bool "escapes decode" true
    (ok {|"a\n\t\"\\b"|} = Obs.Json.String "a\n\t\"\\b");
  check_bool "control-char \\u escape decodes" true
    (ok {|"\u0007"|} = Obs.Json.String "\007");
  check_bool "three-byte \\u escape decodes to UTF-8" true
    (ok {|"\uBEEF"|} = Obs.Json.String "\xeb\xbb\xaf");
  check_bool "surrogate pair decodes to a single scalar" true
    (* U+1F600 via its surrogate halves. *)
    (ok {|"\uD83D\uDE00"|} = Obs.Json.String "\xf0\x9f\x98\x80");
  check_bool "nested structure" true
    (ok {|{"k": [1, {"x": null}], "s": ""}|}
    = Obs.Json.Obj
        [
          ("k", Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Obj [ ("x", Obs.Json.Null) ] ]);
          ("s", Obs.Json.String "");
        ])

let test_json_of_string_errors () =
  let bad s = match Obs.Json.of_string s with
    | Ok _ -> Alcotest.failf "%S should not parse" s
    | Error e -> e
  in
  ignore (bad "" : string);
  ignore (bad "tru" : string);
  ignore (bad "[1," : string);
  ignore (bad {|{"a" 1}|} : string);
  ignore (bad {|"\q"|} : string);
  ignore (bad {|"\uZZZZ"|} : string);
  ignore (bad {|"\uD83D"|} : string); (* unpaired high surrogate *)
  ignore (bad {|"\uDE00"|} : string); (* unpaired low surrogate *)
  ignore (bad {|"\uD83Dx"|} : string); (* high surrogate, no \u follow-up *)
  ignore (bad {|"unterminated|} : string);
  (* trailing garbage is an error, and the offset points at it *)
  check_bool "trailing input rejected with offset" true
    (let e = bad "1 x" in
     String.length e > 0
     &&
     match String.index_opt e '2' with
     | Some _ -> true (* "at byte 2" *)
     | None -> false)

let test_json_of_string_depth () =
  let nested n = String.make n '[' ^ "1" ^ String.make n ']' in
  (match Obs.Json.of_string (nested 200) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "depth 200 should parse: %s" e);
  match Obs.Json.of_string (nested 100_000) with
  | Ok _ -> Alcotest.fail "absurd nesting should be rejected"
  | Error e ->
    check_bool "depth error mentions nesting" true
      (Astring_contains.contains e "nest")

(* print . parse . print = print: re-rendering a parsed document reproduces
   the original bytes, compact and pretty alike.  (parse . print is not the
   identity on floats beyond 9 significant digits — the printer's documented
   precision — but the re-rendered bytes are still stable.) *)
let prop_json_of_string_roundtrip =
  QCheck.Test.make ~name:"of_string round-trips to_string output" ~count:300
    (QCheck.make ~print:(fun j -> Obs.Json.to_string ~pretty:true j) json_gen)
    (fun j ->
      let compact = Obs.Json.to_string j in
      let pretty = Obs.Json.to_string ~pretty:true j in
      match (Obs.Json.of_string compact, Obs.Json.of_string pretty) with
      | Ok a, Ok b ->
        Obs.Json.to_string a = compact
        && Obs.Json.to_string ~pretty:true b = pretty
        && a = b
      | _ -> false)

(* ---- series ---- *)

let test_series_counter_rate () =
  let reg = Obs.Registry.create () in
  let s = Obs.Series.create ~registry:reg () in
  let c = Obs.Registry.counter reg "ticks" in
  Obs.Series.track_counter s "ticks";
  check_int "one channel" 1 (Obs.Series.n_channels s);
  Alcotest.(check (list string)) "default label" [ "ticks/s" ]
    (Obs.Series.channel_labels s);
  c := 100;
  Obs.Series.sample s ~at:(Time_ns.ms 100);
  c := !c + 50;
  Obs.Series.sample s ~at:(Time_ns.ms 200);
  match Obs.Series.points s "ticks/s" with
  | None -> Alcotest.fail "channel missing"
  | Some pts ->
    check_int "two samples" 2 (Array.length pts);
    Alcotest.(check (float 1e-6)) "first window rate (from t=0)" 1000. pts.(0);
    Alcotest.(check (float 1e-6)) "second window rate" 500. pts.(1)

let test_series_decimation () =
  let reg = Obs.Registry.create () in
  let s = Obs.Series.create ~capacity:4 ~registry:reg () in
  let v = ref 0. in
  Obs.Series.track_fn s ~label:"v" (fun () -> !v);
  (* 10 uniform ticks into capacity 4: two decimations, stride 1->2->4.
     Recorded ticks are deterministic: 1,2,3,4 | compact to 1,3,4, +5 |
     compact to 1,4,5, +7 | ticks 8..10 swallowed. *)
  for i = 1 to 10 do
    v := float_of_int i;
    Obs.Series.sample s ~at:(Time_ns.ms (10 * i))
  done;
  check_int "bounded" 4 (Obs.Series.n_samples s);
  check_int "stride doubled twice" 4 (Obs.Series.stride s);
  let ts = Obs.Series.timestamps s in
  Alcotest.(check (array int)) "first and newest recorded samples survive"
    [| Time_ns.ms 10; Time_ns.ms 40; Time_ns.ms 50; Time_ns.ms 70 |]
    ts;
  Array.iteri
    (fun i at ->
      if i > 0 then
        Alcotest.(check bool) "timestamps strictly increase" true
          (at > ts.(i - 1)))
    ts;
  match Obs.Series.points s "v" with
  | None -> Alcotest.fail "channel missing"
  | Some pts ->
    Alcotest.(check (array (float 1e-9))) "points stay paired with times"
      [| 1.; 4.; 5.; 7. |] pts

(* ---- health ---- *)

let test_health_edges_synthetic () =
  let tr = Obs.Trace.create () in
  Obs.Trace.enable tr;
  let h = Obs.Health.create ~trace:tr () in
  let mk ~at ~wm ~az1 =
    {
      Obs.Health.at;
      pgs =
        [
          {
            Obs.Health.pg = 0;
            total = 6;
            reachable = (if wm >= 0 then 4 + wm else 3);
            ack_current = 4;
            write_margin = wm;
            read_margin = wm + 1;
            az_plus_one = az1;
            epoch = 1;
          };
        ];
      volume =
        { Obs.Health.vdl_vcl_gap = 0; commit_queue_depth = 0; max_replica_lag = 0 };
    }
  in
  Obs.Health.observe h ~at:0 (mk ~at:0 ~wm:2 ~az1:true);
  check_int "healthy start: no transitions" 0 (Obs.Health.transitions h);
  Obs.Health.observe h ~at:(Time_ns.ms 100)
    (mk ~at:(Time_ns.ms 100) ~wm:(-1) ~az1:false);
  check_int "quorum + AZ+1 loss fire one edge each" 2 (Obs.Health.transitions h);
  Obs.Health.observe h ~at:(Time_ns.ms 150)
    (mk ~at:(Time_ns.ms 150) ~wm:(-1) ~az1:false);
  check_int "steady unhealthy state: no re-fire" 2 (Obs.Health.transitions h);
  Obs.Health.observe h ~at:(Time_ns.ms 200)
    (mk ~at:(Time_ns.ms 200) ~wm:0 ~az1:true);
  check_int "recovery fires one edge each" 4 (Obs.Health.transitions h);
  (* [0,100) available from the t=0 sample, [100,200) not: exactly half. *)
  Alcotest.(check (float 1e-9)) "availability integrates previous state" 0.5
    (Obs.Health.write_available_fraction h);
  check_int "observed span" (Time_ns.ms 200) (Obs.Health.observed_ns h);
  let count edge =
    List.length
      (List.filter
         (fun (_, e) ->
           match e with
           | Obs.Trace.Health { edge = e'; _ } -> e' = edge
           | _ -> false)
         (Obs.Trace.events tr))
  in
  List.iter
    (fun e -> check_int (Obs.Trace.health_edge_name e) 1 (count e))
    [
      Obs.Trace.Write_quorum_lost;
      Obs.Trace.Write_quorum_regained;
      Obs.Trace.Az_plus_one_lost;
      Obs.Trace.Az_plus_one_regained;
    ]

let test_cluster_health_edges () =
  let cluster =
    Harness.Cluster.create
      { Harness.Cluster.default_config with seed = 5; n_pgs = 1 }
  in
  let obs = Harness.Cluster.obs cluster in
  Obs.Ctx.enable_tracing obs;
  let sim = Harness.Cluster.sim cluster in
  let tr = Obs.Ctx.trace obs in
  let health_counts () =
    List.fold_left
      (fun (wl, wr, al, ar) (_, e) ->
        match e with
        | Obs.Trace.Health { edge = Obs.Trace.Write_quorum_lost; _ } ->
          (wl + 1, wr, al, ar)
        | Obs.Trace.Health { edge = Obs.Trace.Write_quorum_regained; _ } ->
          (wl, wr + 1, al, ar)
        | Obs.Trace.Health { edge = Obs.Trace.Az_plus_one_lost; _ } ->
          (wl, wr, al + 1, ar)
        | Obs.Trace.Health { edge = Obs.Trace.Az_plus_one_regained; _ } ->
          (wl, wr, al, ar + 1)
        | _ -> (wl, wr, al, ar))
      (0, 0, 0, 0) (Obs.Trace.events tr)
  in
  let check_counts label (wl, wr, al, ar) =
    let gwl, gwr, gal, gar = health_counts () in
    Alcotest.(check (list int)) label [ wl; wr; al; ar ] [ gwl; gwr; gal; gar ]
  in
  Sim.run_until sim (Time_ns.ms 200);
  check_counts "baseline healthy" (0, 0, 0, 0);
  (* One whole AZ down: 4/6 write quorum exactly satisfied (margin 0) but
     AZ+1 is gone — only the AZ+1 edge fires. *)
  Harness.Cluster.fail_az cluster (Quorum.Az.of_int 2);
  Sim.run_until sim (Time_ns.ms 400);
  check_counts "AZ outage: AZ+1 lost, writes still up" (0, 0, 1, 0);
  let pg = Storage.Pg_id.of_int 0 in
  let victim =
    List.find
      (fun m -> Quorum.Az.to_int m.Quorum.Membership.az <> 2)
      (Harness.Cluster.members_of_pg cluster pg)
  in
  Harness.Cluster.crash_storage_node cluster pg victim.Quorum.Membership.id;
  Sim.run_until sim (Time_ns.ms 600);
  check_counts "AZ + one more: write quorum lost exactly once" (1, 0, 1, 0);
  Harness.Cluster.restart_storage_node cluster pg victim.Quorum.Membership.id;
  Sim.run_until sim (Time_ns.ms 800);
  check_counts "node restart: write quorum regained once" (1, 1, 1, 0);
  Harness.Cluster.restore_az cluster (Quorum.Az.of_int 2);
  Sim.run_until sim (Time_ns.ms 1000);
  check_counts "AZ restored: AZ+1 regained once" (1, 1, 1, 1);
  (* The availability accumulator saw the outage window. *)
  let frac =
    Obs.Health.write_available_fraction (Obs.Ctx.health obs)
  in
  Alcotest.(check bool) "availability dipped below 1" true (frac < 1.);
  Alcotest.(check bool) "but mostly up" true (frac > 0.5)

(* ---- trace dropped counter ---- *)

let test_trace_dropped () =
  let tr = Obs.Trace.create ~capacity:3 () in
  (* Disabled pushes neither store nor drop. *)
  for i = 1 to 5 do
    Obs.Trace.read tr ~at:i ~pg:0 Obs.Trace.Read_tracked
  done;
  check_int "disabled: nothing dropped" 0 (Obs.Trace.dropped tr);
  Obs.Trace.enable tr;
  for i = 1 to 5 do
    Obs.Trace.read tr ~at:i ~pg:0 Obs.Trace.Read_tracked
  done;
  check_int "capacity accessor" 3 (Obs.Trace.capacity tr);
  check_int "overflow counted" 2 (Obs.Trace.dropped tr);
  Obs.Trace.clear tr;
  check_int "clear resets dropped" 0 (Obs.Trace.dropped tr)

(* ---- commit-path timelines / pg latch ---- *)

let test_commit_path_timelines () =
  let reg = Obs.Registry.create () in
  let tr = Obs.Trace.create () in
  let cp = Obs.Commit_path.create ~registry:reg ~trace:tr () in
  Obs.Commit_path.mark cp ~at:100 ~lsn:7 ~pg:1 Obs.Trace.Lsn_allocated;
  Obs.Commit_path.mark cp ~at:500 ~lsn:7 Obs.Trace.Boxcar_flushed;
  Obs.Commit_path.mark cp ~at:900 ~lsn:9 Obs.Trace.Lsn_allocated;
  Obs.Commit_path.mark cp ~at:1200 ~lsn:9 ~member:3 ~pg:0 Obs.Trace.Node_acked;
  match Obs.Commit_path.timelines cp with
  | [ (7, pg7, tl7); (9, pg9, tl9) ] ->
    check_int "pg latched at allocation" 1 pg7;
    check_int "pg latched by a later stage" 0 pg9;
    check_int "stage time recorded" 500
      tl7.(Obs.Trace.stage_index Obs.Trace.Boxcar_flushed);
    check_int "unobserved stage is -1" (-1)
      tl7.(Obs.Trace.stage_index Obs.Trace.Commit_acked);
    check_int "late-latched timeline keeps times" 1200
      tl9.(Obs.Trace.stage_index Obs.Trace.Node_acked)
  | tls -> Alcotest.failf "expected 2 timelines, got %d" (List.length tls)

(* ---- chrome export ---- *)

let test_chrome_export_format () =
  let ctx = Obs.Ctx.create () in
  Obs.Ctx.enable_tracing ctx;
  let cp = Obs.Ctx.commit_path ctx in
  Obs.Commit_path.mark cp ~at:1_000 ~lsn:1 ~pg:0 Obs.Trace.Lsn_allocated;
  Obs.Commit_path.mark cp ~at:2_000 ~lsn:1 Obs.Trace.Boxcar_flushed;
  Obs.Commit_path.mark cp ~at:3_000 ~lsn:1 ~member:2 Obs.Trace.Node_acked;
  Obs.Commit_path.mark cp ~at:4_000 ~lsn:1 Obs.Trace.Commit_acked;
  Obs.Trace.read (Obs.Ctx.trace ctx) ~at:2_500 ~pg:0 Obs.Trace.Read_tracked;
  let evs =
    match Obs.Chrome_export.to_json ctx with
    | Obs.Json.Obj fields -> (
      (match List.assoc_opt "displayTimeUnit" fields with
      | Some (Obs.Json.String "ms") -> ()
      | _ -> Alcotest.fail "displayTimeUnit missing");
      match List.assoc_opt "traceEvents" fields with
      | Some (Obs.Json.List evs) -> evs
      | _ -> Alcotest.fail "traceEvents missing")
    | _ -> Alcotest.fail "not an object"
  in
  let field k ev =
    match ev with Obs.Json.Obj fs -> List.assoc_opt k fs | _ -> None
  in
  List.iter
    (fun ev ->
      List.iter
        (fun k ->
          if field k ev = None then
            Alcotest.failf "record missing %s: %s" k (Obs.Json.to_string ev))
        [ "name"; "ph"; "ts"; "pid"; "tid" ])
    evs;
  let with_ph v =
    List.filter (fun ev -> field "ph" ev = Some (Obs.Json.String v)) evs
  in
  let begins = with_ph "b" and ends = with_ph "e" in
  check_int "async spans balance" (List.length begins) (List.length ends);
  Alcotest.(check bool) "at least one span pair for the traced commit" true
    (List.length begins >= 1);
  Alcotest.(check bool) "umbrella span present" true
    (List.exists
       (fun ev -> field "name" ev = Some (Obs.Json.String "commit lsn=1"))
       begins);
  check_int "ring read became one instant" 1 (List.length (with_ph "i"));
  Alcotest.(check bool) "lane metadata present" true
    (List.length (with_ph "M") >= 1)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "floats" `Quick test_json_floats;
          Alcotest.test_case "non-finite floats" `Quick test_json_nonfinite_null;
          QCheck_alcotest.to_alcotest prop_json_escape_valid;
          QCheck_alcotest.to_alcotest prop_json_float_roundtrip;
          QCheck_alcotest.to_alcotest prop_json_pretty_equiv;
          Alcotest.test_case "of_string values" `Quick
            test_json_of_string_values;
          Alcotest.test_case "of_string errors" `Quick
            test_json_of_string_errors;
          Alcotest.test_case "of_string depth cap" `Quick
            test_json_of_string_depth;
          QCheck_alcotest.to_alcotest prop_json_of_string_roundtrip;
        ] );
      ( "series",
        [
          Alcotest.test_case "counter rate" `Quick test_series_counter_rate;
          Alcotest.test_case "decimation" `Quick test_series_decimation;
        ] );
      ( "health",
        [
          Alcotest.test_case "synthetic edges" `Quick test_health_edges_synthetic;
          Alcotest.test_case "scripted AZ failure" `Quick
            test_cluster_health_edges;
        ] );
      ( "chrome export",
        [
          Alcotest.test_case "record format" `Quick test_chrome_export_format;
        ] );
      ( "registry",
        [
          Alcotest.test_case "identity" `Quick test_registry_identity;
          Alcotest.test_case "snapshot filter" `Quick
            test_registry_snapshot_filter;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring eviction" `Quick test_trace_ring;
          Alcotest.test_case "dropped counter" `Quick test_trace_dropped;
          Alcotest.test_case "disabled zero-alloc" `Quick
            test_trace_disabled_zero_alloc;
        ] );
      ( "commit path",
        [
          Alcotest.test_case "stage pairs" `Quick test_commit_path_pairs;
          Alcotest.test_case "timeline eviction" `Quick
            test_commit_path_eviction;
          Alcotest.test_case "timelines / pg latch" `Quick
            test_commit_path_timelines;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "snapshot determinism" `Quick
            test_cluster_snapshot_deterministic;
          Alcotest.test_case "snapshot contents" `Quick
            test_cluster_snapshot_contents;
        ] );
    ]
