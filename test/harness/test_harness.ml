(* Tests for the experiment harness: cluster assembly, report rendering,
   and the fast deterministic experiments. *)
open Simcore
open Quorum
module Cluster = Harness.Cluster
module E = Harness.Experiments
module Database = Aurora_core.Database

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_report_rendering () =
  let r = Harness.Report.create ~title:"t" ~columns:[ "a"; "bb" ] in
  Harness.Report.row r [ "x"; "y" ];
  Harness.Report.row r [ "longer"; "z" ];
  Harness.Report.note r "note";
  let s = Harness.Report.to_string r in
  check_bool "title" true (String.length s > 0 && String.sub s 0 4 = "== t");
  check_bool "has note" true (contains s "note");
  check_bool "aligned" true (contains s "longer  z")

let test_cluster_assembly () =
  let cluster = Cluster.create { Cluster.default_config with seed = 3; n_pgs = 3 } in
  check_int "18 storage nodes" 18 (List.length (Cluster.storage_nodes cluster));
  check_int "members per pg" 6
    (List.length (Cluster.members_of_pg cluster (Storage.Pg_id.of_int 0)));
  check_bool "writer open" true (Database.is_open (Cluster.db cluster));
  (* Deterministic: same seed, same first latency sample behaviour. *)
  let c2 = Cluster.create { Cluster.default_config with seed = 3; n_pgs = 3 } in
  let run c =
    let db = Cluster.db c in
    let txn = Database.begin_txn db in
    Database.put db ~txn ~key:"k" ~value:"v";
    let at = ref Time_ns.zero in
    Database.commit db ~txn (fun _ -> at := Sim.now (Cluster.sim c));
    Sim.run_until (Cluster.sim c) (Time_ns.sec 1);
    !at
  in
  check_int "deterministic replay" (run cluster) (run c2)

let test_e3_exact () =
  let r = E.E3.run () in
  let e1, e2, e3 = r.E.E3.expected in
  check_int "pg1" e1 r.E.E3.pg1_pgcl;
  check_int "pg2" e2 r.E.E3.pg2_pgcl;
  check_int "vcl" e3 r.E.E3.vcl

let test_scheme_rules_safe () =
  List.iter
    (fun layout ->
      let _, rule = E.scheme_rule layout in
      check_bool "overlap" true
        (Quorum_set.overlaps ~read:rule.Quorum_set.Rule.read
           ~write:rule.Quorum_set.Rule.write))
    [ Cluster.V6; Cluster.V3; Cluster.Tiered ]

let test_trace () =
  let tr = Trace.create ~capacity:3 () in
  Trace.record tr ~at:(Time_ns.ms 1) "dropped (disabled)";
  check_int "disabled = no-op" 0 (Trace.length tr);
  Trace.enable tr;
  for i = 1 to 5 do
    Trace.recordf tr ~at:(Time_ns.ms i) "event %d" i
  done;
  check_int "ring keeps capacity" 3 (Trace.length tr);
  (match Trace.events tr with
  | (_, m) :: _ -> Alcotest.(check string) "oldest survivor" "event 3" m
  | [] -> Alcotest.fail "empty");
  Trace.clear tr;
  check_int "cleared" 0 (Trace.length tr)

(* ---- fault API under load (the surface lib/vopr drives) ---- *)

let pg0 = Storage.Pg_id.of_int 0
let m id = Member_id.of_int id

let load_fixture ~seed =
  let cluster = Cluster.create { Cluster.default_config with seed } in
  let gen =
    Workload.Txn_gen.create
      ~sim:(Cluster.sim cluster)
      ~rng:(Rng.create (seed + 7919))
      ~db:(Cluster.db cluster)
      ~profile:Workload.Txn_gen.default_profile ()
  in
  Workload.Txn_gen.run_open_loop gen ~rate_per_sec:1500. ~duration:(Time_ns.ms 900);
  (cluster, gen)

(* Quiesce, then replay the durability oracle against the writer. *)
let audit cluster gen =
  Sim.run_until (Cluster.sim cluster)
    (Time_ns.add (Sim.now (Cluster.sim cluster)) (Time_ns.sec 2));
  let db = Cluster.db cluster in
  check_bool "writer open at audit" true (Database.is_open db);
  let checked, lost =
    E.audit_durability ~sim:(Cluster.sim cluster)
      ~get:(fun ~key cb -> Database.get db ~key cb)
      ~gen
  in
  check_bool "audited some keys" true (checked > 0);
  check_int "no acked write lost" 0 lost

let epoch_of cluster pg =
  let g = Aurora_core.Volume.find_pg (Database.volume (Cluster.db cluster)) pg in
  Epoch.to_int (Membership.epoch g.Aurora_core.Volume.membership)

let test_crash_restart_mid_commit () =
  let cluster, gen = load_fixture ~seed:11 in
  let sim = Cluster.sim cluster in
  (* Crash a member mid-stream — in-flight commits must keep acking off the
     remaining 5/6 — and bring it back while writes are still arriving. *)
  ignore
    (Sim.schedule sim ~delay:(Time_ns.ms 150) (fun () ->
         Cluster.crash_storage_node cluster pg0 (m 0)));
  ignore
    (Sim.schedule sim ~delay:(Time_ns.ms 400) (fun () ->
         Cluster.restart_storage_node cluster pg0 (m 0)));
  Sim.run_until sim (Time_ns.ms 1000);
  check_bool "commits progressed through the crash" true
    (Workload.Txn_gen.acked gen > 0);
  check_int "no commit failures" 0 (Workload.Txn_gen.failed gen);
  audit cluster gen

let test_destroy_then_replacement_catch_up () =
  let cluster, gen = load_fixture ~seed:12 in
  let sim = Cluster.sim cluster in
  let replacement = ref None in
  ignore
    (Sim.schedule sim ~delay:(Time_ns.ms 150) (fun () ->
         Cluster.destroy_storage_node cluster pg0 (m 5);
         match Cluster.start_replacement cluster pg0 ~suspect:(m 5) with
         | Ok id -> replacement := Some id
         | Error e -> Alcotest.failf "start_replacement: %s" e));
  Sim.run_until sim (Time_ns.ms 1000);
  let id =
    match !replacement with
    | Some id -> id
    | None -> Alcotest.fail "replacement never started"
  in
  check_int "first epoch increment" 2 (epoch_of cluster pg0);
  (* The newcomer hydrates off a healthy peer while the write stream is
     live; once its SCL covers the group durable point the change lands. *)
  let deadline = Time_ns.add (Sim.now sim) (Time_ns.sec 10) in
  let rec wait () =
    if Cluster.replacement_caught_up cluster pg0 ~replacement:id then ()
    else if Sim.now sim >= deadline then
      Alcotest.fail "replacement never caught up"
    else begin
      Sim.run_until sim (Time_ns.add (Sim.now sim) (Time_ns.ms 50));
      wait ()
    end
  in
  wait ();
  (match Cluster.finish_replacement cluster pg0 ~suspect:(m 5) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "finish_replacement: %s" e);
  check_int "second epoch increment" 3 (epoch_of cluster pg0);
  check_int "roster back to six" 6
    (List.length (Cluster.members_of_pg cluster pg0));
  audit cluster gen

let test_fail_restore_az_under_load () =
  let cluster, gen = load_fixture ~seed:13 in
  let sim = Cluster.sim cluster in
  (* Losing a whole non-writer AZ leaves 4/6 in every group: writes stay
     available the entire time (Figure 1 row 3). *)
  ignore
    (Sim.schedule sim ~delay:(Time_ns.ms 200) (fun () ->
         Cluster.fail_az cluster (Az.of_int 2)));
  let acked_mid = ref 0 in
  ignore
    (Sim.schedule sim ~delay:(Time_ns.ms 550) (fun () ->
         acked_mid := Workload.Txn_gen.acked gen));
  ignore
    (Sim.schedule sim ~delay:(Time_ns.ms 600) (fun () ->
         Cluster.restore_az cluster (Az.of_int 2)));
  Sim.run_until sim (Time_ns.ms 1000);
  check_bool "commits acked while the AZ was down" true
    (!acked_mid > 0 && Workload.Txn_gen.acked gen > !acked_mid);
  check_int "no commit failures" 0 (Workload.Txn_gen.failed gen);
  audit cluster gen

let test_partition_az_under_load () =
  let cluster, gen = load_fixture ~seed:14 in
  let sim = Cluster.sim cluster in
  ignore
    (Sim.schedule sim ~delay:(Time_ns.ms 200) (fun () ->
         Cluster.partition_az cluster (Az.of_int 1)));
  ignore
    (Sim.schedule sim ~delay:(Time_ns.ms 600) (fun () ->
         Cluster.heal_az cluster (Az.of_int 1)));
  Sim.run_until sim (Time_ns.ms 1000);
  let st = Simnet.Net.stats (Cluster.net cluster) in
  check_bool "partition drops attributed to the partition cause" true
    (st.Simnet.Net.dropped_partition > 0);
  check_bool "commits survived the partition" true
    (Workload.Txn_gen.acked gen > 0);
  audit cluster gen

let () =
  Alcotest.run "harness"
    [
      ("report", [ Alcotest.test_case "rendering" `Quick test_report_rendering ]);
      ( "cluster",
        [ Alcotest.test_case "assembly + determinism" `Slow test_cluster_assembly ]
      );
      ( "faults under load",
        [
          Alcotest.test_case "crash + restart mid-commit" `Slow
            test_crash_restart_mid_commit;
          Alcotest.test_case "destroy + replacement catch-up" `Slow
            test_destroy_then_replacement_catch_up;
          Alcotest.test_case "fail + restore AZ" `Slow
            test_fail_restore_az_under_load;
          Alcotest.test_case "partition + heal AZ" `Slow
            test_partition_az_under_load;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "E3 figure exact" `Quick test_e3_exact;
          Alcotest.test_case "scheme rules safe" `Quick test_scheme_rules_safe;
        ] );
      ("trace", [ Alcotest.test_case "ring buffer" `Quick test_trace ]);
    ]
