(* Tests for the simulated network. *)
open Simcore

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let addr = Simnet.Addr.of_int

let fixture ?(latency = Distribution.constant (Time_ns.us 100)) () =
  let sim = Sim.create () in
  let rng = Rng.create 7 in
  let net = Simnet.Net.create ~sim ~rng ~default_latency:latency () in
  (sim, net)

let collector net a =
  let got = ref [] in
  Simnet.Net.register net a (fun env -> got := env.Simnet.Net.msg :: !got);
  got

let test_delivery_latency () =
  let sim, net = fixture () in
  let got = collector net (addr 1) in
  Simnet.Net.send net ~src:(addr 0) ~dst:(addr 1) "hello";
  check_int "not yet delivered" 0 (List.length !got);
  Sim.run sim;
  Alcotest.(check (list string)) "delivered" [ "hello" ] !got;
  check_int "after link latency" (Time_ns.us 100) (Sim.now sim)

let test_down_node_drops () =
  let sim, net = fixture () in
  let got = collector net (addr 1) in
  Simnet.Net.set_down net (addr 1);
  Simnet.Net.send net ~src:(addr 0) ~dst:(addr 1) "x";
  Sim.run sim;
  check_int "dropped" 0 (List.length !got);
  let st = Simnet.Net.stats net in
  check_int "stat dropped" 1 st.Simnet.Net.dropped;
  (* Coming back up does not resurrect lost messages. *)
  Simnet.Net.set_up net (addr 1);
  Simnet.Net.send net ~src:(addr 0) ~dst:(addr 1) "y";
  Sim.run sim;
  Alcotest.(check (list string)) "only the new one" [ "y" ] !got

let test_crash_in_flight () =
  (* A node that dies while the message is in flight never sees it. *)
  let sim, net = fixture () in
  let got = collector net (addr 1) in
  Simnet.Net.send net ~src:(addr 0) ~dst:(addr 1) "x";
  ignore (Sim.schedule sim ~delay:(Time_ns.us 50) (fun () -> Simnet.Net.set_down net (addr 1)));
  Sim.run sim;
  check_int "lost in flight" 0 (List.length !got)

let test_partition_and_heal () =
  let sim, net = fixture () in
  let got = collector net (addr 1) in
  Simnet.Net.partition net
    (Simnet.Addr.Set.singleton (addr 0))
    (Simnet.Addr.Set.singleton (addr 1));
  Simnet.Net.send net ~src:(addr 0) ~dst:(addr 1) "blocked";
  Sim.run sim;
  check_int "partitioned" 0 (List.length !got);
  Simnet.Net.heal_partition net
    (Simnet.Addr.Set.singleton (addr 0))
    (Simnet.Addr.Set.singleton (addr 1));
  Simnet.Net.send net ~src:(addr 0) ~dst:(addr 1) "through";
  Sim.run sim;
  Alcotest.(check (list string)) "healed" [ "through" ] !got

let test_drop_cause_split () =
  (* Every drop lands in exactly one cause counter, and the aggregate
     [dropped] is their sum — so a fault scenario can attribute loss to a
     partition nemesis vs. a pinpoint block vs. a dead node. *)
  let sim, net = fixture () in
  ignore (collector net (addr 1) : string list ref);
  ignore (collector net (addr 2) : string list ref);
  Simnet.Net.set_down net (addr 3);
  Simnet.Net.send net ~src:(addr 0) ~dst:(addr 3) "to-dead";
  Simnet.Net.block net (addr 0) (addr 1);
  Simnet.Net.send net ~src:(addr 0) ~dst:(addr 1) "blocked";
  Simnet.Net.partition net
    (Simnet.Addr.Set.singleton (addr 0))
    (Simnet.Addr.Set.singleton (addr 2));
  Simnet.Net.send net ~src:(addr 0) ~dst:(addr 2) "partitioned";
  Sim.run sim;
  let st = Simnet.Net.stats net in
  check_int "down" 1 st.Simnet.Net.dropped_down;
  check_int "blocked" 1 st.Simnet.Net.dropped_blocked;
  check_int "partition" 1 st.Simnet.Net.dropped_partition;
  check_int "random" 0 st.Simnet.Net.dropped_random;
  check_int "sum" 3 st.Simnet.Net.dropped;
  (* A partition laid over an existing block re-attributes the link (last
     cause wins); healing the partition severs nothing else — the earlier
     pinpoint block is gone with it. *)
  Simnet.Net.partition net
    (Simnet.Addr.Set.singleton (addr 0))
    (Simnet.Addr.Set.singleton (addr 1));
  Simnet.Net.send net ~src:(addr 0) ~dst:(addr 1) "now-partition";
  Sim.run sim;
  let st = Simnet.Net.stats net in
  check_int "re-attributed to partition" 2 st.Simnet.Net.dropped_partition;
  check_int "blocked unchanged" 1 st.Simnet.Net.dropped_blocked

let test_drop_probability () =
  let sim, net = fixture () in
  let got = collector net (addr 1) in
  Simnet.Net.set_drop_probability net 0.5;
  for _ = 1 to 1000 do
    Simnet.Net.send net ~src:(addr 0) ~dst:(addr 1) "m"
  done;
  Sim.run sim;
  let n = List.length !got in
  check_bool "about half delivered" true (n > 400 && n < 600)

let test_slowdown () =
  let sim, net = fixture () in
  let at = ref Time_ns.zero in
  Simnet.Net.register net (addr 1) (fun _ -> at := Sim.now sim);
  Simnet.Net.set_node_slowdown net (addr 1) 4.;
  Simnet.Net.send net ~src:(addr 0) ~dst:(addr 1) "slow";
  Sim.run sim;
  check_int "4x latency" (Time_ns.us 400) !at

let test_per_link_latency () =
  let sim, net = fixture () in
  let at = ref Time_ns.zero in
  Simnet.Net.register net (addr 1) (fun _ -> at := Sim.now sim);
  Simnet.Net.set_link_latency net ~src:(addr 0) ~dst:(addr 1)
    (Distribution.constant (Time_ns.ms 3));
  Simnet.Net.send net ~src:(addr 0) ~dst:(addr 1) "far";
  Sim.run sim;
  check_int "link override" (Time_ns.ms 3) !at

let test_bytes_accounting () =
  let sim, net = fixture () in
  let _ = collector net (addr 1) in
  Simnet.Net.send net ~src:(addr 0) ~dst:(addr 1) ~bytes:500 "big";
  Sim.run sim;
  let st = Simnet.Net.stats net in
  check_int "bytes sent" 500 st.Simnet.Net.bytes_sent;
  check_int "bytes delivered" 500 st.Simnet.Net.bytes_delivered

let prop_no_reorder_on_constant_latency =
  QCheck.Test.make ~name:"constant-latency link preserves send order" ~count:50
    QCheck.(int_range 2 50)
    (fun n ->
      let sim, net = fixture () in
      let got = ref [] in
      Simnet.Net.register net (addr 1) (fun env ->
          got := env.Simnet.Net.msg :: !got);
      for i = 1 to n do
        Simnet.Net.send net ~src:(addr 0) ~dst:(addr 1) i
      done;
      Sim.run sim;
      List.rev !got = List.init n (fun i -> i + 1))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "simnet"
    [
      ( "delivery",
        [
          Alcotest.test_case "latency" `Quick test_delivery_latency;
          Alcotest.test_case "per-link override" `Quick test_per_link_latency;
          Alcotest.test_case "bytes accounting" `Quick test_bytes_accounting;
          qc prop_no_reorder_on_constant_latency;
        ] );
      ( "faults",
        [
          Alcotest.test_case "down node" `Quick test_down_node_drops;
          Alcotest.test_case "crash in flight" `Quick test_crash_in_flight;
          Alcotest.test_case "partition + heal" `Quick test_partition_and_heal;
          Alcotest.test_case "drop cause split" `Quick test_drop_cause_split;
          Alcotest.test_case "drop probability" `Quick test_drop_probability;
          Alcotest.test_case "slowdown factor" `Quick test_slowdown;
        ] );
    ]
