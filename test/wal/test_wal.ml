(* Tests for LSNs, log records, hot logs (SCL tracking), and chains. *)
open Wal

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let lsn = Lsn.of_int

(* Build a linear segment chain of records lsn 1..n (block round-robin). *)
let make_chain ?(first_prev = Lsn.none) n =
  let rec go i prev acc =
    if i > n then List.rev acc
    else begin
      let l = Lsn.add first_prev i in
      let r =
        Log_record.make ~lsn:l ~prev_volume:prev ~prev_segment:prev
          ~prev_block:Lsn.none
          ~block:(Block_id.of_int (i mod 4))
          ~txn:(Txn_id.of_int 1) ~mtr_id:i ~mtr_end:true
          ~op:(Log_record.Put { key = Printf.sprintf "k%d" i; value = "v" })
      in
      go (i + 1) l (r :: acc)
    end
  in
  go 1 first_prev []

(* ---- Lsn ---- *)

let test_lsn_allocator () =
  let a = Lsn.Allocator.create () in
  check_int "first" 1 (Lsn.to_int (Lsn.Allocator.take a));
  check_int "second" 2 (Lsn.to_int (Lsn.Allocator.take a));
  let first, last = Lsn.Allocator.take_batch a 5 in
  check_int "batch first" 3 (Lsn.to_int first);
  check_int "batch last" 7 (Lsn.to_int last);
  check_int "last tracked" 7 (Lsn.to_int (Lsn.Allocator.last a))

let test_lsn_allocator_reset () =
  let a = Lsn.Allocator.create () in
  ignore (Lsn.Allocator.take a : Lsn.t);
  Lsn.Allocator.reset_above a (lsn 100);
  check_int "resumes above" 101 (Lsn.to_int (Lsn.Allocator.take a));
  Alcotest.check_raises "cannot move backwards"
    (Invalid_argument "Lsn.Allocator.reset_above: would move backwards")
    (fun () -> Lsn.Allocator.reset_above a (lsn 5))

let test_lsn_compare () =
  check_bool "none below first" true Lsn.(none < first);
  check_bool "ordering" true Lsn.(lsn 3 < lsn 5);
  check_int "max" 5 (Lsn.to_int (Lsn.max (lsn 3) (lsn 5)))

(* ---- Log_record ---- *)

let test_record_size () =
  let r =
    Log_record.make ~lsn:(lsn 1) ~prev_volume:Lsn.none ~prev_segment:Lsn.none
      ~prev_block:Lsn.none ~block:(Block_id.of_int 0) ~txn:(Txn_id.of_int 1)
      ~mtr_id:1 ~mtr_end:true
      ~op:(Log_record.Put { key = "abc"; value = "defg" })
  in
  check_int "header + payload" (Log_record.header_bytes + 7) r.size_bytes;
  check_bool "not commit" false (Log_record.is_commit r)

(* ---- Hot_log ---- *)

let test_hot_log_in_order () =
  let log = Hot_log.create () in
  let records = make_chain 10 in
  List.iter (fun r -> ignore (Hot_log.insert log r : Hot_log.insert_result)) records;
  check_int "scl" 10 (Lsn.to_int (Hot_log.scl log));
  check_int "highest" 10 (Lsn.to_int (Hot_log.highest_received log));
  check_int "pending" 0 (Hot_log.pending_count log)

let test_hot_log_gap_then_fill () =
  let log = Hot_log.create () in
  let records = make_chain 5 in
  (* Deliver 1,2 then 4,5 (hole at 3), then 3. *)
  let r i = List.nth records (i - 1) in
  List.iter
    (fun i -> ignore (Hot_log.insert log (r i) : Hot_log.insert_result))
    [ 1; 2; 4; 5 ];
  check_int "scl stuck at hole" 2 (Lsn.to_int (Hot_log.scl log));
  check_int "highest sees past hole" 5 (Lsn.to_int (Hot_log.highest_received log));
  check_int "pending" 2 (Hot_log.pending_count log);
  ignore (Hot_log.insert log (r 3) : Hot_log.insert_result);
  check_int "scl cascades" 5 (Lsn.to_int (Hot_log.scl log))

let test_hot_log_duplicate () =
  let log = Hot_log.create () in
  let records = make_chain 3 in
  List.iter (fun r -> ignore (Hot_log.insert log r : Hot_log.insert_result)) records;
  (match Hot_log.insert log (List.hd records) with
  | Hot_log.Duplicate -> ()
  | _ -> Alcotest.fail "expected Duplicate");
  check_int "count unchanged" 3 (Hot_log.record_count log)

let test_hot_log_chained_above () =
  let log = Hot_log.create () in
  List.iter
    (fun r -> ignore (Hot_log.insert log r : Hot_log.insert_result))
    (make_chain 10);
  let above = Hot_log.chained_records_above log (lsn 7) in
  Alcotest.(check (list int)) "suffix of chain" [ 8; 9; 10 ]
    (List.map (fun (r : Log_record.t) -> Lsn.to_int r.lsn) above);
  check_int "full chain" 10 (List.length (Hot_log.chain_to_list log))

let test_hot_log_annul () =
  let log = Hot_log.create () in
  List.iter
    (fun r -> ignore (Hot_log.insert log r : Hot_log.insert_result))
    (make_chain 10);
  let dropped = Hot_log.annul_range log ~above:(lsn 6) ~upto:(lsn 100) in
  check_int "dropped" 4 dropped;
  check_int "scl clamped to real record" 6 (Lsn.to_int (Hot_log.scl log));
  check_bool "annulled lsns rejected" true (Hot_log.is_annulled log (lsn 8));
  (match Hot_log.insert log (List.nth (make_chain 10) 7) with
  | Hot_log.Annulled -> ()
  | _ -> Alcotest.fail "expected Annulled");
  (* A fresh record above the range chains from the cut point. *)
  let r =
    Log_record.make ~lsn:(lsn 101) ~prev_volume:(lsn 6) ~prev_segment:(lsn 6)
      ~prev_block:Lsn.none ~block:(Block_id.of_int 0) ~txn:(Txn_id.of_int 2)
      ~mtr_id:11 ~mtr_end:true ~op:Log_record.Noop
  in
  (match Hot_log.insert log r with
  | Hot_log.Accepted ->
    check_int "chain continues above range" 101 (Lsn.to_int (Hot_log.scl log))
  | _ -> Alcotest.fail "expected Accepted")

let test_hot_log_annul_with_pending () =
  let log = Hot_log.create () in
  let records = make_chain 10 in
  let r i = List.nth records (i - 1) in
  (* Chain to 4; 6..8 pending (5 missing). *)
  List.iter
    (fun i -> ignore (Hot_log.insert log (r i) : Hot_log.insert_result))
    [ 1; 2; 3; 4; 6; 7; 8 ];
  check_int "scl" 4 (Lsn.to_int (Hot_log.scl log));
  ignore (Hot_log.annul_range log ~above:(lsn 7) ~upto:(lsn 20) : int);
  (* 8 annulled; 6,7 still pending below the cut. *)
  check_int "scl unchanged" 4 (Lsn.to_int (Hot_log.scl log));
  ignore (Hot_log.insert log (r 5) : Hot_log.insert_result);
  check_int "fills to cut" 7 (Lsn.to_int (Hot_log.scl log))

let test_hot_log_drop_below () =
  let log = Hot_log.create () in
  List.iter
    (fun r -> ignore (Hot_log.insert log r : Hot_log.insert_result))
    (make_chain 10);
  let dropped = Hot_log.drop_below log ~upto:(lsn 6) in
  check_int "dropped" 6 dropped;
  check_int "scl unaffected" 10 (Lsn.to_int (Hot_log.scl log));
  check_int "floor recorded" 6 (Lsn.to_int (Hot_log.dropped_upto log));
  (* Gossip export now only reaches back to the floor. *)
  check_int "retained suffix" 4
    (List.length (Hot_log.chained_records_above log Lsn.none))

let test_hot_log_anchored () =
  let log = Hot_log.create_anchored (lsn 100) in
  check_int "anchored scl" 100 (Lsn.to_int (Hot_log.scl log));
  let records = make_chain ~first_prev:(lsn 100) 3 in
  List.iter (fun r -> ignore (Hot_log.insert log r : Hot_log.insert_result)) records;
  check_int "extends from anchor" 103 (Lsn.to_int (Hot_log.scl log))

let prop_scl_order_independent =
  QCheck.Test.make ~name:"SCL independent of delivery order; matches reference"
    ~count:200
    QCheck.(pair (int_range 1 40) (int_range 0 1000))
    (fun (n, seed) ->
      let records = make_chain n in
      let arr = Array.of_list records in
      let rng = Simcore.Rng.create seed in
      Simcore.Rng.shuffle rng arr;
      (* Deliver a random prefix of the shuffle. *)
      let k = 1 + Simcore.Rng.int rng n in
      let delivered = Array.to_list (Array.sub arr 0 k) in
      let log = Hot_log.create () in
      List.iter
        (fun r -> ignore (Hot_log.insert log r : Hot_log.insert_result))
        delivered;
      let expected = Log_chain.scl_reference ~anchor:Lsn.none delivered in
      Lsn.equal (Hot_log.scl log) expected)

let prop_annul_then_scl_valid =
  QCheck.Test.make ~name:"after annul, SCL is a real chained record <= cut"
    ~count:200
    QCheck.(pair (int_range 2 30) (int_range 1 29))
    (fun (n, cut) ->
      QCheck.assume (cut < n);
      let log = Hot_log.create () in
      List.iter
        (fun r -> ignore (Hot_log.insert log r : Hot_log.insert_result))
        (make_chain n);
      ignore (Hot_log.annul_range log ~above:(lsn cut) ~upto:(lsn (n + 100)) : int);
      Lsn.to_int (Hot_log.scl log) = cut)

(* ---- Log_chain validators ---- *)

let test_chain_validators () =
  let records = make_chain 8 in
  (match Log_chain.validate_segment_chain records with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Log_chain.validate_volume_chain records with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* Break the chain. *)
  let broken = List.filter (fun (r : Log_record.t) -> Lsn.to_int r.lsn <> 4) records in
  (match Log_chain.validate_segment_chain broken with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected broken chain")

let test_block_versions () =
  let records = make_chain 8 in
  (* make_chain uses prev_block = none for all, so single-version chains
     only validate per block when there's one record per block; use a
     custom chain instead. *)
  let r1 =
    Log_record.make ~lsn:(lsn 1) ~prev_volume:Lsn.none ~prev_segment:Lsn.none
      ~prev_block:Lsn.none ~block:(Block_id.of_int 9) ~txn:(Txn_id.of_int 1)
      ~mtr_id:1 ~mtr_end:true ~op:(Log_record.Put { key = "a"; value = "1" })
  in
  let r2 =
    Log_record.make ~lsn:(lsn 5) ~prev_volume:(lsn 4) ~prev_segment:(lsn 4)
      ~prev_block:(lsn 1) ~block:(Block_id.of_int 9) ~txn:(Txn_id.of_int 1)
      ~mtr_id:2 ~mtr_end:true ~op:(Log_record.Put { key = "a"; value = "2" })
  in
  let versions = Log_chain.block_versions (r2 :: r1 :: records) (Block_id.of_int 9) in
  Alcotest.(check (list int)) "block chain order" [ 1; 5 ]
    (List.map (fun (r : Log_record.t) -> Lsn.to_int r.lsn) versions)

(* ---- Truncation ---- *)

let test_truncation () =
  let t = Truncation.make ~above:(lsn 10) ~upto:(lsn 20) in
  check_bool "below untouched" false (Truncation.annuls t (lsn 10));
  check_bool "in range" true (Truncation.annuls t (lsn 15));
  check_bool "upper inclusive" true (Truncation.annuls t (lsn 20));
  check_bool "above range" false (Truncation.annuls t (lsn 21));
  check_int "next allocatable" 21 (Lsn.to_int (Truncation.next_allocatable t))

(* ---- Txn ids ---- *)

let test_txn_allocator () =
  let a = Txn_id.Allocator.create () in
  check_int "first" 1 (Txn_id.to_int (Txn_id.Allocator.take a));
  Txn_id.Allocator.reset_above a (Txn_id.of_int 50);
  check_int "resumes" 51 (Txn_id.to_int (Txn_id.Allocator.take a))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "wal"
    [
      ( "lsn",
        [
          Alcotest.test_case "allocator" `Quick test_lsn_allocator;
          Alcotest.test_case "allocator reset" `Quick test_lsn_allocator_reset;
          Alcotest.test_case "compare" `Quick test_lsn_compare;
        ] );
      ("record", [ Alcotest.test_case "size" `Quick test_record_size ]);
      ( "hot_log",
        [
          Alcotest.test_case "in order" `Quick test_hot_log_in_order;
          Alcotest.test_case "gap then fill" `Quick test_hot_log_gap_then_fill;
          Alcotest.test_case "duplicate" `Quick test_hot_log_duplicate;
          Alcotest.test_case "chained above" `Quick test_hot_log_chained_above;
          Alcotest.test_case "annul range" `Quick test_hot_log_annul;
          Alcotest.test_case "annul with pending" `Quick
            test_hot_log_annul_with_pending;
          Alcotest.test_case "drop below (GC)" `Quick test_hot_log_drop_below;
          Alcotest.test_case "anchored" `Quick test_hot_log_anchored;
          qc prop_scl_order_independent;
          qc prop_annul_then_scl_valid;
        ] );
      ( "chains",
        [
          Alcotest.test_case "validators" `Quick test_chain_validators;
          Alcotest.test_case "block versions" `Quick test_block_versions;
        ] );
      ("truncation", [ Alcotest.test_case "ranges" `Quick test_truncation ]);
      ("txn_id", [ Alcotest.test_case "allocator" `Quick test_txn_allocator ]);
    ]
