(* Unit and property tests for the simulation substrate. *)
open Simcore

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- Heap ---- *)

let test_heap_ordering () =
  let h = Heap.create ~cmp:Int.compare in
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2; 7; 4; 6; 0 ];
  let out = List.init 10 (fun _ -> Heap.pop_exn h) in
  Alcotest.(check (list int)) "sorted" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] out;
  check_bool "empty" true (Heap.is_empty h)

let test_heap_peek_pop () =
  let h = Heap.create ~cmp:Int.compare in
  Alcotest.(check (option int)) "peek empty" None (Heap.peek h);
  Heap.push h 42;
  Alcotest.(check (option int)) "peek" (Some 42) (Heap.peek h);
  check_int "length" 1 (Heap.length h);
  Alcotest.(check (option int)) "pop" (Some 42) (Heap.pop h);
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:Int.compare in
      List.iter (Heap.push h) xs;
      let out = List.map (fun _ -> Heap.pop_exn h) xs in
      out = List.sort Int.compare xs)

(* ---- Rng ---- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 42 in
  let c = Rng.split a in
  check_bool "split differs from parent" true (Rng.bits64 a <> Rng.bits64 c)

let test_rng_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    check_bool "in range" true (v >= 0 && v < 10)
  done;
  for _ = 1 to 1000 do
    let v = Rng.int_in rng 5 9 in
    check_bool "in inclusive range" true (v >= 5 && v <= 9)
  done

let test_rng_exponential_mean () =
  let rng = Rng.create 11 in
  let n = 20_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential rng ~mean:100.
  done;
  let mean = !acc /. float_of_int n in
  check_bool "mean within 5%" true (abs_float (mean -. 100.) < 5.)

let test_rng_bernoulli () =
  let rng = Rng.create 13 in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let p = float_of_int !hits /. 10_000. in
  check_bool "p within 2%" true (abs_float (p -. 0.3) < 0.02)

let test_rng_sample_without_replacement () =
  let rng = Rng.create 17 in
  let arr = Array.init 10 (fun i -> i) in
  for _ = 1 to 50 do
    let s = Rng.sample_without_replacement rng 4 arr in
    check_int "size" 4 (Array.length s);
    let l = Array.to_list s in
    check_int "distinct" 4 (List.length (List.sort_uniq Int.compare l))
  done

(* ---- Sim ---- *)

let test_sim_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore (Sim.schedule sim ~delay:(Time_ns.ms 5) (fun () -> log := 2 :: !log));
  ignore (Sim.schedule sim ~delay:(Time_ns.ms 1) (fun () -> log := 1 :: !log));
  ignore (Sim.schedule sim ~delay:(Time_ns.ms 9) (fun () -> log := 3 :: !log));
  Sim.run sim;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  check_int "clock at last event" (Time_ns.ms 9) (Sim.now sim)

let test_sim_fifo_same_instant () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Sim.schedule sim ~delay:(Time_ns.ms 1) (fun () -> log := i :: !log))
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "fifo ties" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_sim_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let id = Sim.schedule sim ~delay:(Time_ns.ms 1) (fun () -> fired := true) in
  Sim.cancel sim id;
  Sim.run sim;
  check_bool "cancelled" false !fired

let test_sim_run_until () =
  let sim = Sim.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Sim.schedule sim ~delay:(Time_ns.ms i) (fun () -> incr count))
  done;
  Sim.run_until sim (Time_ns.ms 5);
  check_int "only first five" 5 !count;
  check_int "clock at limit" (Time_ns.ms 5) (Sim.now sim);
  Sim.run sim;
  check_int "rest run" 10 !count

let test_sim_every () =
  let sim = Sim.create () in
  let count = ref 0 in
  Sim.every sim ~interval:(Time_ns.ms 10) (fun () ->
      incr count;
      !count < 3);
  Sim.run sim;
  check_int "stopped after returning false" 3 !count

let test_sim_nested_schedule () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore
    (Sim.schedule sim ~delay:(Time_ns.ms 1) (fun () ->
         log := "outer" :: !log;
         ignore
           (Sim.schedule sim ~delay:Time_ns.zero (fun () ->
                log := "inner" :: !log))));
  Sim.run sim;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log)

let test_sim_stats_counters () =
  let sim = Sim.create () in
  let st = Sim.stats sim in
  Alcotest.(check int) "fresh sim: nothing processed" 0 st.Sim.processed;
  Alcotest.(check int) "fresh sim: empty heap" 0 st.Sim.max_heap_depth;
  for i = 1 to 4 do
    ignore (Sim.schedule sim ~delay:(Time_ns.ms i) (fun () -> ()) : Sim.event_id)
  done;
  let st = Sim.stats sim in
  Alcotest.(check int) "pending counts queued events" 4 st.Sim.pending;
  Alcotest.(check int) "high-water mark tracks the queue" 4 st.Sim.max_heap_depth;
  ignore (Sim.step sim : bool);
  Sim.run sim;
  let st = Sim.stats sim in
  Alcotest.(check int) "all events processed" 4 st.Sim.processed;
  Alcotest.(check int) "queue drained" 0 st.Sim.pending;
  Alcotest.(check int) "high-water mark survives the drain" 4 st.Sim.max_heap_depth;
  (* Cancelled events still occupied the heap, so they raise the mark but
     never count as processed. *)
  let sim2 = Sim.create () in
  let id = Sim.schedule sim2 ~delay:(Time_ns.ms 1) (fun () -> ()) in
  Sim.cancel sim2 id;
  Sim.run sim2;
  let st2 = Sim.stats sim2 in
  Alcotest.(check int) "cancelled events are not processed" 0 st2.Sim.processed;
  Alcotest.(check int) "but they did enter the heap" 1 st2.Sim.max_heap_depth

(* ---- Distribution ---- *)

let test_distribution_constant () =
  let rng = Rng.create 3 in
  let d = Distribution.constant (Time_ns.us 100) in
  for _ = 1 to 10 do
    check_int "constant" (Time_ns.us 100) (Distribution.sample d rng)
  done

let test_distribution_uniform_bounds () =
  let rng = Rng.create 5 in
  let d = Distribution.uniform ~lo:(Time_ns.us 10) ~hi:(Time_ns.us 20) in
  for _ = 1 to 1000 do
    let v = Distribution.sample d rng in
    check_bool "in bounds" true (v >= Time_ns.us 10 && v <= Time_ns.us 20)
  done

let test_distribution_shifted () =
  let rng = Rng.create 5 in
  let d = Distribution.shifted (Time_ns.ms 1) (Distribution.constant (Time_ns.us 5)) in
  check_int "shift" (Time_ns.add (Time_ns.ms 1) (Time_ns.us 5)) (Distribution.sample d rng)

let test_distribution_mixture () =
  let rng = Rng.create 9 in
  let d =
    Distribution.mixture
      [ (0.5, Distribution.constant 10); (0.5, Distribution.constant 20) ]
  in
  let tens = ref 0 and twenties = ref 0 in
  for _ = 1 to 2000 do
    match Distribution.sample d rng with
    | 10 -> incr tens
    | 20 -> incr twenties
    | v -> Alcotest.failf "unexpected sample %d" v
  done;
  check_bool "both sides drawn" true (!tens > 800 && !twenties > 800)

let test_distribution_lognormal_median () =
  let rng = Rng.create 15 in
  let d = Distribution.lognormal ~median:(Time_ns.us 100) ~sigma:0.5 in
  let below = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Distribution.sample d rng < Time_ns.us 100 then incr below
  done;
  let frac = float_of_int !below /. float_of_int n in
  check_bool "median splits samples" true (abs_float (frac -. 0.5) < 0.03)

(* ---- Histogram ---- *)

let test_histogram_empty () =
  let h = Histogram.create () in
  check_int "count" 0 (Histogram.count h);
  check_int "p50" 0 (Histogram.percentile h 50.);
  check_int "max" 0 (Histogram.max_value h)

let test_histogram_exact_small () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ];
  check_int "count" 10 (Histogram.count h);
  check_int "min" 1 (Histogram.min_value h);
  check_int "max" 10 (Histogram.max_value h);
  check_int "p50 small values exact" 5 (Histogram.percentile h 50.);
  check_int "p100" 10 (Histogram.percentile h 100.)

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.record a 5;
  Histogram.record b 1000;
  let m = Histogram.merge a b in
  check_int "count" 2 (Histogram.count m);
  check_int "min" 5 (Histogram.min_value m);
  check_int "max" 1000 (Histogram.max_value m)

let prop_histogram_percentile_close =
  QCheck.Test.make ~name:"histogram percentile within 7% of exact" ~count:100
    QCheck.(pair (list_of_size (Gen.int_range 10 200) (int_range 0 10_000_000)) (int_range 1 99))
    (fun (xs, p) ->
      QCheck.assume (xs <> []);
      let h = Histogram.create () in
      List.iter (Histogram.record h) xs;
      let sorted = List.sort Int.compare xs in
      let n = List.length sorted in
      let idx =
        let r = int_of_float (ceil (float_of_int p /. 100. *. float_of_int n)) in
        max 0 (min (n - 1) (r - 1))
      in
      let exact = List.nth sorted idx in
      let approx = Histogram.percentile h (float_of_int p) in
      (* log-bucketed: relative error bounded by sub-bucket width *)
      approx >= exact && float_of_int approx <= (float_of_int exact *. 1.07) +. 1.)

let test_histogram_mean_stddev () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 10; 20; 30 ];
  check_bool "mean" true (abs_float (Histogram.mean h -. 20.) < 0.001);
  check_bool "stddev" true (abs_float (Histogram.stddev h -. 8.165) < 0.01)

let test_histogram_windowed_snapshot () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 1; 2; 3 ];
  let s = Histogram.snapshot h in
  check_int "empty window count" 0 (Histogram.count_since h s);
  check_int "empty window p99" 0 (Histogram.percentile_since h s 99.);
  List.iter (Histogram.record h) [ 10; 11; 12; 13 ];
  check_int "window count" 4 (Histogram.count_since h s);
  (* The window sees only the post-snapshot values, not the 1-3 prefix. *)
  check_int "window p50" 11 (Histogram.percentile_since h s 50.);
  check_int "window p100" 13 (Histogram.percentile_since h s 100.);
  check_int "whole-run view spans both windows" 10 (Histogram.percentile h 50.);
  let other = Histogram.create () in
  Alcotest.check_raises "foreign snapshot rejected"
    (Invalid_argument
       "Histogram.percentile_since: snapshot from another histogram")
    (fun () -> ignore (Histogram.percentile_since other s 50. : int))

(* ---- Stats ---- *)

let test_stats_percentile_exact () =
  let s = Stats.of_list [ 1.; 2.; 3.; 4.; 5. ] in
  check_bool "p50" true (Stats.percentile s 50. = 3.);
  check_bool "p0" true (Stats.percentile s 0. = 1.);
  check_bool "p100" true (Stats.percentile s 100. = 5.);
  check_bool "p25 interp" true (Stats.percentile s 25. = 2.)

let test_stats_moments () =
  let s = Stats.of_list [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] in
  check_bool "mean" true (Stats.mean s = 5.);
  check_bool "stddev" true (abs_float (Stats.stddev s -. 2.0) < 1e-9)

let test_ewma () =
  let e = Stats.Ewma.create ~alpha:0.5 ~init:0. in
  Stats.Ewma.observe e 10.;
  check_bool "first" true (Stats.Ewma.value e = 5.);
  Stats.Ewma.observe e 10.;
  check_bool "second" true (Stats.Ewma.value e = 7.5);
  check_int "count" 2 (Stats.Ewma.observations e)

(* ---- Time ---- *)

let test_time_units () =
  check_int "us" 1_000 (Time_ns.us 1);
  check_int "ms" 1_000_000 (Time_ns.ms 1);
  check_int "sec" 1_000_000_000 (Time_ns.sec 1);
  check_int "of_float_us" 1_500 (Time_ns.of_float_us 1.5);
  Alcotest.(check string) "pp ms" "1.50ms" (Time_ns.to_string (Time_ns.us 1500))

let test_trace_ring_eviction () =
  let tr = Trace.create ~capacity:4 () in
  Trace.enable tr;
  for i = 1 to 6 do
    Trace.record tr ~at:(Time_ns.ns i) (Printf.sprintf "e%d" i)
  done;
  check_int "length capped" 4 (Trace.length tr);
  Alcotest.(check (list string))
    "oldest evicted" [ "e3"; "e4"; "e5"; "e6" ]
    (List.map snd (Trace.events tr));
  Trace.clear tr;
  check_int "cleared" 0 (Trace.length tr)

let test_trace_disabled_noop () =
  let tr = Trace.create ~capacity:4 () in
  Trace.record tr ~at:(Time_ns.ns 1) "dropped";
  check_int "disabled records nothing" 0 (Trace.length tr);
  Trace.enable tr;
  Trace.record tr ~at:(Time_ns.ns 2) "kept";
  Trace.disable tr;
  Trace.record tr ~at:(Time_ns.ns 3) "dropped again";
  check_int "only enabled-window events" 1 (Trace.length tr)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "simcore"
    [
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "peek/pop" `Quick test_heap_peek_pop;
          qc prop_heap_sorts;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "bernoulli" `Quick test_rng_bernoulli;
          Alcotest.test_case "sample without replacement" `Quick
            test_rng_sample_without_replacement;
        ] );
      ( "sim",
        [
          Alcotest.test_case "time ordering" `Quick test_sim_ordering;
          Alcotest.test_case "fifo ties" `Quick test_sim_fifo_same_instant;
          Alcotest.test_case "cancel" `Quick test_sim_cancel;
          Alcotest.test_case "run_until" `Quick test_sim_run_until;
          Alcotest.test_case "every" `Quick test_sim_every;
          Alcotest.test_case "nested schedule" `Quick test_sim_nested_schedule;
          Alcotest.test_case "dispatch stats" `Quick test_sim_stats_counters;
        ] );
      ( "distribution",
        [
          Alcotest.test_case "constant" `Quick test_distribution_constant;
          Alcotest.test_case "uniform bounds" `Quick test_distribution_uniform_bounds;
          Alcotest.test_case "shifted" `Quick test_distribution_shifted;
          Alcotest.test_case "mixture" `Quick test_distribution_mixture;
          Alcotest.test_case "lognormal median" `Quick
            test_distribution_lognormal_median;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "empty" `Quick test_histogram_empty;
          Alcotest.test_case "exact small" `Quick test_histogram_exact_small;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "mean/stddev" `Quick test_histogram_mean_stddev;
          Alcotest.test_case "windowed snapshot" `Quick
            test_histogram_windowed_snapshot;
          qc prop_histogram_percentile_close;
        ] );
      ( "stats",
        [
          Alcotest.test_case "percentile exact" `Quick test_stats_percentile_exact;
          Alcotest.test_case "moments" `Quick test_stats_moments;
          Alcotest.test_case "ewma" `Quick test_ewma;
        ] );
      ("time", [ Alcotest.test_case "units" `Quick test_time_units ]);
      ( "trace",
        [
          Alcotest.test_case "ring eviction" `Quick test_trace_ring_eviction;
          Alcotest.test_case "disabled no-op" `Quick test_trace_disabled_noop;
        ] );
    ]
