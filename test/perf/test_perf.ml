(* Tests for the performance-observability layer: BENCH_*.json schema
   round-trips (against a golden fixture), regression-compare verdicts,
   trajectory trends, profiling probes, and qcheck properties that perf
   counters are monotone under event dispatch. *)

open Simcore

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ---- fixtures ---------------------------------------------------------- *)

let read_fixture name =
  let ic = open_in_bin (Filename.concat "fixtures" name) in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* The report the golden fixture encodes, field for field. *)
let golden_report : Perf.Bench_report.t =
  {
    meta =
      {
        bench_id = "BENCH_000";
        git_sha = "f2166be";
        ocaml_version = "5.1.1";
        scenario = { txns = 2000; pgs = 2; seed = 7; rate_per_sec = 2000. };
      };
    scenario_measured =
      {
        commits_acked = 1984;
        sim_duration_ns = 3_000_000_000;
        commits_per_sec_sim = 1984.;
        events_processed = 551_234;
        wall_ns = 92_500_000;
        events_per_sec_wall = 5_959_286.4;
        gc =
          {
            minor_words_per_commit = 57_343.5;
            major_words_per_commit = 3_702.25;
            promoted_words_per_commit = 1_640.125;
            top_heap_words = 221_033;
          };
        subsystems =
          [
            {
              subsystem = "sim_dispatch";
              calls = 551_234;
              wall_ns = 71_000_000;
              minor_words = 101_000_000.;
            };
            {
              subsystem = "net_delivery";
              calls = 96_200;
              wall_ns = 33_000_000;
              minor_words = 48_000_000.;
            };
            {
              subsystem = "storage_apply";
              calls = 24_050;
              wall_ns = 9_000_000;
              minor_words = 12_500_000.;
            };
            {
              subsystem = "consistency_advance";
              calls = 23_800;
              wall_ns = 4_000_000;
              minor_words = 2_250_000.;
            };
          ];
      };
    micro =
      [
        { bench_name = "consistency: submit+4acks -> VCL"; ns_per_op = 402.5 };
        { bench_name = "sim: schedule + dispatch event"; ns_per_op = 155.25 };
      ];
  }

(* Substring check (String.contains is char-based). *)
let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* ---- BENCH_*.json schema ----------------------------------------------- *)

let test_golden_roundtrip () =
  let golden = read_fixture "BENCH_golden.json" in
  match Perf.Bench_report.of_string golden with
  | Error e -> Alcotest.failf "golden fixture does not parse: %s" e
  | Ok parsed ->
    check_bool "parses to the expected record" true
      (Perf.Bench_report.equal golden_report parsed);
    (* print . parse = identity, byte for byte: the writer's output is the
       fixture. *)
    check_string "prints back to the exact fixture bytes" golden
      (Perf.Bench_report.to_string parsed)

let test_write_read_roundtrip () =
  let path = Filename.temp_file "bench_report" ".json" in
  Perf.Bench_report.write ~path golden_report;
  let got = Perf.Bench_report.read ~path in
  Sys.remove path;
  match got with
  | Error e -> Alcotest.failf "write/read failed: %s" e
  | Ok r ->
    check_bool "file round trip" true (Perf.Bench_report.equal golden_report r)

let test_schema_errors () =
  let expect_error label s =
    match Perf.Bench_report.of_string s with
    | Ok _ -> Alcotest.failf "%s: expected an error" label
    | Error _ -> ()
  in
  expect_error "not json" "nonsense";
  expect_error "wrong version" {|{"schema_version": 999}|};
  expect_error "missing meta" {|{"schema_version": 1}|};
  (* A field of the wrong type names its path. *)
  let golden = read_fixture "BENCH_golden.json" in
  match Obs.Json.of_string golden with
  | Error e -> Alcotest.failf "golden does not even parse as json: %s" e
  | Ok (Obs.Json.Obj fields) ->
    let broken =
      Obs.Json.Obj
        (List.map
           (fun (k, v) ->
             if k = "meta" then (k, Obs.Json.String "oops") else (k, v))
           fields)
    in
    (match Perf.Bench_report.of_json broken with
    | Ok _ -> Alcotest.fail "expected an error for a non-object meta"
    | Error e ->
      check_bool "error names the field" true (contains ~needle:"meta" e))
  | Ok _ -> Alcotest.fail "golden fixture is not an object"

(* ---- compare ------------------------------------------------------------ *)

let with_rates report ~commits ~events : Perf.Bench_report.t =
  {
    report with
    Perf.Bench_report.scenario_measured =
      {
        report.Perf.Bench_report.scenario_measured with
        Perf.Bench_report.commits_per_sec_sim = commits;
        events_per_sec_wall = events;
      };
  }

let test_compare_verdicts () =
  let open Perf.Compare in
  let v dir ~o ~n =
    verdict dir ~threshold_pct:10. ~old_value:o ~new_value:n
  in
  check_bool "higher-better: +20% improves" true
    (v Higher_is_better ~o:100. ~n:120. = Improved);
  check_bool "higher-better: -20% regresses" true
    (v Higher_is_better ~o:100. ~n:80. = Regressed);
  check_bool "higher-better: +5% is noise" true
    (v Higher_is_better ~o:100. ~n:105. = Within_threshold);
  check_bool "lower-better: -20% improves" true
    (v Lower_is_better ~o:100. ~n:80. = Improved);
  check_bool "lower-better: +20% regresses" true
    (v Lower_is_better ~o:100. ~n:120. = Regressed);
  check_bool "zero to zero is noise" true
    (v Lower_is_better ~o:0. ~n:0. = Within_threshold);
  check_bool "zero to something, lower-better, regresses" true
    (v Lower_is_better ~o:0. ~n:5. = Regressed);
  check_bool "zero to something, higher-better, improves" true
    (v Higher_is_better ~o:0. ~n:5. = Improved)

let test_compare_diff () =
  let old_report = golden_report in
  let new_report =
    with_rates golden_report ~commits:1000. (* -49%: regression *)
      ~events:8_000_000. (* +34%: improvement *)
  in
  let rows =
    Perf.Compare.diff ~threshold_pct:10. ~old_report ~new_report
  in
  let find key =
    match List.find_opt (fun (r : Perf.Compare.row) -> r.key = key) rows with
    | Some r -> r
    | None -> Alcotest.failf "no row for %s" key
  in
  check_bool "commit rate regressed" true
    ((find "commits_per_sec_sim").result = Some Perf.Compare.Regressed);
  check_bool "event rate improved" true
    ((find "events_per_sec_wall").result = Some Perf.Compare.Improved);
  check_bool "gc unchanged" true
    ((find "gc.minor_words_per_commit").result
    = Some Perf.Compare.Within_threshold);
  check_bool "micro rows compare too" true
    ((find "micro:consistency: submit+4acks -> VCL").result
    = Some Perf.Compare.Within_threshold);
  check_int "one regression" 1 (List.length (Perf.Compare.regressions rows))

let test_compare_missing_metric () =
  let old_report = golden_report in
  let new_report = { golden_report with Perf.Bench_report.micro = [] } in
  let rows = Perf.Compare.diff ~threshold_pct:10. ~old_report ~new_report in
  let micro_rows =
    List.filter
      (fun (r : Perf.Compare.row) ->
        String.length r.key >= 6 && String.sub r.key 0 6 = "micro:")
      rows
  in
  check_int "micro rows survive with a missing side" 2 (List.length micro_rows);
  check_bool "missing side has no verdict" true
    (List.for_all
       (fun (r : Perf.Compare.row) -> r.result = None && r.new_value = None)
       micro_rows);
  check_int "missing metrics are not regressions" 0
    (List.length (Perf.Compare.regressions rows))

(* ---- trajectory --------------------------------------------------------- *)

let test_trajectory_trend () =
  let r2 = with_rates golden_report ~commits:2100. ~events:6_000_000. in
  let r2 =
    {
      r2 with
      Perf.Bench_report.meta =
        { r2.Perf.Bench_report.meta with Perf.Bench_report.bench_id = "BENCH_001" };
    }
  in
  let trend =
    Perf.Trajectory.trend [ ("BENCH_000.json", golden_report); ("BENCH_001.json", r2) ]
  in
  let series =
    match
      List.find_opt
        (fun (s : Perf.Trajectory.series) -> s.metric = "commits_per_sec_sim")
        trend
    with
    | Some s -> s
    | None -> Alcotest.fail "no commits_per_sec_sim series"
  in
  Alcotest.(check (list (pair string (float 1e-6))))
    "two points, labelled by bench id, in order"
    [ ("BENCH_000", 1984.); ("BENCH_001", 2100.) ]
    series.points

let test_trajectory_list_files () =
  let dir = Filename.temp_file "bench_traj" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let touch name =
    let oc = open_out (Filename.concat dir name) in
    close_out oc
  in
  touch "BENCH_002.json";
  touch "BENCH_001.json";
  touch "other.json";
  touch "BENCH_note.txt";
  let files = Perf.Trajectory.list_files ~dir in
  Sys.readdir dir |> Array.iter (fun f -> Sys.remove (Filename.concat dir f));
  Sys.rmdir dir;
  Alcotest.(check (list string))
    "only BENCH_*.json, sorted"
    [ "BENCH_001.json"; "BENCH_002.json" ]
    files

(* ---- probes ------------------------------------------------------------- *)

let test_probe_disabled_noop () =
  Perf.Probe.disable ();
  Perf.Probe.reset ();
  Perf.Probe.start Perf.Probe.Net_delivery;
  Perf.Probe.stop Perf.Probe.Net_delivery;
  let s = Perf.Probe.stat Perf.Probe.Net_delivery in
  check_int "no calls counted while disabled" 0 s.Perf.Probe.calls

let test_probe_accumulates () =
  Perf.Probe.reset ();
  Perf.Probe.enable ();
  for _ = 1 to 5 do
    Perf.Probe.start Perf.Probe.Storage_apply;
    (* allocate something measurable inside the span *)
    ignore (Sys.opaque_identity (Array.make 1000 0) : int array);
    Perf.Probe.stop Perf.Probe.Storage_apply
  done;
  Perf.Probe.disable ();
  let s = Perf.Probe.stat Perf.Probe.Storage_apply in
  check_int "five spans" 5 s.Perf.Probe.calls;
  check_bool "wall time accumulated" true (s.Perf.Probe.wall_ns >= 0);
  check_bool "allocation observed" true (s.Perf.Probe.minor_words > 0.);
  (* stop without start is a no-op *)
  Perf.Probe.enable ();
  Perf.Probe.stop Perf.Probe.Storage_apply;
  Perf.Probe.disable ();
  let s' = Perf.Probe.stat Perf.Probe.Storage_apply in
  check_int "unmatched stop ignored" 5 s'.Perf.Probe.calls;
  Perf.Probe.reset ();
  let s'' = Perf.Probe.stat Perf.Probe.Storage_apply in
  check_int "reset zeroes" 0 s''.Perf.Probe.calls

let test_probe_sim_install () =
  Perf.Probe.reset ();
  Perf.Probe.enable ();
  let sim = Sim.create () in
  Perf.Probe.install_sim sim;
  for i = 1 to 10 do
    ignore (Sim.schedule sim ~delay:(Time_ns.ms i) (fun () -> ()) : Sim.event_id)
  done;
  Sim.run sim;
  Perf.Probe.disable ();
  let s = Perf.Probe.stat Perf.Probe.Sim_dispatch in
  check_int "every dispatched event spanned" 10 s.Perf.Probe.calls;
  Perf.Probe.reset ()

let test_clock_monotone_enough () =
  let t0 = Perf.Clock.now_ns () in
  check_bool "elapsed is never negative" true (Perf.Clock.elapsed_ns ~since:t0 >= 0);
  check_bool "clock is in a plausible range (after 2020)" true
    (t0 > 1_577_836_800 * 1_000_000_000)

(* ---- sim dispatch stats ------------------------------------------------- *)

let test_sim_stats () =
  let sim = Sim.create () in
  (* Nested scheduling: each of 3 events schedules 2 more. *)
  for _ = 1 to 3 do
    ignore
      (Sim.schedule sim ~delay:(Time_ns.ms 1) (fun () ->
           for _ = 1 to 2 do
             ignore (Sim.schedule sim ~delay:(Time_ns.ms 1) (fun () -> ()) : Sim.event_id)
           done)
        : Sim.event_id)
  done;
  let st0 = Sim.stats sim in
  check_int "nothing processed yet" 0 st0.Sim.processed;
  check_int "three pending" 3 st0.Sim.pending;
  check_int "high-water mark is the initial burst" 3 st0.Sim.max_heap_depth;
  Sim.run sim;
  let st = Sim.stats sim in
  check_int "all nine events dispatched" 9 st.Sim.processed;
  check_int "drained" 0 st.Sim.pending;
  (* 3 initial + up to 6 nested, minus those already popped; the high-water
     mark depends on interleaving but can never shrink below the burst. *)
  check_bool "high-water mark >= initial burst" true (st.Sim.max_heap_depth >= 3)

(* ---- qcheck: counters are monotone under dispatch ----------------------- *)

(* Random schedule/step interleavings: after every step, events-processed
   and the heap high-water mark never decrease, and processed grows by
   exactly the events actually run. *)
let prop_sim_counters_monotone =
  QCheck.Test.make ~name:"sim stats monotone under dispatch" ~count:100
    QCheck.(list (int_bound 3))
    (fun script ->
      let sim = Sim.create () in
      let prev = ref (Sim.stats sim) in
      let ok = ref true in
      let step_checked () =
        let ran = Sim.step sim in
        let st = Sim.stats sim in
        if
          st.Sim.processed < !prev.Sim.processed
          || st.Sim.max_heap_depth < !prev.Sim.max_heap_depth
          || st.Sim.processed - !prev.Sim.processed > 1
        then ok := false;
        prev := st;
        ran
      in
      List.iter
        (fun n ->
          if n = 0 then ignore (step_checked () : bool)
          else
            for _ = 1 to n do
              ignore
                (Sim.schedule sim ~delay:(Time_ns.ms n) (fun () -> ())
                  : Sim.event_id)
            done;
          let st = Sim.stats sim in
          if st.Sim.max_heap_depth < !prev.Sim.max_heap_depth then ok := false;
          prev := st)
        script;
      while step_checked () do () done;
      !ok && (Sim.stats sim).Sim.pending = 0)

(* Probe totals only ever grow while spans open and close around dispatch. *)
let prop_probe_counters_monotone =
  QCheck.Test.make ~name:"probe counters monotone under dispatch" ~count:50
    QCheck.(list (int_bound 4))
    (fun script ->
      Perf.Probe.reset ();
      Perf.Probe.enable ();
      let sim = Sim.create () in
      Perf.Probe.install_sim sim;
      List.iter
        (fun n ->
          for _ = 1 to n do
            ignore
              (Sim.schedule sim ~delay:(Time_ns.ms (n + 1)) (fun () ->
                   ignore (Sys.opaque_identity (List.init 8 Fun.id) : int list))
                : Sim.event_id)
          done)
        script;
      let ok = ref true in
      let prev = ref (Perf.Probe.stat Perf.Probe.Sim_dispatch) in
      let continue = ref true in
      while !continue do
        continue := Sim.step sim;
        let s = Perf.Probe.stat Perf.Probe.Sim_dispatch in
        if
          s.Perf.Probe.calls < !prev.Perf.Probe.calls
          || s.Perf.Probe.wall_ns < !prev.Perf.Probe.wall_ns
          || s.Perf.Probe.minor_words < !prev.Perf.Probe.minor_words
        then ok := false;
        prev := s
      done;
      Perf.Probe.disable ();
      let total = List.fold_left ( + ) 0 script in
      let s = Perf.Probe.stat Perf.Probe.Sim_dispatch in
      Perf.Probe.reset ();
      !ok && s.Perf.Probe.calls = total)

(* ---- runner ------------------------------------------------------------- *)

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "perf"
    [
      ( "bench_report",
        [
          Alcotest.test_case "golden round trip" `Quick test_golden_roundtrip;
          Alcotest.test_case "write/read round trip" `Quick
            test_write_read_roundtrip;
          Alcotest.test_case "schema errors" `Quick test_schema_errors;
        ] );
      ( "compare",
        [
          Alcotest.test_case "verdicts" `Quick test_compare_verdicts;
          Alcotest.test_case "diff" `Quick test_compare_diff;
          Alcotest.test_case "missing metric" `Quick test_compare_missing_metric;
        ] );
      ( "trajectory",
        [
          Alcotest.test_case "trend" `Quick test_trajectory_trend;
          Alcotest.test_case "list files" `Quick test_trajectory_list_files;
        ] );
      ( "probe",
        [
          Alcotest.test_case "disabled no-op" `Quick test_probe_disabled_noop;
          Alcotest.test_case "accumulates" `Quick test_probe_accumulates;
          Alcotest.test_case "sim install" `Quick test_probe_sim_install;
          Alcotest.test_case "clock sanity" `Quick test_clock_monotone_enough;
        ] );
      ( "sim_stats",
        [
          Alcotest.test_case "dispatch counters" `Quick test_sim_stats;
          qc prop_sim_counters_monotone;
          qc prop_probe_counters_monotone;
        ] );
    ]
