(* Benchmark harness.

   Two parts:

   1. Experiment regeneration — one driver per figure / quantitative claim
      of the paper (E1..E10; see DESIGN.md §4).  Each prints a table in the
      paper's shape; EXPERIMENTS.md records paper-vs-measured.  This is the
      default output of `dune exec bench/main.exe`.

   2. Bechamel micro-benchmarks of the hot paths that make the paper's
      mechanisms cheap: consistency-point advancement, quorum-set
      evaluation, hot-log insertion/SCL tracking, histogram recording, and
      the simulator core.  Run with `dune exec bench/main.exe -- micro`.

   The default (`dune exec bench/main.exe`) runs both. *)

open Simcore
module E = Harness.Experiments

let run_experiments () =
  let t0 = Unix.gettimeofday () in
  print_string (E.run_all ());
  Printf.printf "(experiments wall-clock: %.1fs)\n%!" (Unix.gettimeofday () -. t0)

(* ---- Bechamel micro-benchmarks ---- *)

let bench_consistency () =
  (* One PG, 6 segments: submit+ack a record through PGCL/VCL advancement. *)
  let open Quorum in
  let c = Aurora_core.Consistency.create () in
  let pg = Storage.Pg_id.of_int 0 in
  let members = List.init 6 Member_id.of_int in
  Aurora_core.Consistency.register_pg c pg
    ~write_quorum:(Quorum_set.k_of 4 members);
  let lsn = ref 0 in
  let seg_arr = Array.of_list members in
  Bechamel.Staged.stage (fun () ->
      incr lsn;
      let l = Wal.Lsn.of_int !lsn in
      Aurora_core.Consistency.note_submitted c ~pg ~lsn:l ~mtr_end:true;
      for s = 0 to 3 do
        Aurora_core.Consistency.note_ack c ~pg ~seg:seg_arr.(s) ~scl:l
      done)

let bench_quorum_eval () =
  let open Quorum in
  let members, rule = E.scheme_rule Harness.Cluster.Tiered in
  let ids = List.map (fun (m : Membership.member) -> m.Membership.id) members in
  let subset = Member_id.set_of_list (List.filteri (fun i _ -> i < 4) ids) in
  Bechamel.Staged.stage (fun () ->
      ignore (Quorum_set.satisfied rule.Quorum_set.Rule.write subset : bool))

let bench_quorum_overlap () =
  let _, rule = E.scheme_rule Harness.Cluster.Tiered in
  Bechamel.Staged.stage (fun () ->
      ignore
        (Quorum.Quorum_set.overlaps ~read:rule.Quorum.Quorum_set.Rule.read
           ~write:rule.Quorum.Quorum_set.Rule.write
          : bool))

let bench_hot_log () =
  let log = Wal.Hot_log.create () in
  let lsn = ref 0 in
  Bechamel.Staged.stage (fun () ->
      incr lsn;
      let r =
        Wal.Log_record.make ~lsn:(Wal.Lsn.of_int !lsn)
          ~prev_volume:(Wal.Lsn.of_int (!lsn - 1))
          ~prev_segment:(Wal.Lsn.of_int (!lsn - 1))
          ~prev_block:Wal.Lsn.none
          ~block:(Wal.Block_id.of_int (!lsn mod 64))
          ~txn:(Wal.Txn_id.of_int 1) ~mtr_id:!lsn ~mtr_end:true
          ~op:(Wal.Log_record.Put { key = "k"; value = "v" })
      in
      ignore (Wal.Hot_log.insert log r : Wal.Hot_log.insert_result))

let bench_histogram () =
  let h = Histogram.create () in
  let x = ref 17 in
  Bechamel.Staged.stage (fun () ->
      x := (!x * 1103515245) + 12345;
      Histogram.record h (abs !x mod 10_000_000))

let bench_sim_events () =
  let sim = Sim.create () in
  Bechamel.Staged.stage (fun () ->
      ignore (Sim.schedule sim ~delay:1 (fun () -> ()) : Sim.event_id);
      ignore (Sim.step sim : bool))

let bench_series_sample () =
  (* Steady-state sampler tick over a registry shaped like the cluster's:
     a handful of counters, one latency histogram percentile, gauges.
     Includes the occasional decimation pass, so this is the amortised
     per-tick cost the sim-clock timer pays. *)
  let reg = Obs.Registry.create () in
  let s = Obs.Series.create ~capacity:512 ~registry:reg () in
  let counters =
    List.init 8 (fun i ->
        let name = Printf.sprintf "bench_c%d" i in
        let c = Obs.Registry.counter reg name in
        Obs.Series.track_counter s name;
        c)
  in
  let h = Obs.Registry.histogram reg "bench_lat_ns" in
  Obs.Series.track_histogram s ~pct:99. "bench_lat_ns";
  let g = Obs.Registry.gauge reg "bench_gauge" in
  Obs.Series.track_gauge s "bench_gauge";
  let at = ref 0 in
  Bechamel.Staged.stage (fun () ->
      List.iter incr counters;
      Histogram.record h (at.contents land 0xffff);
      g := float_of_int !at;
      at := !at + 1_000_000;
      Obs.Series.sample s ~at:!at)

let bench_health_sample () =
  (* Full cluster-health probe: per-PG quorum margins by exhaustive subset
     enumeration (2 PGs x 2^6 subsets), AZ+1 tolerance, volume gaps. *)
  let cluster =
    Harness.Cluster.create { Harness.Cluster.default_config with seed = 3 }
  in
  Sim.run_until (Harness.Cluster.sim cluster) (Time_ns.ms 100);
  let at = ref (Sim.now (Harness.Cluster.sim cluster)) in
  Bechamel.Staged.stage (fun () ->
      incr at;
      ignore (Harness.Cluster.health_sample cluster ~at:!at : Obs.Health.sample))

let bench_zipf () =
  let z = Workload.Zipf.create ~n:100_000 ~theta:0.99 in
  let rng = Rng.create 7 in
  Bechamel.Staged.stage (fun () -> ignore (Workload.Zipf.sample z rng : int))

let run_micro () =
  let open Bechamel in
  let open Toolkit in
  let tests =
    [
      Test.make ~name:"consistency: submit+4acks -> VCL" (bench_consistency ());
      Test.make ~name:"quorum-set: tiered write eval" (bench_quorum_eval ());
      Test.make ~name:"quorum-set: full overlap proof" (bench_quorum_overlap ());
      Test.make ~name:"hot-log: insert + SCL advance" (bench_hot_log ());
      Test.make ~name:"histogram: record" (bench_histogram ());
      Test.make ~name:"sim: schedule + dispatch event" (bench_sim_events ());
      Test.make ~name:"series: sampler tick (amortised)" (bench_series_sample ());
      Test.make ~name:"health: cluster probe + margins" (bench_health_sample ());
      Test.make ~name:"zipf: sample" (bench_zipf ());
    ]
  in
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock results
  in
  Printf.printf "\n== Bechamel micro-benchmarks (ns/op) ==\n%!";
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-40s %12.1f ns/op\n%!" name est
          | Some _ | None -> Printf.printf "%-40s (no estimate)\n%!" name)
        results)
    tests

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match mode with
  | "experiments" -> run_experiments ()
  | "micro" -> run_micro ()
  | "all" ->
    run_experiments ();
    run_micro ()
  | other ->
    Printf.eprintf "unknown mode %S (use: experiments | micro | all)\n" other;
    exit 1
