(* Benchmark harness.

   Two parts:

   1. Experiment regeneration — one driver per figure / quantitative claim
      of the paper (E1..E10; see DESIGN.md §4).  Each prints a table in the
      paper's shape; EXPERIMENTS.md records paper-vs-measured.  This is the
      default output of `dune exec bench/main.exe`.

   2. Bechamel micro-benchmarks of the hot paths that make the paper's
      mechanisms cheap: consistency-point advancement, quorum-set
      evaluation, hot-log insertion/SCL tracking, histogram recording, and
      the simulator core.  Run with `dune exec bench/main.exe -- micro`.

   3. The performance report — `main.exe report --out BENCH_NNN.json` runs
      the micro suite plus an end-to-end reference scenario (open-loop
      transaction mix on the default cluster) and writes the machine-readable
      `BENCH_*.json` record (see Perf.Bench_report): ns/op per micro-bench,
      simulated commits/sec, wall-clock events/sec, and GC deltas per commit.
      `scripts/bench.sh` drives this; `aurora_cli perf` reads the trajectory.

   The default (`dune exec bench/main.exe`) runs experiments + micro.

   All wall-clock reads go through Perf.Clock — the one module the
   aurora_lint determinism rule permits to touch real time. *)

open Simcore
module E = Harness.Experiments

let run_experiments () =
  let t0 = Perf.Clock.now_ns () in
  print_string (E.run_all ());
  Printf.printf "(experiments wall-clock: %.1fs)\n%!" (Perf.Clock.elapsed_s ~since:t0)

(* ---- Bechamel micro-benchmarks ---- *)

let bench_consistency () =
  (* One PG, 6 segments: submit+ack a record through PGCL/VCL advancement. *)
  let open Quorum in
  let c = Aurora_core.Consistency.create () in
  let pg = Storage.Pg_id.of_int 0 in
  let members = List.init 6 Member_id.of_int in
  Aurora_core.Consistency.register_pg c pg
    ~write_quorum:(Quorum_set.k_of 4 members);
  let lsn = ref 0 in
  let seg_arr = Array.of_list members in
  Bechamel.Staged.stage (fun () ->
      incr lsn;
      let l = Wal.Lsn.of_int !lsn in
      Aurora_core.Consistency.note_submitted c ~pg ~lsn:l ~mtr_end:true;
      for s = 0 to 3 do
        Aurora_core.Consistency.note_ack c ~pg ~seg:seg_arr.(s) ~scl:l
      done)

let bench_quorum_eval () =
  let open Quorum in
  let members, rule = E.scheme_rule Harness.Cluster.Tiered in
  let ids = List.map (fun (m : Membership.member) -> m.Membership.id) members in
  let subset = Member_id.set_of_list (List.filteri (fun i _ -> i < 4) ids) in
  Bechamel.Staged.stage (fun () ->
      ignore (Quorum_set.satisfied rule.Quorum_set.Rule.write subset : bool))

let bench_quorum_overlap () =
  let _, rule = E.scheme_rule Harness.Cluster.Tiered in
  Bechamel.Staged.stage (fun () ->
      ignore
        (Quorum.Quorum_set.overlaps ~read:rule.Quorum.Quorum_set.Rule.read
           ~write:rule.Quorum.Quorum_set.Rule.write
          : bool))

let bench_hot_log () =
  let log = Wal.Hot_log.create () in
  let lsn = ref 0 in
  Bechamel.Staged.stage (fun () ->
      incr lsn;
      let r =
        Wal.Log_record.make ~lsn:(Wal.Lsn.of_int !lsn)
          ~prev_volume:(Wal.Lsn.of_int (!lsn - 1))
          ~prev_segment:(Wal.Lsn.of_int (!lsn - 1))
          ~prev_block:Wal.Lsn.none
          ~block:(Wal.Block_id.of_int (!lsn mod 64))
          ~txn:(Wal.Txn_id.of_int 1) ~mtr_id:!lsn ~mtr_end:true
          ~op:(Wal.Log_record.Put { key = "k"; value = "v" })
      in
      ignore (Wal.Hot_log.insert log r : Wal.Hot_log.insert_result))

let bench_histogram () =
  let h = Histogram.create () in
  let x = ref 17 in
  Bechamel.Staged.stage (fun () ->
      x := (!x * 1103515245) + 12345;
      Histogram.record h (abs !x mod 10_000_000))

let bench_sim_events () =
  let sim = Sim.create () in
  Bechamel.Staged.stage (fun () ->
      ignore (Sim.schedule sim ~delay:1 (fun () -> ()) : Sim.event_id);
      ignore (Sim.step sim : bool))

let bench_series_sample () =
  (* Steady-state sampler tick over a registry shaped like the cluster's:
     a handful of counters, one latency histogram percentile, gauges.
     Includes the occasional decimation pass, so this is the amortised
     per-tick cost the sim-clock timer pays. *)
  let reg = Obs.Registry.create () in
  let s = Obs.Series.create ~capacity:512 ~registry:reg () in
  let counters =
    List.init 8 (fun i ->
        let name = Printf.sprintf "bench_c%d" i in
        let c = Obs.Registry.counter reg name in
        Obs.Series.track_counter s name;
        c)
  in
  let h = Obs.Registry.histogram reg "bench_lat_ns" in
  Obs.Series.track_histogram s ~pct:99. "bench_lat_ns";
  let g = Obs.Registry.gauge reg "bench_gauge" in
  Obs.Series.track_gauge s "bench_gauge";
  let at = ref 0 in
  Bechamel.Staged.stage (fun () ->
      List.iter incr counters;
      Histogram.record h (at.contents land 0xffff);
      g := float_of_int !at;
      at := !at + 1_000_000;
      Obs.Series.sample s ~at:!at)

let bench_health_sample () =
  (* Full cluster-health probe: per-PG quorum margins by exhaustive subset
     enumeration (2 PGs x 2^6 subsets), AZ+1 tolerance, volume gaps. *)
  let cluster =
    Harness.Cluster.create { Harness.Cluster.default_config with seed = 3 }
  in
  Sim.run_until (Harness.Cluster.sim cluster) (Time_ns.ms 100);
  let at = ref (Sim.now (Harness.Cluster.sim cluster)) in
  Bechamel.Staged.stage (fun () ->
      incr at;
      ignore (Harness.Cluster.health_sample cluster ~at:!at : Obs.Health.sample))

let bench_zipf () =
  let z = Workload.Zipf.create ~n:100_000 ~theta:0.99 in
  let rng = Rng.create 7 in
  Bechamel.Staged.stage (fun () -> ignore (Workload.Zipf.sample z rng : int))

(* Run the suite and return OLS ns/op estimates, one row per benchmark, in
   declaration order.  Printing and the JSON report both consume this. *)
let micro_estimates () =
  let open Bechamel in
  let open Toolkit in
  let tests =
    [
      Test.make ~name:"consistency: submit+4acks -> VCL" (bench_consistency ());
      Test.make ~name:"quorum-set: tiered write eval" (bench_quorum_eval ());
      Test.make ~name:"quorum-set: full overlap proof" (bench_quorum_overlap ());
      Test.make ~name:"hot-log: insert + SCL advance" (bench_hot_log ());
      Test.make ~name:"histogram: record" (bench_histogram ());
      Test.make ~name:"sim: schedule + dispatch event" (bench_sim_events ());
      Test.make ~name:"series: sampler tick (amortised)" (bench_series_sample ());
      Test.make ~name:"health: cluster probe + margins" (bench_health_sample ());
      Test.make ~name:"zipf: sample" (bench_zipf ());
    ]
  in
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock results
  in
  List.concat_map
    (fun test ->
      let results = analyze (benchmark test) in
      let rows =
        Hashtbl.fold
          (fun name ols acc ->
            match Bechamel.Analyze.OLS.estimates ols with
            | Some [ est ] -> (name, Some est) :: acc
            | Some _ | None -> (name, None) :: acc)
          results []
      in
      (* One entry per test; sort for determinism if bechamel ever returns
         several. *)
      List.sort (fun (a, _) (b, _) -> String.compare a b) rows)
    tests

let run_micro () =
  Printf.printf "\n== Bechamel micro-benchmarks (ns/op) ==\n%!";
  List.iter
    (fun (name, est) ->
      match est with
      | Some est -> Printf.printf "%-40s %12.1f ns/op\n%!" name est
      | None -> Printf.printf "%-40s (no estimate)\n%!" name)
    (micro_estimates ())

(* ---- the BENCH_*.json performance report ---- *)

(* End-to-end reference scenario: the same open-loop transaction mix the
   CLI's smoke command drives, with perf probes enabled and GC accounting
   around the whole run.  The probes live outside sim state, so the run's
   simulated behaviour is byte-identical with or without them. *)
let run_reference_scenario ~seed ~txns ~pgs ~rate () =
  Perf.Probe.reset ();
  Perf.Probe.enable ();
  Gc.compact ();
  let g0 = Gc.quick_stat () in
  let t0 = Perf.Clock.now_ns () in
  let cluster =
    Harness.Cluster.create
      { Harness.Cluster.default_config with seed; n_pgs = pgs }
  in
  let sim = Harness.Cluster.sim cluster in
  Perf.Probe.install_sim sim;
  let gen =
    Workload.Txn_gen.create ~sim
      ~rng:(Rng.create (seed + 1))
      ~db:(Harness.Cluster.db cluster)
      ~profile:Workload.Txn_gen.default_profile ()
  in
  (* Offered-load window sized so [rate] yields ~[txns] transactions. *)
  let duration = Time_ns.of_float_us (float_of_int txns /. rate *. 1e6) in
  Workload.Txn_gen.run_open_loop gen ~rate_per_sec:rate ~duration;
  Sim.run_until sim (Time_ns.add duration (Time_ns.sec 2));
  let wall_ns = Perf.Clock.elapsed_ns ~since:t0 in
  let g1 = Gc.quick_stat () in
  Perf.Probe.disable ();
  Sim.set_probe sim None;
  let st = Sim.stats sim in
  let commits = Workload.Txn_gen.acked gen in
  let per_commit w = if commits = 0 then 0. else w /. float_of_int commits in
  let wall_s = float_of_int wall_ns /. 1e9 in
  {
    Perf.Bench_report.commits_acked = commits;
    sim_duration_ns = Sim.now sim;
    commits_per_sec_sim =
      (let s = Time_ns.to_float_s duration in
       if s = 0. then 0. else float_of_int commits /. s);
    events_processed = st.Sim.processed;
    wall_ns;
    events_per_sec_wall =
      (if wall_s = 0. then 0. else float_of_int st.Sim.processed /. wall_s);
    gc =
      {
        Perf.Bench_report.minor_words_per_commit =
          per_commit (g1.Gc.minor_words -. g0.Gc.minor_words);
        major_words_per_commit =
          per_commit (g1.Gc.major_words -. g0.Gc.major_words);
        promoted_words_per_commit =
          per_commit (g1.Gc.promoted_words -. g0.Gc.promoted_words);
        top_heap_words = g1.Gc.top_heap_words;
      };
    subsystems =
      List.map
        (fun (name, (s : Perf.Probe.stat)) ->
          {
            Perf.Bench_report.subsystem = name;
            calls = s.Perf.Probe.calls;
            wall_ns = s.Perf.Probe.wall_ns;
            minor_words = s.Perf.Probe.minor_words;
          })
        (Perf.Probe.stats ());
  }

let bench_id_of_path out =
  let base = Filename.basename out in
  match Filename.chop_suffix_opt ~suffix:".json" base with
  | Some id -> id
  | None -> base

let run_report ~out ~seed ~txns ~pgs ~rate ~with_micro () =
  let scenario_measured = run_reference_scenario ~seed ~txns ~pgs ~rate () in
  let micro =
    if with_micro then
      List.filter_map
        (fun (name, est) ->
          match est with
          | Some ns_per_op -> Some { Perf.Bench_report.bench_name = name; ns_per_op }
          | None -> None)
        (micro_estimates ())
    else []
  in
  let report =
    {
      Perf.Bench_report.meta =
        {
          Perf.Bench_report.bench_id = bench_id_of_path out;
          git_sha =
            (match Sys.getenv_opt "AURORA_GIT_SHA" with
            | Some sha when sha <> "" -> sha
            | _ -> "unknown");
          ocaml_version = Sys.ocaml_version;
          scenario = { Perf.Bench_report.txns; pgs; seed; rate_per_sec = rate };
        };
      scenario_measured;
      micro;
    }
  in
  Perf.Bench_report.write ~path:out report;
  Printf.printf
    "wrote %s (commits=%d, %.0f commits/sec sim, %.0f events/sec wall, %.0f \
     minor words/commit)\n"
    out scenario_measured.Perf.Bench_report.commits_acked
    scenario_measured.Perf.Bench_report.commits_per_sec_sim
    scenario_measured.Perf.Bench_report.events_per_sec_wall
    scenario_measured.Perf.Bench_report.gc
      .Perf.Bench_report.minor_words_per_commit

let report_usage =
  "usage: main.exe report [--out FILE] [--seed N] [--txns N] [--pgs N] \
   [--rate R] [--tiny] [--no-micro]\n"

let run_report_mode args =
  let out = ref "BENCH_report.json" in
  let seed = ref 7 in
  let txns = ref 2000 in
  let pgs = ref 2 in
  let rate = ref 2000. in
  let with_micro = ref true in
  let rec parse = function
    | [] -> ()
    | "--out" :: v :: rest ->
      out := v;
      parse rest
    | "--seed" :: v :: rest ->
      seed := int_of_string v;
      parse rest
    | "--txns" :: v :: rest ->
      txns := int_of_string v;
      parse rest
    | "--pgs" :: v :: rest ->
      pgs := int_of_string v;
      parse rest
    | "--rate" :: v :: rest ->
      rate := float_of_string v;
      parse rest
    | "--tiny" :: rest ->
      (* Smoke-scale: exercise the writer end-to-end in well under a
         second, no timing assertions anywhere downstream. *)
      txns := 50;
      with_micro := false;
      parse rest
    | "--no-micro" :: rest ->
      with_micro := false;
      parse rest
    | other :: _ ->
      Printf.eprintf "report: unknown argument %S\n%s" other report_usage;
      exit 2
  in
  parse args;
  run_report ~out:!out ~seed:!seed ~txns:!txns ~pgs:!pgs ~rate:!rate
    ~with_micro:!with_micro ()

let () =
  let argv = Array.to_list Sys.argv in
  match argv with
  | _ :: "report" :: args -> run_report_mode args
  | [ _ ] | [ _; "all" ] ->
    run_experiments ();
    run_micro ()
  | [ _; "experiments" ] -> run_experiments ()
  | [ _; "micro" ] -> run_micro ()
  | _ :: other :: _ ->
    Printf.eprintf
      "unknown mode %S (use: experiments | micro | all | report)\n" other;
    exit 1
  | [] -> ()
