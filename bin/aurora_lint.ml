(* aurora_lint — static-analysis gate for determinism, protocol-type
   discipline, and interface hygiene.  See DESIGN.md §6 for the rule
   catalogue and the baseline workflow.

   Exit status: 0 when every finding is baselined (or none), 1 otherwise,
   2 on usage errors. *)

let usage =
  "usage: aurora_lint [options] [dir ...]\n\
   Lints every .ml/.mli under the given directories (default: lib bin bench \
   test).\n"

let () =
  let json = ref false in
  let update = ref false in
  let list_rules = ref false in
  let baseline_path = ref "lint/baseline.txt" in
  let roots = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " emit findings as a JSON array on stdout");
      ( "--baseline",
        Arg.Set_string baseline_path,
        "FILE suppression baseline (default lint/baseline.txt)" );
      ( "--update-baseline",
        Arg.Set update,
        " rewrite the baseline to cover all current findings, then exit 0" );
      ("--rules", Arg.Set list_rules, " list the rule catalogue and exit");
    ]
  in
  Arg.parse (Arg.align spec) (fun dir -> roots := dir :: !roots) usage;
  if !list_rules then begin
    List.iter
      (fun (r : Lint.Rules.rule) ->
        Printf.printf "%-18s %s\n" r.id r.description)
      Lint.Rules.all;
    exit 0
  end;
  let roots =
    match List.rev !roots with
    | [] -> [ "lib"; "bin"; "bench"; "test" ]
    | roots -> roots
  in
  let findings = Lint.Engine.lint_tree ~roots in
  if !update then begin
    Lint.Baseline.save !baseline_path findings;
    Printf.eprintf "aurora_lint: baselined %d finding(s) into %s\n"
      (List.length findings) !baseline_path;
    exit 0
  end;
  let baseline = Lint.Baseline.load !baseline_path in
  let fresh, suppressed =
    List.partition (fun f -> not (Lint.Baseline.mem baseline f)) findings
  in
  if !json then print_string (Lint.Finding.list_to_json fresh)
  else List.iter (fun f -> print_endline (Lint.Finding.to_string f)) fresh;
  Printf.eprintf "aurora_lint: %d finding(s), %d suppressed by baseline\n"
    (List.length fresh) (List.length suppressed);
  match fresh with
  | [] -> exit 0
  | _ ->
    Printf.eprintf
      "aurora_lint: fix the findings above, extend a rule allowlist with \
       justification, or freeze them with --update-baseline\n";
    exit 1
