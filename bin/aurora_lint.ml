(* aurora_lint — static-analysis gate for determinism, protocol-type
   discipline, and interface hygiene.  See DESIGN.md §6 for the rule
   catalogue and the baseline workflow.

   Two tiers share one baseline:
   - parse tier (default): ppxlib over every .ml/.mli source file;
   - typed tier (--typed): compiler .cmt trees, call-graph rules
     (hot-path allocation, sim-state purity, protocol/event coverage,
     type-precise poly-compare).

   Exit status: 0 when every finding is baselined (or none), 1 otherwise,
   2 on usage errors. *)

let usage =
  "usage: aurora_lint [options] [dir ...]\n\
   Parse tier: lints every .ml/.mli under the given directories (default: \
   lib bin bench test).\n\
   Typed tier (--typed): analyzes every .cmt under the given directories \
   (default: _build/default/lib, or lib inside the build context).\n"

let () =
  let json = ref false in
  let update = ref false in
  let list_rules = ref false in
  let typed = ref false in
  let baseline_path = ref "lint/baseline.txt" in
  let roots = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " emit findings as a JSON array on stdout");
      ( "--typed",
        Arg.Set typed,
        " run the typed (.cmt call-graph) tier instead of the parse tier" );
      ( "--baseline",
        Arg.Set_string baseline_path,
        "FILE suppression baseline (default lint/baseline.txt)" );
      ( "--update-baseline",
        Arg.Set update,
        " rewrite the baseline to cover all current findings (both tiers), \
         then exit 0" );
      ("--rules", Arg.Set list_rules, " list the rule catalogue and exit");
    ]
  in
  Arg.parse (Arg.align spec) (fun dir -> roots := dir :: !roots) usage;
  if !list_rules then begin
    List.iter
      (fun (r : Lint.Rules.rule) ->
        Printf.printf "%-24s %s\n" r.id r.description)
      Lint.Rules.all;
    List.iter
      (fun (id, description) -> Printf.printf "%-24s %s\n" id description)
      Lint.Typed_rules.catalogue;
    exit 0
  end;
  let explicit_roots = List.rev !roots in
  let parse_roots =
    match explicit_roots with
    | [] -> [ "lib"; "bin"; "bench"; "test" ]
    | roots -> roots
  in
  let typed_roots =
    match explicit_roots with
    | [] -> Lint.Typed_engine.default_cmt_roots ()
    | roots -> roots
  in
  let typed_findings () =
    let units = Lint.Typed_loader.load_tree ~roots:typed_roots in
    (* An empty unit list means the build tree has no .cmt files — the
       typed gate would vacuously pass, which must be loud, not silent. *)
    if units = [] then begin
      Printf.eprintf
        "aurora_lint: error: no .cmt files under [%s] — build first (dune \
         build @all)\n"
        (String.concat "; " typed_roots);
      exit 2
    end;
    Lint.Typed_engine.lint_units units
  in
  if !update then begin
    (* The shared baseline covers both tiers, so regeneration runs both —
       regardless of which tier this invocation was asked to gate. *)
    let findings =
      Lint.Engine.lint_tree ~roots:parse_roots @ typed_findings ()
    in
    Lint.Baseline.save !baseline_path findings;
    Printf.eprintf "aurora_lint: baselined %d finding(s) into %s\n"
      (List.length findings) !baseline_path;
    exit 0
  end;
  let findings =
    if !typed then typed_findings ()
    else Lint.Engine.lint_tree ~roots:parse_roots
  in
  let baseline = Lint.Baseline.load !baseline_path in
  let fresh, suppressed =
    List.partition (fun f -> not (Lint.Baseline.mem baseline f)) findings
  in
  if !json then print_string (Lint.Finding.list_to_json fresh)
  else List.iter (fun f -> print_endline (Lint.Finding.to_string f)) fresh;
  Printf.eprintf "aurora_lint: %d finding(s), %d suppressed by baseline\n"
    (List.length fresh) (List.length suppressed);
  match fresh with
  | [] -> exit 0
  | _ ->
    Printf.eprintf
      "aurora_lint: fix the findings above, extend a rule allowlist with \
       justification, or freeze them with --update-baseline\n";
    exit 1
