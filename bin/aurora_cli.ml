(* aurora-cli: run the paper's experiments and demo scenarios from the
   command line.

     dune exec bin/aurora_cli.exe -- exp e6 --seed 7
     dune exec bin/aurora_cli.exe -- exp all
     dune exec bin/aurora_cli.exe -- bench
     dune exec bin/aurora_cli.exe -- perf list
     dune exec bin/aurora_cli.exe -- perf diff BENCH_006.json BENCH_007.json
     dune exec bin/aurora_cli.exe -- smoke --txns 2000 --pgs 4
     dune exec bin/aurora_cli.exe -- obs --json --trace-tail 20
     dune exec bin/aurora_cli.exe -- obs --series --window 25
     dune exec bin/aurora_cli.exe -- trace-export --out trace.json *)

open Cmdliner
module E = Harness.Experiments

let print r = Harness.Report.print r

let run_experiment name seed =
  match String.lowercase_ascii name with
  | "e1" -> print (E.E1.report (E.E1.run ~seed ()))
  | "e2" -> print (E.E2.report (E.E2.run ~seed ()))
  | "e3" -> print (E.E3.report (E.E3.run ()))
  | "e4" -> print (E.E4.report (E.E4.run ~seed ()))
  | "e5" -> print (E.E5.report (E.E5.run ~seed ()))
  | "e6" -> print (E.E6.report (E.E6.run ~seed ()))
  | "e7" -> print (E.E7.report (E.E7.run ~seed ()))
  | "e8" -> print (E.E8.report (E.E8.run ~seed ()))
  | "e9" -> print (E.E9.report (E.E9.run ~seed ()))
  | "e10" -> print (E.E10.report (E.E10.run ~seed ()))
  | "a1" -> print (E.Ablations.hedge_report (E.Ablations.hedge_sweep ~seed ()))
  | "a2" -> print (E.Ablations.gossip_report (E.Ablations.gossip_sweep ~seed ()))
  | "all" -> print_string (E.run_all ~seed ())
  | other ->
    Printf.eprintf "unknown experiment %S (e1..e10 or all)\n" other;
    exit 1

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let exp_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID" ~doc:"Experiment id: e1..e10, a1/a2 (ablations), or 'all'.")
  in
  Cmd.v
    (Cmd.info "exp"
       ~doc:"Regenerate a figure/claim of the paper (see DESIGN.md \xc2\xa74)")
    Term.(const run_experiment $ name_arg $ seed_arg)

(* Shared smoke workload: an open-loop transaction mix against a default
   cluster, run to quiescence. *)
let run_workload ?window_ms ~txns ~pgs ~seed ~tracing () =
  let open Simcore in
  let cluster =
    Harness.Cluster.create
      {
        Harness.Cluster.default_config with
        seed;
        n_pgs = pgs;
        obs_sample_period =
          (match window_ms with
          | Some ms -> Time_ns.ms ms
          | None -> Harness.Cluster.default_config.Harness.Cluster.obs_sample_period);
      }
  in
  if tracing then Obs.Ctx.enable_tracing (Harness.Cluster.obs cluster);
  let sim = Harness.Cluster.sim cluster in
  let gen =
    Workload.Txn_gen.create ~sim ~rng:(Rng.create (seed + 1))
      ~db:(Harness.Cluster.db cluster)
      ~profile:Workload.Txn_gen.default_profile ()
  in
  Workload.Txn_gen.run_open_loop gen ~rate_per_sec:2000.
    ~duration:(Time_ns.us (txns * 500));
  Sim.run_until sim (Time_ns.add (Time_ns.us (txns * 500)) (Time_ns.sec 2));
  (cluster, gen)

let print_snapshot ~json cluster ~where ~trace_tail =
  let open Simcore in
  let obs = Harness.Cluster.obs cluster in
  let where = match where with [] -> None | w -> Some w in
  let snap =
    Obs.Ctx.snapshot_at
      ~at:(Sim.now (Harness.Cluster.sim cluster))
      ?where ?trace_tail obs
  in
  if json then print_endline (Obs.Json.to_string ~pretty:true snap)
  else begin
    (match snap with
    | Obs.Json.Obj fields -> (
      match List.assoc_opt "instruments" fields with
      | Some (Obs.Json.List instruments) ->
        List.iter
          (fun inst ->
            match inst with
            | Obs.Json.Obj f ->
              let str k =
                match List.assoc_opt k f with
                | Some (Obs.Json.String s) -> s
                | _ -> ""
              in
              let labels =
                match List.assoc_opt "labels" f with
                | Some (Obs.Json.Obj l) ->
                  if l = [] then ""
                  else
                    "{"
                    ^ String.concat ","
                        (List.map
                           (fun (k, v) ->
                             match v with
                             | Obs.Json.String s -> k ^ "=" ^ s
                             | j -> k ^ "=" ^ Obs.Json.to_string j)
                           l)
                    ^ "}"
                | _ -> ""
              in
              let num k =
                match List.assoc_opt k f with
                | Some j -> Obs.Json.to_string j
                | None -> "-"
              in
              if str "type" = "histogram" then
                let h k =
                  match List.assoc_opt "histogram" f with
                  | Some (Obs.Json.Obj hf) -> (
                    match List.assoc_opt k hf with
                    | Some j -> Obs.Json.to_string j
                    | None -> "-")
                  | _ -> "-"
                in
                Printf.printf "%s%s  count=%s mean=%s p50=%s p99=%s max=%s\n"
                  (str "name") labels (h "count") (h "mean") (h "p50")
                  (h "p99") (h "max")
              else
                Printf.printf "%s%s = %s\n" (str "name") labels (num "value")
            | _ -> ())
          instruments
      | _ -> ())
    | _ -> ());
    match trace_tail with
    | None -> ()
    | Some n ->
      let tr = Obs.Ctx.trace obs in
      Printf.printf
        "-- trace (last %d of %d events; ring capacity %d, %d dropped) --\n"
        (min n (Obs.Trace.length tr))
        (Obs.Trace.length tr) (Obs.Trace.capacity tr) (Obs.Trace.dropped tr);
      List.iter
        (fun ev -> Format.printf "%a@." Obs.Trace.pp_event ev)
        (Obs.Trace.tail tr n)
  end

(* Time-series table: one row per retained sample (down-sampled to ~40
   rows), one column per channel, with a legend mapping short column ids to
   channel labels. *)
let print_series cluster =
  let open Simcore in
  let series = Obs.Ctx.series (Harness.Cluster.obs cluster) in
  let labels = Obs.Series.channel_labels series in
  let ts = Obs.Series.timestamps series in
  let n = Array.length ts in
  Printf.printf "-- time series: %d samples, %d channels, stride %d --\n" n
    (List.length labels) (Obs.Series.stride series);
  List.iteri (fun i l -> Printf.printf "  c%-2d = %s\n" (i + 1) l) labels;
  let cols =
    List.map
      (fun l ->
        match Obs.Series.points series l with
        | Some pts -> pts
        | None -> [||])
      labels
  in
  Printf.printf "%12s" "t";
  List.iteri (fun i _ -> Printf.printf " %10s" (Printf.sprintf "c%d" (i + 1))) labels;
  print_newline ();
  let step = max 1 (n / 40) in
  for i = 0 to n - 1 do
    if i mod step = 0 || i = n - 1 then begin
      Printf.printf "%12s" (Time_ns.to_string ts.(i));
      List.iter
        (fun pts ->
          let v = pts.(i) in
          if Float.is_nan v then Printf.printf " %10s" "-"
          else Printf.printf " %10.4g" v)
        cols;
      print_newline ()
    end
  done

let run_smoke txns pgs seed json =
  let open Simcore in
  let module Database = Aurora_core.Database in
  let cluster, gen = run_workload ~txns ~pgs ~seed ~tracing:false () in
  if json then print_snapshot ~json:true cluster ~where:[] ~trace_tail:None
  else begin
    let db = Harness.Cluster.db cluster in
    let m = Database.metrics db in
    Printf.printf "txns: issued=%d acked=%d failed=%d\n"
      (Workload.Txn_gen.issued gen)
      (Workload.Txn_gen.acked gen)
      (Workload.Txn_gen.failed gen);
    Printf.printf "commit latency: p50=%s p99=%s\n"
      (Time_ns.to_string (Histogram.percentile m.Database.commit_latency 50.))
      (Time_ns.to_string (Histogram.percentile m.Database.commit_latency 99.));
    Printf.printf "reads: cache hits=%d storage=%d\n" m.Database.cache_hit_reads
      m.Database.storage_reads;
    Printf.printf "VCL=%d VDL=%d records=%d\n"
      (Wal.Lsn.to_int (Database.vcl db))
      (Wal.Lsn.to_int (Database.vdl db))
      m.Database.records_written;
    let st = Simnet.Net.stats (Harness.Cluster.net cluster) in
    Printf.printf "network: sent=%d delivered=%d bytes=%d\n" st.Simnet.Net.sent
      st.Simnet.Net.delivered st.Simnet.Net.bytes_sent
  end

let txns_arg =
  Arg.(value & opt int 1000 & info [ "txns" ] ~doc:"Transactions.")

let pgs_arg =
  Arg.(value & opt int 2 & info [ "pgs" ] ~doc:"Protection groups.")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the metrics snapshot as JSON.")

let smoke_cmd =
  Cmd.v
    (Cmd.info "smoke" ~doc:"Run a quick cluster workload and print metrics")
    Term.(const run_smoke $ txns_arg $ pgs_arg $ seed_arg $ json_arg)

let run_obs txns pgs seed json trace_tail pg az series window_ms =
  let cluster, _gen = run_workload ?window_ms ~txns ~pgs ~seed ~tracing:true () in
  let where =
    (match pg with Some p -> [ ("pg", string_of_int p) ] | None -> [])
    @ (match az with Some a -> [ ("az", a) ] | None -> [])
  in
  let trace_tail = if trace_tail > 0 then Some trace_tail else None in
  print_snapshot ~json cluster ~where ~trace_tail;
  if series && not json then print_series cluster

let window_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "window" ] ~docv:"MS"
        ~doc:"Sampling window (observability sampler period) in milliseconds.")

let obs_cmd =
  let trace_tail =
    Arg.(
      value & opt int 0
      & info [ "trace-tail" ] ~docv:"N" ~doc:"Include the last N trace events.")
  in
  let pg =
    Arg.(
      value
      & opt (some int) None
      & info [ "pg" ] ~docv:"PG"
          ~doc:"Keep only instruments of this protection group (plus globals).")
  in
  let az =
    Arg.(
      value
      & opt (some string) None
      & info [ "az" ] ~docv:"AZ"
          ~doc:"Keep only instruments of this availability zone, e.g. az1 \
                (plus globals).")
  in
  let series =
    Arg.(
      value & flag
      & info [ "series" ]
          ~doc:
            "Print the sampled time series (throughput rates, commit-latency \
             percentiles, health gauges) as a table.  With $(b,--json) the \
             series is embedded in the snapshot instead.")
  in
  Cmd.v
    (Cmd.info "obs"
       ~doc:
         "Run the smoke workload with commit-path tracing enabled and print \
          the observability snapshot")
    Term.(
      const run_obs $ txns_arg $ pgs_arg $ seed_arg $ json_arg $ trace_tail
      $ pg $ az $ series $ window_arg)

let run_trace_export txns pgs seed window_ms out =
  let cluster, _gen = run_workload ?window_ms ~txns ~pgs ~seed ~tracing:true () in
  let json = Obs.Chrome_export.to_string (Harness.Cluster.obs cluster) in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  let tr = Obs.Ctx.trace (Harness.Cluster.obs cluster) in
  Printf.printf "wrote %s (%d trace events, %d dropped; open in Perfetto or \
                 chrome://tracing)\n"
    out (Obs.Trace.length tr) (Obs.Trace.dropped tr)

let trace_export_cmd =
  let out =
    Arg.(
      value
      & opt string "aurora-trace.json"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "trace-export"
       ~doc:
         "Run the traced smoke workload and write the commit-path timeline \
          plus trace events as Chrome trace-event JSON")
    Term.(
      const run_trace_export $ txns_arg $ pgs_arg $ seed_arg $ window_arg $ out)

let bench_cmd =
  Cmd.v
    (Cmd.info "bench" ~doc:"Run every experiment (same as 'exp all')")
    Term.(const (fun seed -> print_string (E.run_all ~seed ())) $ seed_arg)

(* ---- perf: the BENCH_*.json trajectory ---- *)

let load_report path =
  match Perf.Bench_report.read ~path with
  | Ok r -> r
  | Error e ->
    Printf.eprintf "perf: cannot read %s: %s\n" path e;
    exit 2

let run_perf_list dir =
  let rows = Perf.Trajectory.load ~dir in
  if rows = [] then
    Printf.printf "no BENCH_*.json found under %s (run scripts/bench.sh)\n" dir
  else begin
    let ok, bad =
      List.partition_map
        (fun (file, r) ->
          match r with Ok r -> Left (file, r) | Error e -> Right (file, e))
        rows
    in
    List.iter
      (fun ((file, r) : string * Perf.Bench_report.t) ->
        Printf.printf "%-18s sha=%-10s ocaml=%-8s txns=%d seed=%d\n" file
          r.meta.git_sha r.meta.ocaml_version r.meta.scenario.txns
          r.meta.scenario.seed)
      ok;
    List.iter
      (fun (file, e) -> Printf.printf "%-18s UNREADABLE: %s\n" file e)
      bad;
    let trend = Perf.Trajectory.trend ok in
    if trend <> [] then begin
      Printf.printf "\n-- trend per metric (oldest -> newest) --\n";
      List.iter
        (fun (s : Perf.Trajectory.series) ->
          let values =
            List.map
              (fun (_, v) ->
                if Float.abs v >= 1000. then Printf.sprintf "%.3g" v
                else Printf.sprintf "%.4g" v)
              s.points
          in
          Printf.printf "%-32s %s\n" s.metric (String.concat " -> " values))
        trend
    end;
    if bad <> [] then exit 1
  end

let run_perf_diff old_file new_file threshold =
  let old_report = load_report old_file in
  let new_report = load_report new_file in
  let rows = Perf.Compare.diff ~threshold_pct:threshold ~old_report ~new_report in
  Printf.printf "%-32s %14s %14s %9s  %s\n" "metric"
    (Filename.basename old_file |> fun s -> String.sub s 0 (min 14 (String.length s)))
    (Filename.basename new_file |> fun s -> String.sub s 0 (min 14 (String.length s)))
    "delta" "verdict";
  List.iter
    (fun (r : Perf.Compare.row) ->
      let num = function
        | Some v -> Printf.sprintf "%.6g" v
        | None -> "-"
      in
      let delta =
        match r.delta_pct with
        | Some d -> Printf.sprintf "%+.1f%%" d
        | None -> "-"
      in
      let verdict =
        match r.result with
        | Some v -> Perf.Compare.verdict_to_string v
        | None -> "(missing)"
      in
      Printf.printf "%-32s %14s %14s %9s  %s\n" r.key (num r.old_value)
        (num r.new_value) delta verdict)
    rows;
  let regs = Perf.Compare.regressions rows in
  if regs <> [] then begin
    Printf.printf "\n%d metric(s) regressed beyond %.1f%%\n" (List.length regs)
      threshold;
    exit 1
  end
  else Printf.printf "\nno regressions beyond %.1f%%\n" threshold

let perf_dir_arg =
  Arg.(
    value & opt string "."
    & info [ "dir" ] ~docv:"DIR"
        ~doc:"Directory holding the $(b,BENCH_*.json) trajectory.")

let perf_threshold_arg =
  Arg.(
    value & opt float 10.
    & info [ "threshold" ] ~docv:"PCT"
        ~doc:
          "Relative change (percent) below which a metric counts as noise \
           rather than an improvement or regression.")

let perf_list_cmd =
  Cmd.v
    (Cmd.info "list"
       ~doc:
         "List every BENCH_*.json report and print the per-metric trend \
          across the trajectory")
    Term.(const run_perf_list $ perf_dir_arg)

let perf_diff_cmd =
  let old_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"OLD" ~doc:"Baseline report.")
  in
  let new_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"NEW" ~doc:"Candidate report.")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two BENCH_*.json reports metric-by-metric; exits 1 if any \
          metric regressed beyond the threshold")
    Term.(const run_perf_diff $ old_arg $ new_arg $ perf_threshold_arg)

let perf_cmd =
  let default = Term.(const run_perf_list $ perf_dir_arg) in
  Cmd.group ~default
    (Cmd.info "perf"
       ~doc:
         "Read the BENCH_*.json performance trajectory (written by \
          scripts/bench.sh): list reports, print trends, diff two reports \
          with a regression threshold")
    [ perf_list_cmd; perf_diff_cmd ]

(* ---- vopr: table-driven fault scenarios, seed swarm, repro ---- *)

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | src -> src
  | exception Sys_error e ->
    Printf.eprintf "vopr: cannot read %s: %s\n" path e;
    exit 2

let write_file path contents =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc contents)

let parse_scenario path =
  match Vopr.Scenario.of_string (read_file path) with
  | Ok sc -> sc
  | Error e ->
    Printf.eprintf "vopr: %s: %s\n" path e;
    exit 2

let load_scenario ~name ~file ~nemesis ~seed =
  match (name, file, nemesis) with
  | Some name, None, false -> (
    match Vopr.Curated.find name with
    | Some sc -> sc
    | None ->
      Printf.eprintf "vopr: unknown scenario %S (try 'vopr list')\n" name;
      exit 2)
  | None, Some path, false -> parse_scenario path
  | None, None, true -> Vopr.Swarm.generate ~seed
  | None, None, false ->
    Printf.eprintf "vopr: one of --scenario, --file or --nemesis is required\n";
    exit 2
  | _ ->
    Printf.eprintf "vopr: --scenario, --file and --nemesis are exclusive\n";
    exit 2

let print_violations (o : Vopr.Runner.outcome) =
  List.iter
    (fun (v : Vopr.Checker.violation) ->
      Printf.printf "  VIOLATION [%s] at %s: %s\n" v.checker
        (Simcore.Time_ns.to_string v.at)
        v.detail)
    o.violations;
  if o.total_violations > List.length o.violations then
    Printf.printf "  ... and %d more occurrence(s)\n"
      (o.total_violations - List.length o.violations)

let run_vopr_list () =
  List.iter
    (fun (sc : Vopr.Scenario.t) ->
      Printf.printf "%-32s %d step(s), %d pg(s), %d replica(s)\n" sc.name
        (List.length sc.steps) sc.n_pgs sc.replicas)
    Vopr.Curated.all

let run_vopr_show name =
  match Vopr.Curated.find name with
  | Some sc -> print_string (Vopr.Scenario.to_string sc)
  | None ->
    Printf.eprintf "vopr: unknown scenario %S (try 'vopr list')\n" name;
    exit 2

let run_vopr_run name file nemesis seed =
  let sc = load_scenario ~name ~file ~nemesis ~seed in
  let o = Vopr.Runner.run ~seed sc in
  print_endline (Vopr.Runner.digest o);
  if Vopr.Runner.failed o then begin
    print_violations o;
    exit 1
  end

let run_vopr_repro file seed =
  (* Nothing but the digest on stdout: two repro invocations of the same
     (file, seed) must compare byte-for-byte. *)
  let sc = parse_scenario file in
  let o = Vopr.Runner.run ~seed sc in
  print_endline (Vopr.Runner.digest o);
  if Vopr.Runner.failed o then exit 1

let report_swarm_failures (failures : Vopr.Swarm.failure list) =
  List.iter
    (fun (f : Vopr.Swarm.failure) ->
      let path = Printf.sprintf "vopr-repro-%s-seed%d.scn" f.shrunk.name f.seed in
      write_file path (Vopr.Scenario.to_string f.shrunk);
      Printf.printf
        "FAIL seed=%d scenario=%s: %d violation(s), shrunk %d -> %d step(s)\n"
        f.seed f.scenario.name f.outcome.total_violations
        (List.length f.scenario.steps)
        (List.length f.shrunk.steps);
      print_violations f.outcome;
      Printf.printf "  wrote %s\n  repro: aurora_cli vopr repro --file %s --seed %d\n"
        path path f.seed;
      (* The shrunk run's flight-recorder snapshot rides along with the
         repro, so the failure can be explained without re-running it. *)
      match f.outcome.recorder with
      | None -> ()
      | Some artifact ->
        let rpath =
          Printf.sprintf "vopr-repro-%s-seed%d.recorder.json" f.shrunk.name
            f.seed
        in
        write_file rpath (Recorder.Artifact.to_string artifact);
        Printf.printf
          "  wrote %s (flight recorder; try: aurora_cli explain --artifact %s \
           <lsn>)\n"
          rpath rpath)
    failures

let run_vopr_swarm seeds seed0 nemesis quiet =
  let cfg =
    {
      Vopr.Swarm.seeds;
      first_seed = seed0;
      scenarios = Vopr.Curated.all;
      nemesis;
    }
  in
  let progress ~done_ ~total =
    if (not quiet) && (done_ mod 50 = 0 || done_ = total) then
      Printf.printf "  %d/%d runs\n%!" done_ total
  in
  let r = Vopr.Swarm.run ~progress cfg in
  report_swarm_failures r.failures;
  Printf.printf "swarm: %d run(s) over %d curated scenario(s)%s, %d failure(s)\n"
    r.runs
    (List.length Vopr.Curated.all)
    (if nemesis then " + nemesis schedules" else "")
    (List.length r.failures);
  if r.failures <> [] then exit 1

let run_vopr_smoke () =
  let failures = ref 0 in
  let quick =
    [ "membership-dance"; "writer-crash-recovery"; "az-outage-az-plus-one" ]
  in
  List.iter
    (fun name ->
      match Vopr.Curated.find name with
      | None -> assert false
      | Some sc ->
        let o = Vopr.Runner.run ~seed:1 sc in
        Printf.printf "%-32s %s\n%!" sc.name
          (if Vopr.Runner.failed o then "FAIL" else "ok");
        if Vopr.Runner.failed o then begin
          print_violations o;
          incr failures
        end)
    quick;
  (* Determinism guard: the same (scenario, seed) must produce the same
     digest bytes. *)
  (match Vopr.Curated.find "membership-dance" with
  | None -> assert false
  | Some sc ->
    let d1 = Vopr.Runner.digest (Vopr.Runner.run ~seed:3 sc) in
    let d2 = Vopr.Runner.digest (Vopr.Runner.run ~seed:3 sc) in
    if not (String.equal d1 d2) then begin
      Printf.printf "FAIL: digest not deterministic for membership-dance seed 3\n";
      incr failures
    end);
  let r =
    Vopr.Swarm.run
      {
        Vopr.Swarm.seeds = 25;
        first_seed = 1;
        scenarios = Vopr.Curated.all;
        nemesis = true;
      }
  in
  report_swarm_failures r.failures;
  failures := !failures + List.length r.failures;
  Printf.printf "vopr smoke: %d scenario run(s) + %d swarm run(s), %d failure(s)\n"
    (List.length quick + 2) r.runs !failures;
  if !failures > 0 then exit 1

let vopr_scenario_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "scenario" ] ~docv:"NAME" ~doc:"A curated scenario name.")

let vopr_file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "file" ] ~docv:"FILE" ~doc:"A scenario file (vopr text format).")

let vopr_nemesis_flag =
  Arg.(
    value & flag
    & info [ "nemesis" ]
        ~doc:"Run the generated nemesis schedule for $(b,--seed).")

let vopr_list_cmd =
  Cmd.v
    (Cmd.info "list" ~doc:"List the curated scenarios")
    Term.(const run_vopr_list $ const ())

let vopr_show_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:"Curated scenario name.")
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print a curated scenario in the text format")
    Term.(const run_vopr_show $ name_arg)

let vopr_run_cmd =
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run one scenario at one seed under the full checker set; exits 1 \
          on any violation")
    Term.(
      const run_vopr_run $ vopr_scenario_arg $ vopr_file_arg
      $ vopr_nemesis_flag $ seed_arg)

let vopr_repro_cmd =
  let file_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "file" ] ~docv:"FILE" ~doc:"Scenario file to replay.")
  in
  Cmd.v
    (Cmd.info "repro"
       ~doc:
         "Replay a (scenario file, seed) pair and print only the outcome \
          digest — byte-identical across replays")
    Term.(const run_vopr_repro $ file_arg $ seed_arg)

let vopr_swarm_cmd =
  let seeds_arg =
    Arg.(
      value & opt int 100
      & info [ "seeds" ] ~docv:"N" ~doc:"Number of seeds to sweep.")
  in
  let seed0_arg =
    Arg.(
      value & opt int 1
      & info [ "seed0" ] ~docv:"SEED" ~doc:"First seed of the sweep.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"No progress output.")
  in
  Cmd.v
    (Cmd.info "swarm"
       ~doc:
         "Sweep the curated scenarios (and, with $(b,--nemesis), generated \
          schedules) across seeds; failures are shrunk to a minimal step \
          list and written as repro files")
    Term.(
      const run_vopr_swarm $ seeds_arg $ seed0_arg $ vopr_nemesis_flag
      $ quiet_arg)

let vopr_smoke_cmd =
  Cmd.v
    (Cmd.info "smoke"
       ~doc:
         "Quick gate: three curated scenarios, a digest-determinism check, \
          and a 25-seed mini-swarm with nemesis schedules")
    Term.(const run_vopr_smoke $ const ())

let vopr_cmd =
  let default = Term.(const run_vopr_list $ const ()) in
  Cmd.group ~default
    (Cmd.info "vopr"
       ~doc:
         "Table-driven fault scenarios with semantic invariant checkers: \
          run curated tables, sweep seeds, shrink and replay failures \
          (DESIGN.md \xc2\xa77)")
    [
      vopr_list_cmd;
      vopr_show_cmd;
      vopr_run_cmd;
      vopr_repro_cmd;
      vopr_swarm_cmd;
      vopr_smoke_cmd;
    ]

(* ---- flight recorder: explain / dump / grep / smoke ---- *)

module Artifact = Recorder.Artifact
module Correlate = Recorder.Correlate
module Event = Recorder.Event

(* Artifact source shared by explain/dump/grep: a .recorder.json written by
   a failed swarm run, or a live deterministic re-run of a scenario with
   [record_always] so clean runs are explainable too. *)
let load_artifact ~artifact ~name ~file ~nemesis ~seed =
  match artifact with
  | Some path -> (
    match Artifact.of_string (read_file path) with
    | Ok a -> a
    | Error e ->
      Printf.eprintf "recorder: %s: %s\n" path e;
      exit 2)
  | None -> (
    let sc = load_scenario ~name ~file ~nemesis ~seed in
    let o = Vopr.Runner.run ~seed ~record_always:true sc in
    match o.recorder with
    | Some a -> a
    | None ->
      Printf.eprintf "recorder: run produced no artifact\n";
      exit 2)

let parse_target s =
  let num what v =
    match int_of_string_opt v with
    | Some n -> n
    | None ->
      Printf.eprintf "explain: %s: expected an integer, got %S\n" what v;
      exit 2
  in
  match String.index_opt s ':' with
  | None -> Artifact.Lsn (num "lsn" s)
  | Some i -> (
    let tag = String.sub s 0 i
    and v = String.sub s (i + 1) (String.length s - i - 1) in
    match tag with
    | "lsn" -> Artifact.Lsn (num "lsn" v)
    | "txn" -> Artifact.Txn (num "txn" v)
    | "pg" -> Artifact.Pg (num "pg" v)
    | t ->
      Printf.eprintf "explain: unknown target kind %S (lsn:, txn: or pg:)\n" t;
      exit 2)

let run_explain target artifact name file nemesis seed json =
  let a = load_artifact ~artifact ~name ~file ~nemesis ~seed in
  let target = parse_target target in
  if json then
    print_endline (Obs.Json.to_string ~pretty:true (Artifact.explain_json a target))
  else print_string (Artifact.explain a target)

let artifact_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "artifact" ] ~docv:"FILE"
        ~doc:
          "A $(b,.recorder.json) repro artifact (as written by a failed \
           swarm run).  Without it, the scenario selected by \
           $(b,--scenario)/$(b,--file)/$(b,--nemesis) is re-run at \
           $(b,--seed) with the recorder armed.")

let target_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"TARGET"
        ~doc:
          "What to explain: an LSN ($(b,400) or $(b,lsn:400)), a \
           transaction ($(b,txn:17)), or a protection group ($(b,pg:0)).")

let explain_cmd =
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Reconstruct the causal cross-node timeline of an LSN, txn, or \
          protection group from flight-recorder rings: sends, receives, \
          drops with their cause, SCL/VCL/VDL advances, and commit events, \
          merged across nodes in sim-time order")
    Term.(
      const run_explain $ target_arg $ artifact_arg $ vopr_scenario_arg
      $ vopr_file_arg $ vopr_nemesis_flag $ seed_arg $ json_arg)

let run_recorder_dump artifact name file nemesis seed =
  let a = load_artifact ~artifact ~name ~file ~nemesis ~seed in
  print_string (Artifact.to_string a)

let run_recorder_grep pattern artifact name file nemesis seed =
  let a = load_artifact ~artifact ~name ~file ~nemesis ~seed in
  let contains line =
    let nh = String.length line and nn = String.length pattern in
    let rec go i =
      i + nn <= nh && (String.sub line i nn = pattern || go (i + 1))
    in
    nn = 0 || go 0
  in
  List.iter
    (fun e ->
      let line = Correlate.render_text [ e ] in
      if contains line then print_endline line)
    (Correlate.entries a.Artifact.snapshot)

(* The recorder gate behind @recorder-smoke: force a curated scenario to
   fail, shrink it, and check the repro artifact end-to-end — rings
   captured, explain byte-deterministic, and the timeline of a committed
   LSN covering send -> ack -> VCL advance -> commit ack. *)
let run_recorder_smoke () =
  let failures = ref 0 in
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        Printf.printf "FAIL: %s\n" m;
        incr failures)
      fmt
  in
  let base =
    match Vopr.Curated.find "writer-crash-recovery" with
    | Some sc -> sc
    | None -> assert false
  in
  (* An epoch floor no run can reach: deterministic "expectation" failure
     without disturbing the scenario's fault schedule. *)
  let poisoned =
    {
      base with
      Vopr.Scenario.steps =
        base.Vopr.Scenario.steps
        @ [
            Vopr.Scenario.step
              (Vopr.Scenario.at_ms base.Vopr.Scenario.duration_ms)
              Vopr.Scenario.Noop
              ~expect:[ Vopr.Scenario.Epoch_at_least (0, 999) ];
          ];
    }
  in
  (match Vopr.Shrink.minimize ~run:(fun sc -> Vopr.Runner.run ~seed:1 sc) poisoned with
  | None -> fail "poisoned writer-crash-recovery did not fail"
  | Some (shrunk, out) -> (
    match out.Vopr.Runner.recorder with
    | None -> fail "shrunk failing outcome carries no recorder artifact"
    | Some artifact ->
      let rings = artifact.Artifact.snapshot.Recorder.Rings.nodes in
      let events =
        List.fold_left
          (fun acc (r : Recorder.Rings.node_ring) ->
            acc + List.length r.Recorder.Rings.events)
          0 rings
      in
      if rings = [] || events = 0 then
        fail "repro artifact has empty recorder rings";
      if artifact.Artifact.net = None then
        fail "repro artifact has no net counters";
      (* Explain a committed LSN from two independent replays of the shrunk
         table: byte-identical output, full write-path coverage. *)
      let o1 = Vopr.Runner.run ~seed:1 ~record_always:true shrunk in
      let o2 = Vopr.Runner.run ~seed:1 ~record_always:true shrunk in
      (match (o1.Vopr.Runner.recorder, o2.Vopr.Runner.recorder) with
      | Some a1, Some a2 -> (
        (* The newest commit in the ring: the bounded rings may have
           evicted the write path of early commits, but the latest one's
           send/ack/advance events are all inside the retained window. *)
        let commit_scn =
          List.fold_left
            (fun acc (e : Correlate.entry) ->
              match e.Correlate.event with
              | Event.Commit_ack { scn; _ } -> Some scn
              | _ -> acc)
            None
            (Correlate.entries a1.Artifact.snapshot)
        in
        match commit_scn with
        | None -> fail "no commit ack recorded in the shrunk run"
        | Some lsn ->
          let t = Artifact.Lsn lsn in
          let x1 = Artifact.explain a1 t and x2 = Artifact.explain a2 t in
          if not (String.equal x1 x2) then
            fail "explain lsn:%d not byte-deterministic across replays" lsn;
          let timeline = Artifact.timeline a1 t in
          let has p = List.exists (fun (e : Correlate.entry) -> p e.Correlate.event) timeline in
          if not (has (function Event.Send { kind = Event.Write_batch; _ } -> true | _ -> false))
          then fail "lsn:%d timeline misses the Write_batch send" lsn;
          if
            not
              (has (function
                | Event.Send { kind = Event.Write_ack; _ }
                | Event.Receive { kind = Event.Write_ack; _ } -> true
                | _ -> false))
          then fail "lsn:%d timeline misses the write ack" lsn;
          if not (has (function Event.Vcl_advance _ -> true | _ -> false)) then
            fail "lsn:%d timeline misses the VCL advance" lsn;
          if not (has (function Event.Commit_ack _ -> true | _ -> false)) then
            fail "lsn:%d timeline misses the commit ack" lsn;
          Printf.printf
            "explain lsn:%d: %d timeline event(s), byte-stable across \
             replays\n"
            lsn (List.length timeline))
      | _ -> fail "record_always replay produced no artifact")));
  (* A clean curated run must also produce a usable live artifact. *)
  (match Vopr.Curated.find "membership-dance" with
  | None -> assert false
  | Some sc ->
    let o = Vopr.Runner.run ~seed:1 ~record_always:true sc in
    if Vopr.Runner.failed o then fail "membership-dance failed under recorder";
    (match o.Vopr.Runner.recorder with
    | None -> fail "clean run with record_always has no artifact"
    | Some a -> (
      match Artifact.of_string (Artifact.to_string a) with
      | Ok a' ->
        if not (String.equal (Artifact.to_string a') (Artifact.to_string a))
        then fail "artifact JSON does not round-trip byte-stably"
      | Error e -> fail "artifact JSON round-trip: %s" e)));
  Printf.printf "recorder smoke: %d failure(s)\n" !failures;
  if !failures > 0 then exit 1

let recorder_dump_cmd =
  Cmd.v
    (Cmd.info "dump"
       ~doc:
         "Print the full flight-recorder artifact (per-node rings + net \
          drop-cause and per-link counters) as byte-stable JSON")
    Term.(
      const run_recorder_dump $ artifact_arg $ vopr_scenario_arg
      $ vopr_file_arg $ vopr_nemesis_flag $ seed_arg)

let recorder_grep_cmd =
  let pattern_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"PATTERN"
          ~doc:"Substring to match against rendered timeline lines.")
  in
  Cmd.v
    (Cmd.info "grep"
       ~doc:
         "Print every recorded event whose rendered line contains PATTERN, \
          merged across nodes in causal order")
    Term.(
      const run_recorder_grep $ pattern_arg $ artifact_arg $ vopr_scenario_arg
      $ vopr_file_arg $ vopr_nemesis_flag $ seed_arg)

let recorder_smoke_cmd =
  Cmd.v
    (Cmd.info "smoke"
       ~doc:
         "Recorder gate: force a curated scenario to fail, shrink it, and \
          verify the repro artifact carries rings whose explain output is \
          byte-deterministic and covers send -> ack -> VCL advance -> \
          commit ack")
    Term.(const run_recorder_smoke $ const ())

let recorder_cmd =
  Cmd.group
    (Cmd.info "recorder"
       ~doc:
         "Flight-recorder artifacts: dump rings, grep events, run the \
          recorder smoke gate (see DESIGN.md \xc2\xa78)")
    [ recorder_dump_cmd; recorder_grep_cmd; recorder_smoke_cmd ]

let default =
  Term.(ret (const (fun () -> `Help (`Pager, None)) $ const ()))

let () =
  let info =
    Cmd.info "aurora-cli" ~version:"1.0.0"
      ~doc:
        "Reproduction of 'Amazon Aurora: On Avoiding Distributed Consensus \
         for I/Os, Commits, and Membership Changes' (SIGMOD'18)"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            exp_cmd;
            smoke_cmd;
            obs_cmd;
            trace_export_cmd;
            bench_cmd;
            perf_cmd;
            vopr_cmd;
            explain_cmd;
            recorder_cmd;
          ]))
