open Simcore
open Wal
module Database = Aurora_core.Database

type profile = {
  ops_per_txn : int;
  write_fraction : float;
  key_count : int;
  zipf_theta : float;
  value_size : int;
  mtr_fraction : float;
}

let default_profile =
  {
    ops_per_txn = 4;
    write_fraction = 0.5;
    key_count = 10_000;
    zipf_theta = 0.9;
    value_size = 64;
    mtr_fraction = 0.1;
  }

type acked = {
  acked_txn : Txn_id.t;
  keys_written : (string * string) list;
  acked_at : Time_ns.t;
}

type t = {
  sim : Sim.t;
  rng : Rng.t;
  db : Database.t;
  profile : profile;
  zipf : Zipf.t;
  commit_latency : Histogram.t;
  read_latency : Histogram.t;
  mutable issued : int;
  mutable acked : int;
  mutable failed : int;
  mutable acked_writes : acked list;
  (* Issue-stamp keyed, NOT Txn_id keyed: a recovered writer re-derives its
     transaction floor from storage, so the id of a transaction that
     vanished entirely in a crash (nothing durable) can be reused by a
     post-recovery transaction.  Keying the audit trail by Txn_id would
     then retroactively mark the dead pre-crash write as acknowledged and
     the durability oracle would demand a value that was legitimately
     lost. *)
  mutable unacked : (int * (string * string) list) list;
  mutable writes_log : (string * string * int) list; (* newest first *)
  acked_issues : (int, unit) Hashtbl.t;
  mutable next_issue : int;
  mutable value_counter : int;
}

let create ~sim ~rng ~db ~profile () =
  {
    sim;
    rng;
    db;
    profile;
    zipf = Zipf.create ~n:profile.key_count ~theta:profile.zipf_theta;
    commit_latency = Histogram.create ();
    read_latency = Histogram.create ();
    issued = 0;
    acked = 0;
    failed = 0;
    acked_writes = [];
    unacked = [];
    writes_log = [];
    acked_issues = Hashtbl.create 256;
    next_issue = 0;
    value_counter = 0;
  }

let key_of t idx = Printf.sprintf "key-%06d" (idx mod t.profile.key_count)

let fresh_value t =
  t.value_counter <- t.value_counter + 1;
  let tag = Printf.sprintf "v%09d-" t.value_counter in
  let pad = max 0 (t.profile.value_size - String.length tag) in
  tag ^ String.make pad 'x'

let issue_one t ~on_done =
  t.issued <- t.issued + 1;
  let issue = t.next_issue in
  t.next_issue <- t.next_issue + 1;
  match Database.begin_txn t.db with
  | exception Failure msg ->
    t.failed <- t.failed + 1;
    on_done (Error msg)
  | txn ->
    let n = t.profile.ops_per_txn in
    let writes = ref [] in
    let reads_pending = ref 0 in
    let committed = ref false in
    let try_commit () =
      if (not !committed) && !reads_pending = 0 then begin
        committed := true;
        let keys_written = !writes in
        if keys_written <> [] then t.unacked <- (issue, keys_written) :: t.unacked;
        Database.commit t.db ~txn (fun result ->
            match result with
            | Ok () ->
              t.acked <- t.acked + 1;
              Hashtbl.replace t.acked_issues issue ();
              if keys_written <> [] then begin
                t.unacked <-
                  List.filter (fun (x, _) -> x <> issue) t.unacked;
                t.acked_writes <-
                  { acked_txn = txn; keys_written; acked_at = Sim.now t.sim }
                  :: t.acked_writes
              end;
              on_done (Ok ())
            | Error e ->
              t.failed <- t.failed + 1;
              on_done (Error e))
      end
    in
    let n_writes =
      int_of_float (Float.round (t.profile.write_fraction *. float_of_int n))
    in
    let as_mtr =
      n_writes > 1 && Rng.bernoulli t.rng t.profile.mtr_fraction
    in
    (* Writes first (buffered, synchronous at the engine), then reads. *)
    if as_mtr then begin
      let kvs =
        List.init n_writes (fun _ ->
            (key_of t (Zipf.sample t.zipf t.rng), fresh_value t))
      in
      Database.put_multi t.db ~txn kvs;
      List.iter (fun (k, v) -> t.writes_log <- (k, v, issue) :: t.writes_log) kvs;
      writes := kvs @ !writes
    end
    else
      for _ = 1 to n_writes do
        let key = key_of t (Zipf.sample t.zipf t.rng) in
        let value = fresh_value t in
        Database.put t.db ~txn ~key ~value;
        t.writes_log <- (key, value, issue) :: t.writes_log;
        writes := (key, value) :: !writes
      done;
    for _ = 1 to n - n_writes do
      incr reads_pending;
      let key = key_of t (Zipf.sample t.zipf t.rng) in
      let started = Sim.now t.sim in
      Database.get t.db ~txn ~key (fun _ ->
          Histogram.record_span t.read_latency started (Sim.now t.sim);
          decr reads_pending;
          try_commit ())
    done;
    try_commit ()

let timed_issue t ~on_done =
  let started = Sim.now t.sim in
  issue_one t ~on_done:(fun result ->
      (match result with
      | Ok () -> Histogram.record_span t.commit_latency started (Sim.now t.sim)
      | Error _ -> ());
      on_done result)

let run_open_loop t ~rate_per_sec ~duration =
  if rate_per_sec <= 0. then invalid_arg "Txn_gen.run_open_loop: rate";
  let mean_gap_ns = 1e9 /. rate_per_sec in
  let stop_at = Time_ns.add (Sim.now t.sim) duration in
  let rec arrive () =
    if Time_ns.compare (Sim.now t.sim) stop_at < 0 then begin
      timed_issue t ~on_done:(fun _ -> ());
      let gap = Time_ns.ns (int_of_float (Rng.exponential t.rng ~mean:mean_gap_ns)) in
      ignore (Sim.schedule t.sim ~delay:gap arrive)
    end
  in
  ignore (Sim.schedule t.sim ~delay:Time_ns.zero arrive)

let run_closed_loop t ~clients ~think_time ~duration =
  if clients <= 0 then invalid_arg "Txn_gen.run_closed_loop: clients";
  let stop_at = Time_ns.add (Sim.now t.sim) duration in
  let rec client_loop () =
    if Time_ns.compare (Sim.now t.sim) stop_at < 0 then
      timed_issue t ~on_done:(fun _ ->
          let think = Distribution.sample think_time t.rng in
          ignore (Sim.schedule t.sim ~delay:think client_loop))
  in
  for _ = 1 to clients do
    ignore (Sim.schedule t.sim ~delay:Time_ns.zero client_loop)
  done

let commit_latency t = t.commit_latency
let read_latency t = t.read_latency
let issued t = t.issued
let acked t = t.acked
let failed t = t.failed
let acked_writes t = List.rev t.acked_writes

let unacked_writes t = List.concat_map snd t.unacked

let writes_in_issue_order t =
  List.rev_map
    (fun (k, v, issue) -> (k, v, Hashtbl.mem t.acked_issues issue))
    t.writes_log
