(** Cluster assembly: one writer instance, protection groups of storage
    nodes spread across three AZs, optional read replicas, all on one
    simulated network with AZ-aware latency.

    This is the integration layer every experiment and end-to-end test
    builds on: it wires member ids to network addresses, seeds the
    deterministic RNG tree, and exposes fault-injection and
    membership-change orchestration (create replacement node, start
    hydration, commit or revert the change — the full Figure 5 flow). *)

open Quorum

type layout = V6 | Tiered | V3
(** Protection-group design: Aurora's 6-copy (4/6 write, 3/6 read), the
    §4.2 full/tail mix, or the Figure 1 2/3 strawman. *)

type config = {
  seed : int;
  n_pgs : int;
  layout : layout;
  db_config : Aurora_core.Database.config;
  storage_config : Storage.Storage_node.config;
  intra_az_latency : Simcore.Distribution.t;
  inter_az_latency : Simcore.Distribution.t;
  obs_sample_period : Simcore.Time_ns.t;
      (** Period of the observability sampler the cluster installs on the
          sim clock: each tick computes a cluster-health sample (feeding
          {!Obs.Health}, including quorum-loss edge events) and records one
          point per tracked {!Obs.Series} channel. *)
}

val default_config : config
(** seed 42, 2 PGs, V6 layout, lognormal link latencies (~250us intra-AZ,
    ~1ms inter-AZ medians), 50 ms sampling. *)

type t

val create : config -> t
(** Build and start everything; the writer is open for transactions. *)

val sim : t -> Simcore.Sim.t
val net : t -> Storage.Protocol.t Simnet.Net.t
val db : t -> Aurora_core.Database.t
val s3 : t -> Storage.S3.t
val config : t -> config
val rng : t -> Simcore.Rng.t

val obs : t -> Obs.Ctx.t
(** The cluster-wide observability context: one registry + trace shared by
    the network, the writer, every storage node, and every replica.  The
    cluster also drives the context's series sampler and health monitor
    (period [obs_sample_period]) and registers volume-level health gauges:
    [health_write_available], [health_min_write_margin],
    [health_az_plus_one], [health_vdl_vcl_gap], [health_commit_queue_depth],
    [health_max_replica_lag]. *)

val health_sample : t -> at:Simcore.Time_ns.t -> Obs.Health.sample
(** Compute one cluster-health sample now (quorum margins by exhaustive
    subset enumeration over each group's current rule, AZ+1 tolerance,
    ack-current segment counts, volume-level gaps).  The installed sampler
    calls this every [obs_sample_period]; exposed for tests and ad-hoc
    probes. *)

val last_health : t -> Obs.Health.sample option
(** Latest sample taken by the installed sampler. *)

val storage_nodes : t -> Storage.Storage_node.t list
val node_of_member :
  t -> Storage.Pg_id.t -> Member_id.t -> Storage.Storage_node.t option
val members_of_pg : t -> Storage.Pg_id.t -> Membership.member list
val az_of_addr : t -> Simnet.Addr.t -> Az.t option

val add_replica : t -> Aurora_core.Replica.t
(** Create, start and attach a read replica (placed in a non-writer AZ). *)

val replicas : t -> Aurora_core.Replica.t list

(* ---- fault injection ---- *)

val crash_storage_node : t -> Storage.Pg_id.t -> Member_id.t -> unit
(** Process crash with disks intact. *)

val restart_storage_node : t -> Storage.Pg_id.t -> Member_id.t -> unit

val destroy_storage_node : t -> Storage.Pg_id.t -> Member_id.t -> unit
(** Permanent loss of the node and its segment data. *)

val fail_az : t -> Az.t -> unit
(** Take down every storage node in an AZ (correlated failure, Figure 1). *)

val restore_az : t -> Az.t -> unit

val slow_storage_node : t -> Storage.Pg_id.t -> Member_id.t -> float -> unit
(** Multiply the node's network latency (busy / degraded node, §3.1). *)

val partition : t -> Simnet.Addr.t list -> Simnet.Addr.t list -> unit
(** Sever every link between the two address sets (both directions).  All
    processes stay alive — the one nemesis node up/down faults cannot
    model.  Drops on severed links count in
    {!Simnet.Net.stats.dropped_partition}. *)

val heal : t -> Simnet.Addr.t list -> Simnet.Addr.t list -> unit

val partition_az : t -> Az.t -> unit
(** Isolate every process in an AZ (storage nodes, plus the writer or any
    replica placed there) from the rest of the cluster. *)

val heal_az : t -> Az.t -> unit

(* ---- membership-change orchestration (Figure 5) ---- *)

val start_replacement :
  t -> Storage.Pg_id.t -> suspect:Member_id.t -> (Member_id.t, string) result
(** Provision a fresh storage node in the suspect's AZ with an empty
    segment of the suspect's kind, run the first epoch increment (dual
    quorums), push the roster, and kick off hydration from a healthy peer.
    Returns the replacement's member id. *)

val finish_replacement :
  t -> Storage.Pg_id.t -> suspect:Member_id.t -> (unit, string) result
(** Second epoch increment onto the new member set. *)

val revert_replacement :
  t -> Storage.Pg_id.t -> suspect:Member_id.t -> (unit, string) result
(** Second epoch increment back onto the original member set (the suspect
    returned); the replacement node is discarded. *)

val replacement_caught_up : t -> Storage.Pg_id.t -> replacement:Member_id.t -> bool
(** Has the hydrating segment's SCL reached the suspect-group's durable
    point? (The harness's stand-in for the repair monitor.) *)

val grow_volume : t -> Storage.Pg_id.t
(** Append a protection group (§4.1 volume-geometry change): provision six
    fresh storage nodes in the configured layout, create their segments,
    register the group with the writer's volume and consistency tracker,
    and push the roster.  New blocks immediately stripe onto it. *)

val change_scheme_3_of_4 :
  t -> Storage.Pg_id.t -> drop_az:Quorum.Az.t -> (unit, string) result
(** §4.1's extended-AZ-loss response: re-form a group on its four members
    outside [drop_az] under a 3/4 write / 2/4 read scheme (one membership
    epoch increment), so writes regain fault tolerance while the AZ is
    gone.  Only legal from a steady group. *)

(* ---- convenience ---- *)

val run_for : t -> Simcore.Time_ns.t -> unit
val run_until_quiesced : t -> unit
