(** Fixed-width table rendering for experiment output. *)

type t

val create : title:string -> columns:string list -> t
val row : t -> string list -> unit
val note : t -> string -> unit
(** Free-form line appended under the table. *)

val add_subtable : t -> t -> unit
(** Attach a secondary table rendered after the notes (e.g. a per-stage
    latency breakdown under a protocol-comparison table). *)

val to_string : t -> string
val print : t -> unit

val f2 : float -> string
(** Two-decimal float. *)

val f4 : float -> string
val pct : float -> string
(** Fraction rendered as a percentage. *)

val ns : float -> string
(** Nanosecond quantity with adaptive unit. *)

val time : Simcore.Time_ns.t -> string
