(** Experiment drivers E1–E10: one per figure / quantitative claim of the
    paper (see DESIGN.md §4 for the index and EXPERIMENTS.md for recorded
    outcomes).  Each driver returns a typed result — asserted on by the
    integration tests — plus a printable table in the paper's shape. *)

open Quorum

val audit_durability :
  sim:Simcore.Sim.t ->
  get:
    (key:string ->
    ((string option, string) result -> unit) ->
    unit) ->
  gen:Workload.Txn_gen.t ->
  int * int
(** Shared durability oracle, [(keys_checked, keys_lost)]: for every key the
    visible value must be its last {e acknowledged} write in LSN order, or
    any in-doubt write issued after it.  Runs the sim up to 10 s to drain
    the issued reads. *)

(** E1 — Figure 1: quorum availability under independent segment failures
    and correlated AZ outages, for the 2/3 strawman, Aurora's 4/6, and the
    tiered §4.2 design. *)
module E1 : sig
  type scheme_result = {
    name : string;
    mc : Availability.Fleet_model.result;
    an : Availability.Fleet_model.analytic;
    tol : Availability.Fleet_model.az_tolerance;
    az_write_loss : float;
        (** P(write-quorum loss | AZ outage), analytic (Figure 1's point). *)
    az_read_loss : float;
  }

  type t = scheme_result list

  val harsh_params : Availability.Fleet_model.params
  (** Degraded-fleet rates used by default so rare events register. *)

  val run : ?params:Availability.Fleet_model.params -> ?seed:int -> unit -> t
  val report : t -> Report.t
end

(** E2 — Figure 2: the storage-node pipeline under a lossy network; gossip
    repairs every hole and all background stages make progress. *)
module E2 : sig
  type t = {
    records_written : int;
    acks_processed : int;
    drop_probability : float;
    gossip_filled : int;
    final_scl_lag : int;  (** max SCL gap across segments after settle. *)
    coalesced_versions : int;
    backups : int;
    hot_log_gced : int;
    scrub_found : int;  (** Injected corruptions detected and repaired. *)
    corruptions_injected : int;
  }

  val run : ?seed:int -> ?txns:int -> ?drop:float -> unit -> t
  val report : t -> Report.t
end

(** E3 — Figure 3: SCL -> PGCL -> VCL bookkeeping; reproduces the figure's
    exact scenario (records 101–108 alternating between two groups). *)
module E3 : sig
  type t = {
    pg1_pgcl : int;
    pg2_pgcl : int;
    vcl : int;
    expected : int * int * int;  (** (103, 104, 104) from the figure. *)
  }

  val run : unit -> t
  val report : t -> Report.t
end

(** E4 — Figure 4 & §2.4: crash-recovery time vs redo backlog — Aurora
    (read-quorum SCL poll + truncation, no replay) against the ARIES
    replay model. *)
module E4 : sig
  type point = {
    txns_since_checkpoint : int;
    log_bytes : int;
    aurora_recovery : Simcore.Time_ns.t;
    aurora_vcl : int;
    acked_commits : int;
    lost_acked_commits : int;  (** Must be 0. *)
    aries_recovery : Simcore.Time_ns.t;
  }

  type t = point list

  val run : ?seed:int -> ?sweep:int list -> unit -> t
  val report : t -> Report.t
end

(** E5 — Figure 5: segment replacement via epochs + quorum sets under
    write load; I/O never blocks, the change is reversible, epochs step
    1 -> 2 -> 3. *)
module E5 : sig
  type t = {
    epochs_seen : int list;  (** Membership epochs in order. *)
    commits_during_change : int;
    max_commit_gap : Simcore.Time_ns.t;
        (** Longest ack silence while the change was in flight. *)
    baseline_stall : Simcore.Time_ns.t;
        (** A stop-the-world change would stall commits for the whole
            hydration. *)
    hydration_time : Simcore.Time_ns.t;
    replacement_caught_up : bool;
    revert_worked : bool;  (** Second run exercising the revert path. *)
    lost_acked_commits : int;
    availability_window : Simcore.Time_ns.t;  (** Timeline bucket width. *)
    availability : (Simcore.Time_ns.t * bool * bool) list;
        (** Per window: (offset from change start, Aurora write-available,
            blocking-baseline write-available).  The baseline is the same
            ack stream zeroed for the hydration interval — what a
            stop-the-world membership change would look like. *)
    aurora_window_fraction : float;
    baseline_window_fraction : float;
    online_write_available : float;
        (** {!Obs.Health.write_available_fraction} over the whole run. *)
  }

  val run : ?seed:int -> unit -> t
  val report : t -> Report.t
end

(** E6 — §1/§2.3: commit cost — Aurora quorum-ack vs 2PC vs Paxos commit
    at matched network/disk parameters. *)
module E6 : sig
  type proto_result = {
    proto : string;
    commits : int;
    p50 : float;
    p99 : float;
    p999 : float;
    messages_per_commit : float;
  }

  type t = {
    protos : proto_result list;
    stages : (string * Simcore.Histogram.t) list;
        (** Aurora's per-stage commit-path latencies ([commit_stage_ns]
            histograms harvested from the cluster's observability
            registry), keyed by ["a→b"] stage-pair label. *)
  }

  val run : ?seed:int -> ?commits:int -> unit -> t

  val report : t -> Report.t
  (** Protocol comparison plus a per-stage latency breakdown subtable. *)
end

(** E7 — §2.2: boxcar policies — submit-on-first-record vs timeout boxcar
    vs no batching, across offered load. *)
module E7 : sig
  type point = {
    policy : string;
    rate_per_sec : float;
    p50 : float;
    p99 : float;
    jitter : float;  (** p99 - p50. *)
    mean_batch : float;
  }

  type t = point list

  val run : ?seed:int -> ?rates:float list -> unit -> t
  val report : t -> Report.t
end

(** E8 — §3.1: read strategies — tracked direct read (with and without
    hedging) vs quorum read, with a healthy fleet and with one slow
    segment. *)
module E8 : sig
  type point = {
    strategy : string;
    slow_segment : bool;
    reads : int;
    ios_per_read : float;
    p50 : float;
    p99 : float;
  }

  type t = point list

  val run : ?seed:int -> ?reads:int -> unit -> t
  val report : t -> Report.t
end

(** E9 — §3.2–3.4: replicas — stream lag, shared-storage reads, and
    promotion with zero acknowledged-commit loss. *)
module E9 : sig
  type t = {
    lag_p50 : float;
    lag_p99 : float;
    records_applied : int;
    records_skipped : int;
    replica_reads_ok : int;
    replica_reads_wrong : int;
    promoted : bool;
    acked_commits : int;
    lost_after_promotion : int;  (** Must be 0. *)
    lag_timeline : (Simcore.Time_ns.t * float) list;
        (** Per sampler window: (sim time, p99 stream lag ns), from the
            cluster's {!Obs.Series}; empty windows omitted. *)
    lag_timeline_max : float;
  }

  val run : ?seed:int -> unit -> t
  val report : t -> Report.t
end

(** E10 — §4.2: tiered (3 full + 3 tail) vs 6 full segments — storage
    bytes, write/read availability, and repair traffic. *)
module E10 : sig
  type design_result = {
    design : string;
    storage_bytes : int;
    bytes_ratio_vs_v6 : float;
    write_unavail : float;
    read_unavail : float;
    az1_write_survival : float;
  }

  type t = design_result list

  val run : ?seed:int -> ?txns:int -> unit -> t
  val report : t -> Report.t
end

(** Ablation sweeps for the design choices DESIGN.md calls out. *)
module Ablations : sig
  type hedge_point = {
    hedge : Simcore.Time_ns.t option;
    ios_per_read : float;
    p99 : float;
  }

  val hedge_sweep : ?seed:int -> ?reads:int -> unit -> hedge_point list
  val hedge_report : hedge_point list -> Report.t

  type gossip_point = {
    interval : Simcore.Time_ns.t;
    repair_time : Simcore.Time_ns.t option;
        (** Gossip-only heal time; [None] = gossip lost the race against
            hot-log GC. *)
    hydration_healed : bool;
        (** The bulk-repair fallback closed the hole when gossip could not. *)
  }

  val gossip_sweep : ?seed:int -> unit -> gossip_point list
  val gossip_report : gossip_point list -> Report.t
end

val run_all : ?seed:int -> unit -> string
(** Run every experiment and concatenate the reports (the bench harness's
    main output). *)

val scheme_rule : Cluster.layout -> Membership.member list * Quorum_set.Rule.t
(** The member roster and quorum rule a layout denotes (shared by E1/E10). *)
