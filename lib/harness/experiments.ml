open Simcore
open Quorum
module Database = Aurora_core.Database
module Replica = Aurora_core.Replica
module Consistency = Aurora_core.Consistency
module Reader = Aurora_core.Reader
module Boxcar = Aurora_core.Boxcar
module Lsn = Wal.Lsn
module Pg_id = Storage.Pg_id

let scheme_rule = function
  | Cluster.V6 ->
    let members = Layout.aurora_v6 () in
    (members, Membership.rule (Membership.create ~scheme:Layout.scheme_4_of_6 members))
  | Cluster.Tiered ->
    let members = Layout.aurora_tiered () in
    (members, Membership.rule (Membership.create ~scheme:Layout.scheme_tiered members))
  | Cluster.V3 ->
    let members = Layout.three_copies () in
    (members, Membership.rule (Membership.create ~scheme:Layout.scheme_2_of_3 members))

(* Shared durability audit.  For every key, the visible value must be its
   last *acknowledged* write in LSN order, or any in-doubt write issued
   after it (a commit whose ack was lost in a crash may legitimately have
   survived).  MVCC orders versions by LSN, so the oracle must too — ack
   order is not write order under concurrent clients. *)
let audit_durability ~sim ~get ~gen =
  let writes = Workload.Txn_gen.writes_in_issue_order gen in
  let valid = Hashtbl.create 256 in
  List.iter
    (fun (key, value, acked) ->
      if acked then Hashtbl.replace valid key [ value ]
      else
        match Hashtbl.find_opt valid key with
        | Some vs -> Hashtbl.replace valid key (value :: vs)
        | None -> ())
    writes;
  let lost = ref 0 and checked = ref 0 in
  Hashtbl.iter
    (fun key valid_values ->
      incr checked;
      get ~key (fun result ->
          let ok =
            match result with
            | Ok (Some v) -> List.exists (String.equal v) valid_values
            | Ok None | Error _ -> false
          in
          if not ok then incr lost))
    valid;
  Sim.run_until sim (Time_ns.add (Sim.now sim) (Time_ns.sec 10));
  (!checked, !lost)

(* ------------------------------------------------------------------ *)
(* E1: Figure 1 — availability of quorum schemes                       *)
(* ------------------------------------------------------------------ *)

module E1 = struct
  type scheme_result = {
    name : string;
    mc : Availability.Fleet_model.result;
    an : Availability.Fleet_model.analytic;
    tol : Availability.Fleet_model.az_tolerance;
    az_write_loss : float;  (* P(write loss | AZ outage), analytic *)
    az_read_loss : float;
  }

  type t = scheme_result list

  (* Degraded-fleet parameters: frequent-enough faults and slow-enough
     repair that rare events register at Monte Carlo scale — the shape,
     not the absolute magnitude, is what Figure 1 argues. *)
  let harsh_params =
    {
      Availability.Fleet_model.default_params with
      Availability.Fleet_model.segment_mttf = Time_ns.hours (24 * 30);
      repair_duration = Time_ns.minutes 30;
      az_mttf = Time_ns.hours (24 * 90);
      groups = 3000;
    }

  let run ?(params = harsh_params) ?(seed = 1) () =
    let schemes =
      [
        ("2/3 across 3 AZs", Cluster.V3);
        ("4/6 across 3 AZs", Cluster.V6);
        ("tiered 3f+3t", Cluster.Tiered);
      ]
    in
    List.map
      (fun (name, layout) ->
        let members, rule = scheme_rule layout in
        let rng = Rng.create seed in
        let mc = Availability.Fleet_model.run ~rng ~params ~members ~rule in
        let an = Availability.Fleet_model.analytic ~params ~members ~rule in
        let tol = Availability.Fleet_model.az_tolerance ~members ~rule in
        let az_write_loss, az_read_loss =
          Availability.Fleet_model.analytic_given_az ~params ~members ~rule
        in
        { name; mc; an; tol; az_write_loss; az_read_loss })
      schemes

  let yn b = if b then "yes" else "NO"

  let report t =
    let r =
      Report.create ~title:"E1 (Figure 1): quorum availability"
        ~columns:
          [
            "scheme";
            "survives AZ (r/w)";
            "survives AZ+1 (read=repair)";
            "P(read loss | AZ down)";
            "steady write-unavail (MC)";
            "MC AZ-onset read-survival";
          ]
    in
    List.iter
      (fun s ->
        let mc = s.mc in
        Report.row r
          [
            s.name;
            Printf.sprintf "%s/%s" (yn s.tol.read_survives_az)
              (yn s.tol.write_survives_az);
            yn s.tol.read_survives_az_plus_one;
            Printf.sprintf "%.2e" s.az_read_loss;
            Report.pct mc.write_unavail;
            (if mc.az_onsets = 0 then "n/a"
             else
               Report.pct
                 (float_of_int mc.az_read_survived /. float_of_int mc.az_onsets));
          ])
      t;
    Report.note r
      "expected shape (the paper's 'why six copies'): 2/3 cannot repair \
       after AZ+1 (read quorum gone -> data loss risk); 4/6 and tiered keep \
       the read quorum through AZ+1, so every failure there stays \
       repairable";
    r
end

(* ------------------------------------------------------------------ *)
(* E2: Figure 2 — storage node pipeline under loss                     *)
(* ------------------------------------------------------------------ *)

module E2 = struct
  type t = {
    records_written : int;
    acks_processed : int;
    drop_probability : float;
    gossip_filled : int;
    final_scl_lag : int;
    coalesced_versions : int;
    backups : int;
    hot_log_gced : int;
    scrub_found : int;
    corruptions_injected : int;
  }

  let run ?(seed = 7) ?(txns = 400) ?(drop = 0.05) () =
    let cfg = { Cluster.default_config with seed; n_pgs = 1 } in
    let cluster = Cluster.create cfg in
    let sim = Cluster.sim cluster in
    let db = Cluster.db cluster in
    Simnet.Net.set_drop_probability (Cluster.net cluster) drop;
    let gen =
      Workload.Txn_gen.create ~sim ~rng:(Rng.create (seed + 1)) ~db
        ~profile:
          { Workload.Txn_gen.default_profile with ops_per_txn = 3; write_fraction = 1. }
        ()
    in
    Workload.Txn_gen.run_open_loop gen ~rate_per_sec:2000.
      ~duration:(Time_ns.ms (txns / 2));
    Sim.run_until sim (Time_ns.sec 2);
    (* Inject corruption into two materialized blocks, then let scrub run. *)
    let injected = ref 0 in
    List.iter
      (fun node ->
        if !injected < 2 then
          List.iter
            (fun seg ->
              if
                !injected < 2
                && Storage.Segment.kind seg = Membership.Full
                && Storage.Block_store.blocks (Storage.Segment.store seg) <> []
              then begin
                match Storage.Block_store.blocks (Storage.Segment.store seg) with
                | b :: _ ->
                  if Storage.Block_store.corrupt (Storage.Segment.store seg) b
                  then incr injected
                | [] -> ()
              end)
            (Storage.Storage_node.segments node))
      (Cluster.storage_nodes cluster);
    (* Stop dropping and let the background stages settle + scrub fire. *)
    Simnet.Net.set_drop_probability (Cluster.net cluster) 0.;
    Sim.run_until sim (Time_ns.sec 30);
    let nodes = Cluster.storage_nodes cluster in
    let sum f = List.fold_left (fun acc n -> acc + f (Storage.Storage_node.metrics n)) 0 nodes in
    let scls =
      List.concat_map
        (fun n ->
          List.map
            (fun s -> Lsn.to_int (Storage.Segment.scl s))
            (Storage.Storage_node.segments n))
        nodes
    in
    let max_scl = List.fold_left max 0 scls in
    let min_scl = List.fold_left min max_int scls in
    let coalesced =
      List.fold_left
        (fun acc n ->
          List.fold_left
            (fun acc s ->
              acc + Storage.Block_store.version_count (Storage.Segment.store s))
            acc
            (Storage.Storage_node.segments n))
        0 nodes
    in
    {
      records_written = (Database.metrics db).Database.records_written;
      acks_processed = sum (fun m -> m.Storage.Storage_node.write_batches);
      drop_probability = drop;
      gossip_filled = sum (fun m -> m.Storage.Storage_node.gossip_records_filled);
      final_scl_lag = max_scl - min_scl;
      coalesced_versions = coalesced;
      backups = sum (fun m -> m.Storage.Storage_node.backups_taken);
      hot_log_gced = sum (fun m -> m.Storage.Storage_node.hot_log_records_gced);
      scrub_found = sum (fun m -> m.Storage.Storage_node.scrub_corruptions_found);
      corruptions_injected = !injected;
    }

  let report t =
    let r =
      Report.create ~title:"E2 (Figure 2): storage-node pipeline under loss"
        ~columns:[ "stage"; "count" ]
    in
    Report.row r [ "records written (writer)"; string_of_int t.records_written ];
    Report.row r
      [
        Printf.sprintf "write batches stored (drop=%.0f%%)"
          (100. *. t.drop_probability);
        string_of_int t.acks_processed;
      ];
    Report.row r [ "records filled by gossip"; string_of_int t.gossip_filled ];
    Report.row r [ "final max SCL lag across segments"; string_of_int t.final_scl_lag ];
    Report.row r [ "versions coalesced"; string_of_int t.coalesced_versions ];
    Report.row r [ "snapshots backed up to S3"; string_of_int t.backups ];
    Report.row r [ "hot-log records GCed"; string_of_int t.hot_log_gced ];
    Report.row r
      [
        Printf.sprintf "scrub corruptions found (of %d injected)"
          t.corruptions_injected;
        string_of_int t.scrub_found;
      ];
    Report.note r
      "expected shape: gossip closes every hole (SCL lag 0) despite drops; \
       all background stages progress";
    r
end

(* ------------------------------------------------------------------ *)
(* E3: Figure 3 — consistency points                                   *)
(* ------------------------------------------------------------------ *)

module E3 = struct
  type t = {
    pg1_pgcl : int;
    pg2_pgcl : int;
    vcl : int;
    expected : int * int * int;
  }

  let run () =
    (* Figure 3: two groups; odd LSNs 101..107 go to PG1, even 102..108 to
       PG2.  105 has not met quorum in PG1; 106 and 108 have not in PG2.
       Expected: PGCL(PG1)=103, PGCL(PG2)=104, VCL=104. *)
    let c = Consistency.create () in
    let pg1 = Pg_id.of_int 0 and pg2 = Pg_id.of_int 1 in
    let members = List.init 6 Member_id.of_int in
    let quorum = Quorum_set.k_of 4 members in
    Consistency.register_pg c pg1 ~write_quorum:quorum;
    Consistency.register_pg c pg2 ~write_quorum:quorum;
    for lsn = 101 to 108 do
      let pg = if lsn mod 2 = 1 then pg1 else pg2 in
      Consistency.note_submitted c ~pg ~lsn:(Lsn.of_int lsn) ~mtr_end:true
    done;
    (* Ack pattern: four segments of PG1 complete through 103, two reach
       105 and 107; four segments of PG2 complete through 104, two reach
       106/108. *)
    let ack pg seg scl = Consistency.note_ack c ~pg ~seg:(Member_id.of_int seg) ~scl:(Lsn.of_int scl) in
    ack pg1 0 103; ack pg1 1 103; ack pg1 2 103; ack pg1 3 103;
    ack pg1 4 107; ack pg1 5 105;
    ack pg2 0 104; ack pg2 1 104; ack pg2 2 104; ack pg2 3 104;
    ack pg2 4 108; ack pg2 5 106;
    {
      pg1_pgcl = Lsn.to_int (Consistency.pgcl c pg1);
      pg2_pgcl = Lsn.to_int (Consistency.pgcl c pg2);
      vcl = Lsn.to_int (Consistency.vcl c);
      expected = (103, 104, 104);
    }

  let report t =
    let r =
      Report.create ~title:"E3 (Figure 3): storage consistency points"
        ~columns:[ "point"; "computed"; "paper" ]
    in
    let e1, e2, e3 = t.expected in
    Report.row r [ "PGCL(PG1)"; string_of_int t.pg1_pgcl; string_of_int e1 ];
    Report.row r [ "PGCL(PG2)"; string_of_int t.pg2_pgcl; string_of_int e2 ];
    Report.row r [ "VCL"; string_of_int t.vcl; string_of_int e3 ];
    r
end

(* ------------------------------------------------------------------ *)
(* E4: Figure 4 / §2.4 — recovery time vs backlog                      *)
(* ------------------------------------------------------------------ *)

module E4 = struct
  type point = {
    txns_since_checkpoint : int;
    log_bytes : int;
    aurora_recovery : Time_ns.t;
    aurora_vcl : int;
    acked_commits : int;
    lost_acked_commits : int;
    aries_recovery : Time_ns.t;
  }

  type t = point list

  let one_point ~seed ~txns =
    let cfg = { Cluster.default_config with seed; n_pgs = 2 } in
    let cluster = Cluster.create cfg in
    let sim = Cluster.sim cluster in
    let db = Cluster.db cluster in
    let gen =
      Workload.Txn_gen.create ~sim ~rng:(Rng.create (seed + 13)) ~db
        ~profile:
          {
            Workload.Txn_gen.default_profile with
            ops_per_txn = 4;
            write_fraction = 1.;
          }
        ()
    in
    Workload.Txn_gen.run_open_loop gen ~rate_per_sec:5000.
      ~duration:(Time_ns.us (txns * 200));
    Sim.run_until sim (Time_ns.us ((txns * 200) + 500_000));
    let records = (Database.metrics db).Database.records_written in
    let log_bytes = records * (Wal.Log_record.header_bytes + 80) in
    Database.crash db;
    Sim.run_until sim (Time_ns.add (Sim.now sim) (Time_ns.ms 100));
    let outcome = ref None in
    Database.recover db (fun r -> outcome := Some r);
    Sim.run_until sim (Time_ns.add (Sim.now sim) (Time_ns.sec 60));
    let o =
      match !outcome with
      | Some (Ok o) -> o
      | Some (Error e) -> failwith ("E4: recovery failed: " ^ e)
      | None -> failwith "E4: recovery did not complete"
    in
    let checked, lost =
      audit_durability ~sim
        ~get:(fun ~key cb -> Database.get db ~key cb)
        ~gen
    in
    ignore checked;
    let aries =
      Baselines.Aries.recovery_time Baselines.Aries.default_config ~log_bytes
        ~records
        ~loser_records:(List.length o.Aurora_core.Recovery.interrupted * 4)
    in
    {
      txns_since_checkpoint = txns;
      log_bytes;
      aurora_recovery = o.Aurora_core.Recovery.duration;
      aurora_vcl = Lsn.to_int o.Aurora_core.Recovery.vcl;
      acked_commits = Workload.Txn_gen.acked gen;
      lost_acked_commits = lost;
      aries_recovery = aries.Baselines.Aries.total;
    }

  let run ?(seed = 11) ?(sweep = [ 200; 1000; 5000; 20000 ]) () =
    List.mapi (fun i txns -> one_point ~seed:(seed + i) ~txns) sweep

  let report t =
    let r =
      Report.create
        ~title:"E4 (Figure 4 / \xc2\xa72.4): crash recovery vs redo backlog"
        ~columns:
          [
            "txns since ckpt";
            "log bytes";
            "aurora recovery";
            "aries recovery";
            "acked commits";
            "lost";
          ]
    in
    List.iter
      (fun p ->
        Report.row r
          [
            string_of_int p.txns_since_checkpoint;
            string_of_int p.log_bytes;
            Report.time p.aurora_recovery;
            Report.time p.aries_recovery;
            string_of_int p.acked_commits;
            string_of_int p.lost_acked_commits;
          ])
      t;
    Report.note r
      "expected shape: Aurora roughly flat in backlog (quorum poll + \
       truncation), ARIES linear; zero acked commits lost";
    r
end

(* ------------------------------------------------------------------ *)
(* E5: Figure 5 — membership change under load                         *)
(* ------------------------------------------------------------------ *)

module E5 = struct
  type t = {
    epochs_seen : int list;
    commits_during_change : int;
    max_commit_gap : Time_ns.t;
    baseline_stall : Time_ns.t;
    hydration_time : Time_ns.t;
    replacement_caught_up : bool;
    revert_worked : bool;
    lost_acked_commits : int;
    availability_window : Time_ns.t;
    availability : (Time_ns.t * bool * bool) list;
        (* (offset from change start, aurora write-available,
           blocking-baseline write-available) per window *)
    aurora_window_fraction : float;
    baseline_window_fraction : float;
    online_write_available : float; (* Obs.Health accumulator, whole run *)
  }

  let membership_epoch cluster pg =
    Membership.epoch
      (Aurora_core.Volume.find_pg
         (Database.volume (Cluster.db cluster))
         pg)
        .Aurora_core.Volume.membership
    |> Epoch.to_int

  let run ?(seed = 21) () =
    let pg = Pg_id.of_int 0 in
    let suspect = Member_id.of_int 5 (* "F" *) in
    (* --- main run: replace F with G under load --- *)
    let cfg = { Cluster.default_config with seed; n_pgs = 1 } in
    let cluster = Cluster.create cfg in
    let sim = Cluster.sim cluster in
    let db = Cluster.db cluster in
    let gen =
      Workload.Txn_gen.create ~sim ~rng:(Rng.create (seed + 3)) ~db
        ~profile:
          {
            Workload.Txn_gen.default_profile with
            ops_per_txn = 2;
            write_fraction = 1.;
          }
        ()
    in
    let e0 = membership_epoch cluster pg in
    Workload.Txn_gen.run_closed_loop gen ~clients:8
      ~think_time:(Distribution.constant (Time_ns.ms 1))
      ~duration:(Time_ns.sec 8);
    Sim.run_until sim (Time_ns.sec 1);
    (* F fails permanently; monitor notices and starts the change. *)
    Cluster.destroy_storage_node cluster pg suspect;
    Sim.run_until sim (Time_ns.add (Sim.now sim) (Time_ns.ms 200));
    let change_start = Sim.now sim in
    let acked_before = Workload.Txn_gen.acked gen in
    let replacement =
      match Cluster.start_replacement cluster pg ~suspect with
      | Ok m -> m
      | Error e -> failwith ("E5: start_replacement: " ^ e)
    in
    let e1 = membership_epoch cluster pg in
    (* Poll for hydration catch-up, then finalize. *)
    let caught_up_at = ref None in
    let rec poll () =
      if !caught_up_at = None then
        if Cluster.replacement_caught_up cluster pg ~replacement then
          caught_up_at := Some (Sim.now sim)
        else ignore (Sim.schedule sim ~delay:(Time_ns.ms 20) poll)
    in
    poll ();
    Sim.run_until sim (Time_ns.sec 5);
    let hydration_time =
      match !caught_up_at with
      | Some at -> Time_ns.diff at change_start
      | None -> Time_ns.sec 5
    in
    (match Cluster.finish_replacement cluster pg ~suspect with
    | Ok () -> ()
    | Error e -> failwith ("E5: finish_replacement: " ^ e));
    let e2 = membership_epoch cluster pg in
    let change_end = Sim.now sim in
    Sim.run_until sim (Time_ns.sec 10);
    (* Commit-gap during the change window. *)
    let acks_in_window =
      List.filter_map
        (fun (a : Workload.Txn_gen.acked) ->
          if
            Time_ns.compare a.acked_at change_start >= 0
            && Time_ns.compare a.acked_at change_end <= 0
          then Some a.acked_at
          else None)
        (Workload.Txn_gen.acked_writes gen)
    in
    let sorted = List.sort Time_ns.compare acks_in_window in
    let max_gap =
      let rec gaps acc = function
        | a :: (b :: _ as rest) -> gaps (Time_ns.max acc (Time_ns.diff b a)) rest
        | _ -> acc
      in
      gaps Time_ns.zero sorted
    in
    (* Availability timeline (Figure 1 / §4 shape): fixed windows across
       the change; Aurora is available in a window iff some commit acked
       in it, while a stop-the-world baseline would additionally be dark
       for the whole hydration. *)
    let window = Time_ns.ms 250 in
    let all_acks =
      List.map
        (fun (a : Workload.Txn_gen.acked) -> a.acked_at)
        (Workload.Txn_gen.acked_writes gen)
    in
    let n_windows =
      max 1 ((Time_ns.diff change_end change_start + window - 1) / window)
    in
    let stall_end = Time_ns.add change_start hydration_time in
    let availability =
      List.init n_windows (fun i ->
          let w0 = Time_ns.add change_start (i * window) in
          let w1 = Time_ns.min change_end (Time_ns.add w0 window) in
          let aurora =
            List.exists
              (fun a -> Time_ns.compare a w0 >= 0 && Time_ns.compare a w1 < 0)
              all_acks
          in
          let baseline = aurora && Time_ns.compare w0 stall_end >= 0 in
          (Time_ns.diff w0 change_start, aurora, baseline))
    in
    let fraction f =
      float_of_int (List.length (List.filter f availability))
      /. float_of_int n_windows
    in
    let aurora_window_fraction = fraction (fun (_, a, _) -> a) in
    let baseline_window_fraction = fraction (fun (_, _, b) -> b) in
    let online_write_available =
      Obs.Health.write_available_fraction (Obs.Ctx.health (Cluster.obs cluster))
    in
    let _, lost =
      audit_durability ~sim
        ~get:(fun ~key cb -> Database.get db ~key cb)
        ~gen
    in
    (* --- revert run: suspect comes back, change is reversed --- *)
    let cluster2 = Cluster.create { cfg with seed = seed + 100 } in
    let sim2 = Cluster.sim cluster2 in
    let db2 = Cluster.db cluster2 in
    let txn = Database.begin_txn db2 in
    Database.put db2 ~txn ~key:"k" ~value:"v";
    Database.commit db2 ~txn (fun _ -> ());
    Sim.run_until sim2 (Time_ns.ms 500);
    let revert_worked =
      match Cluster.start_replacement cluster2 pg ~suspect with
      | Error _ -> false
      | Ok _ -> (
        Sim.run_until sim2 (Time_ns.sec 1);
        match Cluster.revert_replacement cluster2 pg ~suspect with
        | Error _ -> false
        | Ok () ->
          Sim.run_until sim2 (Time_ns.sec 2);
          (* Writes must still work with the original roster. *)
          let ok = ref false in
          let txn = Database.begin_txn db2 in
          Database.put db2 ~txn ~key:"k2" ~value:"v2";
          Database.commit db2 ~txn (fun r -> ok := r = Ok ());
          Sim.run_until sim2 (Time_ns.add (Sim.now sim2) (Time_ns.sec 2));
          !ok)
    in
    {
      epochs_seen = [ e0; e1; e2 ];
      commits_during_change = Workload.Txn_gen.acked gen - acked_before;
      max_commit_gap = max_gap;
      baseline_stall = hydration_time;
      hydration_time;
      replacement_caught_up = !caught_up_at <> None;
      revert_worked;
      lost_acked_commits = lost;
      availability_window = window;
      availability;
      aurora_window_fraction;
      baseline_window_fraction;
      online_write_available;
    }

  let report t =
    let r =
      Report.create ~title:"E5 (Figure 5): membership change under write load"
        ~columns:[ "metric"; "value" ]
    in
    Report.row r
      [
        "membership epochs (steady -> dual -> final)";
        String.concat " -> " (List.map string_of_int t.epochs_seen);
      ];
    Report.row r
      [ "commits acked during change"; string_of_int t.commits_during_change ];
    Report.row r [ "max commit-ack gap during change"; Report.time t.max_commit_gap ];
    Report.row r
      [
        "stop-the-world baseline stall (= hydration)";
        Report.time t.baseline_stall;
      ];
    Report.row r [ "replacement hydrated"; string_of_bool t.replacement_caught_up ];
    Report.row r [ "revert path works"; string_of_bool t.revert_worked ];
    Report.row r [ "acked commits lost"; string_of_int t.lost_acked_commits ];
    Report.row r
      [
        "write-available windows (aurora)"; Report.pct t.aurora_window_fraction;
      ];
    Report.row r
      [
        "write-available windows (blocking baseline)";
        Report.pct t.baseline_window_fraction;
      ];
    Report.row r
      [
        "write-available time (online health monitor)";
        Report.pct t.online_write_available;
      ];
    Report.note r
      "expected shape: commit gap << stop-the-world stall; epochs increment \
       by 1 per transition; zero loss";
    let sub =
      Report.create
        ~title:
          (Printf.sprintf "availability over the change (%s windows)"
             (Report.time t.availability_window))
        ~columns:[ "t after change start"; "aurora"; "blocking baseline" ]
    in
    List.iter
      (fun (off, aurora, baseline) ->
        let mark b = if b then "up" else "DOWN" in
        Report.row sub [ Report.time off; mark aurora; mark baseline ])
      t.availability;
    Report.add_subtable r sub;
    r
end

(* ------------------------------------------------------------------ *)
(* E6: commit protocols                                                *)
(* ------------------------------------------------------------------ *)

module E6 = struct
  type proto_result = {
    proto : string;
    commits : int;
    p50 : float;
    p99 : float;
    p999 : float;
    messages_per_commit : float;
  }

  type t = {
    protos : proto_result list;
    stages : (string * Histogram.t) list;
  }

  (* Shared link model: six storage-side nodes spread 2-per-AZ, client in
     AZ1, lognormal inter/intra-AZ latencies as in Cluster.default_config. *)
  let az_spread_latency ~intra ~inter az_of a b =
    match (az_of a, az_of b) with
    | Some x, Some y when x = y -> Some intra
    | _ -> Some inter

  let disk_force = Distribution.lognormal ~median:(Time_ns.us 80) ~sigma:0.4

  let run_aurora ~seed ~commits =
    let cfg =
      {
        Cluster.default_config with
        seed;
        n_pgs = 1;
        storage_config =
          {
            Storage.Storage_node.default_config with
            (* Quiet background so message counts isolate the commit path. *)
            gossip_interval = Time_ns.hours 10;
            backup_interval = Time_ns.hours 10;
            gc_interval = Time_ns.hours 10;
            scrub_interval = Time_ns.hours 10;
            coalesce_interval = Time_ns.hours 10;
          };
        db_config =
          {
            Database.default_config with
            replication_interval = Time_ns.hours 10;
            pgmrpl_interval = Time_ns.hours 10;
          };
      }
    in
    let cluster = Cluster.create cfg in
    let sim = Cluster.sim cluster in
    let db = Cluster.db cluster in
    Sim.run_until sim (Time_ns.ms 10);
    Simnet.Net.reset_stats (Cluster.net cluster);
    let hist = Histogram.create () in
    let done_ = ref 0 in
    let rec one i =
      if i < commits then begin
        let txn = Database.begin_txn db in
        Database.put db ~txn ~key:(Printf.sprintf "k%d" i) ~value:"v";
        let started = Sim.now sim in
        Database.commit db ~txn (fun _ ->
            Histogram.record_span hist started (Sim.now sim);
            incr done_;
            one (i + 1))
      end
    in
    one 0;
    Sim.run_until sim (Time_ns.add (Sim.now sim) (Time_ns.sec 120));
    let st = Simnet.Net.stats (Cluster.net cluster) in
    let stages =
      List.map
        (fun (labels, h) ->
          let stage =
            match List.assoc_opt "stage" labels with
            | Some s -> s
            | None -> "?"
          in
          (stage, h))
        (Obs.Registry.find_histograms
           (Obs.Ctx.registry (Cluster.obs cluster))
           "commit_stage_ns")
    in
    ( {
        proto = "aurora 4/6 quorum ack";
        commits = !done_;
        p50 = float_of_int (Histogram.percentile hist 50.);
        p99 = float_of_int (Histogram.percentile hist 99.);
        p999 = float_of_int (Histogram.percentile hist 99.9);
        messages_per_commit =
          float_of_int st.Simnet.Net.sent /. float_of_int (max 1 !done_);
      },
      stages )

  let make_net ~seed ~n_nodes =
    let sim = Sim.create () in
    let rng = Rng.create seed in
    let az_of = Hashtbl.create 16 in
    (* client at addr 0 in AZ0; nodes 1..n spread round-robin *)
    Hashtbl.replace az_of 0 0;
    for i = 1 to n_nodes do
      Hashtbl.replace az_of i ((i - 1) mod 3)
    done;
    let net =
      Simnet.Net.create ~sim ~rng:(Rng.split rng)
        ~default_latency:Cluster.default_config.Cluster.inter_az_latency ()
    in
    Simnet.Net.set_latency_fn net
      (az_spread_latency
         ~intra:Cluster.default_config.Cluster.intra_az_latency
         ~inter:Cluster.default_config.Cluster.inter_az_latency
         (fun a -> Hashtbl.find_opt az_of (Simnet.Addr.to_int a)));
    (sim, rng, net)

  let run_2pc ~seed ~commits =
    let sim, rng, net = make_net ~seed ~n_nodes:6 in
    let config =
      {
        Baselines.Two_phase_commit.participants = List.init 6 (fun i -> Simnet.Addr.of_int (i + 1));
        coordinator = Simnet.Addr.of_int 0;
        log_force = disk_force;
        prepare_vote_abort_probability = 0.;
      }
    in
    let tpc = Baselines.Two_phase_commit.create ~sim ~rng ~net ~config () in
    let done_ = ref 0 in
    let rec one i =
      if i < commits then
        Baselines.Two_phase_commit.commit tpc ~on_done:(fun _ ->
            incr done_;
            one (i + 1))
    in
    one 0;
    Sim.run_until sim (Time_ns.sec 600);
    let st = Baselines.Two_phase_commit.stats tpc in
    {
      proto = "2PC (6 participants)";
      commits = !done_;
      p50 = float_of_int (Histogram.percentile st.latency 50.);
      p99 = float_of_int (Histogram.percentile st.latency 99.);
      p999 = float_of_int (Histogram.percentile st.latency 99.9);
      messages_per_commit =
        float_of_int st.Baselines.Two_phase_commit.messages
        /. float_of_int (max 1 !done_);
    }

  let run_paxos ~seed ~commits =
    let sim, rng, net = make_net ~seed ~n_nodes:6 in
    let config =
      {
        Baselines.Paxos_commit.leader = Simnet.Addr.of_int 0;
        acceptors = List.init 6 (fun i -> Simnet.Addr.of_int (i + 1));
        log_force = disk_force;
      }
    in
    let px = Baselines.Paxos_commit.create ~sim ~rng ~net ~config () in
    let done_ = ref 0 in
    let rec one i =
      if i < commits then
        Baselines.Paxos_commit.commit px ~value:i ~on_done:(fun () ->
            incr done_;
            one (i + 1))
    in
    one 0;
    Sim.run_until sim (Time_ns.sec 600);
    let st = Baselines.Paxos_commit.stats px in
    {
      proto = "Paxos commit (6 acceptors)";
      commits = !done_;
      p50 = float_of_int (Histogram.percentile st.latency 50.);
      p99 = float_of_int (Histogram.percentile st.latency 99.);
      p999 = float_of_int (Histogram.percentile st.latency 99.9);
      messages_per_commit =
        float_of_int st.Baselines.Paxos_commit.messages /. float_of_int (max 1 !done_);
    }

  let run ?(seed = 31) ?(commits = 2000) () =
    let aurora, stages = run_aurora ~seed ~commits in
    {
      protos =
        [
          aurora;
          run_paxos ~seed:(seed + 1) ~commits;
          run_2pc ~seed:(seed + 2) ~commits;
        ];
      stages;
    }

  let report t =
    let r =
      Report.create
        ~title:"E6 (\xc2\xa71/\xc2\xa72.3): commit latency and message cost"
        ~columns:[ "protocol"; "commits"; "p50"; "p99"; "p99.9"; "msgs/commit" ]
    in
    List.iter
      (fun p ->
        Report.row r
          [
            p.proto;
            string_of_int p.commits;
            Report.ns p.p50;
            Report.ns p.p99;
            Report.ns p.p999;
            Report.f2 p.messages_per_commit;
          ])
      t.protos;
    Report.note r
      "expected shape: aurora <= paxos < 2pc in latency (2PC pays two \
       sequential round trips + forces); tails ordered the same way";
    (if t.stages <> [] then begin
       let sub =
         Report.create ~title:"aurora commit-path stage breakdown"
           ~columns:[ "stage"; "count"; "mean"; "p50"; "p99"; "max" ]
       in
       List.iter
         (fun (stage, h) ->
           Report.row sub
             [
               stage;
               string_of_int (Histogram.count h);
               Report.ns (Histogram.mean h);
               Report.ns (float_of_int (Histogram.percentile h 50.));
               Report.ns (float_of_int (Histogram.percentile h 99.));
               Report.ns (float_of_int (Histogram.max_value h));
             ])
         t.stages;
       Report.note sub
         "adjacent stage-pair latencies of the write path (\xc2\xa72.2): the \
          wait between quorum ack and VCL coverage dominates commit cost";
       Report.add_subtable r sub
     end);
    r
end

(* ------------------------------------------------------------------ *)
(* E7: boxcar policies                                                 *)
(* ------------------------------------------------------------------ *)

module E7 = struct
  type point = {
    policy : string;
    rate_per_sec : float;
    p50 : float;
    p99 : float;
    jitter : float;
    mean_batch : float;
  }

  type t = point list

  let policies =
    [
      ("no batching", Boxcar.Immediate);
      ("aurora first-record", Boxcar.First_record (Time_ns.us 20));
      ( "timeout boxcar 2ms/16",
        Boxcar.Timeout_boxcar { timeout = Time_ns.ms 2; max_records = 16 } );
    ]

  let one ~seed ~policy_name ~policy ~rate =
    let cfg =
      {
        Cluster.default_config with
        seed;
        n_pgs = 1;
        db_config = { Database.default_config with boxcar = policy };
      }
    in
    let cluster = Cluster.create cfg in
    let sim = Cluster.sim cluster in
    let db = Cluster.db cluster in
    let gen =
      Workload.Txn_gen.create ~sim ~rng:(Rng.create (seed + 5)) ~db
        ~profile:
          {
            Workload.Txn_gen.default_profile with
            ops_per_txn = 1;
            write_fraction = 1.;
          }
        ()
    in
    Workload.Txn_gen.run_open_loop gen ~rate_per_sec:rate
      ~duration:(Time_ns.sec 4);
    Sim.run_until sim (Time_ns.sec 6);
    let h = Workload.Txn_gen.commit_latency gen in
    let p50 = float_of_int (Histogram.percentile h 50.) in
    let p99 = float_of_int (Histogram.percentile h 99.) in
    {
      policy = policy_name;
      rate_per_sec = rate;
      p50;
      p99;
      jitter = p99 -. p50;
      mean_batch = Database.mean_batch_size db;
    }

  let run ?(seed = 41) ?(rates = [ 100.; 2000.; 20000. ]) () =
    List.concat_map
      (fun (name, policy) ->
        List.mapi (fun i rate -> one ~seed:(seed + i) ~policy_name:name ~policy ~rate) rates)
      policies

  let report t =
    let r =
      Report.create ~title:"E7 (\xc2\xa72.2): write batching policies"
        ~columns:[ "policy"; "rate/s"; "p50"; "p99"; "jitter(p99-p50)"; "recs/batch" ]
    in
    List.iter
      (fun p ->
        Report.row r
          [
            p.policy;
            Printf.sprintf "%.0f" p.rate_per_sec;
            Report.ns p.p50;
            Report.ns p.p99;
            Report.ns p.jitter;
            Report.f2 p.mean_batch;
          ])
      t;
    Report.note r
      "expected shape: timeout boxcar pays the full timer at low load and \
       mixed fill-vs-timeout jitter at higher load; aurora's \
       submit-on-first-record matches unbatched latency while packing \
       records as load grows";
    r
end

(* ------------------------------------------------------------------ *)
(* E8: read strategies                                                 *)
(* ------------------------------------------------------------------ *)

module E8 = struct
  type point = {
    strategy : string;
    slow_segment : bool;
        (* true = heavy-tailed fleet: every node occasionally stalls
           (transient slowness no latency tracker can predict) *)
    reads : int;
    ios_per_read : float;
    p50 : float;
    p99 : float;
  }

  type t = point list

  let heavy_tail base =
    Distribution.mixture [ (0.97, base); (0.03, Distribution.scaled 10. base) ]

  let strategies =
    [
      ( "direct tracked",
        Reader.Direct_tracked { hedge_after = None; explore_probability = 0.05 } );
      ( "direct + hedge 2ms",
        Reader.Direct_tracked
          { hedge_after = Some (Time_ns.ms 2); explore_probability = 0.05 } );
      ("quorum read 3/6", Reader.Quorum_read { read_threshold = 3 });
    ]

  let one ~seed ~name ~strategy ~slow ~reads =
    let cfg =
      {
        Cluster.default_config with
        seed;
        n_pgs = 1;
        intra_az_latency =
          (if slow then heavy_tail Cluster.default_config.Cluster.intra_az_latency
           else Cluster.default_config.Cluster.intra_az_latency);
        inter_az_latency =
          (if slow then heavy_tail Cluster.default_config.Cluster.inter_az_latency
           else Cluster.default_config.Cluster.inter_az_latency);
        db_config =
          {
            Database.default_config with
            read_strategy = strategy;
            cache_capacity = 1 (* force storage reads *);
            n_blocks = 64;
          };
      }
    in
    let cluster = Cluster.create cfg in
    let sim = Cluster.sim cluster in
    let db = Cluster.db cluster in
    (* Prefill. *)
    let keys = List.init 256 (fun i -> Printf.sprintf "key-%04d" i) in
    let txn = Database.begin_txn db in
    List.iter (fun k -> Database.put db ~txn ~key:k ~value:("val-" ^ k)) keys;
    Database.commit db ~txn (fun _ -> ());
    Sim.run_until sim (Time_ns.sec 2);
    let rng = Rng.create (seed + 9) in
    let key_arr = Array.of_list keys in
    let done_ = ref 0 in
    let rec one_read i =
      if i < reads then
        Database.get db ~key:(Rng.pick rng key_arr) (fun _ ->
            incr done_;
            one_read (i + 1))
    in
    one_read 0;
    Sim.run_until sim (Time_ns.add (Sim.now sim) (Time_ns.sec 300));
    let m = Reader.metrics (Database.reader db) in
    {
      strategy = name;
      slow_segment = slow;
      reads = m.Reader.reads;
      ios_per_read =
        float_of_int m.Reader.ios_issued /. float_of_int (max 1 m.Reader.reads);
      p50 = float_of_int (Histogram.percentile m.Reader.latency 50.);
      p99 = float_of_int (Histogram.percentile m.Reader.latency 99.);
    }

  let run ?(seed = 51) ?(reads = 2000) () =
    List.concat_map
      (fun (name, strategy) ->
        [
          one ~seed ~name ~strategy ~slow:false ~reads;
          one ~seed:(seed + 1) ~name ~strategy ~slow:true ~reads;
        ])
      strategies

  let report t =
    let r =
      Report.create ~title:"E8 (\xc2\xa73.1): read strategies"
        ~columns:[ "strategy"; "heavy tail?"; "reads"; "IOs/read"; "p50"; "p99" ]
    in
    List.iter
      (fun p ->
        Report.row r
          [
            p.strategy;
            string_of_bool p.slow_segment;
            string_of_int p.reads;
            Report.f2 p.ios_per_read;
            Report.ns p.p50;
            Report.ns p.p99;
          ])
      t;
    Report.note r
      "expected shape: direct reads cost ~1/3 the IOs of quorum reads; \
       under transient node stalls, hedging caps p99 far below unhedged \
       direct reads (persistent slowness is already dodged by the latency \
       tracker)";
    r
end

(* ------------------------------------------------------------------ *)
(* E9: replicas                                                        *)
(* ------------------------------------------------------------------ *)

module E9 = struct
  type t = {
    lag_p50 : float;
    lag_p99 : float;
    records_applied : int;
    records_skipped : int;
    replica_reads_ok : int;
    replica_reads_wrong : int;
    promoted : bool;
    acked_commits : int;
    lost_after_promotion : int;
    lag_timeline : (Time_ns.t * float) list;
        (* (sim time, per-window p99 stream lag ns) from the cluster's
           series sampler; windows with no stream chunks are omitted *)
    lag_timeline_max : float;
  }

  let run ?(seed = 61) () =
    let cfg = { Cluster.default_config with seed; n_pgs = 2 } in
    let cluster = Cluster.create cfg in
    let sim = Cluster.sim cluster in
    let db = Cluster.db cluster in
    let replica = Cluster.add_replica cluster in
    let gen =
      Workload.Txn_gen.create ~sim ~rng:(Rng.create (seed + 17)) ~db
        ~profile:{ Workload.Txn_gen.default_profile with write_fraction = 0.75 }
        ()
    in
    Workload.Txn_gen.run_closed_loop gen ~clients:8
      ~think_time:(Distribution.constant (Time_ns.ms 1))
      ~duration:(Time_ns.sec 5);
    (* Concurrent replica readers: warm the replica cache so the stream's
       apply-to-cached-blocks path (§3.2) is exercised. *)
    let rrng = Rng.create (seed + 19) in
    let zipf = Workload.Zipf.create ~n:2000 ~theta:0.9 in
    Sim.every sim ~interval:(Time_ns.ms 2) (fun () ->
        if Time_ns.compare (Sim.now sim) (Time_ns.sec 5) < 0 then begin
          let key = Printf.sprintf "key-%06d" (Workload.Zipf.sample zipf rrng) in
          Replica.get replica ~key (fun _ -> ());
          true
        end
        else false);
    Sim.run_until sim (Time_ns.sec 6);
    (* Replica reads: sampled acked keys must return *some* value that was
       written to them (the replica serves a consistent, possibly lagging
       snapshot). *)
    let written = Hashtbl.create 256 in
    List.iter
      (fun (a : Workload.Txn_gen.acked) ->
        List.iter
          (fun (k, v) ->
            let l = match Hashtbl.find_opt written k with Some l -> l | None -> [] in
            Hashtbl.replace written k (v :: l))
          a.keys_written)
      (Workload.Txn_gen.acked_writes gen);
    let ok = ref 0 and wrong = ref 0 in
    let sample = ref 0 in
    Hashtbl.iter
      (fun key values ->
        if !sample < 200 then begin
          incr sample;
          Replica.get replica ~key (fun result ->
              match result with
              | Ok (Some v) when List.exists (String.equal v) values -> incr ok
              | Ok None | Ok (Some _) | Error _ -> incr wrong)
        end)
      written;
    Sim.run_until sim (Time_ns.add (Sim.now sim) (Time_ns.sec 10));
    let m = Replica.metrics replica in
    let lag = m.Replica.stream_lag in
    (* Lag-over-time from the cluster's sampler: the per-window p99 of the
       replica's stream-lag histogram, captured before the writer dies. *)
    let series = Obs.Ctx.series (Cluster.obs cluster) in
    let lag_label =
      Printf.sprintf "replica_stream_lag_ns{node=%d}.p99"
        (Simnet.Addr.to_int (Replica.addr replica))
    in
    let lag_timeline =
      match Obs.Series.points series lag_label with
      | None -> []
      | Some pts ->
        let ts = Obs.Series.timestamps series in
        List.filter_map
          (fun i ->
            if Float.is_nan pts.(i) then None else Some (ts.(i), pts.(i)))
          (List.init (Array.length ts) Fun.id)
    in
    let lag_timeline_max =
      List.fold_left (fun acc (_, v) -> Float.max acc v) 0. lag_timeline
    in
    (* Writer dies; replica takes over. *)
    Database.crash db;
    Sim.run_until sim (Time_ns.add (Sim.now sim) (Time_ns.ms 100));
    let promoted = ref None in
    Replica.promote replica ~config:cfg.Cluster.db_config (fun r ->
        promoted := Some r);
    Sim.run_until sim (Time_ns.add (Sim.now sim) (Time_ns.sec 60));
    let new_db =
      match !promoted with
      | Some (Ok (db, _)) -> Some db
      | Some (Error _) | None -> None
    in
    let lost =
      match new_db with
      | None -> max_int
      | Some db ->
        let _, lost =
          audit_durability ~sim
            ~get:(fun ~key cb -> Database.get db ~key cb)
            ~gen
        in
        lost
    in
    {
      lag_p50 = float_of_int (Histogram.percentile lag 50.);
      lag_p99 = float_of_int (Histogram.percentile lag 99.);
      records_applied = m.Replica.records_applied;
      records_skipped = m.Replica.records_skipped;
      replica_reads_ok = !ok;
      replica_reads_wrong = !wrong;
      promoted = new_db <> None;
      acked_commits = Workload.Txn_gen.acked gen;
      lost_after_promotion = lost;
      lag_timeline;
      lag_timeline_max;
    }

  let report t =
    let r =
      Report.create ~title:"E9 (\xc2\xa73.2-3.4): read replicas and promotion"
        ~columns:[ "metric"; "value" ]
    in
    Report.row r [ "stream lag p50"; Report.ns t.lag_p50 ];
    Report.row r [ "stream lag p99"; Report.ns t.lag_p99 ];
    Report.row r [ "records applied to cached blocks"; string_of_int t.records_applied ];
    Report.row r [ "records skipped (uncached)"; string_of_int t.records_skipped ];
    Report.row r
      [
        "replica reads consistent";
        Printf.sprintf "%d ok / %d wrong" t.replica_reads_ok t.replica_reads_wrong;
      ];
    Report.row r [ "promotion succeeded"; string_of_bool t.promoted ];
    Report.row r [ "acked commits before crash"; string_of_int t.acked_commits ];
    Report.row r
      [ "acked commits lost after promotion"; string_of_int t.lost_after_promotion ];
    Report.row r [ "max windowed lag p99"; Report.ns t.lag_timeline_max ];
    Report.note r
      "expected shape: millisecond-scale lag; zero acked commits lost on \
       promotion (shared durable storage)";
    (* Down-sample the timeline to <= 12 evenly spaced rows. *)
    let sub =
      Report.create ~title:"replica stream lag over time (per-window p99)"
        ~columns:[ "t"; "lag p99" ]
    in
    let n = List.length t.lag_timeline in
    let step = max 1 (n / 12) in
    List.iteri
      (fun i (at, v) ->
        if i mod step = 0 || i = n - 1 then
          Report.row sub [ Report.time at; Report.ns v ])
      t.lag_timeline;
    Report.add_subtable r sub;
    r
end

(* ------------------------------------------------------------------ *)
(* E10: tiered quorum sets                                             *)
(* ------------------------------------------------------------------ *)

module E10 = struct
  type design_result = {
    design : string;
    storage_bytes : int;
    bytes_ratio_vs_v6 : float;
    write_unavail : float;
    read_unavail : float;
    az1_write_survival : float;
  }

  type t = design_result list

  let storage_bytes cluster =
    List.fold_left
      (fun acc node ->
        List.fold_left
          (fun acc seg -> acc + Storage.Segment.bytes_stored seg)
          acc
          (Storage.Storage_node.segments node))
      0
      (Cluster.storage_nodes cluster)

  let one ~seed ~layout ~txns =
    let cfg = { Cluster.default_config with seed; n_pgs = 1; layout } in
    let cluster = Cluster.create cfg in
    let sim = Cluster.sim cluster in
    let db = Cluster.db cluster in
    let gen =
      Workload.Txn_gen.create ~sim ~rng:(Rng.create (seed + 23)) ~db
        ~profile:
          {
            Workload.Txn_gen.default_profile with
            ops_per_txn = 4;
            write_fraction = 1.;
            value_size = 256;
          }
        ()
    in
    Workload.Txn_gen.run_open_loop gen ~rate_per_sec:2000.
      ~duration:(Time_ns.us (txns * 500));
    (* Let coalescing and GC settle so bytes reflect steady state. *)
    Sim.run_until sim (Time_ns.add (Sim.now sim) (Time_ns.sec 20));
    storage_bytes cluster

  let run ?(seed = 71) ?(txns = 2000) () =
    let v6_bytes = one ~seed ~layout:Cluster.V6 ~txns in
    let tiered_bytes = one ~seed:(seed + 1) ~layout:Cluster.Tiered ~txns in
    let avail layout =
      let members, rule = scheme_rule layout in
      let mc =
        Availability.Fleet_model.run ~rng:(Rng.create (seed + 2))
          ~params:
            {
              Availability.Fleet_model.default_params with
              Availability.Fleet_model.groups = 2000;
            }
          ~members ~rule
      in
      ( mc.Availability.Fleet_model.write_unavail,
        mc.Availability.Fleet_model.read_unavail,
        if mc.Availability.Fleet_model.az_onsets = 0 then 1.
        else
          float_of_int mc.Availability.Fleet_model.az_write_survived
          /. float_of_int mc.Availability.Fleet_model.az_onsets )
    in
    let v6_w, v6_r, v6_az = avail Cluster.V6 in
    let t_w, t_r, t_az = avail Cluster.Tiered in
    [
      {
        design = "6 full segments (4/6, 3/6)";
        storage_bytes = v6_bytes;
        bytes_ratio_vs_v6 = 1.;
        write_unavail = v6_w;
        read_unavail = v6_r;
        az1_write_survival = v6_az;
      };
      {
        design = "3 full + 3 tail (\xc2\xa74.2)";
        storage_bytes = tiered_bytes;
        bytes_ratio_vs_v6 = float_of_int tiered_bytes /. float_of_int (max 1 v6_bytes);
        write_unavail = t_w;
        read_unavail = t_r;
        az1_write_survival = t_az;
      };
    ]

  let report t =
    let r =
      Report.create ~title:"E10 (\xc2\xa74.2): tiered quorum sets vs six full copies"
        ~columns:
          [
            "design";
            "storage bytes";
            "ratio vs 6-full";
            "write-unavail";
            "read-unavail";
            "AZ write-survival";
          ]
    in
    List.iter
      (fun d ->
        Report.row r
          [
            d.design;
            string_of_int d.storage_bytes;
            Report.f2 d.bytes_ratio_vs_v6;
            Report.pct d.write_unavail;
            Report.pct d.read_unavail;
            Report.pct d.az1_write_survival;
          ])
      t;
    Report.note r
      "expected shape: tiered stores roughly half the bytes (data blocks \
       only on fulls) while keeping AZ+1 availability";
    r
end

(* ------------------------------------------------------------------ *)
(* Ablations: design-choice sweeps called out in DESIGN.md              *)
(* ------------------------------------------------------------------ *)

module Ablations = struct
  (* A1: hedge threshold — too low wastes IOs, too high stops capping the
     tail (§3.1's "if a request is taking longer than expected"). *)
  type hedge_point = {
    hedge : Time_ns.t option;
    ios_per_read : float;
    p99 : float;
  }

  let hedge_sweep ?(seed = 81) ?(reads = 1000) () =
    List.map
      (fun hedge ->
        let strategy =
          Reader.Direct_tracked { hedge_after = hedge; explore_probability = 0.05 }
        in
        let p =
          E8.one ~seed ~name:"sweep" ~strategy ~slow:true ~reads
        in
        { hedge; ios_per_read = p.E8.ios_per_read; p99 = p.E8.p99 })
      [ None; Some (Time_ns.ms 8); Some (Time_ns.ms 2); Some (Time_ns.us 700) ]

  let hedge_report points =
    let r =
      Report.create ~title:"A1 (ablation): hedge threshold under heavy tails"
        ~columns:[ "hedge after"; "IOs/read"; "p99" ]
    in
    List.iter
      (fun p ->
        Report.row r
          [
            (match p.hedge with None -> "never" | Some h -> Report.time h);
            Report.f2 p.ios_per_read;
            Report.ns p.p99;
          ])
      points;
    Report.note r
      "expected shape: lower thresholds trade extra IOs for a tighter p99;        'never' has the worst tail at the lowest cost";
    r

  (* A2: gossip cadence vs hole-repair time — background repair bandwidth
     is what lets the write path tolerate loss silently (Figure 2). *)
  type gossip_point = {
    interval : Time_ns.t;
    repair_time : Time_ns.t option; (* None = gossip alone never healed it *)
    hydration_healed : bool;
        (* when gossip lost the race against hot-log GC, did explicit
           hydration (the repair path) close the hole? *)
  }

  let gossip_sweep ?(seed = 91) () =
    List.map
      (fun interval ->
        let cfg =
          {
            Cluster.default_config with
            seed;
            n_pgs = 1;
            storage_config =
              {
                Storage.Storage_node.default_config with
                Storage.Storage_node.gossip_interval = interval;
              };
          }
        in
        let cluster = Cluster.create cfg in
        let sim = Cluster.sim cluster in
        let db = Cluster.db cluster in
        (* Write 300 txns while one segment is down: it misses everything. *)
        let victim = Member_id.of_int 5 in
        Cluster.crash_storage_node cluster (Pg_id.of_int 0) victim;
        let txn = ref (Database.begin_txn db) in
        for i = 1 to 300 do
          Database.put db ~txn:!txn ~key:(Printf.sprintf "g%d" i) ~value:"v";
          if i mod 10 = 0 then begin
            Database.commit db ~txn:!txn (fun _ -> ());
            txn := Database.begin_txn db
          end
        done;
        Database.commit db ~txn:!txn (fun _ -> ());
        Sim.run_until sim (Time_ns.sec 1);
        (* Victim restarts with a large hole; measure time until its SCL
           catches the group's durable point (gossip-only repair). *)
        Cluster.restart_storage_node cluster (Pg_id.of_int 0) victim;
        let restarted_at = Sim.now sim in
        let target = Consistency.pgcl (Database.consistency db) (Pg_id.of_int 0) in
        let healed_at = ref None in
        let seg () =
          match Cluster.node_of_member cluster (Pg_id.of_int 0) victim with
          | Some node -> Storage.Storage_node.segment node (Pg_id.of_int 0)
          | None -> None
        in
        Sim.every sim ~interval:(Time_ns.ms 10) (fun () ->
            match (!healed_at, seg ()) with
            | None, Some s when Wal.Lsn.(Storage.Segment.scl s >= target) ->
              healed_at := Some (Sim.now sim);
              false
            | None, _ -> Time_ns.compare (Sim.now sim) (Time_ns.sec 10) < 0
            | Some _, _ -> false);
        Sim.run_until sim (Time_ns.sec 11);
        (* If gossip lost the race against hot-log GC (peers no longer
           retain the records), fall back to explicit hydration — the
           repair path a real fleet uses. *)
        let hydration_healed =
          match !healed_at with
          | Some _ -> true
          | None -> (
            match Cluster.node_of_member cluster (Pg_id.of_int 0) victim with
            | None -> false
            | Some node ->
              let donor =
                List.find_opt
                  (fun (mid, _) -> not (Member_id.equal mid victim))
                  (Aurora_core.Volume.roster
                     (Aurora_core.Volume.find_pg (Database.volume db)
                        (Pg_id.of_int 0)))
              in
              (match donor with
              | Some (_, addr) ->
                Storage.Storage_node.request_hydration node
                  ~pg:(Pg_id.of_int 0) ~from:addr
              | None -> ());
              Sim.run_until sim (Time_ns.add (Sim.now sim) (Time_ns.sec 2));
              (match seg () with
              | Some s -> Wal.Lsn.(Storage.Segment.scl s >= target)
              | None -> false))
        in
        {
          interval;
          repair_time =
            Option.map (fun at -> Time_ns.diff at restarted_at) !healed_at;
          hydration_healed;
        })
      [ Time_ns.ms 20; Time_ns.ms 100; Time_ns.ms 500; Time_ns.sec 2 ]

  let gossip_report points =
    let r =
      Report.create ~title:"A2 (ablation): gossip cadence vs hole repair"
        ~columns:
          [ "gossip interval"; "gossip-only heal"; "hydration fallback heals" ]
    in
    List.iter
      (fun p ->
        Report.row r
          [
            Report.time p.interval;
            (match p.repair_time with
            | Some t -> Report.time t
            | None -> "lost race vs hot-log GC");
            string_of_bool p.hydration_healed;
          ])
      points;
    Report.note r
      "expected shape: fast gossip heals in about one period; slow gossip \
       loses the race against hot-log GC (peers no longer retain the \
       records), after which only bulk hydration repairs the segment -- \
       which is exactly why the design has both mechanisms";
    r
end

let run_all ?(seed = 1) () =
  let buf = Buffer.create 4096 in
  let add r = Buffer.add_string buf (Report.to_string r ^ "\n") in
  add (E1.report (E1.run ~seed ()));
  add (E2.report (E2.run ~seed:(seed + 1) ()));
  add (E3.report (E3.run ()));
  add (E4.report (E4.run ~seed:(seed + 2) ()));
  add (E5.report (E5.run ~seed:(seed + 3) ()));
  add (E6.report (E6.run ~seed:(seed + 4) ()));
  add (E7.report (E7.run ~seed:(seed + 5) ()));
  add (E8.report (E8.run ~seed:(seed + 6) ()));
  add (E9.report (E9.run ~seed:(seed + 7) ()));
  add (E10.report (E10.run ~seed:(seed + 8) ()));
  add (Ablations.hedge_report (Ablations.hedge_sweep ~seed:(seed + 9) ()));
  add (Ablations.gossip_report (Ablations.gossip_sweep ~seed:(seed + 10) ()));
  Buffer.contents buf
