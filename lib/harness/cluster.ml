open Simcore
open Quorum
module Protocol = Storage.Protocol
module Pg_id = Storage.Pg_id
module Database = Aurora_core.Database
module Replica = Aurora_core.Replica
module Volume = Aurora_core.Volume

type layout = V6 | Tiered | V3

type config = {
  seed : int;
  n_pgs : int;
  layout : layout;
  db_config : Database.config;
  storage_config : Storage.Storage_node.config;
  intra_az_latency : Distribution.t;
  inter_az_latency : Distribution.t;
  obs_sample_period : Time_ns.t;
}

let default_config =
  {
    seed = 42;
    n_pgs = 2;
    layout = V6;
    db_config = Database.default_config;
    storage_config = Storage.Storage_node.default_config;
    intra_az_latency = Distribution.lognormal ~median:(Time_ns.us 250) ~sigma:0.35;
    inter_az_latency = Distribution.lognormal ~median:(Time_ns.ms 1) ~sigma:0.35;
    obs_sample_period = Time_ns.ms 50;
  }

type node_slot = {
  mutable node : Storage.Storage_node.t;
  mutable member : Membership.member;
}

type pg_nodes = {
  mutable slots : node_slot list; (* current + in-flight replacement nodes *)
  mutable next_member_id : int;
}

type t = {
  cfg : config;
  sim : Sim.t;
  rng : Rng.t;
  net : Protocol.t Simnet.Net.t;
  s3 : Storage.S3.t;
  db : Database.t;
  obs : Obs.Ctx.t;
  pg_nodes : pg_nodes Pg_id.Tbl.t;
  az_of : Az.t Simnet.Addr.Tbl.t;
  addr_alloc : Simnet.Addr.Allocator.t;
  mutable replica_list : Replica.t list;
  mutable last_health : Obs.Health.sample option;
}

let sim t = t.sim
let net t = t.net
let db t = t.db
let s3 t = t.s3
let config t = t.cfg
let rng t = t.rng
let obs t = t.obs

let layout_members = function
  | V6 -> Layout.aurora_v6 ()
  | Tiered -> Layout.aurora_tiered ()
  | V3 -> Layout.three_copies ()

let layout_scheme = function
  | V6 -> Layout.scheme_4_of_6
  | Tiered -> Layout.scheme_tiered
  | V3 -> Layout.scheme_2_of_3

let make_storage_node_raw ~sim ~rng ~net ~s3 ~storage_config ~addr_alloc
    ~az_of ~obs ~az =
  let addr = Simnet.Addr.Allocator.take addr_alloc in
  Simnet.Addr.Tbl.replace az_of addr az;
  if Recorder.Rings.enabled () then
    Recorder.Rings.register
      ~node:(Simnet.Addr.to_int addr)
      ~role:Recorder.Event.Storage;
  Storage.Storage_node.create ~sim ~rng:(Rng.split rng) ~net ~addr ~s3
    ~config:storage_config ~obs
    ~obs_labels:[ ("az", Printf.sprintf "az%d" (Az.to_int az + 1)) ]
    ()

let make_storage_node t ~az =
  make_storage_node_raw ~sim:t.sim ~rng:t.rng ~net:t.net ~s3:t.s3
    ~storage_config:t.cfg.storage_config ~addr_alloc:t.addr_alloc
    ~az_of:t.az_of ~obs:t.obs ~az

(* ---- cluster health probe (feeds Obs.Health each sampler tick) ---- *)

let popcount =
  let rec go acc v = if v = 0 then acc else go (acc + (v land 1)) (v lsr 1) in
  fun v -> go 0 v

(* Fewest additional healthy-member losses that break [q]; -1 when [q] is
   already unsatisfiable on [healthy].  Member counts are <= ~7 even during
   membership transitions, so exhaustive subset enumeration is cheap —
   the same argument the paper makes for quorum-set safety checking. *)
let quorum_margin q healthy =
  if not (Quorum_set.satisfied q healthy) then -1
  else begin
    let arr = Array.of_seq (Member_id.Set.to_seq healthy) in
    let n = Array.length arr in
    let best = ref (n + 1) in
    for mask = 1 to (1 lsl n) - 1 do
      let c = popcount mask in
      if c < !best then begin
        let remaining = ref healthy in
        for i = 0 to n - 1 do
          if mask land (1 lsl i) <> 0 then
            remaining := Member_id.Set.remove arr.(i) !remaining
        done;
        if not (Quorum_set.satisfied q !remaining) then best := c
      end
    done;
    if !best > n then n else !best - 1
  end

(* §2.1's durability target: data survives the loss of one whole AZ plus
   one more node.  True iff, for every AZ and every single survivor beyond
   it, the read quorum is still satisfiable on what remains. *)
let az_plus_one_ok read_q slots =
  let healthy = List.filter (fun s -> Storage.Storage_node.is_alive s.node) slots in
  let azs =
    List.sort_uniq Az.compare (List.map (fun s -> s.member.Membership.az) slots)
  in
  List.for_all
    (fun az ->
      let survivors =
        List.filter (fun s -> not (Az.equal s.member.Membership.az az)) healthy
      in
      survivors <> []
      && List.for_all
           (fun x ->
             let set =
               List.fold_left
                 (fun acc s ->
                   if s == x then acc
                   else Member_id.Set.add s.member.Membership.id acc)
                 Member_id.Set.empty survivors
             in
             Quorum_set.satisfied read_q set)
           survivors)
    azs

let health_sample t ~at =
  let consistency = Database.consistency t.db in
  let volume = Database.volume t.db in
  let pgs =
    Pg_id.Tbl.fold (fun pg pgn acc -> (pg, pgn) :: acc) t.pg_nodes []
    |> List.sort (fun (a, _) (b, _) -> Pg_id.compare a b)
    |> List.map (fun (pg, pgn) ->
           let g = Volume.find_pg volume pg in
           let rule = Volume.rule g in
           let healthy =
             List.fold_left
               (fun acc s ->
                 if Storage.Storage_node.is_alive s.node then
                   Member_id.Set.add s.member.Membership.id acc
                 else acc)
               Member_id.Set.empty pgn.slots
           in
           let pgcl = Aurora_core.Consistency.pgcl consistency pg in
           let current =
             Aurora_core.Consistency.segments_at_or_above consistency ~pg ~lsn:pgcl
           in
           {
             Obs.Health.pg = Pg_id.to_int pg;
             total = List.length pgn.slots;
             reachable = Member_id.Set.cardinal healthy;
             ack_current = Member_id.Set.cardinal (Member_id.Set.inter current healthy);
             write_margin = quorum_margin rule.Quorum_set.Rule.write healthy;
             read_margin = quorum_margin rule.Quorum_set.Rule.read healthy;
             az_plus_one = az_plus_one_ok rule.Quorum_set.Rule.read pgn.slots;
             epoch = Epoch.to_int (Membership.epoch g.Volume.membership);
           })
  in
  let vdl_lsn = Database.vdl t.db in
  let vdl = Wal.Lsn.to_int vdl_lsn in
  let vcl = Wal.Lsn.to_int (Database.vcl t.db) in
  let max_lag =
    List.fold_left
      (fun acc r -> max acc (Wal.Lsn.diff vdl_lsn (Replica.vdl_seen r)))
      0 t.replica_list
  in
  {
    Obs.Health.at;
    pgs;
    volume =
      {
        Obs.Health.vdl_vcl_gap = vcl - vdl;
        commit_queue_depth = Database.commit_queue_depth t.db;
        max_replica_lag = max_lag;
      };
  }

let min_write_margin (s : Obs.Health.sample) =
  List.fold_left
    (fun acc (p : Obs.Health.pg_sample) -> min acc p.write_margin)
    max_int s.pgs
  |> fun m -> if m = max_int then 0 else m

let install_observability t =
  let reg = Obs.Ctx.registry t.obs in
  let series = Obs.Ctx.series t.obs in
  let health = Obs.Ctx.health t.obs in
  let on_last f default () =
    match t.last_health with None -> default | Some s -> f s
  in
  Obs.Registry.gauge_fn reg "health_write_available"
    (on_last
       (fun s -> if Obs.Health.sample_write_available s then 1. else 0.)
       1.);
  Obs.Registry.gauge_fn reg "health_min_write_margin"
    (on_last (fun s -> float_of_int (min_write_margin s)) 0.);
  Obs.Registry.gauge_fn reg "health_az_plus_one"
    (on_last
       (fun s ->
         if List.for_all (fun (p : Obs.Health.pg_sample) -> p.az_plus_one) s.pgs
         then 1.
         else 0.)
       1.);
  Obs.Registry.gauge_fn reg "health_vdl_vcl_gap"
    (on_last (fun s -> float_of_int s.volume.Obs.Health.vdl_vcl_gap) 0.);
  Obs.Registry.gauge_fn reg "health_commit_queue_depth" (fun () ->
      float_of_int (Database.commit_queue_depth t.db));
  Obs.Registry.gauge_fn reg "health_max_replica_lag"
    (on_last (fun s -> float_of_int s.volume.Obs.Health.max_replica_lag) 0.);
  (* Default time-series channels: throughput rates, commit-latency
     percentiles, and the health gauges just registered. *)
  Obs.Series.track_counter series "db_txns_committed";
  Obs.Series.track_counter series "db_records_written";
  Obs.Series.track_histogram series ~pct:50. "db_commit_latency_ns";
  Obs.Series.track_histogram series ~pct:99. "db_commit_latency_ns";
  Obs.Series.track_gauge series "health_write_available";
  Obs.Series.track_gauge series "health_min_write_margin";
  Obs.Series.track_gauge series "health_az_plus_one";
  Obs.Series.track_gauge series "health_vdl_vcl_gap";
  Obs.Series.track_gauge series "health_commit_queue_depth";
  Obs.Series.track_gauge series "health_max_replica_lag";
  Sim.every t.sim ~interval:t.cfg.obs_sample_period (fun () ->
      let at = Sim.now t.sim in
      let s = health_sample t ~at in
      t.last_health <- Some s;
      Obs.Health.observe health ~at s;
      Obs.Series.sample series ~at;
      true)

let create cfg =
  let sim = Sim.create () in
  let rng = Rng.create cfg.seed in
  let az_of = Simnet.Addr.Tbl.create 64 in
  let obs = Obs.Ctx.create () in
  let net =
    Simnet.Net.create ~sim ~rng:(Rng.split rng)
      ~default_latency:cfg.inter_az_latency ~obs ()
  in
  let s3 =
    Storage.S3.create ~sim
      ~latency:(Distribution.lognormal ~median:(Time_ns.ms 20) ~sigma:0.4)
      ~rng:(Rng.split rng)
  in
  let addr_alloc = Simnet.Addr.Allocator.create () in
  (* Writer lives in AZ1 (index 0). *)
  let db_addr = Simnet.Addr.Allocator.take addr_alloc in
  Simnet.Addr.Tbl.replace az_of db_addr (Az.of_int 0);
  if Recorder.Rings.enabled () then
    Recorder.Rings.register
      ~node:(Simnet.Addr.to_int db_addr)
      ~role:Recorder.Event.Writer;
  (* Flight-recorder network hook: translate wire messages into per-node
     send/receive/drop events.  Installed unconditionally — it checks the
     recorder's enable flag itself, so a disabled recorder costs one
     closure call per message phase.  Drops land on the *source* ring
     with their cause: that is how [explain] can say why a send never
     arrived. *)
  Simnet.Net.set_recorder net
    (Some
       (fun phase ~src ~dst msg ->
         if Recorder.Rings.enabled () then begin
           let at = Sim.now sim in
           let info = Protocol.describe msg in
           let kind = info.Protocol.kind
           and pg = info.Protocol.pg
           and lsn_lo = info.Protocol.lsn_lo
           and lsn_hi = info.Protocol.lsn_hi in
           match phase with
           | Simnet.Net.Sent ->
             Recorder.Rings.note ~node:(Simnet.Addr.to_int src) ~at
               (Recorder.Event.Send
                  { kind; peer = Simnet.Addr.to_int dst; pg; lsn_lo; lsn_hi })
           | Simnet.Net.Delivered ->
             Recorder.Rings.note ~node:(Simnet.Addr.to_int dst) ~at
               (Recorder.Event.Receive
                  { kind; peer = Simnet.Addr.to_int src; pg; lsn_lo; lsn_hi })
           | Simnet.Net.Dropped cause ->
             let cause =
               match cause with
               | Simnet.Net.Down -> Recorder.Event.Down
               | Simnet.Net.Blocked -> Recorder.Event.Blocked
               | Simnet.Net.Partitioned -> Recorder.Event.Partitioned
               | Simnet.Net.Random -> Recorder.Event.Random
             in
             Recorder.Rings.note ~node:(Simnet.Addr.to_int src) ~at
               (Recorder.Event.Drop
                  {
                    kind;
                    peer = Simnet.Addr.to_int dst;
                    pg;
                    lsn_lo;
                    lsn_hi;
                    cause;
                  })
         end));
  (* Latency by AZ distance. *)
  Simnet.Net.set_latency_fn net (fun a b ->
      match (Simnet.Addr.Tbl.find_opt az_of a, Simnet.Addr.Tbl.find_opt az_of b) with
      | Some za, Some zb when Az.equal za zb -> Some cfg.intra_az_latency
      | _ -> Some cfg.inter_az_latency);
  let pg_nodes = Pg_id.Tbl.create cfg.n_pgs in
  (* Build PGs: nodes + segments + membership. *)
  let scheme = layout_scheme cfg.layout in
  let volume_groups =
    List.init cfg.n_pgs (fun i ->
        let pg_id = Pg_id.of_int i in
        let members = layout_members cfg.layout in
        let slots =
          List.map
            (fun (m : Membership.member) ->
              let node =
                make_storage_node_raw ~sim ~rng ~net ~s3
                  ~storage_config:cfg.storage_config ~addr_alloc ~az_of ~obs
                  ~az:m.az
              in
              let seg =
                Storage.Segment.create ~pg:pg_id ~seg:m.id ~kind:m.kind
              in
              Storage.Storage_node.add_segment node seg;
              Storage.Storage_node.start node;
              { node; member = m })
            members
        in
        Pg_id.Tbl.replace pg_nodes pg_id
          { slots; next_member_id = List.length members };
        let membership = Membership.create ~scheme members in
        let addrs =
          List.map
            (fun slot ->
              (slot.member.Membership.id, Storage.Storage_node.addr slot.node))
            slots
        in
        (pg_id, membership, addrs))
  in
  let volume = Volume.create volume_groups in
  let db =
    Database.create ~sim ~rng:(Rng.split rng) ~net ~addr:db_addr ~volume
      ~config:cfg.db_config ~obs ()
  in
  Database.start db;
  let t =
    { cfg; sim; rng; net; s3; db; obs; pg_nodes; az_of; addr_alloc;
      replica_list = []; last_health = None }
  in
  install_observability t;
  t

let storage_nodes t =
  Pg_id.Tbl.fold
    (fun _ pgn acc -> List.map (fun s -> s.node) pgn.slots @ acc)
    t.pg_nodes []

let slot_of t pg member =
  match Pg_id.Tbl.find_opt t.pg_nodes pg with
  | None -> None
  | Some pgn ->
    List.find_opt
      (fun s -> Member_id.equal s.member.Membership.id member)
      pgn.slots

let node_of_member t pg member =
  match slot_of t pg member with Some s -> Some s.node | None -> None

let members_of_pg t pg =
  match Pg_id.Tbl.find_opt t.pg_nodes pg with
  | None -> []
  | Some pgn -> List.map (fun s -> s.member) pgn.slots

let az_of_addr t addr = Simnet.Addr.Tbl.find_opt t.az_of addr

let add_replica t =
  let addr = Simnet.Addr.Allocator.take t.addr_alloc in
  (* Replicas live in AZ2 by default: failover survives the writer's AZ. *)
  Simnet.Addr.Tbl.replace t.az_of addr (Az.of_int 1);
  if Recorder.Rings.enabled () then
    Recorder.Rings.register
      ~node:(Simnet.Addr.to_int addr)
      ~role:Recorder.Event.Replica;
  let replica =
    Replica.create ~sim:t.sim ~rng:(Rng.split t.rng) ~net:t.net ~addr
      ~volume:(Database.volume t.db) ~writer:(Database.addr t.db)
      ~config:
        {
          Replica.default_config with
          Replica.n_blocks = t.cfg.db_config.Database.n_blocks;
        }
      ~obs:t.obs ()
  in
  Replica.start replica;
  Database.attach_replica t.db addr;
  t.replica_list <- replica :: t.replica_list;
  (* Per-replica lag timeline (E9's measurement). *)
  Obs.Series.track_histogram (Obs.Ctx.series t.obs)
    ~labels:[ ("node", string_of_int (Simnet.Addr.to_int addr)) ]
    ~pct:99. "replica_stream_lag_ns";
  replica

let replicas t = t.replica_list

(* ---- faults ---- *)

let crash_storage_node t pg member =
  match node_of_member t pg member with
  | Some node -> Storage.Storage_node.crash node
  | None -> ()

let restart_storage_node t pg member =
  match node_of_member t pg member with
  | Some node ->
    Storage.Storage_node.restart node;
    Database.broadcast_membership t.db pg
  | None -> ()

let destroy_storage_node t pg member =
  match node_of_member t pg member with
  | Some node -> Storage.Storage_node.destroy node
  | None -> ()

let fail_az t az =
  Pg_id.Tbl.iter
    (fun _ pgn ->
      List.iter
        (fun s ->
          if Az.equal s.member.Membership.az az then
            Storage.Storage_node.crash s.node)
        pgn.slots)
    t.pg_nodes

let restore_az t az =
  Pg_id.Tbl.iter
    (fun pg pgn ->
      List.iter
        (fun s ->
          if Az.equal s.member.Membership.az az then begin
            Storage.Storage_node.restart s.node;
            Database.broadcast_membership t.db pg
          end)
        pgn.slots)
    t.pg_nodes

let slow_storage_node t pg member factor =
  match node_of_member t pg member with
  | Some node ->
    Simnet.Net.set_node_slowdown t.net (Storage.Storage_node.addr node) factor
  | None -> ()

(* ---- partitions (the one nemesis the node up/down faults can't model:
   everyone stays alive, but message flow between two address sets stops) ---- *)

let addr_set l = List.fold_left (fun s a -> Simnet.Addr.Set.add a s)
    Simnet.Addr.Set.empty l

let partition t side_a side_b =
  Simnet.Net.partition t.net (addr_set side_a) (addr_set side_b)

let heal t side_a side_b =
  Simnet.Net.heal_partition t.net (addr_set side_a) (addr_set side_b)

(* All process addresses the cluster knows about (writer, storage nodes,
   replicas), sorted so set construction is independent of hash order. *)
let known_addrs t =
  Simnet.Addr.Tbl.fold (fun addr _ acc -> addr :: acc) t.az_of []
  |> List.sort Simnet.Addr.compare

let az_split t az =
  List.partition
    (fun addr ->
      match Simnet.Addr.Tbl.find_opt t.az_of addr with
      | Some z -> Az.equal z az
      | None -> false)
    (known_addrs t)

let partition_az t az =
  let inside, outside = az_split t az in
  partition t inside outside

let heal_az t az =
  let inside, outside = az_split t az in
  heal t inside outside

(* ---- membership changes (Figure 5 flow) ---- *)

let start_replacement t pg ~suspect =
  match (Pg_id.Tbl.find_opt t.pg_nodes pg, slot_of t pg suspect) with
  | None, _ | _, None -> Error "unknown protection group or member"
  | Some pgn, Some suspect_slot ->
    let m_id = Member_id.of_int pgn.next_member_id in
    let replacement =
      {
        Membership.id = m_id;
        az = suspect_slot.member.Membership.az;
        kind = suspect_slot.member.Membership.kind;
      }
    in
    let node = make_storage_node t ~az:replacement.Membership.az in
    let seg =
      Storage.Segment.create ~pg ~seg:m_id ~kind:replacement.Membership.kind
    in
    Storage.Storage_node.add_segment node seg;
    Storage.Storage_node.start node;
    (match
       Database.begin_segment_replacement t.db pg ~suspect ~replacement
         ~replacement_addr:(Storage.Storage_node.addr node)
     with
    | Error e -> Error e
    | Ok () ->
      pgn.next_member_id <- pgn.next_member_id + 1;
      pgn.slots <- pgn.slots @ [ { node; member = replacement } ];
      (* Bulk hydration from a healthy peer of the same (or full) kind,
         re-requested incrementally until the newcomer has caught up with
         the group's durable point — gossip alone only patches small holes
         and cannot outrun a hot write stream. *)
      let donor () =
        List.find_opt
          (fun s ->
            (not (Member_id.equal s.member.Membership.id suspect))
            && (not (Member_id.equal s.member.Membership.id m_id))
            && Storage.Storage_node.is_alive s.node
            && (replacement.Membership.kind = Membership.Tail
               || s.member.Membership.kind = Membership.Full))
          pgn.slots
      in
      let rec hydrate_until_caught_up () =
        if Storage.Storage_node.is_alive node then begin
          (match donor () with
          | Some d ->
            Storage.Storage_node.request_hydration node ~pg
              ~from:(Storage.Storage_node.addr d.node)
          | None -> ());
          let target = Aurora_core.Consistency.pgcl (Database.consistency t.db) pg in
          let scl =
            match Storage.Storage_node.segment node pg with
            | Some seg -> Storage.Segment.scl seg
            | None -> Wal.Lsn.none
          in
          if Wal.Lsn.(scl < target) then
            ignore
              (Sim.schedule t.sim ~delay:(Time_ns.ms 50) hydrate_until_caught_up)
        end
      in
      hydrate_until_caught_up ();
      Ok m_id)

let finish_replacement t pg ~suspect =
  match Pg_id.Tbl.find_opt t.pg_nodes pg with
  | None -> Error "unknown protection group"
  | Some pgn -> (
    match Database.commit_segment_replacement t.db pg ~suspect with
    | Error e -> Error e
    | Ok () ->
      pgn.slots <-
        List.filter
          (fun s -> not (Member_id.equal s.member.Membership.id suspect))
          pgn.slots;
      Ok ())

let revert_replacement t pg ~suspect =
  match Pg_id.Tbl.find_opt t.pg_nodes pg with
  | None -> Error "unknown protection group"
  | Some pgn ->
    let g = Volume.find_pg (Database.volume t.db) pg in
    let replacement_of_suspect =
      List.find_opt
        (fun (p : Membership.pending) -> Member_id.equal p.suspect suspect)
        (Membership.pendings g.Volume.membership)
    in
    (match Database.revert_segment_replacement t.db pg ~suspect with
    | Error e -> Error e
    | Ok () ->
      (match replacement_of_suspect with
      | Some pair ->
        pgn.slots <-
          List.filter
            (fun s ->
              if Member_id.equal s.member.Membership.id pair.replacement then begin
                Storage.Storage_node.destroy s.node;
                false
              end
              else true)
            pgn.slots
      | None -> ());
      Ok ())

let replacement_caught_up t pg ~replacement =
  match node_of_member t pg replacement with
  | None -> false
  | Some node -> (
    match Storage.Storage_node.segment node pg with
    | None -> false
    | Some seg ->
      let target = Aurora_core.Consistency.pgcl (Database.consistency t.db) pg in
      Wal.Lsn.(Storage.Segment.scl seg >= target))

let grow_volume t =
  let members = layout_members t.cfg.layout in
  let slots =
    List.map
      (fun (m : Membership.member) ->
        let node = make_storage_node t ~az:m.az in
        (m, node))
      members
  in
  let membership = Membership.create ~scheme:(layout_scheme t.cfg.layout) members in
  let addrs =
    List.map (fun (m, node) -> (m.Membership.id, Storage.Storage_node.addr node)) slots
  in
  let g =
    Volume.grow (Database.volume t.db)
      ~new_blocks_from:
        (Wal.Block_id.of_int t.cfg.db_config.Database.n_blocks)
      membership addrs
  in
  let pg_id = g.Volume.id in
  List.iter
    (fun ((m : Membership.member), node) ->
      Storage.Storage_node.add_segment node
        (Storage.Segment.create ~pg:pg_id ~seg:m.Membership.id ~kind:m.Membership.kind);
      Storage.Storage_node.start node)
    slots;
  Pg_id.Tbl.replace t.pg_nodes pg_id
    {
      slots = List.map (fun (m, node) -> { node; member = m }) slots;
      next_member_id = List.length members;
    };
  Aurora_core.Consistency.register_pg (Database.consistency t.db) pg_id
    ~write_quorum:(Volume.rule g).Quorum.Quorum_set.Rule.write;
  Database.broadcast_membership t.db pg_id;
  pg_id

let change_scheme_3_of_4 t pg ~drop_az =
  match Pg_id.Tbl.find_opt t.pg_nodes pg with
  | None -> Error "unknown protection group"
  | Some pgn -> (
    let survivors =
      List.filter
        (fun s -> not (Az.equal s.member.Membership.az drop_az))
        pgn.slots
    in
    if List.length survivors <> 4 then
      Error "expected exactly four members outside the lost AZ"
    else begin
      let g = Volume.find_pg (Database.volume t.db) pg in
      match
        Membership.change_scheme g.Volume.membership
          ~scheme:Layout.scheme_3_of_4
          (List.map (fun s -> s.member) survivors)
      with
      | Error _ as e -> e
      | Ok m ->
        g.Volume.membership <- m;
        g.Volume.addr_of <-
          List.fold_left
            (fun acc s ->
              Member_id.Map.add s.member.Membership.id
                (Storage.Storage_node.addr s.node) acc)
            Member_id.Map.empty survivors;
        pgn.slots <- survivors;
        Aurora_core.Consistency.set_write_quorum (Database.consistency t.db) pg
          (Volume.rule g).Quorum.Quorum_set.Rule.write;
        Database.broadcast_membership t.db pg;
        Ok ()
    end)

let last_health t = t.last_health
let run_for t span = Sim.run_until t.sim (Time_ns.add (Sim.now t.sim) span)
let run_until_quiesced t = Sim.run t.sim
