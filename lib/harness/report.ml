type t = {
  title : string;
  columns : string list;
  mutable rows : string list list;
  mutable notes : string list;
  mutable subtables : t list;
}

let create ~title ~columns =
  { title; columns; rows = []; notes = []; subtables = [] }

let row t cells = t.rows <- cells :: t.rows
let note t s = t.notes <- s :: t.notes
let add_subtable t sub = t.subtables <- sub :: t.subtables

let rec to_string t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let width i =
    List.fold_left
      (fun acc r ->
        match List.nth_opt r i with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init ncols width in
  let render_row r =
    String.concat "  "
      (List.mapi
         (fun i cell ->
           let w = List.nth widths i in
           cell ^ String.make (max 0 (w - String.length cell)) ' ')
         r)
  in
  let sep =
    String.concat "  "
      (List.map (fun w -> String.make w '-') widths)
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (render_row t.columns ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (render_row r ^ "\n")) rows;
  List.iter
    (fun n -> Buffer.add_string buf ("  " ^ n ^ "\n"))
    (List.rev t.notes);
  List.iter
    (fun sub -> Buffer.add_string buf ("\n" ^ to_string sub))
    (List.rev t.subtables);
  Buffer.contents buf

let print t = print_string (to_string t)
let f2 x = Printf.sprintf "%.2f" x
let f4 x = Printf.sprintf "%.4f" x
let pct x = Printf.sprintf "%.4f%%" (100. *. x)

let ns x =
  if x < 1e3 then Printf.sprintf "%.0fns" x
  else if x < 1e6 then Printf.sprintf "%.1fus" (x /. 1e3)
  else if x < 1e9 then Printf.sprintf "%.2fms" (x /. 1e6)
  else Printf.sprintf "%.3fs" (x /. 1e9)

let time t = Simcore.Time_ns.to_string t
