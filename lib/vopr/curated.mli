(** The curated scenario tables: the §4 membership dance (commit and revert
    paths), §2.1 AZ-outage tolerance, §2.4 crash recovery (triggered by an
    LSN watermark), §3.1 gray nodes plus volume growth, a partition landing
    mid-replacement, the §4.1 scheme change under an extended AZ outage,
    and replica reads across a writer crash.

    Every table asserts liveness/health expectations at explicit points and
    runs under the full {!Checker} invariant set; the swarm sweeps each of
    them across seeds. *)

val all : Scenario.t list
(** In documentation order; names are unique. *)

val find : string -> Scenario.t option
(** Look up by {!Scenario.t.name}. *)

val names : string list
