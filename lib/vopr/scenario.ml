type trigger =
  | At of Simcore.Time_ns.t
  | At_lsn of int

type action =
  | Noop
  | Crash_node of int * int
  | Restart_node of int * int
  | Destroy_node of int * int
  | Slow_node of int * int * float
  | Fail_az of int
  | Restore_az of int
  | Partition_az of int
  | Heal_az of int
  | Start_replacement of int * int
  | Finish_replacement of int * int
  | Finish_when_caught_up of int * int
  | Revert_replacement of int * int
  | Grow_volume
  | Change_scheme_3_of_4 of int * int
  | Crash_writer
  | Recover_writer

type expectation =
  | Write_available of bool
  | Az_plus_one of bool
  | Writer_open of bool
  | Commits_progressing
  | Epoch_at_least of int * int
  | Caught_up of int * int

type step = {
  trigger : trigger;
  action : action;
  expect : expectation list;
}

type t = {
  name : string;
  n_pgs : int;
  layout : Harness.Cluster.layout;
  replicas : int;
  rate : float;
  duration_ms : int;
  quiesce_ms : int;
  recorder_depth : int;
  steps : step list;
}

(* ---- combinators ---- *)

let at_ms ms = At (Simcore.Time_ns.ms ms)
let at_lsn lsn = At_lsn lsn
let step ?(expect = []) trigger action = { trigger; action; expect }

let make ~name ?(n_pgs = 1) ?(layout = Harness.Cluster.V6) ?(replicas = 0)
    ?(rate = 1500.) ?(duration_ms = 1500) ?(quiesce_ms = 1500)
    ?(recorder_depth = Recorder.Rings.default_depth) steps =
  {
    name;
    n_pgs;
    layout;
    replicas;
    rate;
    duration_ms;
    quiesce_ms;
    recorder_depth;
    steps;
  }

(* ---- printer ---- *)

(* Rates and slow-down factors print with %g: every value the combinators
   and the nemesis generator produce (integral or short decimal) survives
   the float -> text -> float trip, which is all round-tripping promises. *)
let float_str f = Printf.sprintf "%g" f
let bool_str b = if b then "true" else "false"

let layout_str = function
  | Harness.Cluster.V6 -> "v6"
  | Harness.Cluster.Tiered -> "tiered"
  | Harness.Cluster.V3 -> "v3"

let trigger_str = function
  | At t -> Printf.sprintf "at=%dms" (t / 1_000_000)
  | At_lsn lsn -> Printf.sprintf "at_lsn=%d" lsn

let action_str = function
  | Noop -> "noop"
  | Crash_node (pg, m) -> Printf.sprintf "crash_node pg=%d m=%d" pg m
  | Restart_node (pg, m) -> Printf.sprintf "restart_node pg=%d m=%d" pg m
  | Destroy_node (pg, m) -> Printf.sprintf "destroy_node pg=%d m=%d" pg m
  | Slow_node (pg, m, f) ->
    Printf.sprintf "slow_node pg=%d m=%d factor=%s" pg m (float_str f)
  | Fail_az az -> Printf.sprintf "fail_az az=%d" az
  | Restore_az az -> Printf.sprintf "restore_az az=%d" az
  | Partition_az az -> Printf.sprintf "partition_az az=%d" az
  | Heal_az az -> Printf.sprintf "heal_az az=%d" az
  | Start_replacement (pg, m) -> Printf.sprintf "start_replace pg=%d m=%d" pg m
  | Finish_replacement (pg, m) ->
    Printf.sprintf "finish_replace pg=%d m=%d" pg m
  | Finish_when_caught_up (pg, m) ->
    Printf.sprintf "finish_when_caught_up pg=%d m=%d" pg m
  | Revert_replacement (pg, m) ->
    Printf.sprintf "revert_replace pg=%d m=%d" pg m
  | Grow_volume -> "grow"
  | Change_scheme_3_of_4 (pg, az) ->
    Printf.sprintf "scheme_3_of_4 pg=%d drop_az=%d" pg az
  | Crash_writer -> "crash_writer"
  | Recover_writer -> "recover_writer"

let expect_str = function
  | Write_available b -> Printf.sprintf "write_available=%s" (bool_str b)
  | Az_plus_one b -> Printf.sprintf "az_plus_one=%s" (bool_str b)
  | Writer_open b -> Printf.sprintf "writer_open=%s" (bool_str b)
  | Commits_progressing -> "commits_progressing"
  | Epoch_at_least (pg, e) -> Printf.sprintf "epoch pg=%d min=%d" pg e
  | Caught_up (pg, m) -> Printf.sprintf "caught_up pg=%d m=%d" pg m

let step_str st =
  let buf = Buffer.create 64 in
  Buffer.add_string buf "step ";
  Buffer.add_string buf (trigger_str st.trigger);
  Buffer.add_char buf ' ';
  Buffer.add_string buf (action_str st.action);
  List.iter
    (fun e ->
      Buffer.add_string buf " expect ";
      Buffer.add_string buf (expect_str e))
    st.expect;
  Buffer.contents buf

let to_string t =
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line "scenario %s" t.name;
  line "pgs %d" t.n_pgs;
  line "layout %s" (layout_str t.layout);
  line "replicas %d" t.replicas;
  line "rate %s" (float_str t.rate);
  line "duration_ms %d" t.duration_ms;
  line "quiesce_ms %d" t.quiesce_ms;
  line "recorder_depth %d" t.recorder_depth;
  List.iter (fun st -> line "%s" (step_str st)) t.steps;
  Buffer.contents buf

(* ---- parser ---- *)

(* Line-oriented recursive descent in the Obs.Json style: a cursor over the
   token list of one line, [fail] carrying the 1-based line number.  Header
   directives fill a mutable draft; [step] lines parse trigger, action name,
   the action's k=v arguments, then any number of [expect <spec>] tails. *)

exception Parse_error of string

let of_string src =
  let failf lineno fmt =
    Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "line %d: %s" lineno m))) fmt
  in
  let tokens line =
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun t -> t <> "")
  in
  (* k=v argument lists: every action/expectation argument is named, so a
     spec reads the same regardless of argument order. *)
  let split_kv tok =
    match String.index_opt tok '=' with
    | None -> None
    | Some i ->
      Some
        ( String.sub tok 0 i,
          String.sub tok (i + 1) (String.length tok - i - 1) )
  in
  let int_of lineno what v =
    match int_of_string_opt v with
    | Some i -> i
    | None -> failf lineno "%s: expected an integer, got %S" what v
  in
  let float_of lineno what v =
    match float_of_string_opt v with
    | Some f -> f
    | None -> failf lineno "%s: expected a number, got %S" what v
  in
  let bool_of lineno what v =
    match v with
    | "true" -> true
    | "false" -> false
    | _ -> failf lineno "%s: expected true or false, got %S" what v
  in
  let arg lineno args key =
    match List.assoc_opt key args with
    | Some v -> v
    | None -> failf lineno "missing argument %s=" key
  in
  let int_arg lineno args key = int_of lineno key (arg lineno args key) in
  let float_arg lineno args key = float_of lineno key (arg lineno args key) in
  (* Collect the k=v tokens following a verb, stopping at "expect" (which
     starts the next clause); returns the args and the rest of the line. *)
  let rec take_args lineno acc = function
    | [] -> (List.rev acc, [])
    | "expect" :: rest -> (List.rev acc, "expect" :: rest)
    | tok :: rest -> (
      match split_kv tok with
      | Some (k, v) -> take_args lineno ((k, v) :: acc) rest
      | None -> failf lineno "expected key=value or expect, got %S" tok)
  in
  let parse_trigger lineno tok =
    match split_kv tok with
    | Some ("at", v) ->
      let v =
        if String.length v > 2 && String.sub v (String.length v - 2) 2 = "ms"
        then String.sub v 0 (String.length v - 2)
        else failf lineno "at=: expected a duration like 500ms, got %S" v
      in
      At (Simcore.Time_ns.ms (int_of lineno "at" v))
    | Some ("at_lsn", v) -> At_lsn (int_of lineno "at_lsn" v)
    | _ -> failf lineno "expected at=<N>ms or at_lsn=<N>, got %S" tok
  in
  let parse_action lineno verb args =
    let pg_m ctor = ctor (int_arg lineno args "pg") (int_arg lineno args "m") in
    match verb with
    | "noop" -> Noop
    | "crash_node" -> pg_m (fun p m -> Crash_node (p, m))
    | "restart_node" -> pg_m (fun p m -> Restart_node (p, m))
    | "destroy_node" -> pg_m (fun p m -> Destroy_node (p, m))
    | "slow_node" ->
      Slow_node
        ( int_arg lineno args "pg",
          int_arg lineno args "m",
          float_arg lineno args "factor" )
    | "fail_az" -> Fail_az (int_arg lineno args "az")
    | "restore_az" -> Restore_az (int_arg lineno args "az")
    | "partition_az" -> Partition_az (int_arg lineno args "az")
    | "heal_az" -> Heal_az (int_arg lineno args "az")
    | "start_replace" -> pg_m (fun p m -> Start_replacement (p, m))
    | "finish_replace" -> pg_m (fun p m -> Finish_replacement (p, m))
    | "finish_when_caught_up" -> pg_m (fun p m -> Finish_when_caught_up (p, m))
    | "revert_replace" -> pg_m (fun p m -> Revert_replacement (p, m))
    | "grow" -> Grow_volume
    | "scheme_3_of_4" ->
      Change_scheme_3_of_4
        (int_arg lineno args "pg", int_arg lineno args "drop_az")
    | "crash_writer" -> Crash_writer
    | "recover_writer" -> Recover_writer
    | v -> failf lineno "unknown action %S" v
  in
  let parse_expect lineno spec args =
    match split_kv spec with
    | Some ("write_available", v) ->
      Write_available (bool_of lineno "write_available" v)
    | Some ("az_plus_one", v) -> Az_plus_one (bool_of lineno "az_plus_one" v)
    | Some ("writer_open", v) -> Writer_open (bool_of lineno "writer_open" v)
    | None when spec = "commits_progressing" -> Commits_progressing
    | None when spec = "epoch" ->
      Epoch_at_least (int_arg lineno args "pg", int_arg lineno args "min")
    | None when spec = "caught_up" ->
      Caught_up (int_arg lineno args "pg", int_arg lineno args "m")
    | _ -> failf lineno "unknown expectation %S" spec
  in
  (* expect clauses: "expect <spec> [k=v ...]", possibly repeated. *)
  let rec parse_expects lineno acc = function
    | [] -> List.rev acc
    | "expect" :: rest -> (
      match rest with
      | [] -> failf lineno "expect: missing specification"
      | spec :: rest ->
        let args, rest = take_args lineno [] rest in
        parse_expects lineno (parse_expect lineno spec args :: acc) rest)
    | tok :: _ -> failf lineno "expected expect, got %S" tok
  in
  let parse_step lineno = function
    | [] -> failf lineno "step: missing trigger"
    | trig :: rest ->
      let trigger = parse_trigger lineno trig in
      (match rest with
      | [] -> failf lineno "step: missing action"
      | verb :: rest ->
        let args, rest = take_args lineno [] rest in
        let action = parse_action lineno verb args in
        let expect = parse_expects lineno [] rest in
        { trigger; action; expect })
  in
  let name = ref None in
  let n_pgs = ref 1 in
  let layout = ref Harness.Cluster.V6 in
  let replicas = ref 0 in
  let rate = ref 1500. in
  let duration_ms = ref 1500 in
  let quiesce_ms = ref 1500 in
  let recorder_depth = ref Recorder.Rings.default_depth in
  let steps = ref [] in
  let saw_step = ref false in
  let header lineno set =
    if !saw_step then failf lineno "header directive after the first step"
    else set ()
  in
  let directive lineno = function
    | [] -> ()
    | "step" :: rest ->
      saw_step := true;
      steps := parse_step lineno rest :: !steps
    | [ "scenario"; v ] -> header lineno (fun () -> name := Some v)
    | [ "pgs"; v ] -> header lineno (fun () -> n_pgs := int_of lineno "pgs" v)
    | [ "layout"; v ] ->
      header lineno (fun () ->
          layout :=
            match v with
            | "v6" -> Harness.Cluster.V6
            | "tiered" -> Harness.Cluster.Tiered
            | "v3" -> Harness.Cluster.V3
            | _ -> failf lineno "layout: expected v6, tiered or v3, got %S" v)
    | [ "replicas"; v ] ->
      header lineno (fun () -> replicas := int_of lineno "replicas" v)
    | [ "rate"; v ] -> header lineno (fun () -> rate := float_of lineno "rate" v)
    | [ "duration_ms"; v ] ->
      header lineno (fun () -> duration_ms := int_of lineno "duration_ms" v)
    | [ "quiesce_ms"; v ] ->
      header lineno (fun () -> quiesce_ms := int_of lineno "quiesce_ms" v)
    | [ "recorder_depth"; v ] ->
      header lineno (fun () ->
          let d = int_of lineno "recorder_depth" v in
          if d < Recorder.Rings.min_depth || d > Recorder.Rings.max_depth then
            failf lineno "recorder_depth: %d outside %d..%d" d
              Recorder.Rings.min_depth Recorder.Rings.max_depth
          else recorder_depth := d)
    | tok :: _ -> failf lineno "unknown directive %S" tok
  in
  match
    String.split_on_char '\n' src
    |> List.iteri (fun i line ->
           let line =
             match String.index_opt line '#' with
             | Some j -> String.sub line 0 j
             | None -> line
           in
           directive (i + 1) (tokens line))
  with
  | () -> (
    match !name with
    | None -> Error "missing scenario <name> directive"
    | Some name ->
      Ok
        {
          name;
          n_pgs = !n_pgs;
          layout = !layout;
          replicas = !replicas;
          rate = !rate;
          duration_ms = !duration_ms;
          quiesce_ms = !quiesce_ms;
          recorder_depth = !recorder_depth;
          steps = List.rev !steps;
        })
  | exception Parse_error msg -> Error msg
