open Simcore
open Scenario

type config = {
  seeds : int;
  first_seed : int;
  scenarios : Scenario.t list;
  nemesis : bool;
}

type failure = {
  seed : int;
  scenario : Scenario.t;
  shrunk : Scenario.t;
  outcome : Runner.outcome;
}

type result = {
  runs : int;
  failures : failure list;
}

(* ---- nemesis generation ---- *)

(* One fault family per disjoint window, always paired with its undo inside
   the window, so the cluster is whole (modulo completed replacements) when
   the final assertion fires.  Destruction is capped at two segments per PG:
   any record written under 4/6 lands on >= 4 members, so after losing two
   the read quorum still intersects every write set and recovery cannot lose
   acknowledged commits — staying inside the scheme's safety envelope is
   what makes "zero violations expected" a meaningful swarm verdict. *)
let generate ~seed =
  (* Decorrelate from the runner's RNG tree, which is seeded with [seed]
     itself: the schedule and the run draw from different streams. *)
  let rng = Rng.create ((seed * 2) + 1) in
  let duration_ms = 1000 + Rng.int rng 500 in
  let n_pgs = 1 + Rng.int rng 2 in
  let replicas = Rng.int rng 2 in
  let rate = 1000. +. float_of_int (100 * Rng.int rng 10) in
  let windows = 2 + Rng.int rng 3 in
  let first_fault = 250 in
  let width = (duration_ms - first_fault) / windows in
  let destroyed = Array.make n_pgs 0 in
  let window i =
    let w0 = first_fault + (i * width) in
    let mid = w0 + (width / 2) in
    let pg = Rng.int rng n_pgs in
    let pick = Rng.int rng 6 in
    let crash_restart () =
      let m = Rng.int rng 6 in
      [
        step (at_ms w0) (Crash_node (pg, m));
        step (at_ms mid) (Restart_node (pg, m));
      ]
    in
    match pick with
    | 0 -> crash_restart ()
    | 1 ->
      let az = 1 + Rng.int rng 3 in
      [ step (at_ms w0) (Fail_az az); step (at_ms mid) (Restore_az az) ]
    | 2 ->
      let m = Rng.int rng 6 in
      let factor = float_of_int (5 + Rng.int rng 45) in
      [
        step (at_ms w0) (Slow_node (pg, m, factor));
        step (at_ms (w0 + width - 30)) (Slow_node (pg, m, 1.));
      ]
    | 3 ->
      (* AZ 2 or 3: partitioning the writer's AZ just stalls everything,
         which drowns the more interesting interleavings. *)
      let az = 2 + Rng.int rng 2 in
      [ step (at_ms w0) (Partition_az az); step (at_ms mid) (Heal_az az) ]
    | 4 when destroyed.(pg) < 2 ->
      destroyed.(pg) <- destroyed.(pg) + 1;
      let m = Rng.int rng 6 in
      [
        step (at_ms w0) (Destroy_node (pg, m));
        step (at_ms (w0 + 40)) (Start_replacement (pg, m));
        step (at_ms (w0 + 80)) (Finish_when_caught_up (pg, m));
      ]
    | 4 -> crash_restart ()
    | _ ->
      if Rng.bool rng then
        [
          step (at_ms w0) Crash_writer;
          step (at_ms (w0 + 100)) Recover_writer;
        ]
      else begin
        (* Figure 5 revert edge: the suspect crashes, a replacement is
           provisioned, the suspect returns, the change rolls back. *)
        let m = Rng.int rng 6 in
        [
          step (at_ms w0) (Crash_node (pg, m));
          step (at_ms (w0 + 40)) (Start_replacement (pg, m));
          step (at_ms (w0 + 100)) (Restart_node (pg, m));
          step (at_ms (w0 + 140)) (Revert_replacement (pg, m));
        ]
      end
  in
  let steps =
    List.concat_map window (List.init windows (fun i -> i))
    @ [
        step
          (at_ms (duration_ms + 900))
          Noop
          ~expect:[ Writer_open true; Write_available true ];
      ]
  in
  make
    ~name:(Printf.sprintf "nemesis-%d" seed)
    ~n_pgs ~replicas ~rate ~duration_ms ~quiesce_ms:1500 steps

(* ---- the sweep ---- *)

let run ?progress cfg =
  let scenarios = Array.of_list cfg.scenarios in
  let per_seed =
    (if Array.length scenarios > 0 then 1 else 0)
    + if cfg.nemesis then 1 else 0
  in
  let total = cfg.seeds * per_seed in
  let count = ref 0 in
  let failures = ref [] in
  let run_one scenario seed =
    let outcome = Runner.run ~seed scenario in
    incr count;
    (match progress with Some f -> f ~done_:!count ~total | None -> ());
    if Runner.failed outcome then begin
      let shrunk, outcome =
        match Shrink.minimize ~run:(fun sc -> Runner.run ~seed sc) scenario with
        | Some (shrunk, o) -> (shrunk, o)
        | None ->
          (* Non-reproducible on replay would mean nondeterminism — report
             the original rather than hide it. *)
          (scenario, outcome)
      in
      failures := { seed; scenario; shrunk; outcome } :: !failures
    end
  in
  for i = 0 to cfg.seeds - 1 do
    let seed = cfg.first_seed + i in
    if Array.length scenarios > 0 then
      run_one scenarios.(i mod Array.length scenarios) seed;
    if cfg.nemesis then run_one (generate ~seed) seed
  done;
  { runs = !count; failures = List.rev !failures }
