open Scenario

(* Timings leave generous settle room: horizon-extending assertion steps
   sit well past the last fault so hydration / recovery / restored nodes
   have caught up, keeping the tables seed-robust. *)

let membership_dance =
  make ~name:"membership-dance" ~rate:2000. ~duration_ms:1500
    [
      step (at_ms 300)
        (Start_replacement (0, 5))
        ~expect:[ Epoch_at_least (0, 2); Write_available true ];
      (* I/O must keep flowing while the dual-quorum epoch is in force. *)
      step (at_ms 340) Noop ~expect:[ Commits_progressing ];
      step (at_ms 400) (Finish_when_caught_up (0, 5));
      step (at_ms 2500) Noop
        ~expect:
          [ Epoch_at_least (0, 3); Write_available true; Az_plus_one true ];
    ]

let membership_revert =
  make ~name:"membership-revert" ~rate:2000. ~duration_ms:1500
    [
      (* A gray node draws suspicion; it recovers before the change
         commits, so the change rolls back (Figure 5 revert edge). *)
      step (at_ms 300) (Slow_node (0, 4, 30.));
      step (at_ms 400)
        (Start_replacement (0, 4))
        ~expect:[ Epoch_at_least (0, 2) ];
      step (at_ms 700) (Slow_node (0, 4, 1.));
      step (at_ms 800)
        (Revert_replacement (0, 4))
        ~expect:[ Epoch_at_least (0, 3) ];
      step (at_ms 2300) Noop
        ~expect:[ Write_available true; Commits_progressing ];
    ]

let az_outage =
  make ~name:"az-outage-az-plus-one" ~n_pgs:2 ~replicas:1 ~rate:1500.
    ~duration_ms:1500
    [
      (* Losing a whole AZ leaves 4/6: writes stay available but the AZ+1
         read target is gone until the AZ returns (§2.1). *)
      step (at_ms 300) (Fail_az 3)
        ~expect:[ Write_available true; Az_plus_one false ];
      step (at_ms 360) Noop ~expect:[ Commits_progressing ];
      step (at_ms 900) (Restore_az 3);
      step (at_ms 2400) Noop
        ~expect:[ Write_available true; Az_plus_one true ];
    ]

let writer_crash_recovery =
  make ~name:"writer-crash-recovery" ~rate:2000. ~duration_ms:1500
    [
      (* Crash on a volume watermark rather than a clock tick: the ragged
         edge lands mid-commit wherever LSN 400 falls (§2.4). *)
      step (at_lsn 400) Crash_writer;
      step (at_ms 800) Recover_writer;
      step (at_ms 2300) Noop
        ~expect:
          [ Writer_open true; Write_available true; Commits_progressing ];
    ]

let gray_node_grow =
  make ~name:"gray-node-grow" ~rate:1500. ~duration_ms:1500
    [
      (* A 50x slow node must be masked by the 4/6 quorum (§3.1), and
         volume growth (§4.1) proceeds under the degradation. *)
      step (at_ms 300) (Slow_node (0, 2, 50.)) ~expect:[ Write_available true ];
      step (at_ms 600) Noop ~expect:[ Commits_progressing ];
      step (at_ms 900) Grow_volume;
      step (at_ms 1100) (Slow_node (0, 2, 1.));
      step (at_ms 2300) Noop
        ~expect:[ Write_available true; Az_plus_one true ];
    ]

let partition_during_replacement =
  make ~name:"partition-during-replacement" ~rate:1500. ~duration_ms:1500
    [
      step (at_ms 250) (Destroy_node (0, 5));
      step (at_ms 350)
        (Start_replacement (0, 5))
        ~expect:[ Epoch_at_least (0, 2) ];
      (* Partition an unrelated AZ while the membership epoch is in
         flight: commits stall (3 reachable of the old roster) but nothing
         may break; heal, then let the dance finish. *)
      step (at_ms 450) (Partition_az 2);
      step (at_ms 600) Noop ~expect:[ Writer_open true ];
      step (at_ms 750) (Heal_az 2);
      step (at_ms 800) (Finish_when_caught_up (0, 5));
      step (at_ms 2600) Noop
        ~expect:
          [ Epoch_at_least (0, 3); Write_available true; Commits_progressing ];
    ]

let scheme_change =
  make ~name:"scheme-change-3-of-4" ~rate:1500. ~duration_ms:1500
    [
      step (at_ms 300) (Fail_az 3) ~expect:[ Write_available true ];
      (* §4.1: an AZ outage expected to last re-forms the group 3/4 on the
         surviving AZs, restoring write fault-tolerance. *)
      step (at_ms 500)
        (Change_scheme_3_of_4 (0, 3))
        ~expect:[ Epoch_at_least (0, 2); Write_available true ];
      step (at_ms 650) Noop ~expect:[ Commits_progressing ];
      step (at_ms 2300) Noop ~expect:[ Write_available true ];
    ]

let replica_reads_across_crash =
  make ~name:"replica-reads-across-crash" ~replicas:2 ~rate:1500.
    ~duration_ms:1500
    [
      (* Two replicas keep serving monotone reads while the writer crashes
         and recovers; the probe checkers do the asserting. *)
      step (at_lsn 300) Crash_writer;
      step (at_ms 700) Recover_writer;
      step (at_ms 2300) Noop
        ~expect:[ Writer_open true; Write_available true ];
    ]

let all =
  [
    membership_dance;
    membership_revert;
    az_outage;
    writer_crash_recovery;
    gray_node_grow;
    partition_during_replacement;
    scheme_change;
    replica_reads_across_crash;
  ]

let find name = List.find_opt (fun sc -> String.equal sc.name name) all
let names = List.map (fun sc -> sc.name) all
