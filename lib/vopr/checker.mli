(** Semantic invariant checkers running continuously against a live
    {!Harness.Cluster}.

    The checker installs two periodic activities on the cluster's simulated
    clock:

    - a {e watch} tick asserting structural invariants from observed state:
      VCL/VDL never regress while the writer stays open, a recovered writer
      reopens with VCL at or above every durable point previously observed
      (no acknowledged-commit loss), VDL <= VCL, every live segment's
      PGMRPL GC floor stays at or below the writer's VDL, per-PG membership
      epochs are monotone, and each {!Obs.Health} sample is internally
      consistent (ack-current <= reachable <= roster, margins >= -1,
      non-negative volume gaps);
    - a {e probe} session issuing its own tiny transactions on a private
      key: writer reads must return a sequence number at least the highest
      acknowledged probe write at issue time (read-your-writes across
      crashes), and each replica's reads must be monotone in that sequence
      (monotone replica reads, §3.2-3.4).

    Read {e errors} are never violations — unavailability is a liveness
    matter; the checkers only police safety.  Violations accumulate in
    occurrence order; per checker id, details are kept for the first few
    occurrences and counted beyond that, so a persistent breach cannot
    swamp the report. *)

type violation = {
  checker : string;  (** Stable id, e.g. ["vcl-monotone"]. *)
  at : Simcore.Time_ns.t;
  detail : string;
}

type t

val create :
  cluster:Harness.Cluster.t ->
  ?gen:Workload.Txn_gen.t ->
  ?watch_interval:Simcore.Time_ns.t ->
  ?probe_interval:Simcore.Time_ns.t ->
  unit ->
  t
(** Install the watch tick (default 5 ms) and probe session (default
    25 ms) on the cluster's sim.  [gen], when given, is the workload
    generator whose acked-write oracle the quiesce audit replays. *)

val note : t -> checker:string -> detail:string -> unit
(** Record an externally detected violation (the runner uses this for step
    expectation failures). *)

val quiesce_audit : t -> unit
(** Schedule the end-of-run audit: re-read every key the workload ever
    acknowledged a write for (the visible value must be the last acked
    write or a later in-doubt one), plus a final probe read.  Run the sim
    for a settle period afterwards so the reads complete. *)

val stop : t -> unit
(** Tear down the periodic activities (they unschedule on the next tick). *)

val violations : t -> violation list
(** Recorded violations, in occurrence order. *)

val total : t -> int
(** Total violations including occurrences suppressed past the per-checker
    detail cap. *)
