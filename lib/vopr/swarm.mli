(** Seed-swarm driver: sweep scenarios across many RNG seeds, optionally
    interleaving randomized nemesis schedules, shrink failures, and report
    exactly-reproducible repro pairs.

    Seed [s] runs curated scenario [s mod n] (so a 1000-seed sweep covers
    every table at ~125 distinct seeds each) and, when [nemesis] is set,
    additionally a schedule generated from [s] by {!generate}.  A failing
    run is immediately re-run through {!Shrink.minimize} at the same seed;
    the failure record carries both the original and the 1-minimal table.

    Nemesis schedules are drawn from a safety envelope: faults come in
    paired do/undo windows that never overlap (crash+restart, AZ
    fail+restore, slow+unslow, partition+heal, writer crash+recover) and
    the Figure 5 dances cap permanent segment destruction at two per
    protection group, so the 4/6-write / 3/6-read scheme always retains a
    read quorum and every run must end recovered — which the generated
    final step asserts ([writer_open] and [write_available]). *)

type config = {
  seeds : int;  (** Number of seeds to sweep. *)
  first_seed : int;
  scenarios : Scenario.t list;  (** Typically {!Curated.all}. *)
  nemesis : bool;  (** Also run one generated schedule per seed. *)
}

type failure = {
  seed : int;
  scenario : Scenario.t;  (** As originally run. *)
  shrunk : Scenario.t;  (** 1-minimal failing table (same seed). *)
  outcome : Runner.outcome;  (** Of the shrunk table. *)
}

type result = {
  runs : int;
  failures : failure list;  (** In discovery order. *)
}

val generate : seed:int -> Scenario.t
(** The deterministic nemesis schedule for a seed (named
    ["nemesis-<seed>"]).  Replaying it does not require the generator: the
    swarm prints the table itself, and [Runner.run ~seed (generate ~seed)]
    equals running the printed table at that seed. *)

val run : ?progress:(done_:int -> total:int -> unit) -> config -> result
(** [progress] is called after every completed run (shrink re-runs not
    counted). *)
