let drop_nth steps n = List.filteri (fun i _ -> i <> n) steps

(* The checker ids that make an outcome a failure — the failure's
   fingerprint.  A candidate deletion only counts as "still failing" if it
   reproduces one of these: deleting an undo step (a restart, a heal)
   trivially manufactures *new* expectation failures, which would otherwise
   hijack the shrink away from the bug being minimized. *)
let checker_ids (o : Runner.outcome) =
  List.sort_uniq String.compare
    (List.map (fun (v : Checker.violation) -> v.Checker.checker) o.violations)

let same_failure ~fingerprint (o : Runner.outcome) =
  Runner.failed o
  && List.exists (fun id -> List.mem id fingerprint) (checker_ids o)

let minimize ~run (sc : Scenario.t) =
  let outcome = run sc in
  if not (Runner.failed outcome) then None
  else begin
    let fingerprint = checker_ids outcome in
    let best = ref (sc, outcome) in
    let progress = ref true in
    while !progress do
      progress := false;
      let current, _ = !best in
      let n = List.length current.Scenario.steps in
      (* First single deletion that still fails wins this round; restart
         the scan from the smaller scenario. *)
      let rec try_from i =
        if i < n && not !progress then begin
          let candidate =
            { current with Scenario.steps = drop_nth current.Scenario.steps i }
          in
          let o = run candidate in
          if same_failure ~fingerprint o then begin
            best := (candidate, o);
            progress := true
          end
          else try_from (i + 1)
        end
      in
      if n > 0 then try_from 0
    done;
    Some !best
  end
