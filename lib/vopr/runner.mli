(** Execute one {!Scenario} at one seed and collect the verdict.

    A run builds a fresh {!Harness.Cluster} seeded from [seed], starts the
    scenario's open-loop workload and a {!Checker}, schedules every step
    ([At] on the sim clock, [At_lsn] via a 1 ms VCL poll), runs to the
    horizon (workload duration or last timed step, whichever is later) plus
    the quiesce window, then replays the durability oracle.

    Step expectations are evaluated synchronously after the step's action;
    a failed expectation is recorded as an ["expectation"] checker
    violation.  Action {e errors} (unknown member, membership-change
    precondition failures, a recovery that reports an error) are collected
    separately in [action_errors]: they never fail a run by themselves —
    only checker violations do — but they appear in the digest so a repro
    shows exactly what the scenario did.

    Everything is deterministic: the same scenario at the same seed yields
    a byte-identical {!digest}. *)

type outcome = {
  scenario : string;
  seed : int;
  violations : Checker.violation list;  (** Detail-capped, in order. *)
  total_violations : int;
  action_errors : (int * string) list;  (** 0-based step index, message. *)
  issued : int;  (** Workload transactions issued. *)
  acked : int;
  wl_failed : int;  (** Workload transactions that returned an error. *)
  commits : int;  (** Writer's committed-transaction counter. *)
  final_vcl : int;
  final_vdl : int;
  write_available : float;
      (** {!Obs.Health.write_available_fraction} over the whole run. *)
  recorder : Recorder.Artifact.t option;
      (** Flight-recorder snapshot (per-node rings + net counters),
          captured when the run had violations or [record_always] was set.
          Not part of {!digest}. *)
}

val run : seed:int -> ?record_always:bool -> Scenario.t -> outcome
(** [record_always] (default false) captures the recorder artifact even on
    a clean run — the live path behind [aurora_cli explain]. *)

val failed : outcome -> bool
(** [total_violations > 0]. *)

val digest : outcome -> string
(** One-line JSON rendering of the outcome — stable field order, no
    wall-clock inputs — so two runs of the same (scenario, seed) compare
    byte-for-byte. *)
