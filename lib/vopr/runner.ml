open Simcore
module Cluster = Harness.Cluster
module Database = Aurora_core.Database
module Volume = Aurora_core.Volume
module Txn_gen = Workload.Txn_gen
module Lsn = Wal.Lsn
module Pg_id = Storage.Pg_id
module Member_id = Quorum.Member_id
module Az = Quorum.Az

type outcome = {
  scenario : string;
  seed : int;
  violations : Checker.violation list;
  total_violations : int;
  action_errors : (int * string) list;
  issued : int;
  acked : int;
  wl_failed : int;
  commits : int;
  final_vcl : int;
  final_vdl : int;
  write_available : float;
  recorder : Recorder.Artifact.t option;
}

let failed o = o.total_violations > 0

(* Image the network's global and per-link counters into the recorder
   artifact's plain-int [net] section. *)
let net_artifact net =
  let s = Simnet.Net.stats net in
  let links =
    List.map
      (fun ((src, dst), (l : Simnet.Net.link_stat)) ->
        {
          Recorder.Artifact.src;
          dst;
          l_sent = l.Simnet.Net.sent_on;
          l_delivered = l.Simnet.Net.delivered_on;
          l_down = l.Simnet.Net.drop_down;
          l_blocked = l.Simnet.Net.drop_blocked;
          l_partition = l.Simnet.Net.drop_partition;
          l_random = l.Simnet.Net.drop_random;
        })
      (Simnet.Net.link_stats net)
  in
  {
    Recorder.Artifact.sent = s.Simnet.Net.sent;
    delivered = s.Simnet.Net.delivered;
    dropped_down = s.Simnet.Net.dropped_down;
    dropped_blocked = s.Simnet.Net.dropped_blocked;
    dropped_partition = s.Simnet.Net.dropped_partition;
    dropped_random = s.Simnet.Net.dropped_random;
    links;
  }

(* 1-based AZ numbers in scenarios, zero-based Az.t in the cluster. *)
let az_of_spec n =
  if n >= 1 && n <= 3 then Ok (Az.of_int (n - 1))
  else Error (Printf.sprintf "az=%d out of range 1..3" n)

let replacement_of cluster pg suspect =
  let volume = Database.volume (Cluster.db cluster) in
  match Volume.find_pg volume pg with
  | exception Not_found -> None
  | g ->
    List.find_map
      (fun (p : Quorum.Membership.pending) ->
        if Member_id.equal p.suspect suspect then Some p.replacement else None)
      (Quorum.Membership.pendings g.membership)

let run ~seed ?(record_always = false) (sc : Scenario.t) =
  let cfg =
    {
      Cluster.default_config with
      Cluster.seed;
      n_pgs = sc.n_pgs;
      layout = sc.layout;
    }
  in
  (* Arm the flight recorder before any node registers.  Ring state lives
     outside the sim and the hooks draw no randomness, so an instrumented
     run is byte-identical to a bare one. *)
  Recorder.Rings.reset ();
  Recorder.Rings.set_depth sc.recorder_depth;
  Recorder.Rings.enable ();
  let cluster = Cluster.create cfg in
  let sim = Cluster.sim cluster in
  let db = Cluster.db cluster in
  for _ = 1 to sc.replicas do
    ignore (Cluster.add_replica cluster)
  done;
  let gen =
    if sc.rate > 0. then
      Some
        (Txn_gen.create ~sim
           ~rng:(Rng.create (seed + 7919))
           ~db ~profile:Txn_gen.default_profile ())
    else None
  in
  let checker = Checker.create ~cluster ?gen () in
  let action_errors = ref [] in
  let record_err idx msg = action_errors := (idx, msg) :: !action_errors in
  let steps = Array.of_list sc.steps in
  let last_timed_step =
    Array.fold_left
      (fun acc (st : Scenario.step) ->
        match st.trigger with
        | Scenario.At t -> Time_ns.max acc t
        | Scenario.At_lsn _ -> acc)
      Time_ns.zero steps
  in
  let run_horizon = Time_ns.max (Time_ns.ms sc.duration_ms) last_timed_step in
  let full_horizon = Time_ns.add run_horizon (Time_ns.ms sc.quiesce_ms) in
  let with_node pg m f =
    match Cluster.node_of_member cluster (Pg_id.of_int pg) (Member_id.of_int m) with
    | Some _ ->
      f (Pg_id.of_int pg) (Member_id.of_int m);
      Ok ()
    | None -> Error (Printf.sprintf "pg%d m%d: unknown member" pg m)
  in
  let apply_action idx (action : Scenario.action) =
    match action with
    | Scenario.Noop -> Ok ()
    | Scenario.Crash_node (pg, m) ->
      with_node pg m (fun pg m -> Cluster.crash_storage_node cluster pg m)
    | Scenario.Restart_node (pg, m) ->
      with_node pg m (fun pg m -> Cluster.restart_storage_node cluster pg m)
    | Scenario.Destroy_node (pg, m) ->
      with_node pg m (fun pg m -> Cluster.destroy_storage_node cluster pg m)
    | Scenario.Slow_node (pg, m, factor) ->
      with_node pg m (fun pg m -> Cluster.slow_storage_node cluster pg m factor)
    | Scenario.Fail_az az ->
      Result.map (fun az -> Cluster.fail_az cluster az) (az_of_spec az)
    | Scenario.Restore_az az ->
      Result.map (fun az -> Cluster.restore_az cluster az) (az_of_spec az)
    | Scenario.Partition_az az ->
      Result.map (fun az -> Cluster.partition_az cluster az) (az_of_spec az)
    | Scenario.Heal_az az ->
      Result.map (fun az -> Cluster.heal_az cluster az) (az_of_spec az)
    | Scenario.Start_replacement (pg, m) ->
      Result.map ignore
        (Cluster.start_replacement cluster (Pg_id.of_int pg)
           ~suspect:(Member_id.of_int m))
    | Scenario.Finish_replacement (pg, m) ->
      Cluster.finish_replacement cluster (Pg_id.of_int pg)
        ~suspect:(Member_id.of_int m)
    | Scenario.Finish_when_caught_up (pg, m) -> (
      let pg_id = Pg_id.of_int pg and suspect = Member_id.of_int m in
      match replacement_of cluster pg_id suspect with
      | None -> Error (Printf.sprintf "pg%d m%d: no pending replacement" pg m)
      | Some replacement ->
        (* Stand-in for the repair monitor: poll hydration progress and run
           the second epoch increment the moment the replacement covers the
           group durable point. *)
        let rec poll () =
          if Time_ns.compare (Sim.now sim) full_horizon > 0 then
            record_err idx
              (Printf.sprintf
                 "pg%d m%d: replacement not caught up by the horizon" pg m)
          else if Cluster.replacement_caught_up cluster pg_id ~replacement then (
            match Cluster.finish_replacement cluster pg_id ~suspect with
            | Ok () -> ()
            | Error e -> record_err idx ("finish_replacement: " ^ e))
          else ignore (Sim.schedule sim ~delay:(Time_ns.ms 20) poll)
        in
        poll ();
        Ok ())
    | Scenario.Revert_replacement (pg, m) ->
      Cluster.revert_replacement cluster (Pg_id.of_int pg)
        ~suspect:(Member_id.of_int m)
    | Scenario.Grow_volume ->
      ignore (Cluster.grow_volume cluster);
      Ok ()
    | Scenario.Change_scheme_3_of_4 (pg, az) ->
      Result.bind (az_of_spec az) (fun drop_az ->
          Cluster.change_scheme_3_of_4 cluster (Pg_id.of_int pg) ~drop_az)
    | Scenario.Crash_writer ->
      Database.crash db;
      Ok ()
    | Scenario.Recover_writer ->
      Database.recover db (fun result ->
          match result with
          | Ok _ -> ()
          | Error e -> record_err idx ("recover_writer: " ^ e));
      Ok ()
  in
  let last_commits = ref 0 in
  let eval_expect (e : Scenario.expectation) =
    match e with
    | Scenario.Write_available want ->
      let s = Cluster.health_sample cluster ~at:(Sim.now sim) in
      let got = Obs.Health.sample_write_available s in
      if got = want then Ok ()
      else Error (Printf.sprintf "write_available=%b, wanted %b" got want)
    | Scenario.Az_plus_one want ->
      let s = Cluster.health_sample cluster ~at:(Sim.now sim) in
      let got =
        List.for_all (fun (p : Obs.Health.pg_sample) -> p.az_plus_one) s.pgs
      in
      if got = want then Ok ()
      else Error (Printf.sprintf "az_plus_one=%b, wanted %b" got want)
    | Scenario.Writer_open want ->
      let got = Database.is_open db in
      if got = want then Ok ()
      else Error (Printf.sprintf "writer_open=%b, wanted %b" got want)
    | Scenario.Commits_progressing ->
      let now = (Database.metrics db).Database.txns_committed in
      if now > !last_commits then Ok ()
      else
        Error
          (Printf.sprintf "no commit progress (still %d committed)" now)
    | Scenario.Epoch_at_least (pg, want) -> (
      let volume = Database.volume db in
      match Volume.find_pg volume (Pg_id.of_int pg) with
      | exception Not_found -> Error (Printf.sprintf "pg%d: unknown group" pg)
      | g ->
        let got = Quorum.Epoch.to_int (Quorum.Membership.epoch g.membership) in
        if got >= want then Ok ()
        else Error (Printf.sprintf "pg%d epoch=%d, wanted >= %d" pg got want))
    | Scenario.Caught_up (pg, m) -> (
      let pg_id = Pg_id.of_int pg in
      match replacement_of cluster pg_id (Member_id.of_int m) with
      | None -> Error (Printf.sprintf "pg%d m%d: no pending replacement" pg m)
      | Some replacement ->
        if Cluster.replacement_caught_up cluster pg_id ~replacement then Ok ()
        else Error (Printf.sprintf "pg%d m%d: replacement behind" pg m))
  in
  let fire idx (st : Scenario.step) =
    (match apply_action idx st.action with
    | Ok () -> ()
    | Error e -> record_err idx e);
    List.iter
      (fun e ->
        match eval_expect e with
        | Ok () -> ()
        | Error msg ->
          Checker.note checker ~checker:"expectation"
            ~detail:
              (Printf.sprintf "step %d (%s): %s" idx
                 (Scenario.step_str st) msg))
      st.expect;
    last_commits := (Database.metrics db).Database.txns_committed
  in
  Array.iteri
    (fun idx (st : Scenario.step) ->
      match st.trigger with
      | Scenario.At t -> ignore (Sim.schedule_at sim ~at:t (fun () -> fire idx st))
      | Scenario.At_lsn lsn ->
        Sim.every sim ~interval:(Time_ns.ms 1) (fun () ->
            if Time_ns.compare (Sim.now sim) full_horizon > 0 then begin
              record_err idx (Printf.sprintf "at_lsn=%d never reached" lsn);
              false
            end
            else if
              Database.is_open db && Lsn.to_int (Database.vcl db) >= lsn
            then begin
              fire idx st;
              false
            end
            else true))
    steps;
  (match gen with
  | Some g ->
    Txn_gen.run_open_loop g ~rate_per_sec:sc.rate
      ~duration:(Time_ns.ms sc.duration_ms)
  | None -> ());
  Sim.run_until sim full_horizon;
  Checker.quiesce_audit checker;
  Sim.run_until sim (Time_ns.add full_horizon (Time_ns.sec 5));
  Checker.stop checker;
  (* Snapshot the rings into the repro artifact on any violation (or on
     request), then stand the recorder down so swarm memory stays flat. *)
  let recorder =
    if Checker.total checker > 0 || record_always then
      Some
        (Recorder.Artifact.make
           ~snapshot:(Recorder.Rings.snapshot ())
           ~net:(net_artifact (Cluster.net cluster))
           ())
    else None
  in
  Recorder.Rings.disable ();
  Recorder.Rings.reset ();
  {
    scenario = sc.name;
    seed;
    violations = Checker.violations checker;
    total_violations = Checker.total checker;
    action_errors = List.rev !action_errors;
    issued = (match gen with Some g -> Txn_gen.issued g | None -> 0);
    acked = (match gen with Some g -> Txn_gen.acked g | None -> 0);
    wl_failed = (match gen with Some g -> Txn_gen.failed g | None -> 0);
    commits = (Database.metrics db).Database.txns_committed;
    final_vcl = Lsn.to_int (Database.vcl db);
    final_vdl = Lsn.to_int (Database.vdl db);
    write_available =
      Obs.Health.write_available_fraction (Obs.Ctx.health (Cluster.obs cluster));
    recorder;
  }

let digest o =
  let open Obs.Json in
  to_string
    (Obj
       [
         ("scenario", String o.scenario);
         ("seed", Int o.seed);
         ("issued", Int o.issued);
         ("acked", Int o.acked);
         ("wl_failed", Int o.wl_failed);
         ("commits", Int o.commits);
         ("vcl", Int o.final_vcl);
         ("vdl", Int o.final_vdl);
         ("write_available", Float o.write_available);
         ( "action_errors",
           List
             (List.map
                (fun (idx, msg) ->
                  Obj [ ("step", Int idx); ("error", String msg) ])
                o.action_errors) );
         ("violations", Int o.total_violations);
         ( "violation_details",
           List
             (List.map
                (fun (v : Checker.violation) ->
                  Obj
                    [
                      ("checker", String v.checker);
                      ("at_ns", Int v.at);
                      ("detail", String v.detail);
                    ])
                o.violations) );
       ])
