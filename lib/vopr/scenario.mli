(** Declarative fault scenarios over the {!Harness.Cluster} fault API.

    A scenario is a small table: a cluster/workload header plus an ordered
    list of steps, each [(trigger, action, expectations)].  Triggers fire
    either at a simulated instant ([at=500ms]) or when the volume's VCL
    first reaches an LSN ([at_lsn=200]).  Actions are exactly the cluster's
    fault and membership-change primitives (crash/restart/destroy node,
    fail/restore AZ, slow node, partition, the Figure 5 replacement dance,
    volume growth, quorum-scheme change, writer crash/recovery).
    Expectations are evaluated immediately after the action fires; a step
    with action [noop] is a pure assertion point.

    Scenarios exist in two equivalent forms: OCaml values built with the
    combinators below (the curated tables in {!Curated}), and a terse
    line-oriented text format parsed with {!of_string} — the form the swarm
    writes for shrunk repros, so a failing run is replayable from
    [seed + scenario file] alone.  [of_string] and [to_string] round-trip:
    parsing a printed scenario yields the same value. *)

type trigger =
  | At of Simcore.Time_ns.t  (** Fire at this simulated instant. *)
  | At_lsn of int  (** Fire when the writer's VCL first covers this LSN. *)

type action =
  | Noop
  | Crash_node of int * int  (** pg, member: process crash, disks intact. *)
  | Restart_node of int * int
  | Destroy_node of int * int  (** Permanent loss of node and segment. *)
  | Slow_node of int * int * float  (** Gray node: latency multiplier. *)
  | Fail_az of int  (** 1-based AZ index, as in the [az1..az3] labels. *)
  | Restore_az of int
  | Partition_az of int  (** Isolate the AZ's processes from the rest. *)
  | Heal_az of int
  | Start_replacement of int * int  (** pg, suspect member (Figure 5). *)
  | Finish_replacement of int * int  (** Second epoch increment, now. *)
  | Finish_when_caught_up of int * int
      (** Poll hydration and run the second epoch increment once the
          replacement's SCL reaches the group durable point. *)
  | Revert_replacement of int * int
  | Grow_volume  (** Append a protection group (§4.1). *)
  | Change_scheme_3_of_4 of int * int  (** pg, 1-based AZ to drop (§4.1). *)
  | Crash_writer
  | Recover_writer

type expectation =
  | Write_available of bool
      (** {!Obs.Health.sample_write_available} on a fresh health sample. *)
  | Az_plus_one of bool  (** Every PG tolerates AZ+1 (§2.1). *)
  | Writer_open of bool
  | Commits_progressing
      (** Committed-transaction count advanced since the previous step
          fired (or since the run started, for the first step). *)
  | Epoch_at_least of int * int  (** pg, minimum membership epoch. *)
  | Caught_up of int * int
      (** pg, suspect: the suspect's pending replacement has hydrated to
          the group durable point. *)

type step = {
  trigger : trigger;
  action : action;
  expect : expectation list;
}

type t = {
  name : string;
  n_pgs : int;
  layout : Harness.Cluster.layout;
  replicas : int;
  rate : float;  (** Open-loop transaction arrival rate, per second. *)
  duration_ms : int;  (** Workload duration; also the step horizon floor. *)
  quiesce_ms : int;  (** Settle time after workload + steps, before audit. *)
  recorder_depth : int;
      (** Flight-recorder ring capacity per node, within
          [Recorder.Rings.min_depth .. max_depth]. *)
  steps : step list;
}

(* ---- combinators ---- *)

val at_ms : int -> trigger
val at_lsn : int -> trigger
val step : ?expect:expectation list -> trigger -> action -> step

val make :
  name:string ->
  ?n_pgs:int ->
  ?layout:Harness.Cluster.layout ->
  ?replicas:int ->
  ?rate:float ->
  ?duration_ms:int ->
  ?quiesce_ms:int ->
  ?recorder_depth:int ->
  step list ->
  t
(** Defaults: 1 PG, V6 layout, no replicas, 1500 txn/s, 1500 ms workload,
    1500 ms quiesce, {!Recorder.Rings.default_depth} recorder events per
    node. *)

(* ---- text format ---- *)

val to_string : t -> string
(** Canonical rendering: header lines ([scenario], [pgs], [layout],
    [replicas], [rate], [duration_ms], [quiesce_ms], [recorder_depth])
    then one [step] line per step.  Times print at millisecond granularity — which is also the
    combinators' granularity — so [of_string (to_string t) = Ok t]. *)

val step_str : step -> string
(** One canonical [step ...] line, as {!to_string} prints it (used to label
    steps in runner output). *)

val of_string : string -> (t, string) result
(** Parse the text format.  Blank lines and [#] comments are ignored;
    header lines may appear in any order before the first [step]; errors
    carry the 1-based line number. *)
