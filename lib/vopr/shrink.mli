(** Greedy scenario minimizer.

    Given a failing (scenario, seed) pair, repeatedly try deleting one step
    at a time, keeping any deletion after which the run still fails {e with
    the same failure fingerprint} (at least one checker id from the
    original outcome — otherwise deleting an undo step would manufacture a
    fresh availability failure and hijack the minimization), and iterate
    until no single deletion preserves the failure — a 1-minimal failing
    step list.  Runs are deterministic, so every candidate is an
    exact replay; with scenario tables of at most a dozen steps the
    O(steps^2) rerun cost is trivial next to one simulation. *)

val minimize :
  run:(Scenario.t -> Runner.outcome) -> Scenario.t -> (Scenario.t * Runner.outcome) option
(** [minimize ~run sc] is [None] when [run sc] does not fail at all;
    otherwise [Some (smallest, outcome)] with [outcome] the failing result
    of the minimized scenario.  [run] is typically
    [Runner.run ~seed:failing_seed]. *)
