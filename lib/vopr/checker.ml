open Simcore
module Cluster = Harness.Cluster
module Database = Aurora_core.Database
module Replica = Aurora_core.Replica
module Volume = Aurora_core.Volume
module Storage_node = Storage.Storage_node
module Segment = Storage.Segment
module Lsn = Wal.Lsn

type violation = {
  checker : string;
  at : Simcore.Time_ns.t;
  detail : string;
}

(* Per-checker detail cap: past this many occurrences only the total is
   counted, so a breach that fires every tick stays readable. *)
let detail_cap = 10

type t = {
  cluster : Cluster.t;
  sim : Sim.t;
  gen : Workload.Txn_gen.t option;
  mutable stopped : bool;
  mutable recorded : violation list;  (* reverse occurrence order *)
  mutable total : int;
  counts : (string, int) Hashtbl.t;
  (* watch state *)
  mutable max_vcl : Lsn.t;
  mutable max_vdl : Lsn.t;
  mutable was_open : bool;
  mutable seen_open : bool;
  epochs : (int, int) Hashtbl.t;  (* pg -> highest membership epoch seen *)
  replica_vdl : Lsn.t Simnet.Addr.Tbl.t;
  (* probe state *)
  mutable probe_seq : int;  (* last probe sequence issued *)
  mutable probe_acked : int;  (* highest probe sequence acknowledged *)
  replica_probe : int Simnet.Addr.Tbl.t;  (* highest seq read per replica *)
}

let probe_key = "vopr#probe"
let probe_value seq = Printf.sprintf "p%012d" seq

let probe_seq_of_value v =
  if String.length v > 1 && v.[0] = 'p' then
    int_of_string_opt (String.sub v 1 (String.length v - 1))
  else None

let note t ~checker ~detail =
  t.total <- t.total + 1;
  let seen = Option.value ~default:0 (Hashtbl.find_opt t.counts checker) in
  Hashtbl.replace t.counts checker (seen + 1);
  if seen < detail_cap then
    t.recorded <- { checker; at = Sim.now t.sim; detail } :: t.recorded

let violations t = List.rev t.recorded
let total t = t.total

(* ---- watch tick ---- *)

let lsn_str = Lsn.to_string
let addr_str a = Printf.sprintf "addr%d" (Simnet.Addr.to_int a)

let check_writer t =
  let db = Cluster.db t.cluster in
  if Database.is_open db then begin
    let vcl = Database.vcl db and vdl = Database.vdl db in
    if t.seen_open && not t.was_open then begin
      (* Reopen after a crash: recovery must re-derive a VCL covering every
         durable point we ever observed — anything less would mean an
         acknowledged commit fell out of the volume (§2.4). *)
      if Lsn.(vcl < t.max_vcl) then
        note t ~checker:"recovery-vcl-regression"
          ~detail:
            (Printf.sprintf "recovered vcl=%s below pre-crash vcl=%s"
               (lsn_str vcl) (lsn_str t.max_vcl))
    end
    else if t.was_open then begin
      if Lsn.(vcl < t.max_vcl) then
        note t ~checker:"vcl-monotone"
          ~detail:
            (Printf.sprintf "vcl regressed %s -> %s" (lsn_str t.max_vcl)
               (lsn_str vcl));
      if Lsn.(vdl < t.max_vdl) then
        note t ~checker:"vdl-monotone"
          ~detail:
            (Printf.sprintf "vdl regressed %s -> %s" (lsn_str t.max_vdl)
               (lsn_str vdl))
    end;
    if Lsn.(vdl > vcl) then
      note t ~checker:"vdl-above-vcl"
        ~detail:
          (Printf.sprintf "vdl=%s above vcl=%s" (lsn_str vdl) (lsn_str vcl));
    t.max_vcl <- Lsn.max t.max_vcl vcl;
    t.max_vdl <- Lsn.max t.max_vdl vdl;
    t.seen_open <- true;
    t.was_open <- true;
    (* PGMRPL is a GC floor derived from VDL-anchored read views, so no
       live segment may hold a floor above the writer's durable point. *)
    List.iter
      (fun node ->
        if Storage_node.is_alive node then
          List.iter
            (fun seg ->
              let floor = Segment.pgmrpl seg in
              if Lsn.(floor > vdl) then
                note t ~checker:"pgmrpl-above-vdl"
                  ~detail:
                    (Printf.sprintf "pg%d/%s pgmrpl=%s above vdl=%s"
                       (Storage.Pg_id.to_int (Segment.pg seg))
                       (Quorum.Member_id.to_string (Segment.seg_id seg))
                       (lsn_str floor) (lsn_str vdl)))
            (Storage_node.segments node))
      (Cluster.storage_nodes t.cluster);
    (* Membership epochs only ever move forward (§4: every change is an
       epoch increment; nothing decrements). *)
    List.iter
      (fun (g : Volume.pg) ->
        let pg = Storage.Pg_id.to_int g.id in
        let epoch = Quorum.Epoch.to_int (Quorum.Membership.epoch g.membership) in
        (match Hashtbl.find_opt t.epochs pg with
        | Some prev when epoch < prev ->
          note t ~checker:"epoch-regression"
            ~detail:(Printf.sprintf "pg%d epoch %d -> %d" pg prev epoch)
        | _ -> ());
        Hashtbl.replace t.epochs pg
          (Stdlib.max epoch
             (Option.value ~default:0 (Hashtbl.find_opt t.epochs pg))))
      (Volume.pgs (Database.volume db));
    (* The health monitor's own arithmetic must cohere. *)
    let sample = Cluster.health_sample t.cluster ~at:(Sim.now t.sim) in
    List.iter
      (fun (p : Obs.Health.pg_sample) ->
        let bad fmt = Printf.ksprintf (fun d -> note t ~checker:"health-consistency" ~detail:d) fmt in
        if p.reachable > p.total || p.reachable < 0 then
          bad "pg%d reachable=%d of total=%d" p.pg p.reachable p.total;
        if p.ack_current > p.reachable || p.ack_current < 0 then
          bad "pg%d ack_current=%d above reachable=%d" p.pg p.ack_current
            p.reachable;
        if p.write_margin < -1 || p.read_margin < -1 then
          bad "pg%d margins write=%d read=%d" p.pg p.write_margin p.read_margin)
      sample.pgs;
    if sample.volume.vdl_vcl_gap < 0 then
      note t ~checker:"health-consistency"
        ~detail:
          (Printf.sprintf "vdl_vcl_gap=%d negative" sample.volume.vdl_vcl_gap);
    if sample.volume.commit_queue_depth < 0 then
      note t ~checker:"health-consistency"
        ~detail:
          (Printf.sprintf "commit_queue_depth=%d negative"
             sample.volume.commit_queue_depth)
  end
  else t.was_open <- false

let check_replicas t =
  List.iter
    (fun r ->
      if Replica.is_running r then begin
        let addr = Replica.addr r in
        let seen = Replica.vdl_seen r in
        (match Simnet.Addr.Tbl.find_opt t.replica_vdl addr with
        | Some prev when Lsn.(seen < prev) ->
          note t ~checker:"replica-vdl-monotone"
            ~detail:
              (Printf.sprintf "replica %s vdl_seen %s -> %s" (addr_str addr)
                 (lsn_str prev) (lsn_str seen))
        | _ -> ());
        Simnet.Addr.Tbl.replace t.replica_vdl addr
          (Lsn.max seen
             (Option.value ~default:Lsn.none
                (Simnet.Addr.Tbl.find_opt t.replica_vdl addr)))
      end)
    (Cluster.replicas t.cluster)

(* ---- probe session ---- *)

let probe_write t =
  let db = Cluster.db t.cluster in
  if Database.is_open db then begin
    t.probe_seq <- t.probe_seq + 1;
    let seq = t.probe_seq in
    let txn = Database.begin_txn db in
    Database.put db ~txn ~key:probe_key ~value:(probe_value seq);
    Database.commit db ~txn (fun result ->
        match result with
        | Ok () -> if seq > t.probe_acked then t.probe_acked <- seq
        | Error _ -> ())
  end

let probe_read_writer t =
  let db = Cluster.db t.cluster in
  if Database.is_open db then begin
    (* Capture the floor at issue time: a commit acknowledged before this
       read was issued is covered by VDL (the commit record closes its
       MTR), so the read's view must include it — including across any
       crash/recovery in between. *)
    let floor = t.probe_acked in
    Database.get db ~key:probe_key (fun result ->
        match result with
        | Error _ -> ()
        | Ok None ->
          if floor > 0 then
            note t ~checker:"read-your-writes"
              ~detail:
                (Printf.sprintf "probe read found nothing; acked seq=%d" floor)
        | Ok (Some v) -> (
          match probe_seq_of_value v with
          | None ->
            note t ~checker:"read-your-writes"
              ~detail:(Printf.sprintf "probe read returned foreign value %S" v)
          | Some seq ->
            if seq < floor then
              note t ~checker:"read-your-writes"
                ~detail:
                  (Printf.sprintf "probe read seq=%d below acked seq=%d" seq
                     floor)))
  end

let probe_read_replica t r =
  if Replica.is_running r then begin
    let addr = Replica.addr r in
    Replica.get r ~key:probe_key (fun result ->
        match result with
        | Error _ -> ()
        | Ok None ->
          (* A replica view may predate the first probe write; only a
             regression from a previously returned value is a violation. *)
          let prev =
            Option.value ~default:0 (Simnet.Addr.Tbl.find_opt t.replica_probe addr)
          in
          if prev > 0 then
            note t ~checker:"replica-monotone-read"
              ~detail:
                (Printf.sprintf "replica %s read nothing after seq=%d"
                   (addr_str addr) prev)
        | Ok (Some v) -> (
          match probe_seq_of_value v with
          | None -> ()
          | Some seq ->
            let prev =
              Option.value ~default:0
                (Simnet.Addr.Tbl.find_opt t.replica_probe addr)
            in
            if seq < prev then
              note t ~checker:"replica-monotone-read"
                ~detail:
                  (Printf.sprintf "replica %s read seq=%d after seq=%d"
                     (addr_str addr) seq prev);
            Simnet.Addr.Tbl.replace t.replica_probe addr (Stdlib.max seq prev)))
  end

(* ---- lifecycle ---- *)

let create ~cluster ?gen ?(watch_interval = Time_ns.ms 5)
    ?(probe_interval = Time_ns.ms 25) () =
  let sim = Cluster.sim cluster in
  let t =
    {
      cluster;
      sim;
      gen;
      stopped = false;
      recorded = [];
      total = 0;
      counts = Hashtbl.create 16;
      max_vcl = Lsn.none;
      max_vdl = Lsn.none;
      was_open = false;
      seen_open = false;
      epochs = Hashtbl.create 8;
      replica_vdl = Simnet.Addr.Tbl.create 8;
      probe_seq = 0;
      probe_acked = 0;
      replica_probe = Simnet.Addr.Tbl.create 8;
    }
  in
  Sim.every sim ~interval:watch_interval (fun () ->
      if t.stopped then false
      else begin
        check_writer t;
        check_replicas t;
        true
      end);
  Sim.every sim ~interval:probe_interval (fun () ->
      if t.stopped then false
      else begin
        probe_write t;
        probe_read_writer t;
        List.iter (fun r -> probe_read_replica t r) (Cluster.replicas t.cluster);
        true
      end);
  t

let stop t = t.stopped <- true

(* ---- quiesce audit ---- *)

let quiesce_audit t =
  let db = Cluster.db t.cluster in
  (* A closed writer cannot serve the audit reads; scenarios assert
     recovery separately (expect writer_open=true). *)
  if Database.is_open db then begin
  (match t.gen with
  | None -> ()
  | Some gen ->
    (* Same oracle as the harness durability audits: per key, the last
       acknowledged write in issue (= LSN) order is required; in-doubt
       writes issued after it may legitimately have survived.  Keys are
       audited in sorted order so the violation list is stable. *)
    let valid = Hashtbl.create 256 in
    List.iter
      (fun (key, value, acked) ->
        if acked then Hashtbl.replace valid key [ value ]
        else
          match Hashtbl.find_opt valid key with
          | Some vs -> Hashtbl.replace valid key (value :: vs)
          | None -> ())
      (Workload.Txn_gen.writes_in_issue_order gen);
    let keys =
      List.sort_uniq String.compare
        (List.filter_map
           (fun (key, _, acked) -> if acked then Some key else None)
           (Workload.Txn_gen.writes_in_issue_order gen))
    in
    List.iter
      (fun key ->
        match Hashtbl.find_opt valid key with
        | None -> ()
        | Some valid_values ->
          Database.get db ~key (fun result ->
              let ok =
                match result with
                | Ok (Some v) -> List.exists (String.equal v) valid_values
                | Ok None | Error _ -> false
              in
              if not ok then
                note t ~checker:"durability"
                  ~detail:
                    (Printf.sprintf "acked write to %S not readable (%s)" key
                       (match result with
                       | Ok (Some v) -> Printf.sprintf "found stale %S" v
                       | Ok None -> "found nothing"
                       | Error e -> "read error: " ^ e))))
      keys);
    probe_read_writer t
  end
