open Simcore

(* Mutable on purpose: deliveries reuse one scratch envelope per network
   (see [deliver]) instead of allocating a record per message — handlers
   must not retain it (net.mli documents the contract). *)
type 'msg envelope = {
  mutable src : Addr.t;
  mutable dst : Addr.t;
  mutable sent_at : Time_ns.t;
  mutable bytes : int;
  mutable msg : 'msg;
}

type stats = {
  sent : int;
  delivered : int;
  dropped : int;
      (* always = dropped_down + dropped_blocked + dropped_partition
                  + dropped_random *)
  dropped_down : int;
  dropped_blocked : int;
  dropped_partition : int;
  dropped_random : int;
  bytes_sent : int;
  bytes_delivered : int;
}

(* Why a link is severed: a targeted [block] or a set-level [partition].
   The split feeds the cause-separated drop counters so a vopr scenario can
   distinguish partition loss from pinpoint blocks. *)
type block_kind = Direct | Part

type drop_cause = Down | Blocked | Partitioned | Random

type phase = Sent | Delivered | Dropped of drop_cause

(* [Dropped _] carries an argument, so building one allocates; drops are
   hot under fault scenarios, hence one preallocated block per cause. *)
let phase_drop_down = Dropped Down
let phase_drop_blocked = Dropped Blocked
let phase_drop_partition = Dropped Partitioned
let phase_drop_random = Dropped Random

let dropped_phase = function
  | Down -> phase_drop_down
  | Blocked -> phase_drop_blocked
  | Partitioned -> phase_drop_partition
  | Random -> phase_drop_random

(* Per-link delivery counters, keyed by the packed (src, dst) int.
   Mutable in place: [send] is the sim's hottest path. *)
type link_counters = {
  mutable l_sent : int;
  mutable l_delivered : int;
  mutable l_down : int;
  mutable l_blocked : int;
  mutable l_partition : int;
  mutable l_random : int;
}

type link_stat = {
  sent_on : int;
  delivered_on : int;
  drop_down : int;
  drop_blocked : int;
  drop_partition : int;
  drop_random : int;
}

(* Global counters, bumped in place on the send/deliver hot path; the
   public immutable [stats] record is materialized on demand in [stats]. *)
type totals = {
  mutable n_sent : int;
  mutable n_delivered : int;
  mutable n_down : int;
  mutable n_blocked : int;
  mutable n_partition : int;
  mutable n_random : int;
  mutable n_bytes_sent : int;
  mutable n_bytes_delivered : int;
}

type 'msg t = {
  sim : Sim.t;
  rng : Rng.t;
  default_latency : Distribution.t;
  handlers : ('msg envelope -> unit) Addr.Tbl.t;
  link_latency : (int, Distribution.t) Hashtbl.t;
  mutable latency_fn : Addr.t -> Addr.t -> Distribution.t option;
  link_drop : (int, float) Hashtbl.t;
  mutable global_drop : float;
  slowdown : float Addr.Tbl.t;
  down : unit Addr.Tbl.t;
  blocked : (int, block_kind) Hashtbl.t;
  links : (int, link_counters) Hashtbl.t;
  mutable recorder : (phase -> src:Addr.t -> dst:Addr.t -> 'msg -> unit) option;
  totals : totals;
  (* Scratch envelope reused for every delivery (see [deliver]). *)
  mutable scratch : 'msg envelope option;
}

let create ~sim ~rng ~default_latency ?obs () =
  let t =
    {
      sim;
      rng;
      default_latency;
      handlers = Addr.Tbl.create 64;
      link_latency = Hashtbl.create 64;
      latency_fn = (fun _ _ -> None);
      link_drop = Hashtbl.create 16;
      global_drop = 0.;
      slowdown = Addr.Tbl.create 16;
      down = Addr.Tbl.create 16;
      blocked = Hashtbl.create 16;
      links = Hashtbl.create 64;
      recorder = None;
      totals =
        {
          n_sent = 0;
          n_delivered = 0;
          n_down = 0;
          n_blocked = 0;
          n_partition = 0;
          n_random = 0;
          n_bytes_sent = 0;
          n_bytes_delivered = 0;
        };
      scratch = None;
    }
  in
  (match obs with
  | None -> ()
  | Some obs ->
    let reg = Obs.Ctx.registry obs in
    let c name f = Obs.Registry.counter_fn reg name f in
    let tl = t.totals in
    c "net_sent" (fun () -> tl.n_sent);
    c "net_delivered" (fun () -> tl.n_delivered);
    c "net_dropped" (fun () ->
        tl.n_down + tl.n_blocked + tl.n_partition + tl.n_random);
    c "net_dropped_down" (fun () -> tl.n_down);
    c "net_dropped_blocked" (fun () -> tl.n_blocked);
    c "net_dropped_partition" (fun () -> tl.n_partition);
    c "net_dropped_random" (fun () -> tl.n_random);
    c "net_bytes_sent" (fun () -> tl.n_bytes_sent);
    c "net_bytes_delivered" (fun () -> tl.n_bytes_delivered));
  t

let sim t = t.sim

(* Directed link key packed into one immediate int — no tuple allocation
   per lookup on the send path.  Addresses are small non-negative ints
   (node ids), comfortably below 2^31; the packed key sorts in the same
   order as the (src, dst) pair. *)
let key a b = (Addr.to_int a lsl 31) lor Addr.to_int b
let key_src k = k lsr 31
let key_dst k = k land 0x7FFF_FFFF

let register t addr handler = Addr.Tbl.replace t.handlers addr handler
let unregister t addr = Addr.Tbl.remove t.handlers addr

let set_link_latency t ~src ~dst dist =
  Hashtbl.replace t.link_latency (key src dst) dist

let set_latency_fn t f = t.latency_fn <- f
let set_drop_probability t p = t.global_drop <- p
let set_link_drop t ~src ~dst p = Hashtbl.replace t.link_drop (key src dst) p

let set_node_slowdown t addr factor =
  if factor <= 0. then invalid_arg "Net.set_node_slowdown: non-positive";
  Addr.Tbl.replace t.slowdown addr factor

let set_down t addr = Addr.Tbl.replace t.down addr ()
let set_up t addr = Addr.Tbl.remove t.down addr
let is_down t addr = Addr.Tbl.mem t.down addr
let block_as t kind a b =
  Hashtbl.replace t.blocked (key a b) kind;
  Hashtbl.replace t.blocked (key b a) kind

let block t a b = block_as t Direct a b

let unblock t a b =
  Hashtbl.remove t.blocked (key a b);
  Hashtbl.remove t.blocked (key b a)

let partition t sa sb =
  Addr.Set.iter (fun a -> Addr.Set.iter (fun b -> block_as t Part a b) sb) sa

let heal_partition t sa sb =
  Addr.Set.iter (fun a -> Addr.Set.iter (fun b -> unblock t a b) sb) sa

(* Option-free fault lookups: these run (twice — send and delivery time)
   for every message, so they must not wrap results in [Some] blocks. *)

(* @raise Not_found when the link is open. *)
let sever_cause_exn t a b =
  match Hashtbl.find t.blocked (key a b) with
  | Direct -> Blocked
  | Part -> Partitioned

let latency_for t ~src ~dst =
  match Hashtbl.find t.link_latency (key src dst) with
  | d -> d
  | exception Not_found -> (
    match t.latency_fn src dst with
    | Some d -> d
    | None -> t.default_latency)

let drop_probability t ~src ~dst =
  match Hashtbl.find t.link_drop (key src dst) with
  | p -> Float.max p t.global_drop
  | exception Not_found -> t.global_drop

let slow_factor t addr =
  match Addr.Tbl.find t.slowdown addr with
  | f -> f
  | exception Not_found -> 1.0

let stats t =
  let tl = t.totals in
  {
    sent = tl.n_sent;
    delivered = tl.n_delivered;
    dropped = tl.n_down + tl.n_blocked + tl.n_partition + tl.n_random;
    dropped_down = tl.n_down;
    dropped_blocked = tl.n_blocked;
    dropped_partition = tl.n_partition;
    dropped_random = tl.n_random;
    bytes_sent = tl.n_bytes_sent;
    bytes_delivered = tl.n_bytes_delivered;
  }

let reset_stats t =
  let tl = t.totals in
  tl.n_sent <- 0;
  tl.n_delivered <- 0;
  tl.n_down <- 0;
  tl.n_blocked <- 0;
  tl.n_partition <- 0;
  tl.n_random <- 0;
  tl.n_bytes_sent <- 0;
  tl.n_bytes_delivered <- 0;
  Hashtbl.reset t.links

let set_recorder t cb = t.recorder <- cb

let record t phase ~src ~dst msg =
  match t.recorder with None -> () | Some f -> f phase ~src ~dst msg

let link_for t src dst =
  let k = key src dst in
  match Hashtbl.find t.links k with
  | c -> c
  | exception Not_found ->
    let c =
      { l_sent = 0; l_delivered = 0; l_down = 0; l_blocked = 0;
        l_partition = 0; l_random = 0 }
      [@alloc_ok "one counters record per live link, allocated on first use"]
    in
    Hashtbl.replace t.links k c;
    c

let link_stats t =
  Hashtbl.fold
    (fun k c acc ->
      ( (key_src k, key_dst k),
        {
          sent_on = c.l_sent;
          delivered_on = c.l_delivered;
          drop_down = c.l_down;
          drop_blocked = c.l_blocked;
          drop_partition = c.l_partition;
          drop_random = c.l_random;
        } )
      :: acc)
    t.links []
  |> List.sort (fun ((a1, a2), _) ((b1, b2), _) ->
         match Int.compare a1 b1 with 0 -> Int.compare a2 b2 | c -> c)

let note_drop t ~src ~dst cause =
  let tl = t.totals in
  let link = link_for t src dst in
  match cause with
  | Down ->
    link.l_down <- link.l_down + 1;
    tl.n_down <- tl.n_down + 1
  | Blocked ->
    link.l_blocked <- link.l_blocked + 1;
    tl.n_blocked <- tl.n_blocked + 1
  | Partitioned ->
    link.l_partition <- link.l_partition + 1;
    tl.n_partition <- tl.n_partition + 1
  | Random ->
    link.l_random <- link.l_random + 1;
    tl.n_random <- tl.n_random + 1

(* Top-level (not a per-send closure): drop bookkeeping fires on both the
   send-time and delivery-time fault checks. *)
let drop_now t ~src ~dst cause msg =
  note_drop t ~src ~dst cause;
  record t (dropped_phase cause) ~src ~dst msg

let deliver t ~src ~dst ~sent_at ~bytes msg =
  (* Down / blocked state is re-checked at delivery: a node that crashed
     while the message was in flight never sees it.  An unregistered
     destination counts as down. *)
  if is_down t dst then drop_now t ~src ~dst Down msg
  else
    match sever_cause_exn t src dst with
    | cause -> drop_now t ~src ~dst cause msg
    | exception Not_found -> (
      match Addr.Tbl.find t.handlers dst with
      | exception Not_found -> drop_now t ~src ~dst Down msg
      | handler ->
        let tl = t.totals in
        tl.n_delivered <- tl.n_delivered + 1;
        tl.n_bytes_delivered <- tl.n_bytes_delivered + bytes;
        let link = link_for t src dst in
        link.l_delivered <- link.l_delivered + 1;
        record t Delivered ~src ~dst msg;
        (* One scratch envelope per network, refilled per delivery.  Safe
           because delivery is serial (sim events never nest) and handlers
           are forbidden from retaining the envelope. *)
        let env =
          match t.scratch with
          | Some env ->
            env.src <- src;
            env.dst <- dst;
            env.sent_at <- sent_at;
            env.bytes <- bytes;
            env.msg <- msg;
            env
          | None ->
            (let env = { src; dst; sent_at; bytes; msg } in
             t.scratch <- Some env;
             env)
            [@alloc_ok
              "scratch-envelope warm-up: allocated once per network, then \
               reused for every delivery"]
        in
        (* Perf span around the handler only — latency modelling and drop
           bookkeeping above are scheduling, not delivery work. *)
        Perf.Probe.start Perf.Probe.Net_delivery;
        handler env;
        Perf.Probe.stop Perf.Probe.Net_delivery)

let send t ~src ~dst ?(bytes = 64) msg =
  let tl = t.totals in
  tl.n_sent <- tl.n_sent + 1;
  tl.n_bytes_sent <- tl.n_bytes_sent + bytes;
  let out = link_for t src dst in
  out.l_sent <- out.l_sent + 1;
  record t Sent ~src ~dst msg;
  (* Attribution order mirrors the old short-circuit: the stochastic draw
     happens only when neither endpoint fault applies, keeping the RNG
     stream (and thus every seeded run) identical. *)
  if is_down t src then drop_now t ~src ~dst Down msg
  else
    match sever_cause_exn t src dst with
    | cause -> drop_now t ~src ~dst cause msg
    | exception Not_found ->
      if Rng.bernoulli t.rng (drop_probability t ~src ~dst) then
        drop_now t ~src ~dst Random msg
      else begin
        let base = Distribution.sample (latency_for t ~src ~dst) t.rng in
        let factor = slow_factor t src *. slow_factor t dst in
        let delay =
          if factor = 1.0 then base
          else int_of_float (factor *. float_of_int base)
        in
        let sent_at = Sim.now t.sim in
        ignore
          ((Sim.schedule t.sim ~delay (fun () ->
                deliver t ~src ~dst ~sent_at ~bytes msg))
          [@alloc_ok
            "the one deliberate per-message allocation: the in-flight \
             delivery continuation"])
      end
