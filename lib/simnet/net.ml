open Simcore

type 'msg envelope = {
  src : Addr.t;
  dst : Addr.t;
  sent_at : Time_ns.t;
  bytes : int;
  msg : 'msg;
}

type stats = {
  sent : int;
  delivered : int;
  dropped : int;
      (* always = dropped_down + dropped_blocked + dropped_partition
                  + dropped_random *)
  dropped_down : int;
  dropped_blocked : int;
  dropped_partition : int;
  dropped_random : int;
  bytes_sent : int;
  bytes_delivered : int;
}

(* Why a link is severed: a targeted [block] or a set-level [partition].
   The split feeds the cause-separated drop counters so a vopr scenario can
   distinguish partition loss from pinpoint blocks. *)
type block_kind = Direct | Part

type 'msg t = {
  sim : Sim.t;
  rng : Rng.t;
  default_latency : Distribution.t;
  handlers : ('msg envelope -> unit) Addr.Tbl.t;
  link_latency : (int * int, Distribution.t) Hashtbl.t;
  mutable latency_fn : Addr.t -> Addr.t -> Distribution.t option;
  link_drop : (int * int, float) Hashtbl.t;
  mutable global_drop : float;
  slowdown : float Addr.Tbl.t;
  down : unit Addr.Tbl.t;
  blocked : (int * int, block_kind) Hashtbl.t;
  mutable st : stats;
}

let zero_stats =
  {
    sent = 0;
    delivered = 0;
    dropped = 0;
    dropped_down = 0;
    dropped_blocked = 0;
    dropped_partition = 0;
    dropped_random = 0;
    bytes_sent = 0;
    bytes_delivered = 0;
  }

let create ~sim ~rng ~default_latency ?obs () =
  let t =
    {
      sim;
      rng;
      default_latency;
      handlers = Addr.Tbl.create 64;
      link_latency = Hashtbl.create 64;
      latency_fn = (fun _ _ -> None);
      link_drop = Hashtbl.create 16;
      global_drop = 0.;
      slowdown = Addr.Tbl.create 16;
      down = Addr.Tbl.create 16;
      blocked = Hashtbl.create 16;
      st = zero_stats;
    }
  in
  (match obs with
  | None -> ()
  | Some obs ->
    let reg = Obs.Ctx.registry obs in
    let c name f = Obs.Registry.counter_fn reg name f in
    c "net_sent" (fun () -> t.st.sent);
    c "net_delivered" (fun () -> t.st.delivered);
    c "net_dropped" (fun () -> t.st.dropped);
    c "net_dropped_down" (fun () -> t.st.dropped_down);
    c "net_dropped_blocked" (fun () -> t.st.dropped_blocked);
    c "net_dropped_partition" (fun () -> t.st.dropped_partition);
    c "net_dropped_random" (fun () -> t.st.dropped_random);
    c "net_bytes_sent" (fun () -> t.st.bytes_sent);
    c "net_bytes_delivered" (fun () -> t.st.bytes_delivered));
  t

let sim t = t.sim
let key a b = (Addr.to_int a, Addr.to_int b)
let register t addr handler = Addr.Tbl.replace t.handlers addr handler
let unregister t addr = Addr.Tbl.remove t.handlers addr

let set_link_latency t ~src ~dst dist =
  Hashtbl.replace t.link_latency (key src dst) dist

let set_latency_fn t f = t.latency_fn <- f
let set_drop_probability t p = t.global_drop <- p
let set_link_drop t ~src ~dst p = Hashtbl.replace t.link_drop (key src dst) p

let set_node_slowdown t addr factor =
  if factor <= 0. then invalid_arg "Net.set_node_slowdown: non-positive";
  Addr.Tbl.replace t.slowdown addr factor

let set_down t addr = Addr.Tbl.replace t.down addr ()
let set_up t addr = Addr.Tbl.remove t.down addr
let is_down t addr = Addr.Tbl.mem t.down addr
let block_as t kind a b =
  Hashtbl.replace t.blocked (key a b) kind;
  Hashtbl.replace t.blocked (key b a) kind

let block t a b = block_as t Direct a b

let unblock t a b =
  Hashtbl.remove t.blocked (key a b);
  Hashtbl.remove t.blocked (key b a)

let partition t sa sb =
  Addr.Set.iter (fun a -> Addr.Set.iter (fun b -> block_as t Part a b) sb) sa

let heal_partition t sa sb =
  Addr.Set.iter (fun a -> Addr.Set.iter (fun b -> unblock t a b) sb) sa

let blocked_kind t a b = Hashtbl.find_opt t.blocked (key a b)

let latency_for t ~src ~dst =
  match Hashtbl.find_opt t.link_latency (key src dst) with
  | Some d -> d
  | None -> (
    match t.latency_fn src dst with
    | Some d -> d
    | None -> t.default_latency)

let drop_probability t ~src ~dst =
  match Hashtbl.find_opt t.link_drop (key src dst) with
  | Some p -> Float.max p t.global_drop
  | None -> t.global_drop

let slow_factor t addr =
  match Addr.Tbl.find_opt t.slowdown addr with Some f -> f | None -> 1.0

let stats t = t.st
let reset_stats t = t.st <- zero_stats

type drop_cause = Down | Blocked | Partitioned | Random

let note_drop t cause =
  let st = t.st in
  t.st <-
    (match cause with
    | Down -> { st with dropped = st.dropped + 1; dropped_down = st.dropped_down + 1 }
    | Blocked ->
      { st with dropped = st.dropped + 1; dropped_blocked = st.dropped_blocked + 1 }
    | Partitioned ->
      {
        st with
        dropped = st.dropped + 1;
        dropped_partition = st.dropped_partition + 1;
      }
    | Random ->
      { st with dropped = st.dropped + 1; dropped_random = st.dropped_random + 1 })

let sever_cause t a b =
  match blocked_kind t a b with
  | Some Direct -> Some Blocked
  | Some Part -> Some Partitioned
  | None -> None

let send t ~src ~dst ?(bytes = 64) msg =
  t.st <- { t.st with sent = t.st.sent + 1; bytes_sent = t.st.bytes_sent + bytes };
  (* Attribution order mirrors the old short-circuit: the stochastic draw
     happens only when neither endpoint fault applies, keeping the RNG
     stream (and thus every seeded run) identical. *)
  if is_down t src then note_drop t Down
  else
    match sever_cause t src dst with
    | Some cause -> note_drop t cause
    | None ->
      if Rng.bernoulli t.rng (drop_probability t ~src ~dst) then
        note_drop t Random
      else begin
        let base = Distribution.sample (latency_for t ~src ~dst) t.rng in
        let factor = slow_factor t src *. slow_factor t dst in
        let delay =
          if factor = 1.0 then base
          else int_of_float (factor *. float_of_int base)
        in
        let env = { src; dst; sent_at = Sim.now t.sim; bytes; msg } in
        ignore
          (Sim.schedule t.sim ~delay (fun () ->
               (* Down / blocked state is re-checked at delivery: a node that
                  crashed while the message was in flight never sees it.  An
                  unregistered destination counts as down. *)
               if is_down t dst then note_drop t Down
               else
                 match sever_cause t src dst with
                 | Some cause -> note_drop t cause
                 | None -> (
                   match Addr.Tbl.find_opt t.handlers dst with
                   | None -> note_drop t Down
                   | Some handler ->
                     t.st <-
                       {
                         t.st with
                         delivered = t.st.delivered + 1;
                         bytes_delivered = t.st.bytes_delivered + bytes;
                       };
                     (* Perf span around the handler only — latency modelling
                        and drop bookkeeping above are scheduling, not
                        delivery work. *)
                     Perf.Probe.start Perf.Probe.Net_delivery;
                     handler env;
                     Perf.Probe.stop Perf.Probe.Net_delivery)))
      end
