open Simcore

type 'msg envelope = {
  src : Addr.t;
  dst : Addr.t;
  sent_at : Time_ns.t;
  bytes : int;
  msg : 'msg;
}

type stats = {
  sent : int;
  delivered : int;
  dropped : int;
      (* always = dropped_down + dropped_blocked + dropped_partition
                  + dropped_random *)
  dropped_down : int;
  dropped_blocked : int;
  dropped_partition : int;
  dropped_random : int;
  bytes_sent : int;
  bytes_delivered : int;
}

(* Why a link is severed: a targeted [block] or a set-level [partition].
   The split feeds the cause-separated drop counters so a vopr scenario can
   distinguish partition loss from pinpoint blocks. *)
type block_kind = Direct | Part

type drop_cause = Down | Blocked | Partitioned | Random

type phase = Sent | Delivered | Dropped of drop_cause

(* Per-link delivery counters, keyed (src, dst) as ints.  Mutable in
   place: [send] is the sim's hottest path and the stats record above is
   already copied per call. *)
type link_counters = {
  mutable l_sent : int;
  mutable l_delivered : int;
  mutable l_down : int;
  mutable l_blocked : int;
  mutable l_partition : int;
  mutable l_random : int;
}

type link_stat = {
  sent_on : int;
  delivered_on : int;
  drop_down : int;
  drop_blocked : int;
  drop_partition : int;
  drop_random : int;
}

type 'msg t = {
  sim : Sim.t;
  rng : Rng.t;
  default_latency : Distribution.t;
  handlers : ('msg envelope -> unit) Addr.Tbl.t;
  link_latency : (int * int, Distribution.t) Hashtbl.t;
  mutable latency_fn : Addr.t -> Addr.t -> Distribution.t option;
  link_drop : (int * int, float) Hashtbl.t;
  mutable global_drop : float;
  slowdown : float Addr.Tbl.t;
  down : unit Addr.Tbl.t;
  blocked : (int * int, block_kind) Hashtbl.t;
  links : (int * int, link_counters) Hashtbl.t;
  mutable recorder : (phase -> src:Addr.t -> dst:Addr.t -> 'msg -> unit) option;
  mutable st : stats;
}

let zero_stats =
  {
    sent = 0;
    delivered = 0;
    dropped = 0;
    dropped_down = 0;
    dropped_blocked = 0;
    dropped_partition = 0;
    dropped_random = 0;
    bytes_sent = 0;
    bytes_delivered = 0;
  }

let create ~sim ~rng ~default_latency ?obs () =
  let t =
    {
      sim;
      rng;
      default_latency;
      handlers = Addr.Tbl.create 64;
      link_latency = Hashtbl.create 64;
      latency_fn = (fun _ _ -> None);
      link_drop = Hashtbl.create 16;
      global_drop = 0.;
      slowdown = Addr.Tbl.create 16;
      down = Addr.Tbl.create 16;
      blocked = Hashtbl.create 16;
      links = Hashtbl.create 64;
      recorder = None;
      st = zero_stats;
    }
  in
  (match obs with
  | None -> ()
  | Some obs ->
    let reg = Obs.Ctx.registry obs in
    let c name f = Obs.Registry.counter_fn reg name f in
    c "net_sent" (fun () -> t.st.sent);
    c "net_delivered" (fun () -> t.st.delivered);
    c "net_dropped" (fun () -> t.st.dropped);
    c "net_dropped_down" (fun () -> t.st.dropped_down);
    c "net_dropped_blocked" (fun () -> t.st.dropped_blocked);
    c "net_dropped_partition" (fun () -> t.st.dropped_partition);
    c "net_dropped_random" (fun () -> t.st.dropped_random);
    c "net_bytes_sent" (fun () -> t.st.bytes_sent);
    c "net_bytes_delivered" (fun () -> t.st.bytes_delivered));
  t

let sim t = t.sim
let key a b = (Addr.to_int a, Addr.to_int b)
let register t addr handler = Addr.Tbl.replace t.handlers addr handler
let unregister t addr = Addr.Tbl.remove t.handlers addr

let set_link_latency t ~src ~dst dist =
  Hashtbl.replace t.link_latency (key src dst) dist

let set_latency_fn t f = t.latency_fn <- f
let set_drop_probability t p = t.global_drop <- p
let set_link_drop t ~src ~dst p = Hashtbl.replace t.link_drop (key src dst) p

let set_node_slowdown t addr factor =
  if factor <= 0. then invalid_arg "Net.set_node_slowdown: non-positive";
  Addr.Tbl.replace t.slowdown addr factor

let set_down t addr = Addr.Tbl.replace t.down addr ()
let set_up t addr = Addr.Tbl.remove t.down addr
let is_down t addr = Addr.Tbl.mem t.down addr
let block_as t kind a b =
  Hashtbl.replace t.blocked (key a b) kind;
  Hashtbl.replace t.blocked (key b a) kind

let block t a b = block_as t Direct a b

let unblock t a b =
  Hashtbl.remove t.blocked (key a b);
  Hashtbl.remove t.blocked (key b a)

let partition t sa sb =
  Addr.Set.iter (fun a -> Addr.Set.iter (fun b -> block_as t Part a b) sb) sa

let heal_partition t sa sb =
  Addr.Set.iter (fun a -> Addr.Set.iter (fun b -> unblock t a b) sb) sa

let blocked_kind t a b = Hashtbl.find_opt t.blocked (key a b)

let latency_for t ~src ~dst =
  match Hashtbl.find_opt t.link_latency (key src dst) with
  | Some d -> d
  | None -> (
    match t.latency_fn src dst with
    | Some d -> d
    | None -> t.default_latency)

let drop_probability t ~src ~dst =
  match Hashtbl.find_opt t.link_drop (key src dst) with
  | Some p -> Float.max p t.global_drop
  | None -> t.global_drop

let slow_factor t addr =
  match Addr.Tbl.find_opt t.slowdown addr with Some f -> f | None -> 1.0

let stats t = t.st

let reset_stats t =
  t.st <- zero_stats;
  Hashtbl.reset t.links

let set_recorder t cb = t.recorder <- cb

let record t phase ~src ~dst msg =
  match t.recorder with None -> () | Some f -> f phase ~src ~dst msg

let link_for t src dst =
  let k = key src dst in
  match Hashtbl.find_opt t.links k with
  | Some c -> c
  | None ->
    let c =
      { l_sent = 0; l_delivered = 0; l_down = 0; l_blocked = 0;
        l_partition = 0; l_random = 0 }
    in
    Hashtbl.replace t.links k c;
    c

let link_stats t =
  Hashtbl.fold
    (fun k c acc ->
      ( k,
        {
          sent_on = c.l_sent;
          delivered_on = c.l_delivered;
          drop_down = c.l_down;
          drop_blocked = c.l_blocked;
          drop_partition = c.l_partition;
          drop_random = c.l_random;
        } )
      :: acc)
    t.links []
  |> List.sort (fun ((a1, a2), _) ((b1, b2), _) ->
         match Int.compare a1 b1 with 0 -> Int.compare a2 b2 | c -> c)

let note_drop t ~src ~dst cause =
  let st = t.st in
  let link = link_for t src dst in
  t.st <-
    (match cause with
    | Down ->
      link.l_down <- link.l_down + 1;
      { st with dropped = st.dropped + 1; dropped_down = st.dropped_down + 1 }
    | Blocked ->
      link.l_blocked <- link.l_blocked + 1;
      { st with dropped = st.dropped + 1; dropped_blocked = st.dropped_blocked + 1 }
    | Partitioned ->
      link.l_partition <- link.l_partition + 1;
      {
        st with
        dropped = st.dropped + 1;
        dropped_partition = st.dropped_partition + 1;
      }
    | Random ->
      link.l_random <- link.l_random + 1;
      { st with dropped = st.dropped + 1; dropped_random = st.dropped_random + 1 })

let sever_cause t a b =
  match blocked_kind t a b with
  | Some Direct -> Some Blocked
  | Some Part -> Some Partitioned
  | None -> None

let send t ~src ~dst ?(bytes = 64) msg =
  t.st <- { t.st with sent = t.st.sent + 1; bytes_sent = t.st.bytes_sent + bytes };
  let out = link_for t src dst in
  out.l_sent <- out.l_sent + 1;
  record t Sent ~src ~dst msg;
  let drop cause =
    note_drop t ~src ~dst cause;
    record t (Dropped cause) ~src ~dst msg
  in
  (* Attribution order mirrors the old short-circuit: the stochastic draw
     happens only when neither endpoint fault applies, keeping the RNG
     stream (and thus every seeded run) identical. *)
  if is_down t src then drop Down
  else
    match sever_cause t src dst with
    | Some cause -> drop cause
    | None ->
      if Rng.bernoulli t.rng (drop_probability t ~src ~dst) then drop Random
      else begin
        let base = Distribution.sample (latency_for t ~src ~dst) t.rng in
        let factor = slow_factor t src *. slow_factor t dst in
        let delay =
          if factor = 1.0 then base
          else int_of_float (factor *. float_of_int base)
        in
        let env = { src; dst; sent_at = Sim.now t.sim; bytes; msg } in
        ignore
          (Sim.schedule t.sim ~delay (fun () ->
               (* Down / blocked state is re-checked at delivery: a node that
                  crashed while the message was in flight never sees it.  An
                  unregistered destination counts as down. *)
               if is_down t dst then drop Down
               else
                 match sever_cause t src dst with
                 | Some cause -> drop cause
                 | None -> (
                   match Addr.Tbl.find_opt t.handlers dst with
                   | None -> drop Down
                   | Some handler ->
                     t.st <-
                       {
                         t.st with
                         delivered = t.st.delivered + 1;
                         bytes_delivered = t.st.bytes_delivered + bytes;
                       };
                     let link = link_for t src dst in
                     link.l_delivered <- link.l_delivered + 1;
                     record t Delivered ~src ~dst msg;
                     (* Perf span around the handler only — latency modelling
                        and drop bookkeeping above are scheduling, not
                        delivery work. *)
                     Perf.Probe.start Perf.Probe.Net_delivery;
                     handler env;
                     Perf.Probe.stop Perf.Probe.Net_delivery)))
      end
