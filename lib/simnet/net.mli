(** Simulated datagram network.

    Messages are delivered asynchronously after a latency draw from a
    per-link distribution, may be dropped (per-link or globally), and are
    never reordered artificially beyond what independent latency draws
    produce — matching the "asynchronous flows" the paper's protocols are
    designed around (§2.2): senders never block, and any write may be lost
    for any reason.

    The network is polymorphic in the message type; each layer of the
    system instantiates it with its own protocol variant.  Faults:

    - node down/up: messages to or from a down node are silently dropped;
    - partitions: arbitrary blocked address pairs;
    - slow nodes: multiplicative latency factor per node (e.g. a storage
      node hit by background work, used by the hedged-read experiment). *)

type 'msg t

(** Delivery envelope.  The network keeps ONE scratch envelope per
    {!t} and refills it for every delivery (fields are mutable for that
    reason): handlers must read what they need during the call and must
    not retain the record or expect it to stay stable afterwards. *)
type 'msg envelope = {
  mutable src : Addr.t;
  mutable dst : Addr.t;
  mutable sent_at : Simcore.Time_ns.t;
  mutable bytes : int;
  mutable msg : 'msg;
}

type stats = {
  sent : int;
  delivered : int;
  dropped : int;  (** Sum of the four cause-split counters below. *)
  dropped_down : int;
      (** Endpoint down at send or delivery (an unregistered destination
          counts as down). *)
  dropped_blocked : int;  (** Link severed by a targeted {!block}. *)
  dropped_partition : int;
      (** Link severed by a set-level {!partition} — split from
          [dropped_blocked] so fault scenarios can attribute loss to the
          partition nemesis rather than pinpoint blocks. *)
  dropped_random : int;  (** Stochastic loss (global or per-link). *)
  bytes_sent : int;
  bytes_delivered : int;
}

val create :
  sim:Simcore.Sim.t ->
  rng:Simcore.Rng.t ->
  default_latency:Simcore.Distribution.t ->
  ?obs:Obs.Ctx.t ->
  unit ->
  'msg t
(** [obs] registers the [net_*] counters (sent/delivered/dropped with
    cause split/bytes) in the given registry. *)

val sim : 'msg t -> Simcore.Sim.t

val register : 'msg t -> Addr.t -> ('msg envelope -> unit) -> unit
(** Install the delivery handler for an address (replacing any previous
    one — a restarted process re-registers). *)

val unregister : 'msg t -> Addr.t -> unit

val send : 'msg t -> src:Addr.t -> dst:Addr.t -> ?bytes:int -> 'msg -> unit
(** Fire-and-forget.  [bytes] (default 64) feeds traffic accounting — the
    paper's network-amplification comparisons count bytes, not messages. *)

val set_link_latency :
  'msg t -> src:Addr.t -> dst:Addr.t -> Simcore.Distribution.t -> unit
(** Override the latency distribution of one directed link. *)

val set_latency_fn :
  'msg t -> (Addr.t -> Addr.t -> Simcore.Distribution.t option) -> unit
(** Bulk link model (e.g. by AZ distance); consulted before per-link
    overrides fall back to the default. *)

val set_drop_probability : 'msg t -> float -> unit
(** Global iid drop probability applied to every message. *)

val set_link_drop : 'msg t -> src:Addr.t -> dst:Addr.t -> float -> unit

val set_node_slowdown : 'msg t -> Addr.t -> float -> unit
(** Latency multiplier for all traffic to/from the node (1.0 = normal). *)

val set_down : 'msg t -> Addr.t -> unit
val set_up : 'msg t -> Addr.t -> unit
val is_down : 'msg t -> Addr.t -> bool

val block : 'msg t -> Addr.t -> Addr.t -> unit
(** Sever both directions between two addresses.  Drops on the link count
    as [dropped_blocked]. *)

val unblock : 'msg t -> Addr.t -> Addr.t -> unit

val partition : 'msg t -> Addr.Set.t -> Addr.Set.t -> unit
(** Block every pair across the two sets.  Drops on these links count as
    [dropped_partition].  A pair both [block]ed and [partition]ed carries
    the cause applied last. *)

val heal_partition : 'msg t -> Addr.Set.t -> Addr.Set.t -> unit

val stats : 'msg t -> stats

val reset_stats : 'msg t -> unit
(** Zero the global counters and forget per-link ones. *)

(** Why a particular message was dropped — the per-message analogue of the
    cause-split counters in {!stats}. *)
type drop_cause =
  | Down  (** endpoint down (or destination unregistered) *)
  | Blocked  (** link severed by a targeted {!block} *)
  | Partitioned  (** link severed by a set-level {!partition} *)
  | Random  (** stochastic loss *)

(** Lifecycle points a message passes through.  Every send yields [Sent],
    then exactly one of [Delivered] or [Dropped] (at send time or at the
    scheduled delivery time). *)
type phase = Sent | Delivered | Dropped of drop_cause

val set_recorder :
  'msg t -> (phase -> src:Addr.t -> dst:Addr.t -> 'msg -> unit) option -> unit
(** Install (or clear) a flight-recorder hook, called synchronously on
    every message phase.  The hook must not send, schedule, or draw
    randomness — it observes; the harness uses it to feed
    [Recorder.Rings] without the network depending on the recorder. *)

(** Per-link delivery counters, keyed by directed (src, dst) node-id
    pair. *)
type link_stat = {
  sent_on : int;
  delivered_on : int;
  drop_down : int;
  drop_blocked : int;
  drop_partition : int;
  drop_random : int;
}

val link_stats : 'msg t -> ((int * int) * link_stat) list
(** Every link that carried at least one message, sorted by (src, dst) —
    deterministic, feeds the recorder artifact's [net] section. *)
