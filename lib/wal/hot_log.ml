type truncation = { above : Lsn.t; upto : Lsn.t }

type t = {
  records : (int, Log_record.t) Hashtbl.t; (* keyed by LSN *)
  by_prev : (int, Log_record.t) Hashtbl.t; (* pending, keyed by prev_segment *)
  mutable scl : Lsn.t;
  mutable highest : Lsn.t;
  mutable truncations : truncation list;
  mutable bytes : int;
  mutable dropped_upto : Lsn.t; (* GC floor: records at/below were dropped *)
}

(* All three results are constant constructors: [insert] runs for every
   record a storage node receives, and an [Accepted of Lsn.t] payload would
   allocate a block per accepted record just to carry what [scl] already
   exposes. *)
type insert_result = Accepted | Duplicate | Annulled

let create () =
  {
    records = Hashtbl.create 256;
    by_prev = Hashtbl.create 16;
    scl = Lsn.none;
    highest = Lsn.none;
    truncations = [];
    bytes = 0;
    dropped_upto = Lsn.none;
  }

let create_anchored anchor =
  let t = create () in
  t.scl <- anchor;
  t.highest <- anchor;
  t.dropped_upto <- anchor;
  t

let scl t = t.scl
let highest_received t = t.highest
let dropped_upto t = t.dropped_upto
let contains t lsn = Hashtbl.mem t.records (Lsn.to_int lsn)
let find t lsn = Hashtbl.find_opt t.records (Lsn.to_int lsn)
let record_count t = Hashtbl.length t.records
let bytes_stored t = t.bytes

(* Top-level (not a closure capturing [lsn]): this check runs on every
   insert, i.e. per received record. *)
let rec lsn_annulled lsn = function
  | [] -> false
  | { above; upto } :: rest ->
    (Lsn.(lsn > above) && Lsn.(lsn <= upto)) || lsn_annulled lsn rest

let is_annulled t lsn = lsn_annulled lsn t.truncations

(* Chase the chain forward through pending records starting at the current
   SCL; each pending record whose prev_segment equals the chain tail extends
   the gapless prefix.  Exception-based lookup: [find_opt] would box a
   [Some] per chained record. *)
let rec advance t =
  match Hashtbl.find t.by_prev (Lsn.to_int t.scl) with
  | exception Not_found -> ()
  | r ->
    Hashtbl.remove t.by_prev (Lsn.to_int t.scl);
    t.scl <- r.Log_record.lsn;
    advance t

let insert t (r : Log_record.t) =
  if contains t r.lsn then Duplicate
  else if is_annulled t r.lsn then Annulled
  else if Lsn.(r.lsn <= t.scl) then
    (* Chain position already passed (e.g. re-gossiped after truncation
       rebuild); store for reads but the SCL is unaffected. *)
    begin
      Hashtbl.replace t.records (Lsn.to_int r.lsn) r;
      t.bytes <- t.bytes + r.size_bytes;
      Accepted
    end
  else begin
    Hashtbl.replace t.records (Lsn.to_int r.lsn) r;
    Hashtbl.replace t.by_prev (Lsn.to_int r.prev_segment) r;
    t.bytes <- t.bytes + r.size_bytes;
    if Lsn.(r.lsn > t.highest) then t.highest <- r.lsn;
    advance t;
    Accepted
  end

let pending_count t = Hashtbl.length t.by_prev

let chain_to_list t =
  (* Walk backwards from SCL via prev_segment links, then reverse. *)
  let rec walk lsn acc =
    if Lsn.is_none lsn then acc
    else
      match find t lsn with
      | None -> acc (* anchored segment: chain known-complete below anchor *)
      | Some r -> walk r.Log_record.prev_segment (r :: acc)
  in
  walk t.scl []

let chained_records_above t lsn =
  let rec walk cur acc =
    if Lsn.is_none cur || Lsn.(cur <= lsn) then acc
    else
      match find t cur with
      | None -> acc
      | Some r -> walk r.Log_record.prev_segment (r :: acc)
  in
  walk t.scl []

let fold_chain t ~init ~f = List.fold_left f init (chain_to_list t)

let drop_below t ~upto =
  let doomed =
    Hashtbl.fold
      (fun lsn_int r acc ->
        if Lsn.(Lsn.of_int lsn_int <= upto) then r :: acc else acc)
      t.records []
  in
  List.iter
    (fun (r : Log_record.t) ->
      Hashtbl.remove t.records (Lsn.to_int r.lsn);
      t.bytes <- t.bytes - r.size_bytes;
      if Lsn.(r.lsn > t.dropped_upto) then t.dropped_upto <- r.lsn)
    doomed;
  List.length doomed

let annul_range t ~above ~upto =
  if Lsn.(upto < above) then invalid_arg "Hot_log.annul_range: upto < above";
  t.truncations <- { above; upto } :: t.truncations;
  let doomed =
    Hashtbl.fold
      (fun lsn_int r acc ->
        let lsn = Lsn.of_int lsn_int in
        if Lsn.(lsn > above) && Lsn.(lsn <= upto) then r :: acc else acc)
      t.records []
  in
  List.iter
    (fun (r : Log_record.t) ->
      Hashtbl.remove t.records (Lsn.to_int r.lsn);
      t.bytes <- t.bytes - r.size_bytes)
    doomed;
  (* Rebuild the pending index and re-anchor the chain: if chained records
     were annulled, the new tail is the predecessor of the oldest annulled
     chained record (an actual record LSN, which keeps segment chains
     linkable after recovery). *)
  Hashtbl.reset t.by_prev;
  if Lsn.(t.scl > above) then begin
    let new_tail =
      List.fold_left
        (fun acc (r : Log_record.t) ->
          if Lsn.(r.lsn <= t.scl) then
            match acc with
            | Some (best : Log_record.t) when Lsn.(best.lsn <= r.lsn) -> acc
            | _ -> Some r
          else acc)
        None doomed
    in
    match new_tail with
    | Some oldest_chained -> t.scl <- oldest_chained.prev_segment
    | None -> t.scl <- above
  end;
  t.highest <- t.scl;
  Hashtbl.iter
    (fun lsn_int r ->
      let lsn = Lsn.of_int lsn_int in
      if Lsn.(lsn > t.scl) then begin
        Hashtbl.replace t.by_prev (Lsn.to_int r.Log_record.prev_segment) r;
        if Lsn.(lsn > t.highest) then t.highest <- lsn
      end)
    t.records;
  advance t;
  List.length doomed
