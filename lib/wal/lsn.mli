(** Log Sequence Numbers.

    The LSN space is common across the whole database volume, monotonically
    increasing, and allocated solely by the (single) writer instance — the
    paper's key invariant ("the log only ever marches forward") that lets
    Aurora replace consensus with bookkeeping.  LSNs start at 1; {!none} (0)
    is the chain terminator used by the first record of each back-chain. *)

type t = private int

val none : t
(** Chain terminator / "no LSN yet".  Compares below every real LSN. *)

val first : t
(** The first allocatable LSN (1). *)

val of_int : int -> t
(** @raise Invalid_argument on negatives. *)

val to_int : t -> int
val next : t -> t
val add : t -> int -> t

val diff : t -> t -> int
(** [diff a b] is how far [a] is ahead of [b] (negative if behind) — the
    lag/backlog metric.  The only sanctioned LSN subtraction; the
    [lsn-arith] lint rule bans raw arithmetic on LSNs elsewhere. *)


val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val max : t -> t -> t
val min : t -> t -> t
val is_none : t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Monotonic allocator owned by the writer instance.  Allocation is pure
    local state — this is precisely what the paper exploits. *)
module Allocator : sig
  type lsn := t
  type t

  val create : unit -> t

  val create_above : lsn -> t
  (** Restart allocation strictly above a point — used after crash recovery
      so new records land above the truncation range (§2.4). *)

  val reset_above : t -> lsn -> unit
  (** In-place variant of {!create_above}.
      @raise Invalid_argument if the point is below the current tail
      (the LSN space only ever marches forward). *)

  val last : t -> lsn
  (** Highest LSN allocated so far ({!none} initially). *)

  val take : t -> lsn
  (** Allocate the next LSN. *)

  val take_batch : t -> int -> lsn * lsn
  (** [take_batch t n] allocates [n] contiguous LSNs (an MTR's batch),
      returning [(first, last)] inclusive.  [n >= 1]. *)
end
