type op =
  | Put of { key : string; value : string }
  | Delete of { key : string }
  | Commit
  | Abort
  | Noop

type t = {
  lsn : Lsn.t;
  prev_volume : Lsn.t;
  prev_segment : Lsn.t;
  prev_block : Lsn.t;
  block : Block_id.t;
  txn : Txn_id.t;
  mtr_id : int;
  mtr_end : bool;
  op : op;
  size_bytes : int;
}

(* LSN + three back-links + block + txn + mtr + flags, roughly what a compact
   on-wire encoding would need. *)
let header_bytes = 48

let op_bytes = function
  | Put { key; value } -> String.length key + String.length value
  | Delete { key } -> String.length key
  | Commit | Abort | Noop -> 0

let make ~lsn ~prev_volume ~prev_segment ~prev_block ~block ~txn ~mtr_id
    ~mtr_end ~op =
  {
    lsn;
    prev_volume;
    prev_segment;
    prev_block;
    block;
    txn;
    mtr_id;
    mtr_end;
    op;
    size_bytes = header_bytes + op_bytes op;
  }
  [@alloc_ok "the record being built is the product"]

let equal_op a b =
  match (a, b) with
  | Put { key = ka; value = va }, Put { key = kb; value = vb } ->
    String.equal ka kb && String.equal va vb
  | Delete { key = ka }, Delete { key = kb } -> String.equal ka kb
  | Commit, Commit | Abort, Abort | Noop, Noop -> true
  | (Put _ | Delete _ | Commit | Abort | Noop), _ -> false

let equal a b =
  Lsn.equal a.lsn b.lsn
  && Lsn.equal a.prev_volume b.prev_volume
  && Lsn.equal a.prev_segment b.prev_segment
  && Lsn.equal a.prev_block b.prev_block
  && Block_id.equal a.block b.block
  && Txn_id.equal a.txn b.txn
  && Int.equal a.mtr_id b.mtr_id
  && Bool.equal a.mtr_end b.mtr_end
  && equal_op a.op b.op
  && Int.equal a.size_bytes b.size_bytes

(* Records travel in ascending-LSN batches, but scan anyway: the range of
   a gossip or hydrate reply must not depend on the sender's ordering.
   Accumulates in plain int-like Lsn arguments — only the final result is
   boxed, not one option per element as the old fold did. *)
let rec range_from lo hi = function
  | [] -> Some (lo, hi) [@alloc_ok "single boxed result per batch"]
  | r :: rest -> range_from (Lsn.min lo r.lsn) (Lsn.max hi r.lsn) rest

let lsn_range = function
  | [] -> None
  | r :: rest -> range_from r.lsn r.lsn rest

let is_commit t = match t.op with Commit -> true | Put _ | Delete _ | Abort | Noop -> false
let is_abort t = match t.op with Abort -> true | Put _ | Delete _ | Commit | Noop -> false

let pp_op fmt = function
  | Put { key; value } -> Format.fprintf fmt "put %s=%s" key value
  | Delete { key } -> Format.fprintf fmt "del %s" key
  | Commit -> Format.pp_print_string fmt "commit"
  | Abort -> Format.pp_print_string fmt "abort"
  | Noop -> Format.pp_print_string fmt "noop"

let pp fmt t =
  Format.fprintf fmt "[lsn=%a prev(v=%a,s=%a,b=%a) %a %a mtr=%d%s %a]" Lsn.pp
    t.lsn Lsn.pp t.prev_volume Lsn.pp t.prev_segment Lsn.pp t.prev_block
    Block_id.pp t.block Txn_id.pp t.txn t.mtr_id
    (if t.mtr_end then "*" else "")
    pp_op t.op
