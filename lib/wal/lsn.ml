type t = int

let none = 0
let first = 1

let of_int i =
  if i < 0 then invalid_arg "Lsn.of_int: negative" else i

let to_int t = t
let next t = t + 1
let add t n = t + n
let diff a b = a - b
let compare = Int.compare
let equal = Int.equal
let ( < ) (a : t) b = Stdlib.( < ) a b
let ( <= ) (a : t) b = Stdlib.( <= ) a b
let ( > ) (a : t) b = Stdlib.( > ) a b
let ( >= ) (a : t) b = Stdlib.( >= ) a b
let max = Stdlib.max
let min = Stdlib.min
let is_none t = t = 0
let pp fmt t = Format.fprintf fmt "%d" t
let to_string = string_of_int

module Allocator = struct
  type nonrec t = { mutable last : t }

  let create () = { last = none }
  let create_above lsn = { last = lsn }

  let reset_above t lsn =
    if Stdlib.( < ) lsn t.last then
      invalid_arg "Lsn.Allocator.reset_above: would move backwards";
    t.last <- lsn
  let last t = t.last

  let take t =
    t.last <- t.last + 1;
    t.last

  let take_batch t n =
    if Stdlib.( < ) n 1 then invalid_arg "Lsn.Allocator.take_batch: n < 1";
    let first = t.last + 1 in
    t.last <- t.last + n;
    (first, t.last)
end
