(** Redo log records.

    The only writes that cross the simulated network from the database
    instance to storage nodes (§2.2).  Each record carries the paper's three
    back-chains:

    - [prev_volume]: LSN of the preceding record in the whole volume (the
      full log chain, fallback for volume-metadata regeneration);
    - [prev_segment]: LSN of the preceding record routed to the same
      protection group (the segment chain driving SCL and gossip);
    - [prev_block]: LSN of the preceding record modifying the same block
      (the block chain driving on-demand materialization).

    Records also carry their mini-transaction (MTR) identity: storage-level
    structural atomicity (§3.3) is expressed as "consistency points may only
    rest on [mtr_end] records". *)

(** Logical operation encoded by a record.  The engine above is a
    transactional key-value store, so redo deltas are keyed puts/deletes. *)
type op =
  | Put of { key : string; value : string }
  | Delete of { key : string }
  | Commit  (** Transaction commit; the record's LSN is the txn's SCN. *)
  | Abort  (** Transaction rollback marker. *)
  | Noop  (** Control / filler (used by tests and volume metadata). *)

type t = {
  lsn : Lsn.t;
  prev_volume : Lsn.t;
  prev_segment : Lsn.t;
  prev_block : Lsn.t;
  block : Block_id.t;
  txn : Txn_id.t;
  mtr_id : int;  (** Mini-transaction this record belongs to. *)
  mtr_end : bool;  (** Last record of its MTR (a VDL candidate). *)
  op : op;
  size_bytes : int;  (** Simulated wire/disk footprint. *)
}

val make :
  lsn:Lsn.t ->
  prev_volume:Lsn.t ->
  prev_segment:Lsn.t ->
  prev_block:Lsn.t ->
  block:Block_id.t ->
  txn:Txn_id.t ->
  mtr_id:int ->
  mtr_end:bool ->
  op:op ->
  t
(** Build a record; [size_bytes] is estimated from the op (a fixed header
    plus key/value payload), matching the paper's observation that redo
    records are far smaller than data blocks. *)

val header_bytes : int
(** Fixed per-record overhead used by [make]'s size estimate. *)

val equal_op : op -> op -> bool

val equal : t -> t -> bool
(** Structural equality on every field via each component's own [equal]
    (hand-written — the record mixes abstract protocol types on which
    polymorphic compare is off-limits). *)

val lsn_range : t list -> (Lsn.t * Lsn.t) option
(** Smallest and largest LSN in a batch, [None] for the empty batch —
    order-independent, used by the flight recorder to label a message
    with the range of records it carried. *)

val is_commit : t -> bool
val is_abort : t -> bool
val pp : Format.formatter -> t -> unit
val pp_op : Format.formatter -> op -> unit
