(** Volume-level log truncation ranges (§2.4, Figure 4).

    On crash recovery the database instance "snips off the ragged edge of the
    log by recording a truncation range that annuls any log records beyond
    the newly computed VCL".  The range is registered with every segment so
    that in-flight asynchronous writes completing after recovery are ignored,
    and the post-recovery LSN allocator restarts above the range. *)

type t = private {
  above : Lsn.t;  (** Records with LSN [> above] are annulled... *)
  upto : Lsn.t;  (** ... up to and including [upto]. *)
}

val make : above:Lsn.t -> upto:Lsn.t -> t
(** @raise Invalid_argument if [upto < above]. *)

val equal : t -> t -> bool
(** Same annulled range (field-wise [Lsn.equal]). *)

val annuls : t -> Lsn.t -> bool
val next_allocatable : t -> Lsn.t
(** First LSN above the range, where post-recovery allocation resumes. *)

val pp : Format.formatter -> t -> unit
