type t = { above : Lsn.t; upto : Lsn.t }

let make ~above ~upto =
  if Lsn.(upto < above) then invalid_arg "Truncation.make: upto < above";
  { above; upto }

let equal a b = Lsn.equal a.above b.above && Lsn.equal a.upto b.upto
let annuls t lsn = Lsn.(lsn > t.above) && Lsn.(lsn <= t.upto)
let next_allocatable t = Lsn.next t.upto

let pp fmt t =
  Format.fprintf fmt "annul(%a, %a]" Lsn.pp t.above Lsn.pp t.upto
