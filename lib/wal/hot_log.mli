(** Per-segment hot log with gap tracking and SCL maintenance.

    A storage node keeps one [Hot_log.t] per segment it hosts.  Records may
    arrive out of order or never (dropped writes are tolerated by design,
    §2.2); the hot log buffers out-of-chain records and advances the Segment
    Complete LSN — "the inclusive upper bound on log records continuously
    linked through the segment chain without gaps" (§2.3) — as holes fill,
    either from the writer or from peer gossip. *)

type t

(** Constant constructors on purpose: [insert] runs per received record
    and must not allocate.  After [Accepted], read the (possibly advanced)
    SCL via {!scl}. *)
type insert_result =
  | Accepted  (** Stored; the SCL may have advanced — see {!scl}. *)
  | Duplicate  (** Already present; ignored. *)
  | Annulled  (** LSN falls in a truncation range; rejected (§2.4). *)

val create : unit -> t

val create_anchored : Lsn.t -> t
(** A hot log whose segment chain starts after the given LSN — used when a
    new segment is hydrated from peers during repair and adopts their chain
    position. *)

val insert : t -> Log_record.t -> insert_result

val scl : t -> Lsn.t
(** Current Segment Complete LSN ({!Lsn.none} when nothing is chained). *)

val highest_received : t -> Lsn.t
(** Highest record LSN stored, chained or not ([>= scl]). *)

val contains : t -> Lsn.t -> bool
val find : t -> Lsn.t -> Log_record.t option

val dropped_upto : t -> Lsn.t
(** Highest LSN removed by {!drop_below} — the retention floor.  Records at
    or below it are no longer fetchable from this segment (recovery anchors
    its volume-chain walk above the maximum such floor). *)

val record_count : t -> int
val pending_count : t -> int
(** Records received but not yet linked into the gapless prefix. *)

val chained_records_above : t -> Lsn.t -> Log_record.t list
(** Records of the gapless chain with LSN strictly above the argument, in
    chain order — exactly what a gossiping peer with that SCL is missing. *)

val chain_to_list : t -> Log_record.t list
(** The full gapless chain in order. *)

val fold_chain : t -> init:'a -> f:('a -> Log_record.t -> 'a) -> 'a

val annul_range : t -> above:Lsn.t -> upto:Lsn.t -> int
(** Apply a truncation range: drop stored records with LSN in
    [(above, upto]], clamp SCL to [above], and reject future inserts in the
    range.  Returns the number of records dropped. *)

val is_annulled : t -> Lsn.t -> bool

val drop_below : t -> upto:Lsn.t -> int
(** Garbage-collect records with LSN [<= upto] (they are coalesced and/or
    backed up; Figure 2 step 7).  The SCL is unaffected — the chain below
    the drop point is remembered as complete.  Returns records dropped. *)

val bytes_stored : t -> int
(** Total [size_bytes] of stored records (hot-log footprint). *)
