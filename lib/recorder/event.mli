(** Typed flight-recorder events.

    Every payload field is a plain [int] — LSNs, PGs, epochs, txn ids and
    node ids are carried as their integer images, with [-1] meaning "not
    applicable".  This keeps the recorder below the protocol libraries in
    the dependency order: hook points in [lib/simnet], [lib/storage],
    [lib/core] and [lib/harness] translate their abstract types when they
    record, and nothing is needed to decode an event afterwards. *)

(** What kind of actor owns a ring. *)
type role = Writer | Storage | Replica | Unknown

val role_name : role -> string
val role_of_name : string -> role option
val all_roles : role list

(** Mirror of the [Storage.Protocol] wire-message constructors, reduced to
    a bare tag. *)
type msg_kind =
  | Write_batch
  | Write_ack
  | Write_reject
  | Read_block
  | Read_reply
  | Gossip_pull
  | Gossip_reply
  | Scl_probe
  | Scl_reply
  | Truncate
  | Truncate_ack
  | Epoch_update
  | Epoch_ack
  | Membership_update
  | Hydrate_pull
  | Hydrate_reply
  | Pgmrpl_update
  | Redo_stream
  | Replica_feedback

val msg_kind_name : msg_kind -> string
val msg_kind_of_name : string -> msg_kind option
val all_msg_kinds : msg_kind list

(** Why the network dropped a message (mirror of [Simnet.Net.drop_cause]). *)
type drop_cause = Down | Blocked | Partitioned | Random

val drop_cause_name : drop_cause -> string
val drop_cause_of_name : string -> drop_cause option
val all_drop_causes : drop_cause list

(** One recorded protocol event.  Network events carry the remote peer's
    node id and the message's governing PG and LSN range ([lsn_lo = lsn_hi]
    for single-watermark messages, [-1] when the message carries no LSN). *)
type t =
  | Send of { kind : msg_kind; peer : int; pg : int; lsn_lo : int; lsn_hi : int }
  | Receive of {
      kind : msg_kind;
      peer : int;
      pg : int;
      lsn_lo : int;
      lsn_hi : int;
    }
  | Drop of {
      kind : msg_kind;
      peer : int;
      pg : int;
      lsn_lo : int;
      lsn_hi : int;
      cause : drop_cause;
    }
  | Scl_advance of { pg : int; scl : int; stored : int }
  | Gossip_fill of { pg : int; scl : int; filled : int }
  | Hydrate_import of { pg : int; scl : int }
  | Vcl_advance of { vcl : int }
  | Vdl_advance of { vdl : int }
  | Pgmrpl_advance of { pg : int; floor : int }
  | Epoch_change of { pg : int; volume_epoch : int; membership_epoch : int }
  | Commit_submit of { txn : int; scn : int }
  | Commit_ack of { txn : int; scn : int }
  | Started
  | Crashed
  | Destroyed
  | Fenced of { epoch : int }
  | Recovery_start of { epoch : int }
  | Recovery_finish of { vcl : int; vdl : int }

val equal : t -> t -> bool

val to_json : t -> Obs.Json.t
(** Deterministic object encoding: a ["ev"] tag plus fixed-order int
    fields.  [of_json] inverts it exactly. *)

val of_json : Obs.Json.t -> (t, string) result
(** Total inverse of [to_json]; extra fields (such as the ["at"] timestamp
    an artifact adds) are ignored. *)

val describe : t -> string
(** One-line human rendering, e.g. ["send write_batch ->n3 pg0 lsn [12..19]"]. *)
