(* Typed flight-recorder events.

   Every payload field is a plain [int]: LSNs, PGs, epochs, txn ids and
   node ids are carried as their integer images, with [-1] meaning "not
   applicable".  That keeps this library below [lib/wal] and
   [lib/storage] in the dependency order — the protocol layers translate
   their abstract types at the hook point, and the recorder never needs
   a protocol module to decode what it stored. *)

type role = Writer | Storage | Replica | Unknown

let role_name = function
  | Writer -> "writer"
  | Storage -> "storage"
  | Replica -> "replica"
  | Unknown -> "unknown"

let all_roles = [ Writer; Storage; Replica; Unknown ]
let role_of_name s = List.find_opt (fun r -> role_name r = s) all_roles

type msg_kind =
  | Write_batch
  | Write_ack
  | Write_reject
  | Read_block
  | Read_reply
  | Gossip_pull
  | Gossip_reply
  | Scl_probe
  | Scl_reply
  | Truncate
  | Truncate_ack
  | Epoch_update
  | Epoch_ack
  | Membership_update
  | Hydrate_pull
  | Hydrate_reply
  | Pgmrpl_update
  | Redo_stream
  | Replica_feedback

let msg_kind_name = function
  | Write_batch -> "write_batch"
  | Write_ack -> "write_ack"
  | Write_reject -> "write_reject"
  | Read_block -> "read_block"
  | Read_reply -> "read_reply"
  | Gossip_pull -> "gossip_pull"
  | Gossip_reply -> "gossip_reply"
  | Scl_probe -> "scl_probe"
  | Scl_reply -> "scl_reply"
  | Truncate -> "truncate"
  | Truncate_ack -> "truncate_ack"
  | Epoch_update -> "epoch_update"
  | Epoch_ack -> "epoch_ack"
  | Membership_update -> "membership_update"
  | Hydrate_pull -> "hydrate_pull"
  | Hydrate_reply -> "hydrate_reply"
  | Pgmrpl_update -> "pgmrpl_update"
  | Redo_stream -> "redo_stream"
  | Replica_feedback -> "replica_feedback"

let all_msg_kinds =
  [
    Write_batch;
    Write_ack;
    Write_reject;
    Read_block;
    Read_reply;
    Gossip_pull;
    Gossip_reply;
    Scl_probe;
    Scl_reply;
    Truncate;
    Truncate_ack;
    Epoch_update;
    Epoch_ack;
    Membership_update;
    Hydrate_pull;
    Hydrate_reply;
    Pgmrpl_update;
    Redo_stream;
    Replica_feedback;
  ]

let msg_kind_of_name s =
  List.find_opt (fun k -> msg_kind_name k = s) all_msg_kinds

type drop_cause = Down | Blocked | Partitioned | Random

let drop_cause_name = function
  | Down -> "down"
  | Blocked -> "blocked"
  | Partitioned -> "partitioned"
  | Random -> "random"

let all_drop_causes = [ Down; Blocked; Partitioned; Random ]

let drop_cause_of_name s =
  List.find_opt (fun c -> drop_cause_name c = s) all_drop_causes

type t =
  | Send of { kind : msg_kind; peer : int; pg : int; lsn_lo : int; lsn_hi : int }
  | Receive of {
      kind : msg_kind;
      peer : int;
      pg : int;
      lsn_lo : int;
      lsn_hi : int;
    }
  | Drop of {
      kind : msg_kind;
      peer : int;
      pg : int;
      lsn_lo : int;
      lsn_hi : int;
      cause : drop_cause;
    }
  | Scl_advance of { pg : int; scl : int; stored : int }
  | Gossip_fill of { pg : int; scl : int; filled : int }
  | Hydrate_import of { pg : int; scl : int }
  | Vcl_advance of { vcl : int }
  | Vdl_advance of { vdl : int }
  | Pgmrpl_advance of { pg : int; floor : int }
  | Epoch_change of { pg : int; volume_epoch : int; membership_epoch : int }
  | Commit_submit of { txn : int; scn : int }
  | Commit_ack of { txn : int; scn : int }
  | Started
  | Crashed
  | Destroyed
  | Fenced of { epoch : int }
  | Recovery_start of { epoch : int }
  | Recovery_finish of { vcl : int; vdl : int }

let equal (a : t) (b : t) = a = b

(* ----------------------------------------------------------------- json -- *)

let net_fields kind peer pg lsn_lo lsn_hi =
  let open Obs.Json in
  [
    ("kind", String (msg_kind_name kind));
    ("peer", Int peer);
    ("pg", Int pg);
    ("lsn_lo", Int lsn_lo);
    ("lsn_hi", Int lsn_hi);
  ]

let to_json t =
  let open Obs.Json in
  let obj tag fields = Obj (("ev", String tag) :: fields) in
  match t with
  | Send { kind; peer; pg; lsn_lo; lsn_hi } ->
    obj "send" (net_fields kind peer pg lsn_lo lsn_hi)
  | Receive { kind; peer; pg; lsn_lo; lsn_hi } ->
    obj "recv" (net_fields kind peer pg lsn_lo lsn_hi)
  | Drop { kind; peer; pg; lsn_lo; lsn_hi; cause } ->
    obj "drop"
      (net_fields kind peer pg lsn_lo lsn_hi
      @ [ ("cause", String (drop_cause_name cause)) ])
  | Scl_advance { pg; scl; stored } ->
    obj "scl_advance" [ ("pg", Int pg); ("scl", Int scl); ("stored", Int stored) ]
  | Gossip_fill { pg; scl; filled } ->
    obj "gossip_fill" [ ("pg", Int pg); ("scl", Int scl); ("filled", Int filled) ]
  | Hydrate_import { pg; scl } ->
    obj "hydrate_import" [ ("pg", Int pg); ("scl", Int scl) ]
  | Vcl_advance { vcl } -> obj "vcl_advance" [ ("vcl", Int vcl) ]
  | Vdl_advance { vdl } -> obj "vdl_advance" [ ("vdl", Int vdl) ]
  | Pgmrpl_advance { pg; floor } ->
    obj "pgmrpl_advance" [ ("pg", Int pg); ("floor", Int floor) ]
  | Epoch_change { pg; volume_epoch; membership_epoch } ->
    obj "epoch_change"
      [
        ("pg", Int pg);
        ("volume_epoch", Int volume_epoch);
        ("membership_epoch", Int membership_epoch);
      ]
  | Commit_submit { txn; scn } ->
    obj "commit_submit" [ ("txn", Int txn); ("scn", Int scn) ]
  | Commit_ack { txn; scn } ->
    obj "commit_ack" [ ("txn", Int txn); ("scn", Int scn) ]
  | Started -> obj "started" []
  | Crashed -> obj "crashed" []
  | Destroyed -> obj "destroyed" []
  | Fenced { epoch } -> obj "fenced" [ ("epoch", Int epoch) ]
  | Recovery_start { epoch } -> obj "recovery_start" [ ("epoch", Int epoch) ]
  | Recovery_finish { vcl; vdl } ->
    obj "recovery_finish" [ ("vcl", Int vcl); ("vdl", Int vdl) ]

let of_json j =
  let open Obs.Json in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match j with
  | Obj fields ->
    let int name =
      match List.assoc_opt name fields with
      | Some (Int n) -> Ok n
      | _ -> fail "event: missing int field %S" name
    in
    let str name =
      match List.assoc_opt name fields with
      | Some (String s) -> Ok s
      | _ -> fail "event: missing string field %S" name
    in
    let ( let* ) = Result.bind in
    let net mk =
      let* kind_s = str "kind" in
      let* kind =
        match msg_kind_of_name kind_s with
        | Some k -> Ok k
        | None -> fail "event: unknown msg kind %S" kind_s
      in
      let* peer = int "peer" in
      let* pg = int "pg" in
      let* lsn_lo = int "lsn_lo" in
      let* lsn_hi = int "lsn_hi" in
      mk kind peer pg lsn_lo lsn_hi
    in
    let* tag = str "ev" in
    (match tag with
    | "send" ->
      net (fun kind peer pg lsn_lo lsn_hi ->
          Ok (Send { kind; peer; pg; lsn_lo; lsn_hi }))
    | "recv" ->
      net (fun kind peer pg lsn_lo lsn_hi ->
          Ok (Receive { kind; peer; pg; lsn_lo; lsn_hi }))
    | "drop" ->
      net (fun kind peer pg lsn_lo lsn_hi ->
          let* cause_s = str "cause" in
          match drop_cause_of_name cause_s with
          | Some cause -> Ok (Drop { kind; peer; pg; lsn_lo; lsn_hi; cause })
          | None -> fail "event: unknown drop cause %S" cause_s)
    | "scl_advance" ->
      let* pg = int "pg" in
      let* scl = int "scl" in
      let* stored = int "stored" in
      Ok (Scl_advance { pg; scl; stored })
    | "gossip_fill" ->
      let* pg = int "pg" in
      let* scl = int "scl" in
      let* filled = int "filled" in
      Ok (Gossip_fill { pg; scl; filled })
    | "hydrate_import" ->
      let* pg = int "pg" in
      let* scl = int "scl" in
      Ok (Hydrate_import { pg; scl })
    | "vcl_advance" ->
      let* vcl = int "vcl" in
      Ok (Vcl_advance { vcl })
    | "vdl_advance" ->
      let* vdl = int "vdl" in
      Ok (Vdl_advance { vdl })
    | "pgmrpl_advance" ->
      let* pg = int "pg" in
      let* floor = int "floor" in
      Ok (Pgmrpl_advance { pg; floor })
    | "epoch_change" ->
      let* pg = int "pg" in
      let* volume_epoch = int "volume_epoch" in
      let* membership_epoch = int "membership_epoch" in
      Ok (Epoch_change { pg; volume_epoch; membership_epoch })
    | "commit_submit" ->
      let* txn = int "txn" in
      let* scn = int "scn" in
      Ok (Commit_submit { txn; scn })
    | "commit_ack" ->
      let* txn = int "txn" in
      let* scn = int "scn" in
      Ok (Commit_ack { txn; scn })
    | "started" -> Ok Started
    | "crashed" -> Ok Crashed
    | "destroyed" -> Ok Destroyed
    | "fenced" ->
      let* epoch = int "epoch" in
      Ok (Fenced { epoch })
    | "recovery_start" ->
      let* epoch = int "epoch" in
      Ok (Recovery_start { epoch })
    | "recovery_finish" ->
      let* vcl = int "vcl" in
      let* vdl = int "vdl" in
      Ok (Recovery_finish { vcl; vdl })
    | tag -> fail "event: unknown tag %S" tag)
  | _ -> fail "event: expected an object"

(* ----------------------------------------------------------------- text -- *)

let range_suffix pg lsn_lo lsn_hi =
  let pg_s = if pg >= 0 then Printf.sprintf " pg%d" pg else "" in
  let lsn_s =
    if lsn_lo < 0 then ""
    else if lsn_lo = lsn_hi then Printf.sprintf " lsn %d" lsn_lo
    else Printf.sprintf " lsn [%d..%d]" lsn_lo lsn_hi
  in
  pg_s ^ lsn_s

let describe = function
  | Send { kind; peer; pg; lsn_lo; lsn_hi } ->
    Printf.sprintf "send %s ->n%d%s" (msg_kind_name kind) peer
      (range_suffix pg lsn_lo lsn_hi)
  | Receive { kind; peer; pg; lsn_lo; lsn_hi } ->
    Printf.sprintf "recv %s <-n%d%s" (msg_kind_name kind) peer
      (range_suffix pg lsn_lo lsn_hi)
  | Drop { kind; peer; pg; lsn_lo; lsn_hi; cause } ->
    Printf.sprintf "drop(%s) %s ->n%d%s" (drop_cause_name cause)
      (msg_kind_name kind) peer
      (range_suffix pg lsn_lo lsn_hi)
  | Scl_advance { pg; scl; stored } ->
    Printf.sprintf "scl_advance pg%d scl=%d stored=%d" pg scl stored
  | Gossip_fill { pg; scl; filled } ->
    Printf.sprintf "gossip_fill pg%d filled=%d scl=%d" pg filled scl
  | Hydrate_import { pg; scl } ->
    Printf.sprintf "hydrate_import pg%d scl=%d" pg scl
  | Vcl_advance { vcl } -> Printf.sprintf "vcl_advance vcl=%d" vcl
  | Vdl_advance { vdl } -> Printf.sprintf "vdl_advance vdl=%d" vdl
  | Pgmrpl_advance { pg; floor } ->
    Printf.sprintf "pgmrpl_advance pg%d floor=%d" pg floor
  | Epoch_change { pg; volume_epoch; membership_epoch } ->
    Printf.sprintf "epoch_change pg%d volume_epoch=%d membership_epoch=%d" pg
      volume_epoch membership_epoch
  | Commit_submit { txn; scn } ->
    Printf.sprintf "commit_submit txn=%d scn=%d" txn scn
  | Commit_ack { txn; scn } -> Printf.sprintf "commit_ack txn=%d scn=%d" txn scn
  | Started -> "started"
  | Crashed -> "crashed"
  | Destroyed -> "destroyed"
  | Fenced { epoch } -> Printf.sprintf "fenced epoch=%d" epoch
  | Recovery_start { epoch } -> Printf.sprintf "recovery_start epoch=%d" epoch
  | Recovery_finish { vcl; vdl } ->
    Printf.sprintf "recovery_finish vcl=%d vdl=%d" vcl vdl
