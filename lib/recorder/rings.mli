(** Global per-node event rings — the flight recorder proper.

    Module-global mutable state in the style of [Perf.Probe]: it lives
    entirely outside the sim, records no randomness, and schedules
    nothing, so enabling the recorder cannot perturb a deterministic run.
    Disabled (the default) every {!note} is a no-op, which is how the
    [smoke --json] byte gate stays untouched.

    Timestamps are [Simcore.Time_ns.t] values, i.e. plain nanosecond
    ints, stored verbatim. *)

val min_depth : int
(** Smallest accepted ring capacity (16). *)

val max_depth : int
(** Largest accepted ring capacity (65536) — bounds swarm memory even if
    every scenario asks for the ceiling. *)

val default_depth : int
(** Capacity used when no [recorder_depth] directive is given (512). *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val set_depth : int -> unit
(** Capacity for rings registered {e afterwards}; existing rings keep
    theirs.  Raises [Invalid_argument] outside
    [[min_depth, max_depth]]. *)

val reset : unit -> unit
(** Drop every ring and restore {!default_depth}.  Call between runs so
    swarm memory stays flat across seeds. *)

val register : node:int -> role:Event.role -> unit
(** Create an empty ring for [node] (idempotent — a restart does not wipe
    the node's history).  Unregistered nodes that record anyway are
    auto-registered with role {!Event.Unknown}. *)

val note : node:int -> at:int -> Event.t -> unit
(** Append an event at sim time [at] (nanoseconds).  No-op while
    disabled; once a ring is full the oldest event is evicted. *)

val registered : unit -> int
(** Number of rings currently registered. *)

type node_ring = {
  node : int;
  role : Event.role;
  depth : int;
  evicted : int;  (** events lost to ring wrap-around *)
  events : (int * Event.t) list;  (** (sim ns, event), oldest first *)
}

type snapshot = { nodes : node_ring list (* sorted by node id *) }

val snapshot : unit -> snapshot
(** Immutable copy of every ring, nodes sorted by id — the input to
    [Correlate] and [Artifact]. *)
