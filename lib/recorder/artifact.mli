(** The repro artifact: every ring's snapshot plus the network's
    drop-cause and per-link delivery counters, with a byte-stable JSON
    round-trip.  vopr writes one next to each shrunk failing scenario;
    [aurora_cli explain] reconstructs timelines from the file alone.

    Net counters are plain-int records rather than [Simnet.Net.stats] so
    this library stays below [lib/simnet] — the harness translates when
    assembling an artifact. *)

type link = {
  src : int;
  dst : int;
  l_sent : int;
  l_delivered : int;
  l_down : int;
  l_blocked : int;
  l_partition : int;
  l_random : int;
}

type net = {
  sent : int;
  delivered : int;
  dropped_down : int;
  dropped_blocked : int;
  dropped_partition : int;
  dropped_random : int;
  links : link list;
}

type t = { snapshot : Rings.snapshot; net : net option }

val make : snapshot:Rings.snapshot -> ?net:net -> unit -> t
val to_json : t -> Obs.Json.t
val of_json : Obs.Json.t -> (t, string) result

val to_string : t -> string
(** Pretty, byte-stable JSON with a trailing newline — the on-disk
    [.recorder.json] format. *)

val of_string : string -> (t, string) result

(** What to explain. *)
type target = Lsn of int | Txn of int | Pg of int

val target_name : target -> string

val timeline : t -> target -> Correlate.entry list

val explain : t -> target -> string
(** Human-readable causal timeline: header, one line per event, then the
    net totals and the per-link stats for every link the timeline
    traversed — so a dropped send comes with its cause (partition vs
    blocked vs down vs random loss).  Byte-deterministic. *)

val explain_json : t -> target -> Obs.Json.t
(** Same content as {!explain}, as deterministic JSON. *)
