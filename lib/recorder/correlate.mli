(** Cross-node correlation: merge per-node rings into one causal
    timeline for a given LSN, txn, or protection group.

    Ordering is (sim time, node id, ring position) — fully deterministic,
    so rendering the same snapshot twice is byte-identical. *)

type entry = {
  at : int;  (** sim time, nanoseconds *)
  node : int;
  role : Event.role;
  event : Event.t;
}

val entries : Rings.snapshot -> entry list
(** Every event in the snapshot, merged and causally ordered. *)

val timeline_for_lsn : Rings.snapshot -> lsn:int -> entry list
(** The LSN's journey across the quorum: every send/receive/drop whose
    payload range contains it, plus — once per node — the first ack and
    first SCL/VCL/VDL/PGMRPL advance that covered it, plus its commit
    submit/ack events. *)

val timeline_for_txn : Rings.snapshot -> txn:int -> entry list
(** Resolves the txn's commit SCN from the rings and delegates to
    {!timeline_for_lsn}; if the txn never reached a commit record, just
    its commit events (typically none). *)

val timeline_for_pg : Rings.snapshot -> pg:int -> entry list
(** Every event that names protection group [pg]. *)

val render_text : entry list -> string
(** One line per entry ([t=...ms  n<id> <role> <event>]), newline-joined,
    byte-stable. *)

val to_json : entry list -> Obs.Json.t
(** Deterministic JSON: a list of objects with [at]/[node]/[role] plus
    the event's own fields. *)
