(* Per-node bounded ring buffers, in the style of [Perf.Probe]:
   module-global mutable state living entirely outside the sim.  Recording
   draws no randomness and schedules no events, so an instrumented run is
   byte-identical to a bare one; while disabled every [note] is a no-op
   and hook points pay a single flag read. *)

let min_depth = 16
let max_depth = 65536
let default_depth = 512

type ring = {
  role : Event.role;
  cap : int;
  buf : (int * Event.t) array;
  mutable len : int;
  mutable head : int; (* next write position *)
  mutable evicted : int;
}

let on = ref false
let depth = ref default_depth
let rings : (int, ring) Hashtbl.t = Hashtbl.create 64

let enabled () = !on
let enable () = on := true
let disable () = on := false

let set_depth d =
  if d < min_depth || d > max_depth then
    invalid_arg
      (Printf.sprintf "Recorder.Rings.set_depth: %d outside [%d, %d]" d
         min_depth max_depth)
  else depth := d

let reset () =
  Hashtbl.reset rings;
  depth := default_depth

(* Declares the module-global state above ([rings] and [depth] via [reset],
   [on] directly) to the reset-hook registry the typed sim-global lint
   checks. *)
let () =
  Simcore.Reset.register ~name:"recorder.rings" (fun () ->
      on := false;
      reset ())

let dummy = (0, Event.Started)

let fresh role =
  { role; cap = !depth; buf = Array.make !depth dummy; len = 0; head = 0;
    evicted = 0 }

let register ~node ~role =
  if not (Hashtbl.mem rings node) then Hashtbl.replace rings node (fresh role)

let ring_for node =
  match Hashtbl.find_opt rings node with
  | Some r -> r
  | None ->
    let r = fresh Event.Unknown in
    Hashtbl.replace rings node r;
    r

let note ~node ~at ev =
  if !on then begin
    let r = ring_for node in
    r.buf.(r.head) <- (at, ev);
    r.head <- (r.head + 1) mod r.cap;
    if r.len < r.cap then r.len <- r.len + 1 else r.evicted <- r.evicted + 1
  end

let registered () = Hashtbl.length rings

(* ------------------------------------------------------------ snapshots -- *)

type node_ring = {
  node : int;
  role : Event.role;
  depth : int;
  evicted : int;
  events : (int * Event.t) list; (* oldest first *)
}

type snapshot = { nodes : node_ring list }

let events_of r =
  let start = (r.head - r.len + r.cap) mod r.cap in
  List.init r.len (fun i -> r.buf.((start + i) mod r.cap))

let snapshot () =
  let nodes =
    Obs.Stable.sorted_bindings ~cmp:Int.compare rings
    |> List.map (fun (node, (r : ring)) ->
           {
             node;
             role = r.role;
             depth = r.cap;
             evicted = r.evicted;
             events = events_of r;
           })
  in
  { nodes }
