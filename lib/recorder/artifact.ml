(* The repro artifact: a snapshot of every ring plus the network's
   drop-cause and per-link delivery counters, with a byte-stable JSON
   round-trip so vopr can ship it next to a shrunk scenario and the CLI
   can explain from the file alone.

   Net counters are plain-int records (not [Simnet.Net.stats]) so this
   library stays below [lib/simnet]; the harness translates when it
   assembles an artifact. *)

type link = {
  src : int;
  dst : int;
  l_sent : int;
  l_delivered : int;
  l_down : int;
  l_blocked : int;
  l_partition : int;
  l_random : int;
}

type net = {
  sent : int;
  delivered : int;
  dropped_down : int;
  dropped_blocked : int;
  dropped_partition : int;
  dropped_random : int;
  links : link list;
}

type t = { snapshot : Rings.snapshot; net : net option }

let make ~snapshot ?net () = { snapshot; net }

(* ----------------------------------------------------------------- json -- *)

let timed_event_to_json (at, ev) =
  let open Obs.Json in
  match Event.to_json ev with
  | Obj fields -> Obj (("at", Int at) :: fields)
  | j -> j

let node_to_json (n : Rings.node_ring) =
  let open Obs.Json in
  Obj
    [
      ("node", Int n.Rings.node);
      ("role", String (Event.role_name n.Rings.role));
      ("depth", Int n.Rings.depth);
      ("evicted", Int n.Rings.evicted);
      ("events", List (List.map timed_event_to_json n.Rings.events));
    ]

let link_to_json l =
  let open Obs.Json in
  Obj
    [
      ("src", Int l.src);
      ("dst", Int l.dst);
      ("sent", Int l.l_sent);
      ("delivered", Int l.l_delivered);
      ("down", Int l.l_down);
      ("blocked", Int l.l_blocked);
      ("partition", Int l.l_partition);
      ("random", Int l.l_random);
    ]

let net_to_json n =
  let open Obs.Json in
  Obj
    [
      ("sent", Int n.sent);
      ("delivered", Int n.delivered);
      ("dropped_down", Int n.dropped_down);
      ("dropped_blocked", Int n.dropped_blocked);
      ("dropped_partition", Int n.dropped_partition);
      ("dropped_random", Int n.dropped_random);
      ("links", List (List.map link_to_json n.links));
    ]

let to_json t =
  let open Obs.Json in
  let recorder =
    Obj [ ("nodes", List (List.map node_to_json t.snapshot.Rings.nodes)) ]
  in
  match t.net with
  | None -> Obj [ ("recorder", recorder) ]
  | Some n -> Obj [ ("recorder", recorder); ("net", net_to_json n) ]

let to_string t = Obs.Json.to_string ~pretty:true (to_json t) ^ "\n"

let fail fmt = Printf.ksprintf (fun m -> Error m) fmt
let ( let* ) = Result.bind

let int_field fields name =
  match List.assoc_opt name fields with
  | Some (Obs.Json.Int n) -> Ok n
  | _ -> fail "artifact: missing int field %S" name

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let timed_event_of_json j =
  match j with
  | Obs.Json.Obj fields ->
    let* at = int_field fields "at" in
    let* ev = Event.of_json j in
    Ok (at, ev)
  | _ -> fail "artifact: expected an event object"

let node_of_json = function
  | Obs.Json.Obj fields ->
    let* node = int_field fields "node" in
    let* role =
      match List.assoc_opt "role" fields with
      | Some (Obs.Json.String s) -> (
        match Event.role_of_name s with
        | Some r -> Ok r
        | None -> fail "artifact: unknown role %S" s)
      | _ -> fail "artifact: missing node role"
    in
    let* depth = int_field fields "depth" in
    let* evicted = int_field fields "evicted" in
    let* events =
      match List.assoc_opt "events" fields with
      | Some (Obs.Json.List es) -> map_result timed_event_of_json es
      | _ -> fail "artifact: missing node events"
    in
    Ok { Rings.node; role; depth; evicted; events }
  | _ -> fail "artifact: expected a node object"

let link_of_json = function
  | Obs.Json.Obj fields ->
    let* src = int_field fields "src" in
    let* dst = int_field fields "dst" in
    let* l_sent = int_field fields "sent" in
    let* l_delivered = int_field fields "delivered" in
    let* l_down = int_field fields "down" in
    let* l_blocked = int_field fields "blocked" in
    let* l_partition = int_field fields "partition" in
    let* l_random = int_field fields "random" in
    Ok { src; dst; l_sent; l_delivered; l_down; l_blocked; l_partition;
         l_random }
  | _ -> fail "artifact: expected a link object"

let net_of_json = function
  | Obs.Json.Obj fields ->
    let* sent = int_field fields "sent" in
    let* delivered = int_field fields "delivered" in
    let* dropped_down = int_field fields "dropped_down" in
    let* dropped_blocked = int_field fields "dropped_blocked" in
    let* dropped_partition = int_field fields "dropped_partition" in
    let* dropped_random = int_field fields "dropped_random" in
    let* links =
      match List.assoc_opt "links" fields with
      | Some (Obs.Json.List ls) -> map_result link_of_json ls
      | _ -> fail "artifact: missing net links"
    in
    Ok { sent; delivered; dropped_down; dropped_blocked; dropped_partition;
         dropped_random; links }
  | _ -> fail "artifact: expected a net object"

let of_json = function
  | Obs.Json.Obj fields ->
    let* nodes =
      match List.assoc_opt "recorder" fields with
      | Some (Obs.Json.Obj rec_fields) -> (
        match List.assoc_opt "nodes" rec_fields with
        | Some (Obs.Json.List ns) -> map_result node_of_json ns
        | _ -> fail "artifact: missing recorder nodes")
      | _ -> fail "artifact: missing recorder section"
    in
    let* net =
      match List.assoc_opt "net" fields with
      | None -> Ok None
      | Some j ->
        let* n = net_of_json j in
        Ok (Some n)
    in
    Ok { snapshot = { Rings.nodes }; net }
  | _ -> fail "artifact: expected an object"

let of_string s =
  match Obs.Json.of_string s with
  | Error e -> fail "artifact: %s" e
  | Ok j -> of_json j

(* -------------------------------------------------------------- explain -- *)

type target = Lsn of int | Txn of int | Pg of int

let target_name = function
  | Lsn n -> Printf.sprintf "lsn %d" n
  | Txn n -> Printf.sprintf "txn %d" n
  | Pg n -> Printf.sprintf "pg %d" n

let timeline t = function
  | Lsn lsn -> Correlate.timeline_for_lsn t.snapshot ~lsn
  | Txn txn -> Correlate.timeline_for_txn t.snapshot ~txn
  | Pg pg -> Correlate.timeline_for_pg t.snapshot ~pg

(* The (src, dst) pairs a timeline's network events traversed, sorted.
   Receives are recorded on the destination with [peer] = source. *)
let links_involved es =
  let pairs =
    List.filter_map
      (fun (e : Correlate.entry) ->
        match e.Correlate.event with
        | Event.Send { peer; _ } | Event.Drop { peer; _ } ->
          Some (e.Correlate.node, peer)
        | Event.Receive { peer; _ } -> Some (peer, e.Correlate.node)
        | _ -> None)
      es
  in
  List.sort_uniq
    (fun (a1, a2) (b1, b2) ->
      match Int.compare a1 b1 with 0 -> Int.compare a2 b2 | c -> c)
    pairs

let link_line l =
  Printf.sprintf
    "link n%d->n%d: sent=%d delivered=%d dropped(down=%d blocked=%d \
     partition=%d random=%d)"
    l.src l.dst l.l_sent l.l_delivered l.l_down l.l_blocked l.l_partition
    l.l_random

let net_lines net es =
  let involved = links_involved es in
  let relevant =
    List.filter (fun l -> List.mem (l.src, l.dst) involved) net.links
  in
  Printf.sprintf
    "net: sent=%d delivered=%d dropped(down=%d blocked=%d partition=%d \
     random=%d)"
    net.sent net.delivered net.dropped_down net.dropped_blocked
    net.dropped_partition net.dropped_random
  :: List.map link_line relevant

let node_count es =
  List.length
    (List.sort_uniq Int.compare
       (List.map (fun (e : Correlate.entry) -> e.Correlate.node) es))

let explain t target =
  let es = timeline t target in
  let header =
    Printf.sprintf "explain %s: %d event(s) across %d node(s)"
      (target_name target) (List.length es) (node_count es)
  in
  let body = if es = [] then [] else [ Correlate.render_text es ] in
  let footer = match t.net with None -> [] | Some n -> net_lines n es in
  String.concat "\n" ((header :: body) @ footer) ^ "\n"

let explain_json t target =
  let es = timeline t target in
  let open Obs.Json in
  let links =
    match t.net with
    | None -> []
    | Some n ->
      let involved = links_involved es in
      [
        ( "links",
          List
            (List.map link_to_json
               (List.filter (fun l -> List.mem (l.src, l.dst) involved)
                  n.links)) );
      ]
  in
  Obj
    ([
       ("target", String (target_name target));
       ("events", Correlate.to_json es);
     ]
    @ links)
