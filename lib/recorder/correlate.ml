(* Cross-node correlation: merge per-node rings into one causal timeline.

   Ordering is (sim time, node id, ring position) — deterministic because
   every component is; two events on the same node at the same instant
   keep their recording order. *)

type entry = { at : int; node : int; role : Event.role; event : Event.t }

let entries (s : Rings.snapshot) =
  let tagged =
    List.concat_map
      (fun (n : Rings.node_ring) ->
        List.mapi (fun i (at, ev) -> (at, n.Rings.node, i, n.Rings.role, ev))
          n.Rings.events)
      s.Rings.nodes
  in
  let cmp (a_at, a_node, a_i, _, _) (b_at, b_node, b_i, _, _) =
    match Int.compare a_at b_at with
    | 0 -> (
      match Int.compare a_node b_node with
      | 0 -> Int.compare a_i b_i
      | c -> c)
    | c -> c
  in
  List.sort cmp tagged
  |> List.map (fun (at, node, _, role, event) -> { at; node; role; event })

let filter_snapshot mk (s : Rings.snapshot) =
  {
    Rings.nodes =
      List.map
        (fun (n : Rings.node_ring) ->
          let keep = mk n in
          {
            n with
            Rings.events =
              List.filter (fun (_, ev) -> keep ev) n.Rings.events;
          })
        s.Rings.nodes;
  }

(* Kinds whose LSN range is actual log-record (or truncation) payload, so
   range containment means "this message concerned that LSN". *)
let payload_kind = function
  | Event.Write_batch | Event.Gossip_reply | Event.Hydrate_reply
  | Event.Redo_stream | Event.Truncate ->
    true
  | _ -> false

(* Kinds whose LSN is a durability watermark: an ack at [scl >= lsn]
   covers the record. *)
let watermark_kind = function
  | Event.Write_ack | Event.Scl_reply -> true
  | _ -> false

(* The per-node relevance predicate for one LSN.  Exact payload matches
   are all kept; watermark events (acks, SCL/VCL/VDL/PGMRPL advances) are
   kept only the first time they cover the LSN on that node, which is the
   moment the record's state machine actually moved there. *)
let lsn_relevant ~lsn () =
  let first flag hit = if (not !flag) && hit then (flag := true; true) else false in
  let ack_send = ref false and ack_recv = ref false in
  let scl = ref false and vcl = ref false and vdl = ref false in
  let floor = ref false in
  fun (ev : Event.t) ->
    match ev with
    | Send { kind; lsn_lo; lsn_hi; _ } when payload_kind kind ->
      lsn_lo >= 0 && lsn_lo <= lsn && lsn <= lsn_hi
    | Receive { kind; lsn_lo; lsn_hi; _ } when payload_kind kind ->
      lsn_lo >= 0 && lsn_lo <= lsn && lsn <= lsn_hi
    | Drop { kind; lsn_lo; lsn_hi; _ } when payload_kind kind ->
      lsn_lo >= 0 && lsn_lo <= lsn && lsn <= lsn_hi
    | Send { kind; lsn_hi; _ } when watermark_kind kind ->
      first ack_send (lsn_hi >= lsn)
    | Receive { kind; lsn_hi; _ } when watermark_kind kind ->
      first ack_recv (lsn_hi >= lsn)
    | Scl_advance { scl = s; _ } -> first scl (s >= lsn)
    | Vcl_advance { vcl = v } -> first vcl (v >= lsn)
    | Vdl_advance { vdl = v } -> first vdl (v >= lsn)
    | Pgmrpl_advance { floor = f; _ } -> first floor (f >= lsn)
    | Commit_submit { scn; _ } | Commit_ack { scn; _ } -> scn = lsn
    | _ -> false

let timeline_for_lsn s ~lsn =
  entries (filter_snapshot (fun _ -> lsn_relevant ~lsn ()) s)

let commit_scn_of_txn (s : Rings.snapshot) ~txn =
  List.find_map
    (fun (n : Rings.node_ring) ->
      List.find_map
        (fun (_, ev) ->
          match ev with
          | Event.Commit_submit { txn = t; scn } when t = txn -> Some scn
          | Event.Commit_ack { txn = t; scn } when t = txn -> Some scn
          | _ -> None)
        n.Rings.events)
    s.Rings.nodes

let timeline_for_txn s ~txn =
  match commit_scn_of_txn s ~txn with
  | Some scn when scn >= 0 -> timeline_for_lsn s ~lsn:scn
  | _ ->
    entries
      (filter_snapshot
         (fun _ ev ->
           match (ev : Event.t) with
           | Commit_submit { txn = t; _ } | Commit_ack { txn = t; _ } ->
             t = txn
           | _ -> false)
         s)

let event_pg = function
  | Event.Send { pg; _ }
  | Event.Receive { pg; _ }
  | Event.Drop { pg; _ }
  | Event.Scl_advance { pg; _ }
  | Event.Gossip_fill { pg; _ }
  | Event.Hydrate_import { pg; _ }
  | Event.Pgmrpl_advance { pg; _ }
  | Event.Epoch_change { pg; _ } ->
    pg
  | _ -> -1

let timeline_for_pg s ~pg =
  entries (filter_snapshot (fun _ ev -> event_pg ev = pg) s)

(* --------------------------------------------------------------- render -- *)

let render_entry e =
  let ms = e.at / 1_000_000 and us = e.at mod 1_000_000 / 1_000 in
  Printf.sprintf "t=%6d.%03dms  n%-3d %-8s %s" ms us e.node
    (Event.role_name e.role) (Event.describe e.event)

let render_text es = String.concat "\n" (List.map render_entry es)

let entry_to_json e =
  let open Obs.Json in
  let fields =
    match Event.to_json e.event with
    | Obj fs -> fs
    | j -> [ ("event", j) ]
  in
  Obj
    (("at", Int e.at)
    :: ("node", Int e.node)
    :: ("role", String (Event.role_name e.role))
    :: fields)

let to_json es = Obs.Json.List (List.map entry_to_json es)
