let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let has_suffix ~suffix s =
  let ls = String.length s and lx = String.length suffix in
  ls >= lx && String.sub s (ls - lx) lx = suffix

let list_files ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
    let files =
      Array.to_list entries
      |> List.filter (fun f ->
             has_prefix ~prefix:"BENCH_" f && has_suffix ~suffix:".json" f)
    in
    List.sort String.compare files

let load ~dir =
  List.map
    (fun f -> (f, Bench_report.read ~path:(Filename.concat dir f)))
    (list_files ~dir)

type series = { metric : string; points : (string * float) list }

let trend reports =
  let order = ref [] in
  (* metric -> points, accumulated in reverse *)
  let acc = ref [] in
  List.iter
    (fun (file, report) ->
      let id = (report : Bench_report.t).meta.bench_id in
      let label = if id = "" then file else id in
      List.iter
        (fun (key, value) ->
          match List.assoc_opt key !acc with
          | Some points -> acc := (key, (label, value) :: points) :: List.remove_assoc key !acc
          | None ->
            order := key :: !order;
            acc := (key, [ (label, value) ]) :: !acc)
        (Compare.metrics_of report))
    reports;
  List.rev_map
    (fun key ->
      { metric = key; points = List.rev (List.assoc key !acc) })
    !order
