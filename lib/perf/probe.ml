type subsystem = Sim_dispatch | Net_delivery | Storage_apply | Consistency_advance

let all = [ Sim_dispatch; Net_delivery; Storage_apply; Consistency_advance ]

let name = function
  | Sim_dispatch -> "sim_dispatch"
  | Net_delivery -> "net_delivery"
  | Storage_apply -> "storage_apply"
  | Consistency_advance -> "consistency_advance"

let index = function
  | Sim_dispatch -> 0
  | Net_delivery -> 1
  | Storage_apply -> 2
  | Consistency_advance -> 3

(* One mutable slot per subsystem: accumulated totals plus the open span's
   marks.  A plain record per subsystem, allocated once at module init, so
   the measuring path itself allocates nothing it would then count. *)
type slot = {
  mutable calls : int;
  mutable wall_ns : int;
  mutable minor_words : float;
  mutable open_wall : int;  (** -1 = no open span. *)
  mutable open_minor : float;
}

let fresh_slot () =
  { calls = 0; wall_ns = 0; minor_words = 0.; open_wall = -1; open_minor = 0. }

let slots = Array.init 4 (fun _ -> fresh_slot ())
let on = ref false
let enabled () = !on
let enable () = on := true
let disable () = on := false

let reset () =
  Array.iter
    (fun s ->
      s.calls <- 0;
      s.wall_ns <- 0;
      s.minor_words <- 0.;
      s.open_wall <- -1;
      s.open_minor <- 0.)
    slots

let start sub =
  if !on then begin
    let s = slots.(index sub) in
    s.open_minor <- Gc.minor_words ();
    s.open_wall <- Clock.now_ns ()
  end

let stop sub =
  if !on then begin
    let s = slots.(index sub) in
    if s.open_wall >= 0 then begin
      s.calls <- s.calls + 1;
      s.wall_ns <- s.wall_ns + max 0 (Clock.now_ns () - s.open_wall);
      s.minor_words <- s.minor_words +. (Gc.minor_words () -. s.open_minor);
      s.open_wall <- -1
    end
  end

type stat = { calls : int; wall_ns : int; minor_words : float }

let stat sub =
  let s = slots.(index sub) in
  { calls = s.calls; wall_ns = s.wall_ns; minor_words = s.minor_words }

let stats () = List.map (fun sub -> (name sub, stat sub)) all

(* Declares the module-global state above ([slots] via [reset], [on]
   directly) to the reset-hook registry the typed sim-global lint checks. *)
let () =
  Simcore.Reset.register ~name:"perf.probe" (fun () ->
      on := false;
      reset ())

let install_sim sim =
  Simcore.Sim.set_probe sim
    (Some
       {
         Simcore.Sim.on_start = (fun () -> start Sim_dispatch);
         on_stop = (fun () -> stop Sim_dispatch);
       })
