module J = Obs.Json

let schema_version = 1

type scenario_params = {
  txns : int;
  pgs : int;
  seed : int;
  rate_per_sec : float;
}

type gc = {
  minor_words_per_commit : float;
  major_words_per_commit : float;
  promoted_words_per_commit : float;
  top_heap_words : int;
}

type subsystem = {
  subsystem : string;
  calls : int;
  wall_ns : int;
  minor_words : float;
}

type micro = { bench_name : string; ns_per_op : float }

type scenario_measured = {
  commits_acked : int;
  sim_duration_ns : int;
  commits_per_sec_sim : float;
  events_processed : int;
  wall_ns : int;
  events_per_sec_wall : float;
  gc : gc;
  subsystems : subsystem list;
}

type meta = {
  bench_id : string;
  git_sha : string;
  ocaml_version : string;
  scenario : scenario_params;
}

type t = {
  meta : meta;
  scenario_measured : scenario_measured;
  micro : micro list;
}

(* ---- encoding -------------------------------------------------------- *)

let to_json t =
  J.Obj
    [
      ("schema_version", J.Int schema_version);
      ( "meta",
        J.Obj
          [
            ("bench_id", J.String t.meta.bench_id);
            ("git_sha", J.String t.meta.git_sha);
            ("ocaml_version", J.String t.meta.ocaml_version);
            ( "scenario",
              J.Obj
                [
                  ("txns", J.Int t.meta.scenario.txns);
                  ("pgs", J.Int t.meta.scenario.pgs);
                  ("seed", J.Int t.meta.scenario.seed);
                  ("rate_per_sec", J.Float t.meta.scenario.rate_per_sec);
                ] );
          ] );
      ( "measured",
        J.Obj
          [
            ( "scenario",
              J.Obj
                [
                  ("commits_acked", J.Int t.scenario_measured.commits_acked);
                  ("sim_duration_ns", J.Int t.scenario_measured.sim_duration_ns);
                  ( "commits_per_sec_sim",
                    J.Float t.scenario_measured.commits_per_sec_sim );
                  ( "events_processed",
                    J.Int t.scenario_measured.events_processed );
                  ("wall_ns", J.Int t.scenario_measured.wall_ns);
                  ( "events_per_sec_wall",
                    J.Float t.scenario_measured.events_per_sec_wall );
                  ( "gc",
                    J.Obj
                      [
                        ( "minor_words_per_commit",
                          J.Float t.scenario_measured.gc.minor_words_per_commit
                        );
                        ( "major_words_per_commit",
                          J.Float t.scenario_measured.gc.major_words_per_commit
                        );
                        ( "promoted_words_per_commit",
                          J.Float
                            t.scenario_measured.gc.promoted_words_per_commit );
                        ( "top_heap_words",
                          J.Int t.scenario_measured.gc.top_heap_words );
                      ] );
                  ( "subsystems",
                    J.List
                      (List.map
                         (fun s ->
                           J.Obj
                             [
                               ("name", J.String s.subsystem);
                               ("calls", J.Int s.calls);
                               ("wall_ns", J.Int s.wall_ns);
                               ("minor_words", J.Float s.minor_words);
                             ])
                         t.scenario_measured.subsystems) );
                ] );
            ( "micro",
              J.List
                (List.map
                   (fun m ->
                     J.Obj
                       [
                         ("name", J.String m.bench_name);
                         ("ns_per_op", J.Float m.ns_per_op);
                       ])
                   t.micro) );
          ] );
    ]

(* ---- decoding -------------------------------------------------------- *)

(* Tiny applicative-free decoding helpers: every accessor threads a [path]
   so a malformed report names the exact field that broke. *)

exception Decode of string

let fail path msg = raise (Decode (Printf.sprintf "%s: %s" path msg))

let field path fields k =
  match List.assoc_opt k fields with
  | Some v -> v
  | None -> fail path (Printf.sprintf "missing field %S" k)

let obj path = function
  | J.Obj fields -> fields
  | _ -> fail path "expected an object"

let list path = function
  | J.List items -> items
  | _ -> fail path "expected a list"

let str path = function
  | J.String s -> s
  | _ -> fail path "expected a string"

let int path = function
  | J.Int i -> i
  | _ -> fail path "expected an integer"

(* Integral floats print as e.g. [12.0] but hand-edited reports may carry
   bare integers; accept both. *)
let float_ path = function
  | J.Float f -> f
  | J.Int i -> float_of_int i
  | _ -> fail path "expected a number"

let of_json json =
  match
    let path = "$" in
    let top = obj path json in
    let v = int (path ^ ".schema_version") (field path top "schema_version") in
    if v <> schema_version then
      fail (path ^ ".schema_version")
        (Printf.sprintf "unsupported version %d (want %d)" v schema_version);
    let mp = path ^ ".meta" in
    let m = obj mp (field path top "meta") in
    let sp = mp ^ ".scenario" in
    let sc = obj sp (field mp m "scenario") in
    let scenario =
      {
        txns = int (sp ^ ".txns") (field sp sc "txns");
        pgs = int (sp ^ ".pgs") (field sp sc "pgs");
        seed = int (sp ^ ".seed") (field sp sc "seed");
        rate_per_sec = float_ (sp ^ ".rate_per_sec") (field sp sc "rate_per_sec");
      }
    in
    let meta =
      {
        bench_id = str (mp ^ ".bench_id") (field mp m "bench_id");
        git_sha = str (mp ^ ".git_sha") (field mp m "git_sha");
        ocaml_version = str (mp ^ ".ocaml_version") (field mp m "ocaml_version");
        scenario;
      }
    in
    let xp = path ^ ".measured" in
    let x = obj xp (field path top "measured") in
    let rp = xp ^ ".scenario" in
    let r = obj rp (field xp x "scenario") in
    let gp = rp ^ ".gc" in
    let g = obj gp (field rp r "gc") in
    let gc =
      {
        minor_words_per_commit =
          float_ (gp ^ ".minor_words_per_commit")
            (field gp g "minor_words_per_commit");
        major_words_per_commit =
          float_ (gp ^ ".major_words_per_commit")
            (field gp g "major_words_per_commit");
        promoted_words_per_commit =
          float_ (gp ^ ".promoted_words_per_commit")
            (field gp g "promoted_words_per_commit");
        top_heap_words =
          int (gp ^ ".top_heap_words") (field gp g "top_heap_words");
      }
    in
    let subsystems =
      List.mapi
        (fun i item ->
          let p = Printf.sprintf "%s.subsystems[%d]" rp i in
          let f = obj p item in
          {
            subsystem = str (p ^ ".name") (field p f "name");
            calls = int (p ^ ".calls") (field p f "calls");
            wall_ns = int (p ^ ".wall_ns") (field p f "wall_ns");
            minor_words = float_ (p ^ ".minor_words") (field p f "minor_words");
          })
        (list (rp ^ ".subsystems") (field rp r "subsystems"))
    in
    let scenario_measured =
      {
        commits_acked = int (rp ^ ".commits_acked") (field rp r "commits_acked");
        sim_duration_ns =
          int (rp ^ ".sim_duration_ns") (field rp r "sim_duration_ns");
        commits_per_sec_sim =
          float_ (rp ^ ".commits_per_sec_sim")
            (field rp r "commits_per_sec_sim");
        events_processed =
          int (rp ^ ".events_processed") (field rp r "events_processed");
        wall_ns = int (rp ^ ".wall_ns") (field rp r "wall_ns");
        events_per_sec_wall =
          float_ (rp ^ ".events_per_sec_wall")
            (field rp r "events_per_sec_wall");
        gc;
        subsystems;
      }
    in
    let micro =
      List.mapi
        (fun i item ->
          let p = Printf.sprintf "%s.micro[%d]" xp i in
          let f = obj p item in
          {
            bench_name = str (p ^ ".name") (field p f "name");
            ns_per_op = float_ (p ^ ".ns_per_op") (field p f "ns_per_op");
          })
        (list (xp ^ ".micro") (field xp x "micro"))
    in
    { meta; scenario_measured; micro }
  with
  | t -> Ok t
  | exception Decode msg -> Error msg

(* ---- convenience ----------------------------------------------------- *)

let to_string t = J.to_string ~pretty:true (to_json t) ^ "\n"

let of_string s =
  match J.of_string s with
  | Error e -> Error e
  | Ok json -> of_json json

let write ~path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let read ~path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    of_string s

let equal a b = a = b
