(** The performance trajectory: every [BENCH_*.json] in a directory, in
    bench-id order, flattened per metric so trends are printable and the
    latest report is diffable against any ancestor. *)

val list_files : dir:string -> string list
(** Basenames matching [BENCH_*.json], sorted (the zero-padded numbering
    makes lexicographic order chronological). *)

val load : dir:string -> (string * (Bench_report.t, string) result) list
(** Parse every listed file; unreadable or malformed reports surface as
    [Error] rows rather than being silently dropped. *)

type series = {
  metric : string;  (** A {!Compare.metrics_of} key. *)
  points : (string * float) list;  (** [(bench_id, value)] in file order. *)
}

val trend : (string * Bench_report.t) list -> series list
(** One series per metric key, keys in first-appearance order.  A report
    missing a metric (e.g. a micro bench that was added later) simply has
    no point in that series. *)
