(** The [BENCH_*.json] performance-report schema: writer, reader, and the
    record every speed claim in this repo is checked against.

    A report separates what is {e deterministic metadata} (bench id, git
    sha, OCaml version, scenario parameters — identical across reruns) from
    what is {e measured} (wall-clock rates, GC accounting, per-subsystem
    profiles, micro-benchmark estimates — machine- and run-dependent).
    [scripts/bench.sh] emits one report per PR at the repo root;
    [aurora_cli perf] reads the resulting trajectory and diffs reports
    against a regression threshold. *)

val schema_version : int

type scenario_params = {
  txns : int;  (** Transactions the open-loop generator offers. *)
  pgs : int;  (** Protection groups in the reference cluster. *)
  seed : int;
  rate_per_sec : float;  (** Open-loop arrival rate. *)
}

type gc = {
  minor_words_per_commit : float;
  major_words_per_commit : float;
  promoted_words_per_commit : float;
  top_heap_words : int;  (** Peak major-heap size over the run. *)
}

type subsystem = {
  subsystem : string;  (** A {!Probe.name}. *)
  calls : int;
  wall_ns : int;
  minor_words : float;
}

type micro = {
  bench_name : string;
  ns_per_op : float;  (** Bechamel OLS estimate. *)
}

type scenario_measured = {
  commits_acked : int;
  sim_duration_ns : int;  (** Simulated time the scenario covered. *)
  commits_per_sec_sim : float;  (** acked / simulated seconds. *)
  events_processed : int;  (** Simulator events dispatched. *)
  wall_ns : int;  (** Real time the whole scenario run took. *)
  events_per_sec_wall : float;  (** events_processed / wall seconds. *)
  gc : gc;
  subsystems : subsystem list;
}

type meta = {
  bench_id : string;  (** e.g. ["BENCH_006"]. *)
  git_sha : string;  (** ["unknown"] when not provided. *)
  ocaml_version : string;
  scenario : scenario_params;
}

type t = {
  meta : meta;
  scenario_measured : scenario_measured;
  micro : micro list;  (** Empty in tiny/smoke runs. *)
}

val to_json : t -> Obs.Json.t
val of_json : Obs.Json.t -> (t, string) result

val to_string : t -> string
(** Pretty-printed; stable byte-for-byte for equal reports. *)

val of_string : string -> (t, string) result

val write : path:string -> t -> unit
val read : path:string -> (t, string) result

val equal : t -> t -> bool
