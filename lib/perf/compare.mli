(** Regression comparison between two {!Bench_report.t}s.

    Each report flattens into a keyed metric list (throughput rates,
    GC-per-commit accounting, per-micro-bench ns/op); two reports diff
    metric-by-metric against a relative threshold, classifying each as
    improved, regressed, or within threshold.  Wall-clock metrics are
    machine-dependent, so the threshold is the caller's statement of how
    much noise their machine produces (default 10%). *)

type direction =
  | Higher_is_better  (** Throughput rates. *)
  | Lower_is_better  (** Latency, allocation, heap size. *)

val metrics_of : Bench_report.t -> (string * float) list
(** Flatten the measured (never the metadata) fields into [(key, value)]
    rows, in stable order: ["commits_per_sec_sim"],
    ["events_per_sec_wall"], the four ["gc.*"] rows, then one
    ["micro:<name>"] row per micro-benchmark. *)

val direction_of : string -> direction
(** By key: rates are {!Higher_is_better}; everything else (gc, micro
    ns/op) is {!Lower_is_better}. *)

type verdict = Improved | Regressed | Within_threshold

val verdict :
  direction -> threshold_pct:float -> old_value:float -> new_value:float ->
  verdict
(** Relative change beyond [threshold_pct] percent in the good direction is
    {!Improved}, in the bad direction {!Regressed}; anything else (including
    both values zero) is {!Within_threshold}.  A zero [old_value] with a
    nonzero new one counts as beyond any threshold. *)

type row = {
  key : string;
  old_value : float option;  (** [None]: metric absent from the old report. *)
  new_value : float option;
  delta_pct : float option;  (** Signed relative change, when both present. *)
  result : verdict option;  (** [None] when either side is missing. *)
}

val diff :
  threshold_pct:float -> old_report:Bench_report.t -> new_report:Bench_report.t ->
  row list
(** Union of both reports' metric keys, old-report order first. *)

val regressions : row list -> row list

val verdict_to_string : verdict -> string
