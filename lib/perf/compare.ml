type direction = Higher_is_better | Lower_is_better

let metrics_of (r : Bench_report.t) =
  let s = r.scenario_measured in
  [
    ("commits_per_sec_sim", s.commits_per_sec_sim);
    ("events_per_sec_wall", s.events_per_sec_wall);
    ("gc.minor_words_per_commit", s.gc.minor_words_per_commit);
    ("gc.major_words_per_commit", s.gc.major_words_per_commit);
    ("gc.promoted_words_per_commit", s.gc.promoted_words_per_commit);
    ("gc.top_heap_words", float_of_int s.gc.top_heap_words);
  ]
  @ List.map
      (fun (m : Bench_report.micro) -> ("micro:" ^ m.bench_name, m.ns_per_op))
      r.micro

let direction_of key =
  match key with
  | "commits_per_sec_sim" | "events_per_sec_wall" -> Higher_is_better
  | _ -> Lower_is_better

type verdict = Improved | Regressed | Within_threshold

let verdict dir ~threshold_pct ~old_value ~new_value =
  let beyond, better =
    if old_value = 0. then
      ( new_value <> 0.,
        match dir with
        | Higher_is_better -> new_value > 0.
        | Lower_is_better -> new_value < 0. )
    else begin
      let delta_pct = (new_value -. old_value) /. Float.abs old_value *. 100. in
      ( Float.abs delta_pct > threshold_pct,
        match dir with
        | Higher_is_better -> delta_pct > 0.
        | Lower_is_better -> delta_pct < 0. )
    end
  in
  if not beyond then Within_threshold
  else if better then Improved
  else Regressed

type row = {
  key : string;
  old_value : float option;
  new_value : float option;
  delta_pct : float option;
  result : verdict option;
}

let diff ~threshold_pct ~old_report ~new_report =
  let old_metrics = metrics_of old_report in
  let new_metrics = metrics_of new_report in
  let keys =
    List.map fst old_metrics
    @ List.filter
        (fun k -> not (List.mem_assoc k old_metrics))
        (List.map fst new_metrics)
  in
  List.map
    (fun key ->
      let old_value = List.assoc_opt key old_metrics in
      let new_value = List.assoc_opt key new_metrics in
      match (old_value, new_value) with
      | Some o, Some n ->
        let delta_pct =
          if o = 0. then None else Some ((n -. o) /. Float.abs o *. 100.)
        in
        {
          key;
          old_value;
          new_value;
          delta_pct;
          result =
            Some
              (verdict (direction_of key) ~threshold_pct ~old_value:o
                 ~new_value:n);
        }
      | _ -> { key; old_value; new_value; delta_pct = None; result = None })
    keys

let regressions rows =
  List.filter (fun r -> r.result = Some Regressed) rows

let verdict_to_string = function
  | Improved -> "improved"
  | Regressed -> "REGRESSED"
  | Within_threshold -> "within threshold"
