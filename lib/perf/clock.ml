let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)
let elapsed_ns ~since = max 0 (now_ns () - since)
let elapsed_s ~since = float_of_int (elapsed_ns ~since) /. 1e9
