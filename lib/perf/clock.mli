(** The repository's single wall-clock gateway.

    Everything in [lib/] / [bin/] / [bench/] is sim code as far as the
    aurora_lint determinism rule is concerned: real time must never leak
    into simulated behaviour.  Measuring the *harness itself* (benchmark
    wall-clock, events/sec) is the one legitimate use of real time, and this
    module is the single place allowed to touch [Unix] for it — the lint
    rule whitelists exactly [lib/perf/clock.ml].

    Readings feed only perf-side accounting ({!Probe}, [BENCH_*.json]);
    nothing here may be consulted by simulation state. *)

val now_ns : unit -> int
(** Wall-clock reading in integer nanoseconds since the Unix epoch.
    Resolution is whatever [Unix.gettimeofday] provides (typically ~1us);
    good enough for the multi-millisecond spans the perf layer measures. *)

val elapsed_ns : since:int -> int
(** [elapsed_ns ~since:t0] = [now_ns () - t0], clamped to [0] so callers
    never see a negative span if the system clock steps backwards. *)

val elapsed_s : since:int -> float
(** Same span in seconds, for rate computations (events/sec). *)
