(** Per-subsystem profiling hooks: wall-clock timers and allocation
    counters around the simulator's hot paths.

    The four instrumented subsystems are the ones every scale claim rests
    on: {!Simcore.Sim} event dispatch, {!Simnet.Net} message delivery, the
    storage node's foreground write apply, and consistency-point
    advancement in [Aurora_core.Consistency].

    All state lives here, outside the simulation: enabling or disabling
    probes changes *nothing* observable inside a run (no RNG draws, no sim
    events, no metrics registry entries), so the byte-diff determinism gate
    is untouched.  Probes are disabled by default; a disabled
    {!start}/{!stop} pair costs one load and branch.

    Spans may nest across subsystems (dispatch > delivery > apply) but a
    subsystem's spans must not nest within themselves — each subsystem has
    a single open-span slot, which is what keeps the enabled path
    allocation-free apart from the boxed float [Unix.gettimeofday]
    returns. *)

type subsystem =
  | Sim_dispatch  (** One simulator event execution. *)
  | Net_delivery  (** One message hand-off to its delivery handler. *)
  | Storage_apply  (** One [Write_batch] foreground apply on a storage node. *)
  | Consistency_advance
      (** One ack processed through SCL -> PGCL -> VCL advancement. *)

val all : subsystem list
(** In fixed declaration order — the order every report lists them in. *)

val name : subsystem -> string
(** Stable snake_case identifier used in [BENCH_*.json]. *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Zero all accumulated stats (open spans are discarded). *)

val start : subsystem -> unit
(** Open the subsystem's span: record wall-clock and minor-heap marks.
    No-op while disabled. *)

val stop : subsystem -> unit
(** Close the span and accumulate call count, wall time, and minor-heap
    words allocated.  No-op while disabled or without a matching
    {!start}. *)

type stat = {
  calls : int;
  wall_ns : int;  (** Total wall-clock time inside the subsystem's spans. *)
  minor_words : float;
      (** Minor-heap words allocated inside the spans (from
          [Gc.minor_words] deltas; nested subsystems' allocations are
          included in the enclosing span). *)
}

val stat : subsystem -> stat

val stats : unit -> (string * stat) list
(** All subsystems in {!all} order, keyed by {!name}. *)

val install_sim : Simcore.Sim.t -> unit
(** Attach a {!Sim_dispatch} span around every event the given simulator
    executes (via {!Simcore.Sim.set_probe}). *)
