open Simcore
open Quorum

type params = {
  segment_mttf : Time_ns.t;
  repair_detection : Time_ns.t;
  repair_duration : Time_ns.t;
  az_mttf : Time_ns.t;
  az_outage : Time_ns.t;
  horizon : Time_ns.t;
  groups : int;
}

let default_params =
  {
    segment_mttf = Time_ns.hours (24 * 182);
    repair_detection = Time_ns.sec 10;
    repair_duration = Time_ns.minutes 5;
    az_mttf = Time_ns.hours (24 * 730);
    az_outage = Time_ns.hours 1;
    horizon = Time_ns.hours (24 * 365);
    groups = 10_000;
  }

type result = {
  write_unavail : float;
  read_unavail : float;
  write_loss_episodes : int;
  read_loss_episodes : int;
  az_onsets : int;
  az_write_survived : int;
  az_read_survived : int;
  member_failures : int;
}

type event = Member_fail of int | Member_repair of int | Az_fail of int | Az_restore of int

(* One group simulated independently with its own tiny event queue. *)
let run_group ~rng ~params ~(members : Membership.member list) ~rule acc =
  let n = List.length members in
  let member_arr = Array.of_list members in
  let azs =
    List.sort_uniq Az.compare (List.map (fun (m : Membership.member) -> m.az) members)
  in
  let member_up = Array.make n true in
  let az_up = Hashtbl.create 4 in
  List.iter (fun az -> Hashtbl.replace az_up (Az.to_int az) true) azs;
  (* Ties on the timestamp break on the push sequence number, so
     same-instant events pop in a fixed, seed-independent order. *)
  let heap = Heap.create ~cmp:(fun (t1, s1, _) (t2, s2, _) ->
      let c = Time_ns.compare t1 t2 in
      if c <> 0 then c else Int.compare s1 s2)
  in
  let seq = ref 0 in
  let push at ev =
    incr seq;
    Heap.push heap (at, !seq, ev)
  in
  let draw_exp mean = int_of_float (Rng.exponential rng ~mean:(float_of_int mean)) in
  (* Seed initial failure draws. *)
  for i = 0 to n - 1 do
    push (draw_exp params.segment_mttf) (Member_fail i)
  done;
  List.iter
    (fun az -> push (draw_exp params.az_mttf) (Az_fail (Az.to_int az)))
    azs;
  let up_set () =
    let s = ref Member_id.Set.empty in
    for i = 0 to n - 1 do
      let m = member_arr.(i) in
      if member_up.(i) && Hashtbl.find az_up (Az.to_int m.Membership.az) then
        s := Member_id.Set.add m.Membership.id !s
    done;
    !s
  in
  let write_ok () = Quorum_set.satisfied rule.Quorum_set.Rule.write (up_set ()) in
  let read_ok () = Quorum_set.satisfied rule.Quorum_set.Rule.read (up_set ()) in
  let wu = ref 0 and ru = ref 0 in
  let w_eps = ref 0 and r_eps = ref 0 in
  let az_onsets = ref 0 and az_w = ref 0 and az_r = ref 0 in
  let failures = ref 0 in
  let last_t = ref 0 in
  let w_was = ref true and r_was = ref true in
  let account now =
    let span = now - !last_t in
    if not !w_was then wu := !wu + span;
    if not !r_was then ru := !ru + span;
    last_t := now
  in
  let note_transition () =
    let w = write_ok () and r = read_ok () in
    if !w_was && not w then incr w_eps;
    if !r_was && not r then incr r_eps;
    w_was := w;
    r_was := r
  in
  let continue = ref true in
  while !continue do
    match Heap.pop heap with
    | None -> continue := false
    | Some (at, _, _) when at > params.horizon ->
      account params.horizon;
      continue := false
    | Some (at, _, ev) ->
      account at;
      (match ev with
      | Member_fail i ->
        if member_up.(i) then begin
          incr failures;
          member_up.(i) <- false;
          push
            (at + params.repair_detection + params.repair_duration)
            (Member_repair i)
        end
      | Member_repair i ->
        member_up.(i) <- true;
        push (at + draw_exp params.segment_mttf) (Member_fail i)
      | Az_fail az ->
        (* AZ+1 readout: state of the quorum at outage onset. *)
        incr az_onsets;
        Hashtbl.replace az_up az false;
        if write_ok () then incr az_w;
        if read_ok () then incr az_r;
        push (at + params.az_outage) (Az_restore az)
      | Az_restore az ->
        Hashtbl.replace az_up az true;
        push (at + draw_exp params.az_mttf) (Az_fail az));
      note_transition ()
  done;
  let total = params.horizon in
  let uw, ur, we, re, ao, aw, ar, f = acc in
  ( uw +. (float_of_int !wu /. float_of_int total),
    ur +. (float_of_int !ru /. float_of_int total),
    we + !w_eps,
    re + !r_eps,
    ao + !az_onsets,
    aw + !az_w,
    ar + !az_r,
    f + !failures )

let run ~rng ~params ~members ~rule =
  let acc = ref (0., 0., 0, 0, 0, 0, 0, 0) in
  for _ = 1 to params.groups do
    acc := run_group ~rng ~params ~members ~rule !acc
  done;
  let uw, ur, we, re, ao, aw, ar, f = !acc in
  let g = float_of_int params.groups in
  {
    write_unavail = uw /. g;
    read_unavail = ur /. g;
    write_loss_episodes = we;
    read_loss_episodes = re;
    az_onsets = ao;
    az_write_survived = aw;
    az_read_survived = ar;
    member_failures = f;
  }

type analytic = { rho : float; p_write_loss : float; p_read_loss : float }

let analytic ~params ~members ~rule =
  let mttr =
    float_of_int (Time_ns.add params.repair_detection params.repair_duration)
  in
  let mttf = float_of_int params.segment_mttf in
  let rho = mttr /. (mttf +. mttr) in
  let member_arr = Array.of_list members in
  let n = Array.length member_arr in
  if n > 20 then invalid_arg "Fleet_model.analytic: too many members";
  let p_not = ref 0. and p_not_read = ref 0. in
  for mask = 0 to (1 lsl n) - 1 do
    (* mask bit set = member down *)
    let prob = ref 1. and up = ref Member_id.Set.empty in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then prob := !prob *. rho
      else begin
        prob := !prob *. (1. -. rho);
        up := Member_id.Set.add member_arr.(i).Membership.id !up
      end
    done;
    if not (Quorum_set.satisfied rule.Quorum_set.Rule.write !up) then
      p_not := !p_not +. !prob;
    if not (Quorum_set.satisfied rule.Quorum_set.Rule.read !up) then
      p_not_read := !p_not_read +. !prob
  done;
  { rho; p_write_loss = !p_not; p_read_loss = !p_not_read }

type az_tolerance = {
  write_survives_az : bool;
  read_survives_az : bool;
  write_survives_az_plus_one : bool;
  read_survives_az_plus_one : bool;
}

let azs_of members =
  List.sort_uniq Az.compare
    (List.map (fun (m : Membership.member) -> m.Membership.az) members)

let survivors_after_az members az =
  List.filter_map
    (fun (m : Membership.member) ->
      if Az.equal m.Membership.az az then None else Some m.Membership.id)
    members

let az_tolerance ~members ~rule =
  let write = rule.Quorum_set.Rule.write and read = rule.Quorum_set.Rule.read in
  let check quorum ~plus_one =
    List.for_all
      (fun az ->
        let up = survivors_after_az members az in
        if plus_one then
          (* Worst case: the adversary also removes any one survivor. *)
          List.for_all
            (fun extra ->
              let up' =
                Member_id.set_of_list
                  (List.filter (fun m -> not (Member_id.equal m extra)) up)
              in
              Quorum_set.satisfied quorum up')
            up
        else Quorum_set.satisfied quorum (Member_id.set_of_list up))
      (azs_of members)
  in
  {
    write_survives_az = check write ~plus_one:false;
    read_survives_az = check read ~plus_one:false;
    write_survives_az_plus_one = check write ~plus_one:true;
    read_survives_az_plus_one = check read ~plus_one:true;
  }

let analytic_given_az ~params ~members ~rule =
  let mttr =
    float_of_int (Time_ns.add params.repair_detection params.repair_duration)
  in
  let rho = mttr /. (float_of_int params.segment_mttf +. mttr) in
  (* Worst AZ: maximize loss probability. *)
  let loss quorum =
    List.fold_left
      (fun worst az ->
        let up = Array.of_list (survivors_after_az members az) in
        let n = Array.length up in
        let p = ref 0. in
        for mask = 0 to (1 lsl n) - 1 do
          let prob = ref 1. and alive = ref Member_id.Set.empty in
          for i = 0 to n - 1 do
            if mask land (1 lsl i) <> 0 then prob := !prob *. rho
            else begin
              prob := !prob *. (1. -. rho);
              alive := Member_id.Set.add up.(i) !alive
            end
          done;
          if not (Quorum_set.satisfied quorum !alive) then p := !p +. !prob
        done;
        Float.max worst !p)
      0. (azs_of members)
  in
  (loss rule.Quorum_set.Rule.write, loss rule.Quorum_set.Rule.read)
