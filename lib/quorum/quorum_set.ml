type t =
  | Atom of { threshold : int; members : Member_id.Set.t }
  | All of t list
  | Any of t list

let k_of k members =
  if k < 0 then invalid_arg "Quorum_set.k_of: negative threshold";
  let set = Member_id.set_of_list members in
  if Member_id.Set.cardinal set <> List.length members then
    invalid_arg "Quorum_set.k_of: duplicate members";
  if k > Member_id.Set.cardinal set then
    invalid_arg "Quorum_set.k_of: threshold exceeds member count";
  Atom { threshold = k; members = set }

let rec equal a b =
  match (a, b) with
  | Atom { threshold = ka; members = ma }, Atom { threshold = kb; members = mb }
    ->
    Int.equal ka kb && Member_id.Set.equal ma mb
  | All xs, All ys | Any xs, Any ys -> List.equal equal xs ys
  | (Atom _ | All _ | Any _), _ -> false

let all ts = All ts
let any ts = Any ts

let rec members = function
  | Atom { members = m; _ } -> m
  | All ts | Any ts ->
    List.fold_left
      (fun acc t -> Member_id.Set.union acc (members t))
      Member_id.Set.empty ts

let rec satisfied t responsive =
  match t with
  | Atom { threshold; members } ->
    Member_id.Set.cardinal (Member_id.Set.inter members responsive)
    >= threshold
  | All ts -> List.for_all (fun t -> satisfied t responsive) ts
  | Any ts -> List.exists (fun t -> satisfied t responsive) ts

(* Enumerate all subsets of a member universe as bitmasks. *)
let universe_array set = Array.of_list (Member_id.Set.elements set)

let subset_of_mask arr mask =
  let s = ref Member_id.Set.empty in
  Array.iteri (fun i m -> if mask land (1 lsl i) <> 0 then s := Member_id.Set.add m !s) arr;
  !s

let for_all_subsets universe f =
  let arr = universe_array universe in
  let n = Array.length arr in
  if n > 22 then invalid_arg "Quorum_set: universe too large for enumeration";
  let ok = ref true in
  let mask = ref 0 in
  let limit = 1 lsl n in
  while !ok && !mask < limit do
    if not (f (subset_of_mask arr !mask)) then ok := false;
    incr mask
  done;
  !ok

let min_cardinality t =
  let universe = members t in
  let best = ref (Member_id.Set.cardinal universe + 1) in
  ignore
    (for_all_subsets universe (fun s ->
         if satisfied t s then begin
           let c = Member_id.Set.cardinal s in
           if c < !best then best := c
         end;
         true));
  if !best > Member_id.Set.cardinal universe then max_int else !best

(* Monotone-formula overlap: read and write quorums always intersect iff no
   subset S satisfies [read] while its complement satisfies [write]. *)
let overlaps ~read ~write =
  let universe = Member_id.Set.union (members read) (members write) in
  for_all_subsets universe (fun s ->
      not (satisfied read s && satisfied write (Member_id.Set.diff universe s)))

let self_overlapping t =
  let universe = members t in
  for_all_subsets universe (fun s ->
      not (satisfied t s && satisfied t (Member_id.Set.diff universe s)))

let tolerates_failure_of t down =
  satisfied t (Member_id.Set.diff (members t) down)

let rec pp fmt = function
  | Atom { threshold; members } ->
    Format.fprintf fmt "%d/%d of %a" threshold
      (Member_id.Set.cardinal members)
      Member_id.pp_set members
  | All ts ->
    Format.fprintf fmt "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " AND ")
         pp)
      ts
  | Any ts ->
    Format.fprintf fmt "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " OR ")
         pp)
      ts

module Rule = struct
  type quorum = t

  type t = { read : quorum; write : quorum }

  let make ~read ~write =
    if not (overlaps ~read ~write) then
      Error "read and write quorums do not always overlap (rule 1 of §2.1)"
    else if not (self_overlapping write) then
      Error "two write quorums can be disjoint (rule 2 of §2.1)"
    else Ok { read; write }

  let make_exn ~read ~write =
    match make ~read ~write with
    | Ok t -> t
    | Error msg -> invalid_arg ("Quorum_set.Rule.make_exn: " ^ msg)

  let members t = Member_id.Set.union (members t.read) (members t.write)

  let pp fmt t =
    Format.fprintf fmt "read: %a; write: %a" pp t.read pp t.write
end
