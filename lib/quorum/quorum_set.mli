(** Boolean quorum-set expressions (§4.1, §4.2).

    A quorum requirement is a monotone Boolean formula over members:
    k-of-n atoms combined with AND / OR.  Plain quorums are single atoms
    ("4 of ABCDEF"); membership transitions AND write atoms over old and new
    member sets; unlike-member designs (full/tail segments) mix both:

    - transition write set: [4/6 ABCDEF AND 4/6 ABCDEG]
    - transition read set:  [3/6 ABCDEF OR 3/6 ABCDEG]
    - tiered write set:     [4/6 of all OR 3/3 of full segments]
    - tiered read set:      [3/6 of all AND 1/3 of full segments]

    Because formulas are monotone, safety properties (read/write overlap,
    write/write intersection) are decidable by enumerating member subsets;
    member counts here are small (≤ ~12), so exhaustive checking is cheap
    and is exactly the "using Boolean logic, we can prove each transition is
    correct, safe, and reversible" claim of the paper. *)

type t =
  | Atom of { threshold : int; members : Member_id.Set.t }
      (** Satisfied by any [threshold] members of [members]. *)
  | All of t list  (** AND; [All \[\]] is trivially satisfied. *)
  | Any of t list  (** OR; [Any \[\]] is never satisfied. *)

val k_of : int -> Member_id.t list -> t
(** [k_of k members] — the [k]-of-n atom.
    @raise Invalid_argument if [k < 0], [k] exceeds the member count, or
    [members] has duplicates. *)

val equal : t -> t -> bool
(** Structural formula equality ([Member_id.Set.equal] on atoms; same
    shape and operand order — not logical equivalence, which is what
    {!overlaps}-style enumeration is for). *)

val all : t list -> t
val any : t list -> t

val members : t -> Member_id.Set.t
(** Every member mentioned anywhere in the formula. *)

val satisfied : t -> Member_id.Set.t -> bool
(** [satisfied t responsive] — does the responsive set meet the
    requirement? Monotone in [responsive]. *)

val min_cardinality : t -> int
(** Size of the smallest satisfying set (number of I/Os needed in the best
    case). *)

val overlaps : read:t -> write:t -> bool
(** Every read-satisfying subset intersects every write-satisfying subset —
    rule 1 of §2.1.  Checked exhaustively over subsets of
    [members read ∪ members write]. *)

val self_overlapping : t -> bool
(** Every pair of satisfying subsets intersects — rule 2 of §2.1 applied to
    the write quorum ("the write set must overlap with prior write sets"). *)

val tolerates_failure_of : t -> Member_id.Set.t -> bool
(** [tolerates_failure_of t down] — the requirement is still satisfiable
    using only members outside [down]. *)

val pp : Format.formatter -> t -> unit

(** A paired read/write rule with its safety obligations. *)
module Rule : sig
  type quorum := t

  type t = { read : quorum; write : quorum }

  val make : read:quorum -> write:quorum -> (t, string) result
  (** Validates both §2.1 rules; [Error] describes the violated one. *)

  val make_exn : read:quorum -> write:quorum -> t
  val members : t -> Member_id.Set.t
  val pp : Format.formatter -> t -> unit
end
