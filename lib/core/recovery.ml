open Simcore
open Wal
open Quorum
module Protocol = Storage.Protocol
module Pg_id = Storage.Pg_id

type outcome = {
  vcl : Lsn.t;
  vdl : Lsn.t;
  truncate_above : Lsn.t;
  truncate_upto : Lsn.t;
  pg_tails : (Pg_id.t * Lsn.t) list;
  block_tails : (Block_id.t * Lsn.t) list;
  committed : (Txn_id.t * Lsn.t) list;
  aborted : Txn_id.t list;
  interrupted : Txn_id.t list;
  max_txn_seen : Txn_id.t;
  scl_observations : (Pg_id.t * Member_id.t * Lsn.t) list;
      (* post-truncation SCLs, seeding the rebuilt consistency tracker *)
  records_examined : int;
  probes_sent : int;
  duration : Time_ns.t;
}

type fetched = {
  f_records : Log_record.t list;
  f_scl : Lsn.t;
  f_retained_from : Lsn.t;
  f_statuses : (Txn_id.t * Lsn.t * bool) list;
}

type pg_probe = {
  group : Volume.pg;
  replies : (Lsn.t * Lsn.t) Member_id.Tbl.t; (* seg -> (scl, highest) *)
  mutable point : Lsn.t option; (* recovered durable point once read quorum met *)
  mutable fetched : fetched option;
  mutable truncate_acks : Member_id.Set.t;
}

type phase = Probing | Fetching | Truncating | Finished

type t = {
  sim : Sim.t;
  net : Protocol.t Simnet.Net.t;
  my_addr : Simnet.Addr.t;
  volume : Volume.t;
  obs : Obs.Ctx.t option;
  on_done : (outcome, string) result -> unit;
  started_at : Time_ns.t;
  probes : pg_probe Pg_id.Tbl.t;
  mutable phase : phase;
  mutable probes_sent : int;
  mutable truncate_above : Lsn.t;
  mutable truncate_upto : Lsn.t;
  mutable computed_vdl : Lsn.t;
  mutable result : outcome option;
}

let is_done t = t.phase = Finished

let trace_phase t phase =
  match t.obs with
  | None -> ()
  | Some obs ->
    Obs.Trace.recovery (Obs.Ctx.trace obs) ~at:(Sim.now t.sim)
      ~epoch:(Epoch.to_int (Volume.volume_epoch t.volume))
      phase

let recovered_point ~scls =
  List.fold_left (fun acc (_, scl) -> Lsn.max acc scl) Lsn.none scls

(* Largest LSN to which the volume chain links gaplessly upward from
   [anchor], visiting only records covered by their group's recovered
   point.  Everything at or below [anchor] (the max hot-log GC floor) is
   known complete and durable: GC only ever runs below PGMRPL <= VDL <=
   VCL of the pre-crash instance.  VDL is the last MTR-completion record
   on the walk.

   A record extends the walk iff its [prev_volume] is already covered —
   any missing intermediate record would be some fetched record's
   predecessor and stop the walk exactly there. *)
let compute_vcl ~anchor ~points ~pg_of records =
  let sorted =
    List.sort
      (fun (a : Log_record.t) (b : Log_record.t) -> Lsn.compare a.lsn b.lsn)
      (List.filter (fun (r : Log_record.t) -> Lsn.(r.lsn > anchor)) records)
  in
  let rec walk vcl vdl = function
    | [] -> (vcl, vdl)
    | (r : Log_record.t) :: rest ->
      if Lsn.(r.prev_volume <= vcl) && Lsn.(r.lsn <= points (pg_of r.block))
      then walk r.lsn (if r.mtr_end then r.lsn else vdl) rest
      else (vcl, vdl)
  in
  walk anchor anchor sorted

let epochs_for t group = Volume.epochs_for t.volume group

let send t ~dst msg =
  Simnet.Net.send t.net ~src:t.my_addr ~dst ~bytes:(Protocol.bytes msg) msg

let send_probes t =
  Pg_id.Tbl.iter
    (fun pg_id probe ->
      if probe.point = None then
        List.iter
          (fun (seg, addr) ->
            if not (Member_id.Tbl.mem probe.replies seg) then begin
              t.probes_sent <- t.probes_sent + 1;
              send t ~dst:addr
                (Protocol.Scl_probe
                   { req = 0; pg = pg_id; seg; epochs = epochs_for t probe.group })
            end)
          (Volume.roster probe.group))
    t.probes

let best_responder probe =
  Member_id.Tbl.fold
    (fun seg (scl, _) acc ->
      match acc with
      | Some (_, best_scl) when Lsn.(best_scl >= scl) -> acc
      | _ -> Some (seg, scl))
    probe.replies None

let send_fetches t =
  Pg_id.Tbl.iter
    (fun pg_id probe ->
      if probe.fetched = None then
        match best_responder probe with
        | None -> ()
        | Some (seg, _) -> (
          match
            List.find_opt
              (fun (m, _) -> Member_id.equal m seg)
              (Volume.roster probe.group)
          with
          | None -> ()
          | Some (_, addr) ->
            send t ~dst:addr
              (Protocol.Hydrate_pull
                 {
                   req = 0;
                   pg = pg_id;
                   from_seg = seg;
                   since = Lsn.none;
                   want_blocks = false;
                   epochs = epochs_for t probe.group;
                 })))
    t.probes

(* The group's recovered chain tail: the last surviving record of its
   chain, also used as the PGCL hint installed with the truncation. *)
let recovered_tail probe ~vcl =
  match probe.fetched with
  | None -> Lsn.none
  | Some f -> (
    let sorted =
      List.sort
        (fun (a : Log_record.t) (b : Log_record.t) -> Lsn.compare a.lsn b.lsn)
        f.f_records
    in
    let below =
      List.fold_left
        (fun acc (r : Log_record.t) ->
          if Lsn.(r.lsn <= vcl) then Lsn.max acc r.lsn else acc)
        Lsn.none sorted
    in
    if not (Lsn.is_none below) then below
    else match sorted with first :: _ -> first.prev_segment | [] -> f.f_scl)

let send_truncates t =
  Pg_id.Tbl.iter
    (fun pg_id probe ->
      List.iter
        (fun (seg, addr) ->
          if not (Member_id.Set.mem seg probe.truncate_acks) then
            send t ~dst:addr
              (Protocol.Truncate
                 {
                   pg = pg_id;
                   seg;
                   above = t.truncate_above;
                   upto = t.truncate_upto;
                   pgcl = recovered_tail probe ~vcl:t.truncate_above;
                   epochs = epochs_for t probe.group;
                 }))
        (Volume.roster probe.group))
    t.probes

let rule_read group = (Volume.rule group).Quorum_set.Rule.read
let rule_write group = (Volume.rule group).Quorum_set.Rule.write

let probe_quorum_met probe =
  let responders =
    Member_id.Tbl.fold
      (fun seg _ acc -> Member_id.Set.add seg acc)
      probe.replies Member_id.Set.empty
  in
  Quorum_set.satisfied (rule_read probe.group) responders

let all_points t =
  Pg_id.Tbl.fold (fun _ p acc -> acc && p.point <> None) t.probes true

let all_fetched t =
  Pg_id.Tbl.fold (fun _ p acc -> acc && p.fetched <> None) t.probes true

let all_truncated t =
  Pg_id.Tbl.fold
    (fun _ p acc ->
      acc && Quorum_set.satisfied (rule_write p.group) p.truncate_acks)
    t.probes true

let point_of t pg_id =
  match (Pg_id.Tbl.find t.probes pg_id).point with
  | Some p -> p
  | None -> Lsn.none

let all_records t =
  Pg_id.Tbl.fold
    (fun _ p acc ->
      match p.fetched with Some f -> f.f_records @ acc | None -> acc)
    t.probes []

let finish_compute t =
  let records = all_records t in
  (* The volume chain is known complete at or below every segment's GC
     floor; anchor the walk at the highest floor seen. *)
  let anchor =
    Pg_id.Tbl.fold
      (fun _ p acc ->
        match p.fetched with
        | Some f -> Lsn.max acc f.f_retained_from
        | None -> acc)
      t.probes Lsn.none
  in
  let vcl, vdl =
    compute_vcl ~anchor
      ~points:(fun pg_id -> point_of t pg_id)
      ~pg_of:(fun block -> (Volume.pg_of_block t.volume block).Volume.id)
      records
  in
  let highest =
    Pg_id.Tbl.fold
      (fun _ p acc ->
        let acc =
          Member_id.Tbl.fold
            (fun _ (_, highest) acc -> Lsn.max acc highest)
            p.replies acc
        in
        List.fold_left
          (fun acc (r : Log_record.t) -> Lsn.max acc r.lsn)
          acc
          (match p.fetched with Some f -> f.f_records | None -> []))
      t.probes vcl
  in
  t.truncate_above <- vcl;
  t.computed_vdl <- vdl;
  (* Headroom past the highest sighting absorbs in-flight writes we never
     observed (Figure 4's ragged edge). *)
  t.truncate_upto <- Lsn.add highest 1024;
  t.phase <- Truncating;
  send_truncates t

let survivors t =
  List.filter
    (fun (r : Log_record.t) -> Lsn.(r.lsn <= t.truncate_above))
    (all_records t)

let finish t =
  let vcl = t.truncate_above in
  let records = survivors t in
  (* The per-group chain tail is the last surviving record of that group's
     chain, derived from the fetched (best) segment: the max fetched LSN at
     or below VCL; if everything fetched is above VCL, the predecessor of
     the oldest fetched record; if nothing was fetched, the donor's SCL
     (its chain lies wholly below its GC floor <= VCL).  This matches the
     SCL every segment re-anchors to after applying the truncation. *)
  let pg_tails =
    Pg_id.Tbl.fold
      (fun pg_id p acc -> (pg_id, recovered_tail p ~vcl) :: acc)
      t.probes []
  in
  let block_tails = Block_id.Tbl.create 64 in
  let writers = ref Txn_id.Set.empty in
  let max_txn = ref (Txn_id.of_int 0) in
  List.iter
    (fun (r : Log_record.t) ->
      if Txn_id.compare r.txn !max_txn > 0 then max_txn := r.txn;
      match r.op with
      | Log_record.Put _ | Log_record.Delete _ ->
        writers := Txn_id.Set.add r.txn !writers;
        let prev =
          match Block_id.Tbl.find_opt block_tails r.block with
          | Some l -> l
          | None -> Lsn.none
        in
        if Lsn.(r.lsn > prev) then Block_id.Tbl.replace block_tails r.block r.lsn
      | Log_record.Commit | Log_record.Abort | Log_record.Noop -> ())
    records;
  (* Transaction outcomes come from the segments' durable status tables
     (union across fetched segments), filtered to at-or-below VCL: status
     records above the cut are annulled with the rest of the ragged edge. *)
  let status_tbl = Hashtbl.create 256 in
  Pg_id.Tbl.iter
    (fun _ p ->
      match p.fetched with
      | None -> ()
      | Some f ->
        List.iter
          (fun (txn, lsn, is_abort) ->
            if Txn_id.compare txn !max_txn > 0 then max_txn := txn;
            if Lsn.(lsn <= vcl) then
              match Hashtbl.find_opt status_tbl (Txn_id.to_int txn) with
              | Some (prev_lsn, _) when Lsn.(prev_lsn >= lsn) -> ()
              | _ -> Hashtbl.replace status_tbl (Txn_id.to_int txn) (lsn, is_abort))
          f.f_statuses)
    t.probes;
  let committed = ref [] in
  let aborted = ref [] in
  Hashtbl.iter
    (fun txn (lsn, is_abort) ->
      if is_abort then aborted := Txn_id.of_int txn :: !aborted
      else committed := (Txn_id.of_int txn, lsn) :: !committed)
    status_tbl;
  let decided =
    Txn_id.Set.union
      (Txn_id.Set.of_list (List.map fst !committed))
      (Txn_id.Set.of_list !aborted)
  in
  let interrupted = Txn_id.Set.elements (Txn_id.Set.diff !writers decided) in
  let scl_observations =
    Pg_id.Tbl.fold
      (fun pg_id p acc ->
        let tail =
          match List.assoc_opt pg_id pg_tails with
          | Some tl -> tl
          | None -> Lsn.none
        in
        Member_id.Tbl.fold
          (fun seg (scl, _) acc -> (pg_id, seg, Lsn.min scl tail) :: acc)
          p.replies acc)
      t.probes []
  in
  let outcome =
    {
      vcl;
      vdl = (if Lsn.is_none t.computed_vdl then vcl else t.computed_vdl);
      truncate_above = t.truncate_above;
      truncate_upto = t.truncate_upto;
      pg_tails;
      block_tails =
        Block_id.Tbl.fold (fun b l acc -> (b, l) :: acc) block_tails [];
      committed = !committed;
      aborted = !aborted;
      interrupted;
      max_txn_seen = !max_txn;
      scl_observations;
      records_examined = List.length records;
      probes_sent = t.probes_sent;
      duration = Time_ns.diff (Sim.now t.sim) t.started_at;
    }
  in
  t.phase <- Finished;
  t.result <- Some outcome;
  trace_phase t Obs.Trace.Recovery_finished;
  t.on_done (Ok outcome)

let step t =
  match t.phase with
  | Probing ->
    if all_points t then begin
      t.phase <- Fetching;
      send_fetches t
    end
  | Fetching -> if all_fetched t then finish_compute t
  | Truncating -> if all_truncated t then finish t
  | Finished -> ()

let on_message t msg ~from:_ =
  if t.phase <> Finished then
    match msg with
    | Protocol.Scl_reply { pg; seg; scl; highest; _ } -> (
      match Pg_id.Tbl.find_opt t.probes pg with
      | None -> ()
      | Some probe ->
        Member_id.Tbl.replace probe.replies seg (scl, highest);
        if probe.point = None && probe_quorum_met probe then
          probe.point <- Some (recovered_point
                                 ~scls:(Member_id.Tbl.fold
                                          (fun seg (scl, _) acc -> (seg, scl) :: acc)
                                          probe.replies []));
        step t)
    | Protocol.Hydrate_reply { pg; records; scl; retained_from; statuses; _ }
      -> (
      match Pg_id.Tbl.find_opt t.probes pg with
      | None -> ()
      | Some probe ->
        if probe.fetched = None && t.phase = Fetching then begin
          probe.fetched <-
            Some
              {
                f_records = records;
                f_scl = scl;
                f_retained_from = retained_from;
                f_statuses = statuses;
              };
          step t
        end)
    | Protocol.Truncate_ack { pg; seg } -> (
      match Pg_id.Tbl.find_opt t.probes pg with
      | None -> ()
      | Some probe ->
        probe.truncate_acks <- Member_id.Set.add seg probe.truncate_acks;
        step t)
    | _ -> ()

let start ~sim ~net ~my_addr ~volume ?(retry_interval = Time_ns.ms 50)
    ?(deadline = Time_ns.sec 30) ?obs ~on_done () =
  ignore (Volume.bump_volume_epoch volume : Epoch.t);
  let t =
    {
      sim;
      net;
      my_addr;
      volume;
      obs;
      on_done;
      started_at = Sim.now sim;
      probes = Pg_id.Tbl.create 8;
      phase = Probing;
      probes_sent = 0;
      truncate_above = Lsn.none;
      truncate_upto = Lsn.none;
      computed_vdl = Lsn.none;
      result = None;
    }
  in
  List.iter
    (fun (g : Volume.pg) ->
      Pg_id.Tbl.add t.probes g.Volume.id
        {
          group = g;
          replies = Member_id.Tbl.create 8;
          point = None;
          fetched = None;
          truncate_acks = Member_id.Set.empty;
        })
    (Volume.pgs volume);
  trace_phase t Obs.Trace.Recovery_started;
  send_probes t;
  (* Retry loop: re-send whatever the current phase is still missing. *)
  Sim.every sim ~interval:retry_interval (fun () ->
      if t.phase = Finished then false
      else if Time_ns.compare (Time_ns.diff (Sim.now sim) t.started_at) deadline > 0
      then begin
        t.phase <- Finished;
        trace_phase t Obs.Trace.Recovery_finished;
        t.on_done (Error "recovery timed out waiting for storage quorums");
        false
      end
      else begin
        (match t.phase with
        | Probing -> send_probes t
        | Fetching -> send_fetches t
        | Truncating -> send_truncates t
        | Finished -> ());
        true
      end);
  t
