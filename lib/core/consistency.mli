(** Storage consistency points (§2.3, Figure 3).

    The database instance advances all consistency points by pure local
    bookkeeping over write acknowledgements — no consensus round ever runs:

    - {b SCL} (per segment): reported by each storage node in its acks; the
      gapless prefix of the segment chain it holds.
    - {b PGCL} (per protection group): the point at which the group has made
      all its writes durable — the highest LSN [L] routed to the group such
      that the segments with [SCL >= L] satisfy the group's write quorum.
    - {b VCL} (volume): the highest LSN such that every record at or below
      it, across all groups, is durable — "the entire log chain must be
      complete to ensure recoverability".
    - {b VDL} (volume durable): the highest MTR-completion record at or
      below VCL; reads and replica application anchor here so structural
      changes stay atomic (§3.3).

    The tracker is told (a) each record's submission, in LSN order, with its
    owning group and MTR-end flag, and (b) each (segment, SCL) ack.  Commit
    acknowledgement hooks fire as VCL advances (§2.3's "dedicated commit
    thread"). *)

open Wal
open Quorum

type t

val create : unit -> t

val register_pg : t -> Storage.Pg_id.t -> write_quorum:Quorum_set.t -> unit
(** Declare a protection group and its current write-quorum expression.
    Re-registering replaces the expression (membership epochs change it). *)

val set_write_quorum : t -> Storage.Pg_id.t -> Quorum_set.t -> unit

val note_submitted :
  t -> pg:Storage.Pg_id.t -> lsn:Lsn.t -> mtr_end:bool -> unit
(** Record that the writer allocated/submitted this LSN to this group.
    Must be called in ascending LSN order across the whole volume.
    @raise Invalid_argument on out-of-order submission or unknown group. *)

val note_ack : t -> pg:Storage.Pg_id.t -> seg:Member_id.t -> scl:Lsn.t -> unit
(** Process a write acknowledgement.  Acknowledgements may be delivered out
    of order; since a segment's SCL is monotone, values lower than already
    observed are ignored as stale. *)

val segment_scl : t -> pg:Storage.Pg_id.t -> seg:Member_id.t -> Lsn.t
val pgcl : t -> Storage.Pg_id.t -> Lsn.t
val vcl : t -> Lsn.t
val vdl : t -> Lsn.t

val segments_at_or_above :
  t -> pg:Storage.Pg_id.t -> lsn:Lsn.t -> Member_id.Set.t
(** Segments whose SCL covers [lsn] — exactly the candidates that hold the
    latest durable version of a block written at [lsn], which is what lets
    Aurora read from one segment instead of a read quorum (§3.1). *)

val on_vcl_advance : t -> (Lsn.t -> unit) -> unit
(** Register a callback fired (with the new VCL) every time VCL advances. *)

val on_vdl_advance : t -> (Lsn.t -> unit) -> unit

val on_record_durable : t -> (Storage.Pg_id.t -> Lsn.t -> unit) -> unit
(** Register a callback fired once per record the moment its group's PGCL
    first covers it (write quorum met) — the per-record grain the
    commit-path tracer needs, where {!on_vcl_advance} only reports the
    volume-level watermark. *)

val pending_submissions : t -> int
(** Records submitted but not yet covered by VCL (in-flight window). *)

val restore :
  t ->
  vcl:Lsn.t ->
  vdl:Lsn.t ->
  pg_points:(Storage.Pg_id.t * Lsn.t) list ->
  unit
(** Re-establish consistency points computed by crash recovery (§2.4):
    installs VCL/VDL/PGCLs directly and clears in-flight bookkeeping.
    Write quorum registrations and SCL observations survive. *)
