open Simcore
open Wal
open Quorum
module Protocol = Storage.Protocol

type config = {
  n_blocks : int; (* must match the writer's key->block hashing *)
  cache_capacity : int;
  read_strategy : Reader.strategy;
  feedback_interval : Time_ns.t;
}

let default_config =
  {
    n_blocks = Database.default_config.Database.n_blocks;
    cache_capacity = 128;
    read_strategy =
      Reader.Direct_tracked
        { hedge_after = Some (Time_ns.ms 2); explore_probability = 0.02 };
    feedback_interval = Time_ns.ms 100;
  }

type metrics = {
  mutable chunks_applied : int;
  mutable records_applied : int;
  mutable records_skipped : int;
  mutable commits_seen : int;
  mutable gets : int;
  mutable cache_hit_reads : int;
  mutable storage_reads : int;
  mutable stale_streams_dropped : int;
  stream_lag : Histogram.t;
}

type t = {
  sim : Sim.t;
  net : Protocol.t Simnet.Net.t;
  addr : Simnet.Addr.t;
  volume : Volume.t;
  writer : Simnet.Addr.t;
  config : config;
  cache : Buffer_cache.t;
  txns : Txn_table.t;
  reader : Reader.t;
  metrics : metrics;
  active_views : (int, int) Hashtbl.t;
  mutable vdl_seen : Lsn.t;
  mutable volume_epoch_seen : Epoch.t;
  mutable running : bool;
  mutable generation : int;
}

let register_instruments ~obs ~addr metrics =
  match obs with
  | None -> ()
  | Some obs ->
    let reg = Obs.Ctx.registry obs in
    let labels = [ ("node", string_of_int (Simnet.Addr.to_int addr)) ] in
    let c name f = Obs.Registry.counter_fn reg ~labels name f in
    c "replica_chunks_applied" (fun () -> metrics.chunks_applied);
    c "replica_records_applied" (fun () -> metrics.records_applied);
    c "replica_records_skipped" (fun () -> metrics.records_skipped);
    c "replica_commits_seen" (fun () -> metrics.commits_seen);
    c "replica_gets" (fun () -> metrics.gets);
    c "replica_cache_hit_reads" (fun () -> metrics.cache_hit_reads);
    c "replica_storage_reads" (fun () -> metrics.storage_reads);
    c "replica_stale_streams_dropped" (fun () -> metrics.stale_streams_dropped);
    Obs.Registry.histogram_ref reg ~labels "replica_stream_lag_ns"
      metrics.stream_lag

let create ~sim ~rng ~net ~addr ~volume ~writer ~config ?obs () =
  let metrics =
    {
      chunks_applied = 0;
      records_applied = 0;
      records_skipped = 0;
      commits_seen = 0;
      gets = 0;
      cache_hit_reads = 0;
      storage_reads = 0;
      stale_streams_dropped = 0;
      stream_lag = Histogram.create ();
    }
  in
  register_instruments ~obs ~addr metrics;
  {
    sim;
    net;
    addr;
    volume;
    writer;
    config;
    cache = Buffer_cache.create ~capacity:config.cache_capacity;
    txns = Txn_table.create ();
    reader =
      Reader.create ~sim ~rng:(Rng.split rng) ~net ~my_addr:addr
        ~strategy:config.read_strategy ?obs
        ~obs_labels:[ ("node", string_of_int (Simnet.Addr.to_int addr)) ]
        ();
    metrics;
    active_views = Hashtbl.create 16;
    vdl_seen = Lsn.none;
    volume_epoch_seen = Epoch.initial;
    running = false;
    generation = 0;
  }

let addr t = t.addr
let vdl_seen t = t.vdl_seen
let metrics t = t.metrics
let cache t = t.cache
let is_running t = t.running
let committed t txn = Txn_table.commit_scn t.txns txn

let track_view t as_of =
  let k = Lsn.to_int as_of in
  let n = match Hashtbl.find_opt t.active_views k with Some n -> n | None -> 0 in
  Hashtbl.replace t.active_views k (n + 1)

let untrack_view t as_of =
  let k = Lsn.to_int as_of in
  match Hashtbl.find_opt t.active_views k with
  | Some 1 | None -> Hashtbl.remove t.active_views k
  | Some n -> Hashtbl.replace t.active_views k (n - 1)

let read_floor t =
  Hashtbl.fold (fun k _ acc -> Lsn.min acc (Lsn.of_int k)) t.active_views t.vdl_seen

(* Apply one MTR chunk atomically: every record lands (on cached blocks) in
   one simulation event, and visibility is anyway gated by vdl_seen, which
   only rests on MTR completions (§3.3). *)
let apply_chunk t (chunk : Protocol.mtr_chunk) =
  List.iter
    (fun (r : Log_record.t) ->
      if Buffer_cache.apply_if_present t.cache r ~vdl:t.vdl_seen then
        t.metrics.records_applied <- t.metrics.records_applied + 1
      else t.metrics.records_skipped <- t.metrics.records_skipped + 1)
    chunk.chunk_records;
  t.metrics.chunks_applied <- t.metrics.chunks_applied + 1

let handle_stream t ~sent_at ~chunks ~vdl ~commits ~volume_epoch =
  if Epoch.is_stale volume_epoch ~current:t.volume_epoch_seen then
    t.metrics.stale_streams_dropped <- t.metrics.stale_streams_dropped + 1
  else begin
    if Epoch.compare volume_epoch t.volume_epoch_seen > 0 then
      t.volume_epoch_seen <- volume_epoch;
    List.iter (apply_chunk t) chunks;
    List.iter
      (fun (txn, scn) ->
        t.metrics.commits_seen <- t.metrics.commits_seen + 1;
        Txn_table.register t.txns txn;
        Txn_table.mark_committed t.txns txn ~scn)
      commits;
    if Lsn.(vdl > t.vdl_seen) then t.vdl_seen <- vdl;
    Histogram.record_span t.metrics.stream_lag sent_at (Sim.now t.sim)
  end

let handle_message t (env : Protocol.t Simnet.Net.envelope) =
  if t.running then
    match env.msg with
    | Protocol.Redo_stream { chunks; vdl; commits; volume_epoch } ->
      handle_stream t ~sent_at:env.sent_at ~chunks ~vdl ~commits ~volume_epoch
    | Protocol.Read_reply { req; seg; result } ->
      Reader.on_reply t.reader ~req ~seg ~from:env.src ~result
    | _ -> ()

let full_candidates (g : Volume.pg) =
  List.filter
    (fun (seg, _) ->
      match Membership.find_member g.Volume.membership seg with
      | Some m -> m.Membership.kind = Membership.Full
      | None -> false)
    (Volume.roster g)

let get t ~key callback =
  if not t.running then callback (Error "replica is not running")
  else begin
    t.metrics.gets <- t.metrics.gets + 1;
    let block = Block_id.of_int (Bits.fnv1a_string key mod t.config.n_blocks) in
    let as_of = t.vdl_seen in
    let view = Read_view.make ~as_of () in
    let commit_scn txn = Txn_table.commit_scn t.txns txn in
    let from_storage () =
      t.metrics.storage_reads <- t.metrics.storage_reads + 1;
      let g = Volume.pg_of_block t.volume block in
      track_view t as_of;
      Reader.read t.reader ~pg:g.Volume.id ~candidates:(full_candidates g)
        ~block ~as_of ~epochs:(Volume.epochs_for t.volume g)
        ~callback:(fun result ->
          untrack_view t as_of;
          match result with
          | Error e -> callback (Error e)
          | Ok img ->
            Buffer_cache.install t.cache img ~vdl:t.vdl_seen;
            let chain =
              match
                List.find_opt (fun (k, _) -> String.equal k key) img.image_entries
              with
              | Some (_, versions) -> versions
              | None -> []
            in
            callback (Ok (Read_view.value view ~commit_scn chain)))
    in
    match Buffer_cache.read t.cache block ~key with
    | Buffer_cache.Hit chain ->
      t.metrics.cache_hit_reads <- t.metrics.cache_hit_reads + 1;
      callback (Ok (Read_view.value view ~commit_scn chain))
    | Buffer_cache.Partial chain -> (
      match Read_view.pick view ~commit_scn chain with
      | Some v ->
        t.metrics.cache_hit_reads <- t.metrics.cache_hit_reads + 1;
        callback (Ok v.Storage.Block_store.value)
      | None -> from_storage ())
    | Buffer_cache.Miss -> from_storage ()
  end

let start t =
  t.running <- true;
  t.generation <- t.generation + 1;
  let gen = t.generation in
  Simnet.Net.register t.net t.addr (handle_message t);
  Simnet.Net.set_up t.net t.addr;
  Sim.every t.sim ~interval:t.config.feedback_interval (fun () ->
      if t.running && t.generation = gen then begin
        Simnet.Net.send t.net ~src:t.addr ~dst:t.writer ~bytes:48
          (Protocol.Replica_feedback { read_floor = read_floor t });
        true
      end
      else false)

let stop t =
  t.running <- false;
  t.generation <- t.generation + 1

let promote t ~config on_done =
  stop t;
  let db =
    Database.create ~sim:t.sim ~rng:(Rng.create (Simnet.Addr.to_int t.addr + 7919))
      ~net:t.net ~addr:t.addr ~volume:t.volume ~config ()
  in
  Database.recover db (fun result ->
      match result with
      | Ok outcome -> on_done (Ok (db, outcome))
      | Error e -> on_done (Error e))
