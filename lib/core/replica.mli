(** Aurora read replicas (§3.2–3.4).

    Replicas attach to the same storage volume as the writer; the writer
    ships a physical redo stream (in atomic MTR chunks), VDL control
    records, and commit notifications.  The replica applies redo only to
    blocks already in its cache — uncached blocks can always be fetched
    from shared storage — and anchors every read view at the writer VDL it
    has seen, so it never observes a structurally or transactionally
    inconsistent state.  It reports its lowest active read point back to
    the writer, which folds it into PGMRPL so storage never garbage
    collects a version the replica might still need.

    Because durable state is shared, a replica can be promoted to writer
    with no data loss for acknowledged commits: promotion is exactly the
    §2.4 crash-recovery procedure run from the replica's address. *)

open Wal

type config = {
  n_blocks : int;
      (** Key->block hashing; must match the writer's {!Database.config}. *)
  cache_capacity : int;
  read_strategy : Reader.strategy;
  feedback_interval : Simcore.Time_ns.t;
      (** Cadence of read-floor reports to the writer. *)
}

val default_config : config

type metrics = {
  mutable chunks_applied : int;
  mutable records_applied : int;
  mutable records_skipped : int;  (** Redo for uncached blocks (discarded). *)
  mutable commits_seen : int;
  mutable gets : int;
  mutable cache_hit_reads : int;
  mutable storage_reads : int;
  mutable stale_streams_dropped : int;
  stream_lag : Simcore.Histogram.t;
      (** Network + apply delay of stream batches. *)
}

type t

val create :
  sim:Simcore.Sim.t ->
  rng:Simcore.Rng.t ->
  net:Storage.Protocol.t Simnet.Net.t ->
  addr:Simnet.Addr.t ->
  volume:Volume.t ->
  writer:Simnet.Addr.t ->
  config:config ->
  ?obs:Obs.Ctx.t ->
  unit ->
  t
(** [volume] is shared read-only with the writer: the replica consults
    routing, rosters, and epochs but never allocates from it.  [obs]
    registers the [replica_*] instruments labelled with this node's
    address. *)

val start : t -> unit
val addr : t -> Simnet.Addr.t
val vdl_seen : t -> Lsn.t
(** The replica's current read anchor. *)

val metrics : t -> metrics
val cache : t -> Buffer_cache.t
val is_running : t -> bool

val get : t -> key:string -> ((string option, string) result -> unit) -> unit
(** Snapshot read anchored at {!vdl_seen}. *)

val committed : t -> Txn_id.t -> Lsn.t option
(** Commit SCN as known from shipped notifications. *)

val read_floor : t -> Lsn.t
(** Lowest LSN any active view on this replica might read. *)

val stop : t -> unit

val promote :
  t ->
  config:Database.config ->
  ((Database.t * Recovery.outcome, string) result -> unit) ->
  unit
(** Promote to writer: stop replica service and run crash recovery against
    the shared volume from this address.  On success the returned database
    is open for writes and no acknowledged commit has been lost (§3.2). *)
