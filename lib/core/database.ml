open Simcore
open Wal
open Quorum
module Protocol = Storage.Protocol
module Pg_id = Storage.Pg_id

type config = {
  n_blocks : int;
  cache_capacity : int;
  boxcar : Boxcar.policy;
  read_strategy : Reader.strategy;
  replication_interval : Time_ns.t;
  pgmrpl_interval : Time_ns.t;
}

let default_config =
  {
    n_blocks = 256;
    cache_capacity = 128;
    boxcar = Boxcar.First_record (Time_ns.us 20);
    read_strategy =
      Reader.Direct_tracked
        { hedge_after = Some (Time_ns.ms 2); explore_probability = 0.02 };
    replication_interval = Time_ns.ms 5;
    pgmrpl_interval = Time_ns.ms 200;
  }

type metrics = {
  commit_latency : Histogram.t;
  record_durable_latency : Histogram.t;
  mutable txns_started : int;
  mutable txns_committed : int;
  mutable txns_aborted : int;
  mutable commit_acks : int;
  mutable puts : int;
  mutable deletes : int;
  mutable gets : int;
  mutable cache_hit_reads : int;
  mutable storage_reads : int;
  mutable records_written : int;
  mutable write_rejects : int;
  mutable fenced : int;
}

let fresh_metrics () =
  {
    commit_latency = Histogram.create ();
    record_durable_latency = Histogram.create ();
    txns_started = 0;
    txns_committed = 0;
    txns_aborted = 0;
    commit_acks = 0;
    puts = 0;
    deletes = 0;
    gets = 0;
    cache_hit_reads = 0;
    storage_reads = 0;
    records_written = 0;
    write_rejects = 0;
    fenced = 0;
  }

type t = {
  sim : Sim.t;
  rng : Rng.t;
  net : Protocol.t Simnet.Net.t;
  addr : Simnet.Addr.t;
  volume : Volume.t;
  config : config;
  metrics : metrics;
  obs : Obs.Ctx.t;
  (* commit-path tracing bookkeeping: per-group LSNs awaiting their first
     storage ack, and LSNs awaiting VDL coverage, both in submit order *)
  obs_unacked : Lsn.t Queue.t Pg_id.Tbl.t;
  obs_vdl_pending : Lsn.t Queue.t;
  mutable consistency : Consistency.t;
  mutable cache : Buffer_cache.t;
  mutable txns : Txn_table.t;
  mutable commit_queue : Commit_queue.t;
  mutable reader : Reader.t;
  boxcars : (int * int, Boxcar.t) Hashtbl.t; (* (pg, seg) -> boxcar *)
  txn_last_block : Block_id.t Txn_id.Tbl.t;
  mutable mtr_counter : int;
  (* replication *)
  mutable replica_addrs : Simnet.Addr.t list;
  stream_queue : Log_record.t Queue.t;
  mutable last_commit_shipped : Lsn.t;
  replica_floors : Lsn.t Simnet.Addr.Tbl.t;
  (* active read views, for PGMRPL: as_of -> refcount *)
  active_views : (int, int) Hashtbl.t;
  (* durable-latency bookkeeping: (lsn, written_at) in order *)
  inflight_records : (Lsn.t * Time_ns.t) Queue.t;
  (* The epoch this instance presents on requests.  Deliberately a cached
     copy of the volume metadata: a fenced-out instance keeps its stale
     value and gets rejected, even though the metadata object is shared
     in-process (§2.4). *)
  mutable my_volume_epoch : Epoch.t;
  mutable open_ : bool;
  mutable generation : int;
  mutable recovering : Recovery.t option;
}

let sim t = t.sim
let addr t = t.addr
let obs t = t.obs

let mark_stage t ~lsn ?member ?pg stage =
  Obs.Commit_path.mark (Obs.Ctx.commit_path t.obs) ~at:(Sim.now t.sim)
    ~lsn:(Lsn.to_int lsn) ?member ?pg stage

(* Flight-recorder hook point; callers gate on [Recorder.Rings.enabled]
   so a disabled recorder costs one flag read and no allocation. *)
let rec_note t ev =
  Recorder.Rings.note ~node:(Simnet.Addr.to_int t.addr) ~at:(Sim.now t.sim) ev
let volume t = t.volume
let config t = t.config
let consistency t = t.consistency
let reader t = t.reader
let metrics t = t.metrics
let cache t = t.cache
let txn_table t = t.txns
let is_open t = t.open_
let vcl t = Consistency.vcl t.consistency
let vdl t = Consistency.vdl t.consistency
let commit_queue_depth t = Commit_queue.pending t.commit_queue

let mean_batch_size t =
  let batches = ref 0 and records = ref 0 in
  Hashtbl.iter
    (fun _ b ->
      batches := !batches + Boxcar.batches_flushed b;
      records := !records + Boxcar.records_flushed b)
    t.boxcars;
  if !batches = 0 then 0. else float_of_int !records /. float_of_int !batches

let block_of_key t key =
  Block_id.of_int (Bits.fnv1a_string key mod t.config.n_blocks)

let send t ~dst msg =
  Simnet.Net.send t.net ~src:t.addr ~dst ~bytes:(Protocol.bytes msg) msg

(* Requests carry this instance's cached volume epoch, not the live shared
   metadata value — see [my_volume_epoch]. *)
let epochs_for t (g : Volume.pg) =
  {
    Protocol.volume = t.my_volume_epoch;
    membership = Membership.epoch g.Volume.membership;
  }

(* ---- consistency hooks ---- *)

let install_consistency_hooks t =
  let c = t.consistency in
  Consistency.on_record_durable c (fun _pg lsn ->
      mark_stage t ~lsn Obs.Trace.Pgcl_advanced);
  Consistency.on_vcl_advance c (fun new_vcl ->
      (* Recorded before the commit queue drains so a commit ack's recorder
         event always follows the VCL advance that released it. *)
      if Recorder.Rings.enabled () then
        rec_note t (Recorder.Event.Vcl_advance { vcl = Lsn.to_int new_vcl });
      (* Newly covered records are marked [Vcl_advanced] before the commit
         queue drains, so a commit ack always sees its record's VCL stage
         time — [vcl_advanced→commit_acked] is a marquee span. *)
      let continue = ref true in
      while !continue do
        match Queue.peek_opt t.inflight_records with
        | Some (lsn, at) when Lsn.(lsn <= new_vcl) ->
          ignore (Queue.pop t.inflight_records : Lsn.t * Time_ns.t);
          Histogram.record_span t.metrics.record_durable_latency at
            (Sim.now t.sim);
          mark_stage t ~lsn Obs.Trace.Vcl_advanced
        | Some _ | None -> continue := false
      done;
      ignore (Commit_queue.drain t.commit_queue ~vcl:new_vcl : int));
  Consistency.on_vdl_advance c (fun new_vdl ->
      if Recorder.Rings.enabled () then
        rec_note t (Recorder.Event.Vdl_advance { vdl = Lsn.to_int new_vdl });
      let continue = ref true in
      while !continue do
        match Queue.peek_opt t.obs_vdl_pending with
        | Some lsn when Lsn.(lsn <= new_vdl) ->
          ignore (Queue.pop t.obs_vdl_pending : Lsn.t);
          mark_stage t ~lsn Obs.Trace.Vdl_advanced
        | Some _ | None -> continue := false
      done;
      (* Newly durable redo may unpin dirty blocks: apply cache pressure. *)
      Buffer_cache.evict_pressure t.cache ~vdl:new_vdl)

let fresh_consistency t =
  let c = Consistency.create () in
  List.iter
    (fun (g : Volume.pg) ->
      Consistency.register_pg c g.Volume.id
        ~write_quorum:(Volume.rule g).Quorum_set.Rule.write)
    (Volume.pgs t.volume);
  t.consistency <- c;
  install_consistency_hooks t

(* ---- write path ---- *)

let boxcar_for t (g : Volume.pg) seg =
  let key = (Pg_id.to_int g.Volume.id, Member_id.to_int seg) in
  match Hashtbl.find_opt t.boxcars key with
  | Some b -> b
  | None ->
    let b =
      Boxcar.create ~sim:t.sim ~policy:t.config.boxcar ~flush:(fun records ->
          if t.open_ then begin
            List.iter
              (fun (r : Log_record.t) ->
                mark_stage t ~lsn:r.lsn Obs.Trace.Boxcar_flushed)
              records;
            match Member_id.Map.find_opt seg g.Volume.addr_of with
            | None -> ()
            | Some dst ->
              send t ~dst
                (Protocol.Write_batch
                   {
                     pg = g.Volume.id;
                     seg;
                     records;
                     pgcl = Consistency.pgcl t.consistency g.Volume.id;
                     epochs = epochs_for t g;
                   });
              List.iter
                (fun (r : Log_record.t) ->
                  mark_stage t ~lsn:r.lsn Obs.Trace.Net_sent)
                records
          end)
    in
    Hashtbl.add t.boxcars key b;
    b

let obs_unacked_queue t pg =
  match Pg_id.Tbl.find_opt t.obs_unacked pg with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Pg_id.Tbl.add t.obs_unacked pg q;
    q

let submit_record t (record : Log_record.t) (g : Volume.pg) =
  Consistency.note_submitted t.consistency ~pg:g.Volume.id ~lsn:record.lsn
    ~mtr_end:record.mtr_end;
  mark_stage t ~lsn:record.lsn ~pg:(Pg_id.to_int g.Volume.id) Obs.Trace.Lsn_allocated;
  Queue.push record.lsn (obs_unacked_queue t g.Volume.id);
  Queue.push record.lsn t.obs_vdl_pending;
  Buffer_cache.apply t.cache record ~vdl:(vdl t);
  Queue.push record t.stream_queue;
  Queue.push (record.lsn, Sim.now t.sim) t.inflight_records;
  t.metrics.records_written <- t.metrics.records_written + 1;
  (* Fan out to every member of the group; the quorum set decides when the
     record counts as durable. *)
  List.iter
    (fun (seg, _) -> Boxcar.add (boxcar_for t g seg) record)
    (Volume.roster g)

let write_op t ~txn ~mtr_id ~mtr_end ~block ~op =
  let record, g = Volume.make_record t.volume ~block ~txn ~mtr_id ~mtr_end ~op in
  submit_record t record g;
  record

let next_mtr t =
  t.mtr_counter <- t.mtr_counter + 1;
  t.mtr_counter

let require_open t = if not t.open_ then failwith "database instance is not open"

let begin_txn t =
  require_open t;
  t.metrics.txns_started <- t.metrics.txns_started + 1;
  Txn_table.begin_txn t.txns

let put t ~txn ~key ~value =
  require_open t;
  t.metrics.puts <- t.metrics.puts + 1;
  let block = block_of_key t key in
  let record =
    write_op t ~txn ~mtr_id:(next_mtr t) ~mtr_end:true ~block
      ~op:(Log_record.Put { key; value })
  in
  Txn_id.Tbl.replace t.txn_last_block txn record.block

let delete t ~txn ~key =
  require_open t;
  t.metrics.deletes <- t.metrics.deletes + 1;
  let block = block_of_key t key in
  let record =
    write_op t ~txn ~mtr_id:(next_mtr t) ~mtr_end:true ~block
      ~op:(Log_record.Delete { key })
  in
  Txn_id.Tbl.replace t.txn_last_block txn record.block

let put_multi t ~txn kvs =
  require_open t;
  match kvs with
  | [] -> ()
  | kvs ->
    let mtr_id = next_mtr t in
    let n = List.length kvs in
    List.iteri
      (fun i (key, value) ->
        t.metrics.puts <- t.metrics.puts + 1;
        let block = block_of_key t key in
        let record =
          write_op t ~txn ~mtr_id ~mtr_end:(i = n - 1) ~block
            ~op:(Log_record.Put { key; value })
        in
        Txn_id.Tbl.replace t.txn_last_block txn record.block)
      kvs

(* ---- read path ---- *)

let track_view t as_of =
  let k = Lsn.to_int as_of in
  let n = match Hashtbl.find_opt t.active_views k with Some n -> n | None -> 0 in
  Hashtbl.replace t.active_views k (n + 1)

let untrack_view t as_of =
  let k = Lsn.to_int as_of in
  match Hashtbl.find_opt t.active_views k with
  | Some 1 | None -> Hashtbl.remove t.active_views k
  | Some n -> Hashtbl.replace t.active_views k (n - 1)

let min_active_view t =
  Hashtbl.fold
    (fun k _ acc -> Lsn.min acc (Lsn.of_int k))
    t.active_views (vdl t)

let commit_scn_of t txn = Txn_table.commit_scn t.txns txn

let full_candidates t (g : Volume.pg) ~as_of =
  (* A segment holds everything needed for a read at [as_of] once its SCL
     reaches the last group record at or below [as_of], which is bounded by
     min(as_of, PGCL) — see Segment.read_block. *)
  let needed = Lsn.min as_of (Consistency.pgcl t.consistency g.Volume.id) in
  let covering =
    Consistency.segments_at_or_above t.consistency ~pg:g.Volume.id ~lsn:needed
  in
  List.filter
    (fun (seg, _) ->
      (* A read that needs nothing durable (fresh volume) is served by any
         full segment; otherwise the segment's SCL must cover it. *)
      (Lsn.is_none needed || Member_id.Set.mem seg covering)
      &&
      match Membership.find_member g.Volume.membership seg with
      | Some m -> m.Membership.kind = Membership.Full
      | None -> false)
    (Volume.roster g)

let get t ?txn ~key callback =
  require_open t;
  t.metrics.gets <- t.metrics.gets + 1;
  let block = block_of_key t key in
  let as_of = vdl t in
  let view = Read_view.make ~as_of ?owner:txn () in
  let commit_scn = commit_scn_of t in
  let from_storage () =
    t.metrics.storage_reads <- t.metrics.storage_reads + 1;
    let g = Volume.pg_of_block t.volume block in
    Obs.Trace.read (Obs.Ctx.trace t.obs) ~at:(Sim.now t.sim)
      ~pg:(Pg_id.to_int g.Volume.id) Obs.Trace.Read_tracked;
    let candidates = full_candidates t g ~as_of in
    track_view t as_of;
    Reader.read t.reader ~pg:g.Volume.id ~candidates ~block ~as_of
      ~epochs:(epochs_for t g) ~callback:(fun result ->
        untrack_view t as_of;
        match result with
        | Error e -> callback (Error e)
        | Ok img ->
          Buffer_cache.install t.cache img ~vdl:(vdl t);
          (* Serve from the merged cache entry so locally written versions
             newer than the image are not shadowed. *)
          let chain =
            match Buffer_cache.read t.cache block ~key with
            | Buffer_cache.Hit chain | Buffer_cache.Partial chain -> chain
            | Buffer_cache.Miss -> (
              match
                List.find_opt (fun (k, _) -> String.equal k key) img.image_entries
              with
              | Some (_, versions) -> versions
              | None -> [])
          in
          callback (Ok (Read_view.value view ~commit_scn chain)))
  in
  match Buffer_cache.read t.cache block ~key with
  | Buffer_cache.Hit chain ->
    t.metrics.cache_hit_reads <- t.metrics.cache_hit_reads + 1;
    Obs.Trace.read (Obs.Ctx.trace t.obs) ~at:(Sim.now t.sim) ~pg:(-1)
      Obs.Trace.Read_cache_hit;
    callback (Ok (Read_view.value view ~commit_scn chain))
  | Buffer_cache.Partial chain -> (
    (* Blind-write block: only trust it if a visible version exists. *)
    match Read_view.pick view ~commit_scn chain with
    | Some v ->
      Buffer_cache.note_partial_hit t.cache;
      t.metrics.cache_hit_reads <- t.metrics.cache_hit_reads + 1;
      callback (Ok v.Storage.Block_store.value)
    | None -> from_storage ())
  | Buffer_cache.Miss -> from_storage ()

(* ---- commit / abort (§2.3) ---- *)

let commit t ~txn callback =
  require_open t;
  match Txn_id.Tbl.find_opt t.txn_last_block txn with
  | None ->
    (* Read-only: nothing to make durable. *)
    Txn_table.mark_committed t.txns txn ~scn:(vdl t);
    t.metrics.txns_committed <- t.metrics.txns_committed + 1;
    t.metrics.commit_acks <- t.metrics.commit_acks + 1;
    callback (Ok ())
  | Some block ->
    let record =
      write_op t ~txn ~mtr_id:(next_mtr t) ~mtr_end:true ~block
        ~op:Log_record.Commit
    in
    let scn = record.lsn in
    Txn_table.mark_committed t.txns txn ~scn;
    t.metrics.txns_committed <- t.metrics.txns_committed + 1;
    if Recorder.Rings.enabled () then
      rec_note t
        (Recorder.Event.Commit_submit
           { txn = Txn_id.to_int txn; scn = Lsn.to_int scn });
    let started = Sim.now t.sim in
    Commit_queue.enqueue t.commit_queue ~txn ~scn ~on_ack:(fun () ->
        t.metrics.commit_acks <- t.metrics.commit_acks + 1;
        Histogram.record_span t.metrics.commit_latency started (Sim.now t.sim);
        mark_stage t ~lsn:scn Obs.Trace.Commit_acked;
        if Recorder.Rings.enabled () then
          rec_note t
            (Recorder.Event.Commit_ack
               { txn = Txn_id.to_int txn; scn = Lsn.to_int scn });
        callback (Ok ()))

let abort t ~txn =
  require_open t;
  t.metrics.txns_aborted <- t.metrics.txns_aborted + 1;
  (match Txn_id.Tbl.find_opt t.txn_last_block txn with
  | Some block ->
    ignore
      (write_op t ~txn ~mtr_id:(next_mtr t) ~mtr_end:true ~block
         ~op:Log_record.Abort
        : Log_record.t)
  | None -> ());
  Txn_table.mark_aborted t.txns txn

(* ---- replication stream (§3.2-3.4) ---- *)

let attach_replica t a =
  if not (List.exists (Simnet.Addr.equal a) t.replica_addrs) then
    t.replica_addrs <- a :: t.replica_addrs

let detach_replica t a =
  t.replica_addrs <- List.filter (fun x -> not (Simnet.Addr.equal x a)) t.replica_addrs;
  Simnet.Addr.Tbl.remove t.replica_floors a

let replicas t = t.replica_addrs

(* Pop stream-queue records covered by VDL and group consecutive records of
   the same MTR into atomically applied chunks (§3.3). *)
let drain_stream t =
  let limit = vdl t in
  let rec take acc =
    match Queue.peek_opt t.stream_queue with
    | Some r when Lsn.(r.Log_record.lsn <= limit) ->
      ignore (Queue.pop t.stream_queue : Log_record.t);
      take (r :: acc)
    | Some _ | None -> List.rev acc
  in
  let records = take [] in
  let rec chunk = function
    | [] -> []
    | (r : Log_record.t) :: rest ->
      let same, others =
        let rec split acc = function
          | (x : Log_record.t) :: xs when x.mtr_id = r.mtr_id ->
            split (x :: acc) xs
          | xs -> (List.rev acc, xs)
        in
        split [ r ] rest
      in
      { Protocol.chunk_records = same } :: chunk others
  in
  chunk records

let replication_tick t =
  if t.replica_addrs <> [] then begin
    let chunks = drain_stream t in
    let limit = vdl t in
    let commits =
      List.filter
        (fun (_, scn) -> Lsn.(scn <= limit))
        (Txn_table.commits_since t.txns t.last_commit_shipped)
    in
    List.iter (fun (_, scn) -> if Lsn.(scn > t.last_commit_shipped) then t.last_commit_shipped <- scn) commits;
    if chunks <> [] || commits <> [] then
      List.iter
        (fun dst ->
          send t ~dst
            (Protocol.Redo_stream
               {
                 chunks;
                 vdl = limit;
                 commits;
                 volume_epoch = t.my_volume_epoch;
               }))
        t.replica_addrs
  end

let pgmrpl_tick t =
  let floor =
    Simnet.Addr.Tbl.fold
      (fun _ f acc -> Lsn.min acc f)
      t.replica_floors (min_active_view t)
  in
  if not (Lsn.is_none floor) then
    List.iter
      (fun (g : Volume.pg) ->
        List.iter
          (fun (seg, dst) ->
            send t ~dst
              (Protocol.Pgmrpl_update
                 {
                   pg = g.Volume.id;
                   seg;
                   floor;
                   pgcl = Consistency.pgcl t.consistency g.Volume.id;
                 }))
          (Volume.roster g))
      (Volume.pgs t.volume)

(* ---- membership (§4.1) ---- *)

let broadcast_membership t pg_id =
  let g = Volume.find_pg t.volume pg_id in
  let peers = Volume.roster g in
  List.iter
    (fun (_, dst) ->
      send t ~dst
        (Protocol.Membership_update
           { pg = pg_id; epoch = Membership.epoch g.Volume.membership; peers }))
    peers

let after_membership_change t pg_id =
  let g = Volume.find_pg t.volume pg_id in
  Consistency.set_write_quorum t.consistency pg_id
    (Volume.rule g).Quorum_set.Rule.write;
  broadcast_membership t pg_id

let trace_membership t pg_id phase =
  let g = Volume.find_pg t.volume pg_id in
  Obs.Trace.membership (Obs.Ctx.trace t.obs) ~at:(Sim.now t.sim)
    ~pg:(Pg_id.to_int pg_id)
    ~epoch:(Epoch.to_int (Membership.epoch g.Volume.membership))
    phase

let begin_segment_replacement t pg_id ~suspect ~replacement ~replacement_addr =
  match
    Volume.begin_membership_change t.volume pg_id ~suspect ~replacement
      ~replacement_addr
  with
  | Error _ as e -> e
  | Ok () ->
    trace_membership t pg_id Obs.Trace.Change_begun;
    after_membership_change t pg_id;
    Ok ()

let commit_segment_replacement t pg_id ~suspect =
  match Volume.commit_membership_change t.volume pg_id ~suspect with
  | Error _ as e -> e
  | Ok () ->
    trace_membership t pg_id Obs.Trace.Change_committed;
    after_membership_change t pg_id;
    Ok ()

let revert_segment_replacement t pg_id ~suspect =
  match Volume.revert_membership_change t.volume pg_id ~suspect with
  | Error _ as e -> e
  | Ok () ->
    trace_membership t pg_id Obs.Trace.Change_reverted;
    after_membership_change t pg_id;
    Ok ()

(* ---- network handler ---- *)

let handle_message t (env : Protocol.t Simnet.Net.envelope) =
  (match t.recovering with
  | Some r when not (Recovery.is_done r) ->
    Recovery.on_message r env.msg ~from:env.src
  | Some _ | None -> ());
  if t.open_ then
    match env.msg with
    | Protocol.Write_ack { pg; seg; scl } ->
      (* First covering ack per record: pop in submit order up to the
         acked SCL.  Later (or reordered lower) acks find the queue
         already drained past them — [Node_acked] is first-ack time. *)
      (match Pg_id.Tbl.find_opt t.obs_unacked pg with
      | None -> ()
      | Some q ->
        let member = Member_id.to_int seg in
        let continue = ref true in
        while !continue do
          match Queue.peek_opt q with
          | Some lsn when Lsn.(lsn <= scl) ->
            ignore (Queue.pop q : Lsn.t);
            mark_stage t ~lsn ~member ~pg:(Pg_id.to_int pg) Obs.Trace.Node_acked
          | Some _ | None -> continue := false
        done);
      Consistency.note_ack t.consistency ~pg ~seg ~scl
    | Protocol.Write_reject { reason; _ } -> (
      t.metrics.write_rejects <- t.metrics.write_rejects + 1;
      match reason with
      | Protocol.Stale_volume_epoch current ->
        (* A newer writer fenced us out: stop serving immediately. *)
        t.metrics.fenced <- t.metrics.fenced + 1;
        t.open_ <- false;
        if Recorder.Rings.enabled () then
          rec_note t (Recorder.Event.Fenced { epoch = Epoch.to_int current })
      | Protocol.Stale_membership_epoch _ | Protocol.Not_a_member -> ())
    | Protocol.Read_reply { req; seg; result } ->
      Reader.on_reply t.reader ~req ~seg ~from:env.src ~result
    | Protocol.Replica_feedback { read_floor } ->
      Simnet.Addr.Tbl.replace t.replica_floors env.src read_floor
    | Protocol.Write_batch _ | Protocol.Read_block _ | Protocol.Gossip_pull _
    | Protocol.Gossip_reply _ | Protocol.Scl_probe _ | Protocol.Scl_reply _
    | Protocol.Truncate _ | Protocol.Truncate_ack _ | Protocol.Epoch_update _
    | Protocol.Epoch_ack _ | Protocol.Membership_update _
    | Protocol.Hydrate_pull _ | Protocol.Hydrate_reply _
    | Protocol.Pgmrpl_update _ | Protocol.Redo_stream _ ->
      ()

(* ---- lifecycle ---- *)

let start_background t =
  let gen = t.generation in
  Sim.every t.sim ~interval:t.config.replication_interval (fun () ->
      if t.open_ && t.generation = gen then begin
        replication_tick t;
        true
      end
      else false);
  Sim.every t.sim ~interval:t.config.pgmrpl_interval (fun () ->
      if t.open_ && t.generation = gen then begin
        pgmrpl_tick t;
        true
      end
      else false)

let register_instruments t =
  let reg = Obs.Ctx.registry t.obs in
  let m = t.metrics in
  let c ?labels name f = Obs.Registry.counter_fn reg ?labels name f in
  c "db_txns_started" (fun () -> m.txns_started);
  c "db_txns_committed" (fun () -> m.txns_committed);
  c "db_txns_aborted" (fun () -> m.txns_aborted);
  c "db_commit_acks" (fun () -> m.commit_acks);
  c "db_puts" (fun () -> m.puts);
  c "db_deletes" (fun () -> m.deletes);
  c "db_gets" (fun () -> m.gets);
  c "db_cache_hit_reads" (fun () -> m.cache_hit_reads);
  c "db_storage_reads" (fun () -> m.storage_reads);
  c "db_records_written" (fun () -> m.records_written);
  c "db_write_rejects" (fun () -> m.write_rejects);
  c "db_fenced" (fun () -> m.fenced);
  c "db_vcl" (fun () -> Lsn.to_int (Consistency.vcl t.consistency));
  c "db_vdl" (fun () -> Lsn.to_int (Consistency.vdl t.consistency));
  Obs.Registry.gauge_fn reg "db_mean_batch_size" (fun () -> mean_batch_size t);
  Obs.Registry.histogram_ref reg "db_commit_latency_ns" m.commit_latency;
  Obs.Registry.histogram_ref reg "db_record_durable_latency_ns"
    m.record_durable_latency;
  List.iter
    (fun (g : Volume.pg) ->
      let pg = g.Volume.id in
      c "pg_pgcl"
        ~labels:[ ("pg", string_of_int (Pg_id.to_int pg)) ]
        (fun () -> Lsn.to_int (Consistency.pgcl t.consistency pg)))
    (Volume.pgs t.volume)

let create ~sim ~rng ~net ~addr ~volume ~config ?obs () =
  let obs = match obs with Some o -> o | None -> Obs.Ctx.create () in
  let t =
    {
      sim;
      rng;
      net;
      addr;
      volume;
      config;
      metrics = fresh_metrics ();
      obs;
      obs_unacked = Pg_id.Tbl.create 8;
      obs_vdl_pending = Queue.create ();
      consistency = Consistency.create ();
      cache = Buffer_cache.create ~capacity:config.cache_capacity;
      txns = Txn_table.create ();
      commit_queue = Commit_queue.create ();
      reader =
        Reader.create ~sim ~rng:(Rng.split rng) ~net ~my_addr:addr
          ~strategy:config.read_strategy ~obs ();
      boxcars = Hashtbl.create 64;
      txn_last_block = Txn_id.Tbl.create 256;
      mtr_counter = 0;
      replica_addrs = [];
      stream_queue = Queue.create ();
      last_commit_shipped = Lsn.none;
      replica_floors = Simnet.Addr.Tbl.create 4;
      active_views = Hashtbl.create 16;
      inflight_records = Queue.create ();
      my_volume_epoch = Volume.volume_epoch volume;
      open_ = false;
      generation = 0;
      recovering = None;
    }
  in
  fresh_consistency t;
  register_instruments t;
  t

let start t =
  t.my_volume_epoch <- Volume.volume_epoch t.volume;
  t.open_ <- true;
  t.generation <- t.generation + 1;
  Simnet.Net.register t.net t.addr (handle_message t);
  Simnet.Net.set_up t.net t.addr;
  if Recorder.Rings.enabled () then rec_note t Recorder.Event.Started;
  List.iter (fun pg -> broadcast_membership t pg.Volume.id) (Volume.pgs t.volume);
  start_background t

let crash t =
  if Recorder.Rings.enabled () then rec_note t Recorder.Event.Crashed;
  t.open_ <- false;
  t.generation <- t.generation + 1;
  Simnet.Net.set_down t.net t.addr;
  (* All of this is ephemeral instance state — losing it is safe by
     design; recovery rebuilds it from storage (§2.4). *)
  Buffer_cache.drop_all t.cache;
  ignore (Commit_queue.drop_all t.commit_queue : (Txn_id.t * Lsn.t) list);
  Reader.drop_all t.reader;
  Hashtbl.reset t.boxcars;
  Queue.clear t.stream_queue;
  Queue.clear t.inflight_records;
  Pg_id.Tbl.reset t.obs_unacked;
  Queue.clear t.obs_vdl_pending;
  Obs.Commit_path.clear (Obs.Ctx.commit_path t.obs);
  Hashtbl.reset t.active_views;
  Txn_id.Tbl.reset t.txn_last_block

let rebuild_from_outcome t (o : Recovery.outcome) =
  t.my_volume_epoch <- Volume.volume_epoch t.volume;
  Volume.restore_tails t.volume ~alloc_above:o.truncate_upto
    ~volume_tail:o.vcl ~pg_tails:o.pg_tails ~block_tails:o.block_tails;
  fresh_consistency t;
  Consistency.restore t.consistency ~vcl:o.vcl ~vdl:o.vdl ~pg_points:o.pg_tails;
  List.iter
    (fun (pg, seg, scl) -> Consistency.note_ack t.consistency ~pg ~seg ~scl)
    o.scl_observations;
  t.cache <- Buffer_cache.create ~capacity:t.config.cache_capacity;
  t.txns <- Txn_table.create ();
  Txn_table.note_floor t.txns o.max_txn_seen;
  List.iter (fun (txn, scn) -> Txn_table.register t.txns txn; Txn_table.mark_committed t.txns txn ~scn) o.committed;
  List.iter (fun txn -> Txn_table.register t.txns txn; Txn_table.mark_aborted t.txns txn) o.aborted;
  (* In-flight at crash: undo happens logically — their versions are
     invisible to every read view from now on. *)
  List.iter (fun txn -> Txn_table.register t.txns txn; Txn_table.mark_aborted t.txns txn) o.interrupted;
  t.commit_queue <- Commit_queue.create ();
  t.reader <-
    Reader.create ~sim:t.sim ~rng:(Rng.split t.rng) ~net:t.net ~my_addr:t.addr
      ~strategy:t.config.read_strategy ~obs:t.obs ();
  t.last_commit_shipped <- o.vdl

let recover t on_ready =
  (* Recovery must never run against a serving instance: the §2.4 walk
     computes VCL from a point-in-time storage poll and then truncates the
     ragged edge above it, so commits acknowledged while the poll is in
     flight would be annulled — acknowledged-write loss.  An open instance
     is fenced (crashed) first, exactly as a new writer's epoch bump boxes
     out the old one. *)
  if t.open_ then crash t;
  t.generation <- t.generation + 1;
  Simnet.Net.register t.net t.addr (handle_message t);
  Simnet.Net.set_up t.net t.addr;
  if Recorder.Rings.enabled () then
    rec_note t
      (Recorder.Event.Recovery_start
         { epoch = Epoch.to_int (Volume.volume_epoch t.volume) });
  let r =
    Recovery.start ~sim:t.sim ~net:t.net ~my_addr:t.addr ~volume:t.volume
      ~obs:t.obs
      ~on_done:(fun result ->
        (match result with
        | Ok outcome ->
          rebuild_from_outcome t outcome;
          t.open_ <- true;
          t.generation <- t.generation + 1;
          if Recorder.Rings.enabled () then begin
            rec_note t
              (Recorder.Event.Recovery_finish
                 {
                   vcl = Lsn.to_int outcome.Recovery.vcl;
                   vdl = Lsn.to_int outcome.Recovery.vdl;
                 });
            rec_note t Recorder.Event.Started
          end;
          List.iter
            (fun pg -> broadcast_membership t pg.Volume.id)
            (Volume.pgs t.volume);
          start_background t
        | Error _ -> ());
        t.recovering <- None;
        on_ready result)
      ()
  in
  t.recovering <- Some r
