open Simcore
open Wal
open Quorum
module Protocol = Storage.Protocol

type strategy =
  | Direct_tracked of {
      hedge_after : Time_ns.t option;
      explore_probability : float;
    }
  | Quorum_read of { read_threshold : int }

type metrics = {
  mutable reads : int;
  mutable ios_issued : int;
  mutable hedges : int;
  mutable explores : int;
  mutable retries : int;
  mutable failures : int;
  latency : Histogram.t;
}

type pending = {
  req : int;
  pg : Storage.Pg_id.t;
  block : Block_id.t;
  as_of : Lsn.t;
  epochs : Protocol.epochs;
  callback : (Protocol.block_image, string) result -> unit;
  started_at : Time_ns.t;
  mutable issued_at : (Member_id.t * Time_ns.t) list; (* per-segment issue time *)
  mutable untried : (Member_id.t * Simnet.Addr.t) list; (* best first *)
  mutable in_flight : int;
  mutable needed : int; (* replies still required (1, or Vr for quorum) *)
  mutable done_ : bool;
}

type t = {
  sim : Sim.t;
  rng : Rng.t;
  net : Protocol.t Simnet.Net.t;
  my_addr : Simnet.Addr.t;
  strategy : strategy;
  ewma : Stats.Ewma.t Simnet.Addr.Tbl.t;
  pendings : (int, pending) Hashtbl.t;
  mutable next_req : int;
  metrics : metrics;
  obs : Obs.Ctx.t option;
  obs_labels : Obs.Registry.labels;
}

let register_instruments t =
  match t.obs with
  | None -> ()
  | Some obs ->
    let reg = Obs.Ctx.registry obs in
    let labels = t.obs_labels in
    let m = t.metrics in
    Obs.Registry.counter_fn reg ~labels "read_reads" (fun () -> m.reads);
    Obs.Registry.counter_fn reg ~labels "read_ios_issued" (fun () -> m.ios_issued);
    Obs.Registry.counter_fn reg ~labels "read_hedges" (fun () -> m.hedges);
    Obs.Registry.counter_fn reg ~labels "read_explores" (fun () -> m.explores);
    Obs.Registry.counter_fn reg ~labels "read_retries" (fun () -> m.retries);
    Obs.Registry.counter_fn reg ~labels "read_failures" (fun () -> m.failures);
    Obs.Registry.histogram_ref reg ~labels "read_latency_ns" m.latency

let create ~sim ~rng ~net ~my_addr ~strategy ?obs ?(obs_labels = []) () =
  let t =
    {
      sim;
      rng;
      net;
      my_addr;
      strategy;
      ewma = Simnet.Addr.Tbl.create 16;
      pendings = Hashtbl.create 64;
      next_req = 0;
      metrics =
        {
          reads = 0;
          ios_issued = 0;
          hedges = 0;
          explores = 0;
          retries = 0;
          failures = 0;
          latency = Histogram.create ();
        };
      obs;
      obs_labels;
    }
  in
  register_instruments t;
  t

let observed_latency t addr =
  match Simnet.Addr.Tbl.find_opt t.ewma addr with
  | Some e when Stats.Ewma.observations e > 0 -> Some (Stats.Ewma.value e)
  | Some _ | None -> None

let observe t addr sample_ns =
  let e =
    match Simnet.Addr.Tbl.find_opt t.ewma addr with
    | Some e -> e
    | None ->
      let e = Stats.Ewma.create ~alpha:0.2 ~init:sample_ns in
      Simnet.Addr.Tbl.add t.ewma addr e;
      e
  in
  Stats.Ewma.observe e sample_ns

(* Sort candidates by estimated latency; unknown nodes go first so they get
   measured (optimistic exploration). *)
let order_candidates t candidates =
  let scored =
    List.map
      (fun (m, a) ->
        let score =
          match observed_latency t a with Some v -> v | None -> -1.
        in
        (score, (m, a)))
      candidates
  in
  List.map snd (List.stable_sort (fun (x, _) (y, _) -> Float.compare x y) scored)

let issue t p (seg, addr) =
  p.in_flight <- p.in_flight + 1;
  p.issued_at <- (seg, Sim.now t.sim) :: p.issued_at;
  t.metrics.ios_issued <- t.metrics.ios_issued + 1;
  let msg =
    Protocol.Read_block
      { req = p.req; pg = p.pg; seg; block = p.block; as_of = p.as_of; epochs = p.epochs }
  in
  Simnet.Net.send t.net ~src:t.my_addr ~dst:addr ~bytes:(Protocol.bytes msg) msg

let issue_next t p =
  match p.untried with
  | [] -> false
  | next :: rest ->
    p.untried <- rest;
    issue t p next;
    true

let finish t p result =
  if not p.done_ then begin
    p.done_ <- true;
    Hashtbl.remove t.pendings p.req;
    (match result with
    | Ok _ ->
      Histogram.record_span t.metrics.latency p.started_at (Sim.now t.sim)
    | Error _ -> t.metrics.failures <- t.metrics.failures + 1);
    p.callback result
  end

let arm_hedge t p delay =
  ignore
    (Sim.schedule t.sim ~delay (fun () ->
         if (not p.done_) && Hashtbl.mem t.pendings p.req then
           if issue_next t p then begin
             t.metrics.hedges <- t.metrics.hedges + 1;
             match t.obs with
             | Some obs ->
               Obs.Trace.read (Obs.Ctx.trace obs) ~at:(Sim.now t.sim)
                 ~pg:(Storage.Pg_id.to_int p.pg) Obs.Trace.Read_hedged
             | None -> ()
           end))

let read t ~pg ~candidates ~block ~as_of ~epochs ~callback =
  t.metrics.reads <- t.metrics.reads + 1;
  let req = t.next_req in
  t.next_req <- req + 1;
  let ordered = order_candidates t candidates in
  let p =
    {
      req;
      pg;
      block;
      as_of;
      epochs;
      callback;
      started_at = Sim.now t.sim;
      issued_at = [];
      untried = ordered;
      in_flight = 0;
      needed = 1;
      done_ = false;
    }
  in
  if ordered = [] then callback (Error "no candidate segments hold this block")
  else begin
    Hashtbl.add t.pendings req p;
    match t.strategy with
    | Direct_tracked { hedge_after; explore_probability } ->
      ignore (issue_next t p : bool);
      (* Occasional parallel probe keeps the latency table fresh (§3.1). *)
      if
        explore_probability > 0.
        && Rng.bernoulli t.rng explore_probability
        && p.untried <> []
      then begin
        t.metrics.explores <- t.metrics.explores + 1;
        ignore (issue_next t p : bool)
      end;
      (match hedge_after with
      | Some delay -> arm_hedge t p delay
      | None -> ())
    | Quorum_read { read_threshold } ->
      p.needed <- read_threshold;
      let issued = ref 0 in
      while !issued < read_threshold && issue_next t p do
        incr issued
      done;
      if !issued < read_threshold then begin
        Hashtbl.remove t.pendings req;
        p.done_ <- true;
        callback (Error "not enough candidates for a read quorum")
      end
  end

let on_reply t ~req ~seg ~from ~result =
  match Hashtbl.find_opt t.pendings req with
  | None -> () (* hedged duplicate after completion, or dropped on crash *)
  | Some p -> (
    p.in_flight <- p.in_flight - 1;
    match result with
    | Ok img ->
      (* Attribute service time from the instant *this* segment was asked,
         not from the start of the whole (possibly hedged) read. *)
      let issued =
        match List.assoc_opt seg p.issued_at with
        | Some at -> at
        | None -> p.started_at
      in
      observe t from
        (float_of_int (Time_ns.diff (Sim.now t.sim) issued));
      p.needed <- p.needed - 1;
      if p.needed <= 0 then finish t p (Ok img)
    | Error err ->
      t.metrics.retries <- t.metrics.retries + 1;
      if (not (issue_next t p)) && p.in_flight <= 0 then
        finish t p
          (Error (Format.asprintf "all candidates failed: %a" Protocol.pp_read_error err)))

let metrics t = t.metrics
let outstanding t = Hashtbl.length t.pendings
let drop_all t = Hashtbl.reset t.pendings
