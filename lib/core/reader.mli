(** The read path: avoiding quorum reads (§3.1).

    "Aurora does not do quorum reads.  Through its bookkeeping of writes
    and consistency points, the database instance knows which segments have
    the last durable version of a data block and can request it directly
    from any of those segments."  The instance tracks per-node response
    times, usually reads from the lowest-latency candidate, occasionally
    probes another in parallel to keep latency estimates fresh, and hedges
    a second request when a reply is slow — capping tail latency without
    quorum amplification.

    The [Quorum_read] strategy is the baseline the paper argues against:
    read from [read_threshold] candidates and wait for all of them (the
    classical newest-version-wins quorum read); it costs Vr I/Os and its
    latency is the max of Vr draws. *)

open Wal
open Quorum

type strategy =
  | Direct_tracked of {
      hedge_after : Simcore.Time_ns.t option;
          (** Issue a second read if no reply within this bound. *)
      explore_probability : float;
          (** Chance of an extra parallel probe to a non-best candidate,
              keeping latency estimates fresh. *)
    }
  | Quorum_read of { read_threshold : int }

type metrics = {
  mutable reads : int;
  mutable ios_issued : int;
  mutable hedges : int;
  mutable explores : int;
  mutable retries : int;
  mutable failures : int;
  latency : Simcore.Histogram.t;
}

type t

val create :
  sim:Simcore.Sim.t ->
  rng:Simcore.Rng.t ->
  net:Storage.Protocol.t Simnet.Net.t ->
  my_addr:Simnet.Addr.t ->
  strategy:strategy ->
  ?obs:Obs.Ctx.t ->
  ?obs_labels:Obs.Registry.labels ->
  unit ->
  t
(** [obs] registers the [read_*] counters and latency histogram, and traces
    hedged-read events.  [obs_labels] distinguishes readers sharing one
    registry (e.g. [("node", ...)] on a replica's reader, so it does not
    supersede the writer's).  A reader rebuilt after crash recovery
    re-registers under the same identity, superseding the dead instance's
    callbacks. *)

val read :
  t ->
  pg:Storage.Pg_id.t ->
  candidates:(Member_id.t * Simnet.Addr.t) list ->
  block:Block_id.t ->
  as_of:Lsn.t ->
  epochs:Storage.Protocol.epochs ->
  callback:((Storage.Protocol.block_image, string) result -> unit) ->
  unit
(** Fetch a block image at [as_of] from one of [candidates] — the segments
    the consistency tracker knows hold it durably.  The callback fires
    exactly once. *)

val on_reply :
  t ->
  req:int ->
  seg:Member_id.t ->
  from:Simnet.Addr.t ->
  result:(Storage.Protocol.block_image, Storage.Protocol.read_error) result ->
  unit
(** Feed a [Read_reply] delivered to the owner's address. *)

val observed_latency : t -> Simnet.Addr.t -> float option
(** Current EWMA estimate (ns) for a node, if any observations exist. *)

val metrics : t -> metrics
val outstanding : t -> int
val drop_all : t -> unit
(** Crash: forget in-flight reads (their callbacks never fire). *)
