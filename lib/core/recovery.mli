(** Crash recovery (§2.4, Figure 4).

    The time saved avoiding consensus on every commit is paid back here, on
    the rare crash: the recovering instance must rebuild PGCLs and VCL from
    segment-local SCL state.  The procedure:

    + bump the volume epoch locally and carry it on every request — storage
      nodes adopt the higher epoch on receipt, boxing out the old instance
      ("changing the locks on the door" instead of waiting out a lease);
    + probe every segment of every protection group for its SCL until a
      read quorum responds per group; the group's recovered durable point
      is the max SCL among responders (read/write overlap guarantees this
      covers everything a 4/6 write quorum ever acknowledged);
    + fetch retained chain records from the best segment of each group and
      recompute VCL: the highest LSN to which the volume chain links
      gaplessly through records each covered by its group's recovered
      point;
    + snip the ragged edge: install a truncation range [(VCL, upper]] at a
      write quorum of every group — in-flight writes completing later are
      annulled, and new LSNs are allocated above the range.

    No redo replay happens: segments materialize blocks on their own.
    Transactions seen in the recovered log without a commit or abort record
    at or below VCL were in flight at the crash; they are marked aborted so
    MVCC undoes them logically, "in parallel with user activity".

    The module is a self-contained async state machine: feed it storage
    replies via {!on_message}; it retries lost requests on a timer and
    reports an {!outcome} (or a timeout error) exactly once. *)

open Wal
open Quorum

type outcome = {
  vcl : Lsn.t;
  vdl : Lsn.t;
  truncate_above : Lsn.t;
  truncate_upto : Lsn.t;
  pg_tails : (Storage.Pg_id.t * Lsn.t) list;
      (** Last surviving record per group (segment-chain re-anchor). *)
  block_tails : (Block_id.t * Lsn.t) list;
  committed : (Txn_id.t * Lsn.t) list;  (** Commit records at or below VCL. *)
  aborted : Txn_id.t list;  (** Explicit abort records at or below VCL. *)
  interrupted : Txn_id.t list;
      (** In-flight at crash: to be undone via MVCC invisibility. *)
  max_txn_seen : Txn_id.t;
  scl_observations : (Storage.Pg_id.t * Member_id.t * Lsn.t) list;
      (** Post-truncation SCLs of the probed segments — the rebuilt
          instance seeds its consistency tracker with these so the read
          path knows where durable blocks live before any new write. *)
  records_examined : int;
  probes_sent : int;
  duration : Simcore.Time_ns.t;
}

type t

val start :
  sim:Simcore.Sim.t ->
  net:Storage.Protocol.t Simnet.Net.t ->
  my_addr:Simnet.Addr.t ->
  volume:Volume.t ->
  ?retry_interval:Simcore.Time_ns.t ->
  ?deadline:Simcore.Time_ns.t ->
  ?obs:Obs.Ctx.t ->
  on_done:((outcome, string) result -> unit) ->
  unit ->
  t
(** Bumps the volume epoch on [volume] and begins probing.  [deadline]
    (default 30 s simulated) bounds the whole procedure.  [obs] traces
    [Recovery_started]/[Recovery_finished] events tagged with the new
    volume epoch. *)

val on_message : t -> Storage.Protocol.t -> from:Simnet.Addr.t -> unit
(** Feed Scl_reply / Hydrate_reply / Truncate_ack messages addressed to
    [my_addr].  Other messages are ignored. *)

val is_done : t -> bool

(** Pure core of the VCL computation, exposed for property tests: given the
    per-group recovered points and the fetched records, return (vcl, vdl).
    [anchor] is the LSN below which the volume chain is known complete. *)
val compute_vcl :
  anchor:Lsn.t ->
  points:(Storage.Pg_id.t -> Lsn.t) ->
  pg_of:(Block_id.t -> Storage.Pg_id.t) ->
  Log_record.t list ->
  Lsn.t * Lsn.t

(** The read-quorum consistency rule, exposed for tests: max SCL among a
    responding read quorum. *)
val recovered_point : scls:(Member_id.t * Lsn.t) list -> Lsn.t
