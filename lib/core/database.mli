(** The Aurora writer database instance.

    A transactional key-value engine standing in for the SQL front end: it
    owns the components the paper's mechanisms live in — buffer cache, MVCC
    read views, mini-transactions, the asynchronous boxcar write path, the
    commit queue, consistency-point bookkeeping, the tracked/hedged read
    path, crash recovery, the physical replication stream to read replicas,
    and the protection-group membership machinery.

    Everything a client calls returns immediately; durability and reads
    complete through callbacks as simulated acknowledgements arrive.  The
    instance is an actor on the simulated network; storage traffic uses
    {!Storage.Protocol}. *)

open Wal
open Quorum

type config = {
  n_blocks : int;  (** Keys hash onto this many data blocks. *)
  cache_capacity : int;  (** Buffer cache size, in blocks. *)
  boxcar : Boxcar.policy;
  read_strategy : Reader.strategy;
  replication_interval : Simcore.Time_ns.t;
      (** Cadence of Redo_stream batches to replicas. *)
  pgmrpl_interval : Simcore.Time_ns.t;
      (** Cadence of GC-floor pushes to storage (§3.4). *)
}

val default_config : config

type metrics = {
  commit_latency : Simcore.Histogram.t;
      (** Client-observed commit-to-ack latency. *)
  record_durable_latency : Simcore.Histogram.t;
      (** Record write to VCL coverage. *)
  mutable txns_started : int;
  mutable txns_committed : int;
  mutable txns_aborted : int;
  mutable commit_acks : int;
  mutable puts : int;
  mutable deletes : int;
  mutable gets : int;
  mutable cache_hit_reads : int;
  mutable storage_reads : int;
  mutable records_written : int;
  mutable write_rejects : int;
  mutable fenced : int;  (** Times this instance found itself boxed out. *)
}

type t

val create :
  sim:Simcore.Sim.t ->
  rng:Simcore.Rng.t ->
  net:Storage.Protocol.t Simnet.Net.t ->
  addr:Simnet.Addr.t ->
  volume:Volume.t ->
  config:config ->
  ?obs:Obs.Ctx.t ->
  unit ->
  t
(** [obs] wires the instance into a shared observability context: the
    [db_*] instruments are registered and every submitted record is traced
    through the commit-path stages.  A private context is created when
    omitted, so standalone instances stay self-contained. *)

val start : t -> unit
(** Register on the network and begin serving (a fresh, empty volume). *)

val sim : t -> Simcore.Sim.t
val addr : t -> Simnet.Addr.t
val obs : t -> Obs.Ctx.t
val volume : t -> Volume.t
val config : t -> config
val consistency : t -> Consistency.t
val reader : t -> Reader.t
val metrics : t -> metrics
val cache : t -> Buffer_cache.t
val txn_table : t -> Txn_table.t
val is_open : t -> bool
val vcl : t -> Lsn.t
val vdl : t -> Lsn.t

val commit_queue_depth : t -> int
(** Transactions waiting for SCN <= VCL (the health monitor's
    commit-queue-depth signal). *)

val block_of_key : t -> string -> Block_id.t

val mean_batch_size : t -> float
(** Records per flushed network write across all boxcars — the §2.2
    packing-efficiency metric. *)

(* ---- client API ---- *)

val begin_txn : t -> Txn_id.t
(** @raise Failure if the instance is not open. *)

val put : t -> txn:Txn_id.t -> key:string -> value:string -> unit
(** Buffered write: applies to the cache, allocates redo, streams it
    asynchronously.  One single-record MTR. *)

val delete : t -> txn:Txn_id.t -> key:string -> unit

val put_multi : t -> txn:Txn_id.t -> (string * string) list -> unit
(** One mini-transaction spanning several keys (and typically several
    blocks/protection groups) — the analogue of a B-tree split whose redo
    must become visible atomically (§3.3). *)

val get :
  t ->
  ?txn:Txn_id.t ->
  key:string ->
  ((string option, string) result -> unit) ->
  unit
(** Snapshot read at a view anchored on the current VDL.  Served from cache
    when possible, otherwise via the tracked read path. *)

val commit : t -> txn:Txn_id.t -> ((unit, string) result -> unit) -> unit
(** Write the commit record, park the transaction on the commit queue, and
    return; the callback fires when VCL covers the SCN (§2.3).  Read-only
    transactions acknowledge immediately. *)

val abort : t -> txn:Txn_id.t -> unit

(* ---- replicas (§3.2-3.4) ---- *)

val attach_replica : t -> Simnet.Addr.t -> unit
val detach_replica : t -> Simnet.Addr.t -> unit
val replicas : t -> Simnet.Addr.t list

(* ---- lifecycle / faults ---- *)

val crash : t -> unit
(** Instantly lose all ephemeral state: cache, consistency points, commit
    queue, in-flight reads and writes, transaction table.  Unacknowledged
    commits are abandoned; acknowledged ones are storage's problem — which
    is the whole point. *)

val recover : t -> ((Recovery.outcome, string) result -> unit) -> unit
(** §2.4: bump the volume epoch, re-derive VCL/VDL from storage SCLs,
    truncate the ragged edge, rebuild local state, and reopen.  Works both
    after {!crash} on the same instance and on a fresh instance attached to
    an existing volume (replica promotion).  A still-open instance is
    fenced ({!crash}) first: recovery truncates above its point-in-time
    VCL poll, so commits acked during the poll would otherwise be lost. *)

(* ---- membership changes (§4.1), exercised by the harness ---- *)

val begin_segment_replacement :
  t ->
  Storage.Pg_id.t ->
  suspect:Member_id.t ->
  replacement:Membership.member ->
  replacement_addr:Simnet.Addr.t ->
  (unit, string) result
(** First epoch increment of Figure 5: dual quorums, I/O continues.  The
    new roster (with addresses) is pushed to all member segments. *)

val commit_segment_replacement :
  t -> Storage.Pg_id.t -> suspect:Member_id.t -> (unit, string) result

val revert_segment_replacement :
  t -> Storage.Pg_id.t -> suspect:Member_id.t -> (unit, string) result

val broadcast_membership : t -> Storage.Pg_id.t -> unit
(** Re-push the current roster/epoch for a group (e.g. after restarting a
    storage node). *)
