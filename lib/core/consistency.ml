open Wal
open Quorum
module Pg_id = Storage.Pg_id

type pg_state = {
  mutable write_quorum : Quorum_set.t;
  scls : Lsn.t Member_id.Tbl.t;
  chain : Lsn.t Queue.t; (* submitted, not yet durable, in order *)
  mutable pgcl : Lsn.t;
}

type volume_entry = { lsn : Lsn.t; pg : Pg_id.t; mtr_end : bool }

type t = {
  pgs : pg_state Pg_id.Tbl.t;
  volume_chain : volume_entry Queue.t; (* submitted, not yet <= VCL *)
  mutable last_submitted : Lsn.t;
  mutable vcl : Lsn.t;
  mutable vdl : Lsn.t;
  mutable vcl_watchers : (Lsn.t -> unit) list;
  mutable vdl_watchers : (Lsn.t -> unit) list;
  mutable durable_watchers : (Pg_id.t -> Lsn.t -> unit) list;
}

let create () =
  {
    pgs = Pg_id.Tbl.create 8;
    volume_chain = Queue.create ();
    last_submitted = Lsn.none;
    vcl = Lsn.none;
    vdl = Lsn.none;
    vcl_watchers = [];
    vdl_watchers = [];
    durable_watchers = [];
  }

let register_pg t pg ~write_quorum =
  match Pg_id.Tbl.find_opt t.pgs pg with
  | Some st -> st.write_quorum <- write_quorum
  | None ->
    Pg_id.Tbl.add t.pgs pg
      {
        write_quorum;
        scls = Member_id.Tbl.create 8;
        chain = Queue.create ();
        pgcl = Lsn.none;
      }

let set_write_quorum t pg q =
  match Pg_id.Tbl.find_opt t.pgs pg with
  | Some st -> st.write_quorum <- q
  | None -> register_pg t pg ~write_quorum:q

let pg_state t pg =
  match Pg_id.Tbl.find_opt t.pgs pg with
  | Some st -> st
  | None -> invalid_arg "Consistency: unknown protection group"

let note_submitted t ~pg ~lsn ~mtr_end =
  if Lsn.(lsn <= t.last_submitted) then
    invalid_arg "Consistency.note_submitted: LSNs must be submitted in order";
  t.last_submitted <- lsn;
  let st = pg_state t pg in
  Queue.push lsn st.chain;
  Queue.push { lsn; pg; mtr_end } t.volume_chain

(* Segments whose SCL covers [lsn]. *)
let covering st lsn =
  Member_id.Tbl.fold
    (fun seg scl acc -> if Lsn.(scl >= lsn) then Member_id.Set.add seg acc else acc)
    st.scls Member_id.Set.empty

(* Advance the group's PGCL: pop chain heads while the segments covering
   them satisfy the write quorum.  SCL coverage is antitone in LSN, so a
   failing head stops the scan. *)
let advance_pgcl t pg st =
  let continue = ref true in
  while !continue do
    match Queue.peek_opt st.chain with
    | None -> continue := false
    | Some lsn ->
      if Quorum_set.satisfied st.write_quorum (covering st lsn) then begin
        ignore (Queue.pop st.chain : Lsn.t);
        st.pgcl <- lsn;
        List.iter (fun f -> f pg lsn) t.durable_watchers
      end
      else continue := false
  done

(* Advance VCL: pop the volume chain while each head is covered by its own
   group's PGCL ("no pending writes preventing PGCL from advancing"). *)
let advance_vcl t =
  let new_vcl = ref t.vcl in
  let new_vdl = ref t.vdl in
  let continue = ref true in
  while !continue do
    match Queue.peek_opt t.volume_chain with
    | None -> continue := false
    | Some entry ->
      let st = pg_state t entry.pg in
      if Lsn.(entry.lsn <= st.pgcl) then begin
        ignore (Queue.pop t.volume_chain : volume_entry);
        new_vcl := entry.lsn;
        if entry.mtr_end then new_vdl := entry.lsn
      end
      else continue := false
  done;
  if Lsn.(!new_vcl > t.vcl) then begin
    t.vcl <- !new_vcl;
    List.iter (fun f -> f t.vcl) t.vcl_watchers
  end;
  if Lsn.(!new_vdl > t.vdl) then begin
    t.vdl <- !new_vdl;
    List.iter (fun f -> f t.vdl) t.vdl_watchers
  end

let note_ack t ~pg ~seg ~scl =
  let st = pg_state t pg in
  (* Acks can be reordered in flight; a segment's SCL is monotone, so a
     lower value is always stale news and must not regress the tracker. *)
  let prev =
    match Member_id.Tbl.find_opt st.scls seg with
    | Some l -> l
    | None -> Lsn.none
  in
  if Lsn.(scl > prev) then begin
    Perf.Probe.start Perf.Probe.Consistency_advance;
    Member_id.Tbl.replace st.scls seg scl;
    let before = st.pgcl in
    advance_pgcl t pg st;
    if Lsn.(st.pgcl > before) then advance_vcl t;
    Perf.Probe.stop Perf.Probe.Consistency_advance
  end

let segment_scl t ~pg ~seg =
  match Member_id.Tbl.find_opt (pg_state t pg).scls seg with
  | Some scl -> scl
  | None -> Lsn.none

let pgcl t pg = (pg_state t pg).pgcl
let vcl t = t.vcl
let vdl t = t.vdl

let segments_at_or_above t ~pg ~lsn = covering (pg_state t pg) lsn

let on_vcl_advance t f = t.vcl_watchers <- f :: t.vcl_watchers
let on_vdl_advance t f = t.vdl_watchers <- f :: t.vdl_watchers
let on_record_durable t f = t.durable_watchers <- f :: t.durable_watchers
let pending_submissions t = Queue.length t.volume_chain

let restore t ~vcl ~vdl ~pg_points =
  Queue.clear t.volume_chain;
  t.last_submitted <- Lsn.max t.last_submitted vcl;
  t.vcl <- vcl;
  t.vdl <- vdl;
  List.iter
    (fun (pg, point) ->
      match Pg_id.Tbl.find_opt t.pgs pg with
      | None -> ()
      | Some st ->
        Queue.clear st.chain;
        st.pgcl <- point)
    pg_points
