type labels = (string * string) list

type value =
  | Counter of int ref
  | Counter_fn of (unit -> int)
  | Gauge of float ref
  | Gauge_fn of (unit -> float)
  | Hist of Simcore.Histogram.t

type instrument = { name : string; labels : labels; mutable value : value }

type t = { tbl : (string, instrument) Hashtbl.t }

let create () = { tbl = Hashtbl.create 128 }

let sort_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let key name labels =
  let buf = Buffer.create 64 in
  Buffer.add_string buf name;
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf k;
      Buffer.add_char buf '=';
      Buffer.add_string buf v)
    labels;
  Buffer.add_char buf '}';
  Buffer.contents buf

let kind_name = function
  | Counter _ | Counter_fn _ -> "counter"
  | Gauge _ | Gauge_fn _ -> "gauge"
  | Hist _ -> "histogram"

let same_kind a b = String.equal (kind_name a) (kind_name b)

(* Owned instruments: first registration wins, later ones get the same
   object back.  [extract] projects the payload or None on kind clash. *)
let register_owned t ?(labels = []) name fresh extract =
  let labels = sort_labels labels in
  let k = key name labels in
  match Hashtbl.find_opt t.tbl k with
  | Some inst -> (
    match extract inst.value with
    | Some payload -> payload
    | None ->
      invalid_arg
        (Printf.sprintf "Obs.Registry: %s already registered as a %s" k
           (kind_name inst.value)))
  | None ->
    let value = fresh () in
    Hashtbl.replace t.tbl k { name; labels; value };
    (match extract value with Some payload -> payload | None -> assert false)

(* Callback / by-reference instruments: replace a previous registration of
   the same kind (component rebuilt after recovery), clash on others. *)
let register_replacing t ?(labels = []) name value =
  let labels = sort_labels labels in
  let k = key name labels in
  (match Hashtbl.find_opt t.tbl k with
  | Some inst when not (same_kind inst.value value) ->
    invalid_arg
      (Printf.sprintf "Obs.Registry: %s already registered as a %s" k
         (kind_name inst.value))
  | Some _ | None -> ());
  Hashtbl.replace t.tbl k { name; labels; value }

let counter t ?labels name =
  register_owned t ?labels name
    (fun () -> Counter (ref 0))
    (function Counter r -> Some r | _ -> None)

let counter_fn t ?labels name f = register_replacing t ?labels name (Counter_fn f)

let gauge t ?labels name =
  register_owned t ?labels name
    (fun () -> Gauge (ref 0.))
    (function Gauge r -> Some r | _ -> None)

let gauge_fn t ?labels name f = register_replacing t ?labels name (Gauge_fn f)

let histogram t ?labels name =
  register_owned t ?labels name
    (fun () -> Hist (Simcore.Histogram.create ()))
    (function Hist h -> Some h | _ -> None)

let histogram_ref t ?labels name h = register_replacing t ?labels name (Hist h)

let cardinality t = Hashtbl.length t.tbl

let sorted_instruments t =
  Stable.sorted_bindings ~cmp:String.compare t.tbl |> List.map snd

let find_histograms t name =
  List.filter_map
    (fun inst ->
      match inst.value with
      | Hist h when String.equal inst.name name -> Some (inst.labels, h)
      | _ -> None)
    (sorted_instruments t)

let counter_value t ?(labels = []) name =
  match Hashtbl.find_opt t.tbl (key name (sort_labels labels)) with
  | Some { value = Counter r; _ } -> Some !r
  | Some { value = Counter_fn f; _ } -> Some (f ())
  | Some _ | None -> None

let gauge_value t ?(labels = []) name =
  match Hashtbl.find_opt t.tbl (key name (sort_labels labels)) with
  | Some { value = Gauge r; _ } -> Some !r
  | Some { value = Gauge_fn f; _ } -> Some (f ())
  | Some _ | None -> None

let find_histogram t ?(labels = []) name =
  match Hashtbl.find_opt t.tbl (key name (sort_labels labels)) with
  | Some { value = Hist h; _ } -> Some h
  | Some _ | None -> None

let matches ~where labels =
  List.for_all
    (fun (k, v) ->
      match List.assoc_opt k labels with
      | None -> true
      | Some v' -> String.equal v v')
    where

let hist_json h =
  let open Simcore in
  Json.Obj
    [
      ("count", Json.Int (Histogram.count h));
      ("min", Json.Int (Histogram.min_value h));
      ("max", Json.Int (Histogram.max_value h));
      ("mean", Json.Float (Histogram.mean h));
      ("p50", Json.Int (Histogram.percentile h 50.));
      ("p90", Json.Int (Histogram.percentile h 90.));
      ("p99", Json.Int (Histogram.percentile h 99.));
      ("p999", Json.Int (Histogram.percentile h 99.9));
      ("total", Json.Float (Histogram.total h));
    ]

let instrument_json inst =
  let labels_json = Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) inst.labels) in
  let base = [ ("name", Json.String inst.name); ("labels", labels_json) ] in
  let payload =
    match inst.value with
    | Counter r -> [ ("type", Json.String "counter"); ("value", Json.Int !r) ]
    | Counter_fn f -> [ ("type", Json.String "counter"); ("value", Json.Int (f ())) ]
    | Gauge r -> [ ("type", Json.String "gauge"); ("value", Json.Float !r) ]
    | Gauge_fn f -> [ ("type", Json.String "gauge"); ("value", Json.Float (f ())) ]
    | Hist h -> [ ("type", Json.String "histogram"); ("histogram", hist_json h) ]
  in
  Json.Obj (base @ payload)

let snapshot ?(where = []) t =
  Json.List
    (List.filter_map
       (fun inst ->
         if matches ~where inst.labels then Some (instrument_json inst) else None)
       (sorted_instruments t))
