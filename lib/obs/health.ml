type pg_sample = {
  pg : int;
  total : int;
  reachable : int;
  ack_current : int;
  write_margin : int;
  read_margin : int;
  az_plus_one : bool;
  epoch : int;
}

type volume_sample = {
  vdl_vcl_gap : int;
  commit_queue_depth : int;
  max_replica_lag : int;
}

type sample = {
  at : Simcore.Time_ns.t;
  pgs : pg_sample list;
  volume : volume_sample;
}

let pg_write_ok p = p.write_margin >= 0

let sample_write_available s = List.for_all pg_write_ok s.pgs

type t = {
  trace : Trace.t option;
  prev : (int, bool * bool) Hashtbl.t; (* pg -> (write_ok, az_plus_one) *)
  mutable last : sample option;
  mutable observed_ns : int;
  mutable available_ns : int;
  mutable transitions : int;
}

let create ?trace () =
  {
    trace;
    prev = Hashtbl.create 16;
    last = None;
    observed_ns = 0;
    available_ns = 0;
    transitions = 0;
  }

let edge t ~at ~pg e =
  t.transitions <- t.transitions + 1;
  match t.trace with None -> () | Some tr -> Trace.health tr ~at ~pg e

let observe t ~at s =
  (* Integrate availability over [last.at, at) under the previous state
     (piecewise-constant, left-continuous). *)
  (match t.last with
  | Some prev when at > prev.at ->
    let dt = at - prev.at in
    t.observed_ns <- t.observed_ns + dt;
    if sample_write_available prev then t.available_ns <- t.available_ns + dt
  | Some _ | None -> ());
  (* Edge detection: a PG never seen before is presumed healthy, so the
     first unhealthy observation fires a loss edge. *)
  List.iter
    (fun p ->
      let was_w, was_a =
        match Hashtbl.find_opt t.prev p.pg with
        | Some st -> st
        | None -> (true, true)
      in
      let now_w = pg_write_ok p and now_a = p.az_plus_one in
      if was_w && not now_w then edge t ~at ~pg:p.pg Trace.Write_quorum_lost;
      if (not was_w) && now_w then edge t ~at ~pg:p.pg Trace.Write_quorum_regained;
      if was_a && not now_a then edge t ~at ~pg:p.pg Trace.Az_plus_one_lost;
      if (not was_a) && now_a then edge t ~at ~pg:p.pg Trace.Az_plus_one_regained;
      Hashtbl.replace t.prev p.pg (now_w, now_a))
    s.pgs;
  t.last <- Some s

let last t = t.last
let observed_ns t = t.observed_ns
let transitions t = t.transitions

let write_available_fraction t =
  if t.observed_ns <= 0 then 1.
  else float_of_int t.available_ns /. float_of_int t.observed_ns

let pg_to_json p =
  Json.Obj
    [
      ("pg", Json.Int p.pg);
      ("total", Json.Int p.total);
      ("reachable", Json.Int p.reachable);
      ("ack_current", Json.Int p.ack_current);
      ("write_margin", Json.Int p.write_margin);
      ("read_margin", Json.Int p.read_margin);
      ("az_plus_one", Json.Bool p.az_plus_one);
      ("epoch", Json.Int p.epoch);
    ]

let to_json t =
  let base =
    [
      ("write_available_fraction", Json.Float (write_available_fraction t));
      ("observed_ns", Json.Int t.observed_ns);
      ("transitions", Json.Int t.transitions);
    ]
  in
  let current =
    match t.last with
    | None -> []
    | Some s ->
      [
        ( "current",
          Json.Obj
            [
              ("at_ns", Json.Int s.at);
              ("write_available", Json.Bool (sample_write_available s));
              ("vdl_vcl_gap", Json.Int s.volume.vdl_vcl_gap);
              ("commit_queue_depth", Json.Int s.volume.commit_queue_depth);
              ("max_replica_lag", Json.Int s.volume.max_replica_lag);
              ("pgs", Json.List (List.map pg_to_json s.pgs));
            ] );
      ]
  in
  Json.Obj (base @ current)
