type t = {
  registry : Registry.t;
  trace : Trace.t;
  commit_path : Commit_path.t;
}

let create ?(trace_capacity = 8192) ?(commit_capacity = 16384) () =
  let registry = Registry.create () in
  let trace = Trace.create ~capacity:trace_capacity () in
  let commit_path = Commit_path.create ~capacity:commit_capacity ~registry ~trace () in
  { registry; trace; commit_path }

let registry t = t.registry
let trace t = t.trace
let commit_path t = t.commit_path
let enable_tracing t = Trace.enable t.trace
let disable_tracing t = Trace.disable t.trace

let snapshot_at ~at ?where ?trace_tail t =
  let base =
    [
      ("at_ns", Json.Int at);
      ("instruments", Registry.snapshot ?where t.registry);
    ]
  in
  let trace_field =
    match trace_tail with
    | None -> []
    | Some tl ->
      [ ("trace", Json.List (List.map Trace.event_to_json (Trace.tail t.trace tl))) ]
  in
  Json.Obj (base @ trace_field)

let snapshot ?where ?trace_tail t =
  snapshot_at ~at:Simcore.Time_ns.zero ?where ?trace_tail t
