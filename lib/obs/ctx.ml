type t = {
  registry : Registry.t;
  trace : Trace.t;
  commit_path : Commit_path.t;
  series : Series.t;
  health : Health.t;
}

let create ?(trace_capacity = 8192) ?(commit_capacity = 16384)
    ?(series_capacity = 512) () =
  let registry = Registry.create () in
  let trace = Trace.create ~capacity:trace_capacity () in
  let commit_path = Commit_path.create ~capacity:commit_capacity ~registry ~trace () in
  let series = Series.create ~capacity:series_capacity ~registry () in
  let health = Health.create ~trace () in
  { registry; trace; commit_path; series; health }

let registry t = t.registry
let trace t = t.trace
let commit_path t = t.commit_path
let series t = t.series
let health t = t.health
let enable_tracing t = Trace.enable t.trace
let disable_tracing t = Trace.disable t.trace

let snapshot_at ~at ?where ?trace_tail t =
  let base =
    [
      ("at_ns", Json.Int at);
      ("instruments", Registry.snapshot ?where t.registry);
    ]
  in
  let series_field =
    if Series.n_samples t.series = 0 then []
    else [ ("series", Series.to_json t.series) ]
  in
  let health_field =
    match Health.last t.health with
    | None -> []
    | Some _ -> [ ("health", Health.to_json t.health) ]
  in
  let trace_field =
    match trace_tail with
    | None -> []
    | Some tl ->
      [
        ("trace", Json.List (List.map Trace.event_to_json (Trace.tail t.trace tl)));
        ("trace_capacity", Json.Int (Trace.capacity t.trace));
        ("trace_dropped", Json.Int (Trace.dropped t.trace));
      ]
  in
  Json.Obj (base @ series_field @ health_field @ trace_field)

let snapshot ?where ?trace_tail t =
  snapshot_at ~at:Simcore.Time_ns.zero ?where ?trace_tail t
