(** Chrome trace-event-format export.

    Renders a context's commit-path timelines and trace ring as the JSON
    object format consumed by Perfetto / [chrome://tracing]:

    - each live commit-path timeline becomes async span pairs ([ph] "b" /
      "e", [id] = LSN): one umbrella span ["commit lsn=N"] from its first
      to its last observed stage, plus one sub-span per adjacent observed
      stage pair, named after the reached stage;
    - ring events (reads, recovery, membership changes, health edges)
      become instant events ([ph] "i", thread scope);
    - lanes: [tid] 0 is the volume-level lane, [tid] [pg + 1] the lane of
      protection group [pg]; each lane gets a ["thread_name"] metadata
      record ([ph] "M").

    Timestamps are microseconds (simulated nanoseconds / 1000, as a
    float).  Every record carries [name]/[ph]/[ts]/[pid]/[tid].  Commit
    events in the ring are skipped — the timelines carry strictly more
    structure for the same marks.  Output is deterministic for identically
    seeded runs. *)

val to_json : Ctx.t -> Json.t
(** [{"traceEvents": [...]; "displayTimeUnit": "ms"}]. *)

val to_string : ?pretty:bool -> Ctx.t -> string
