(** One observability context per cluster.

    Bundles the metrics {!Registry}, the typed event {!Trace} ring, the
    {!Commit_path} tracker, the {!Series} time-series collection, and the
    {!Health} monitor.  Every component takes an optional [?obs] context at
    creation; a component built without one gets a fresh private context
    ({!create}) so instrumentation code never branches — the harness passes
    a single shared context to everything it builds and snapshots that.

    The series and health members are passive here: the harness decides
    which channels to track and drives [Series.sample]/[Health.observe]
    from a sim-clock timer.  They appear in {!snapshot} automatically once
    populated. *)

type t

val create :
  ?trace_capacity:int -> ?commit_capacity:int -> ?series_capacity:int -> unit -> t

val registry : t -> Registry.t
val trace : t -> Trace.t
val commit_path : t -> Commit_path.t
val series : t -> Series.t
val health : t -> Health.t

val enable_tracing : t -> unit
val disable_tracing : t -> unit

val snapshot : ?where:Registry.labels -> ?trace_tail:int -> t -> Json.t
(** [{"at_ns"; "instruments"; "series"?; "health"?; "trace"?;
    "trace_capacity"?; "trace_dropped"?}].  ["series"]/["health"] appear
    once the sampler has run; the three trace fields appear iff
    [trace_tail] is given — [trace_dropped] counts events the ring evicted
    while enabled, so a truncated timeline is visible.  [at_ns] is supplied
    by the caller via {!snapshot_at} — this variant stamps 0.
    Deterministic for identically seeded simulations. *)

val snapshot_at :
  at:Simcore.Time_ns.t -> ?where:Registry.labels -> ?trace_tail:int -> t -> Json.t
