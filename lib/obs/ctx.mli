(** One observability context per cluster.

    Bundles the metrics {!Registry}, the typed event {!Trace} ring, and the
    {!Commit_path} tracker.  Every component takes an optional [?obs]
    context at creation; a component built without one gets a fresh private
    context ({!create}) so instrumentation code never branches — the
    harness passes a single shared context to everything it builds and
    snapshots that. *)

type t

val create : ?trace_capacity:int -> ?commit_capacity:int -> unit -> t

val registry : t -> Registry.t
val trace : t -> Trace.t
val commit_path : t -> Commit_path.t

val enable_tracing : t -> unit
val disable_tracing : t -> unit

val snapshot : ?where:Registry.labels -> ?trace_tail:int -> t -> Json.t
(** [{"at_ns": ...; "instruments": [...]; "trace": [...]}]; [at_ns] is
    supplied by the caller via {!snapshot_at} — this variant stamps 0.
    Deterministic for identically seeded simulations. *)

val snapshot_at :
  at:Simcore.Time_ns.t -> ?where:Registry.labels -> ?trace_tail:int -> t -> Json.t
