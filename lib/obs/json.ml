type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Integral floats render without an exponent so counters exported through a
   gauge stay readable; everything else gets enough digits to round-trip the
   values we produce (histogram means, rates). *)
let float_repr f =
  if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let to_string ?(pretty = false) t =
  let buf = Buffer.create 1024 in
  let pad depth = if pretty then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if pretty then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          go (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          if pretty then Buffer.add_char buf ' ';
          go (depth + 1) v)
        fields;
      nl ();
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf
