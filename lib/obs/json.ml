type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Integral floats render without an exponent so counters exported through a
   gauge stay readable; everything else gets enough digits to round-trip the
   values we produce (histogram means, rates). *)
let float_repr f =
  if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let to_string ?(pretty = false) t =
  let buf = Buffer.create 1024 in
  let pad depth = if pretty then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if pretty then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          go (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          if pretty then Buffer.add_char buf ' ';
          go (depth + 1) v)
        fields;
      nl ();
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

(* ---- parser ---- *)

(* Recursive-descent parser for exactly the dialect [to_string] emits (plus
   arbitrary inter-token whitespace).  [null] parses as [Null], which means
   a non-finite float does not survive a round trip — that is the printer's
   documented lossiness, not the parser's. *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | Some x -> fail (Printf.sprintf "expected %C, found %C" c x)
    | None -> fail (Printf.sprintf "expected %C, found end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "invalid \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let escape_char () =
      match peek () with
      | Some '"' -> Buffer.add_char buf '"'; advance ()
      | Some '\\' -> Buffer.add_char buf '\\'; advance ()
      | Some '/' -> Buffer.add_char buf '/'; advance ()
      | Some 'n' -> Buffer.add_char buf '\n'; advance ()
      | Some 'r' -> Buffer.add_char buf '\r'; advance ()
      | Some 't' -> Buffer.add_char buf '\t'; advance ()
      | Some 'b' -> Buffer.add_char buf '\b'; advance ()
      | Some 'f' -> Buffer.add_char buf '\012'; advance ()
      | Some 'u' ->
        advance ();
        let unit4 () =
          if !pos + 4 > n then fail "truncated \\u escape";
          let code =
            (hex_digit s.[!pos] lsl 12)
            lor (hex_digit s.[!pos + 1] lsl 8)
            lor (hex_digit s.[!pos + 2] lsl 4)
            lor hex_digit s.[!pos + 3]
          in
          pos := !pos + 4;
          code
        in
        let code = unit4 () in
        (* Full \uXXXX decoding to UTF-8 bytes, surrogate pairs included —
           scenario files and external tools hand us escapes the printer
           itself never emits (it only writes \u00xx for controls). *)
        let scalar =
          if code >= 0xD800 && code <= 0xDBFF then begin
            (* High surrogate: a low surrogate escape must follow. *)
            if
              not
                (!pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u')
            then fail "high surrogate not followed by \\u low surrogate"
            else begin
              pos := !pos + 2;
              let low = unit4 () in
              if low < 0xDC00 || low > 0xDFFF then
                fail "high surrogate not followed by a low surrogate"
              else
                0x10000
                + ((code - 0xD800) lsl 10)
                + (low - 0xDC00)
            end
          end
          else if code >= 0xDC00 && code <= 0xDFFF then
            fail "unpaired low surrogate"
          else code
        in
        if scalar < 0x80 then Buffer.add_char buf (Char.chr scalar)
        else if scalar < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (scalar lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (scalar land 0x3F)))
        end
        else if scalar < 0x10000 then begin
          Buffer.add_char buf (Char.chr (0xE0 lor (scalar lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((scalar lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (scalar land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xF0 lor (scalar lsr 18)));
          Buffer.add_char buf (Char.chr (0x80 lor ((scalar lsr 12) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor ((scalar lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (scalar land 0x3F)))
        end
      | Some c -> fail (Printf.sprintf "bad escape \\%C" c)
      | None -> fail "unterminated escape"
    in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          escape_char ();
          go ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let is_float = ref false in
    let continue = ref true in
    while !continue do
      match peek () with
      | Some ('0' .. '9') -> advance ()
      | Some ('.' | 'e' | 'E' | '+' | '-') ->
        is_float := true;
        advance ()
      | _ -> continue := false
    done;
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> fail (Printf.sprintf "bad number %S" text)
  in
  (* Nesting is bounded so adversarial input ([[[[…) degrades into a clean
     parse error instead of exhausting the OCaml stack.  512 levels is far
     beyond anything the observability layer or a vopr scenario emits. *)
  let max_depth = 512 in
  let rec parse_value depth =
    if depth > max_depth then
      fail (Printf.sprintf "nesting deeper than %d levels" max_depth);
    skip_ws ();
    match peek () with
    | None -> fail "expected a value, found end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value (depth + 1) ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value (depth + 1) :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing input after the value";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "json parse error at byte %d: %s" at msg)
