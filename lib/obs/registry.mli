(** Cluster-wide metrics registry.

    Components register named, labelled instruments at creation time; the
    harness snapshots the whole registry at any simulated instant.  Three
    instrument kinds:

    - counters: monotone ints, either owned ([counter], returns a [ref] the
      caller bumps) or callback-backed ([counter_fn], reading an existing
      ad-hoc metrics record so legacy counters migrate without moving);
    - gauges: floats, same two flavours;
    - histograms: {!Simcore.Histogram}, either owned or registered by
      reference ([histogram_ref]) so existing latency histograms surface
      under a stable name.

    Identity is (name, label set).  Registering an owned instrument twice
    under the same identity returns the first one; registering under the
    same identity with a different kind raises [Invalid_argument].
    Callback/by-reference registrations replace a previous registration of
    the same kind — a component rebuilt after crash recovery re-registers
    and its fresh instruments supersede the dead ones. *)

type t

type labels = (string * string) list
(** Label dimensions, e.g. [("pg", "0"); ("az", "az1")].  Stored sorted by
    key; order given at registration does not matter. *)

val create : unit -> t

val counter : t -> ?labels:labels -> string -> int ref
val counter_fn : t -> ?labels:labels -> string -> (unit -> int) -> unit
val gauge : t -> ?labels:labels -> string -> float ref
val gauge_fn : t -> ?labels:labels -> string -> (unit -> float) -> unit
val histogram : t -> ?labels:labels -> string -> Simcore.Histogram.t
val histogram_ref : t -> ?labels:labels -> string -> Simcore.Histogram.t -> unit

val cardinality : t -> int
(** Number of registered instruments. *)

val find_histograms : t -> string -> (labels * Simcore.Histogram.t) list
(** All histograms registered under [name], sorted by labels —
    deterministic input for report tables. *)

val counter_value : t -> ?labels:labels -> string -> int option
(** Current value of a counter (owned or callback), if registered. *)

val gauge_value : t -> ?labels:labels -> string -> float option
(** Current value of a gauge (owned or callback), if registered. *)

val find_histogram : t -> ?labels:labels -> string -> Simcore.Histogram.t option
(** The histogram under exactly (name, labels), if registered. *)

val snapshot : ?where:labels -> t -> Json.t
(** Deterministic JSON array of instruments sorted by (name, labels), each
    [{"name"; "labels"; "type"; ...}].  Counters/gauges carry ["value"];
    histograms carry count/min/max/mean/percentiles/total.

    [where] filters: an instrument is kept iff, for every [(k, v)] in
    [where], it either lacks label [k] entirely or carries [k = v] — so
    per-PG filtering keeps global instruments visible alongside the
    selected group's. *)
