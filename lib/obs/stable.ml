let sorted_bindings ~cmp tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> cmp a b)

let sorted_keys ~cmp tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
  |> List.sort_uniq cmp
