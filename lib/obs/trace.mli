(** Variant-typed event trace.

    Replaces free-form string tracing on the hot paths: events are closed
    variants, so recording allocates nothing until the trace is enabled and
    the recorder functions take only immediate arguments — a disabled trace
    costs one branch per call site.  Events live in a fixed-capacity ring;
    the newest [capacity] survive.

    The commit-path stages follow one log record through the write
    pipeline (§2.2-2.3 of the paper):

    [Lsn_allocated → Boxcar_flushed → Net_sent → Node_acked(member) →
     Pgcl_advanced → Vcl_advanced → Vdl_advanced → Commit_acked] *)

type commit_stage =
  | Lsn_allocated  (** Redo record created, LSN assigned. *)
  | Boxcar_flushed  (** Boxcar batch containing the record flushed. *)
  | Net_sent  (** Write_batch handed to the network. *)
  | Node_acked  (** First storage-node ack covering the record. *)
  | Pgcl_advanced  (** Write quorum met: group durable point covers it. *)
  | Vcl_advanced  (** Volume-complete LSN covers it. *)
  | Vdl_advanced  (** Volume-durable LSN covers it. *)
  | Commit_acked  (** Commit queue acknowledged the client (SCN <= VCL). *)

val n_stages : int
val stage_index : commit_stage -> int
val stage_of_index : int -> commit_stage
val stage_name : commit_stage -> string

type read_kind =
  | Read_cache_hit
  | Read_tracked  (** Single tracked storage read (§3.1). *)
  | Read_hedged  (** A hedge request actually fired. *)

type recovery_phase = Recovery_started | Recovery_finished

type membership_phase =
  | Change_begun  (** Figure 5: first epoch increment, dual quorums. *)
  | Change_committed  (** Second increment: suspect dropped. *)
  | Change_reverted  (** Second increment: replacement dropped. *)

type event =
  | Commit of { lsn : int; stage : commit_stage; member : int }
      (** [member] is the acking segment for [Node_acked], [-1] otherwise. *)
  | Read of { pg : int; kind : read_kind }  (** [pg = -1] when not resolved. *)
  | Recovery of { epoch : int; phase : recovery_phase }
  | Membership of { pg : int; epoch : int; phase : membership_phase }

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 8192 events. *)

val enable : t -> unit
val disable : t -> unit
val is_enabled : t -> bool

(* Recorders: no-ops (and allocation-free) while disabled. *)

val commit_stage : t -> at:Simcore.Time_ns.t -> lsn:int -> member:int -> commit_stage -> unit
val read : t -> at:Simcore.Time_ns.t -> pg:int -> read_kind -> unit
val recovery : t -> at:Simcore.Time_ns.t -> epoch:int -> recovery_phase -> unit
val membership : t -> at:Simcore.Time_ns.t -> pg:int -> epoch:int -> membership_phase -> unit

val length : t -> int
val events : t -> (Simcore.Time_ns.t * event) list
(** Oldest first. *)

val tail : t -> int -> (Simcore.Time_ns.t * event) list
(** Last [n] events, oldest first. *)

val clear : t -> unit

val event_to_json : Simcore.Time_ns.t * event -> Json.t
val pp_event : Format.formatter -> Simcore.Time_ns.t * event -> unit
