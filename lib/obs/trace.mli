(** Variant-typed event trace.

    Replaces free-form string tracing on the hot paths: events are closed
    variants, so recording allocates nothing until the trace is enabled and
    the recorder functions take only immediate arguments — a disabled trace
    costs one branch per call site.  Events live in a fixed-capacity ring;
    the newest [capacity] survive.

    The commit-path stages follow one log record through the write
    pipeline (§2.2-2.3 of the paper):

    [Lsn_allocated → Boxcar_flushed → Net_sent → Node_acked(member) →
     Pgcl_advanced → Vcl_advanced → Vdl_advanced → Commit_acked] *)

type commit_stage =
  | Lsn_allocated  (** Redo record created, LSN assigned. *)
  | Boxcar_flushed  (** Boxcar batch containing the record flushed. *)
  | Net_sent  (** Write_batch handed to the network. *)
  | Node_acked  (** First storage-node ack covering the record. *)
  | Pgcl_advanced  (** Write quorum met: group durable point covers it. *)
  | Vcl_advanced  (** Volume-complete LSN covers it. *)
  | Vdl_advanced  (** Volume-durable LSN covers it. *)
  | Commit_acked  (** Commit queue acknowledged the client (SCN <= VCL). *)

val n_stages : int
val stage_index : commit_stage -> int
val stage_of_index : int -> commit_stage
val stage_name : commit_stage -> string

type read_kind =
  | Read_cache_hit
  | Read_tracked  (** Single tracked storage read (§3.1). *)
  | Read_hedged  (** A hedge request actually fired. *)

val read_kind_name : read_kind -> string

type recovery_phase = Recovery_started | Recovery_finished

val recovery_phase_name : recovery_phase -> string

type membership_phase =
  | Change_begun  (** Figure 5: first epoch increment, dual quorums. *)
  | Change_committed  (** Second increment: suspect dropped. *)
  | Change_reverted  (** Second increment: replacement dropped. *)

val membership_phase_name : membership_phase -> string

(** Cluster-health transitions derived by {!Health} each sampler tick;
    recording them in the shared ring puts quorum-loss edges on the same
    timeline as the commits and membership changes that explain them. *)
type health_edge =
  | Write_quorum_lost
  | Write_quorum_regained
  | Az_plus_one_lost  (** Can no longer lose an AZ + one more segment. *)
  | Az_plus_one_regained

val health_edge_name : health_edge -> string

type event =
  | Commit of { lsn : int; stage : commit_stage; member : int; pg : int }
      (** [member] is the acking segment for [Node_acked], [-1] otherwise;
          [pg] is the record's protection group where the call site knows
          it, [-1] otherwise (volume-level stages). *)
  | Read of { pg : int; kind : read_kind }  (** [pg = -1] when not resolved. *)
  | Recovery of { epoch : int; phase : recovery_phase }
  | Membership of { pg : int; epoch : int; phase : membership_phase }
  | Health of { pg : int; edge : health_edge }  (** [pg = -1]: volume-level. *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 8192 events. *)

val enable : t -> unit
val disable : t -> unit
val is_enabled : t -> bool

(* Recorders: no-ops (and allocation-free) while disabled. *)

val commit_stage :
  t -> at:Simcore.Time_ns.t -> lsn:int -> member:int -> pg:int -> commit_stage -> unit

val read : t -> at:Simcore.Time_ns.t -> pg:int -> read_kind -> unit
val recovery : t -> at:Simcore.Time_ns.t -> epoch:int -> recovery_phase -> unit
val membership : t -> at:Simcore.Time_ns.t -> pg:int -> epoch:int -> membership_phase -> unit
val health : t -> at:Simcore.Time_ns.t -> pg:int -> health_edge -> unit

val length : t -> int

val capacity : t -> int
(** Ring size: at most this many events survive. *)

val dropped : t -> int
(** Events evicted by the ring while the trace was enabled — when non-zero
    the oldest part of the timeline is missing, and any export should say
    so rather than present a silently truncated run. *)

val events : t -> (Simcore.Time_ns.t * event) list
(** Oldest first. *)

val tail : t -> int -> (Simcore.Time_ns.t * event) list
(** Last [n] events, oldest first. *)

val clear : t -> unit

val event_to_json : Simcore.Time_ns.t * event -> Json.t
val pp_event : Format.formatter -> Simcore.Time_ns.t * event -> unit
