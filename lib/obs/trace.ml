type commit_stage =
  | Lsn_allocated
  | Boxcar_flushed
  | Net_sent
  | Node_acked
  | Pgcl_advanced
  | Vcl_advanced
  | Vdl_advanced
  | Commit_acked

let n_stages = 8

let stage_index = function
  | Lsn_allocated -> 0
  | Boxcar_flushed -> 1
  | Net_sent -> 2
  | Node_acked -> 3
  | Pgcl_advanced -> 4
  | Vcl_advanced -> 5
  | Vdl_advanced -> 6
  | Commit_acked -> 7

let stage_of_index = function
  | 0 -> Lsn_allocated
  | 1 -> Boxcar_flushed
  | 2 -> Net_sent
  | 3 -> Node_acked
  | 4 -> Pgcl_advanced
  | 5 -> Vcl_advanced
  | 6 -> Vdl_advanced
  | 7 -> Commit_acked
  | i -> invalid_arg (Printf.sprintf "Obs.Trace.stage_of_index: %d" i)

let stage_name = function
  | Lsn_allocated -> "lsn_allocated"
  | Boxcar_flushed -> "boxcar_flushed"
  | Net_sent -> "net_sent"
  | Node_acked -> "node_acked"
  | Pgcl_advanced -> "pgcl_advanced"
  | Vcl_advanced -> "vcl_advanced"
  | Vdl_advanced -> "vdl_advanced"
  | Commit_acked -> "commit_acked"

type read_kind = Read_cache_hit | Read_tracked | Read_hedged

let read_kind_name = function
  | Read_cache_hit -> "cache_hit"
  | Read_tracked -> "tracked"
  | Read_hedged -> "hedged"

type recovery_phase = Recovery_started | Recovery_finished

let recovery_phase_name = function
  | Recovery_started -> "started"
  | Recovery_finished -> "finished"

type membership_phase = Change_begun | Change_committed | Change_reverted

let membership_phase_name = function
  | Change_begun -> "begun"
  | Change_committed -> "committed"
  | Change_reverted -> "reverted"

type health_edge =
  | Write_quorum_lost
  | Write_quorum_regained
  | Az_plus_one_lost
  | Az_plus_one_regained

let health_edge_name = function
  | Write_quorum_lost -> "write_quorum_lost"
  | Write_quorum_regained -> "write_quorum_regained"
  | Az_plus_one_lost -> "az_plus_one_lost"
  | Az_plus_one_regained -> "az_plus_one_regained"

type event =
  | Commit of { lsn : int; stage : commit_stage; member : int; pg : int }
  | Read of { pg : int; kind : read_kind }
  | Recovery of { epoch : int; phase : recovery_phase }
  | Membership of { pg : int; epoch : int; phase : membership_phase }
  | Health of { pg : int; edge : health_edge }

type t = {
  capacity : int;
  mutable enabled : bool;
  buf : (Simcore.Time_ns.t * event) option array;
  mutable next : int;
  mutable count : int;
  mutable dropped : int;
}

let create ?(capacity = 8192) () =
  if capacity <= 0 then invalid_arg "Obs.Trace.create: capacity";
  {
    capacity;
    enabled = false;
    buf = Array.make capacity None;
    next = 0;
    count = 0;
    dropped = 0;
  }

let enable t = t.enabled <- true
let disable t = t.enabled <- false
let is_enabled t = t.enabled

let push t at ev =
  if t.count = t.capacity then t.dropped <- t.dropped + 1;
  t.buf.(t.next) <- Some (at, ev);
  t.next <- (t.next + 1) mod t.capacity;
  if t.count < t.capacity then t.count <- t.count + 1

let commit_stage t ~at ~lsn ~member ~pg stage =
  if t.enabled then push t at (Commit { lsn; stage; member; pg })

let read t ~at ~pg kind = if t.enabled then push t at (Read { pg; kind })

let recovery t ~at ~epoch phase =
  if t.enabled then push t at (Recovery { epoch; phase })

let membership t ~at ~pg ~epoch phase =
  if t.enabled then push t at (Membership { pg; epoch; phase })

let health t ~at ~pg edge = if t.enabled then push t at (Health { pg; edge })

let length t = t.count
let capacity t = t.capacity
let dropped t = t.dropped

let nth_oldest t i =
  let start = (t.next - t.count + t.capacity) mod t.capacity in
  match t.buf.((start + i) mod t.capacity) with
  | Some e -> e
  | None -> assert false

let events t = List.init t.count (nth_oldest t)

let tail t n =
  let n = min n t.count in
  List.init n (fun i -> nth_oldest t (t.count - n + i))

let clear t =
  Array.fill t.buf 0 t.capacity None;
  t.next <- 0;
  t.count <- 0;
  t.dropped <- 0

let event_to_json (at, ev) =
  let fields =
    match ev with
    | Commit { lsn; stage; member; pg } ->
      [
        ("kind", Json.String "commit_stage");
        ("lsn", Json.Int lsn);
        ("stage", Json.String (stage_name stage));
      ]
      @ (if member >= 0 then [ ("member", Json.Int member) ] else [])
      @ if pg >= 0 then [ ("pg", Json.Int pg) ] else []
    | Read { pg; kind } ->
      [ ("kind", Json.String "read"); ("read", Json.String (read_kind_name kind)) ]
      @ if pg >= 0 then [ ("pg", Json.Int pg) ] else []
    | Recovery { epoch; phase } ->
      [
        ("kind", Json.String "recovery");
        ("epoch", Json.Int epoch);
        ("phase", Json.String (recovery_phase_name phase));
      ]
    | Membership { pg; epoch; phase } ->
      [
        ("kind", Json.String "membership");
        ("pg", Json.Int pg);
        ("epoch", Json.Int epoch);
        ("phase", Json.String (membership_phase_name phase));
      ]
    | Health { pg; edge } ->
      [ ("kind", Json.String "health"); ("edge", Json.String (health_edge_name edge)) ]
      @ if pg >= 0 then [ ("pg", Json.Int pg) ] else []
  in
  Json.Obj (("at_ns", Json.Int at) :: fields)

let pp_event fmt (at, ev) =
  let open Format in
  fprintf fmt "[%a] " Simcore.Time_ns.pp at;
  match ev with
  | Commit { lsn; stage; member; pg = _ } ->
    if member >= 0 then
      fprintf fmt "commit lsn=%d %s member=%d" lsn (stage_name stage) member
    else fprintf fmt "commit lsn=%d %s" lsn (stage_name stage)
  | Read { pg; kind } ->
    if pg >= 0 then fprintf fmt "read %s pg=%d" (read_kind_name kind) pg
    else fprintf fmt "read %s" (read_kind_name kind)
  | Recovery { epoch; phase } ->
    fprintf fmt "recovery epoch=%d %s" epoch (recovery_phase_name phase)
  | Membership { pg; epoch; phase } ->
    fprintf fmt "membership pg=%d epoch=%d %s" pg epoch (membership_phase_name phase)
  | Health { pg; edge } ->
    if pg >= 0 then fprintf fmt "health pg=%d %s" pg (health_edge_name edge)
    else fprintf fmt "health %s" (health_edge_name edge)
