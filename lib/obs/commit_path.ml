let n = Trace.n_stages

type t = {
  registry : Registry.t;
  trace : Trace.t;
  capacity : int;
  (* lsn -> (owning pg, per-stage time); -1 = unknown / unset *)
  timelines : (int, int ref * int array) Hashtbl.t;
  order : int Queue.t; (* allocation order, for eviction *)
  hists : Simcore.Histogram.t option array; (* (from * n + to) -> histogram *)
}

let create ?(capacity = 16384) ~registry ~trace () =
  if capacity <= 0 then invalid_arg "Obs.Commit_path.create: capacity";
  {
    registry;
    trace;
    capacity;
    timelines = Hashtbl.create 1024;
    order = Queue.create ();
    hists = Array.make (n * n) None;
  }

let stage_label a b = Trace.stage_name a ^ "\xe2\x86\x92" ^ Trace.stage_name b

let hist_for t ~from ~upto =
  let idx = (from * n) + upto in
  match t.hists.(idx) with
  | Some h -> h
  | None ->
    let label = stage_label (Trace.stage_of_index from) (Trace.stage_of_index upto) in
    let h =
      Registry.histogram t.registry ~labels:[ ("stage", label) ] "commit_stage_ns"
    in
    t.hists.(idx) <- Some h;
    h

let record_pair t ~from ~upto span =
  Simcore.Histogram.record (hist_for t ~from ~upto) span

(* The marquee decomposition pairs, recorded even when intermediate stages
   were observed in between. *)
let marquee =
  [
    (Trace.stage_index Trace.Boxcar_flushed, Trace.stage_index Trace.Node_acked);
    (Trace.stage_index Trace.Vcl_advanced, Trace.stage_index Trace.Commit_acked);
  ]

let evict_beyond_capacity t =
  while Hashtbl.length t.timelines > t.capacity do
    match Queue.take_opt t.order with
    | None -> Hashtbl.reset t.timelines (* unreachable: order covers timelines *)
    | Some lsn -> Hashtbl.remove t.timelines lsn
  done

let mark t ~at ~lsn ?(member = -1) ?(pg = -1) stage =
  Trace.commit_stage t.trace ~at ~lsn ~member ~pg stage;
  let idx = Trace.stage_index stage in
  match Hashtbl.find_opt t.timelines lsn with
  | None ->
    if idx = 0 then begin
      let tl = Array.make n (-1) in
      tl.(0) <- at;
      Hashtbl.replace t.timelines lsn (ref pg, tl);
      Queue.push lsn t.order;
      evict_beyond_capacity t
    end
  | Some (pg_ref, tl) ->
    if pg >= 0 && !pg_ref < 0 then pg_ref := pg;
    if tl.(idx) < 0 then begin
      tl.(idx) <- at;
      let rec prev i = if i < 0 then -1 else if tl.(i) >= 0 then i else prev (i - 1) in
      let p = prev (idx - 1) in
      if p >= 0 then record_pair t ~from:p ~upto:idx (at - tl.(p));
      List.iter
        (fun (a, b) ->
          if b = idx && a <> p && tl.(a) >= 0 then
            record_pair t ~from:a ~upto:b (at - tl.(a)))
        marquee
    end

let live_timelines t = Hashtbl.length t.timelines

let timelines t =
  Stable.sorted_bindings ~cmp:Int.compare t.timelines
  |> List.map (fun (lsn, (pg, tl)) -> (lsn, !pg, Array.copy tl))

let clear t =
  Hashtbl.reset t.timelines;
  Queue.clear t.order
