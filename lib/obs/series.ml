type kind =
  | KCounter of { mutable last : int }
  | KGauge
  | KHist of {
      pct : float;
      mutable snap : (Simcore.Histogram.t * Simcore.Histogram.snapshot) option;
    }
  | KFn of (unit -> float)

type channel = {
  label : string;
  name : string; (* "" for KFn *)
  labels : Registry.labels;
  kind : kind;
  data : float array; (* capacity slots; nan before the channel existed *)
}

type t = {
  registry : Registry.t;
  capacity : int;
  mutable channels : channel list; (* insertion order *)
  times : Simcore.Time_ns.t array;
  mutable len : int;
  mutable stride : int;
  mutable skip : int; (* ticks to swallow before the next recorded sample *)
  mutable last_at : Simcore.Time_ns.t;
}

let create ?(capacity = 512) ~registry () =
  if capacity < 2 then invalid_arg "Obs.Series.create: capacity";
  {
    registry;
    capacity;
    channels = [];
    times = Array.make capacity 0;
    len = 0;
    stride = 1;
    skip = 0;
    last_at = 0;
  }

let default_label name labels suffix =
  let base =
    match labels with
    | [] -> name
    | _ ->
      name ^ "{"
      ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
      ^ "}"
  in
  base ^ suffix

let add_channel t label name labels kind =
  if not (List.exists (fun c -> String.equal c.label label) t.channels) then begin
    let ch = { label; name; labels; kind; data = Array.make t.capacity Float.nan } in
    t.channels <- t.channels @ [ ch ]
  end

let track_counter t ?(labels = []) ?label name =
  let labels = List.sort (fun (a, _) (b, _) -> String.compare a b) labels in
  let label =
    match label with Some l -> l | None -> default_label name labels "/s"
  in
  add_channel t label name labels (KCounter { last = 0 })

let track_gauge t ?(labels = []) ?label name =
  let labels = List.sort (fun (a, _) (b, _) -> String.compare a b) labels in
  let label = match label with Some l -> l | None -> default_label name labels "" in
  add_channel t label name labels KGauge

let track_histogram t ?(labels = []) ?label ~pct name =
  let labels = List.sort (fun (a, _) (b, _) -> String.compare a b) labels in
  let label =
    match label with
    | Some l -> l
    | None -> default_label name labels (Printf.sprintf ".p%g" pct)
  in
  add_channel t label name labels (KHist { pct; snap = None })

let track_fn t ~label f = add_channel t label "" [] (KFn f)

let read_value t ch ~at =
  match ch.kind with
  | KCounter st ->
    let cur =
      match Registry.counter_value t.registry ~labels:ch.labels ch.name with
      | Some v -> v
      | None -> st.last
    in
    let dt_ns = at - t.last_at in
    let v =
      if dt_ns <= 0 then Float.nan
      else float_of_int (cur - st.last) *. 1e9 /. float_of_int dt_ns
    in
    st.last <- cur;
    v
  | KGauge -> (
    match Registry.gauge_value t.registry ~labels:ch.labels ch.name with
    | Some v -> v
    | None -> Float.nan)
  | KHist st -> (
    match Registry.find_histogram t.registry ~labels:ch.labels ch.name with
    | None ->
      st.snap <- None;
      Float.nan
    | Some h ->
      let open Simcore in
      let v =
        match st.snap with
        | Some (h0, s) when h0 == h ->
          if Histogram.count_since h s > 0 then
            float_of_int (Histogram.percentile_since h s st.pct)
          else Float.nan
        | _ ->
          (* First window (or the histogram was re-registered): whole-run
             view so the channel is not blind to pre-existing samples. *)
          if Histogram.count h > 0 then float_of_int (Histogram.percentile h st.pct)
          else Float.nan
      in
      st.snap <- Some (h, Histogram.snapshot h);
      v)
  | KFn f -> f ()

(* Keep even indices plus the newest sample; returns the new length. *)
let compact_floats arr len =
  let j = ref 0 in
  for i = 0 to len - 1 do
    if i land 1 = 0 || i = len - 1 then begin
      arr.(!j) <- arr.(i);
      incr j
    end
  done;
  !j

let compact_ints arr len =
  let j = ref 0 in
  for i = 0 to len - 1 do
    if i land 1 = 0 || i = len - 1 then begin
      arr.(!j) <- arr.(i);
      incr j
    end
  done;
  !j

let sample t ~at =
  if t.skip > 0 then t.skip <- t.skip - 1
  else begin
    if t.len = t.capacity then begin
      let new_len = compact_ints t.times t.len in
      List.iter (fun ch -> ignore (compact_floats ch.data t.len)) t.channels;
      t.len <- new_len;
      t.stride <- t.stride * 2
    end;
    (* Read every channel before bumping shared state: rates and windowed
       percentiles all close their window at the same instant. *)
    let vs = List.map (fun ch -> (ch, read_value t ch ~at)) t.channels in
    List.iter (fun (ch, v) -> ch.data.(t.len) <- v) vs;
    t.times.(t.len) <- at;
    t.len <- t.len + 1;
    t.last_at <- at;
    t.skip <- t.stride - 1
  end

let n_samples t = t.len
let n_channels t = List.length t.channels
let stride t = t.stride
let channel_labels t = List.map (fun c -> c.label) t.channels
let timestamps t = Array.sub t.times 0 t.len

let points t label =
  List.find_opt (fun c -> String.equal c.label label) t.channels
  |> Option.map (fun c -> Array.sub c.data 0 t.len)

let to_json t =
  let times = List.init t.len (fun i -> Json.Int t.times.(i)) in
  let chans =
    List.map
      (fun ch ->
        Json.Obj
          [
            ("label", Json.String ch.label);
            ("points", Json.List (List.init t.len (fun i -> Json.Float ch.data.(i))));
          ])
      t.channels
  in
  Json.Obj
    [
      ("n_samples", Json.Int t.len);
      ("stride", Json.Int t.stride);
      ("capacity", Json.Int t.capacity);
      ("t_ns", Json.List times);
      ("channels", Json.List chans);
    ]
