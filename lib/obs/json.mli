(** Minimal hand-rolled JSON tree + stable encoder.

    The repo deliberately takes no serialization dependency; this covers
    exactly what the observability layer needs.  Encoding is deterministic:
    the same tree always renders to the same bytes, so snapshots from
    identically seeded simulations can be compared byte-for-byte. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** [pretty] adds two-space indentation and newlines; field order is
    preserved as given (callers sort where determinism demands it).
    Non-finite floats encode as [null]. *)

val escape : string -> string
(** JSON string escaping, without the surrounding quotes. *)
