(** Minimal hand-rolled JSON tree + stable encoder.

    The repo deliberately takes no serialization dependency; this covers
    exactly what the observability layer needs.  Encoding is deterministic:
    the same tree always renders to the same bytes, so snapshots from
    identically seeded simulations can be compared byte-for-byte. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** [pretty] adds two-space indentation and newlines; field order is
    preserved as given (callers sort where determinism demands it).
    Non-finite floats encode as [null]. *)

val escape : string -> string
(** JSON string escaping, without the surrounding quotes. *)

val of_string : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed; trailing input is
    an error).  Covers what {!to_string} produces — in particular a number
    with a ['.'], ['e'] or ['E'] parses as [Float] and anything else as
    [Int], so printing and re-parsing a tree is the identity.  Beyond the
    printer's dialect it decodes any [\uXXXX] escape (surrogate pairs
    included) to UTF-8 bytes; unpaired surrogates are an error.  Nesting is
    capped at 512 levels so hostile input fails cleanly instead of
    overflowing the stack.  Errors carry a byte offset. *)
