(** Order-stable views of hash tables for output-feeding code.

    Hash tables iterate in hash order — a function of insertion history and
    stdlib internals that the determinism gate can only catch
    probabilistically.  Anything in the observability layer that renders a
    table into JSON, traces, or time series goes through this module
    instead, so emission order is always key-sorted.  The [stable-iteration]
    lint rule bans [Hashtbl.iter]/[Hashtbl.fold] in output-feeding modules
    and allowlists exactly this one. *)

val sorted_bindings : cmp:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> ('k * 'v) list
(** All bindings sorted by key under [cmp].  For tables with multiple
    bindings per key ([Hashtbl.add]-style shadowing), duplicates appear in
    unspecified relative order — use replace-style tables for anything
    rendered. *)

val sorted_keys : cmp:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> 'k list
(** Deduplicated keys sorted under [cmp]. *)
