(** Bounded in-memory time series over registry instruments.

    A [Series.t] owns a set of named channels, each bound to one registry
    instrument (or an arbitrary closure).  Someone — in practice
    {!Harness.Cluster}, on a [Sim.every] timer — calls [sample] at a fixed
    simulated period; each call appends one point per channel:

    - counters contribute the per-window {e rate} (delta since the previous
      recorded sample, per second of simulated time);
    - gauges are read as-is;
    - histograms contribute a per-window percentile, computed against a
      {!Simcore.Histogram.snapshot} taken at the previous sample, so the
      cumulative histogram never needs resetting;
    - closures ([track_fn]) are called and their result stored.

    Memory is bounded: at most [capacity] samples are retained.  On
    overflow the collection is 2×-decimated — even-indexed samples and the
    newest sample survive — and the effective sampling stride doubles
    (subsequent [sample] calls are swallowed so spacing stays uniform), so
    an arbitrarily long run always fits and always keeps its first and
    last points.  Timestamps are strictly increasing throughout.

    Missing values (instrument not yet registered, empty histogram window,
    channel tracked after sampling began) are [nan]; the JSON encoder
    renders them as [null].  Everything here is driven by the sim clock
    and reads deterministic state, so reruns under the same seed produce
    byte-identical [to_json] output. *)

type t

val create : ?capacity:int -> registry:Registry.t -> unit -> t
(** [capacity] (default 512, min 2) bounds retained samples.  Rates for
    the first recorded sample are measured from simulated time 0 with all
    counters at zero — create the series at the start of the run. *)

val track_counter : t -> ?labels:Registry.labels -> ?label:string -> string -> unit
(** Channel label defaults to ["name{k=v,...}/s"].  Tracking an
    already-present label is a no-op. *)

val track_gauge : t -> ?labels:Registry.labels -> ?label:string -> string -> unit

val track_histogram :
  t -> ?labels:Registry.labels -> ?label:string -> pct:float -> string -> unit
(** Per-window percentile channel, e.g. [~pct:99.].  Label defaults to
    ["name.p99"]. *)

val track_fn : t -> label:string -> (unit -> float) -> unit
(** Arbitrary sampled value; the closure runs once per recorded sample. *)

val sample : t -> at:Simcore.Time_ns.t -> unit
(** Record one sample (or swallow the tick, post-decimation). *)

val n_samples : t -> int
val n_channels : t -> int

val stride : t -> int
(** Current decimation stride: 1 until the first overflow, then doubling. *)

val channel_labels : t -> string list
(** In tracking order. *)

val timestamps : t -> Simcore.Time_ns.t array
(** Copy of the retained sample times, oldest first. *)

val points : t -> string -> float array option
(** Retained points of the channel with that label, parallel to
    [timestamps]; [None] for unknown labels. *)

val to_json : t -> Json.t
(** [{"n_samples"; "stride"; "capacity"; "t_ns"; "channels": [{"label";
    "points"}]}] — [nan] points render as [null]. *)
