(** Cluster-health monitor: quorum margins, availability accumulator,
    health-transition events.

    [lib/obs] knows nothing about quorum formulas or volumes, so the
    caller (in practice {!Harness.Cluster}, each sampler tick) computes a
    {!sample} from its own state — per-PG segment counts, quorum margins,
    AZ+1 tolerance, plus volume-level gaps — and feeds it to [observe].
    This module then does three generic things:

    - {e edge detection}: per PG, transitions of write-quorum satisfiability
      and AZ+1 tolerance fire exactly one {!Trace.health_edge} event each on
      the shared trace ring (a PG never seen before is presumed healthy);
    - {e availability accounting}: simulated time is integrated into
      write-available vs not, using the previous sample's state over each
      inter-sample interval — [write_available_fraction] is the paper's §4
      "fraction of time the volume can take writes", computed online;
    - {e exposure}: the latest sample and the accumulators render to JSON
      for snapshots and the CLI.

    Margin conventions: [write_margin]/[read_margin] is the number of
    {e additional} currently-healthy segments whose loss the quorum still
    tolerates — 0 means exactly satisfied, [-1] means already unsatisfied.
    [az_plus_one] is the paper's §2.1 target: the read quorum survives the
    loss of one whole AZ plus one more segment. *)

type pg_sample = {
  pg : int;
  total : int;  (** Roster size (e.g. 6 for V6). *)
  reachable : int;  (** Alive segments. *)
  ack_current : int;  (** Alive segments whose durable point covers PGCL. *)
  write_margin : int;
  read_margin : int;
  az_plus_one : bool;
  epoch : int;  (** Membership epoch. *)
}

type volume_sample = {
  vdl_vcl_gap : int;  (** VCL − VDL, in LSN units. *)
  commit_queue_depth : int;
  max_replica_lag : int;  (** max over replicas of VDL − replica VDL, LSN units. *)
}

type sample = {
  at : Simcore.Time_ns.t;
  pgs : pg_sample list;
  volume : volume_sample;
}

val pg_write_ok : pg_sample -> bool
(** [write_margin >= 0]. *)

val sample_write_available : sample -> bool
(** Every PG can take writes. *)

type t

val create : ?trace:Trace.t -> unit -> t
(** Health edges are recorded on [trace] when given (and enabled). *)

val observe : t -> at:Simcore.Time_ns.t -> sample -> unit

val last : t -> sample option

val write_available_fraction : t -> float
(** Fraction of observed simulated time the volume was write-available;
    [1.0] before two observations exist. *)

val observed_ns : t -> Simcore.Time_ns.t
(** Total integrated time (first to latest observation). *)

val transitions : t -> int
(** Health edges fired since creation. *)

val to_json : t -> Json.t
(** Accumulators plus, once observed, a ["current"] object with the latest
    per-PG and volume-level sample. *)
