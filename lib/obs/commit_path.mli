(** Per-record commit-path stage tracking.

    Components [mark] each record (by LSN) as it crosses a {!Trace} commit
    stage; this module keeps a bounded table of per-LSN stage timelines and
    folds every observed transition into per-stage latency histograms
    registered as ["commit_stage_ns"] with a ["stage"] label of the form
    ["a→b"] in the shared {!Registry}.

    Two transitions are always recorded in addition to the
    nearest-preceding-stage pair, because they carry the paper's headline
    decomposition (§2.3): [boxcar_flushed→node_acked] (network + storage
    foreground) and [vcl_advanced→commit_acked] (commit-queue drain).

    Marks are idempotent per (LSN, stage): only the first time is kept, so
    a record flushed to six segments gets one [Boxcar_flushed] and its
    first covering ack one [Node_acked].  Timelines are evicted
    oldest-first beyond [capacity]; marks on evicted or never-allocated
    LSNs are dropped.  Marking also emits a typed trace event when the
    trace is enabled. *)

type t

val create : ?capacity:int -> registry:Registry.t -> trace:Trace.t -> unit -> t
(** [capacity] bounds live per-LSN timelines (default 16384). *)

val mark :
  t ->
  at:Simcore.Time_ns.t ->
  lsn:int ->
  ?member:int ->
  ?pg:int ->
  Trace.commit_stage ->
  unit
(** [pg] tags the record's protection group on its timeline; the first
    non-negative value seen for an LSN is latched (call sites deep in the
    volume core don't all know it). *)

val live_timelines : t -> int

val timelines : t -> (int * int * Simcore.Time_ns.t array) list
(** Live per-LSN timelines as [(lsn, pg, stage_times)], sorted by LSN;
    [stage_times] is indexed by {!Trace.stage_index} with [-1] for stages
    not (yet) observed, [pg = -1] when never learned.  Basis for the
    Chrome-trace exporter. *)

val clear : t -> unit
(** Drop all in-flight timelines (instance crash); histograms persist. *)

val stage_label : Trace.commit_stage -> Trace.commit_stage -> string
(** ["a→b"], the ["stage"] label value used in the registry. *)
