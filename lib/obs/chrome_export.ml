let pid = 1

(* Lane 0 is the volume-level lane; pg [g] maps to tid [g + 1]. *)
let tid_of_pg pg = if pg < 0 then 0 else pg + 1

let us_of_ns ns = float_of_int ns /. 1000.0

let base ~name ~ph ~ts ~tid rest =
  Json.Obj
    ([
       ("name", Json.String name);
       ("ph", Json.String ph);
       ("ts", Json.Float ts);
       ("pid", Json.Int pid);
       ("tid", Json.Int tid);
     ]
    @ rest)

let thread_name_meta tid label =
  base ~name:"thread_name" ~ph:"M" ~ts:0.0 ~tid
    [ ("args", Json.Obj [ ("name", Json.String label) ]) ]

let span ~name ~id ~tid ~ts_b ~ts_e acc =
  let mk ph ts =
    base ~name ~ph ~ts ~tid
      [ ("cat", Json.String "commit"); ("id", Json.Int id) ]
  in
  mk "e" ts_e :: mk "b" ts_b :: acc

(* One umbrella span per commit plus one sub-span per adjacent observed
   stage pair, all sharing id = lsn so Perfetto nests them in one track. *)
let timeline_events acc (lsn, pg, stages) =
  let tid = tid_of_pg pg in
  let observed =
    List.filter (fun i -> stages.(i) >= 0) (List.init Trace.n_stages Fun.id)
  in
  match observed with
  | [] | [ _ ] -> acc
  | first :: _ ->
    let last = List.fold_left (fun _ i -> i) first observed in
    let acc =
      span
        ~name:(Printf.sprintf "commit lsn=%d" lsn)
        ~id:lsn ~tid ~ts_b:(us_of_ns stages.(first)) ~ts_e:(us_of_ns stages.(last))
        acc
    in
    let rec pairs acc = function
      | a :: (b :: _ as rest) ->
        let acc =
          span
            ~name:(Trace.stage_name (Trace.stage_of_index b))
            ~id:lsn ~tid ~ts_b:(us_of_ns stages.(a)) ~ts_e:(us_of_ns stages.(b))
            acc
        in
        pairs acc rest
      | _ -> acc
    in
    pairs acc observed

let instant ~name ~at ~tid args =
  base ~name ~ph:"i" ~ts:(us_of_ns at) ~tid
    (("s", Json.String "t")
    :: (match args with [] -> [] | _ -> [ ("args", Json.Obj args) ]))

let ring_event acc (at, ev) =
  match ev with
  | Trace.Commit _ -> acc (* covered by the commit-path timelines *)
  | Trace.Read { pg; kind } ->
    instant
      ~name:("read " ^ Trace.read_kind_name kind)
      ~at ~tid:(tid_of_pg pg) []
    :: acc
  | Trace.Recovery { epoch; phase } ->
    instant
      ~name:("recovery " ^ Trace.recovery_phase_name phase)
      ~at ~tid:0
      [ ("epoch", Json.Int epoch) ]
    :: acc
  | Trace.Membership { pg; epoch; phase } ->
    instant
      ~name:("membership " ^ Trace.membership_phase_name phase)
      ~at ~tid:(tid_of_pg pg)
      [ ("epoch", Json.Int epoch) ]
    :: acc
  | Trace.Health { pg; edge } ->
    instant ~name:(Trace.health_edge_name edge) ~at ~tid:(tid_of_pg pg) [] :: acc

let to_json ctx =
  let timelines = Commit_path.timelines (Ctx.commit_path ctx) in
  let ring = Trace.events (Ctx.trace ctx) in
  (* Lanes: volume lane 0 always, plus every pg seen anywhere. *)
  let pgs = Hashtbl.create 16 in
  List.iter (fun (_, pg, _) -> if pg >= 0 then Hashtbl.replace pgs pg ()) timelines;
  List.iter
    (fun (_, ev) ->
      match ev with
      | Trace.Read { pg; _ }
      | Trace.Membership { pg; _ }
      | Trace.Health { pg; _ }
      | Trace.Commit { pg; _ } ->
        if pg >= 0 then Hashtbl.replace pgs pg ()
      | Trace.Recovery _ -> ())
    ring;
  let lanes =
    thread_name_meta 0 "volume"
    :: (Stable.sorted_keys ~cmp:Int.compare pgs
       |> List.map (fun pg ->
              thread_name_meta (tid_of_pg pg) (Printf.sprintf "pg %d" pg)))
  in
  let spans = List.rev (List.fold_left timeline_events [] timelines) in
  let instants = List.rev (List.fold_left ring_event [] ring) in
  Json.Obj
    [
      ("traceEvents", Json.List (lanes @ spans @ instants));
      ("displayTimeUnit", Json.String "ms");
    ]

let to_string ?(pretty = false) ctx = Json.to_string ~pretty (to_json ctx)
