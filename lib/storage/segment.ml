open Wal
open Quorum

type t = {
  pg : Pg_id.t;
  seg : Member_id.t;
  kind : Membership.segment_kind;
  mutable hot_log : Hot_log.t;
  store : Block_store.t;
  mutable coalesced : Lsn.t;
  mutable volume_epoch : Epoch.t;
  mutable membership_epoch : Epoch.t;
  mutable pgmrpl : Lsn.t;
  mutable backup_upto : Lsn.t;
  mutable pgcl_known : Lsn.t; (* writer-advertised group durable point *)
  mutable peers : (Member_id.t * Simnet.Addr.t) list;
  (* Durable transaction outcomes observed in received redo: survives
     hot-log GC the way txn-system pages do in the production system. *)
  txn_status : (int, Lsn.t * bool) Hashtbl.t; (* txn -> (lsn, is_abort) *)
}

let create ~pg ~seg ~kind =
  {
    pg;
    seg;
    kind;
    hot_log = Hot_log.create ();
    store = Block_store.create ();
    coalesced = Lsn.none;
    volume_epoch = Epoch.initial;
    membership_epoch = Epoch.initial;
    pgmrpl = Lsn.none;
    backup_upto = Lsn.none;
    pgcl_known = Lsn.none;
    peers = [];
    txn_status = Hashtbl.create 64;
  }

let pg t = t.pg
let seg_id t = t.seg
let kind t = t.kind
let hot_log t = t.hot_log
let store t = t.store
let scl t = Hot_log.scl t.hot_log
let coalesced_upto t = t.coalesced
let volume_epoch t = t.volume_epoch
let membership_epoch t = t.membership_epoch
let pgmrpl t = t.pgmrpl
let backup_upto t = t.backup_upto
let set_backup_upto t lsn = if Lsn.(lsn > t.backup_upto) then t.backup_upto <- lsn
let peers t = t.peers
let set_peers t peers = t.peers <- peers
let pgcl_known t = t.pgcl_known

let note_pgcl t pgcl =
  if Lsn.(pgcl > t.pgcl_known) then t.pgcl_known <- pgcl

let check_epochs t (e : Protocol.epochs) =
  (* Newer volume epochs are adopted: only a writer that fenced the old one
     through a quorum write can hold a higher epoch. *)
  if Epoch.compare e.volume t.volume_epoch > 0 then t.volume_epoch <- e.volume;
  if Epoch.is_stale e.volume ~current:t.volume_epoch then
    Error (Protocol.Stale_volume_epoch t.volume_epoch)
  else if Epoch.is_stale e.membership ~current:t.membership_epoch then
    Error (Protocol.Stale_membership_epoch t.membership_epoch)
  else Ok ()

let install_membership t ~epoch ~peers =
  if Epoch.compare epoch t.membership_epoch >= 0 then begin
    t.membership_epoch <- epoch;
    t.peers <- peers
  end

let install_volume_epoch t epoch =
  if Epoch.compare epoch t.volume_epoch > 0 then t.volume_epoch <- epoch

let note_status t (r : Log_record.t) =
  match r.op with
  | Log_record.Commit ->
    Hashtbl.replace t.txn_status (Txn_id.to_int r.txn) (r.lsn, false)
  | Log_record.Abort ->
    Hashtbl.replace t.txn_status (Txn_id.to_int r.txn) (r.lsn, true)
  | Log_record.Put _ | Log_record.Delete _ | Log_record.Noop -> ()

let insert_records t records =
  List.iter
    (fun r ->
      match Hot_log.insert t.hot_log r with
      | Hot_log.Accepted -> note_status t r
      | Hot_log.Duplicate | Hot_log.Annulled -> ())
    records;
  scl t

let txn_statuses t =
  Hashtbl.fold
    (fun txn (lsn, is_abort) acc -> (Txn_id.of_int txn, lsn, is_abort) :: acc)
    t.txn_status []

let merge_statuses t statuses =
  List.iter
    (fun (txn, lsn, is_abort) ->
      Hashtbl.replace t.txn_status (Txn_id.to_int txn) (lsn, is_abort))
    statuses

let retained_from t = Hot_log.dropped_upto t.hot_log

let coalesce t =
  match t.kind with
  | Membership.Tail -> 0
  | Membership.Full ->
    let to_apply = Hot_log.chained_records_above t.hot_log t.coalesced in
    List.iter (fun r -> Block_store.apply t.store r) to_apply;
    if Lsn.(scl t > t.coalesced) then t.coalesced <- scl t;
    List.length to_apply

let read_block t ~block ~as_of =
  match t.kind with
  | Membership.Tail -> Error Protocol.Tail_segment
  | Membership.Full ->
    (* Acceptance: the segment chain must cover every group record at or
       below [as_of].  [as_of] is a volume LSN; the last group record at or
       below it is bounded by the group's durable point, so
       [scl >= min (as_of, pgcl_known)] suffices (records between PGCL and
       VCL for this group cannot exist by VCL's definition). *)
    if Lsn.(scl t < Lsn.min as_of t.pgcl_known) then
      Error (Protocol.Beyond_scl (scl t))
    else if Lsn.(as_of < t.pgmrpl) then
      Error (Protocol.Below_gc_floor t.pgmrpl)
    else begin
      ignore (coalesce t : int);
      let snapshot = Block_store.block_snapshot t.store block in
      let entries =
        List.filter_map
          (fun (key, versions) ->
            match
              List.filter
                (fun (v : Block_store.version) -> Lsn.(v.lsn <= as_of))
                versions
            with
            | [] -> None
            | vs -> Some (key, vs))
          snapshot
      in
      Ok
        {
          Protocol.image_block = block;
          image_as_of = as_of;
          image_entries = entries;
        }
    end

let truncate t ~above ~upto =
  let dropped_log = Hot_log.annul_range t.hot_log ~above ~upto in
  let dropped_versions =
    if Lsn.(t.coalesced > above) then begin
      let d = Block_store.rollback_above t.store above in
      t.coalesced <- above;
      d
    end
    else 0
  in
  dropped_log + dropped_versions

let advance_pgmrpl t floor =
  if Lsn.(floor > t.pgmrpl) then begin
    t.pgmrpl <- floor;
    let is_committed txn =
      match Hashtbl.find_opt t.txn_status (Txn_id.to_int txn) with
      | Some (scn, false) -> Lsn.(scn <= floor)
      | Some (_, true) | None -> false
    in
    Block_store.gc t.store ~keep_at_or_above:floor ~is_committed
  end
  else 0

let gc_hot_log t =
  let materialized =
    match t.kind with Membership.Full -> t.coalesced | Membership.Tail -> scl t
  in
  let floor = Lsn.min t.backup_upto (Lsn.min materialized t.pgmrpl) in
  if Lsn.is_none floor then 0 else Hot_log.drop_below t.hot_log ~upto:floor

let hydrate_export t ~since ~want_blocks =
  let records = Hot_log.chained_records_above t.hot_log since in
  let blocks =
    if want_blocks then
      List.map
        (fun b -> (b, Block_store.block_snapshot t.store b))
        (Block_store.blocks t.store)
    else []
  in
  (records, blocks)

let hydrate_import t ~records ~blocks ~donor_scl ~coalesced =
  (* Adopt the donor's chain position.  If the donor retains records, the
     anchor is the link below its oldest retained record; if its hot log
     was fully GCed (every record below its floor), the donor's SCL itself
     is the anchor — everything below it was durable before it could be
     collected. *)
  let anchor =
    match records with
    | first :: _ -> first.Log_record.prev_segment
    | [] -> donor_scl
  in
  if Lsn.(anchor > scl t) then t.hot_log <- Hot_log.create_anchored anchor;
  ignore (insert_records t records : Lsn.t);
  (* A donor's block snapshots are authoritative only up to the donor's
     coalesce point.  Once this segment has materialized past that point —
     e.g. a replacement that anchored off an earlier pull and has been
     applying the live write stream since — installing them would roll
     every block back to the donor's staler image while our own coalesce
     watermark stays high, so the overwritten versions would never be
     re-applied from the hot log: silent loss of acknowledged writes.
     Stale snapshots are therefore discarded; a scrub repair that hits
     this guard keeps its corruption for the next round instead of
     trading it for data loss. *)
  if blocks <> [] && Lsn.(coalesced > t.coalesced) then begin
    List.iter
      (fun (block, snapshot) -> Block_store.load_snapshot t.store block snapshot)
      blocks;
    t.coalesced <- coalesced
  end;
  (match t.kind with
  | Membership.Full -> ignore (coalesce t : int)
  | Membership.Tail -> ())

let scrub t =
  List.filter
    (fun b -> not (Block_store.verify t.store b))
    (Block_store.blocks t.store)

let bytes_stored t =
  Hot_log.bytes_stored t.hot_log + Block_store.bytes_used t.store
