(** Wire protocol of the Aurora data plane.

    One variant covers every message exchanged between the writer instance,
    read replicas, and storage nodes, so a single simulated network carries
    all traffic: the asynchronous write path (§2.2–2.3), direct block reads
    (§3.1), peer-to-peer gossip (Figure 2 step 4), crash recovery
    (§2.4), epoch installation and membership updates (§2.4, §4.1), segment
    repair/hydration (§4.2), the PGMRPL garbage-collection floor (§3.4),
    and the writer→replica physical replication stream (§3.2–3.4).

    Baseline protocols (2PC, Paxos) define their own message types and run
    on their own network instances. *)

open Wal
open Quorum

type epochs = { volume : Epoch.t; membership : Epoch.t }
(** Every data-plane request carries the client's view of both fencing
    epochs; storage nodes reject stale ones (§2.4, §4.1) — the "changing
    the locks" mechanism that replaces lease waits. *)

(** Why a storage node refused a request. *)
type reject_reason =
  | Stale_volume_epoch of Epoch.t  (** Carries the node's current epoch. *)
  | Stale_membership_epoch of Epoch.t
  | Not_a_member

(** Why a direct block read could not be served by this segment. *)
type read_error =
  | Rejected of reject_reason
  | Tail_segment  (** Tail segments store no data blocks (§4.2). *)
  | Beyond_scl of Lsn.t
      (** The segment's SCL; the caller should try another segment. *)
  | Below_gc_floor of Lsn.t  (** PGMRPL already advanced past [as_of]. *)

type block_image = {
  image_block : Block_id.t;
  image_as_of : Lsn.t;
  image_entries : (string * Block_store.version list) list;
}
(** A materialized block image: every key with its (newest-first) version
    chain at or below the requested LSN. *)

type mtr_chunk = { chunk_records : Log_record.t list }
(** One atomically applied MTR chunk of the replication stream (§3.3). *)

(** The messages themselves.  Groups, in order: write path (instance →
    storage node), read path, same-PG gossip, crash recovery, epoch
    installation, membership, repair/hydration, GC floor, the physical
    replication stream, and replica read-point feedback. *)
type t =
  | Write_batch of {
      pg : Pg_id.t;
      seg : Member_id.t;
      records : Log_record.t list;
      pgcl : Lsn.t;
          (** The group's durable point as known by the writer: lets the
              segment bound read acceptance without any consensus round. *)
      epochs : epochs;
    }
  | Write_ack of { pg : Pg_id.t; seg : Member_id.t; scl : Lsn.t }
      (** Async ack carrying the segment's new SCL (§2.2). *)
  | Write_reject of { pg : Pg_id.t; seg : Member_id.t; reason : reject_reason }
  | Read_block of {
      req : int;
      pg : Pg_id.t;
      seg : Member_id.t;
      block : Block_id.t;
      as_of : Lsn.t;
      epochs : epochs;
    }
      (** Direct (non-quorum) read from the one segment the bookkeeping
          says is sufficiently caught up (§3.1). *)
  | Read_reply of {
      req : int;
      seg : Member_id.t;
      result : (block_image, read_error) result;
    }
  | Gossip_pull of {
      pg : Pg_id.t;
      from_seg : Member_id.t;
      scl : Lsn.t;
      epochs : epochs;
    }
      (** Peer asks a same-PG peer for records above its SCL (Figure 2
          step 4). *)
  | Gossip_reply of { pg : Pg_id.t; records : Log_record.t list }
  | Scl_probe of { req : int; pg : Pg_id.t; seg : Member_id.t; epochs : epochs }
      (** Recovery: read-quorum poll for each segment's SCL (§2.4). *)
  | Scl_reply of {
      req : int;
      pg : Pg_id.t;
      seg : Member_id.t;
      scl : Lsn.t;
      highest : Lsn.t;
    }
  | Truncate of {
      pg : Pg_id.t;
      seg : Member_id.t;
      above : Lsn.t;
      upto : Lsn.t;
      pgcl : Lsn.t;  (** The group's recovered chain tail. *)
      epochs : epochs;
    }
      (** Register the recovery truncation range annulling records in
          [(above, upto]] (§2.4, Figure 4). *)
  | Truncate_ack of { pg : Pg_id.t; seg : Member_id.t }
  | Epoch_update of { req : int; pg : Pg_id.t; seg : Member_id.t; epochs : epochs }
      (** Install new epochs — the "write" that changes the locks (§2.4). *)
  | Epoch_ack of { req : int; pg : Pg_id.t; seg : Member_id.t }
  | Membership_update of {
      pg : Pg_id.t;
      epoch : Epoch.t;
      peers : (Member_id.t * Simnet.Addr.t) list;
          (** Full roster incl. in-flight replacements, for gossip and
              repair. *)
    }
      (** Membership-epoch bump from the monitor/instance (§4.1). *)
  | Hydrate_pull of {
      req : int;
      pg : Pg_id.t;
      from_seg : Member_id.t;
      since : Lsn.t;
      want_blocks : bool;
      epochs : epochs;
    }
      (** A fresh replacement segment pulls state from a peer (§4.2). *)
  | Hydrate_reply of {
      req : int;
      pg : Pg_id.t;
      records : Log_record.t list;
      blocks : (Block_id.t * (string * Block_store.version list) list) list;
      scl : Lsn.t;
      coalesced : Lsn.t;  (** Responder's materialization point. *)
      retained_from : Lsn.t;  (** Hot-log GC floor: no records at/below. *)
      statuses : (Txn_id.t * Lsn.t * bool) list;
          (** Durable txn outcomes: (txn, record LSN, is_abort) — the
              segment-materialized "transaction system" state that survives
              hot-log GC, standing in for InnoDB's txn-system pages. *)
    }
  | Pgmrpl_update of {
      pg : Pg_id.t;
      seg : Member_id.t;
      floor : Lsn.t;
      pgcl : Lsn.t;  (** Piggybacked durable point, see {!Write_batch}. *)
    }
      (** Advance the protection group's minimum read point (§3.4). *)
  | Redo_stream of {
      chunks : mtr_chunk list;
      vdl : Lsn.t;  (** Writer's VDL as of send: replica apply ceiling. *)
      commits : (Txn_id.t * Lsn.t) list;
          (** Commit notifications (SCNs). *)
      volume_epoch : Epoch.t;
    }
      (** Writer → replica physical replication (§3.2–3.4). *)
  | Replica_feedback of { read_floor : Lsn.t }
      (** Replica → writer read-point feedback for PGMRPL (§3.4). *)

val records_bytes : Log_record.t list -> int
(** Summed simulated wire footprint of a record batch. *)

val image_bytes : block_image -> int
(** Estimated wire size of a materialized block image. *)

val bytes : t -> int
(** Estimated wire size of a message, used for network byte accounting. *)

(** The flight recorder's reduced view of a message: bare kind tag,
    governing protection group, and the LSN range it carries — the
    payload range for record-carrying messages, the watermark itself
    otherwise ([-1] = no LSN / no PG). *)
type info = {
  kind : Recorder.Event.msg_kind;
  pg : int;
  lsn_lo : int;
  lsn_hi : int;
}

val describe : t -> info
(** Translate a wire message for [Recorder] hook points.  Pure; performs
    no LSN arithmetic, only integer imaging. *)

val pp_reject_reason : Format.formatter -> reject_reason -> unit
val pp_read_error : Format.formatter -> read_error -> unit
