(* Wire protocol between database instances, read replicas, and storage
   nodes.  One variant covers the whole Aurora data plane so a single
   simulated network carries all traffic:

   - the asynchronous write path (Write_batch / Write_ack, §2.2-2.3),
   - direct block reads (Read_block / Read_reply, §3.1),
   - peer-to-peer gossip (Gossip_pull / Gossip_reply, Figure 2 step 4),
   - crash recovery (Scl_probe / Scl_reply / Truncate, §2.4),
   - epoch installation and membership updates (§2.4, §4.1),
   - segment repair / hydration (§4.2),
   - the PGMRPL garbage-collection floor (§3.4),
   - the writer->replica physical replication stream (§3.2-3.4).

   Baseline protocols (2PC, Paxos) define their own message types and run on
   their own network instances. *)

open Wal
open Quorum

(* Every data-plane request carries the client's view of both fencing
   epochs; storage nodes reject stale ones (§2.4, §4.1). *)
type epochs = { volume : Epoch.t; membership : Epoch.t }

type reject_reason =
  | Stale_volume_epoch of Epoch.t (* current *)
  | Stale_membership_epoch of Epoch.t
  | Not_a_member

type read_error =
  | Rejected of reject_reason
  | Tail_segment (* tail segments store no data blocks (§4.2) *)
  | Beyond_scl of Lsn.t (* segment's SCL; caller should try another *)
  | Below_gc_floor of Lsn.t (* PGMRPL already advanced past as_of *)

(* A materialized block image: every key with its (newest-first) version
   chain at or below the requested LSN. *)
type block_image = {
  image_block : Block_id.t;
  image_as_of : Lsn.t;
  image_entries : (string * Block_store.version list) list;
}

(* One atomically applied MTR chunk of the replication stream (§3.3). *)
type mtr_chunk = { chunk_records : Log_record.t list }

type t =
  (* -- write path: instance -> storage node -- *)
  | Write_batch of {
      pg : Pg_id.t;
      seg : Member_id.t;
      records : Log_record.t list;
      pgcl : Lsn.t;
          (* the group's durable point as known by the writer: lets the
             segment bound read acceptance without any consensus round *)
      epochs : epochs;
    }
  | Write_ack of { pg : Pg_id.t; seg : Member_id.t; scl : Lsn.t }
  | Write_reject of { pg : Pg_id.t; seg : Member_id.t; reason : reject_reason }
  (* -- read path: instance/replica -> storage node -- *)
  | Read_block of {
      req : int;
      pg : Pg_id.t;
      seg : Member_id.t;
      block : Block_id.t;
      as_of : Lsn.t;
      epochs : epochs;
    }
  | Read_reply of {
      req : int;
      seg : Member_id.t;
      result : (block_image, read_error) result;
    }
  (* -- gossip: storage node <-> storage node (same PG) -- *)
  | Gossip_pull of {
      pg : Pg_id.t;
      from_seg : Member_id.t;
      scl : Lsn.t;
      epochs : epochs;
    }
  | Gossip_reply of { pg : Pg_id.t; records : Log_record.t list }
  (* -- crash recovery: instance -> storage node (§2.4) -- *)
  | Scl_probe of { req : int; pg : Pg_id.t; seg : Member_id.t; epochs : epochs }
  | Scl_reply of {
      req : int;
      pg : Pg_id.t;
      seg : Member_id.t;
      scl : Lsn.t;
      highest : Lsn.t;
    }
  | Truncate of {
      pg : Pg_id.t;
      seg : Member_id.t;
      above : Lsn.t;
      upto : Lsn.t;
      pgcl : Lsn.t; (* the group's recovered chain tail *)
      epochs : epochs;
    }
  | Truncate_ack of { pg : Pg_id.t; seg : Member_id.t }
  (* -- epoch installation: the "write" that changes the locks (§2.4) -- *)
  | Epoch_update of { req : int; pg : Pg_id.t; seg : Member_id.t; epochs : epochs }
  | Epoch_ack of { req : int; pg : Pg_id.t; seg : Member_id.t }
  (* -- membership: monitor/instance -> storage node (§4.1) -- *)
  | Membership_update of {
      pg : Pg_id.t;
      epoch : Epoch.t;
      peers : (Member_id.t * Simnet.Addr.t) list;
          (* full roster incl. in-flight replacements, for gossip/repair *)
    }
  (* -- repair / hydration of a fresh segment (§4.2) -- *)
  | Hydrate_pull of {
      req : int;
      pg : Pg_id.t;
      from_seg : Member_id.t;
      since : Lsn.t;
      want_blocks : bool;
      epochs : epochs;
    }
  | Hydrate_reply of {
      req : int;
      pg : Pg_id.t;
      records : Log_record.t list;
      blocks : (Block_id.t * (string * Block_store.version list) list) list;
      scl : Lsn.t;
      coalesced : Lsn.t; (* responder's materialization point *)
      retained_from : Lsn.t; (* hot-log GC floor: no records at/below *)
      statuses : (Txn_id.t * Lsn.t * bool) list;
          (* durable txn outcomes: (txn, record LSN, is_abort) — the
             segment-materialized "transaction system" state that survives
             hot-log GC, standing in for InnoDB's txn-system pages *)
    }
  (* -- GC floor (§3.4) -- *)
  | Pgmrpl_update of {
      pg : Pg_id.t;
      seg : Member_id.t;
      floor : Lsn.t;
      pgcl : Lsn.t; (* piggybacked durable point, see Write_batch *)
    }
  (* -- physical replication stream: writer -> replica (§3.2-3.4) -- *)
  | Redo_stream of {
      chunks : mtr_chunk list;
      vdl : Lsn.t; (* writer's VDL as of send: replica apply ceiling *)
      commits : (Txn_id.t * Lsn.t) list; (* commit notifications (SCNs) *)
      volume_epoch : Epoch.t;
    }
  (* -- replica -> writer: read-point feedback for PGMRPL (§3.4) -- *)
  | Replica_feedback of { read_floor : Lsn.t }

let records_bytes records =
  List.fold_left (fun acc (r : Log_record.t) -> acc + r.size_bytes) 0 records

let image_bytes img =
  List.fold_left
    (fun acc (key, versions) ->
      List.fold_left
        (fun acc (v : Block_store.version) ->
          acc + String.length key
          + (match v.value with Some s -> String.length s | None -> 0)
          + 24)
        acc versions)
    64 img.image_entries

(* Estimated wire size, used for network byte accounting. *)
let bytes = function
  | Write_batch { records; _ } -> 64 + records_bytes records
  | Write_ack _ | Write_reject _ -> 48
  | Read_block _ -> 64
  | Read_reply { result = Ok img; _ } -> image_bytes img
  | Read_reply { result = Error _; _ } -> 48
  | Gossip_pull _ -> 48
  | Gossip_reply { records; _ } -> 64 + records_bytes records
  | Scl_probe _ -> 48
  | Scl_reply _ -> 64
  | Truncate _ | Truncate_ack _ -> 64
  | Epoch_update _ | Epoch_ack _ -> 48
  | Membership_update { peers; _ } -> 64 + (List.length peers * 16)
  | Hydrate_pull _ -> 64
  | Hydrate_reply { records; blocks; statuses; _ } ->
    64 + records_bytes records
    + (List.length statuses * 24)
    + List.fold_left
        (fun acc (block, snapshot) ->
          acc
          + image_bytes
              { image_block = block; image_as_of = Lsn.none; image_entries = snapshot })
        0 blocks
  | Pgmrpl_update _ -> 48
  | Redo_stream { chunks; commits; _ } ->
    64
    + List.fold_left (fun acc c -> acc + records_bytes c.chunk_records) 0 chunks
    + (List.length commits * 16)
  | Replica_feedback _ -> 48

(* ------------------------------------------------ flight-recorder view -- *)

(* The recorder's reduced view of a message: bare kind tag, governing PG,
   and the LSN range it carries — the payload range for record-carrying
   messages, the watermark itself otherwise ([-1] = no LSN / no PG). *)
type info = {
  kind : Recorder.Event.msg_kind;
  pg : int;
  lsn_lo : int;
  lsn_hi : int;
}

let lsn_image lsn = if Lsn.is_none lsn then -1 else Lsn.to_int lsn

let record_range records =
  match Log_record.lsn_range records with
  | None -> (-1, -1)
  | Some (lo, hi) -> (lsn_image lo, lsn_image hi)

let point lsn =
  let v = lsn_image lsn in
  (v, v)

let describe msg =
  let mk kind p (lsn_lo, lsn_hi) = { kind; pg = p; lsn_lo; lsn_hi } in
  let no_pg = -1 in
  match msg with
  | Write_batch { pg; records; _ } ->
    mk Recorder.Event.Write_batch (Pg_id.to_int pg) (record_range records)
  | Write_ack { pg; scl; _ } ->
    mk Recorder.Event.Write_ack (Pg_id.to_int pg) (point scl)
  | Write_reject { pg; _ } ->
    mk Recorder.Event.Write_reject (Pg_id.to_int pg) (-1, -1)
  | Read_block { pg; as_of; _ } ->
    mk Recorder.Event.Read_block (Pg_id.to_int pg) (point as_of)
  | Read_reply _ -> mk Recorder.Event.Read_reply no_pg (-1, -1)
  | Gossip_pull { pg; scl; _ } ->
    mk Recorder.Event.Gossip_pull (Pg_id.to_int pg) (point scl)
  | Gossip_reply { pg; records } ->
    mk Recorder.Event.Gossip_reply (Pg_id.to_int pg) (record_range records)
  | Scl_probe { pg; _ } -> mk Recorder.Event.Scl_probe (Pg_id.to_int pg) (-1, -1)
  | Scl_reply { pg; scl; highest; _ } ->
    mk Recorder.Event.Scl_reply (Pg_id.to_int pg)
      (lsn_image scl, lsn_image highest)
  | Truncate { pg; above; upto; _ } ->
    mk Recorder.Event.Truncate (Pg_id.to_int pg)
      (lsn_image above, lsn_image upto)
  | Truncate_ack { pg; _ } ->
    mk Recorder.Event.Truncate_ack (Pg_id.to_int pg) (-1, -1)
  | Epoch_update { pg; _ } ->
    mk Recorder.Event.Epoch_update (Pg_id.to_int pg) (-1, -1)
  | Epoch_ack { pg; _ } -> mk Recorder.Event.Epoch_ack (Pg_id.to_int pg) (-1, -1)
  | Membership_update { pg; _ } ->
    mk Recorder.Event.Membership_update (Pg_id.to_int pg) (-1, -1)
  | Hydrate_pull { pg; since; _ } ->
    mk Recorder.Event.Hydrate_pull (Pg_id.to_int pg) (point since)
  | Hydrate_reply { pg; records; scl; _ } ->
    let range =
      match records with [] -> point scl | _ -> record_range records
    in
    mk Recorder.Event.Hydrate_reply (Pg_id.to_int pg) range
  | Pgmrpl_update { pg; floor; _ } ->
    mk Recorder.Event.Pgmrpl_update (Pg_id.to_int pg) (point floor)
  | Redo_stream { chunks; vdl; _ } ->
    let records = List.concat_map (fun c -> c.chunk_records) chunks in
    let range =
      match records with [] -> point vdl | _ -> record_range records
    in
    mk Recorder.Event.Redo_stream no_pg range
  | Replica_feedback { read_floor } ->
    mk Recorder.Event.Replica_feedback no_pg (point read_floor)

let pp_reject_reason fmt = function
  | Stale_volume_epoch e -> Format.fprintf fmt "stale volume epoch (current %a)" Epoch.pp e
  | Stale_membership_epoch e ->
    Format.fprintf fmt "stale membership epoch (current %a)" Epoch.pp e
  | Not_a_member -> Format.pp_print_string fmt "not a member"

let pp_read_error fmt = function
  | Rejected r -> pp_reject_reason fmt r
  | Tail_segment -> Format.pp_print_string fmt "tail segment"
  | Beyond_scl scl -> Format.fprintf fmt "beyond SCL %a" Lsn.pp scl
  | Below_gc_floor f -> Format.fprintf fmt "below GC floor %a" Lsn.pp f
