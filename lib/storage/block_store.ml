open Wal

type version = { value : string option; txn : Txn_id.t; lsn : Lsn.t }

type entry = {
  keys : (string, version list) Hashtbl.t;
  mutable stored_checksum : int;
}

type t = {
  table : entry Block_id.Tbl.t;
  mutable applied : Lsn.t;
  mutable nversions : int;
  mutable bytes : int;
}

let create () =
  { table = Block_id.Tbl.create 64; applied = Lsn.none; nversions = 0; bytes = 0 }

let entry_of t block =
  match Block_id.Tbl.find_opt t.table block with
  | Some e -> e
  | None ->
    let e = { keys = Hashtbl.create 8; stored_checksum = 0 } in
    Block_id.Tbl.add t.table block e;
    e

let version_bytes key v =
  String.length key
  + (match v.value with Some s -> String.length s | None -> 0)
  + 24 (* txn + lsn + tag overhead *)

(* Digest of the current (newest-version-per-key) contents.  Combining with
   an order-independent sum keeps it stable across hash-table iteration
   order. *)
let compute_checksum e =
  Hashtbl.fold
    (fun key versions acc ->
      match versions with
      | [] -> acc
      | v :: _ ->
        let h = Simcore.Bits.fnv1a_string key in
        let h =
          match v.value with
          | Some s -> Simcore.Bits.fnv1a_add_string h s
          | None -> Simcore.Bits.fnv1a_add_int h (-1)
        in
        let h = Simcore.Bits.fnv1a_add_int h (Txn_id.to_int v.txn) in
        let h = Simcore.Bits.fnv1a_add_int h (Lsn.to_int v.lsn) in
        acc + h)
    e.keys 0

let refresh_checksum e = e.stored_checksum <- compute_checksum e

let add_version t e key v =
  let prior = match Hashtbl.find_opt e.keys key with Some l -> l | None -> [] in
  Hashtbl.replace e.keys key (v :: prior);
  t.nversions <- t.nversions + 1;
  t.bytes <- t.bytes + version_bytes key v

let apply t (r : Log_record.t) =
  (match r.op with
  | Put { key; value } ->
    let e = entry_of t r.block in
    add_version t e key { value = Some value; txn = r.txn; lsn = r.lsn };
    refresh_checksum e
  | Delete { key } ->
    let e = entry_of t r.block in
    add_version t e key { value = None; txn = r.txn; lsn = r.lsn };
    refresh_checksum e
  | Commit | Abort | Noop -> ());
  if Lsn.(r.lsn > t.applied) then t.applied <- r.lsn

let applied_upto t = t.applied

let versions t block ~key =
  match Block_id.Tbl.find_opt t.table block with
  | None -> []
  | Some e -> ( match Hashtbl.find_opt e.keys key with Some l -> l | None -> [])

let read_at t block ~key ~as_of ~exclude =
  let rec pick = function
    | [] -> None
    | v :: rest ->
      if Lsn.(v.lsn <= as_of) && not (Txn_id.Set.mem v.txn exclude) then Some v
      else pick rest
  in
  pick (versions t block ~key)

let block_snapshot t block =
  match Block_id.Tbl.find_opt t.table block with
  | None -> []
  | Some e -> Hashtbl.fold (fun key vs acc -> (key, vs) :: acc) e.keys []

let load_snapshot t block snapshot =
  (* Remove existing accounting for the block, then install. *)
  (match Block_id.Tbl.find_opt t.table block with
  | None -> ()
  | Some e ->
    Hashtbl.iter
      (fun key vs ->
        List.iter
          (fun v ->
            t.nversions <- t.nversions - 1;
            t.bytes <- t.bytes - version_bytes key v)
          vs)
      e.keys;
    Block_id.Tbl.remove t.table block);
  let e = entry_of t block in
  List.iter
    (fun (key, vs) ->
      Hashtbl.replace e.keys key vs;
      List.iter
        (fun v ->
          t.nversions <- t.nversions + 1;
          t.bytes <- t.bytes + version_bytes key v;
          if Lsn.(v.lsn > t.applied) then t.applied <- v.lsn)
        vs)
    snapshot;
  refresh_checksum e

let rollback_above t bound =
  let dropped = ref 0 in
  Block_id.Tbl.iter
    (fun _ e ->
      let changed = ref false in
      let keys = Hashtbl.fold (fun k _ acc -> k :: acc) e.keys [] in
      List.iter
        (fun key ->
          let vs = Hashtbl.find e.keys key in
          let keep, drop =
            List.partition (fun v -> Lsn.(v.lsn <= bound)) vs
          in
          if drop <> [] then begin
            changed := true;
            List.iter
              (fun v ->
                incr dropped;
                t.nversions <- t.nversions - 1;
                t.bytes <- t.bytes - version_bytes key v)
              drop;
            Hashtbl.replace e.keys key keep
          end)
        keys;
      if !changed then refresh_checksum e)
    t.table;
  if Lsn.(t.applied > bound) then t.applied <- bound;
  !dropped

let gc t ~keep_at_or_above ~is_committed =
  let dropped = ref 0 in
  Block_id.Tbl.iter
    (fun _ e ->
      let changed = ref false in
      let keys = Hashtbl.fold (fun k _ acc -> k :: acc) e.keys [] in
      List.iter
        (fun key ->
          let vs = Hashtbl.find e.keys key in
          (* Versions older than the newest *committed* version at or below
             the floor are unreachable by any legal read view.  Versions of
             transactions whose outcome this segment does not know are kept
             (conservative: an in-flight or elsewhere-committed transaction
             must not lose its data, and an aborted one must not anchor the
             cut). *)
          let rec split kept = function
            | [] -> List.rev kept
            | v :: rest ->
              if Lsn.(v.lsn <= keep_at_or_above) && is_committed v.txn then
                begin
                  List.iter
                    (fun old ->
                      incr dropped;
                      changed := true;
                      t.nversions <- t.nversions - 1;
                      t.bytes <- t.bytes - version_bytes key old)
                    rest;
                  List.rev (v :: kept)
                end
              else split (v :: kept) rest
          in
          Hashtbl.replace e.keys key (split [] vs))
        keys;
      if !changed then refresh_checksum e)
    t.table;
  !dropped

let blocks t = Block_id.Tbl.fold (fun b _ acc -> b :: acc) t.table []
let version_count t = t.nversions
let bytes_used t = t.bytes

let checksum t block =
  match Block_id.Tbl.find_opt t.table block with
  | None -> 0
  | Some e -> e.stored_checksum

let corrupt t block =
  match Block_id.Tbl.find_opt t.table block with
  | None -> false
  | Some e ->
    let victim =
      Hashtbl.fold
        (fun key vs acc ->
          match (acc, vs) with
          | Some _, _ -> acc
          | None, { value = Some _; _ } :: _ -> Some key
          | None, _ -> None)
        e.keys None
    in
    (match victim with
    | None -> false
    | Some key ->
      (match Hashtbl.find e.keys key with
      | ({ value = Some s; _ } as v) :: rest ->
        let flipped =
          if String.length s = 0 then "\x01"
          else begin
            let b = Bytes.of_string s in
            Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 1));
            Bytes.to_string b
          end
        in
        (* Mutate the data but deliberately leave stored_checksum stale. *)
        Hashtbl.replace e.keys key ({ v with value = Some flipped } :: rest);
        true
      | _ -> false))

let verify t block =
  match Block_id.Tbl.find_opt t.table block with
  | None -> true
  | Some e -> compute_checksum e = e.stored_checksum
