(** The Aurora storage node actor (Figure 2).

    Foreground: receive redo, append it durably (disk-modelled), acknowledge
    with the new SCL.  Background, each on its own cadence: peer-to-peer
    gossip to fill hot-log holes, coalescing redo into block images, backup
    of the log/pages to the simulated S3, garbage collection of backed-up
    and superseded state, and checksum scrubbing with peer repair.

    Storage nodes have no vote: any write at a current epoch must be
    accepted (§2.2).  All refusal paths are epoch fencing or data-absence
    conditions, never protocol-level coordination. *)

type config = {
  disk_service : Simcore.Distribution.t;
  disk_per_byte_ns : int;
  gossip_interval : Simcore.Time_ns.t;
  coalesce_interval : Simcore.Time_ns.t;
  backup_interval : Simcore.Time_ns.t;
  gc_interval : Simcore.Time_ns.t;
  scrub_interval : Simcore.Time_ns.t;
  gossip_batch_limit : int;  (** Max records per gossip reply. *)
}

val default_config : config
(** SSD-like disk (lognormal around ~80us + per-byte cost), 100ms gossip,
    50ms coalesce, 1s backup, 500ms GC, 10s scrub. *)

type metrics = {
  mutable write_batches : int;
  mutable records_stored : int;
  mutable duplicates : int;
  mutable rejects : int;
  mutable reads_ok : int;
  mutable reads_refused : int;
  mutable gossip_pulls_served : int;
  mutable gossip_records_sent : int;
  mutable gossip_records_filled : int;
  mutable backups_taken : int;
  mutable hot_log_records_gced : int;
  mutable versions_gced : int;
  mutable scrub_corruptions_found : int;
  mutable hydrations_served : int;
}

type t

val create :
  sim:Simcore.Sim.t ->
  rng:Simcore.Rng.t ->
  net:Protocol.t Simnet.Net.t ->
  addr:Simnet.Addr.t ->
  s3:S3.t ->
  config:config ->
  ?obs:Obs.Ctx.t ->
  ?obs_labels:Obs.Registry.labels ->
  unit ->
  t
(** [obs] registers the [storage_*] counters labelled with this node's
    address; [obs_labels] adds extra dimensions (the harness tags the
    node's AZ). *)

val addr : t -> Simnet.Addr.t
val add_segment : t -> Segment.t -> unit
val segment : t -> Pg_id.t -> Segment.t option
val segments : t -> Segment.t list
val metrics : t -> metrics
val disk : t -> Disk.t

val start : t -> unit
(** Register on the network and launch background activities. *)

val crash : t -> unit
(** Stop processing; durable state (hot log, blocks) is retained, matching
    a storage-node process crash with intact disks. *)

val restart : t -> unit

val destroy : t -> unit
(** Crash and discard all segment state — a permanent storage loss, the
    trigger for membership-change repair (§4.1). *)

val is_alive : t -> bool

val request_hydration : t -> pg:Pg_id.t -> from:Simnet.Addr.t -> unit
(** Ask a peer for everything needed to (re)build our segment of [pg]:
    chain records above our SCL plus block snapshots for full segments. *)
