open Simcore
open Wal
open Quorum

type config = {
  disk_service : Distribution.t;
  disk_per_byte_ns : int;
  gossip_interval : Time_ns.t;
  coalesce_interval : Time_ns.t;
  backup_interval : Time_ns.t;
  gc_interval : Time_ns.t;
  scrub_interval : Time_ns.t;
  gossip_batch_limit : int;
}

let default_config =
  {
    disk_service = Distribution.lognormal ~median:(Time_ns.us 80) ~sigma:0.4;
    disk_per_byte_ns = 2;
    gossip_interval = Time_ns.ms 100;
    coalesce_interval = Time_ns.ms 50;
    backup_interval = Time_ns.sec 1;
    gc_interval = Time_ns.ms 500;
    scrub_interval = Time_ns.sec 10;
    gossip_batch_limit = 512;
  }

type metrics = {
  mutable write_batches : int;
  mutable records_stored : int;
  mutable duplicates : int;
  mutable rejects : int;
  mutable reads_ok : int;
  mutable reads_refused : int;
  mutable gossip_pulls_served : int;
  mutable gossip_records_sent : int;
  mutable gossip_records_filled : int;
  mutable backups_taken : int;
  mutable hot_log_records_gced : int;
  mutable versions_gced : int;
  mutable scrub_corruptions_found : int;
  mutable hydrations_served : int;
}

let fresh_metrics () =
  {
    write_batches = 0;
    records_stored = 0;
    duplicates = 0;
    rejects = 0;
    reads_ok = 0;
    reads_refused = 0;
    gossip_pulls_served = 0;
    gossip_records_sent = 0;
    gossip_records_filled = 0;
    backups_taken = 0;
    hot_log_records_gced = 0;
    versions_gced = 0;
    scrub_corruptions_found = 0;
    hydrations_served = 0;
  }

type t = {
  sim : Sim.t;
  rng : Rng.t;
  net : Protocol.t Simnet.Net.t;
  addr : Simnet.Addr.t;
  s3 : S3.t;
  config : config;
  segments : Segment.t Pg_id.Tbl.t;
  writer_of : Simnet.Addr.t Pg_id.Tbl.t; (* last writer seen per group *)
  disk : Disk.t;
  metrics : metrics;
  mutable alive : bool;
  mutable generation : int; (* invalidates background loops across restarts *)
}

let register_instruments ~obs ~addr ~obs_labels metrics =
  match obs with
  | None -> ()
  | Some obs ->
    let reg = Obs.Ctx.registry obs in
    let labels =
      ("node", string_of_int (Simnet.Addr.to_int addr)) :: obs_labels
    in
    let c name f = Obs.Registry.counter_fn reg ~labels name f in
    let m = metrics in
    c "storage_write_batches" (fun () -> m.write_batches);
    c "storage_records_stored" (fun () -> m.records_stored);
    c "storage_duplicates" (fun () -> m.duplicates);
    c "storage_rejects" (fun () -> m.rejects);
    c "storage_reads_ok" (fun () -> m.reads_ok);
    c "storage_reads_refused" (fun () -> m.reads_refused);
    c "storage_gossip_pulls_served" (fun () -> m.gossip_pulls_served);
    c "storage_gossip_records_sent" (fun () -> m.gossip_records_sent);
    c "storage_gossip_records_filled" (fun () -> m.gossip_records_filled);
    c "storage_backups_taken" (fun () -> m.backups_taken);
    c "storage_hot_log_records_gced" (fun () -> m.hot_log_records_gced);
    c "storage_versions_gced" (fun () -> m.versions_gced);
    c "storage_scrub_corruptions_found" (fun () -> m.scrub_corruptions_found);
    c "storage_hydrations_served" (fun () -> m.hydrations_served)

let create ~sim ~rng ~net ~addr ~s3 ~config ?obs ?(obs_labels = []) () =
  let metrics = fresh_metrics () in
  register_instruments ~obs ~addr ~obs_labels metrics;
  {
    sim;
    rng;
    net;
    addr;
    s3;
    config;
    segments = Pg_id.Tbl.create 4;
    writer_of = Pg_id.Tbl.create 4;
    disk =
      Disk.create ~sim ~rng:(Rng.split rng) ~service:config.disk_service
        ~per_byte_ns:config.disk_per_byte_ns;
    metrics;
    alive = false;
    generation = 0;
  }

let addr t = t.addr
let add_segment t seg = Pg_id.Tbl.replace t.segments (Segment.pg seg) seg
let segment t pg = Pg_id.Tbl.find_opt t.segments pg
let segments t = Pg_id.Tbl.fold (fun _ s acc -> s :: acc) t.segments []
let metrics t = t.metrics
let disk t = t.disk
let is_alive t = t.alive

let send t ~dst msg = Simnet.Net.send t.net ~src:t.addr ~dst ~bytes:(Protocol.bytes msg) msg

(* Flight-recorder hook point; callers gate on [Recorder.Rings.enabled]
   so a disabled recorder costs one flag read and no allocation. *)
let rec_note t ev =
  Recorder.Rings.note ~node:(Simnet.Addr.to_int t.addr) ~at:(Sim.now t.sim) ev

let reject_metric t = t.metrics.rejects <- t.metrics.rejects + 1

(* ---- foreground handlers ---- *)

let handle_write t ~reply_to ~pg ~seg ~records ~pgcl ~epochs =
  match segment t pg with
  | None -> send t ~dst:reply_to (Protocol.Write_reject { pg; seg; reason = Protocol.Not_a_member })
  | Some s ->
    if not (Member_id.equal (Segment.seg_id s) seg) then begin
      reject_metric t;
      send t ~dst:reply_to (Protocol.Write_reject { pg; seg; reason = Protocol.Not_a_member })
    end
    else begin
      match Segment.check_epochs s epochs with
      | Error reason ->
        reject_metric t;
        send t ~dst:reply_to (Protocol.Write_reject { pg; seg; reason })
      | Ok () ->
        Pg_id.Tbl.replace t.writer_of pg reply_to;
        Segment.note_pgcl s pgcl;
        (* Foreground path: durable append to the incoming/update queue,
           then acknowledge with the advanced SCL (Figure 2, steps 1-2). *)
        let bytes = Protocol.records_bytes records in
        Disk.submit t.disk ~bytes (fun () ->
            if t.alive then begin
              Perf.Probe.start Perf.Probe.Storage_apply;
              let before = Hot_log.record_count (Segment.hot_log s) in
              let scl = Segment.insert_records s records in
              let after = Hot_log.record_count (Segment.hot_log s) in
              t.metrics.write_batches <- t.metrics.write_batches + 1;
              t.metrics.records_stored <- t.metrics.records_stored + (after - before);
              t.metrics.duplicates <-
                t.metrics.duplicates + (List.length records - (after - before));
              if Recorder.Rings.enabled () then
                rec_note t
                  (Recorder.Event.Scl_advance
                     {
                       pg = Pg_id.to_int pg;
                       scl = Lsn.to_int scl;
                       stored = after - before;
                     });
              send t ~dst:reply_to (Protocol.Write_ack { pg; seg; scl });
              Perf.Probe.stop Perf.Probe.Storage_apply
            end)
    end

let handle_read t ~reply_to ~req ~pg ~seg ~block ~as_of ~epochs =
  match segment t pg with
  | None ->
    send t ~dst:reply_to
      (Protocol.Read_reply
         { req; seg; result = Error (Protocol.Rejected Protocol.Not_a_member) })
  | Some s ->
    let result =
      match Segment.check_epochs s epochs with
      | Error reason -> Error (Protocol.Rejected reason)
      | Ok () -> Segment.read_block s ~block ~as_of
    in
    (match result with
    | Ok img ->
      t.metrics.reads_ok <- t.metrics.reads_ok + 1;
      (* Block reads hit the device: charge the image transfer. *)
      Disk.submit t.disk ~bytes:(Protocol.image_bytes img) (fun () ->
          if t.alive then
            send t ~dst:reply_to (Protocol.Read_reply { req; seg; result = Ok img }))
    | Error _ ->
      t.metrics.reads_refused <- t.metrics.reads_refused + 1;
      send t ~dst:reply_to (Protocol.Read_reply { req; seg; result }))

let handle_gossip_pull t ~reply_to ~pg ~scl ~epochs =
  match segment t pg with
  | None -> ()
  | Some s -> (
    match Segment.check_epochs s epochs with
    | Error _ -> reject_metric t
    | Ok () ->
      let records = Hot_log.chained_records_above (Segment.hot_log s) scl in
      let records =
        if List.length records > t.config.gossip_batch_limit then
          List.filteri (fun i _ -> i < t.config.gossip_batch_limit) records
        else records
      in
      t.metrics.gossip_pulls_served <- t.metrics.gossip_pulls_served + 1;
      if records <> [] then begin
        t.metrics.gossip_records_sent <-
          t.metrics.gossip_records_sent + List.length records;
        send t ~dst:reply_to (Protocol.Gossip_reply { pg; records })
      end)

let handle_gossip_reply t ~pg ~records =
  match segment t pg with
  | None -> ()
  | Some s ->
    let bytes = Protocol.records_bytes records in
    Disk.submit t.disk ~bytes (fun () ->
        if t.alive then begin
          let before = Hot_log.record_count (Segment.hot_log s) in
          let scl_before = Segment.scl s in
          let scl = Segment.insert_records s records in
          let after = Hot_log.record_count (Segment.hot_log s) in
          t.metrics.gossip_records_filled <-
            t.metrics.gossip_records_filled + (after - before);
          if Recorder.Rings.enabled () && after > before then
            rec_note t
              (Recorder.Event.Gossip_fill
                 {
                   pg = Pg_id.to_int pg;
                   scl = Lsn.to_int scl;
                   filled = after - before;
                 });
          (* A gossip-driven SCL advance is acknowledged to the writer just
             like a write-driven one: dropped acks self-heal this way. *)
          if Lsn.(scl > scl_before) then
            match Pg_id.Tbl.find_opt t.writer_of pg with
            | Some writer ->
              send t ~dst:writer
                (Protocol.Write_ack { pg; seg = Segment.seg_id s; scl })
            | None -> ()
        end)

let handle_hydrate_pull t ~reply_to ~req ~pg ~since ~want_blocks ~epochs =
  match segment t pg with
  | None -> ()
  | Some s -> (
    match Segment.check_epochs s epochs with
    | Error _ -> reject_metric t
    | Ok () ->
      let records, blocks = Segment.hydrate_export s ~since ~want_blocks in
      t.metrics.hydrations_served <- t.metrics.hydrations_served + 1;
      send t ~dst:reply_to
        (Protocol.Hydrate_reply
           {
             req;
             pg;
             records;
             blocks;
             scl = Segment.scl s;
             coalesced = Segment.coalesced_upto s;
             retained_from = Segment.retained_from s;
             statuses = Segment.txn_statuses s;
           }))

let handle_hydrate_reply t ~pg ~records ~blocks ~donor_scl ~coalesced ~statuses =
  match segment t pg with
  | None -> ()
  | Some s ->
    Segment.merge_statuses s statuses;
    let bytes =
      Protocol.records_bytes records
      + List.fold_left
          (fun acc (block, snapshot) ->
            acc
            + Protocol.image_bytes
                {
                  Protocol.image_block = block;
                  image_as_of = Lsn.none;
                  image_entries = snapshot;
                })
          0 blocks
    in
    Disk.submit t.disk ~bytes (fun () ->
        if t.alive then begin
          Segment.hydrate_import s ~records ~blocks ~donor_scl ~coalesced;
          if Recorder.Rings.enabled () then
            rec_note t
              (Recorder.Event.Hydrate_import
                 { pg = Pg_id.to_int pg; scl = Lsn.to_int (Segment.scl s) })
        end)

let handle_message t (env : Protocol.t Simnet.Net.envelope) =
  if t.alive then
    match env.msg with
    | Protocol.Write_batch { pg; seg; records; pgcl; epochs } ->
      handle_write t ~reply_to:env.src ~pg ~seg ~records ~pgcl ~epochs
    | Protocol.Read_block { req; pg; seg; block; as_of; epochs } ->
      handle_read t ~reply_to:env.src ~req ~pg ~seg ~block ~as_of ~epochs
    | Protocol.Gossip_pull { pg; from_seg = _; scl; epochs } ->
      handle_gossip_pull t ~reply_to:env.src ~pg ~scl ~epochs
    | Protocol.Gossip_reply { pg; records } -> handle_gossip_reply t ~pg ~records
    | Protocol.Scl_probe { req; pg; seg; epochs } -> (
      match segment t pg with
      | None -> ()
      | Some s -> (
        match Segment.check_epochs s epochs with
        | Error _ -> reject_metric t
        | Ok () ->
          send t ~dst:env.src
            (Protocol.Scl_reply
               {
                 req;
                 pg;
                 seg;
                 scl = Segment.scl s;
                 highest = Hot_log.highest_received (Segment.hot_log s);
               })))
    | Protocol.Truncate { pg; seg; above; upto; pgcl; epochs } -> (
      match segment t pg with
      | None -> ()
      | Some s -> (
        match Segment.check_epochs s epochs with
        | Error _ -> reject_metric t
        | Ok () ->
          ignore (Segment.truncate s ~above ~upto : int);
          Segment.note_pgcl s pgcl;
          send t ~dst:env.src (Protocol.Truncate_ack { pg; seg })))
    | Protocol.Epoch_update { req; pg; seg; epochs } -> (
      match segment t pg with
      | None -> ()
      | Some s ->
        (* Installing a higher epoch is itself a write at the new epoch:
           unconditionally adopted (§2.4). *)
        Segment.install_volume_epoch s epochs.volume;
        if Recorder.Rings.enabled () then
          rec_note t
            (Recorder.Event.Epoch_change
               {
                 pg = Pg_id.to_int pg;
                 volume_epoch = Epoch.to_int (Segment.volume_epoch s);
                 membership_epoch = Epoch.to_int (Segment.membership_epoch s);
               });
        send t ~dst:env.src (Protocol.Epoch_ack { req; pg; seg }))
    | Protocol.Membership_update { pg; epoch; peers } -> (
      match segment t pg with
      | None -> ()
      | Some s ->
        Segment.install_membership s ~epoch ~peers;
        if Recorder.Rings.enabled () then
          rec_note t
            (Recorder.Event.Epoch_change
               {
                 pg = Pg_id.to_int pg;
                 volume_epoch = Epoch.to_int (Segment.volume_epoch s);
                 membership_epoch = Epoch.to_int (Segment.membership_epoch s);
               }))
    | Protocol.Hydrate_pull { req; pg; from_seg = _; since; want_blocks; epochs }
      ->
      handle_hydrate_pull t ~reply_to:env.src ~req ~pg ~since ~want_blocks
        ~epochs
    | Protocol.Hydrate_reply
        { req = _; pg; records; blocks; scl; coalesced; retained_from = _; statuses }
      ->
      handle_hydrate_reply t ~pg ~records ~blocks ~donor_scl:scl ~coalesced
        ~statuses
    | Protocol.Pgmrpl_update { pg; seg = _; floor; pgcl } -> (
      match segment t pg with
      | None -> ()
      | Some s ->
        Segment.note_pgcl s pgcl;
        t.metrics.versions_gced <-
          t.metrics.versions_gced + Segment.advance_pgmrpl s floor;
        if Recorder.Rings.enabled () then
          rec_note t
            (Recorder.Event.Pgmrpl_advance
               { pg = Pg_id.to_int pg; floor = Lsn.to_int floor }))
    | Protocol.Write_ack _ | Protocol.Write_reject _ | Protocol.Read_reply _
    | Protocol.Scl_reply _ | Protocol.Truncate_ack _ | Protocol.Epoch_ack _
    | Protocol.Redo_stream _ | Protocol.Replica_feedback _ ->
      (* Instance-side messages: not ours. *)
      ()

(* ---- background activities (Figure 2, steps 3-8) ---- *)

let current_epochs s =
  {
    Protocol.volume = Segment.volume_epoch s;
    membership = Segment.membership_epoch s;
  }

let gossip_round t =
  Pg_id.Tbl.iter
    (fun pg s ->
      let peers =
        List.filter
          (fun (m, a) ->
            (not (Member_id.equal m (Segment.seg_id s)))
            && not (Simnet.Addr.equal a t.addr))
          (Segment.peers s)
      in
      match peers with
      | [] -> ()
      | peers ->
        let _, peer_addr = Rng.pick_list t.rng peers in
        send t ~dst:peer_addr
          (Protocol.Gossip_pull
             {
               pg;
               from_seg = Segment.seg_id s;
               scl = Segment.scl s;
               epochs = current_epochs s;
             }))
    t.segments

let backup_round t =
  Pg_id.Tbl.iter
    (fun pg s ->
      let scl = Segment.scl s in
      if Lsn.(scl > Segment.backup_upto s) then begin
        let snap =
          {
            S3.pg;
            seg = Segment.seg_id s;
            upto = scl;
            bytes = Segment.bytes_stored s;
            taken_at = Sim.now t.sim;
          }
        in
        S3.upload t.s3 snap ~on_durable:(fun () ->
            t.metrics.backups_taken <- t.metrics.backups_taken + 1;
            Segment.set_backup_upto s snap.S3.upto)
      end)
    t.segments

let gc_round t =
  Pg_id.Tbl.iter
    (fun _ s ->
      t.metrics.hot_log_records_gced <-
        t.metrics.hot_log_records_gced + Segment.gc_hot_log s)
    t.segments

let scrub_round t =
  Pg_id.Tbl.iter
    (fun pg s ->
      match Segment.scrub s with
      | [] -> ()
      | corrupt ->
        t.metrics.scrub_corruptions_found <-
          t.metrics.scrub_corruptions_found + List.length corrupt;
        (* Repair: re-hydrate block images from a peer (records not needed). *)
        let peers =
          List.filter
            (fun (m, _) -> not (Member_id.equal m (Segment.seg_id s)))
            (Segment.peers s)
        in
        (match peers with
        | [] -> ()
        | peers ->
          let _, peer_addr = Rng.pick_list t.rng peers in
          send t ~dst:peer_addr
            (Protocol.Hydrate_pull
               {
                 req = 0;
                 pg;
                 from_seg = Segment.seg_id s;
                 since = Segment.scl s;
                 want_blocks = true;
                 epochs = current_epochs s;
               })))
    t.segments

let start_background t =
  let gen = t.generation in
  let loop interval f =
    Sim.every t.sim ~interval (fun () ->
        if t.alive && t.generation = gen then begin
          f t;
          true
        end
        else false)
  in
  loop t.config.gossip_interval gossip_round;
  loop t.config.coalesce_interval (fun t ->
      Pg_id.Tbl.iter (fun _ s -> ignore (Segment.coalesce s : int)) t.segments);
  loop t.config.backup_interval backup_round;
  loop t.config.gc_interval gc_round;
  loop t.config.scrub_interval scrub_round

let start t =
  t.alive <- true;
  t.generation <- t.generation + 1;
  Simnet.Net.register t.net t.addr (handle_message t);
  Simnet.Net.set_up t.net t.addr;
  if Recorder.Rings.enabled () then rec_note t Recorder.Event.Started;
  start_background t

let crash t =
  t.alive <- false;
  Simnet.Net.set_down t.net t.addr;
  if Recorder.Rings.enabled () then rec_note t Recorder.Event.Crashed

let restart t = start t

let destroy t =
  crash t;
  Pg_id.Tbl.reset t.segments;
  if Recorder.Rings.enabled () then rec_note t Recorder.Event.Destroyed

let request_hydration t ~pg ~from =
  match segment t pg with
  | None -> ()
  | Some s ->
    send t ~dst:from
      (Protocol.Hydrate_pull
         {
           req = 0;
           pg;
           from_seg = Segment.seg_id s;
           since = Segment.scl s;
           want_blocks = Segment.kind s = Quorum.Membership.Full;
           epochs = current_epochs s;
         })
