(** Deterministic discrete-event simulation loop.

    A simulation is a clock plus a priority queue of pending events.  Events
    are closures scheduled at absolute instants; the loop pops the earliest
    event, advances the clock to its timestamp, and runs it.  Ties break by
    scheduling order (FIFO among same-instant events), which together with the
    deterministic {!Rng} makes whole runs reproducible from a seed.

    All Aurora components in this repository — storage nodes, the writer
    instance, replicas, the network, baseline protocols — are actors driven by
    this loop.  None of them ever consults wall-clock time. *)

type t

type event_id
(** Handle for cancellation.  Ids are never reused within one simulation. *)

val create : unit -> t

val now : t -> Time_ns.t
(** Current simulated instant. *)

val schedule : t -> delay:Time_ns.t -> (unit -> unit) -> event_id
(** [schedule t ~delay f] runs [f] at [now t + delay].  Negative delays clamp
    to zero (the event runs at the current instant, after already-queued
    same-instant events). *)

val schedule_at : t -> at:Time_ns.t -> (unit -> unit) -> event_id
(** Absolute-time variant.  Instants in the past clamp to [now]. *)

val cancel : t -> event_id -> unit
(** Cancelling an already-run or unknown event is a no-op. *)

val every : t -> interval:Time_ns.t -> (unit -> bool) -> unit
(** [every t ~interval f] runs [f] at [now + interval], then repeatedly every
    [interval] for as long as [f] returns [true].  Used for background
    activities (gossip, GC, scrubbing). *)

val run : t -> unit
(** Drain the event queue completely. *)

val run_until : t -> Time_ns.t -> unit
(** Run events with timestamps [<= limit]; afterwards [now t = limit] (or
    later if an event at the limit scheduled same-instant work). *)

val step : t -> bool
(** Run the single earliest event.  [false] if the queue was empty. *)

val pending : t -> int
(** Number of not-yet-run, not-cancelled events. *)

val processed : t -> int
(** Total events executed so far (a cheap progress/efficiency metric). *)

type stats = {
  processed : int;  (** Events executed (same as {!processed}). *)
  pending : int;  (** Same as {!pending}. *)
  max_heap_depth : int;
      (** High-water mark of the event queue over the whole run — the
          number every pooling/flattening optimisation must size for. *)
}

val stats : t -> stats
(** Dispatch counters.  Deterministic: derived purely from scheduling
    activity, never from wall-clock. *)

type probe = { on_start : unit -> unit; on_stop : unit -> unit }
(** Hooks run around each event execution.  Intended for the perf layer's
    wall-clock/allocation accounting ([Perf.Probe.install_sim]); hooks
    must not schedule events, draw randomness, or otherwise touch sim
    state, so that an instrumented run stays byte-identical to a bare
    one. *)

val set_probe : t -> probe option -> unit
(** [None] (the default) restores the zero-overhead path. *)
