(* Buckets: values < 2^sub_bits are recorded exactly (one bucket per value).
   Above that, each octave [2^k, 2^(k+1)) splits into 2^sub_bits linear
   sub-buckets, bounding relative error by 2^-sub_bits. *)

let sub_bits = 4
let sub_count = 1 lsl sub_bits (* 16 *)
let octaves = 62 - sub_bits

type t = {
  buckets : int array;
  mutable n : int;
  mutable vmin : int;
  mutable vmax : int;
  mutable sum : float;
  mutable sumsq : float;
}

let n_buckets = sub_count * (octaves + 1)

let create () =
  {
    buckets = Array.make n_buckets 0;
    n = 0;
    vmin = max_int;
    vmax = 0;
    sum = 0.;
    sumsq = 0.;
  }

(* Index of the bucket holding [v]. *)
let index_of v =
  if v < sub_count then v
  else begin
    (* Highest set bit position. *)
    let k = 62 - Bits.clz v in
    let sub = (v lsr (k - sub_bits)) land (sub_count - 1) in
    ((k - sub_bits + 1) * sub_count) + sub
  end

(* Upper edge (inclusive representative) of bucket [i]. *)
let value_of i =
  if i < sub_count then i
  else begin
    let oct = (i / sub_count) - 1 in
    let sub = i mod sub_count in
    let base = 1 lsl (oct + sub_bits) in
    let width = 1 lsl oct in
    base + ((sub + 1) * width) - 1
  end

let record t v =
  let v = if v < 0 then 0 else v in
  let i = index_of v in
  t.buckets.(i) <- t.buckets.(i) + 1;
  t.n <- t.n + 1;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v;
  let fv = float_of_int v in
  t.sum <- t.sum +. fv;
  t.sumsq <- t.sumsq +. (fv *. fv)

let record_span t start stop = record t (Time_ns.diff stop start)

let merge a b =
  let t = create () in
  Array.iteri (fun i c -> t.buckets.(i) <- c) a.buckets;
  Array.iteri (fun i c -> t.buckets.(i) <- t.buckets.(i) + c) b.buckets;
  t.n <- a.n + b.n;
  t.vmin <- min a.vmin b.vmin;
  t.vmax <- max a.vmax b.vmax;
  t.sum <- a.sum +. b.sum;
  t.sumsq <- a.sumsq +. b.sumsq;
  t

let count t = t.n
let min_value t = if t.n = 0 then 0 else t.vmin
let max_value t = t.vmax
let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n
let total t = t.sum

let stddev t =
  if t.n = 0 then 0.
  else begin
    let m = mean t in
    let var = (t.sumsq /. float_of_int t.n) -. (m *. m) in
    if var < 0. then 0. else sqrt var
  end

let percentile t p =
  if t.n = 0 then 0
  else begin
    let p = Float.max 0. (Float.min 100. p) in
    let target = int_of_float (ceil (p /. 100. *. float_of_int t.n)) in
    let target = if target < 1 then 1 else target in
    let rec scan i acc =
      if i >= n_buckets then t.vmax
      else begin
        let acc = acc + t.buckets.(i) in
        if acc >= target then min (value_of i) t.vmax else scan (i + 1) acc
      end
    in
    scan 0 0
  end

let median t = percentile t 50.

type snapshot = { of_ : t; counts : int array; sn : int }

let snapshot t = { of_ = t; counts = Array.copy t.buckets; sn = t.n }

let check_owner t s =
  if s.of_ != t then
    invalid_arg "Histogram.percentile_since: snapshot from another histogram"

let count_since t s =
  check_owner t s;
  t.n - s.sn

let percentile_since t s p =
  check_owner t s;
  let n = t.n - s.sn in
  if n <= 0 then 0
  else begin
    let p = Float.max 0. (Float.min 100. p) in
    let target = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    let target = if target < 1 then 1 else target in
    let rec scan i acc =
      if i >= n_buckets then t.vmax
      else begin
        let acc = acc + (t.buckets.(i) - s.counts.(i)) in
        if acc >= target then min (value_of i) t.vmax else scan (i + 1) acc
      end
    in
    scan 0 0
  end

let pp_summary fmt t =
  Format.fprintf fmt "n=%d mean=%a p50=%a p99=%a p999=%a max=%a" t.n Time_ns.pp
    (int_of_float (mean t))
    Time_ns.pp (percentile t 50.) Time_ns.pp (percentile t 99.) Time_ns.pp
    (percentile t 99.9) Time_ns.pp (max_value t)

let summary_row t ~label =
  Format.asprintf "%-28s %10d %12s %12s %12s %12s %12s" label t.n
    (Time_ns.to_string (int_of_float (mean t)))
    (Time_ns.to_string (percentile t 50.))
    (Time_ns.to_string (percentile t 99.))
    (Time_ns.to_string (percentile t 99.9))
    (Time_ns.to_string (max_value t))
