let highest_bit v =
  if v <= 0 then invalid_arg "Bits.highest_bit: non-positive";
  let rec loop v n = if v = 1 then n else loop (v lsr 1) (n + 1) in
  loop v 0

let clz v = 62 - highest_bit v

(* FNV-1a, 64-bit parameters on native ints (multiplication wraps, which is
   exactly what FNV wants).  Results are masked positive so callers can
   [mod] them straight into a bucket count. *)

let fnv_prime = 0x100000001b3
(* The canonical 64-bit offset basis exceeds OCaml's 63-bit ints; wrap via
   Int64 and mask positive. *)
let fnv1a_seed = Int64.to_int 0xcbf29ce484222325L land 0x3FFF_FFFF_FFFF_FFFF

let mask_positive h = h land 0x3FFF_FFFF_FFFF_FFFF

let fnv1a_add_char h c = (h lxor Char.code c) * fnv_prime

let fnv1a_add_string h s =
  let h = ref h in
  String.iter (fun c -> h := fnv1a_add_char !h c) s;
  (* Terminator so ("ab","c") and ("a","bc") fold differently. *)
  mask_positive (fnv1a_add_char !h '\x00')

let fnv1a_add_int h v =
  let h = ref h in
  for shift = 0 to 7 do
    h := fnv1a_add_char !h (Char.chr ((v lsr (shift * 8)) land 0xff))
  done;
  mask_positive !h

let fnv1a_string s = fnv1a_add_string fnv1a_seed s
