(** Registry of reset hooks for module-global mutable state.

    Modules that keep deliberate global mutable state outside the sim
    (perf probes, recorder rings) register a hook that restores their
    pristine state.  Multi-run drivers call {!run_all} between runs;
    the typed lint tier treats a registered hook as the declaration that
    a module's top-level mutables are managed (see DESIGN.md §6). *)

val register : name:string -> (unit -> unit) -> unit
(** [register ~name run] adds (or replaces, keyed by [name]) a hook. *)

val run_all : unit -> unit
(** Run every hook, in registration order. *)

val names : unit -> string list
(** Registered hook names, sorted. *)

val count : unit -> int
