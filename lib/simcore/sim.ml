type event_id = int

(* Mutable on purpose: dispatched events are recycled through [pool] instead
   of being re-allocated per schedule — the TigerBeetle static-allocation
   idiom the hot-alloc lint enforces (DESIGN.md §6).  An event is owned by
   the queue from [schedule_at] until [exec] pops it, and by the pool
   afterwards; nothing outside this module ever sees one. *)
type event = {
  mutable at : Time_ns.t;
  mutable seq : int;  (* doubles as the public event_id *)
  mutable action : unit -> unit;
}

type probe = { on_start : unit -> unit; on_stop : unit -> unit }

type t = {
  mutable clock : Time_ns.t;
  queue : event Heap.t;
  cancelled : (event_id, unit) Hashtbl.t;
  mutable next_seq : int;
  mutable executed : int;
  mutable max_heap_depth : int;
  mutable probe : probe option;
  (* Free-list of recycled event records, stack discipline.  Slots at or
     above [pool_n] are garbage (aliases left behind by growth). *)
  mutable pool : event array;
  mutable pool_n : int;
}

type stats = { processed : int; pending : int; max_heap_depth : int }

let compare_event a b =
  let c = Time_ns.compare a.at b.at in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () =
  {
    clock = Time_ns.zero;
    queue = Heap.create ~cmp:compare_event;
    cancelled = Hashtbl.create 64;
    next_seq = 0;
    executed = 0;
    max_heap_depth = 0;
    probe = None;
    pool = [||];
    pool_n = 0;
  }

let now t = t.clock

(* Retiring an event must not capture its closure beyond the dispatch that
   ran it. *)
let no_action () = ()

let acquire t ~at ~seq action =
  if t.pool_n = 0 then
    { at; seq; action }
    [@alloc_ok "pool warm-up: each record is allocated once, then recycled"]
  else begin
    t.pool_n <- t.pool_n - 1;
    let ev = t.pool.(t.pool_n) in
    ev.at <- at;
    ev.seq <- seq;
    ev.action <- action;
    ev
  end

let release t ev =
  ev.action <- no_action;
  let cap = Array.length t.pool in
  if t.pool_n = cap then
    (let ncap = if cap = 0 then 64 else cap * 2 in
     let np = Array.make ncap ev in
     Array.blit t.pool 0 np 0 cap;
     t.pool <- np)
    [@alloc_ok "amortized pool growth, bounded by max_heap_depth"];
  t.pool.(t.pool_n) <- ev;
  t.pool_n <- t.pool_n + 1

let schedule_at t ~at action =
  let at = Time_ns.max at t.clock in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Heap.push t.queue (acquire t ~at ~seq action);
  let depth = Heap.length t.queue in
  if depth > t.max_heap_depth then t.max_heap_depth <- depth;
  seq

let schedule t ~delay action =
  schedule_at t ~at:(Time_ns.add t.clock (Time_ns.max delay 0)) action

let cancel t id = Hashtbl.replace t.cancelled id ()

let rec every t ~interval f =
  ignore
    (schedule t ~delay:interval (fun () -> if f () then every t ~interval f))

let exec t ev =
  (if Hashtbl.mem t.cancelled ev.seq then Hashtbl.remove t.cancelled ev.seq
   else begin
     t.clock <- ev.at;
     t.executed <- t.executed + 1;
     (* The probe lives outside sim state (wall-clock timers, allocation
        counters); installing one changes nothing the simulation can
        observe. *)
     match t.probe with
     | None -> ev.action ()
     | Some p ->
       p.on_start ();
       ev.action ();
       p.on_stop ()
   end);
  (* Recycle only after the action returned: an action that schedules draws
     fresh records from the pool while this one is still live. *)
  release t ev

let step t =
  if Heap.is_empty t.queue then false
  else begin
    exec t (Heap.pop_exn t.queue);
    true
  end

let run t = while step t do () done

let rec drain_until t limit =
  if
    (not (Heap.is_empty t.queue))
    && Time_ns.compare (Heap.top_exn t.queue).at limit <= 0
  then begin
    exec t (Heap.pop_exn t.queue);
    drain_until t limit
  end

let run_until t limit =
  drain_until t limit;
  if Time_ns.compare t.clock limit < 0 then t.clock <- limit

let pending t = Heap.length t.queue - Hashtbl.length t.cancelled
let processed t = t.executed

let stats t =
  { processed = t.executed; pending = pending t; max_heap_depth = t.max_heap_depth }

let set_probe t probe = t.probe <- probe
