type event_id = int

type event = {
  at : Time_ns.t;
  seq : int;
  id : event_id;
  action : unit -> unit;
}

type probe = { on_start : unit -> unit; on_stop : unit -> unit }

type t = {
  mutable clock : Time_ns.t;
  queue : event Heap.t;
  cancelled : (event_id, unit) Hashtbl.t;
  mutable next_seq : int;
  mutable executed : int;
  mutable max_heap_depth : int;
  mutable probe : probe option;
}

type stats = { processed : int; pending : int; max_heap_depth : int }

let compare_event a b =
  let c = Time_ns.compare a.at b.at in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () =
  {
    clock = Time_ns.zero;
    queue = Heap.create ~cmp:compare_event;
    cancelled = Hashtbl.create 64;
    next_seq = 0;
    executed = 0;
    max_heap_depth = 0;
    probe = None;
  }

let now t = t.clock

let schedule_at t ~at action =
  let at = Time_ns.max at t.clock in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let id = seq in
  Heap.push t.queue { at; seq; id; action };
  let depth = Heap.length t.queue in
  if depth > t.max_heap_depth then t.max_heap_depth <- depth;
  id

let schedule t ~delay action =
  schedule_at t ~at:(Time_ns.add t.clock (Time_ns.max delay 0)) action

let cancel t id = Hashtbl.replace t.cancelled id ()

let rec every t ~interval f =
  ignore
    (schedule t ~delay:interval (fun () -> if f () then every t ~interval f))

let exec t ev =
  if Hashtbl.mem t.cancelled ev.id then Hashtbl.remove t.cancelled ev.id
  else begin
    t.clock <- ev.at;
    t.executed <- t.executed + 1;
    (* The probe lives outside sim state (wall-clock timers, allocation
       counters); installing one changes nothing the simulation can
       observe. *)
    match t.probe with
    | None -> ev.action ()
    | Some p ->
      p.on_start ();
      ev.action ();
      p.on_stop ()
  end

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
    exec t ev;
    true

let run t = while step t do () done

let run_until t limit =
  let continue = ref true in
  while !continue do
    match Heap.peek t.queue with
    | Some ev when Time_ns.compare ev.at limit <= 0 ->
      (match Heap.pop t.queue with Some e -> exec t e | None -> ())
    | _ -> continue := false
  done;
  if Time_ns.compare t.clock limit < 0 then t.clock <- limit

let pending t = Heap.length t.queue - Hashtbl.length t.cancelled
let processed t = t.executed

let stats t =
  { processed = t.executed; pending = pending t; max_heap_depth = t.max_heap_depth }

let set_probe t probe = t.probe <- probe
