(** Log-bucketed latency histogram (HDR-style).

    Records non-negative integer values (nanoseconds in practice) into
    buckets whose width grows geometrically, giving a bounded relative
    quantile error (~3% with the default 16 sub-buckets per octave) at O(1)
    record cost and a few KB of memory regardless of sample count.  This is
    the metric sink for every latency measurement in the repository. *)

type t

val create : unit -> t
(** Default precision: 16 linear sub-buckets per power of two. *)

val record : t -> int -> unit
(** Record one value; negative values clamp to 0. *)

val record_span : t -> Time_ns.t -> Time_ns.t -> unit
(** [record_span h start stop] records [stop - start]. *)

val merge : t -> t -> t
(** New histogram holding both inputs' samples. *)

val count : t -> int
val min_value : t -> int
(** 0 when empty. *)

val max_value : t -> int
val mean : t -> float
val stddev : t -> float
val total : t -> float
(** Sum of recorded values. *)

val percentile : t -> float -> int
(** [percentile h p] for [p] in [\[0, 100\]].  Returns the upper edge of the
    bucket containing the p-th percentile sample; 0 when empty. *)

val median : t -> int

(** Windowed views: a [snapshot] freezes the bucket counts at one instant;
    [percentile_since]/[count_since] answer queries over only the samples
    recorded after the snapshot was taken.  This is what lets a time-series
    sampler derive per-window p50/p99 from a cumulative histogram without
    resetting it (the histogram stays a whole-run aggregate for everyone
    else). *)

type snapshot

val snapshot : t -> snapshot
val count_since : t -> snapshot -> int
(** Samples recorded after [snapshot]. *)

val percentile_since : t -> snapshot -> float -> int
(** Percentile over the samples recorded after [snapshot]; 0 when the
    window is empty.
    @raise Invalid_argument if the snapshot came from a different
    histogram instance. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line "n=... mean=... p50=... p99=... max=..." rendering with
    adaptive time units. *)

val summary_row :
  t -> label:string -> string
(** Fixed-width table row used by the experiment harness. *)
