(** Small bit-twiddling helpers shared by histogram bucketing. *)

val clz : int -> int
(** Count of leading zero bits of a positive 63-bit OCaml int, counting from
    bit 62 (the sign bit is excluded).  [clz 1 = 62].
    @raise Invalid_argument on non-positive input. *)

val highest_bit : int -> int
(** [highest_bit v] is the position of the most significant set bit
    ([highest_bit 1 = 0]). *)

(** {1 Deterministic hashing}

    FNV-1a with 64-bit parameters, for anything whose hash can reach
    simulation state or output: block placement, content checksums.  Unlike
    [Hashtbl.hash], the result is a function of the bytes fed in — never of
    value representation, tree shape, or stdlib version — so it is stable
    across runs, platforms, and refactors (and the [determinism] lint rule
    bans [Hashtbl.hash] in sim code accordingly).  All results are positive
    (62-bit), safe for [mod]. *)

val fnv1a_string : string -> int
(** Hash one string from the standard seed. *)

val fnv1a_seed : int
(** Starting state for incremental hashing with the [fnv1a_add_*]
    functions. *)

val fnv1a_add_string : int -> string -> int
(** Fold a string (plus a terminator, so concatenation boundaries are
    significant) into an incremental hash. *)

val fnv1a_add_int : int -> int -> int
(** Fold an int (as 8 little-endian bytes) into an incremental hash. *)
