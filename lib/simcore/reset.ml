(* Registry of reset hooks for module-global mutable state.

   Cross-run byte-identity (vopr repro digests, recorder artifacts) relies
   on the simulation proper carrying no hidden global state.  The few
   module-global mutables that legitimately exist — the perf probes, the
   flight-recorder rings — live *outside* the sim and must be resettable
   between runs.  Registering a hook here is how such a module declares
   that contract; the typed lint tier (DESIGN.md §6) rejects any top-level
   mutable binding in sim-scoped code that is neither mentioned by a
   registered hook nor annotated [@sim_global]. *)

type hook = { name : string; run : unit -> unit }

(* The registry itself is the one blessed global: the typed sim-global rule
   allow-lists this module. *)
let hooks : hook list ref = ref []

let register ~name run =
  hooks := { name; run } :: List.filter (fun h -> h.name <> name) !hooks

let run_all () =
  (* Registration order (module init order) — deterministic for a given
     link order, and hooks are independent anyway. *)
  List.iter (fun h -> h.run ()) (List.rev !hooks)

let names () = List.sort String.compare (List.map (fun h -> h.name) !hooks)
let count () = List.length !hooks
