type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)
[@@alloc_ok "splitmix64 finalizer is Int64 by design; the seeded stream is frozen"]

let create seed = { state = mix64 (Int64.of_int seed) }

(* The splitmix64 core is Int64-boxed by definition; the seeded streams it
   produces are frozen (vopr digests, golden recorder fixtures depend on
   them), so the boxing stays and is declared to the hot-alloc lint. *)
let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state
[@@alloc_ok "splitmix64 state is Int64 by design; the seeded stream is frozen"]

let split t = { state = bits64 t }
let copy t = { state = t.state }

(* Non-negative 62-bit int from the top bits: safe on 64-bit OCaml ints. *)
let positive_int t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)
[@@alloc_ok "Int64 unpack of the splitmix64 draw"]

(* Rejection sampling to avoid modulo bias.  Top-level (not a local [rec]
   closure): the rejection loop runs on every latency draw. *)
let rec draw_below t limit bound =
  let v = positive_int t in
  if v < limit then v mod bound else draw_below t limit bound

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let limit = 0x3FFF_FFFF_FFFF_FFFF / bound * bound in
  draw_below t limit bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let unit_float t =
  (* 53 random bits over [0,1). *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int v /. 9007199254740992.0
[@@alloc_ok "Int64 unpack of the splitmix64 draw"]

let float t bound = unit_float t *. bound
let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t p = unit_float t < p

let exponential t ~mean =
  if mean <= 0. then invalid_arg "Rng.exponential: mean must be positive";
  let u = 1.0 -. unit_float t in
  -.mean *. log u

let gaussian t ~mu ~sigma =
  let u1 = 1.0 -. unit_float t in
  let u2 = unit_float t in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let lognormal t ~mu ~sigma = exp (gaussian t ~mu ~sigma)

let pareto t ~scale ~shape =
  if scale <= 0. || shape <= 0. then invalid_arg "Rng.pareto";
  let u = 1.0 -. unit_float t in
  scale /. (u ** (1.0 /. shape))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | l -> List.nth l (int t (List.length l))

let sample_without_replacement t k arr =
  let n = Array.length arr in
  if k > n then invalid_arg "Rng.sample_without_replacement: k > n";
  let idx = Array.init n (fun i -> i) in
  (* Partial Fisher–Yates: only the first k positions need to be drawn. *)
  for i = 0 to k - 1 do
    let j = int_in t i (n - 1) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Array.init k (fun i -> arr.(idx.(i)))
