(* Array-backed binary min-heap: classic sift-up / sift-down. *)




type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let create ~cmp = { cmp; data = [||]; size = 0 }
let length t = t.size
let is_empty t = t.size = 0

let grow t x =
  let cap = Array.length t.data in
  if t.size = cap then
    (let ncap = if cap = 0 then 16 else cap * 2 in
     let ndata = Array.make ncap x in
     Array.blit t.data 0 ndata 0 t.size;
     t.data <- ndata)
    [@alloc_ok "amortized backing-array doubling; steady-state pushes reuse it"]

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

(* No [ref] scratch cell: sift-down runs on every pop, i.e. once per
   dispatched event, and must not allocate (hot-alloc lint, DESIGN.md §6). *)
let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let s = if l < t.size && t.cmp t.data.(l) t.data.(i) < 0 then l else i in
  let s = if r < t.size && t.cmp t.data.(r) t.data.(s) < 0 then r else s in
  if s <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(s);
    t.data.(s) <- tmp;
    sift_down t s
  end

let push t x =
  grow t x;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.data.(0)

let top_exn t =
  if t.size = 0 then invalid_arg "Heap.top_exn: empty heap" else t.data.(0)

(* The option-free variants exist for the simulator dispatch loop: [pop]
   wraps every event in a fresh [Some] block, which the hot-alloc lint
   rejects on the hot path. *)
let pop_exn t =
  if t.size = 0 then invalid_arg "Heap.pop_exn: empty heap"
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    top
  end

let pop t = if t.size = 0 then None else Some (pop_exn t)

let clear t =
  t.data <- [||];
  t.size <- 0

let to_list t =
  let rec take i acc = if i < 0 then acc else take (i - 1) (t.data.(i) :: acc) in
  take (t.size - 1) []
