type t =
  | Constant of Time_ns.t
  | Uniform of Time_ns.t * Time_ns.t
  | Exponential of float
  | Lognormal of float * float (* mu, sigma in log-space of nanoseconds *)
  | Pareto of float * float
  | Shifted of Time_ns.t * t
  | Mixture of (float * t) array * float (* entries, total weight *)
  | Scaled of float * t

let constant d = Constant d

let uniform ~lo ~hi =
  if hi < lo then invalid_arg "Distribution.uniform: hi < lo";
  Uniform (lo, hi)

let exponential ~mean =
  if mean <= 0 then invalid_arg "Distribution.exponential: mean <= 0";
  Exponential (float_of_int mean)

let lognormal ~median ~sigma =
  if median <= 0 then invalid_arg "Distribution.lognormal: median <= 0";
  Lognormal (log (float_of_int median), sigma)

let pareto ~scale ~shape =
  if scale <= 0 then invalid_arg "Distribution.pareto: scale <= 0";
  Pareto (float_of_int scale, shape)

let shifted base d = Shifted (base, d)

let mixture entries =
  if entries = [] then invalid_arg "Distribution.mixture: empty";
  List.iter
    (fun (w, _) ->
      if w <= 0. then invalid_arg "Distribution.mixture: non-positive weight")
    entries;
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0. entries in
  Mixture (Array.of_list entries, total)

let scaled factor d =
  if factor < 0. then invalid_arg "Distribution.scaled: negative factor";
  Scaled (factor, d)

(* Top-level (not a local [rec] closure capturing [x]): mixture sampling
   sits on the latency-draw hot path. *)
let rec mixture_pick entries x i acc =
  let w, d = entries.(i) in
  if i = Array.length entries - 1 || x < acc +. w then d
  else mixture_pick entries x (i + 1) (acc +. w)

let rec sample t rng =
  let v =
    match t with
    | Constant d -> d
    | Uniform (lo, hi) -> Rng.int_in rng lo hi
    | Exponential mean -> int_of_float (Rng.exponential rng ~mean)
    | Lognormal (mu, sigma) -> int_of_float (Rng.lognormal rng ~mu ~sigma)
    | Pareto (scale, shape) -> int_of_float (Rng.pareto rng ~scale ~shape)
    | Shifted (base, d) -> Time_ns.add base (sample d rng)
    | Mixture (entries, total) ->
      sample (mixture_pick entries (Rng.float rng total) 0 0.) rng
    | Scaled (f, d) -> int_of_float (f *. float_of_int (sample d rng))
  in
  if v < 0 then 0 else v

let mean_estimate t rng n =
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. float_of_int (sample t rng)
  done;
  !acc /. float_of_int n
