(** Imperative binary min-heap keyed by a user-supplied comparison.

    Used as the simulator's event queue and anywhere a priority queue is
    needed.  Amortized O(log n) push/pop.  Not thread-safe (the simulator is
    single-threaded by design). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered so that the minimum element under
    [cmp] is popped first. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Minimum element without removing it. *)

val top_exn : 'a t -> 'a
(** Allocation-free {!peek} for the dispatch hot path.
    @raise Invalid_argument on an empty heap. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum element. *)

val pop_exn : 'a t -> 'a
(** Allocation-free {!pop} for the dispatch hot path.
    @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Snapshot of current contents in unspecified order. *)
