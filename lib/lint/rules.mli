(** The rule registry and the Parsetree-level checks.

    Rules operate on untyped syntax (ppxlib's [Parsetree]) plus the file
    set, so type-sensitive rules (polymorphic-compare, raw-LSN-arithmetic)
    are deliberate syntactic approximations: they fire when an operand
    *syntactically* mentions one of the protocol-type modules ([Lsn],
    [Epoch], [Txn_id], [Member_id], [Pg_id]).  False negatives are possible
    (a local binding of protocol type is invisible); false positives go on
    a per-rule allowlist here or into the checked-in baseline.

    Paths given to [applies]/allowlists are repo-root-relative logical
    paths ([lib/core/database.ml]), regardless of where the tree was
    scanned from. *)

type rule = {
  id : string;
  description : string;  (** One line, shown by [aurora_lint --rules]. *)
  applies : string -> bool;  (** Is the rule active in this file at all? *)
  allow : string list;
      (** Path prefixes exempted with justification; see DESIGN.md. *)
}

val all : rule list
(** Every registered rule, in reporting order. *)

val find : string -> rule option

val active : rule -> string -> bool
(** [active r path] — [r.applies path] and [path] is not allowlisted. *)

val check_structure :
  path:string -> Ppxlib.Parsetree.structure -> Finding.t list
(** Run every expression-level rule active for [path] over one parsed
    implementation.  Findings come back unsorted. *)

val mli_coverage : ml_files:string list -> mli_files:string list -> Finding.t list
(** The file-set-level rule: every [lib/**/*.ml] (logical paths) must have
    a matching [.mli].  Pure — takes the file lists rather than touching
    the filesystem, so tests can exercise it directly. *)
