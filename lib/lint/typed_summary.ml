(* Per-module summaries extracted from typed trees.

   One walk per top-level binding collects everything the interprocedural
   rules need: direct allocation sites (with [@alloc_ok] suppression),
   referenced global names (the call-graph edges), constructors matched in
   patterns and built in expressions, typed comparison applications, and
   top-level mutable-state evidence.  The rules in {!Typed_rules} are then
   pure functions over these summaries. *)

type alloc = { a_line : int; a_col : int; a_desc : string }

type ref_use = {
  r_name : string;  (* normalized dotted name *)
  r_line : int;
  r_col : int;
  r_suppressed : bool;  (* under an [@alloc_ok] subtree *)
}

type con_use = { cu_ty : string; cu_con : string }
type poly_hit = { p_line : int; p_col : int; p_op : string; p_ty : string }

type binding = {
  b_name : string;  (* qualified, e.g. "Simcore.Sim.schedule_at" *)
  b_line : int;
  b_col : int;
  b_is_function : bool;
  b_allocs : alloc list;
  b_refs : ref_use list;  (* one entry per distinct name *)
  b_pat_cons : con_use list;
  b_exp_cons : con_use list;
  b_poly : poly_hit list;
  b_mutable_evidence : (int * int * string) option;
  b_sim_global : bool;  (* carries [@@sim_global] *)
}

type tycon = { c_name : string; c_line : int; c_col : int }
type tydecl = { ty_name : string; ty_cons : tycon list }

type unit_summary = {
  u_modname : string;
  u_source : string;
  u_bindings : binding list;
  u_types : tydecl list;
}

let line_col (loc : Location.t) =
  let p = loc.loc_start in
  (p.pos_lnum, p.pos_cnum - p.pos_bol)

let has_attr name (attrs : Typedtree.attributes) =
  List.exists
    (fun (a : Parsetree.attribute) -> String.equal a.attr_name.txt name)
    attrs

let normalize_path p = Typed_loader.normalize_modname (Path.name p)

(* Comparison primitives whose polymorphic use on protocol types the typed
   poly-compare rule rejects. *)
let poly_ops =
  [
    "Stdlib.compare"; "Stdlib.="; "Stdlib.<>"; "Stdlib.<"; "Stdlib.>";
    "Stdlib.<="; "Stdlib.>="; "Stdlib.min"; "Stdlib.max";
  ]

(* Known-allocating externals.  Scope note (DESIGN.md §6): this is about
   allocation performed *per call at the call site's request* — list and
   string builders, boxing conversions, formatting.  Allocation internal to
   a stdlib structure's amortized growth (Hashtbl.replace resizing,
   Buffer.add_* doubling) and float boxing are documented out of scope. *)
let allocating_exact =
  [
    "Stdlib.ref"; "Stdlib.@"; "Stdlib.^"; "Stdlib.^^";
    "Stdlib.string_of_int"; "Stdlib.string_of_float"; "Stdlib.string_of_bool";
    "Stdlib.int_of_string_opt"; "Stdlib.float_of_string_opt";
    "Stdlib.bool_of_string_opt";
    "Stdlib.List.cons";
  ]

let allocating_prefix =
  [ "Stdlib.Printf."; "Stdlib.Format."; "Stdlib.Scanf."; "Stdlib.Seq." ]

(* Suffix-matched so functor instances ([Addr.Tbl.find_opt]) are caught,
   not just the stdlib originals. *)
let allocating_suffix =
  [
    ".create"; ".make"; ".init"; ".copy"; ".map"; ".mapi"; ".filter";
    ".filteri"; ".filter_map"; ".partition"; ".flatten"; ".concat";
    ".append"; ".rev"; ".sort"; ".merge"; ".split"; ".combine";
    ".find_opt"; ".find_all"; ".assoc_opt"; ".assq_opt"; ".nth_opt";
    ".to_list"; ".of_list"; ".to_seq"; ".of_seq"; ".to_array"; ".of_array";
    ".elements"; ".bindings"; ".cardinal_opt"; ".min_binding"; ".max_binding";
    ".min_elt"; ".max_elt"; ".choose"; ".sub"; ".blit_to"; ".escaped";
    ".uppercase_ascii"; ".lowercase_ascii"; ".trim";
  ]

(* Int64/Int32/Nativeint results are boxed; only the unboxing/readout
   operations are allocation-free. *)
let boxed_int_prefix = [ "Stdlib.Int64."; "Stdlib.Int32."; "Stdlib.Nativeint." ]
let boxed_int_free_tail = [ "to_int"; "compare"; "equal" ]

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let has_suffix ~suffix s =
  let ls = String.length s and lx = String.length suffix in
  ls >= lx && String.sub s (ls - lx) lx = suffix

let allocating_external name =
  List.exists (String.equal name) allocating_exact
  || List.exists (fun p -> has_prefix ~prefix:p name) allocating_prefix
  || List.exists (fun s -> has_suffix ~suffix:s name) allocating_suffix
  ||
  match List.find_opt (fun p -> has_prefix ~prefix:p name) boxed_int_prefix with
  | None -> false
  | Some p ->
    let tail =
      String.sub name (String.length p) (String.length name - String.length p)
    in
    not (List.exists (String.equal tail) boxed_int_free_tail)

(* Creator applications that make a top-level binding mutable state for the
   sim-state purity rule. *)
let mutable_creator name =
  String.equal name "Stdlib.ref"
  || has_suffix ~suffix:".create" name
  || List.exists (String.equal name)
       [
         "Stdlib.Array.make"; "Stdlib.Array.init"; "Stdlib.Array.copy";
         "Stdlib.Atomic.make"; "Stdlib.Bytes.make"; "Stdlib.Bytes.create";
       ]

(* ------------------------------------------------------------------ *)
(* Per-binding collector state.                                        *)

type ctx = {
  unit_name : string;
  globals : (string, string) Hashtbl.t;  (* Ident.unique_name -> qualified *)
  refs : (string, ref_use) Hashtbl.t;
  mutable allocs : alloc list;
  mutable pat_cons : con_use list;
  mutable exp_cons : con_use list;
  mutable poly : poly_hit list;
  mutable mut_ev : (int * int * string) option;
  mutable suppressed : bool;
  mutable heads : Typedtree.expression list;  (* outermost lambda chain *)
}

let note_alloc ctx desc (loc : Location.t) =
  if not ctx.suppressed then begin
    let line, col = line_col loc in
    ctx.allocs <- { a_line = line; a_col = col; a_desc = desc } :: ctx.allocs
  end

let note_ref ctx name (loc : Location.t) =
  let line, col = line_col loc in
  let use =
    { r_name = name; r_line = line; r_col = col; r_suppressed = ctx.suppressed }
  in
  match Hashtbl.find_opt ctx.refs name with
  | None -> Hashtbl.replace ctx.refs name use
  | Some prev ->
    (* Keep an unsuppressed occurrence if any exists: the blocklist check
       must not be silenced by a later [@alloc_ok] use of the same name. *)
    if prev.r_suppressed && not ctx.suppressed then
      Hashtbl.replace ctx.refs name use

let note_mut ctx desc (loc : Location.t) =
  match ctx.mut_ev with
  | Some _ -> ()
  | None ->
    let line, col = line_col loc in
    ctx.mut_ev <- Some (line, col, desc)

(* Qualify an unqualified type name ("t" inside its defining unit) with the
   unit's module path. *)
let qualify_ty ctx name =
  if String.contains name '.' then name else ctx.unit_name ^ "." ^ name

let con_of_desc ctx (cd : Types.constructor_description) =
  match Types.get_desc cd.cstr_res with
  | Types.Tconstr (p, _, _) ->
    Some { cu_ty = qualify_ty ctx (normalize_path p); cu_con = cd.cstr_name }
  | _ -> None

let ident_ref ctx path =
  match path with
  | Path.Pident id -> Hashtbl.find_opt ctx.globals (Ident.unique_name id)
  | _ -> Some (normalize_path path)

let iterator ctx =
  let open Tast_iterator in
  let expr it (e : Typedtree.expression) =
    let was = ctx.suppressed in
    if has_attr "alloc_ok" e.exp_attributes then ctx.suppressed <- true;
    (match e.exp_desc with
    | Typedtree.Texp_ident (path, _, _) -> (
      match ident_ref ctx path with
      | Some name -> note_ref ctx name e.exp_loc
      | None -> ())
    | Typedtree.Texp_function _ ->
      if not (List.memq e ctx.heads) then note_alloc ctx "closure" e.exp_loc
    | Typedtree.Texp_tuple _ -> note_alloc ctx "tuple" e.exp_loc
    | Typedtree.Texp_construct (_, cd, args) -> (
      (match con_of_desc ctx cd with
      | Some cu -> ctx.exp_cons <- cu :: ctx.exp_cons
      | None -> ());
      match cd.Types.cstr_tag with
      | Types.Cstr_block _ | Types.Cstr_extension _ ->
        if args <> [] then
          note_alloc ctx ("variant block " ^ cd.Types.cstr_name) e.exp_loc
      | Types.Cstr_constant _ | Types.Cstr_unboxed -> ())
    | Typedtree.Texp_record { fields; _ } ->
      note_alloc ctx "record" e.exp_loc;
      if
        Array.exists
          (fun ((ld : Types.label_description), _) ->
            ld.lbl_mut = Asttypes.Mutable)
          fields
      then note_mut ctx "mutable record" e.exp_loc
    | Typedtree.Texp_array _ ->
      note_alloc ctx "array" e.exp_loc;
      note_mut ctx "array literal" e.exp_loc
    | Typedtree.Texp_lazy _ -> note_alloc ctx "lazy" e.exp_loc
    | Typedtree.Texp_object _ -> note_alloc ctx "object" e.exp_loc
    | Typedtree.Texp_pack _ -> note_alloc ctx "first-class module" e.exp_loc
    | Typedtree.Texp_apply (fn, args) -> (
      match fn.exp_desc with
      | Typedtree.Texp_ident (p, _, _) -> (
        let name = normalize_path p in
        if mutable_creator name then note_mut ctx name e.exp_loc;
        if List.exists (String.equal name) poly_ops then
          match args with
        | (_, Some arg1) :: _ -> (
          match Types.get_desc arg1.exp_type with
          | Types.Tconstr (tp, _, _) ->
            let line, col = line_col e.exp_loc in
            ctx.poly <-
              {
                p_line = line;
                p_col = col;
                p_op = name;
                p_ty = qualify_ty ctx (normalize_path tp);
              }
              :: ctx.poly
          | _ -> ())
        | _ -> ())
      | _ -> ())
    | _ -> ());
    default_iterator.expr it e;
    ctx.suppressed <- was
  in
  let pat : type k. iterator -> k Typedtree.general_pattern -> unit =
   fun it p ->
    (match p.pat_desc with
    | Typedtree.Tpat_construct (_, cd, _, _) -> (
      match con_of_desc ctx cd with
      | Some cu -> ctx.pat_cons <- cu :: ctx.pat_cons
      | None -> ())
    | _ -> ());
    default_iterator.pat it p
  in
  { default_iterator with expr; pat }

(* The outermost lambda chain of [let f x y = ...] is the function's
   signature, not a per-call allocation; everything past the first
   multi-case [function] (or non-lambda body) allocates per call.  The
   typechecker desugars [?(x = default)] into a ghost [let] between two
   parameter lambdas — chase through those so optional arguments do not
   read as nested closures. *)
let head_chain e =
  let rec go acc (e : Typedtree.expression) =
    match e.exp_desc with
    | Typedtree.Texp_function { cases = [ { c_rhs; c_guard = None; _ } ]; _ }
      ->
      go (e :: acc) c_rhs
    | Typedtree.Texp_function _ -> e :: acc
    | Typedtree.Texp_let (_, _, body) when e.exp_loc.loc_ghost -> go acc body
    | _ -> acc
  in
  go [] e

let dedup_cons l =
  List.sort_uniq
    (fun a b ->
      match String.compare a.cu_ty b.cu_ty with
      | 0 -> String.compare a.cu_con b.cu_con
      | c -> c)
    l

let summarize_binding ~unit_name ~globals ~name (vb : Typedtree.value_binding)
    =
  let ctx =
    {
      unit_name;
      globals;
      refs = Hashtbl.create 32;
      allocs = [];
      pat_cons = [];
      exp_cons = [];
      poly = [];
      mut_ev = None;
      suppressed = false;
      heads = head_chain vb.vb_expr;
    }
  in
  let it = iterator ctx in
  it.expr it vb.vb_expr;
  let line, col = line_col vb.vb_loc in
  let binding_suppressed = has_attr "alloc_ok" vb.vb_attributes in
  let refs =
    Hashtbl.fold (fun _ use acc -> use :: acc) ctx.refs []
    |> List.sort (fun a b -> String.compare a.r_name b.r_name)
    |> List.map (fun r ->
           (* [@@alloc_ok] on the binding blesses its blocklisted calls
              too, not just its direct allocation sites. *)
           if binding_suppressed then { r with r_suppressed = true } else r)
  in
  {
    b_name = name;
    b_line = line;
    b_col = col;
    b_is_function = ctx.heads <> [];
    b_allocs =
      (if binding_suppressed then []
       else
         List.sort
           (fun a b ->
             match Int.compare a.a_line b.a_line with
             | 0 -> Int.compare a.a_col b.a_col
             | c -> c)
           ctx.allocs);
    b_refs = refs;
    b_pat_cons = dedup_cons ctx.pat_cons;
    b_exp_cons = dedup_cons ctx.exp_cons;
    b_poly = List.rev ctx.poly;
    b_mutable_evidence = ctx.mut_ev;
    b_sim_global = has_attr "sim_global" vb.vb_attributes;
  }

(* ------------------------------------------------------------------ *)
(* Structure walk: collect the global ident table first (so unqualified
   references resolve to qualified names), then summarize each binding,
   descending into nested modules with a dotted prefix.                 *)

let pattern_idents (p : Typedtree.pattern) =
  let acc = ref [] in
  let rec go (p : Typedtree.pattern) =
    match p.pat_desc with
    | Typedtree.Tpat_var (id, _) -> acc := id :: !acc
    | Typedtree.Tpat_alias (sub, id, _) ->
      acc := id :: !acc;
      go sub
    | Typedtree.Tpat_tuple ps -> List.iter go ps
    | _ -> ()
  in
  go p;
  List.rev !acc

let rec collect_globals ~prefix globals (str : Typedtree.structure) =
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Typedtree.Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            List.iter
              (fun id ->
                Hashtbl.replace globals (Ident.unique_name id)
                  (prefix ^ "." ^ Ident.name id))
              (pattern_idents vb.vb_pat))
          vbs
      | Typedtree.Tstr_module mb -> collect_globals_module ~prefix globals mb
      | Typedtree.Tstr_recmodule mbs ->
        List.iter (collect_globals_module ~prefix globals) mbs
      | _ -> ())
    str.str_items

and collect_globals_module ~prefix globals (mb : Typedtree.module_binding) =
  match mb.mb_id with
  | None -> ()
  | Some id -> (
    let prefix = prefix ^ "." ^ Ident.name id in
    match module_structure mb.mb_expr with
    | Some str -> collect_globals ~prefix globals str
    | None -> ())

and module_structure (me : Typedtree.module_expr) =
  match me.mod_desc with
  | Typedtree.Tmod_structure str -> Some str
  | Typedtree.Tmod_constraint (me, _, _, _) -> module_structure me
  | _ -> None

let rec collect_items ~unit_name ~prefix ~globals (str : Typedtree.structure)
    ~bindings ~types =
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Typedtree.Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            let name =
              match pattern_idents vb.vb_pat with
              | [ id ] -> prefix ^ "." ^ Ident.name id
              | _ ->
                let line, _ = line_col vb.vb_loc in
                Printf.sprintf "%s.(init@%d)" prefix line
            in
            bindings :=
              summarize_binding ~unit_name ~globals ~name vb :: !bindings)
          vbs
      | Typedtree.Tstr_type (_, decls) ->
        List.iter
          (fun (d : Typedtree.type_declaration) ->
            match d.typ_kind with
            | Typedtree.Ttype_variant cons ->
              let ty_cons =
                List.map
                  (fun (c : Typedtree.constructor_declaration) ->
                    let line, col = line_col c.cd_loc in
                    {
                      c_name = Ident.name c.cd_id;
                      c_line = line;
                      c_col = col;
                    })
                  cons
              in
              types :=
                { ty_name = prefix ^ "." ^ Ident.name d.typ_id; ty_cons }
                :: !types
            | _ -> ())
          decls
      | Typedtree.Tstr_module mb -> (
        match mb.mb_id with
        | None -> ()
        | Some id -> (
          match module_structure mb.mb_expr with
          | Some sub ->
            collect_items ~unit_name ~prefix:(prefix ^ "." ^ Ident.name id)
              ~globals sub ~bindings ~types
          | None -> ()))
      | _ -> ())
    str.str_items

let summarize (u : Typed_loader.unit_info) =
  let globals = Hashtbl.create 64 in
  collect_globals ~prefix:u.modname globals u.structure;
  let bindings = ref [] and types = ref [] in
  collect_items ~unit_name:u.modname ~prefix:u.modname ~globals u.structure
    ~bindings ~types;
  {
    u_modname = u.modname;
    u_source = u.source;
    u_bindings = List.rev !bindings;
    u_types = List.rev !types;
  }
