(* Load the compiler's .cmt typed trees out of _build.  Dune emits
   bin-annot files for every module it compiles; this module walks a
   directory tree (normally [_build/default/lib] or, when the driver runs
   inside the build sandbox, just [lib]), unmarshals each implementation,
   and hands back the typedtree plus repo-root-relative source path. *)

type unit_info = {
  modname : string;  (* dotted, e.g. "Simcore.Sim" *)
  source : string;  (* logical source path, e.g. "lib/simcore/sim.ml" *)
  structure : Typedtree.structure;
}

(* Dune mangles wrapped-library module names as [Lib__Module]; the dotted
   form is what source code writes and what rule manifests use. *)
let normalize_modname m =
  let n = String.length m in
  let buf = Buffer.create n in
  let rec go i =
    if i >= n then Buffer.contents buf
    else if i + 1 < n && m.[i] = '_' && m.[i + 1] = '_' then begin
      Buffer.add_char buf '.';
      go (i + 2)
    end
    else begin
      Buffer.add_char buf m.[i];
      go (i + 1)
    end
  in
  go 0

let has_suffix ~suffix s =
  let ls = String.length s and lx = String.length suffix in
  ls >= lx && String.sub s (ls - lx) lx = suffix

let read_unit path =
  match Cmt_format.read_cmt path with
  | exception _ -> None
  | cmt -> (
    match (cmt.Cmt_format.cmt_annots, cmt.Cmt_format.cmt_sourcefile) with
    | Cmt_format.Implementation structure, Some src
      when has_suffix ~suffix:".ml" src ->
      (* Library wrapper modules dune generates ([simcore.ml-gen]) fail the
         [.ml] suffix test and are skipped — they contain only aliases. *)
      Some
        {
          modname = normalize_modname cmt.Cmt_format.cmt_modname;
          source = Engine.logical_path src;
          structure;
        }
    | _ -> None)

let cmts_under ~skip_fixtures roots =
  let acc = ref [] in
  let rec walk dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> ()
    | entries ->
      Array.sort String.compare entries;
      Array.iter
        (fun entry ->
          let path = Filename.concat dir entry in
          if Sys.is_directory path then begin
            if not (skip_fixtures && entry = "fixtures") then walk path
          end
          else if has_suffix ~suffix:".cmt" path then acc := path :: !acc)
        entries
  in
  List.iter (fun root -> if Sys.file_exists root then walk root) roots;
  List.sort String.compare !acc

let load_files paths =
  let units = List.filter_map read_unit paths in
  List.sort (fun a b -> String.compare a.source b.source) units

let load_dir dir = load_files (cmts_under ~skip_fixtures:false [ dir ])
let load_tree ~roots = load_files (cmts_under ~skip_fixtures:true roots)
