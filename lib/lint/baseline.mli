(** The suppression baseline: pre-existing debt, frozen.

    The baseline file holds one {!Finding.key} per line ([rule|file|line|col];
    [#]-comments and blank lines ignored).  A finding whose key appears in
    the baseline is reported as suppressed and does not fail the gate; any
    finding not in the baseline is new debt and fails the build.
    [aurora_lint --update-baseline] regenerates the file from the current
    findings, so shrinking it is one command away and growing it is a
    reviewable diff. *)

type t

val empty : t

val load : string -> t
(** Missing file is an empty baseline (the desired steady state). *)

val mem : t -> Finding.t -> bool
val size : t -> int

val save : string -> Finding.t list -> unit
(** Write the keys of the given findings with a header comment, ordered by
    source position (file, line, col, rule) so regeneration is
    byte-stable for a given finding set across both lint tiers. *)
