(** The typed-tier rules: pure functions over {!Typed_summary} summaries.

    - [typed-hot-alloc] — walks the call graph from the hot-entry-point
      manifest ({!config.hot_roots}); any reachable allocation site or
      call to a blocklisted allocating external is a finding.  Escape
      hatch: [@alloc_ok "reason"] on the expression (or [@@alloc_ok] on
      the binding).  A manifest entry that no longer resolves is itself a
      finding, so the manifest cannot rot silently.
    - [typed-sim-global] — top-level mutable state in sim-scoped modules
      must be mentioned by a [Simcore.Reset.register] hook in the same
      module (directly, or through one level of local helper) or carry
      [@@sim_global].
    - [typed-describe-coverage] — every constructor of each type in
      {!config.describe_checks} must be matched by the paired function.
    - [typed-event-emit] — every constructor of each type in
      {!config.emit_checks} must be built somewhere outside the type's
      defining directory.
    - [typed-poly-compare] — no [Stdlib.compare]/[=]/[<]/... applied at a
      protocol type ({!config.poly_types}); the defining module is exempt. *)

type config = {
  hot_roots : string list;
  sim_scope : string -> bool;
  sim_allow : string list;
  describe_checks : (string * string) list;
  emit_checks : (string * string) list;
  poly_types : string list;
}

val default : config
(** The production manifest for this repo (see DESIGN.md §6). *)

val catalogue : (string * string) list
(** (rule id, one-line description) for [aurora_lint --rules]. *)

val run : config -> Typed_summary.unit_summary list -> Finding.t list
(** All rules over all units.  Unsorted; the engine sorts. *)
