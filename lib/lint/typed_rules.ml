(* The typed-tier rule set: pure functions over {!Typed_summary} unit
   summaries.  See DESIGN.md §6 for the catalogue and escape hatches. *)

type config = {
  hot_roots : string list;
      (* Qualified names of hot entry points; allocation reachable from any
         of them (through repo code) is a finding. *)
  sim_scope : string -> bool;  (* logical source path is sim-scoped *)
  sim_allow : string list;  (* path prefixes exempt from the purity rule *)
  describe_checks : (string * string) list;  (* (type, total function) *)
  emit_checks : (string * string) list;  (* (type, defining-dir prefix) *)
  poly_types : string list;  (* protocol types: no polymorphic compare *)
}

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let default =
  {
    hot_roots =
      [
        "Simcore.Sim.exec";
        "Simcore.Sim.step";
        "Simcore.Sim.run";
        "Simcore.Sim.run_until";
        "Simcore.Sim.schedule";
        "Simcore.Sim.schedule_at";
        "Simnet.Net.send";
        "Simnet.Net.deliver";
        "Wal.Hot_log.insert";
        "Wal.Hot_log.advance";
        "Wal.Log_record.make";
        "Wal.Log_record.op_bytes";
        "Wal.Log_record.lsn_range";
        "Wal.Log_record.is_commit";
        "Wal.Log_record.is_abort";
      ];
    sim_scope = (fun src -> has_prefix ~prefix:"lib/" src);
    sim_allow = [ "lib/simcore/reset.ml" ];
    describe_checks = [ ("Storage.Protocol.t", "Storage.Protocol.describe") ];
    emit_checks =
      [
        ("Recorder.Event.t", "lib/recorder");
        ("Recorder.Event.msg_kind", "lib/recorder");
      ];
    poly_types =
      [
        "Wal.Lsn.t";
        "Wal.Txn_id.t";
        "Wal.Block_id.t";
        "Quorum.Epoch.t";
        "Quorum.Member_id.t";
        "Storage.Pg_id.t";
        "Simnet.Addr.t";
      ];
  }

let catalogue =
  [
    ( "typed-hot-alloc",
      "no allocation reachable from a hot entry point ([@alloc_ok] to \
       exempt)" );
    ( "typed-sim-global",
      "top-level mutable state needs a Simcore.Reset.register hook or \
       [@@sim_global]" );
    ( "typed-describe-coverage",
      "every Storage.Protocol constructor handled in Protocol.describe" );
    ( "typed-event-emit",
      "every Recorder.Event constructor emitted by some non-recorder module"
    );
    ( "typed-poly-compare",
      "no polymorphic compare on protocol types (typed, catches local \
       bindings)" );
  ]

open Typed_summary

(* Findings that guard against manifest rot (a renamed root or type would
   otherwise silently disable a rule) anchor to this pseudo-file. *)
let manifest_file = "(typed-lint-manifest)"

let index_bindings units =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun u ->
      List.iter (fun b -> Hashtbl.replace tbl b.b_name (b, u)) u.u_bindings)
    units;
  tbl

(* ---------------- hot-path allocation ---------------- *)

let hot_alloc cfg units =
  let index = index_bindings units in
  let findings = ref [] in
  let add ~file ~line ~col msg =
    findings :=
      Finding.make ~rule:"typed-hot-alloc" ~file ~line ~col msg :: !findings
  in
  let visited = Hashtbl.create 256 in
  let rec visit ~root name =
    if not (Hashtbl.mem visited name) then begin
      Hashtbl.replace visited name ();
      match Hashtbl.find_opt index name with
      | None -> ()
      | Some (b, u) ->
        if b.b_is_function then begin
          List.iter
            (fun a ->
              add ~file:u.u_source ~line:a.a_line ~col:a.a_col
                (Printf.sprintf
                   "%s allocated in %s, reachable from hot entry %s \
                    (annotate [@alloc_ok \"reason\"] if deliberate)"
                   a.a_desc b.b_name root))
            b.b_allocs;
          List.iter
            (fun r ->
              if Hashtbl.mem index r.r_name then visit ~root r.r_name
              else if
                (not r.r_suppressed) && allocating_external r.r_name
              then
                add ~file:u.u_source ~line:r.r_line ~col:r.r_col
                  (Printf.sprintf
                     "call to allocating %s in %s, reachable from hot entry \
                      %s"
                     r.r_name b.b_name root))
            b.b_refs
        end
    end
  in
  List.iter
    (fun root ->
      if Hashtbl.mem index root then visit ~root root
      else
        add ~file:manifest_file ~line:1 ~col:0
          (Printf.sprintf
             "hot-path manifest entry %s not found in any analyzed module \
              (manifest rot?)"
             root))
    cfg.hot_roots;
  !findings

(* ---------------- sim-state purity ---------------- *)

let sim_global cfg units =
  let findings = ref [] in
  List.iter
    (fun u ->
      if
        cfg.sim_scope u.u_source
        && not
             (List.exists
                (fun p -> has_prefix ~prefix:p u.u_source)
                cfg.sim_allow)
      then begin
        (* Names mentioned by reset hooks in this unit, extended one level
           through local functions the hooks call. *)
        let hook_refs = Hashtbl.create 16 in
        List.iter
          (fun b ->
            if
              List.exists
                (fun r -> String.equal r.r_name "Simcore.Reset.register")
                b.b_refs
            then
              List.iter
                (fun r -> Hashtbl.replace hook_refs r.r_name ())
                b.b_refs)
          u.u_bindings;
        List.iter
          (fun b ->
            if b.b_is_function && Hashtbl.mem hook_refs b.b_name then
              List.iter
                (fun r -> Hashtbl.replace hook_refs r.r_name ())
                b.b_refs)
          u.u_bindings;
        List.iter
          (fun b ->
            match b.b_mutable_evidence with
            | Some (line, col, desc)
              when (not b.b_is_function) && not b.b_sim_global ->
              if not (Hashtbl.mem hook_refs b.b_name) then
                findings :=
                  Finding.make ~rule:"typed-sim-global" ~file:u.u_source
                    ~line ~col
                    (Printf.sprintf
                       "top-level mutable state %s (%s) must be covered by \
                        a Simcore.Reset.register hook in this module or \
                        annotated [@@sim_global]"
                       b.b_name desc)
                  :: !findings
            | _ -> ())
          u.u_bindings
      end)
    units;
  !findings

(* ---------------- protocol describe coverage ---------------- *)

let find_type units ty =
  List.fold_left
    (fun acc u ->
      match acc with
      | Some _ -> acc
      | None -> (
        match
          List.find_opt (fun d -> String.equal d.ty_name ty) u.u_types
        with
        | Some d -> Some (u, d)
        | None -> None))
    None units

let describe_coverage cfg units =
  let index = index_bindings units in
  let findings = ref [] in
  let manifest msg =
    findings :=
      Finding.make ~rule:"typed-describe-coverage" ~file:manifest_file
        ~line:1 ~col:0 msg
      :: !findings
  in
  List.iter
    (fun (ty, fn) ->
      match (find_type units ty, Hashtbl.find_opt index fn) with
      | None, _ ->
        manifest (Printf.sprintf "type %s not found (manifest rot?)" ty)
      | _, None ->
        manifest (Printf.sprintf "function %s not found (manifest rot?)" fn)
      | Some (tu, decl), Some (b, _) ->
        List.iter
          (fun c ->
            if
              not
                (List.exists
                   (fun cu ->
                     String.equal cu.cu_ty ty
                     && String.equal cu.cu_con c.c_name)
                   b.b_pat_cons)
            then
              findings :=
                Finding.make ~rule:"typed-describe-coverage" ~file:tu.u_source
                  ~line:c.c_line ~col:c.c_col
                  (Printf.sprintf "constructor %s of %s is not handled in %s"
                     c.c_name ty fn)
                :: !findings)
          decl.ty_cons)
    cfg.describe_checks;
  !findings

(* ---------------- event emission coverage ---------------- *)

let event_emit cfg units =
  let findings = ref [] in
  List.iter
    (fun (ty, defining_prefix) ->
      match find_type units ty with
      | None ->
        findings :=
          Finding.make ~rule:"typed-event-emit" ~file:manifest_file ~line:1
            ~col:0
            (Printf.sprintf "type %s not found (manifest rot?)" ty)
          :: !findings
      | Some (tu, decl) ->
        let emitted = Hashtbl.create 32 in
        List.iter
          (fun u ->
            if not (has_prefix ~prefix:defining_prefix u.u_source) then
              List.iter
                (fun b ->
                  List.iter
                    (fun cu ->
                      if String.equal cu.cu_ty ty then
                        Hashtbl.replace emitted cu.cu_con ())
                    b.b_exp_cons)
                u.u_bindings)
          units;
        List.iter
          (fun c ->
            if not (Hashtbl.mem emitted c.c_name) then
              findings :=
                Finding.make ~rule:"typed-event-emit" ~file:tu.u_source
                  ~line:c.c_line ~col:c.c_col
                  (Printf.sprintf
                     "constructor %s of %s is never emitted outside %s — \
                      dead event or missing hook site"
                     c.c_name ty defining_prefix)
                :: !findings)
          decl.ty_cons)
    cfg.emit_checks;
  !findings

(* ---------------- typed poly-compare ---------------- *)

(* The defining module is exempt: [Lsn.compare] itself is implemented on
   the underlying representation. *)
let defining_source units ty =
  match String.rindex_opt ty '.' with
  | None -> None
  | Some i -> (
    let m = String.sub ty 0 i in
    match List.find_opt (fun u -> String.equal u.u_modname m) units with
    | Some u -> Some u.u_source
    | None -> None)

let poly_compare cfg units =
  let findings = ref [] in
  List.iter
    (fun u ->
      List.iter
        (fun b ->
          List.iter
            (fun h ->
              let in_defining_module =
                match defining_source units h.p_ty with
                | Some src -> String.equal src u.u_source
                | None -> false
              in
              if
                List.exists (String.equal h.p_ty) cfg.poly_types
                && not in_defining_module
              then
                findings :=
                  Finding.make ~rule:"typed-poly-compare" ~file:u.u_source
                    ~line:h.p_line ~col:h.p_col
                    (Printf.sprintf
                       "polymorphic %s applied at type %s — use the \
                        module's typed compare/equal"
                       h.p_op h.p_ty)
                  :: !findings)
            b.b_poly)
        u.u_bindings)
    units;
  !findings

let run cfg units =
  hot_alloc cfg units @ sim_global cfg units
  @ describe_coverage cfg units
  @ event_emit cfg units @ poly_compare cfg units
