type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

let make ~rule ~file ~line ~col message = { rule; file; line; col; message }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.message b.message

let equal a b = compare a b = 0
let key t = Printf.sprintf "%s|%s|%d|%d" t.rule t.file t.line t.col

let to_string t =
  Printf.sprintf "%s:%d:%d: [%s] %s" t.file t.line t.col t.rule t.message

(* Minimal JSON string escaping: the only metacharacters findings can carry
   are quotes, backslashes, and control characters from source excerpts. *)
let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  Printf.sprintf
    {|{"rule":"%s","file":"%s","line":%d,"col":%d,"message":"%s"}|}
    (escape t.rule) (escape t.file) t.line t.col (escape t.message)

let list_to_json ts =
  match ts with
  | [] -> "[]\n"
  | ts ->
    let buf = Buffer.create 256 in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i t ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf "  ";
        Buffer.add_string buf (to_json t))
      ts;
    Buffer.add_string buf "\n]\n";
    Buffer.contents buf
