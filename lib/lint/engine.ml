let skip_dirs = [ "_build"; ".git"; "fixtures" ]

let logical_path p =
  let rec strip parts =
    match parts with
    | ("." | "..") :: rest -> strip rest
    | parts -> parts
  in
  String.concat "/" (strip (String.split_on_char '/' p))

let has_suffix ~suffix s =
  let ls = String.length s and lx = String.length suffix in
  ls >= lx && String.sub s (ls - lx) lx = suffix

let files_under roots =
  let acc = ref [] in
  let rec walk dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> ()
    | entries ->
      Array.sort String.compare entries;
      Array.iter
        (fun entry ->
          let path = Filename.concat dir entry in
          if Sys.is_directory path then begin
            if not (List.mem entry skip_dirs) then walk path
          end
          else if has_suffix ~suffix:".ml" path || has_suffix ~suffix:".mli" path
          then acc := path :: !acc)
        entries
  in
  List.iter (fun root -> if Sys.file_exists root then walk root) roots;
  List.sort String.compare !acc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* A file that does not parse cannot be checked, so it must fail the gate
   rather than slip through silently. *)
let parse_error ~path exn =
  [
    Finding.make ~rule:"parse-error" ~file:path ~line:1 ~col:0
      (Printf.sprintf "cannot parse: %s" (Printexc.to_string exn));
  ]

let lexbuf_of ~path contents =
  let lexbuf = Lexing.from_string contents in
  Lexing.set_filename lexbuf path;
  lexbuf

let lint_source ~path contents =
  let path = logical_path path in
  match Ppxlib.Parse.implementation (lexbuf_of ~path contents) with
  | exception exn -> parse_error ~path exn
  | st -> List.sort_uniq Finding.compare (Rules.check_structure ~path st)

let check_interface ~path contents =
  let path = logical_path path in
  match Ppxlib.Parse.interface (lexbuf_of ~path contents) with
  | exception exn -> parse_error ~path exn
  | (_ : Ppxlib.Parsetree.signature) -> []

let lint_file path =
  let contents = read_file path in
  if has_suffix ~suffix:".mli" path then check_interface ~path contents
  else lint_source ~path contents

let lint_tree ~roots =
  let files = files_under roots in
  let per_file = List.concat_map lint_file files in
  let logical = List.map logical_path files in
  let ml_files = List.filter (has_suffix ~suffix:".ml") logical in
  let mli_files = List.filter (has_suffix ~suffix:".mli") logical in
  let coverage = Rules.mli_coverage ~ml_files ~mli_files in
  List.sort_uniq Finding.compare (per_file @ coverage)
