(** Tree walking, parsing, and rule dispatch.

    The engine turns on-disk paths into repo-root-relative logical paths
    ([../../lib/core/foo.ml] → [lib/core/foo.ml]) before consulting rules or
    reporting, so findings and baseline keys are identical whether the tool
    runs from the repo root, from a dune sandbox, or from a test directory.

    Directories named [_build], [.git], or [fixtures] are skipped —
    [fixtures] so that the lint test suite's deliberately-broken snippets
    under [test/lint/fixtures/] never count against the real tree. *)

val logical_path : string -> string
(** Strip leading [./] and [../] segments. *)

val files_under : string list -> string list
(** All [.ml]/[.mli] files under the given root directories (on-disk paths,
    sorted, skip-list applied).  A root that does not exist contributes
    nothing. *)

val lint_source : path:string -> string -> Finding.t list
(** [lint_source ~path contents] parses [contents] as an implementation and
    runs every expression-level rule active for logical [path].  A syntax
    error yields a single [parse-error] finding rather than an exception:
    unparseable sim code must fail the gate loudly.  Findings are sorted. *)

val lint_file : string -> Finding.t list
(** Read and lint one on-disk [.ml] file ([.mli] files get a parse check
    only). *)

val lint_tree : roots:string list -> Finding.t list
(** Lint every source file under [roots] and apply the file-set rules
    (mli-coverage).  Sorted and deduplicated. *)
