(** The typed lint tier: cmt loading → summaries → interprocedural rules.

    Findings come back as plain {!Finding.t}s, so the baseline, JSON
    output, and exit-code plumbing are shared with the parse tier.  See
    DESIGN.md §6 for the rule catalogue ([typed-hot-alloc],
    [typed-sim-global], [typed-describe-coverage], [typed-event-emit],
    [typed-poly-compare]) and the [@alloc_ok] / [@@sim_global] escape
    hatches. *)

val lint_units :
  ?config:Typed_rules.config -> Typed_loader.unit_info list -> Finding.t list
(** Summarize and check an explicit unit list (tests feed fixture units
    here).  Sorted and deduplicated. *)

val lint :
  ?config:Typed_rules.config -> cmt_roots:string list -> unit -> Finding.t list
(** Load every [.cmt] under the given roots (skipping [fixtures]
    directories) and check them. *)

val default_cmt_roots : unit -> string list
(** [_build/default/lib] from the repo root, [lib] when already running
    inside the dune build context. *)
