(** Per-module summaries extracted from typed trees.

    One pass over each unit's typedtree produces, per top-level binding:
    direct allocation sites (with [@alloc_ok] suppression applied),
    referenced global names (the interprocedural call-graph edges),
    constructors matched in patterns and built in expressions, typed
    comparison applications, and mutable-state evidence.  The rules in
    {!Typed_rules} are pure functions over these summaries, which keeps
    them unit-testable without compiler-libs plumbing. *)

type alloc = { a_line : int; a_col : int; a_desc : string }

type ref_use = {
  r_name : string;  (** Normalized dotted name, e.g. ["Simcore.Heap.push"]. *)
  r_line : int;
  r_col : int;
  r_suppressed : bool;  (** Occurrence sits under an [@alloc_ok] subtree. *)
}

type con_use = { cu_ty : string; cu_con : string }
type poly_hit = { p_line : int; p_col : int; p_op : string; p_ty : string }

type binding = {
  b_name : string;  (** Qualified, e.g. ["Simcore.Sim.schedule_at"]. *)
  b_line : int;
  b_col : int;
  b_is_function : bool;
  b_allocs : alloc list;
      (** Direct allocation sites, [@alloc_ok] subtrees excluded; empty for
          bindings carrying [@@alloc_ok]. *)
  b_refs : ref_use list;  (** One entry per distinct referenced name. *)
  b_pat_cons : con_use list;  (** Constructors this binding matches on. *)
  b_exp_cons : con_use list;  (** Constructors this binding builds. *)
  b_poly : poly_hit list;  (** Polymorphic-compare applications, typed. *)
  b_mutable_evidence : (int * int * string) option;
      (** First sign the binding creates mutable storage (ref/table/array). *)
  b_sim_global : bool;  (** Carries [@@sim_global]. *)
}

type tycon = { c_name : string; c_line : int; c_col : int }
type tydecl = { ty_name : string; ty_cons : tycon list }

type unit_summary = {
  u_modname : string;
  u_source : string;
  u_bindings : binding list;
  u_types : tydecl list;  (** Variant declarations, qualified names. *)
}

val summarize : Typed_loader.unit_info -> unit_summary

val allocating_external : string -> bool
(** Is this (normalized, dotted) name on the known-allocating-externals
    blocklist — list/string builders, boxing conversions, formatting,
    option-wrapping lookups?  Stdlib-internal amortized growth (e.g.
    [Hashtbl.replace] resizing) and float boxing are documented
    out-of-scope (DESIGN.md §6). *)
