module S = Set.Make (String)

type t = S.t

let empty = S.empty

let trim = String.trim

let load path =
  if not (Sys.file_exists path) then S.empty
  else begin
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | exception End_of_file -> acc
      | line ->
        let line = trim line in
        if line = "" || line.[0] = '#' then go acc else go (S.add line acc)
    in
    let s = go S.empty in
    close_in ic;
    s
  end

let mem t f = S.mem (Finding.key f) t
let size = S.cardinal

let save path findings =
  (* Order by finding position (file, line, col, rule) rather than by the
     key string, so the written file reads in source order and the same
     finding set always produces the same bytes across both lint tiers. *)
  let sorted = List.sort_uniq Finding.compare findings in
  let keys =
    List.fold_left
      (fun acc f ->
        let k = Finding.key f in
        match acc with
        | prev :: _ when String.equal prev k -> acc
        | _ -> k :: acc)
      [] sorted
    |> List.rev
  in
  let oc = open_out path in
  output_string oc
    "# aurora_lint suppression baseline — one finding key per line\n\
     # (rule|file|line|col).  Regenerate with: aurora_lint --update-baseline\n\
     # Keep this file empty: new entries are frozen debt and need a reason\n\
     # in DESIGN.md §6.\n";
  List.iter
    (fun k ->
      output_string oc k;
      output_char oc '\n')
    keys;
  close_out oc
