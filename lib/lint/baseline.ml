module S = Set.Make (String)

type t = S.t

let empty = S.empty

let trim = String.trim

let load path =
  if not (Sys.file_exists path) then S.empty
  else begin
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | exception End_of_file -> acc
      | line ->
        let line = trim line in
        if line = "" || line.[0] = '#' then go acc else go (S.add line acc)
    in
    let s = go S.empty in
    close_in ic;
    s
  end

let mem t f = S.mem (Finding.key f) t
let size = S.cardinal

let save path findings =
  let keys =
    List.sort_uniq String.compare (List.map Finding.key findings)
  in
  let oc = open_out path in
  output_string oc
    "# aurora_lint suppression baseline — one finding key per line\n\
     # (rule|file|line|col).  Regenerate with: aurora_lint --update-baseline\n\
     # Keep this file empty: new entries are frozen debt and need a reason\n\
     # in DESIGN.md §6.\n";
  List.iter
    (fun k ->
      output_string oc k;
      output_char oc '\n')
    keys;
  close_out oc
