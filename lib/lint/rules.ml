open Ppxlib

(* ---------------------------------------------------------------- paths -- *)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let under dir path = has_prefix ~prefix:(dir ^ "/") path

(* Sim code: everything compiled into the simulator, its CLI, and the
   benchmark harness.  Wall-clock timing of the harness itself is the one
   legitimate use of real time, and Perf.Clock is the one module allowed to
   perform it — everything else (bench/ included) must route wall-clock
   reads through it. *)
let sim_code path =
  under "lib" path || under "bin" path || under "bench" path

(* Modules whose hash-table iteration order can leak into JSON / trace /
   time-series output.  lib/obs is the whole observability layer; report and
   trace render experiment output directly; lib/vopr renders violation
   lists and repro digests whose byte-identity across reruns is the whole
   point; lib/recorder renders flight-recorder artifacts and explain
   timelines under the same byte-stability contract. *)
let output_feeding path =
  under "lib/obs" path
  || under "lib/vopr" path
  || under "lib/recorder" path
  || path = "lib/harness/report.ml"
  || path = "lib/simcore/trace.ml"

(* ---------------------------------------------------------------- rules -- *)

type rule = {
  id : string;
  description : string;
  applies : string -> bool;
  allow : string list;
}

let determinism =
  {
    id = "determinism";
    description =
      "no Unix.*, Sys.time, Random.*, or Hashtbl.hash in sim code; route \
       sim time through Simcore.Time_ns, randomness through Simcore.Rng, \
       and harness wall-clock through Perf.Clock";
    applies = sim_code;
    (* The perf layer's wall-clock gateway: the single audited module that
       may read real time (for benchmark reports and profiling probes, never
       for simulated behaviour). *)
    allow = [ "lib/perf/clock.ml" ];
  }

let stable_iteration =
  {
    id = "stable-iteration";
    description =
      "no Hashtbl.iter/fold in modules that feed JSON/trace/series output; \
       use Obs.Stable.sorted_bindings so emission order is key-sorted";
    applies = output_feeding;
    (* Stable is the one audited place allowed to fold a hash table: it
       exists to sort the bindings before anyone can observe their order. *)
    allow = [ "lib/obs/stable.ml" ];
  }

let poly_compare =
  {
    id = "poly-compare";
    description =
      "no polymorphic =, <>, compare, min, max on abstract protocol types \
       (Lsn.t, Epoch.t, Txn_id.t, Member_id.t, Pg_id.t); use the module's \
       own equal/compare/min/max";
    applies = (fun _ -> true);
    (* The defining modules implement those functions. *)
    allow =
      [
        "lib/wal/lsn.ml";
        "lib/wal/txn_id.ml";
        "lib/quorum/epoch.ml";
        "lib/quorum/member_id.ml";
        "lib/storage/pg_id.ml";
      ];
  }

let mli_coverage_rule =
  {
    id = "mli-coverage";
    description = "every lib/**/*.ml must have a matching .mli";
    applies = (fun path -> under "lib" path);
    allow = [];
  }

let lsn_arith =
  {
    id = "lsn-arith";
    description =
      "no raw integer arithmetic on LSN-carrying values outside \
       lib/wal/lsn.ml; use Lsn.next/Lsn.add or keep the arithmetic behind \
       the Lsn interface";
    applies = (fun _ -> true);
    allow = [ "lib/wal/lsn.ml" ];
  }

let all =
  [ determinism; stable_iteration; poly_compare; mli_coverage_rule; lsn_arith ]

let find id = List.find_opt (fun r -> r.id = id) all

let active r path =
  r.applies path
  && not (List.exists (fun a -> a = path || under a path) r.allow)

(* ------------------------------------------------------- ident matching -- *)

let flatten lid = try Longident.flatten_exn lid with Invalid_argument _ -> []

(* [Stdlib.Random.int] and [Random.int] are the same thing to a rule. *)
let strip_stdlib = function "Stdlib" :: rest -> rest | parts -> parts

let protocol_modules = [ "Lsn"; "Epoch"; "Txn_id"; "Member_id"; "Pg_id" ]

(* Accessors that return a non-protocol type even though the path mentions a
   protocol module: [Lsn.to_int x = 3] is an int comparison, not a
   protocol-type comparison. *)
let escapes_protocol_type name =
  has_prefix ~prefix:"to_" name
  || has_prefix ~prefix:"is_" name
  || List.mem name
       [ "pp"; "cardinal"; "length"; "compare"; "equal"; "hash"; "diff" ]

(* A path mentions a protocol module and its final component is not a
   known type-escaping accessor: [Lsn.none] and [Member_id.Set.min_elt]
   count (polymorphic compare on Set.t values is just as broken as on t);
   [Lsn.to_int] and [Member_id.Set.cardinal] do not — they return plain
   ints. *)
let protocol_module_of parts =
  match List.find_opt (fun p -> List.mem p protocol_modules) parts with
  | None -> None
  | Some m ->
    (match List.rev parts with
    | last :: _ :: _ when escapes_protocol_type last -> None
    | _ -> Some m)

let rec type_mentions_protocol (ty : core_type) =
  match ty.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, args) ->
    (match protocol_module_of (flatten txt) with
    | Some m -> Some m
    | None -> List.find_map type_mentions_protocol args)
  | Ptyp_tuple tys -> List.find_map type_mentions_protocol tys
  | Ptyp_arrow (_, a, b) ->
    (match type_mentions_protocol a with
    | Some m -> Some m
    | None -> type_mentions_protocol b)
  | _ -> None

(* Does this operand look like a protocol-typed value?  Shallow structural
   walk: qualified idents, application heads, constraints, tuples and
   constructor arguments.  Anything opaque (a record field, a plain local
   identifier) yields None — the documented false-negative half of the
   approximation. *)
let rec operand_protocol (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> protocol_module_of (flatten txt)
  | Pexp_apply (f, _) -> operand_protocol f
  | Pexp_constraint (inner, ty) ->
    (match type_mentions_protocol ty with
    | Some m -> Some m
    | None -> operand_protocol inner)
  | Pexp_construct (_, Some inner) -> operand_protocol inner
  | Pexp_tuple es -> List.find_map operand_protocol es
  | _ -> None

(* [Lsn]-mentioning operand for the arithmetic rule.  Unlike poly-compare,
   [Lsn.to_int x + 1] is precisely the smell being hunted, so no accessor
   escape — only pretty-printers are exempt. *)
let rec operand_mentions_lsn (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } ->
    let parts = flatten txt in
    List.mem "Lsn" parts
    && (match List.rev parts with
       | last :: _ -> not (List.mem last [ "pp"; "to_string" ])
       | [] -> false)
  | Pexp_apply (f, _) -> operand_mentions_lsn f
  | Pexp_constraint (inner, ty) ->
    (match type_mentions_protocol ty with
    | Some "Lsn" -> true
    | _ -> operand_mentions_lsn inner)
  | _ -> false

let poly_ops = [ "="; "<>"; "compare"; "min"; "max" ]
let arith_ops = [ "+"; "-"; "*"; "/"; "mod" ]

(* The operator of an application, if it is an unqualified (or
   Stdlib-qualified) name from [ops].  Module-qualified operators like
   [Lsn.( < )] are the *fix*, not a finding. *)
let bare_op ops (f : expression) =
  match f.pexp_desc with
  | Pexp_ident { txt = Lident op; _ } when List.mem op ops -> Some op
  | Pexp_ident { txt = Ldot (Lident "Stdlib", op); _ } when List.mem op ops ->
    Some op
  | _ -> None

(* ------------------------------------------------- per-expression rules -- *)

let banned_ident parts =
  match strip_stdlib parts with
  | ("Unix" | "UnixLabels") :: _ ->
    Some "wall-clock / OS entropy via Unix; use Simcore.Time_ns (sim time) \
          or Simcore.Rng (seeded randomness)"
  | [ "Sys"; "time" ] ->
    Some "process time via Sys.time; use Simcore.Time_ns"
  | "Random" :: _ ->
    Some "unseeded global randomness via Stdlib.Random; use Simcore.Rng"
  | [ "Hashtbl"; ("hash" | "seeded_hash" | "hash_param") ] ->
    Some "Hashtbl.hash on sim state; use an explicit deterministic hash \
          (Simcore.Bits.fnv1a_string) so block placement and checksums are \
          representation-independent"
  | _ -> None

let hash_iteration parts =
  match strip_stdlib parts with
  | [ "Hashtbl"; (("iter" | "fold") as fn) ] -> Some fn
  | _ -> None

(* ---------------------------------------------------------- the walker -- *)

let finding ~rule ~path ~(loc : Location.t) message =
  Finding.make ~rule ~file:path ~line:loc.loc_start.pos_lnum
    ~col:(loc.loc_start.pos_cnum - loc.loc_start.pos_bol)
    message

let check_structure ~path st =
  let findings = ref [] in
  let emit f = findings := f :: !findings in
  let det = active determinism path in
  let stable = active stable_iteration path in
  let poly = active poly_compare path in
  let arith = active lsn_arith path in
  let visitor =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt; loc } ->
          let parts = flatten txt in
          let name = String.concat "." parts in
          (if det then
             match banned_ident parts with
             | Some why ->
               emit
                 (finding ~rule:determinism.id ~path ~loc
                    (Printf.sprintf "%s: %s" name why))
             | None -> ());
          if stable then (
            match hash_iteration parts with
            | Some fn ->
              emit
                (finding ~rule:stable_iteration.id ~path ~loc
                   (Printf.sprintf
                      "Hashtbl.%s in an output-feeding module iterates in \
                       hash order; use Obs.Stable.sorted_bindings"
                      fn))
            | None -> ())
        | Pexp_apply (f, args) ->
          (if poly then
             match bare_op poly_ops f with
             | Some op ->
               (match
                  List.find_map (fun (_, arg) -> operand_protocol arg) args
                with
               | Some m ->
                 emit
                   (finding ~rule:poly_compare.id ~path ~loc:e.pexp_loc
                      (Printf.sprintf
                         "polymorphic %s on a value that looks like %s.t; \
                          use %s.%s"
                         op m m
                         (match op with
                         | "=" -> "equal"
                         | "<>" -> "equal (negated)"
                         | op -> op)))
               | None -> ())
             | None -> ());
          if arith then (
            match bare_op arith_ops f with
            | Some op ->
              if List.exists (fun (_, arg) -> operand_mentions_lsn arg) args
              then
                emit
                  (finding ~rule:lsn_arith.id ~path ~loc:e.pexp_loc
                     (Printf.sprintf
                        "raw integer %s on an LSN-carrying value; use \
                         Lsn.next/Lsn.add or move the arithmetic behind \
                         lib/wal/lsn.ml"
                        op))
            | None -> ())
        | _ -> ());
        super#expression e
    end
  in
  visitor#structure st;
  !findings

(* ------------------------------------------------------- file-set rule -- *)

let mli_coverage ~ml_files ~mli_files =
  let mlis = List.sort_uniq String.compare mli_files in
  let has_mli ml = List.mem (ml ^ "i") mlis in
  List.filter_map
    (fun ml ->
      if active mli_coverage_rule ml && not (has_mli ml) then
        Some
          (Finding.make ~rule:mli_coverage_rule.id ~file:ml ~line:1 ~col:0
             (Printf.sprintf "missing interface %si" ml))
      else None)
    (List.sort_uniq String.compare ml_files)
