(** Loading typed trees ([.cmt] bin-annot files) from the dune build tree.

    The typed lint tier analyzes what the compiler actually saw — resolved
    paths, inferred types, constructor representations — rather than
    syntax.  Dune writes a [.cmt] next to every compiled module (under
    [<dir>/.<lib>.objs/byte/]); pointing {!load_tree} at
    [_build/default/lib] (or [lib] when already inside the build context)
    yields one {!unit_info} per implementation. *)

type unit_info = {
  modname : string;
      (** Dotted module path, e.g. ["Simcore.Sim"] (dune's [Lib__Module]
          mangling undone). *)
  source : string;
      (** Repo-root-relative source path, e.g. ["lib/simcore/sim.ml"]. *)
  structure : Typedtree.structure;
}

val normalize_modname : string -> string
(** [Simcore__Sim] → [Simcore.Sim]. *)

val read_unit : string -> unit_info option
(** Read one [.cmt].  [None] for interfaces, packs, unreadable files, and
    dune-generated wrapper modules (their "source" is a [.ml-gen]). *)

val load_dir : string -> unit_info list
(** Every implementation [.cmt] under one directory, sorted by source
    path.  Does not skip [fixtures] directories — the lint test suite uses
    this to load its deliberately-broken fixture library. *)

val load_tree : roots:string list -> unit_info list
(** Like {!load_dir} over several roots, but skips directories named
    [fixtures] so fixture code never counts against the real tree. *)
