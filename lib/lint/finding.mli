(** A single static-analysis finding.

    Findings are value-like: the engine produces them sorted and
    deduplicated, the baseline stores their {!key}s, and the driver renders
    them either human-readable ([file:line:col: [rule] message]) or as JSON
    for machine consumption. *)

type t = {
  rule : string;  (** Rule identifier, e.g. ["determinism"]. *)
  file : string;  (** Repo-root-relative path, e.g. ["lib/core/database.ml"]. *)
  line : int;  (** 1-based line. *)
  col : int;  (** 0-based column, compiler convention. *)
  message : string;
}

val make : rule:string -> file:string -> line:int -> col:int -> string -> t

val compare : t -> t -> int
(** Orders by (file, line, col, rule, message) so reports are stable. *)

val equal : t -> t -> bool

val key : t -> string
(** Stable baseline key: [rule|file|line|col].  The message is excluded so
    rewording a rule does not invalidate a suppression. *)

val to_string : t -> string
(** [file:line:col: [rule] message] — the compiler-style format editors can
    jump on. *)

val to_json : t -> string
(** One finding as a JSON object. *)

val list_to_json : t list -> string
(** A JSON array of findings, one per line, for [--json] output. *)
