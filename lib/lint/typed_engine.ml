(* Orchestration for the typed tier: load .cmt trees, summarize, run the
   interprocedural rules, and return sorted findings in the same
   {!Finding.t} shape as the parse tier so the baseline and drivers are
   shared. *)

let lint_units ?(config = Typed_rules.default) units =
  let summaries = List.map Typed_summary.summarize units in
  List.sort_uniq Finding.compare (Typed_rules.run config summaries)

let lint ?config ~cmt_roots () =
  lint_units ?config (Typed_loader.load_tree ~roots:cmt_roots)

(* Where the cmt trees live relative to the current directory: from the
   repo root that is [_build/default/lib]; inside the build context (where
   the @lint-typed dune action runs) it is just [lib]. *)
let default_cmt_roots () =
  if Sys.file_exists "_build/default/lib" then [ "_build/default/lib" ]
  else [ "lib" ]
