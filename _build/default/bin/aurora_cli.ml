(* aurora-cli: run the paper's experiments and demo scenarios from the
   command line.

     dune exec bin/aurora_cli.exe -- exp e6 --seed 7
     dune exec bin/aurora_cli.exe -- exp all
     dune exec bin/aurora_cli.exe -- bench
     dune exec bin/aurora_cli.exe -- smoke --txns 2000 --pgs 4 *)

open Cmdliner
module E = Harness.Experiments

let print r = Harness.Report.print r

let run_experiment name seed =
  match String.lowercase_ascii name with
  | "e1" -> print (E.E1.report (E.E1.run ~seed ()))
  | "e2" -> print (E.E2.report (E.E2.run ~seed ()))
  | "e3" -> print (E.E3.report (E.E3.run ()))
  | "e4" -> print (E.E4.report (E.E4.run ~seed ()))
  | "e5" -> print (E.E5.report (E.E5.run ~seed ()))
  | "e6" -> print (E.E6.report (E.E6.run ~seed ()))
  | "e7" -> print (E.E7.report (E.E7.run ~seed ()))
  | "e8" -> print (E.E8.report (E.E8.run ~seed ()))
  | "e9" -> print (E.E9.report (E.E9.run ~seed ()))
  | "e10" -> print (E.E10.report (E.E10.run ~seed ()))
  | "a1" -> print (E.Ablations.hedge_report (E.Ablations.hedge_sweep ~seed ()))
  | "a2" -> print (E.Ablations.gossip_report (E.Ablations.gossip_sweep ~seed ()))
  | "all" -> print_string (E.run_all ~seed ())
  | other ->
    Printf.eprintf "unknown experiment %S (e1..e10 or all)\n" other;
    exit 1

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let exp_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID" ~doc:"Experiment id: e1..e10, a1/a2 (ablations), or 'all'.")
  in
  Cmd.v
    (Cmd.info "exp"
       ~doc:"Regenerate a figure/claim of the paper (see DESIGN.md \xc2\xa74)")
    Term.(const run_experiment $ name_arg $ seed_arg)

let run_smoke txns pgs seed =
  let open Simcore in
  let module Database = Aurora_core.Database in
  let cluster =
    Harness.Cluster.create { Harness.Cluster.default_config with seed; n_pgs = pgs }
  in
  let sim = Harness.Cluster.sim cluster in
  let db = Harness.Cluster.db cluster in
  let gen =
    Workload.Txn_gen.create ~sim ~rng:(Rng.create (seed + 1)) ~db
      ~profile:Workload.Txn_gen.default_profile ()
  in
  Workload.Txn_gen.run_open_loop gen ~rate_per_sec:2000.
    ~duration:(Time_ns.us (txns * 500));
  Sim.run_until sim (Time_ns.add (Time_ns.us (txns * 500)) (Time_ns.sec 2));
  let m = Database.metrics db in
  Printf.printf "txns: issued=%d acked=%d failed=%d\n"
    (Workload.Txn_gen.issued gen)
    (Workload.Txn_gen.acked gen)
    (Workload.Txn_gen.failed gen);
  Printf.printf "commit latency: p50=%s p99=%s\n"
    (Time_ns.to_string (Histogram.percentile m.Database.commit_latency 50.))
    (Time_ns.to_string (Histogram.percentile m.Database.commit_latency 99.));
  Printf.printf "reads: cache hits=%d storage=%d\n" m.Database.cache_hit_reads
    m.Database.storage_reads;
  Printf.printf "VCL=%d VDL=%d records=%d\n"
    (Wal.Lsn.to_int (Database.vcl db))
    (Wal.Lsn.to_int (Database.vdl db))
    m.Database.records_written;
  let st = Simnet.Net.stats (Harness.Cluster.net cluster) in
  Printf.printf "network: sent=%d delivered=%d bytes=%d\n" st.Simnet.Net.sent
    st.Simnet.Net.delivered st.Simnet.Net.bytes_sent

let smoke_cmd =
  let txns = Arg.(value & opt int 1000 & info [ "txns" ] ~doc:"Transactions.") in
  let pgs = Arg.(value & opt int 2 & info [ "pgs" ] ~doc:"Protection groups.") in
  Cmd.v
    (Cmd.info "smoke" ~doc:"Run a quick cluster workload and print metrics")
    Term.(const run_smoke $ txns $ pgs $ seed_arg)

let bench_cmd =
  Cmd.v
    (Cmd.info "bench" ~doc:"Run every experiment (same as 'exp all')")
    Term.(const (fun seed -> print_string (E.run_all ~seed ())) $ seed_arg)

let default =
  Term.(ret (const (fun () -> `Help (`Pager, None)) $ const ()))

let () =
  let info =
    Cmd.info "aurora-cli" ~version:"1.0.0"
      ~doc:
        "Reproduction of 'Amazon Aurora: On Avoiding Distributed Consensus \
         for I/Os, Commits, and Membership Changes' (SIGMOD'18)"
  in
  exit (Cmd.eval (Cmd.group ~default info [ exp_cmd; smoke_cmd; bench_cmd ]))
