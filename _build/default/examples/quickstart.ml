(* Quickstart: bring up an Aurora-style cluster, run transactions, crash
   the writer, recover without redo replay, and show that every
   acknowledged commit survived.

     dune exec examples/quickstart.exe

   The cluster is entirely simulated (deterministic discrete-event
   simulation), so this runs in milliseconds of wall-clock time while
   modelling seconds of cluster time across three availability zones. *)

open Simcore
module Database = Aurora_core.Database
module Cluster = Harness.Cluster

let step fmt = Printf.printf ("\n== " ^^ fmt ^^ " ==\n")

let () =
  step "1. build a cluster: writer + 2 protection groups x 6 segments / 3 AZs";
  let cluster = Cluster.create Cluster.default_config in
  let sim = Cluster.sim cluster in
  let db = Cluster.db cluster in
  Printf.printf "storage nodes: %d, volume epoch: %d\n"
    (List.length (Cluster.storage_nodes cluster))
    (Quorum.Epoch.to_int (Aurora_core.Volume.volume_epoch (Database.volume db)));

  step "2. commit 500 transactions (asynchronous quorum writes, no consensus)";
  let acked = ref 0 in
  for i = 1 to 500 do
    let txn = Database.begin_txn db in
    Database.put db ~txn ~key:(Printf.sprintf "user:%04d" i)
      ~value:(Printf.sprintf "balance=%d" (i * 10));
    Database.commit db ~txn (fun r -> if r = Ok () then incr acked)
  done;
  Sim.run_until sim (Time_ns.sec 2);
  let m = Database.metrics db in
  Printf.printf "acked %d/500 commits; commit latency p50=%s p99=%s\n" !acked
    (Time_ns.to_string (Histogram.percentile m.Database.commit_latency 50.))
    (Time_ns.to_string (Histogram.percentile m.Database.commit_latency 99.));
  Printf.printf "VCL=%d VDL=%d (all consistency points advanced by local bookkeeping)\n"
    (Wal.Lsn.to_int (Database.vcl db))
    (Wal.Lsn.to_int (Database.vdl db));

  step "3. snapshot reads (tracked direct reads, no read quorum)";
  let got = ref 0 in
  for i = 1 to 500 do
    Database.get db ~key:(Printf.sprintf "user:%04d" i) (fun r ->
        match r with Ok (Some _) -> incr got | _ -> ())
  done;
  Sim.run_until sim (Time_ns.add (Sim.now sim) (Time_ns.sec 2));
  Printf.printf "read back %d/500 keys\n" !got;

  step "4. crash the writer (all ephemeral state gone)";
  Database.crash db;
  Sim.run_until sim (Time_ns.add (Sim.now sim) (Time_ns.ms 100));
  Printf.printf "instance open: %b\n" (Database.is_open db);

  step "5. recover: read-quorum SCL poll + truncation; no redo replay";
  let outcome = ref None in
  Database.recover db (fun r -> outcome := Some r);
  Sim.run_until sim (Time_ns.add (Sim.now sim) (Time_ns.sec 30));
  (match !outcome with
  | Some (Ok o) ->
    Printf.printf
      "recovered in %s (simulated): VCL=%d, truncation (%d, %d], epoch now %d\n"
      (Time_ns.to_string o.Aurora_core.Recovery.duration)
      (Wal.Lsn.to_int o.Aurora_core.Recovery.vcl)
      (Wal.Lsn.to_int o.Aurora_core.Recovery.truncate_above)
      (Wal.Lsn.to_int o.Aurora_core.Recovery.truncate_upto)
      (Quorum.Epoch.to_int (Aurora_core.Volume.volume_epoch (Database.volume db)))
  | Some (Error e) -> failwith ("recovery failed: " ^ e)
  | None -> failwith "recovery did not finish");

  step "6. audit: every acknowledged commit must still be readable";
  let ok = ref 0 and lost = ref 0 in
  for i = 1 to 500 do
    Database.get db ~key:(Printf.sprintf "user:%04d" i) (fun r ->
        match r with
        | Ok (Some v) when v = Printf.sprintf "balance=%d" (i * 10) -> incr ok
        | _ -> incr lost)
  done;
  Sim.run_until sim (Time_ns.add (Sim.now sim) (Time_ns.sec 5));
  Printf.printf "intact: %d, lost: %d\n" !ok !lost;
  if !lost > 0 then exit 1;
  print_endline "\nquickstart OK: zero acknowledged commits lost across the crash."
