(* Quorum sets of unlike members: full + tail segments (paper §4.2).

     dune exec examples/tiered_storage.exe

   A protection group of three full segments (redo log + materialized
   blocks) and three tail segments (redo log only) keeps the AZ+1
   durability bar with roughly half the bytes of six full copies:

     write quorum: 4/6 of any segment  OR  3/3 of the full segments
     read  quorum: 3/6 of any segment  AND 1/3 of the full segments

   The demo runs the same workload against both designs and compares
   storage footprint and fault tolerance. *)

open Simcore
open Quorum
module Database = Aurora_core.Database
module Cluster = Harness.Cluster
module Txn_gen = Workload.Txn_gen
module FM = Availability.Fleet_model

let run_design layout name =
  let cluster =
    Cluster.create { Cluster.default_config with seed = 23; n_pgs = 1; layout }
  in
  let sim = Cluster.sim cluster in
  let gen =
    Txn_gen.create ~sim ~rng:(Rng.create 9) ~db:(Cluster.db cluster)
      ~profile:
        {
          Txn_gen.default_profile with
          write_fraction = 1.;
          ops_per_txn = 4;
          value_size = 256;
        }
      ()
  in
  Txn_gen.run_open_loop gen ~rate_per_sec:2000. ~duration:(Time_ns.sec 1);
  Sim.run_until sim (Time_ns.sec 15);
  let bytes =
    List.fold_left
      (fun acc node ->
        List.fold_left
          (fun acc seg -> acc + Storage.Segment.bytes_stored seg)
          acc
          (Storage.Storage_node.segments node))
      0
      (Cluster.storage_nodes cluster)
  in
  Printf.printf "%-28s acked=%d  storage=%d bytes\n" name (Txn_gen.acked gen) bytes;
  bytes

let () =
  print_endline "same workload, two protection-group designs:\n";
  let v6 = run_design Cluster.V6 "6 full segments" in
  let tiered = run_design Cluster.Tiered "3 full + 3 tail (tiered)" in
  Printf.printf "\nbytes ratio tiered/full: %.2f (data blocks exist only on fulls)\n"
    (float_of_int tiered /. float_of_int v6);

  print_endline "\nfault tolerance (deterministic quorum-set check):";
  List.iter
    (fun (name, layout) ->
      let members, rule = Harness.Experiments.scheme_rule layout in
      let t = FM.az_tolerance ~members ~rule in
      Printf.printf
        "  %-28s survives AZ: %b, survives AZ+1 (repairable): %b\n" name
        t.FM.write_survives_az t.FM.read_survives_az_plus_one)
    [ ("6 full segments", Cluster.V6); ("3 full + 3 tail", Cluster.Tiered) ];

  (* Show the tiered write quorum in both of its shapes. *)
  let members, rule = Harness.Experiments.scheme_rule Cluster.Tiered in
  Format.printf "\ntiered rule: %a@." Quorum_set.Rule.pp rule;
  let fulls =
    List.filter_map
      (fun (m : Membership.member) ->
        if m.Membership.kind = Membership.Full then Some m.Membership.id else None)
      members
  in
  Format.printf "writing to just the three fulls meets quorum: %b@."
    (Quorum_set.satisfied rule.Quorum_set.Rule.write (Member_id.set_of_list fulls));
  print_endline "\ntiered_storage OK."
