examples/tiered_storage.ml: Aurora_core Availability Format Harness List Member_id Membership Printf Quorum Quorum_set Rng Sim Simcore Storage Time_ns Workload
