examples/replica_failover.ml: Aurora_core Distribution Harness Hashtbl Histogram List Printf Quorum Result Rng Sim Simcore Simnet String Time_ns Wal Workload
