examples/membership_change.mli:
