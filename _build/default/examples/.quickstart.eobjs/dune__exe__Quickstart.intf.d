examples/quickstart.mli:
