examples/quickstart.ml: Aurora_core Harness Histogram List Printf Quorum Sim Simcore Time_ns Wal
