examples/replica_failover.mli:
