examples/tiered_storage.mli:
