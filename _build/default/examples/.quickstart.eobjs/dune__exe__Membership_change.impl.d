examples/membership_change.ml: Aurora_core Distribution Format Harness Member_id Membership Printf Quorum Quorum_set Rng Sim Simcore Storage Time_ns Workload
