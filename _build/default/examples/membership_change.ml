(* Non-blocking, reversible membership changes (paper §4.1, Figure 5).

     dune exec examples/membership_change.exe

   Segment F of a protection group dies.  Rather than waiting to see if it
   comes back, the monitor immediately adds a fresh segment G under a dual
   quorum (epoch 2: write 4/6 ABCDEF AND 4/6 ABCDEG).  Writes continue the
   whole time — ABCD alone satisfies both sides.  Once G has hydrated, a
   second epoch increment finalizes ABCDEG (epoch 3).  Had F returned, the
   same machinery would have stepped back to ABCDEF instead; the second
   half of the demo shows that revert path. *)

open Simcore
open Quorum
module Database = Aurora_core.Database
module Volume = Aurora_core.Volume
module Cluster = Harness.Cluster
module Txn_gen = Workload.Txn_gen
module Pg_id = Storage.Pg_id

let show_group cluster label =
  let g = Volume.find_pg (Database.volume (Cluster.db cluster)) (Pg_id.of_int 0) in
  Format.printf "%s: %a@.    rule: %a@." label Membership.pp
    g.Volume.membership Quorum_set.Rule.pp (Membership.rule g.Volume.membership)

let () =
  let pg = Pg_id.of_int 0 in
  let suspect = Member_id.of_int 5 (* "F" *) in
  let cluster =
    Cluster.create { Cluster.default_config with seed = 17; n_pgs = 1 }
  in
  let sim = Cluster.sim cluster in
  let gen =
    Txn_gen.create ~sim ~rng:(Rng.create 5) ~db:(Cluster.db cluster)
      ~profile:{ Txn_gen.default_profile with write_fraction = 1.; ops_per_txn = 2 }
      ()
  in
  Txn_gen.run_closed_loop gen ~clients:8
    ~think_time:(Distribution.constant (Time_ns.ms 1))
    ~duration:(Time_ns.sec 6);
  Sim.run_until sim (Time_ns.sec 1);
  show_group cluster "epoch 1 (steady)";

  Printf.printf "\n-- segment F's storage node is destroyed (data gone) --\n";
  Cluster.destroy_storage_node cluster pg suspect;
  Sim.run_until sim (Time_ns.add (Sim.now sim) (Time_ns.ms 200));
  let before = Txn_gen.acked gen in

  let replacement =
    match Cluster.start_replacement cluster pg ~suspect with
    | Ok m -> m
    | Error e -> failwith e
  in
  Format.printf "\nreplacement member: %a (fresh node in F's AZ)@." Member_id.pp
    replacement;
  show_group cluster "epoch 2 (dual quorums, change in flight)";

  (* Watch hydration while commits keep flowing. *)
  let rec watch () =
    if not (Cluster.replacement_caught_up cluster pg ~replacement) then
      ignore (Sim.schedule sim ~delay:(Time_ns.ms 50) watch)
  in
  watch ();
  Sim.run_until sim (Time_ns.add (Sim.now sim) (Time_ns.sec 2));
  Printf.printf "\ncommits acked while the change was in flight: %d\n"
    (Txn_gen.acked gen - before);
  Printf.printf "replacement caught up: %b\n"
    (Cluster.replacement_caught_up cluster pg ~replacement);

  (match Cluster.finish_replacement cluster pg ~suspect with
  | Ok () -> ()
  | Error e -> failwith e);
  show_group cluster "\nepoch 3 (finalized on the new member set)";
  Sim.run_until sim (Time_ns.sec 8);
  Printf.printf "\ntotal commits: %d, failed: %d\n" (Txn_gen.acked gen)
    (Txn_gen.failed gen);

  (* ---- the revert path: F comes back before we finalize ---- *)
  Printf.printf "\n==== second run: the suspect returns, change reversed ====\n";
  let cluster2 =
    Cluster.create { Cluster.default_config with seed = 18; n_pgs = 1 }
  in
  let sim2 = Cluster.sim cluster2 in
  Sim.run_until sim2 (Time_ns.ms 500);
  (match Cluster.start_replacement cluster2 pg ~suspect with
  | Ok r -> Format.printf "started replacing F with %a...@." Member_id.pp r
  | Error e -> failwith e);
  show_group cluster2 "epoch 2 (dual quorums)";
  Sim.run_until sim2 (Time_ns.sec 1);
  Printf.printf "\n-- F turns out to be healthy after all: revert --\n";
  (match Cluster.revert_replacement cluster2 pg ~suspect with
  | Ok () -> ()
  | Error e -> failwith e);
  show_group cluster2 "epoch 3 (back on the original member set)";
  (* Prove writes still work after the revert. *)
  let db2 = Cluster.db cluster2 in
  let txn = Database.begin_txn db2 in
  Database.put db2 ~txn ~key:"after-revert" ~value:"ok";
  let acked = ref false in
  Database.commit db2 ~txn (fun r -> acked := r = Ok ());
  Sim.run_until sim2 (Time_ns.add (Sim.now sim2) (Time_ns.sec 2));
  Printf.printf "\ncommit after revert acked: %b\n" !acked;
  print_endline "\nmembership_change OK: both transitions non-blocking & reversible."
