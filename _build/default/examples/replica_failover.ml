(* Read replicas and failover (paper §3.2–3.4).

     dune exec examples/replica_failover.exe

   A read replica attaches to the same storage volume as the writer,
   consumes the physical redo stream (MTR chunks + VDL control records +
   commit notifications), serves snapshot reads anchored at its VDL view,
   and — when the writer dies — is promoted by running the §2.4 recovery
   procedure against the shared volume.  No acknowledged commit is lost,
   because durable state was never on the writer to begin with. *)

open Simcore
module Database = Aurora_core.Database
module Replica = Aurora_core.Replica
module Cluster = Harness.Cluster
module Txn_gen = Workload.Txn_gen

let () =
  let cluster = Cluster.create { Cluster.default_config with seed = 7 } in
  let sim = Cluster.sim cluster in
  let db = Cluster.db cluster in
  let replica = Cluster.add_replica cluster in
  Printf.printf "writer at n%d, replica at n%d (different AZ)\n"
    (Simnet.Addr.to_int (Database.addr db))
    (Simnet.Addr.to_int (Replica.addr replica));

  (* Drive a mixed workload and read from the replica concurrently. *)
  let gen =
    Txn_gen.create ~sim ~rng:(Rng.create 3) ~db
      ~profile:{ Txn_gen.default_profile with write_fraction = 0.8 } ()
  in
  Txn_gen.run_closed_loop gen ~clients:8
    ~think_time:(Distribution.constant (Time_ns.ms 1))
    ~duration:(Time_ns.sec 4);
  let replica_reads = ref 0 in
  Sim.every sim ~interval:(Time_ns.ms 5) (fun () ->
      if Time_ns.compare (Sim.now sim) (Time_ns.sec 4) < 0 then begin
        Replica.get replica ~key:(Printf.sprintf "key-%06d" (Rng.int (Cluster.rng cluster) 100))
          (fun r -> if Result.is_ok r then incr replica_reads);
        true
      end
      else false);
  Sim.run_until sim (Time_ns.sec 5);
  let rm = Replica.metrics replica in
  Printf.printf
    "writer acked %d commits; replica served %d reads, applied %d cached \
     records, stream lag p50=%s p99=%s\n"
    (Txn_gen.acked gen) !replica_reads rm.Replica.records_applied
    (Time_ns.to_string (Histogram.percentile rm.Replica.stream_lag 50.))
    (Time_ns.to_string (Histogram.percentile rm.Replica.stream_lag 99.));
  Printf.printf "replica read anchor (VDL seen): %d, writer VDL: %d\n"
    (Wal.Lsn.to_int (Replica.vdl_seen replica))
    (Wal.Lsn.to_int (Database.vdl db));

  (* Writer dies; replica takes over via crash recovery on the shared
     volume. *)
  print_endline "\n-- writer crashes; promoting the replica --";
  Database.crash db;
  Sim.run_until sim (Time_ns.add (Sim.now sim) (Time_ns.ms 200));
  let promoted = ref None in
  Replica.promote replica ~config:Cluster.default_config.Cluster.db_config
    (fun r -> promoted := Some r);
  Sim.run_until sim (Time_ns.add (Sim.now sim) (Time_ns.sec 30));
  let new_db, outcome =
    match !promoted with
    | Some (Ok (db, o)) -> (db, o)
    | Some (Error e) -> failwith ("promotion failed: " ^ e)
    | None -> failwith "promotion did not finish"
  in
  Printf.printf "promoted in %s; new writer open=%b, volume epoch=%d\n"
    (Time_ns.to_string outcome.Aurora_core.Recovery.duration)
    (Database.is_open new_db)
    (Quorum.Epoch.to_int (Aurora_core.Volume.volume_epoch (Database.volume new_db)));

  (* Audit durability through the failover. *)
  let writes = Txn_gen.writes_in_issue_order gen in
  let valid = Hashtbl.create 256 in
  List.iter
    (fun (key, value, acked) ->
      if acked then Hashtbl.replace valid key [ value ]
      else
        match Hashtbl.find_opt valid key with
        | Some vs -> Hashtbl.replace valid key (value :: vs)
        | None -> ())
    writes;
  let lost = ref 0 and checked = ref 0 in
  Hashtbl.iter
    (fun key valid_values ->
      incr checked;
      Database.get new_db ~key (fun r ->
          match r with
          | Ok (Some v) when List.exists (String.equal v) valid_values -> ()
          | _ -> incr lost))
    valid;
  Sim.run_until sim (Time_ns.add (Sim.now sim) (Time_ns.sec 10));
  Printf.printf "audited %d keys after failover: %d lost\n" !checked !lost;
  if !lost > 0 then exit 1;
  print_endline "\nreplica_failover OK: promotion lost nothing.";
  (* The new writer keeps serving. *)
  let txn = Database.begin_txn new_db in
  Database.put new_db ~txn ~key:"post-failover" ~value:"works";
  let acked = ref false in
  Database.commit new_db ~txn (fun r -> acked := r = Ok ());
  Sim.run_until sim (Time_ns.add (Sim.now sim) (Time_ns.sec 2));
  Printf.printf "post-failover commit acked: %b\n" !acked
