(* Tests for quorum sets, epochs, membership transitions, and layouts. *)
open Quorum

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let m i = Member_id.of_int i
let mset is = Member_id.set_of_list (List.map m is)
let six = List.init 6 m

(* ---- Quorum_set basics ---- *)

let test_atom_satisfaction () =
  let q = Quorum_set.k_of 4 six in
  check_bool "4 of 6" true (Quorum_set.satisfied q (mset [ 0; 1; 2; 3 ]));
  check_bool "3 of 6" false (Quorum_set.satisfied q (mset [ 0; 1; 2 ]));
  check_bool "extra members ignored" true
    (Quorum_set.satisfied q (mset [ 0; 1; 2; 3; 9 ]))

let test_atom_validation () =
  Alcotest.check_raises "threshold too big"
    (Invalid_argument "Quorum_set.k_of: threshold exceeds member count")
    (fun () -> ignore (Quorum_set.k_of 4 [ m 0; m 1 ]));
  Alcotest.check_raises "duplicates"
    (Invalid_argument "Quorum_set.k_of: duplicate members") (fun () ->
      ignore (Quorum_set.k_of 1 [ m 0; m 0 ]))

let test_boolean_combinators () =
  let a = Quorum_set.k_of 2 [ m 0; m 1; m 2 ] in
  let b = Quorum_set.k_of 2 [ m 3; m 4; m 5 ] in
  check_bool "AND needs both" false
    (Quorum_set.satisfied (Quorum_set.all [ a; b ]) (mset [ 0; 1 ]));
  check_bool "AND satisfied" true
    (Quorum_set.satisfied (Quorum_set.all [ a; b ]) (mset [ 0; 1; 3; 4 ]));
  check_bool "OR either side" true
    (Quorum_set.satisfied (Quorum_set.any [ a; b ]) (mset [ 3; 4 ]));
  check_bool "OR none" false
    (Quorum_set.satisfied (Quorum_set.any [ a; b ]) (mset [ 0; 3 ]))

let test_min_cardinality () =
  check_int "plain atom" 4 (Quorum_set.min_cardinality (Quorum_set.k_of 4 six));
  let tiered_write =
    Quorum_set.any
      [ Quorum_set.k_of 4 six; Quorum_set.k_of 3 [ m 0; m 2; m 4 ] ]
  in
  check_int "tiered write can use 3 fulls" 3
    (Quorum_set.min_cardinality tiered_write)

(* ---- The paper's rules (§2.1) ---- *)

let test_aurora_46_rule () =
  let write = Quorum_set.k_of 4 six and read = Quorum_set.k_of 3 six in
  check_bool "read/write overlap" true (Quorum_set.overlaps ~read ~write);
  check_bool "write self-overlap" true (Quorum_set.self_overlapping write);
  (match Quorum_set.Rule.make ~read ~write with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* 2/6 read would not overlap a 4/6 write. *)
  check_bool "2/6 read unsafe" false
    (Quorum_set.overlaps ~read:(Quorum_set.k_of 2 six) ~write);
  (* 3/6 write quorums can be disjoint. *)
  check_bool "3/6 write unsafe" false
    (Quorum_set.self_overlapping (Quorum_set.k_of 3 six))

let test_tiered_rule_safe () =
  let g = Layout.group_tiered () in
  let rule = Membership.rule g in
  check_bool "tiered overlaps" true
    (Quorum_set.overlaps ~read:rule.Quorum_set.Rule.read
       ~write:rule.Quorum_set.Rule.write);
  check_bool "tiered write self-overlap" true
    (Quorum_set.self_overlapping rule.Quorum_set.Rule.write)

let test_transition_rule_safe () =
  (* Figure 5, epoch 2: write (4/6 ABCDEF AND 4/6 ABCDEG), read (3/6 OR 3/6). *)
  let abcdef = List.init 6 m in
  let abcdeg = List.init 5 m @ [ m 6 ] in
  let write =
    Quorum_set.all [ Quorum_set.k_of 4 abcdef; Quorum_set.k_of 4 abcdeg ]
  in
  let read =
    Quorum_set.any [ Quorum_set.k_of 3 abcdef; Quorum_set.k_of 3 abcdeg ]
  in
  (match Quorum_set.Rule.make ~read ~write with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* Writing to ABCD satisfies both sides (the paper's observation). *)
  check_bool "ABCD meets transitional write quorum" true
    (Quorum_set.satisfied write (mset [ 0; 1; 2; 3 ]))

let prop_overlap_brute_force =
  (* Cross-validate [overlaps] against direct counterexample search on
     random small quorum structures. *)
  let gen =
    QCheck.Gen.(
      let* n = int_range 3 6 in
      let members = List.init n Member_id.of_int in
      let* k1 = int_range 1 n in
      let* k2 = int_range 1 n in
      let* extra = int_range 0 1 in
      let q1 = Quorum_set.k_of k1 members in
      let q2 = Quorum_set.k_of k2 members in
      if extra = 0 then return (q1, q2)
      else
        let* k3 = int_range 1 n in
        return (Quorum_set.all [ q1; Quorum_set.k_of k3 members ], q2))
  in
  QCheck.Test.make ~name:"overlaps agrees with k-arithmetic" ~count:200
    (QCheck.make gen) (fun (read, write) ->
      match (read, write) with
      | Quorum_set.Atom { threshold = kr; members }, Quorum_set.Atom { threshold = kw; _ }
        ->
        let n = Member_id.Set.cardinal members in
        Quorum_set.overlaps ~read ~write = (kr + kw > n)
      | _ ->
        (* Composite cases: just require consistency with satisfiability of
           complement-disjointness (re-derived via tolerates). *)
        let u = Member_id.Set.union (Quorum_set.members read) (Quorum_set.members write) in
        let brute =
          (* search all subsets for a violating split *)
          let arr = Array.of_list (Member_id.Set.elements u) in
          let n = Array.length arr in
          let rec search mask =
            if mask >= 1 lsl n then true
            else begin
              let s = ref Member_id.Set.empty in
              Array.iteri
                (fun i mm -> if mask land (1 lsl i) <> 0 then s := Member_id.Set.add mm !s)
                arr;
              if
                Quorum_set.satisfied read !s
                && Quorum_set.satisfied write (Member_id.Set.diff u !s)
              then false
              else search (mask + 1)
            end
          in
          search 0
        in
        Quorum_set.overlaps ~read ~write = brute)

(* ---- Epochs ---- *)

let test_epochs () =
  let e1 = Epoch.initial in
  let e2 = Epoch.next e1 in
  check_bool "stale" true (Epoch.is_stale e1 ~current:e2);
  check_bool "current ok" false (Epoch.is_stale e2 ~current:e2);
  check_bool "future ok" false (Epoch.is_stale e2 ~current:e1);
  (match Epoch.check e1 ~current:e2 with
  | Epoch.Stale { current } -> check_int "carries current" 2 (Epoch.to_int current)
  | Epoch.Ok -> Alcotest.fail "expected stale")

(* ---- Membership state machine (Figure 5) ---- *)

let fresh_member id az = { Membership.id = m id; az = Az.of_int az; kind = Membership.Full }

let test_membership_steady () =
  let g = Layout.group_4_of_6 () in
  check_bool "steady" true (Membership.is_steady g);
  check_int "epoch 1" 1 (Epoch.to_int (Membership.epoch g));
  check_int "one variant" 1 (List.length (Membership.variants g));
  check_int "six members" 6 (List.length (Membership.members g))

let test_membership_replace_commit () =
  let g = Layout.group_4_of_6 () in
  let g2 =
    match Membership.begin_change g ~suspect:(m 5) ~replacement:(fresh_member 6 2) with
    | Ok g -> g
    | Error e -> Alcotest.fail e
  in
  check_int "epoch 2" 2 (Epoch.to_int (Membership.epoch g2));
  check_int "two variants" 2 (List.length (Membership.variants g2));
  check_int "seven involved" 7 (List.length (Membership.members g2));
  check_bool "not steady" false (Membership.is_steady g2);
  let g3 =
    match Membership.commit_change g2 ~suspect:(m 5) with
    | Ok g -> g
    | Error e -> Alcotest.fail e
  in
  check_int "epoch 3" 3 (Epoch.to_int (Membership.epoch g3));
  check_bool "steady again" true (Membership.is_steady g3);
  check_bool "suspect gone" true (Membership.find_member g3 (m 5) = None);
  check_bool "replacement in" true (Membership.find_member g3 (m 6) <> None)

let test_membership_revert () =
  let g = Layout.group_4_of_6 () in
  let g2 =
    Result.get_ok
      (Membership.begin_change g ~suspect:(m 5) ~replacement:(fresh_member 6 2))
  in
  let g3 = Result.get_ok (Membership.revert_change g2 ~suspect:(m 5)) in
  check_int "epoch 3" 3 (Epoch.to_int (Membership.epoch g3));
  check_bool "suspect kept" true (Membership.find_member g3 (m 5) <> None);
  check_bool "replacement discarded" true (Membership.find_member g3 (m 6) = None)

let test_membership_double_failure () =
  (* Figure 5's second scenario: E fails while F->G is in flight. *)
  let g = Layout.group_4_of_6 () in
  let g2 =
    Result.get_ok
      (Membership.begin_change g ~suspect:(m 5) ~replacement:(fresh_member 6 2))
  in
  let g3 =
    Result.get_ok
      (Membership.begin_change g2 ~suspect:(m 4) ~replacement:(fresh_member 7 2))
  in
  check_int "epoch 3" 3 (Epoch.to_int (Membership.epoch g3));
  check_int "four variants (ABCD x {E,H} x {F,G})" 4
    (List.length (Membership.variants g3));
  let rule = Membership.rule g3 in
  (* Writing to ABCD still meets the composite write quorum. *)
  check_bool "ABCD suffices" true
    (Quorum_set.satisfied rule.Quorum_set.Rule.write (mset [ 0; 1; 2; 3 ]));
  (* Resolve both; end on ABCDGH. *)
  let g4 = Result.get_ok (Membership.commit_change g3 ~suspect:(m 5)) in
  let g5 = Result.get_ok (Membership.commit_change g4 ~suspect:(m 4)) in
  check_bool "steady" true (Membership.is_steady g5);
  check_int "epoch 5" 5 (Epoch.to_int (Membership.epoch g5))

let test_membership_errors () =
  let g = Layout.group_4_of_6 () in
  (match Membership.begin_change g ~suspect:(m 9) ~replacement:(fresh_member 6 0) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown suspect accepted");
  (match Membership.begin_change g ~suspect:(m 5) ~replacement:(fresh_member 0 0) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "id reuse accepted");
  let g2 =
    Result.get_ok
      (Membership.begin_change g ~suspect:(m 5) ~replacement:(fresh_member 6 2))
  in
  (match Membership.begin_change g2 ~suspect:(m 5) ~replacement:(fresh_member 7 2) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "double replacement of same suspect accepted");
  (* A tail slot must be repaired by a tail segment. *)
  let tg = Layout.group_tiered () in
  let tail_suspect =
    List.find (fun (mm : Membership.member) -> mm.kind = Membership.Tail) (Membership.members tg)
  in
  (match
     Membership.begin_change tg ~suspect:tail_suspect.Membership.id
       ~replacement:(fresh_member 6 0)
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "kind mismatch accepted")

let test_change_scheme () =
  let g = Layout.group_4_of_6 () in
  (* Extended AZ loss: move to 3/4 over two AZs (§4.1). *)
  let g2 =
    Result.get_ok
      (Membership.change_scheme g ~scheme:Layout.scheme_3_of_4
         (Layout.four_copies_two_az ()))
  in
  check_int "epoch bumped" 2 (Epoch.to_int (Membership.epoch g2));
  check_int "four members" 4 (List.length (Membership.members g2))

let prop_transitions_preserve_safety =
  (* Any random sequence of begin/commit/revert keeps the composite rule
     satisfying both §2.1 obligations (Rule.make_exn inside [rule] would
     raise otherwise) and keeps epochs strictly increasing. *)
  QCheck.Test.make ~name:"random membership transitions stay safe" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 12) (int_range 0 2))
    (fun ops ->
      let g = ref (Layout.group_4_of_6 ()) in
      let next_id = ref 6 in
      let last_epoch = ref (Epoch.to_int (Membership.epoch !g)) in
      List.iter
        (fun op ->
          let apply result =
            match result with
            | Ok g' ->
              let e = Epoch.to_int (Membership.epoch g') in
              assert (e = !last_epoch + 1);
              last_epoch := e;
              (* Forces rule construction: raises if unsafe. *)
              ignore (Membership.rule g' : Quorum_set.Rule.t);
              g := g'
            | Error _ -> ()
          in
          match op with
          | 0 ->
            (* begin a change on some active, unreplaced member *)
            let candidates =
              List.filter
                (fun (mm : Membership.member) ->
                  not
                    (List.exists
                       (fun (p : Membership.pending) ->
                         Member_id.equal p.suspect mm.id
                         || Member_id.equal p.replacement mm.id)
                       (Membership.pendings !g)))
                (Membership.members !g)
            in
            (match candidates with
            | mm :: _ ->
              let r = { Membership.id = m !next_id; az = mm.az; kind = mm.kind } in
              incr next_id;
              apply (Membership.begin_change !g ~suspect:mm.Membership.id ~replacement:r)
            | [] -> ())
          | 1 -> (
            match Membership.pendings !g with
            | p :: _ -> apply (Membership.commit_change !g ~suspect:p.suspect)
            | [] -> ())
          | _ -> (
            match Membership.pendings !g with
            | p :: _ -> apply (Membership.revert_change !g ~suspect:p.suspect)
            | [] -> ())
        )
        ops;
      true)

(* ---- Layouts ---- *)

let test_layouts () =
  let v6 = Layout.aurora_v6 () in
  check_int "six members" 6 (List.length v6);
  List.iteri
    (fun i az ->
      check_int
        (Printf.sprintf "AZ of member %d" i)
        az
        (Az.to_int (List.nth v6 i).Membership.az))
    [ 0; 0; 1; 1; 2; 2 ];
  let tiered = Layout.aurora_tiered () in
  check_int "three fulls" 3
    (List.length
       (List.filter (fun (mm : Membership.member) -> mm.kind = Membership.Full) tiered));
  check_int "members in AZ1" 2
    (Member_id.Set.cardinal (Layout.members_in_az tiered (Az.of_int 0)))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "quorum"
    [
      ( "quorum_set",
        [
          Alcotest.test_case "atom satisfaction" `Quick test_atom_satisfaction;
          Alcotest.test_case "atom validation" `Quick test_atom_validation;
          Alcotest.test_case "boolean combinators" `Quick test_boolean_combinators;
          Alcotest.test_case "min cardinality" `Quick test_min_cardinality;
          Alcotest.test_case "aurora 4/6 rule" `Quick test_aurora_46_rule;
          Alcotest.test_case "tiered rule safe" `Quick test_tiered_rule_safe;
          Alcotest.test_case "transition rule safe" `Quick test_transition_rule_safe;
          qc prop_overlap_brute_force;
        ] );
      ("epoch", [ Alcotest.test_case "staleness" `Quick test_epochs ]);
      ( "membership",
        [
          Alcotest.test_case "steady" `Quick test_membership_steady;
          Alcotest.test_case "replace + commit" `Quick test_membership_replace_commit;
          Alcotest.test_case "revert" `Quick test_membership_revert;
          Alcotest.test_case "double failure" `Quick test_membership_double_failure;
          Alcotest.test_case "errors" `Quick test_membership_errors;
          Alcotest.test_case "change scheme" `Quick test_change_scheme;
          qc prop_transitions_preserve_safety;
        ] );
      ("layout", [ Alcotest.test_case "rosters" `Quick test_layouts ]);
    ]
