(* End-to-end cluster tests: the paper's headline invariants exercised
   through the full stack (writer + storage fleet + replicas over the
   simulated network), including randomized fault schedules. *)
open Simcore
open Wal
open Quorum
module Database = Aurora_core.Database
module Replica = Aurora_core.Replica
module Cluster = Harness.Cluster
module Txn_gen = Workload.Txn_gen
module Pg_id = Storage.Pg_id

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let settle cluster span =
  Sim.run_until (Cluster.sim cluster)
    (Time_ns.add (Sim.now (Cluster.sim cluster)) span)

(* The durability oracle from the experiment harness, inlined: the value
   read for each key must be its last acked write in issue (LSN) order or
   a later in-doubt one. *)
let audit ~cluster ~db ~gen =
  let writes = Txn_gen.writes_in_issue_order gen in
  let valid = Hashtbl.create 256 in
  List.iter
    (fun (key, value, acked) ->
      if acked then Hashtbl.replace valid key [ value ]
      else
        match Hashtbl.find_opt valid key with
        | Some vs -> Hashtbl.replace valid key (value :: vs)
        | None -> ())
    writes;
  let lost = ref 0 and checked = ref 0 in
  Hashtbl.iter
    (fun key valid_values ->
      incr checked;
      Database.get db ~key (fun result ->
          let ok =
            match result with
            | Ok (Some v) -> List.exists (String.equal v) valid_values
            | Ok None | Error _ -> false
          in
          if not ok then incr lost))
    valid;
  settle cluster (Time_ns.sec 15);
  (!checked, !lost)

let run_load ?(clients = 6) ?(secs = 2) ?(profile = Txn_gen.default_profile)
    cluster seed =
  let gen =
    Txn_gen.create ~sim:(Cluster.sim cluster) ~rng:(Rng.create seed)
      ~db:(Cluster.db cluster) ~profile ()
  in
  Txn_gen.run_closed_loop gen ~clients
    ~think_time:(Distribution.constant (Time_ns.ms 1))
    ~duration:(Time_ns.sec secs);
  gen

let write_profile = { Txn_gen.default_profile with write_fraction = 1.; ops_per_txn = 2 }

(* ---- crash / recovery durability ---- *)

let test_crash_recover_zero_loss () =
  let cluster = Cluster.create { Cluster.default_config with seed = 101 } in
  let db = Cluster.db cluster in
  let gen = run_load ~profile:write_profile cluster 1 in
  settle cluster (Time_ns.sec 3);
  let acked = Txn_gen.acked gen in
  check_bool "made progress" true (acked > 100);
  Database.crash db;
  settle cluster (Time_ns.ms 200);
  let recovered = ref false in
  Database.recover db (fun r -> recovered := Result.is_ok r);
  settle cluster (Time_ns.sec 40);
  check_bool "recovered" true !recovered;
  let checked, lost = audit ~cluster ~db ~gen in
  check_bool "audited keys" true (checked > 0);
  check_int "zero acked commits lost" 0 lost

let test_crash_mid_flight () =
  (* Crash while commits are in flight: acked ones must survive; in-doubt
     ones may go either way; the database must reopen consistent. *)
  let cluster = Cluster.create { Cluster.default_config with seed = 102 } in
  let db = Cluster.db cluster in
  let gen = run_load ~profile:write_profile ~secs:5 cluster 2 in
  (* Crash mid-load (at 1s of a 5s run). *)
  ignore
    (Sim.schedule (Cluster.sim cluster) ~delay:(Time_ns.sec 1) (fun () ->
         Database.crash db));
  settle cluster (Time_ns.sec 1 |> Time_ns.add (Time_ns.ms 500));
  check_bool "crashed with in-doubt commits" true
    (Txn_gen.unacked_writes gen <> []);
  let recovered = ref false in
  Database.recover db (fun r -> recovered := Result.is_ok r);
  settle cluster (Time_ns.sec 40);
  check_bool "recovered" true !recovered;
  let _, lost = audit ~cluster ~db ~gen in
  check_int "zero acked commits lost" 0 lost

let test_recovery_interrupted_txns_invisible () =
  (* Transactions open at the crash must be undone: their writes are never
     visible afterwards. *)
  let cluster = Cluster.create { Cluster.default_config with seed = 103 } in
  let db = Cluster.db cluster in
  (* Committed baseline value. *)
  let t1 = Database.begin_txn db in
  Database.put db ~txn:t1 ~key:"x" ~value:"committed";
  Database.commit db ~txn:t1 (fun _ -> ());
  settle cluster (Time_ns.sec 1);
  (* An open transaction writes, then the instance dies without commit. *)
  let t2 = Database.begin_txn db in
  Database.put db ~txn:t2 ~key:"x" ~value:"torn";
  settle cluster (Time_ns.ms 500);
  Database.crash db;
  settle cluster (Time_ns.ms 100);
  Database.recover db (fun _ -> ());
  settle cluster (Time_ns.sec 40);
  let got = ref None in
  Database.get db ~key:"x" (fun r -> got := Some r);
  settle cluster (Time_ns.sec 5);
  match !got with
  | Some (Ok (Some "committed")) -> ()
  | Some (Ok v) ->
    Alcotest.failf "saw %s" (match v with Some s -> s | None -> "<none>")
  | _ -> Alcotest.fail "read failed"

let test_double_crash_recover () =
  let cluster = Cluster.create { Cluster.default_config with seed = 104 } in
  let db = Cluster.db cluster in
  let gen = run_load ~profile:write_profile cluster 3 in
  settle cluster (Time_ns.sec 3);
  for _ = 1 to 2 do
    Database.crash db;
    settle cluster (Time_ns.ms 100);
    let ok = ref false in
    Database.recover db (fun r -> ok := Result.is_ok r);
    settle cluster (Time_ns.sec 40);
    check_bool "recovered" true !ok
  done;
  let _, lost = audit ~cluster ~db ~gen in
  check_int "zero loss after double crash" 0 lost

(* ---- storage faults during load ---- *)

let test_write_availability_two_node_loss () =
  (* 4/6 tolerates two dead segments: commits keep flowing. *)
  let cluster =
    Cluster.create { Cluster.default_config with seed = 105; n_pgs = 1 }
  in
  let pg = Pg_id.of_int 0 in
  Cluster.crash_storage_node cluster pg (Member_id.of_int 0);
  Cluster.crash_storage_node cluster pg (Member_id.of_int 3);
  let gen = run_load ~profile:write_profile cluster 4 in
  settle cluster (Time_ns.sec 4);
  check_bool "commits despite two losses" true (Txn_gen.acked gen > 100);
  check_int "no failures" 0 (Txn_gen.failed gen)

let test_write_stall_three_node_loss_heals () =
  (* Three dead segments break the 4/6 write quorum; restarting one heals
     it and parked commits drain. *)
  let cluster =
    Cluster.create { Cluster.default_config with seed = 106; n_pgs = 1 }
  in
  let pg = Pg_id.of_int 0 in
  let db = Cluster.db cluster in
  let acked = ref false in
  let txn = Database.begin_txn db in
  Database.put db ~txn ~key:"k" ~value:"v";
  Database.commit db ~txn (fun _ -> ());
  settle cluster (Time_ns.sec 1);
  List.iter (fun i -> Cluster.crash_storage_node cluster pg (Member_id.of_int i)) [ 0; 1; 2 ];
  let txn = Database.begin_txn db in
  Database.put db ~txn ~key:"k2" ~value:"v2";
  Database.commit db ~txn (fun r -> acked := r = Ok ());
  settle cluster (Time_ns.sec 2);
  check_bool "commit parked without quorum" false !acked;
  Cluster.restart_storage_node cluster pg (Member_id.of_int 0);
  settle cluster (Time_ns.sec 3);
  check_bool "heals and drains" true !acked

let test_az_failure_continues () =
  let cluster = Cluster.create { Cluster.default_config with seed = 107 } in
  Cluster.fail_az cluster (Az.of_int 2);
  let gen = run_load ~profile:write_profile cluster 5 in
  settle cluster (Time_ns.sec 4);
  check_bool "commits through AZ outage" true (Txn_gen.acked gen > 100);
  Cluster.restore_az cluster (Az.of_int 2);
  settle cluster (Time_ns.sec 2)

(* ---- fencing (split brain) ---- *)

let test_old_writer_fenced () =
  let cluster = Cluster.create { Cluster.default_config with seed = 108 } in
  let old_db = Cluster.db cluster in
  let sim = Cluster.sim cluster in
  let gen = run_load ~profile:write_profile cluster 6 in
  settle cluster (Time_ns.sec 3);
  ignore gen;
  (* A new instance recovers the volume from a different address while the
     old writer is still up (e.g. a monitoring mistake): the epoch bump
     must box the old writer out. *)
  let new_db =
    Database.create ~sim ~rng:(Rng.create 999) ~net:(Cluster.net cluster)
      ~addr:(Simnet.Addr.of_int 4242) ~volume:(Database.volume old_db)
      ~config:Cluster.default_config.Cluster.db_config ()
  in
  let recovered = ref false in
  Database.recover new_db (fun r -> recovered := Result.is_ok r);
  settle cluster (Time_ns.sec 40);
  check_bool "new writer recovered" true !recovered;
  (* Old writer tries to keep writing: storage rejects at the stale epoch
     and the instance self-fences. *)
  check_bool "old writer initially open" true (Database.is_open old_db);
  (try
     let txn = Database.begin_txn old_db in
     Database.put old_db ~txn ~key:"stale" ~value:"write";
     Database.commit old_db ~txn (fun _ -> ())
   with Failure _ -> ());
  settle cluster (Time_ns.sec 2);
  check_bool "old writer fenced" false (Database.is_open old_db);
  check_bool "fence counted" true ((Database.metrics old_db).Database.fenced > 0)

(* ---- MTR atomicity (§3.3) ---- *)

let test_mtr_atomicity_at_vdl () =
  (* Multi-block MTRs write the same tag to two keys; at any VDL anchor the
     storage images of both blocks must show the same tag. *)
  let cluster =
    Cluster.create { Cluster.default_config with seed = 109; n_pgs = 2 }
  in
  let db = Cluster.db cluster in
  let sim = Cluster.sim cluster in
  (* Pick two keys on different blocks. *)
  let k1 = "mtr-left" and k2 = "mtr-right" in
  check_bool "different blocks" true
    (not (Block_id.equal (Database.block_of_key db k1) (Database.block_of_key db k2)));
  let rec writer i =
    if i <= 50 then begin
      let txn = Database.begin_txn db in
      Database.put_multi db ~txn [ (k1, Printf.sprintf "tag%d" i); (k2, Printf.sprintf "tag%d" i) ];
      Database.commit db ~txn (fun _ -> ());
      ignore (Sim.schedule sim ~delay:(Time_ns.ms 2) (fun () -> writer (i + 1)))
    end
  in
  writer 1;
  (* Sample both keys at a shared VDL anchor repeatedly. *)
  let violations = ref 0 and samples = ref 0 in
  Sim.every sim ~interval:(Time_ns.ms 3) (fun () ->
      let anchor = Database.vdl db in
      if Lsn.to_int anchor > 0 then begin
        incr samples;
        let view = Aurora_core.Read_view.make ~as_of:anchor () in
        let commit_scn t = Aurora_core.Txn_table.commit_scn (Database.txn_table db) t in
        let value_at key =
          let block = Database.block_of_key db key in
          let g = Aurora_core.Volume.pg_of_block (Database.volume db) block in
          let candidates =
            Aurora_core.Consistency.segments_at_or_above (Database.consistency db)
              ~pg:g.Aurora_core.Volume.id
              ~lsn:
                (Lsn.min anchor
                   (Aurora_core.Consistency.pgcl (Database.consistency db)
                      g.Aurora_core.Volume.id))
          in
          (* Read the materialized image directly off a covering segment. *)
          Member_id.Set.fold
            (fun seg acc ->
              match acc with
              | Some _ -> acc
              | None -> (
                match Cluster.node_of_member cluster g.Aurora_core.Volume.id seg with
                | None -> None
                | Some node -> (
                  match Storage.Storage_node.segment node g.Aurora_core.Volume.id with
                  | None -> None
                  | Some s -> (
                    match Storage.Segment.read_block s ~block ~as_of:anchor with
                    | Ok img -> (
                      match
                        List.find_opt (fun (k, _) -> String.equal k key)
                          img.Storage.Protocol.image_entries
                      with
                      | Some (_, chain) ->
                        Some (Aurora_core.Read_view.value view ~commit_scn chain)
                      | None -> Some None)
                    | Error _ -> None))))
            candidates None
        in
        (match (value_at k1, value_at k2) with
        | Some v1, Some v2 when v1 <> v2 -> incr violations
        | _ -> ())
      end;
      !samples < 40)
  ;
  Sim.run_until sim (Time_ns.sec 2);
  check_bool "sampled" true (!samples > 10);
  check_int "no torn MTRs at any VDL anchor" 0 !violations

(* ---- replicas ---- *)

let test_replica_promotion_zero_loss () =
  let cluster = Cluster.create { Cluster.default_config with seed = 110 } in
  let db = Cluster.db cluster in
  let replica = Cluster.add_replica cluster in
  let gen = run_load ~profile:write_profile cluster 7 in
  settle cluster (Time_ns.sec 3);
  Database.crash db;
  settle cluster (Time_ns.ms 100);
  let promoted = ref None in
  Replica.promote replica ~config:Cluster.default_config.Cluster.db_config
    (fun r -> promoted := Some r);
  settle cluster (Time_ns.sec 40);
  match !promoted with
  | Some (Ok (new_db, _)) ->
    let _, lost = audit ~cluster ~db:new_db ~gen in
    check_int "zero loss through promotion" 0 lost
  | _ -> Alcotest.fail "promotion failed"

let test_replica_reads_lag_consistently () =
  let cluster = Cluster.create { Cluster.default_config with seed = 111 } in
  let replica = Cluster.add_replica cluster in
  let gen = run_load cluster 8 in
  settle cluster (Time_ns.sec 3);
  (* Every replica read returns either a value some transaction wrote to
     that key or (if lagging past nothing) the pre-image. *)
  let written = Hashtbl.create 64 in
  List.iter
    (fun (k, v, _) ->
      let l = match Hashtbl.find_opt written k with Some l -> l | None -> [] in
      Hashtbl.replace written k (v :: l))
    (Txn_gen.writes_in_issue_order gen);
  let wrong = ref 0 and sampled = ref 0 in
  Hashtbl.iter
    (fun key values ->
      if !sampled < 100 then begin
        incr sampled;
        Replica.get replica ~key (fun r ->
            match r with
            | Ok (Some v) when List.exists (String.equal v) values -> ()
            | Ok None -> () (* legitimately lagging before first write *)
            | Ok (Some _) | Error _ -> incr wrong)
      end)
    written;
  settle cluster (Time_ns.sec 5);
  check_int "no foreign values" 0 !wrong;
  check_bool "replica lag bounded" true
    (Lsn.to_int (Replica.vdl_seen replica) > 0)

(* ---- membership under load ---- *)

let test_replacement_under_load () =
  let cluster =
    Cluster.create { Cluster.default_config with seed = 112; n_pgs = 1 }
  in
  let pg = Pg_id.of_int 0 in
  let suspect = Member_id.of_int 5 in
  let gen = run_load ~profile:write_profile ~secs:4 cluster 9 in
  settle cluster (Time_ns.sec 1);
  Cluster.destroy_storage_node cluster pg suspect;
  settle cluster (Time_ns.ms 100);
  let replacement =
    match Cluster.start_replacement cluster pg ~suspect with
    | Ok m -> m
    | Error e -> Alcotest.fail e
  in
  settle cluster (Time_ns.sec 2);
  check_bool "caught up" true (Cluster.replacement_caught_up cluster pg ~replacement);
  (match Cluster.finish_replacement cluster pg ~suspect with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  settle cluster (Time_ns.sec 5);
  check_int "no commit failures through the change" 0 (Txn_gen.failed gen);
  let _, lost = audit ~cluster ~db:(Cluster.db cluster) ~gen in
  check_int "zero loss" 0 lost

(* ---- randomized fault schedules (the headline property) ---- *)

let random_fault_schedule ~seed =
  let cfg = { Cluster.default_config with seed; n_pgs = 2 } in
  let cluster = Cluster.create cfg in
  let sim = Cluster.sim cluster in
  let rng = Rng.create (seed * 31 + 7) in
  let db = Cluster.db cluster in
  let gen = run_load ~profile:write_profile ~secs:4 cluster (seed + 1) in
  (* Random storage-node crashes and restarts, never more than two at a
     time per group (stays within the fault budget the design promises). *)
  let downs = Hashtbl.create 8 in
  Sim.every sim ~interval:(Time_ns.ms 200) (fun () ->
      if Time_ns.compare (Sim.now sim) (Time_ns.sec 4) < 0 then begin
        let pg = Pg_id.of_int (Rng.int rng 2) in
        let m = Member_id.of_int (Rng.int rng 6) in
        let key = (Pg_id.to_int pg, Member_id.to_int m) in
        let down_count =
          Hashtbl.fold
            (fun (p, _) () acc -> if p = Pg_id.to_int pg then acc + 1 else acc)
            downs 0
        in
        if Hashtbl.mem downs key then begin
          Hashtbl.remove downs key;
          Cluster.restart_storage_node cluster pg m
        end
        else if down_count < 2 then begin
          Hashtbl.replace downs key ();
          Cluster.crash_storage_node cluster pg m
        end;
        true
      end
      else false);
  (* Writer crash mid-run, then recovery. *)
  ignore
    (Sim.schedule sim ~delay:(Time_ns.ms (1500 + Rng.int rng 1500)) (fun () ->
         Database.crash db));
  Sim.run_until sim (Time_ns.sec 5);
  (* Bring everything back up, recover, audit. *)
  Hashtbl.iter
    (fun (p, m) () ->
      Cluster.restart_storage_node cluster (Pg_id.of_int p) (Member_id.of_int m))
    downs;
  let recovered = ref false in
  Database.recover db (fun r -> recovered := Result.is_ok r);
  Sim.run_until sim (Time_ns.add (Sim.now sim) (Time_ns.sec 60));
  if not !recovered then Alcotest.failf "seed %d: recovery failed" seed;
  let checked, lost = audit ~cluster ~db ~gen in
  (seed, Txn_gen.acked gen, checked, lost)

let test_random_fault_schedules () =
  List.iter
    (fun seed ->
      let s, acked, checked, lost = random_fault_schedule ~seed in
      check_bool (Printf.sprintf "seed %d progressed" s) true (acked > 50);
      check_bool (Printf.sprintf "seed %d audited" s) true (checked > 0);
      check_int (Printf.sprintf "seed %d zero loss" s) 0 lost)
    [ 201; 202; 203; 204; 205 ]

(* ---- volume growth ---- *)

let test_volume_growth () =
  let cluster =
    Cluster.create { Cluster.default_config with seed = 113; n_pgs = 1 }
  in
  let db = Cluster.db cluster in
  let volume = Database.volume db in
  let before = Aurora_core.Volume.geometry_epoch volume in
  check_int "one group" 1 (Aurora_core.Volume.pg_count volume);
  (* Growth is driven through the Volume API; the harness's PG0 nodes keep
     serving. *)
  let members = Layout.aurora_v6 () in
  let membership = Membership.create ~scheme:Layout.scheme_4_of_6 members in
  (* Register fresh storage for the new group. *)
  (* Remember where a few existing blocks route before growth. *)
  let probe_blocks = List.init 8 (fun i -> Wal.Block_id.of_int (i * 17)) in
  let owners_before =
    List.map
      (fun b -> (Aurora_core.Volume.pg_of_block volume b).Aurora_core.Volume.id)
      probe_blocks
  in
  let g =
    Aurora_core.Volume.grow volume
      ~new_blocks_from:(Wal.Block_id.of_int 100_000)
      membership
      (List.map
         (fun (m : Membership.member) ->
           (m.Membership.id, Simnet.Addr.of_int (1000 + Member_id.to_int m.Membership.id)))
         members)
  in
  check_int "two groups" 2 (Aurora_core.Volume.pg_count volume);
  check_bool "geometry epoch bumped" true
    (Epoch.compare (Aurora_core.Volume.geometry_epoch volume) before > 0);
  check_bool "new group routable" true
    (Pg_id.equal g.Aurora_core.Volume.id (Pg_id.of_int 1));
  (* Old blocks keep their owners; new address space stripes over both. *)
  let owners_after =
    List.map
      (fun b -> (Aurora_core.Volume.pg_of_block volume b).Aurora_core.Volume.id)
      probe_blocks
  in
  check_bool "routing stable under growth" true (owners_before = owners_after);
  check_bool "new range reaches the new group" true
    (Pg_id.equal
       (Aurora_core.Volume.pg_of_block volume (Wal.Block_id.of_int 100_001))
         .Aurora_core.Volume.id
       (Pg_id.of_int 1))

let test_cluster_grow_volume () =
  let cluster =
    Cluster.create { Cluster.default_config with seed = 114; n_pgs = 1 }
  in
  let gen = run_load ~profile:write_profile cluster 10 in
  settle cluster (Time_ns.sec 1);
  let new_pg = Cluster.grow_volume cluster in
  check_bool "new group id" true (Pg_id.equal new_pg (Pg_id.of_int 1));
  check_int "six more nodes" 12 (List.length (Cluster.storage_nodes cluster));
  settle cluster (Time_ns.sec 4);
  (* Writes keep flowing and the old group's data is untouched. *)
  check_int "no failures across growth" 0 (Txn_gen.failed gen);
  let _, lost = audit ~cluster ~db:(Cluster.db cluster) ~gen in
  check_int "zero loss across growth" 0 lost

let test_extended_az_loss_scheme_change () =
  (* §4.1: after an extended AZ outage, move the group from 4/6-of-3-AZs to
     3/4-of-2-AZs so writes regain a fault margin. *)
  let cluster =
    Cluster.create { Cluster.default_config with seed = 115; n_pgs = 1 }
  in
  let pg = Pg_id.of_int 0 in
  let db = Cluster.db cluster in
  let gen = run_load ~profile:write_profile ~secs:4 cluster 11 in
  settle cluster (Time_ns.sec 1);
  Cluster.fail_az cluster (Az.of_int 2);
  settle cluster (Time_ns.ms 300);
  (* With the AZ gone, 4/6 has zero margin: one more failure stalls writes.
     Re-form on the four survivors at 3/4. *)
  (match Cluster.change_scheme_3_of_4 cluster pg ~drop_az:(Az.of_int 2) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let g = Aurora_core.Volume.find_pg (Database.volume db) pg in
  check_int "four members" 4
    (List.length (Membership.members g.Aurora_core.Volume.membership));
  settle cluster (Time_ns.ms 500);
  (* Now one further node loss is tolerated (3/4).  Sample commit progress
     while the workload window (4 s) is still open. *)
  Cluster.crash_storage_node cluster pg (Member_id.of_int 0);
  settle cluster (Time_ns.ms 500);
  let acked_before = Txn_gen.acked gen in
  settle cluster (Time_ns.ms 800);
  check_bool "commits still flowing at 3/4 minus one" true
    (Txn_gen.acked gen > acked_before);
  settle cluster (Time_ns.sec 3);
  check_int "no commit failures" 0 (Txn_gen.failed gen);
  let _, lost = audit ~cluster ~db ~gen in
  check_int "zero loss" 0 lost

let test_recovery_under_lossy_network () =
  (* The recovery state machine retries probes/fetches/truncates; it must
     converge even when the network drops a quarter of all messages. *)
  let cluster = Cluster.create { Cluster.default_config with seed = 116 } in
  let db = Cluster.db cluster in
  let gen = run_load ~profile:write_profile cluster 12 in
  settle cluster (Time_ns.sec 3);
  Database.crash db;
  settle cluster (Time_ns.ms 100);
  Simnet.Net.set_drop_probability (Cluster.net cluster) 0.25;
  let recovered = ref false in
  Database.recover db (fun r -> recovered := Result.is_ok r);
  settle cluster (Time_ns.sec 60);
  check_bool "recovered despite loss" true !recovered;
  Simnet.Net.set_drop_probability (Cluster.net cluster) 0.;
  settle cluster (Time_ns.sec 2);
  let _, lost = audit ~cluster ~db ~gen in
  check_int "zero loss" 0 lost

let test_recovery_timeout () =
  (* With every storage node down, recovery must give up at its deadline
     with an error instead of hanging. *)
  let cluster = Cluster.create { Cluster.default_config with seed = 117 } in
  let db = Cluster.db cluster in
  let gen = run_load ~profile:write_profile ~secs:1 cluster 13 in
  settle cluster (Time_ns.sec 2);
  ignore gen;
  Database.crash db;
  List.iter Storage.Storage_node.crash (Cluster.storage_nodes cluster);
  settle cluster (Time_ns.ms 100);
  let result = ref None in
  Database.recover db (fun r -> result := Some r);
  settle cluster (Time_ns.sec 60);
  (match !result with
  | Some (Error _) -> ()
  | Some (Ok _) -> Alcotest.fail "recovered without any storage?!"
  | None -> Alcotest.fail "recovery neither failed nor finished");
  check_bool "stays closed" false (Database.is_open db);
  (* Storage returns; a second recovery attempt succeeds. *)
  List.iter Storage.Storage_node.restart (Cluster.storage_nodes cluster);
  let ok = ref false in
  Database.recover db (fun r -> ok := Result.is_ok r);
  settle cluster (Time_ns.sec 40);
  check_bool "second attempt succeeds" true !ok

let test_recovery_with_minimal_read_quorum () =
  (* Recovery must complete with exactly a read quorum (3/6) responding per
     group — the other three nodes stay dark. *)
  let cluster =
    Cluster.create { Cluster.default_config with seed = 118; n_pgs = 1 }
  in
  let pg = Pg_id.of_int 0 in
  let db = Cluster.db cluster in
  let gen = run_load ~profile:write_profile ~secs:1 cluster 14 in
  settle cluster (Time_ns.sec 2);
  Database.crash db;
  (* Kill half the fleet - but recovery also needs a WRITE quorum for the
     truncation record, so keep 4 up: 4/6 >= both quorums. *)
  List.iter
    (fun i -> Cluster.crash_storage_node cluster pg (Member_id.of_int i))
    [ 4; 5 ];
  settle cluster (Time_ns.ms 100);
  let ok = ref false in
  Database.recover db (fun r -> ok := Result.is_ok r);
  settle cluster (Time_ns.sec 40);
  check_bool "recovered with 4/6 up" true !ok;
  let _, lost = audit ~cluster ~db ~gen in
  check_int "zero loss" 0 lost

let () =
  Alcotest.run "integration"
    [
      ( "durability",
        [
          Alcotest.test_case "crash + recover, zero loss" `Slow
            test_crash_recover_zero_loss;
          Alcotest.test_case "crash mid-flight" `Slow test_crash_mid_flight;
          Alcotest.test_case "interrupted txns undone" `Slow
            test_recovery_interrupted_txns_invisible;
          Alcotest.test_case "double crash" `Slow test_double_crash_recover;
        ] );
      ( "storage faults",
        [
          Alcotest.test_case "two node loss tolerated" `Slow
            test_write_availability_two_node_loss;
          Alcotest.test_case "three node loss stalls then heals" `Slow
            test_write_stall_three_node_loss_heals;
          Alcotest.test_case "AZ outage" `Slow test_az_failure_continues;
        ] );
      ( "fencing",
        [ Alcotest.test_case "old writer boxed out" `Slow test_old_writer_fenced ] );
      ( "mtr",
        [ Alcotest.test_case "atomic at VDL anchors" `Slow test_mtr_atomicity_at_vdl ] );
      ( "replicas",
        [
          Alcotest.test_case "promotion zero loss" `Slow
            test_replica_promotion_zero_loss;
          Alcotest.test_case "lagging reads consistent" `Slow
            test_replica_reads_lag_consistently;
        ] );
      ( "membership",
        [
          Alcotest.test_case "replacement under load" `Slow
            test_replacement_under_load;
        ] );
      ( "fault schedules",
        [
          Alcotest.test_case "randomized crash schedules, zero loss" `Slow
            test_random_fault_schedules;
        ] );
      ( "growth",
        [
          Alcotest.test_case "volume growth (unit)" `Quick test_volume_growth;
          Alcotest.test_case "volume growth (cluster)" `Slow
            test_cluster_grow_volume;
        ] );
      ( "degraded modes",
        [
          Alcotest.test_case "extended AZ loss -> 3/4 scheme" `Slow
            test_extended_az_loss_scheme_change;
          Alcotest.test_case "recovery under lossy network" `Slow
            test_recovery_under_lossy_network;
          Alcotest.test_case "recovery timeout + second attempt" `Slow
            test_recovery_timeout;
          Alcotest.test_case "recovery with minimal quorum" `Slow
            test_recovery_with_minimal_read_quorum;
        ] );
    ]
