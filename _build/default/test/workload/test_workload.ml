(* Tests for the workload generators. *)
open Simcore

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_zipf_bounds () =
  let z = Workload.Zipf.create ~n:100 ~theta:0.9 in
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Workload.Zipf.sample z rng in
    check_bool "in range" true (v >= 0 && v < 100)
  done

let test_zipf_skew () =
  let z = Workload.Zipf.create ~n:1000 ~theta:0.99 in
  let rng = Rng.create 5 in
  let counts = Array.make 1000 0 in
  for _ = 1 to 50_000 do
    let v = Workload.Zipf.sample z rng in
    counts.(v) <- counts.(v) + 1
  done;
  check_bool "rank 0 hottest" true (counts.(0) > counts.(10));
  check_bool "heavy head" true (counts.(0) > 50_000 / 20)

let test_zipf_uniform () =
  let z = Workload.Zipf.create ~n:10 ~theta:0. in
  let rng = Rng.create 7 in
  let counts = Array.make 10 0 in
  for _ = 1 to 20_000 do
    counts.(Workload.Zipf.sample z rng) <- counts.(Workload.Zipf.sample z rng) + 1
  done;
  Array.iter (fun c -> check_bool "roughly uniform" true (c > 1500 && c < 2500)) counts

let test_txn_gen_closed_loop () =
  let cluster = Harness.Cluster.create Harness.Cluster.default_config in
  let sim = Harness.Cluster.sim cluster in
  let gen =
    Workload.Txn_gen.create ~sim ~rng:(Rng.create 11)
      ~db:(Harness.Cluster.db cluster)
      ~profile:Workload.Txn_gen.default_profile ()
  in
  Workload.Txn_gen.run_closed_loop gen ~clients:4
    ~think_time:(Distribution.constant (Time_ns.ms 1))
    ~duration:(Time_ns.sec 1);
  Sim.run_until sim (Time_ns.sec 3);
  check_bool "issued plenty" true (Workload.Txn_gen.issued gen > 50);
  check_int "all acked" (Workload.Txn_gen.issued gen) (Workload.Txn_gen.acked gen);
  check_int "none failed" 0 (Workload.Txn_gen.failed gen);
  check_int "no unacked writes left" 0
    (List.length (Workload.Txn_gen.unacked_writes gen));
  check_bool "latency recorded" true
    (Simcore.Histogram.count (Workload.Txn_gen.commit_latency gen) > 0);
  (* The issue-order log tags every write of an acked txn as acked. *)
  check_bool "issue-order log consistent" true
    (List.for_all (fun (_, _, acked) -> acked)
       (Workload.Txn_gen.writes_in_issue_order gen))

let test_txn_gen_open_loop_rate () =
  let cluster =
    Harness.Cluster.create { Harness.Cluster.default_config with seed = 5 }
  in
  let sim = Harness.Cluster.sim cluster in
  let gen =
    Workload.Txn_gen.create ~sim ~rng:(Rng.create 13)
      ~db:(Harness.Cluster.db cluster)
      ~profile:{ Workload.Txn_gen.default_profile with ops_per_txn = 1; write_fraction = 1. }
      ()
  in
  Workload.Txn_gen.run_open_loop gen ~rate_per_sec:1000. ~duration:(Time_ns.sec 2);
  Sim.run_until sim (Time_ns.sec 4);
  let issued = Workload.Txn_gen.issued gen in
  check_bool "roughly 2000 arrivals" true (issued > 1700 && issued < 2300)

let () =
  Alcotest.run "workload"
    [
      ( "zipf",
        [
          Alcotest.test_case "bounds" `Quick test_zipf_bounds;
          Alcotest.test_case "skew" `Quick test_zipf_skew;
          Alcotest.test_case "uniform at theta=0" `Quick test_zipf_uniform;
        ] );
      ( "txn_gen",
        [
          Alcotest.test_case "closed loop" `Slow test_txn_gen_closed_loop;
          Alcotest.test_case "open loop rate" `Slow test_txn_gen_open_loop_rate;
        ] );
    ]
