(* Tests for the baseline protocols: 2PC, Paxos, Paxos commit, leases,
   write-all/read-one replication, and the ARIES cost model. *)
open Simcore

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let addr = Simnet.Addr.of_int

let fixture ?(latency = Distribution.constant (Time_ns.us 100)) ?(seed = 42) () =
  let sim = Sim.create () in
  let rng = Rng.create seed in
  let net = Simnet.Net.create ~sim ~rng:(Rng.split rng) ~default_latency:latency () in
  (sim, rng, net)

let disk = Distribution.constant (Time_ns.us 50)

(* ---- 2PC ---- *)

let tpc_config ?(abort_p = 0.) n =
  {
    Baselines.Two_phase_commit.participants = List.init n (fun i -> addr (i + 1));
    coordinator = addr 0;
    log_force = disk;
    prepare_vote_abort_probability = abort_p;
  }

let test_2pc_commit () =
  let sim, rng, net = fixture () in
  let t = Baselines.Two_phase_commit.create ~sim ~rng ~net ~config:(tpc_config 3) () in
  let decision = ref None in
  Baselines.Two_phase_commit.commit t ~on_done:(fun d -> decision := Some d);
  Sim.run sim;
  check_bool "committed" true (!decision = Some Baselines.Two_phase_commit.Committed);
  let st = Baselines.Two_phase_commit.stats t in
  check_int "4n messages" 12 st.Baselines.Two_phase_commit.messages;
  check_int "no in-doubt left" 0 (Baselines.Two_phase_commit.blocked_transactions t)

let test_2pc_abort () =
  let sim, rng, net = fixture () in
  let t =
    Baselines.Two_phase_commit.create ~sim ~rng ~net
      ~config:(tpc_config ~abort_p:1. 3) ()
  in
  let decision = ref None in
  Baselines.Two_phase_commit.commit t ~on_done:(fun d -> decision := Some d);
  Sim.run sim;
  check_bool "aborted" true (!decision = Some Baselines.Two_phase_commit.Aborted)

let test_2pc_blocking_window () =
  (* Coordinator dies between phases: participants stay in doubt. *)
  let sim, rng, net = fixture () in
  let t = Baselines.Two_phase_commit.create ~sim ~rng ~net ~config:(tpc_config 3) () in
  Baselines.Two_phase_commit.commit t ~on_done:(fun _ -> ());
  (* Kill the coordinator after prepares land but before decides. *)
  ignore
    (Sim.schedule sim ~delay:(Time_ns.us 200) (fun () ->
         Simnet.Net.set_down net (addr 0)));
  Sim.run_until sim (Time_ns.sec 1);
  check_bool "participants blocked in doubt" true
    (Baselines.Two_phase_commit.blocked_transactions t > 0)

(* ---- Paxos (single decree) ---- *)

let paxos_config n =
  {
    Baselines.Paxos.acceptors = List.init n (fun i -> addr (i + 10));
    log_force = disk;
    retry_timeout = Time_ns.ms 5;
  }

let test_paxos_single_proposer () =
  let sim, rng, net = fixture () in
  let p = Baselines.Paxos.create ~sim ~rng ~net ~config:(paxos_config 5) () in
  let chosen = ref None in
  Baselines.Paxos.propose p ~proposer:(addr 0) ~proposer_id:0 42
    ~on_chosen:(fun v -> chosen := Some v);
  Sim.run_until sim (Time_ns.sec 1);
  Alcotest.(check (option int)) "chosen" (Some 42) !chosen;
  Alcotest.(check (option int)) "acceptor majority agrees" (Some 42)
    (Baselines.Paxos.chosen p)

let test_paxos_contention_agreement () =
  (* Two duelling proposers must agree on a single value. *)
  let sim, rng, net = fixture () in
  let p = Baselines.Paxos.create ~sim ~rng ~net ~config:(paxos_config 5) () in
  let c1 = ref None and c2 = ref None in
  Baselines.Paxos.propose p ~proposer:(addr 0) ~proposer_id:0 100
    ~on_chosen:(fun v -> c1 := Some v);
  Baselines.Paxos.propose p ~proposer:(addr 1) ~proposer_id:1 200
    ~on_chosen:(fun v -> c2 := Some v);
  Sim.run_until sim (Time_ns.sec 10);
  check_bool "both decided" true (!c1 <> None && !c2 <> None);
  check_bool "agreement" true (!c1 = !c2);
  check_bool "one of the proposals" true (!c1 = Some 100 || !c1 = Some 200)

let prop_paxos_agreement_under_loss =
  QCheck.Test.make ~name:"paxos agreement under message loss" ~count:25
    QCheck.(pair (int_range 0 9999) (int_range 0 30))
    (fun (seed, drop_pct) ->
      let sim, rng, net = fixture ~seed () in
      Simnet.Net.set_drop_probability net (float_of_int drop_pct /. 100.);
      let p = Baselines.Paxos.create ~sim ~rng ~net ~config:(paxos_config 5) () in
      let c1 = ref None and c2 = ref None in
      Baselines.Paxos.propose p ~proposer:(addr 0) ~proposer_id:0 1
        ~on_chosen:(fun v -> c1 := Some v);
      Baselines.Paxos.propose p ~proposer:(addr 1) ~proposer_id:1 2
        ~on_chosen:(fun v -> c2 := Some v);
      Sim.run_until sim (Time_ns.sec 60);
      (* Liveness needs fair loss; safety must hold regardless: any two
         decisions agree, and the acceptor-state oracle matches. *)
      match (!c1, !c2) with
      | Some a, Some b ->
        a = b
        && (match Baselines.Paxos.chosen p with Some v -> v = a | None -> true)
      | Some a, None | None, Some a -> (
        match Baselines.Paxos.chosen p with Some v -> v = a | None -> true)
      | None, None -> true)

(* ---- Paxos commit ---- *)

let test_paxos_commit_log () =
  let sim, rng, net = fixture () in
  let px =
    Baselines.Paxos_commit.create ~sim ~rng ~net
      ~config:
        {
          Baselines.Paxos_commit.leader = addr 0;
          acceptors = List.init 5 (fun i -> addr (i + 1));
          log_force = disk;
        }
      ()
  in
  let acked = ref 0 in
  for i = 1 to 10 do
    Baselines.Paxos_commit.commit px ~value:i ~on_done:(fun () -> incr acked)
  done;
  Sim.run_until sim (Time_ns.sec 1);
  check_int "all acked" 10 !acked;
  check_int "log length" 10 (Baselines.Paxos_commit.log_length px)

(* ---- Lease ---- *)

let test_lease () =
  let sim = Sim.create () in
  let l =
    Baselines.Lease.create ~sim ~duration:(Time_ns.ms 100)
      ~max_clock_skew:(Time_ns.ms 10)
  in
  check_bool "first acquire" true (Baselines.Lease.acquire l ~holder:1 = Ok ());
  (* A contender must wait for duration + skew. *)
  (match Baselines.Lease.acquire l ~holder:2 with
  | Error wait -> check_int "full wait" (Time_ns.ms 110) wait
  | Ok () -> Alcotest.fail "lease stolen");
  check_bool "incumbent renews" true (Baselines.Lease.renew l ~holder:1);
  (* After expiry (no renewal), takeover succeeds immediately. *)
  Sim.run_until sim (Time_ns.ms 200);
  check_bool "expired" true (Baselines.Lease.holder l (Sim.now sim) = None);
  check_bool "takeover" true (Baselines.Lease.acquire l ~holder:2 = Ok ());
  check_bool "old holder locked out" false (Baselines.Lease.renew l ~holder:1)

(* ---- WARO ---- *)

let test_waro () =
  let sim, rng, net = fixture () in
  let w =
    Baselines.Waro.create ~sim ~rng ~net
      ~config:
        {
          Baselines.Waro.client = addr 0;
          replicas = List.init 3 (fun i -> addr (i + 1));
          disk;
        }
      ()
  in
  let wrote = ref false and read_back = ref None in
  Baselines.Waro.write w ~key:"k" ~value:"v" ~on_done:(fun () ->
      wrote := true;
      Baselines.Waro.read w ~key:"k" ~on_done:(fun v -> read_back := Some v));
  Sim.run sim;
  check_bool "write completed" true !wrote;
  Alcotest.(check (option (option string))) "read one copy" (Some (Some "v")) !read_back;
  (* One dead replica blocks all writes: the availability flip side. *)
  Simnet.Net.set_down net (addr 3);
  let wrote2 = ref false in
  Baselines.Waro.write w ~key:"k2" ~value:"v2" ~on_done:(fun () -> wrote2 := true);
  Sim.run_until sim (Time_ns.add (Sim.now sim) (Time_ns.sec 1));
  check_bool "write-all blocked by one failure" false !wrote2

(* ---- ARIES model ---- *)

let test_aries_linear () =
  let cfg = Baselines.Aries.default_config in
  let t1 = Baselines.Aries.recovery_time cfg ~log_bytes:1_000_000 ~records:10_000 ~loser_records:0 in
  let t2 = Baselines.Aries.recovery_time cfg ~log_bytes:10_000_000 ~records:100_000 ~loser_records:0 in
  check_bool "10x backlog ~10x recovery" true
    (t2.Baselines.Aries.total > 9 * t1.Baselines.Aries.total / 10 * 10);
  check_bool "undo adds time" true
    ((Baselines.Aries.recovery_time cfg ~log_bytes:1_000_000 ~records:10_000
        ~loser_records:5_000)
       .Baselines.Aries.total
    > t1.Baselines.Aries.total)

let test_aries_simulated () =
  let sim = Sim.create () in
  let opened = ref false in
  Baselines.Aries.simulate ~sim Baselines.Aries.default_config
    ~log_bytes:1_000_000 ~records:10_000 ~loser_records:100 ~on_open:(fun () ->
      opened := true);
  Sim.run sim;
  check_bool "opens" true !opened;
  check_bool "took real time" true (Sim.now sim > Time_ns.ms 10)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "baselines"
    [
      ( "2pc",
        [
          Alcotest.test_case "commit" `Quick test_2pc_commit;
          Alcotest.test_case "abort" `Quick test_2pc_abort;
          Alcotest.test_case "blocking window" `Quick test_2pc_blocking_window;
        ] );
      ( "paxos",
        [
          Alcotest.test_case "single proposer" `Quick test_paxos_single_proposer;
          Alcotest.test_case "contention agreement" `Quick
            test_paxos_contention_agreement;
          qc prop_paxos_agreement_under_loss;
        ] );
      ( "paxos_commit",
        [ Alcotest.test_case "replicated log" `Quick test_paxos_commit_log ] );
      ("lease", [ Alcotest.test_case "expiry semantics" `Quick test_lease ]);
      ("waro", [ Alcotest.test_case "write-all read-one" `Quick test_waro ]);
      ( "aries",
        [
          Alcotest.test_case "linear in backlog" `Quick test_aries_linear;
          Alcotest.test_case "simulated open" `Quick test_aries_simulated;
        ] );
    ]
