(* Unit tests for the read path (§3.1): latency tracking, hedging,
   retries, and the quorum-read baseline — against scripted fake storage
   nodes so each behaviour is isolated. *)
open Simcore
open Wal
open Quorum
module Protocol = Storage.Protocol
module Reader = Aurora_core.Reader

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let addr = Simnet.Addr.of_int
let m = Member_id.of_int
let lsn = Lsn.of_int
let pg0 = Storage.Pg_id.of_int 0

let epochs = { Protocol.volume = Epoch.initial; membership = Epoch.initial }

let image =
  {
    Protocol.image_block = Block_id.of_int 0;
    image_as_of = lsn 10;
    image_entries = [ ("k", []) ];
  }

(* A scripted segment server: replies to Read_block after [delay], with
   [result]; counts requests. *)
let fake_server ~sim ~net ~a ?(delay = Time_ns.us 500)
    ?(result = Ok image) () =
  let hits = ref 0 in
  Simnet.Net.register net a (fun env ->
      match env.Simnet.Net.msg with
      | Protocol.Read_block { req; seg; _ } ->
        incr hits;
        ignore
          (Sim.schedule sim ~delay (fun () ->
               Simnet.Net.send net ~src:a ~dst:env.Simnet.Net.src
                 (Protocol.Read_reply { req; seg; result })))
      | _ -> ());
  hits

let fixture ~strategy =
  let sim = Sim.create () in
  let rng = Rng.create 11 in
  let net =
    Simnet.Net.create ~sim ~rng:(Rng.split rng)
      ~default_latency:(Distribution.constant (Time_ns.us 100)) ()
  in
  let my = addr 99 in
  let reader = Reader.create ~sim ~rng ~net ~my_addr:my ~strategy () in
  Simnet.Net.register net my (fun env ->
      match env.Simnet.Net.msg with
      | Protocol.Read_reply { req; seg; result } ->
        Reader.on_reply reader ~req ~seg ~from:env.Simnet.Net.src ~result
      | _ -> ());
  (sim, net, reader)

let direct ?hedge ?(explore = 0.) () =
  Reader.Direct_tracked { hedge_after = hedge; explore_probability = explore }

let do_read ?(candidates = [ (m 0, addr 0); (m 1, addr 1); (m 2, addr 2) ])
    reader =
  let result = ref None in
  Reader.read reader ~pg:pg0 ~candidates ~block:(Block_id.of_int 0)
    ~as_of:(lsn 10) ~epochs ~callback:(fun r -> result := Some r);
  result

let test_single_io_on_healthy () =
  let sim, net, reader = fixture ~strategy:(direct ()) in
  let h0 = fake_server ~sim ~net ~a:(addr 0) () in
  let h1 = fake_server ~sim ~net ~a:(addr 1) () in
  let h2 = fake_server ~sim ~net ~a:(addr 2) () in
  let r = do_read reader in
  Sim.run sim;
  check_bool "completed ok" true (match !r with Some (Ok _) -> true | _ -> false);
  check_int "exactly one IO" 1 (!h0 + !h1 + !h2);
  check_int "metric agrees" 1 (Reader.metrics reader).Reader.ios_issued

let test_prefers_fast_node () =
  let sim, net, reader = fixture ~strategy:(direct ()) in
  let h0 = fake_server ~sim ~net ~a:(addr 0) ~delay:(Time_ns.ms 5) () in
  let h1 = fake_server ~sim ~net ~a:(addr 1) ~delay:(Time_ns.us 200) () in
  let h2 = fake_server ~sim ~net ~a:(addr 2) ~delay:(Time_ns.ms 5) () in
  (* Warm-up reads teach the tracker who is fast. *)
  for _ = 1 to 10 do
    ignore (do_read reader);
    Sim.run sim
  done;
  let before = !h1 in
  for _ = 1 to 20 do
    ignore (do_read reader);
    Sim.run sim
  done;
  check_int "all steady-state reads hit the fast node" 20 (!h1 - before);
  check_bool "slow nodes untouched in steady state" true (!h0 + !h2 <= 3);
  check_bool "ewma learned" true
    (match Reader.observed_latency reader (addr 1) with
    | Some v -> v < 1_000_000.
    | None -> false)

let test_hedge_fires_on_slow_reply () =
  let sim, net, reader =
    fixture ~strategy:(direct ~hedge:(Time_ns.ms 1) ())
  in
  (* Best-looking node is silent; hedge must rescue the read. *)
  let h0 = ref 0 in
  Simnet.Net.register net (addr 0) (fun _ -> incr h0) (* never replies *);
  let h1 = fake_server ~sim ~net ~a:(addr 1) () in
  let r = do_read reader in
  Sim.run sim;
  check_bool "rescued" true (match !r with Some (Ok _) -> true | _ -> false);
  check_bool "hedge counted" true ((Reader.metrics reader).Reader.hedges >= 1);
  check_bool "second node served" true (!h1 >= 1);
  check_bool "first was tried" true (!h0 >= 1)

let test_retry_on_error_reply () =
  let sim, net, reader = fixture ~strategy:(direct ()) in
  let h0 =
    fake_server ~sim ~net ~a:(addr 0)
      ~result:(Error (Protocol.Beyond_scl (lsn 3)))
      ()
  in
  let h1 = fake_server ~sim ~net ~a:(addr 1) () in
  let r = do_read reader in
  Sim.run sim;
  check_bool "eventually ok" true (match !r with Some (Ok _) -> true | _ -> false);
  check_int "first tried" 1 !h0;
  check_int "retried next" 1 !h1;
  check_int "retry counted" 1 (Reader.metrics reader).Reader.retries

let test_all_fail () =
  let sim, net, reader = fixture ~strategy:(direct ()) in
  List.iter
    (fun a ->
      ignore
        (fake_server ~sim ~net ~a ~result:(Error Protocol.Tail_segment) ()))
    [ addr 0; addr 1; addr 2 ];
  let r = do_read reader in
  Sim.run sim;
  check_bool "fails cleanly" true
    (match !r with Some (Error _) -> true | _ -> false);
  check_int "failure counted" 1 (Reader.metrics reader).Reader.failures

let test_no_candidates () =
  let _, _, reader = fixture ~strategy:(direct ()) in
  let r = do_read ~candidates:[] reader in
  check_bool "immediate error" true
    (match !r with Some (Error _) -> true | _ -> false)

let test_quorum_read_amplification () =
  let sim, net, reader =
    fixture ~strategy:(Reader.Quorum_read { read_threshold = 3 })
  in
  let h0 = fake_server ~sim ~net ~a:(addr 0) () in
  let h1 = fake_server ~sim ~net ~a:(addr 1) () in
  let h2 = fake_server ~sim ~net ~a:(addr 2) () in
  let r = do_read reader in
  Sim.run sim;
  check_bool "ok" true (match !r with Some (Ok _) -> true | _ -> false);
  check_int "three IOs" 3 (!h0 + !h1 + !h2)

let test_quorum_read_needs_enough_candidates () =
  let _, _, reader =
    fixture ~strategy:(Reader.Quorum_read { read_threshold = 3 })
  in
  let r = do_read ~candidates:[ (m 0, addr 0); (m 1, addr 1) ] reader in
  check_bool "fails without quorum candidates" true
    (match !r with Some (Error _) -> true | _ -> false)

let test_late_duplicate_ignored () =
  (* The losing hedge reply after completion must be a no-op. *)
  let sim, net, reader =
    fixture ~strategy:(direct ~hedge:(Time_ns.ms 1) ())
  in
  let _ = fake_server ~sim ~net ~a:(addr 0) ~delay:(Time_ns.ms 10) () in
  let _ = fake_server ~sim ~net ~a:(addr 1) () in
  let fired = ref 0 in
  Reader.read reader ~pg:pg0
    ~candidates:[ (m 0, addr 0); (m 1, addr 1) ]
    ~block:(Block_id.of_int 0) ~as_of:(lsn 10) ~epochs
    ~callback:(fun _ -> incr fired);
  Sim.run sim;
  check_int "callback exactly once" 1 !fired;
  check_int "nothing outstanding" 0 (Reader.outstanding reader)

let () =
  Alcotest.run "reader"
    [
      ( "direct",
        [
          Alcotest.test_case "one IO when healthy" `Quick test_single_io_on_healthy;
          Alcotest.test_case "prefers fast node" `Quick test_prefers_fast_node;
          Alcotest.test_case "hedge rescues slow reply" `Quick
            test_hedge_fires_on_slow_reply;
          Alcotest.test_case "retry on error" `Quick test_retry_on_error_reply;
          Alcotest.test_case "all candidates fail" `Quick test_all_fail;
          Alcotest.test_case "no candidates" `Quick test_no_candidates;
          Alcotest.test_case "late duplicate ignored" `Quick
            test_late_duplicate_ignored;
        ] );
      ( "quorum baseline",
        [
          Alcotest.test_case "3x amplification" `Quick test_quorum_read_amplification;
          Alcotest.test_case "needs candidates" `Quick
            test_quorum_read_needs_enough_candidates;
        ] );
    ]
