(* Tests for the Aurora core engine: consistency points, boxcar policies,
   MVCC read views, buffer cache, commit queue, and the recovery math. *)
open Simcore
open Wal
open Quorum
module C = Aurora_core.Consistency
module Boxcar = Aurora_core.Boxcar
module Read_view = Aurora_core.Read_view
module Txn_table = Aurora_core.Txn_table
module Buffer_cache = Aurora_core.Buffer_cache
module Commit_queue = Aurora_core.Commit_queue
module Recovery = Aurora_core.Recovery

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let lsn = Lsn.of_int
let pg = Storage.Pg_id.of_int
let m = Member_id.of_int
let six = List.init 6 m

(* ---- Consistency ---- *)

let fresh_consistency n_pgs =
  let c = C.create () in
  for i = 0 to n_pgs - 1 do
    C.register_pg c (pg i) ~write_quorum:(Quorum_set.k_of 4 six)
  done;
  c

let test_consistency_figure3 () =
  (* Covered in depth by Harness.Experiments.E3; keep the core case here. *)
  let c = fresh_consistency 2 in
  for l = 101 to 108 do
    C.note_submitted c ~pg:(pg (l mod 2)) ~lsn:(lsn l) ~mtr_end:true
  done;
  let ack p s l = C.note_ack c ~pg:(pg p) ~seg:(m s) ~scl:(lsn l) in
  (* odd lsns -> pg 1, even -> pg 0 *)
  ack 1 0 103; ack 1 1 103; ack 1 2 103; ack 1 3 103; ack 1 4 107;
  ack 0 0 104; ack 0 1 104; ack 0 2 104; ack 0 3 104; ack 0 4 108;
  check_int "pgcl odd" 103 (Lsn.to_int (C.pgcl c (pg 1)));
  check_int "pgcl even" 104 (Lsn.to_int (C.pgcl c (pg 0)));
  check_int "vcl" 104 (Lsn.to_int (C.vcl c))

let test_consistency_quorum_threshold () =
  let c = fresh_consistency 1 in
  C.note_submitted c ~pg:(pg 0) ~lsn:(lsn 1) ~mtr_end:true;
  for s = 0 to 2 do
    C.note_ack c ~pg:(pg 0) ~seg:(m s) ~scl:(lsn 1)
  done;
  check_int "3 acks insufficient" 0 (Lsn.to_int (C.vcl c));
  C.note_ack c ~pg:(pg 0) ~seg:(m 3) ~scl:(lsn 1);
  check_int "4th ack completes" 1 (Lsn.to_int (C.vcl c))

let test_consistency_vdl_mtr () =
  let c = fresh_consistency 1 in
  (* A 3-record MTR: VDL must rest only on the final record. *)
  C.note_submitted c ~pg:(pg 0) ~lsn:(lsn 1) ~mtr_end:false;
  C.note_submitted c ~pg:(pg 0) ~lsn:(lsn 2) ~mtr_end:false;
  C.note_submitted c ~pg:(pg 0) ~lsn:(lsn 3) ~mtr_end:true;
  for s = 0 to 3 do
    C.note_ack c ~pg:(pg 0) ~seg:(m s) ~scl:(lsn 2)
  done;
  check_int "vcl mid-MTR" 2 (Lsn.to_int (C.vcl c));
  check_int "vdl waits for MTR end" 0 (Lsn.to_int (C.vdl c));
  for s = 0 to 3 do
    C.note_ack c ~pg:(pg 0) ~seg:(m s) ~scl:(lsn 3)
  done;
  check_int "vdl lands on MTR end" 3 (Lsn.to_int (C.vdl c))

let test_consistency_hooks_and_candidates () =
  let c = fresh_consistency 1 in
  let vcl_seen = ref [] in
  C.on_vcl_advance c (fun l -> vcl_seen := Lsn.to_int l :: !vcl_seen);
  C.note_submitted c ~pg:(pg 0) ~lsn:(lsn 1) ~mtr_end:true;
  C.note_submitted c ~pg:(pg 0) ~lsn:(lsn 2) ~mtr_end:true;
  for s = 0 to 3 do
    C.note_ack c ~pg:(pg 0) ~seg:(m s) ~scl:(lsn 2)
  done;
  Alcotest.(check (list int)) "hook fired once with final value" [ 2 ] !vcl_seen;
  check_int "candidates at 2" 4
    (Member_id.Set.cardinal (C.segments_at_or_above c ~pg:(pg 0) ~lsn:(lsn 2)));
  C.note_ack c ~pg:(pg 0) ~seg:(m 4) ~scl:(lsn 1);
  check_int "partial segment excluded" 4
    (Member_id.Set.cardinal (C.segments_at_or_above c ~pg:(pg 0) ~lsn:(lsn 2)))

let test_consistency_quorum_set_write () =
  (* Transitional quorum (Figure 5): ABCD satisfies both sides. *)
  let c = C.create () in
  let abcdeg = List.init 5 m @ [ m 6 ] in
  C.register_pg c (pg 0)
    ~write_quorum:
      (Quorum_set.all [ Quorum_set.k_of 4 six; Quorum_set.k_of 4 abcdeg ]);
  C.note_submitted c ~pg:(pg 0) ~lsn:(lsn 1) ~mtr_end:true;
  for s = 0 to 2 do
    C.note_ack c ~pg:(pg 0) ~seg:(m s) ~scl:(lsn 1)
  done;
  check_int "3 acks not enough" 0 (Lsn.to_int (C.vcl c));
  C.note_ack c ~pg:(pg 0) ~seg:(m 3) ~scl:(lsn 1);
  check_int "ABCD satisfies composite" 1 (Lsn.to_int (C.vcl c))

(* Property: VCL equals the reference computation (largest prefix of the
   global submission order where each record's group reaches quorum). *)
let prop_consistency_reference =
  QCheck.Test.make ~name:"VCL matches reference under random ack schedules"
    ~count:150
    QCheck.(pair (int_range 1 60) (int_range 0 100000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let c = fresh_consistency 2 in
      let assignment = Array.init n (fun _ -> Rng.int rng 2) in
      for i = 0 to n - 1 do
        C.note_submitted c ~pg:(pg assignment.(i)) ~lsn:(lsn (i + 1)) ~mtr_end:true
      done;
      (* Random per-segment SCLs (each segment acked a random prefix of its
         group's records). *)
      let scls = Array.make_matrix 2 6 0 in
      for p = 0 to 1 do
        for s = 0 to 5 do
          let v = Rng.int rng (n + 1) in
          scls.(p).(s) <- v;
          C.note_ack c ~pg:(pg p) ~seg:(m s) ~scl:(lsn v)
        done
      done;
      (* Reference: record i durable iff >=4 segments of its group have
         scl >= i+1; VCL = largest prefix fully durable. *)
      let durable i =
        let p = assignment.(i) in
        let count = ref 0 in
        for s = 0 to 5 do
          if scls.(p).(s) >= i + 1 then incr count
        done;
        !count >= 4
      in
      let rec prefix i = if i < n && durable i then prefix (i + 1) else i in
      Lsn.to_int (C.vcl c) = prefix 0)

(* ---- Boxcar ---- *)

let mk_boxcar sim policy =
  let flushed = ref [] in
  let b =
    Boxcar.create ~sim ~policy ~flush:(fun records ->
        flushed := List.map (fun (r : Log_record.t) -> Lsn.to_int r.lsn) records :: !flushed)
  in
  (b, fun () -> List.rev !flushed)

let rec_at l =
  Log_record.make ~lsn:(lsn l) ~prev_volume:Lsn.none ~prev_segment:Lsn.none
    ~prev_block:Lsn.none ~block:(Block_id.of_int 0) ~txn:(Txn_id.of_int 1)
    ~mtr_id:l ~mtr_end:true ~op:Log_record.Noop

let test_boxcar_immediate () =
  let sim = Sim.create () in
  let b, flushed = mk_boxcar sim Boxcar.Immediate in
  Boxcar.add b (rec_at 1);
  Boxcar.add b (rec_at 2);
  Alcotest.(check (list (list int))) "each alone" [ [ 1 ]; [ 2 ] ] (flushed ())

let test_boxcar_first_record () =
  let sim = Sim.create () in
  let b, flushed = mk_boxcar sim (Boxcar.First_record (Time_ns.us 20)) in
  Boxcar.add b (rec_at 1);
  (* Arrives while the async send is pending: rides along. *)
  ignore (Sim.schedule sim ~delay:(Time_ns.us 10) (fun () -> Boxcar.add b (rec_at 2)));
  (* Arrives after the send fired: next boxcar. *)
  ignore (Sim.schedule sim ~delay:(Time_ns.us 50) (fun () -> Boxcar.add b (rec_at 3)));
  Sim.run sim;
  Alcotest.(check (list (list int))) "packed then fresh" [ [ 1; 2 ]; [ 3 ] ] (flushed ());
  check_bool "mean batch" true (Boxcar.mean_batch_size b = 1.5)

let test_boxcar_timeout_policy () =
  let sim = Sim.create () in
  let b, flushed =
    mk_boxcar sim (Boxcar.Timeout_boxcar { timeout = Time_ns.ms 1; max_records = 3 })
  in
  (* Fill to max: flushes immediately without waiting. *)
  Boxcar.add b (rec_at 1);
  Boxcar.add b (rec_at 2);
  Boxcar.add b (rec_at 3);
  check_int "flushed at capacity" 1 (List.length (flushed ()));
  check_int "at time zero" 0 (Sim.now sim);
  (* A lone record waits for the timer. *)
  Boxcar.add b (rec_at 4);
  Sim.run sim;
  check_int "timer fired" (Time_ns.ms 1) (Sim.now sim);
  Alcotest.(check (list (list int))) "both batches" [ [ 1; 2; 3 ]; [ 4 ] ] (flushed ())

let test_boxcar_flush_now () =
  let sim = Sim.create () in
  let b, flushed = mk_boxcar sim (Boxcar.First_record (Time_ns.ms 10)) in
  Boxcar.add b (rec_at 1);
  Boxcar.flush_now b;
  check_int "flushed" 1 (List.length (flushed ()));
  Sim.run sim;
  check_int "timer cancelled, no double flush" 1 (List.length (flushed ()))

(* ---- Txn_table & Read_view ---- *)

let test_txn_table () =
  let t = Txn_table.create () in
  let a = Txn_table.begin_txn t in
  let b = Txn_table.begin_txn t in
  check_bool "active" true (Txn_table.is_active t a);
  Txn_table.mark_committed t a ~scn:(lsn 10);
  Txn_table.mark_aborted t b;
  Alcotest.(check (option int)) "scn" (Some 10)
    (Option.map Lsn.to_int (Txn_table.commit_scn t a));
  Alcotest.(check (option int)) "aborted has none" None
    (Option.map Lsn.to_int (Txn_table.commit_scn t b));
  check_int "no active" 0 (Txn_table.active_count t);
  check_int "commits since 5" 1 (List.length (Txn_table.commits_since t (lsn 5)));
  check_int "commits since 10" 0 (List.length (Txn_table.commits_since t (lsn 10)))

let version ~l ~t value =
  { Storage.Block_store.value = Some value; txn = Txn_id.of_int t; lsn = lsn l }

let test_read_view_visibility () =
  let tbl = Txn_table.create () in
  let t1 = Txn_table.begin_txn tbl in
  let t2 = Txn_table.begin_txn tbl in
  Txn_table.mark_committed tbl t1 ~scn:(lsn 5);
  (* t2 stays active. *)
  let commit_scn x = Txn_table.commit_scn tbl x in
  let chain =
    [ version ~l:8 ~t:2 "uncommitted"; version ~l:3 ~t:1 "committed" ]
  in
  let view = Read_view.make ~as_of:(lsn 10) () in
  Alcotest.(check (option string)) "skips active txn" (Some "committed")
    (Read_view.value view ~commit_scn chain);
  (* The writing transaction sees its own write. *)
  let own = Read_view.make ~as_of:(lsn 10) ~owner:t2 () in
  Alcotest.(check (option string)) "own write visible" (Some "uncommitted")
    (Read_view.value own ~commit_scn chain);
  (* A view before the commit SCN must not see it. *)
  let early = Read_view.make ~as_of:(lsn 4) () in
  Alcotest.(check (option string)) "pre-commit view blind" None
    (Read_view.value early ~commit_scn chain)

let test_read_view_delete () =
  let tbl = Txn_table.create () in
  let t1 = Txn_table.begin_txn tbl in
  Txn_table.mark_committed tbl t1 ~scn:(lsn 6);
  let commit_scn x = Txn_table.commit_scn tbl x in
  let chain =
    [
      { Storage.Block_store.value = None; txn = t1; lsn = lsn 5 };
      version ~l:2 ~t:1 "old";
    ]
  in
  let view = Read_view.make ~as_of:(lsn 10) () in
  Alcotest.(check (option string)) "visible delete = absent" None
    (Read_view.value view ~commit_scn chain)

(* ---- Buffer cache ---- *)

let put_record ~l ~block key value =
  Log_record.make ~lsn:(lsn l) ~prev_volume:Lsn.none ~prev_segment:Lsn.none
    ~prev_block:Lsn.none ~block:(Block_id.of_int block) ~txn:(Txn_id.of_int 1)
    ~mtr_id:l ~mtr_end:true ~op:(Log_record.Put { key; value })

let test_cache_wal_rule () =
  let cache = Buffer_cache.create ~capacity:2 in
  (* Three dirty blocks, VDL at 0: nothing evictable, cache stays oversized. *)
  Buffer_cache.apply cache (put_record ~l:1 ~block:0 "a" "1") ~vdl:Lsn.none;
  Buffer_cache.apply cache (put_record ~l:2 ~block:1 "b" "2") ~vdl:Lsn.none;
  Buffer_cache.apply cache (put_record ~l:3 ~block:2 "c" "3") ~vdl:Lsn.none;
  check_int "WAL rule blocks eviction" 3 (Buffer_cache.size cache);
  check_bool "blocked recorded" true ((Buffer_cache.stats cache).eviction_blocked > 0);
  (* VDL covers everything: pressure now shrinks to capacity. *)
  Buffer_cache.evict_pressure cache ~vdl:(lsn 3);
  check_int "evicted to capacity" 2 (Buffer_cache.size cache)

let test_cache_lru () =
  let cache = Buffer_cache.create ~capacity:2 in
  Buffer_cache.apply cache (put_record ~l:1 ~block:0 "a" "1") ~vdl:(lsn 10);
  Buffer_cache.apply cache (put_record ~l:2 ~block:1 "b" "2") ~vdl:(lsn 10);
  (* Touch block 0 so block 1 is the LRU victim. *)
  ignore (Buffer_cache.read cache (Block_id.of_int 0) ~key:"a");
  Buffer_cache.apply cache (put_record ~l:3 ~block:2 "c" "3") ~vdl:(lsn 10);
  check_bool "lru evicted" false (Buffer_cache.contains cache (Block_id.of_int 1));
  check_bool "recently used kept" true (Buffer_cache.contains cache (Block_id.of_int 0))

let test_cache_partial_vs_complete () =
  let cache = Buffer_cache.create ~capacity:4 in
  Buffer_cache.apply cache (put_record ~l:1 ~block:0 "a" "1") ~vdl:(lsn 10);
  (* Blind-write block: authoritative for "a", not for "zz". *)
  (match Buffer_cache.read cache (Block_id.of_int 0) ~key:"zz" with
  | Buffer_cache.Partial [] -> ()
  | _ -> Alcotest.fail "expected Partial []");
  (* Install a storage image: now authoritative. *)
  Buffer_cache.install cache
    {
      Storage.Protocol.image_block = Block_id.of_int 0;
      image_as_of = lsn 5;
      image_entries = [ ("a", [ version ~l:1 ~t:1 "1" ]) ];
    }
    ~vdl:(lsn 10);
  (match Buffer_cache.read cache (Block_id.of_int 0) ~key:"zz" with
  | Buffer_cache.Hit [] -> ()
  | _ -> Alcotest.fail "expected authoritative empty");
  match Buffer_cache.read cache (Block_id.of_int 0) ~key:"a" with
  | Buffer_cache.Hit [ _ ] -> ()
  | _ -> Alcotest.fail "expected single version"

let test_cache_install_preserves_local () =
  let cache = Buffer_cache.create ~capacity:4 in
  (* Local write above the image's as_of must survive the install. *)
  Buffer_cache.apply cache (put_record ~l:9 ~block:0 "a" "local") ~vdl:(lsn 20);
  Buffer_cache.install cache
    {
      Storage.Protocol.image_block = Block_id.of_int 0;
      image_as_of = lsn 5;
      image_entries = [ ("a", [ version ~l:3 ~t:2 "storage" ]) ];
    }
    ~vdl:(lsn 20);
  match Buffer_cache.read cache (Block_id.of_int 0) ~key:"a" with
  | Buffer_cache.Hit (newest :: _) ->
    Alcotest.(check (option string)) "local wins" (Some "local")
      newest.Storage.Block_store.value
  | _ -> Alcotest.fail "expected merged chain"

(* ---- Commit queue ---- *)

let test_commit_queue () =
  let q = Commit_queue.create () in
  let acked = ref [] in
  for i = 1 to 3 do
    Commit_queue.enqueue q ~txn:(Txn_id.of_int i) ~scn:(lsn (i * 10))
      ~on_ack:(fun () -> acked := i :: !acked)
  done;
  check_int "drain below 15" 1 (Commit_queue.drain q ~vcl:(lsn 15));
  Alcotest.(check (list int)) "first only" [ 1 ] (List.rev !acked);
  check_int "drain to 30" 2 (Commit_queue.drain q ~vcl:(lsn 30));
  Alcotest.(check (list int)) "in order" [ 1; 2; 3 ] (List.rev !acked);
  check_int "empty" 0 (Commit_queue.pending q)

(* ---- Recovery math ---- *)

let test_recovered_point () =
  check_int "max of scls" 7
    (Lsn.to_int
       (Recovery.recovered_point
          ~scls:[ (m 0, lsn 3); (m 1, lsn 7); (m 2, lsn 5) ]))

let chain_records assignment =
  (* Build volume-chain records 1..n with the given pg assignment. *)
  List.mapi
    (fun i p ->
      let l = i + 1 in
      Log_record.make ~lsn:(lsn l) ~prev_volume:(lsn (l - 1))
        ~prev_segment:Lsn.none ~prev_block:Lsn.none
        ~block:(Block_id.of_int p) (* block i lives in pg i for the test *)
        ~txn:(Txn_id.of_int 1) ~mtr_id:l ~mtr_end:true ~op:Log_record.Noop)
    assignment

let test_compute_vcl_figure4 () =
  (* Records 1..6 alternating pg0/pg1; pg0 durable to 5, pg1 durable to 4:
     the chain is complete through 5 but 6 (pg1) is beyond its point. *)
  let records = chain_records [ 0; 1; 0; 1; 0; 1 ] in
  let points p = if Storage.Pg_id.to_int p = 0 then lsn 5 else lsn 4 in
  let vcl, vdl =
    Recovery.compute_vcl ~anchor:Lsn.none ~points
      ~pg_of:(fun b -> Storage.Pg_id.of_int (Block_id.to_int b))
      records
  in
  check_int "vcl stops at first uncovered" 5 (Lsn.to_int vcl);
  check_int "vdl likewise" 5 (Lsn.to_int vdl)

let test_compute_vcl_gap () =
  (* A missing record (never fetched) must stop the walk even if later
     records are covered. *)
  let records =
    List.filter
      (fun (r : Log_record.t) -> Lsn.to_int r.lsn <> 3)
      (chain_records [ 0; 0; 0; 0; 0 ])
  in
  let vcl, _ =
    Recovery.compute_vcl ~anchor:Lsn.none
      ~points:(fun _ -> lsn 100)
      ~pg_of:(fun b -> Storage.Pg_id.of_int (Block_id.to_int b))
      records
  in
  check_int "stops at gap" 2 (Lsn.to_int vcl)

let test_compute_vcl_anchor () =
  (* Records below the anchor were GCed: the walk starts above it. *)
  let records =
    List.filter
      (fun (r : Log_record.t) -> Lsn.to_int r.lsn > 3)
      (chain_records [ 0; 0; 0; 0; 0; 0 ])
  in
  let vcl, _ =
    Recovery.compute_vcl ~anchor:(lsn 3)
      ~points:(fun _ -> lsn 100)
      ~pg_of:(fun b -> Storage.Pg_id.of_int (Block_id.to_int b))
      records
  in
  check_int "continues from anchor" 6 (Lsn.to_int vcl)

let prop_compute_vcl_never_exceeds_durable =
  QCheck.Test.make
    ~name:"recovered VCL covers exactly the durable gapless prefix" ~count:200
    QCheck.(triple (int_range 1 40) (int_range 0 40) (int_range 0 9999))
    (fun (n, point0, seed) ->
      let rng = Rng.create seed in
      let assignment = List.init n (fun _ -> Rng.int rng 2) in
      let records = chain_records assignment in
      let p0 = lsn (min point0 n) in
      let p1 = lsn (Rng.int rng (n + 1)) in
      let points p = if Storage.Pg_id.to_int p = 0 then p0 else p1 in
      let vcl, _ =
        Recovery.compute_vcl ~anchor:Lsn.none ~points
          ~pg_of:(fun b -> Storage.Pg_id.of_int (Block_id.to_int b))
          records
      in
      (* Reference: largest prefix where each record <= its pg's point. *)
      let rec prefix i =
        if i < n
           && Lsn.to_int (points (Storage.Pg_id.of_int (List.nth assignment i)))
              >= i + 1
        then prefix (i + 1)
        else i
      in
      Lsn.to_int vcl = prefix 0)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "aurora_core"
    [
      ( "consistency",
        [
          Alcotest.test_case "figure 3" `Quick test_consistency_figure3;
          Alcotest.test_case "quorum threshold" `Quick
            test_consistency_quorum_threshold;
          Alcotest.test_case "VDL on MTR boundaries" `Quick test_consistency_vdl_mtr;
          Alcotest.test_case "hooks + read candidates" `Quick
            test_consistency_hooks_and_candidates;
          Alcotest.test_case "composite write quorum" `Quick
            test_consistency_quorum_set_write;
          qc prop_consistency_reference;
        ] );
      ( "boxcar",
        [
          Alcotest.test_case "immediate" `Quick test_boxcar_immediate;
          Alcotest.test_case "first-record (aurora)" `Quick test_boxcar_first_record;
          Alcotest.test_case "timeout policy" `Quick test_boxcar_timeout_policy;
          Alcotest.test_case "flush_now" `Quick test_boxcar_flush_now;
        ] );
      ( "mvcc",
        [
          Alcotest.test_case "txn table" `Quick test_txn_table;
          Alcotest.test_case "visibility" `Quick test_read_view_visibility;
          Alcotest.test_case "deletes" `Quick test_read_view_delete;
        ] );
      ( "buffer_cache",
        [
          Alcotest.test_case "WAL eviction rule" `Quick test_cache_wal_rule;
          Alcotest.test_case "LRU order" `Quick test_cache_lru;
          Alcotest.test_case "partial vs complete" `Quick
            test_cache_partial_vs_complete;
          Alcotest.test_case "install preserves local" `Quick
            test_cache_install_preserves_local;
        ] );
      ("commit_queue", [ Alcotest.test_case "scn gating" `Quick test_commit_queue ]);
      ( "recovery",
        [
          Alcotest.test_case "recovered point = max scl" `Quick test_recovered_point;
          Alcotest.test_case "vcl walk (figure 4)" `Quick test_compute_vcl_figure4;
          Alcotest.test_case "vcl stops at gaps" `Quick test_compute_vcl_gap;
          Alcotest.test_case "vcl from anchor" `Quick test_compute_vcl_anchor;
          qc prop_compute_vcl_never_exceeds_durable;
        ] );
    ]
