(* Tests for the experiment harness: cluster assembly, report rendering,
   and the fast deterministic experiments. *)
open Simcore
open Quorum
module Cluster = Harness.Cluster
module E = Harness.Experiments
module Database = Aurora_core.Database

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_report_rendering () =
  let r = Harness.Report.create ~title:"t" ~columns:[ "a"; "bb" ] in
  Harness.Report.row r [ "x"; "y" ];
  Harness.Report.row r [ "longer"; "z" ];
  Harness.Report.note r "note";
  let s = Harness.Report.to_string r in
  check_bool "title" true (String.length s > 0 && String.sub s 0 4 = "== t");
  check_bool "has note" true (contains s "note");
  check_bool "aligned" true (contains s "longer  z")

let test_cluster_assembly () =
  let cluster = Cluster.create { Cluster.default_config with seed = 3; n_pgs = 3 } in
  check_int "18 storage nodes" 18 (List.length (Cluster.storage_nodes cluster));
  check_int "members per pg" 6
    (List.length (Cluster.members_of_pg cluster (Storage.Pg_id.of_int 0)));
  check_bool "writer open" true (Database.is_open (Cluster.db cluster));
  (* Deterministic: same seed, same first latency sample behaviour. *)
  let c2 = Cluster.create { Cluster.default_config with seed = 3; n_pgs = 3 } in
  let run c =
    let db = Cluster.db c in
    let txn = Database.begin_txn db in
    Database.put db ~txn ~key:"k" ~value:"v";
    let at = ref Time_ns.zero in
    Database.commit db ~txn (fun _ -> at := Sim.now (Cluster.sim c));
    Sim.run_until (Cluster.sim c) (Time_ns.sec 1);
    !at
  in
  check_int "deterministic replay" (run cluster) (run c2)

let test_e3_exact () =
  let r = E.E3.run () in
  let e1, e2, e3 = r.E.E3.expected in
  check_int "pg1" e1 r.E.E3.pg1_pgcl;
  check_int "pg2" e2 r.E.E3.pg2_pgcl;
  check_int "vcl" e3 r.E.E3.vcl

let test_scheme_rules_safe () =
  List.iter
    (fun layout ->
      let _, rule = E.scheme_rule layout in
      check_bool "overlap" true
        (Quorum_set.overlaps ~read:rule.Quorum_set.Rule.read
           ~write:rule.Quorum_set.Rule.write))
    [ Cluster.V6; Cluster.V3; Cluster.Tiered ]

let test_trace () =
  let tr = Trace.create ~capacity:3 () in
  Trace.record tr ~at:(Time_ns.ms 1) "dropped (disabled)";
  check_int "disabled = no-op" 0 (Trace.length tr);
  Trace.enable tr;
  for i = 1 to 5 do
    Trace.recordf tr ~at:(Time_ns.ms i) "event %d" i
  done;
  check_int "ring keeps capacity" 3 (Trace.length tr);
  (match Trace.events tr with
  | (_, m) :: _ -> Alcotest.(check string) "oldest survivor" "event 3" m
  | [] -> Alcotest.fail "empty");
  Trace.clear tr;
  check_int "cleared" 0 (Trace.length tr)

let () =
  Alcotest.run "harness"
    [
      ("report", [ Alcotest.test_case "rendering" `Quick test_report_rendering ]);
      ( "cluster",
        [ Alcotest.test_case "assembly + determinism" `Slow test_cluster_assembly ]
      );
      ( "experiments",
        [
          Alcotest.test_case "E3 figure exact" `Quick test_e3_exact;
          Alcotest.test_case "scheme rules safe" `Quick test_scheme_rules_safe;
        ] );
      ("trace", [ Alcotest.test_case "ring buffer" `Quick test_trace ]);
    ]
