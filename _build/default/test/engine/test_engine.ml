(* Engine-level behaviour tests: the writer database's client semantics
   (read-your-writes, aborts, deletes, snapshot anchoring) and the replica's
   stream handling, each on a small real cluster. *)
open Simcore
open Wal
module Database = Aurora_core.Database
module Replica = Aurora_core.Replica
module Buffer_cache = Aurora_core.Buffer_cache
module Cluster = Harness.Cluster

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_vopt = Alcotest.(check (option string))

let with_cluster ?(seed = 301) ?(n_pgs = 2) f =
  let cluster = Cluster.create { Cluster.default_config with seed; n_pgs } in
  f cluster (Cluster.sim cluster) (Cluster.db cluster)

let settle sim span = Sim.run_until sim (Time_ns.add (Sim.now sim) span)

let get_now sim db ?txn key =
  let r = ref None in
  Database.get db ?txn ~key (fun x -> r := Some x);
  settle sim (Time_ns.sec 2);
  match !r with
  | Some (Ok v) -> v
  | Some (Error e) -> Alcotest.failf "get %s failed: %s" key e
  | None -> Alcotest.failf "get %s never returned" key

(* ---- writer semantics ---- *)

let test_read_your_own_writes () =
  with_cluster (fun _ sim db ->
      let txn = Database.begin_txn db in
      Database.put db ~txn ~key:"k" ~value:"mine";
      (* Uncommitted: visible to the writing txn, invisible to others. *)
      check_vopt "own write visible" (Some "mine") (get_now sim db ~txn "k");
      check_vopt "others blind" None (get_now sim db "k");
      Database.commit db ~txn (fun _ -> ());
      settle sim (Time_ns.sec 1);
      check_vopt "visible after commit" (Some "mine") (get_now sim db "k"))

let test_abort_invisible () =
  with_cluster (fun _ sim db ->
      let t1 = Database.begin_txn db in
      Database.put db ~txn:t1 ~key:"k" ~value:"committed";
      Database.commit db ~txn:t1 (fun _ -> ());
      settle sim (Time_ns.sec 1);
      let t2 = Database.begin_txn db in
      Database.put db ~txn:t2 ~key:"k" ~value:"rolled-back";
      Database.abort db ~txn:t2;
      settle sim (Time_ns.sec 1);
      check_vopt "abort leaves prior value" (Some "committed")
        (get_now sim db "k"))

let test_delete_visible () =
  with_cluster (fun _ sim db ->
      let t1 = Database.begin_txn db in
      Database.put db ~txn:t1 ~key:"k" ~value:"v";
      Database.commit db ~txn:t1 (fun _ -> ());
      settle sim (Time_ns.sec 1);
      let t2 = Database.begin_txn db in
      Database.delete db ~txn:t2 ~key:"k";
      Database.commit db ~txn:t2 (fun _ -> ());
      settle sim (Time_ns.sec 1);
      check_vopt "deleted" None (get_now sim db "k"))

let test_read_only_commit_immediate () =
  with_cluster (fun _ sim db ->
      let txn = Database.begin_txn db in
      let acked = ref false in
      Database.get db ~txn ~key:"nothing" (fun _ -> ());
      settle sim (Time_ns.sec 1);
      Database.commit db ~txn (fun r -> acked := r = Ok ());
      (* No durability to wait for: ack is synchronous. *)
      check_bool "read-only commit immediate" true !acked)

let test_snapshot_does_not_see_later_commits () =
  (* A read served at an earlier VDL anchor must not observe a commit that
     lands after the anchor was taken: we pin the view by capturing vdl
     before a racing write, then read storage directly at that anchor. *)
  with_cluster (fun cluster sim db ->
      ignore cluster;
      let t1 = Database.begin_txn db in
      Database.put db ~txn:t1 ~key:"x" ~value:"old";
      Database.commit db ~txn:t1 (fun _ -> ());
      settle sim (Time_ns.sec 1);
      let anchor = Database.vdl db in
      let t2 = Database.begin_txn db in
      Database.put db ~txn:t2 ~key:"x" ~value:"new";
      Database.commit db ~txn:t2 (fun _ -> ());
      settle sim (Time_ns.sec 1);
      (* Visibility at the old anchor. *)
      let view = Aurora_core.Read_view.make ~as_of:anchor () in
      let commit_scn t = Aurora_core.Txn_table.commit_scn (Database.txn_table db) t in
      let block = Database.block_of_key db "x" in
      (match
         Buffer_cache.read (Database.cache db) block ~key:"x"
       with
      | Buffer_cache.Hit chain | Buffer_cache.Partial chain ->
        check_vopt "old anchor sees old value" (Some "old")
          (Aurora_core.Read_view.value view ~commit_scn chain)
      | Buffer_cache.Miss -> Alcotest.fail "block not cached");
      check_vopt "current view sees new value" (Some "new")
        (get_now sim db "x"))

let test_cache_hit_ratio_counts () =
  with_cluster (fun _ sim db ->
      let txn = Database.begin_txn db in
      Database.put db ~txn ~key:"hot" ~value:"v";
      Database.commit db ~txn (fun _ -> ());
      settle sim (Time_ns.sec 1);
      for _ = 1 to 10 do
        ignore (get_now sim db "hot")
      done;
      let m = Database.metrics db in
      check_bool "cache hits counted" true (m.Database.cache_hit_reads >= 10))

let test_mean_batch_size_metric () =
  with_cluster (fun _ sim db ->
      let txn = Database.begin_txn db in
      for i = 1 to 20 do
        Database.put db ~txn ~key:(Printf.sprintf "b%d" i) ~value:"v"
      done;
      Database.commit db ~txn (fun _ -> ());
      settle sim (Time_ns.sec 1);
      check_bool "batches packed" true (Database.mean_batch_size db > 1.))

(* ---- replica semantics ---- *)

let replica_get sim replica key =
  let r = ref None in
  Replica.get replica ~key (fun x -> r := Some x);
  settle sim (Time_ns.sec 2);
  match !r with
  | Some (Ok v) -> v
  | Some (Error e) -> Alcotest.failf "replica get failed: %s" e
  | None -> Alcotest.fail "replica get never returned"

let test_replica_sees_committed_writes () =
  with_cluster (fun cluster sim db ->
      let replica = Cluster.add_replica cluster in
      let txn = Database.begin_txn db in
      Database.put db ~txn ~key:"r" ~value:"v1";
      Database.commit db ~txn (fun _ -> ());
      settle sim (Time_ns.sec 1);
      check_vopt "replica reads committed value" (Some "v1")
        (replica_get sim replica "r");
      check_bool "anchor advanced" true (Lsn.to_int (Replica.vdl_seen replica) > 0);
      check_bool "commit known via notifications" true
        (Replica.committed replica txn <> None))

let test_replica_does_not_see_uncommitted () =
  with_cluster (fun cluster sim db ->
      let replica = Cluster.add_replica cluster in
      let t0 = Database.begin_txn db in
      Database.put db ~txn:t0 ~key:"warm" ~value:"w";
      Database.commit db ~txn:t0 (fun _ -> ());
      settle sim (Time_ns.sec 1);
      (* An open transaction's writes stream nowhere useful: the replica
         must not show them. *)
      let t1 = Database.begin_txn db in
      Database.put db ~txn:t1 ~key:"u" ~value:"dirty";
      settle sim (Time_ns.sec 1);
      check_vopt "uncommitted invisible at replica" None
        (replica_get sim replica "u"))

let test_replica_stale_stream_dropped () =
  with_cluster (fun cluster sim db ->
      let replica = Cluster.add_replica cluster in
      let txn = Database.begin_txn db in
      Database.put db ~txn ~key:"k" ~value:"v";
      Database.commit db ~txn (fun _ -> ());
      settle sim (Time_ns.sec 1);
      (* Simulate a new writer generation: the replica adopts the higher
         epoch, then the old writer's stream must be dropped. *)
      let net = Cluster.net cluster in
      Simnet.Net.send net ~src:(Database.addr db) ~dst:(Replica.addr replica)
        (Storage.Protocol.Redo_stream
           {
             chunks = [];
             vdl = Database.vdl db;
             commits = [];
             volume_epoch = Quorum.Epoch.of_int 5;
           });
      settle sim (Time_ns.ms 100);
      let before = (Replica.metrics replica).Replica.stale_streams_dropped in
      Simnet.Net.send net ~src:(Database.addr db) ~dst:(Replica.addr replica)
        (Storage.Protocol.Redo_stream
           {
             chunks = [];
             vdl = Database.vdl db;
             commits = [];
             volume_epoch = Quorum.Epoch.of_int 2;
           });
      settle sim (Time_ns.ms 100);
      check_int "stale stream dropped" (before + 1)
        (Replica.metrics replica).Replica.stale_streams_dropped)

let test_replica_feedback_floor () =
  with_cluster (fun cluster sim db ->
      let replica = Cluster.add_replica cluster in
      let txn = Database.begin_txn db in
      Database.put db ~txn ~key:"k" ~value:"v";
      Database.commit db ~txn (fun _ -> ());
      settle sim (Time_ns.sec 1);
      ignore db;
      (* The replica reports a read floor at (or below) its anchor. *)
      check_bool "floor <= anchor" true
        Lsn.(Replica.read_floor replica <= Replica.vdl_seen replica);
      check_bool "floor positive after traffic" true
        (Lsn.to_int (Replica.read_floor replica) > 0))

let () =
  Alcotest.run "engine"
    [
      ( "writer",
        [
          Alcotest.test_case "read your own writes" `Slow test_read_your_own_writes;
          Alcotest.test_case "abort invisible" `Slow test_abort_invisible;
          Alcotest.test_case "delete visible" `Slow test_delete_visible;
          Alcotest.test_case "read-only commit immediate" `Slow
            test_read_only_commit_immediate;
          Alcotest.test_case "snapshot anchoring" `Slow
            test_snapshot_does_not_see_later_commits;
          Alcotest.test_case "cache hit accounting" `Slow test_cache_hit_ratio_counts;
          Alcotest.test_case "boxcar packing metric" `Slow test_mean_batch_size_metric;
        ] );
      ( "replica",
        [
          Alcotest.test_case "sees committed writes" `Slow
            test_replica_sees_committed_writes;
          Alcotest.test_case "blind to uncommitted" `Slow
            test_replica_does_not_see_uncommitted;
          Alcotest.test_case "drops stale streams" `Slow
            test_replica_stale_stream_dropped;
          Alcotest.test_case "feedback floor" `Slow test_replica_feedback_floor;
        ] );
    ]
