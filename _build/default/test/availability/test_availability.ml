(* Tests for the Figure-1 fleet availability model. *)
open Simcore
open Quorum
module FM = Availability.Fleet_model

let check_bool = Alcotest.(check bool)

let rule_of scheme members = Membership.rule (Membership.create ~scheme members)

let v6 = Layout.aurora_v6 ()
let v6_rule = rule_of Layout.scheme_4_of_6 v6
let v3 = Layout.three_copies ()
let v3_rule = rule_of Layout.scheme_2_of_3 v3
let tiered = Layout.aurora_tiered ()
let tiered_rule = rule_of Layout.scheme_tiered tiered

let test_az_tolerance_v6 () =
  let t = FM.az_tolerance ~members:v6 ~rule:v6_rule in
  check_bool "write survives AZ" true t.FM.write_survives_az;
  check_bool "read survives AZ" true t.FM.read_survives_az;
  (* AZ+1 leaves 3 of 6: write (4/6) gone, read (3/6) intact — exactly the
     paper's design point. *)
  check_bool "write does not survive AZ+1" false t.FM.write_survives_az_plus_one;
  check_bool "read survives AZ+1" true t.FM.read_survives_az_plus_one

let test_az_tolerance_v3 () =
  let t = FM.az_tolerance ~members:v3 ~rule:v3_rule in
  check_bool "write survives AZ" true t.FM.write_survives_az;
  (* AZ+1 leaves 1 of 3: even the read quorum (2/3) is gone -> data loss. *)
  check_bool "read lost at AZ+1" false t.FM.read_survives_az_plus_one

let test_az_tolerance_tiered () =
  let t = FM.az_tolerance ~members:tiered ~rule:tiered_rule in
  check_bool "read survives AZ+1" true t.FM.read_survives_az_plus_one

let harsh =
  {
    FM.default_params with
    FM.segment_mttf = Time_ns.hours 240;
    repair_duration = Time_ns.minutes 30;
    az_mttf = Time_ns.hours (24 * 3650);
    (* effectively disable AZ outages for the analytic comparison *)
    horizon = Time_ns.hours (24 * 30);
    groups = 400;
  }

let test_mc_matches_analytic () =
  (* With AZ outages negligible, Monte Carlo unavailability should be in
     the neighbourhood of the iid analytic value. *)
  let an = FM.analytic ~params:harsh ~members:v3 ~rule:v3_rule in
  let mc = FM.run ~rng:(Rng.create 5) ~params:harsh ~members:v3 ~rule:v3_rule in
  check_bool "rho sane" true (an.FM.rho > 0. && an.FM.rho < 0.1);
  check_bool "same order of magnitude" true
    (mc.FM.write_unavail < an.FM.p_write_loss *. 5.
    && mc.FM.write_unavail > an.FM.p_write_loss /. 5.)

let test_ordering_46_beats_23 () =
  let an6 = FM.analytic ~params:harsh ~members:v6 ~rule:v6_rule in
  let an3 = FM.analytic ~params:harsh ~members:v3 ~rule:v3_rule in
  (* Independent-failure read-loss: 4/6 needs 4 concurrent failures, 2/3
     needs 2 — orders of magnitude apart. *)
  check_bool "read loss far rarer with 6 copies" true
    (an6.FM.p_read_loss < an3.FM.p_read_loss /. 100.)

let test_analytic_given_az_ordering () =
  let params = harsh in
  let _, r6 = FM.analytic_given_az ~params ~members:v6 ~rule:v6_rule in
  let _, r3 = FM.analytic_given_az ~params ~members:v3 ~rule:v3_rule in
  check_bool "conditional read loss worse for 2/3" true (r3 > r6 *. 10.)

let test_mc_counts_events () =
  let params =
    {
      harsh with
      FM.az_mttf = Time_ns.hours 120;
      az_outage = Time_ns.hours 2;
      groups = 100;
    }
  in
  let mc = FM.run ~rng:(Rng.create 9) ~params ~members:v6 ~rule:v6_rule in
  check_bool "saw member failures" true (mc.FM.member_failures > 0);
  check_bool "saw AZ onsets" true (mc.FM.az_onsets > 0);
  check_bool "survival counts bounded" true
    (mc.FM.az_read_survived <= mc.FM.az_onsets)

let () =
  Alcotest.run "availability"
    [
      ( "az_tolerance",
        [
          Alcotest.test_case "4/6 survives AZ+1 (read)" `Quick test_az_tolerance_v6;
          Alcotest.test_case "2/3 loses data at AZ+1" `Quick test_az_tolerance_v3;
          Alcotest.test_case "tiered survives AZ+1" `Quick test_az_tolerance_tiered;
        ] );
      ( "model",
        [
          Alcotest.test_case "MC ~ analytic" `Slow test_mc_matches_analytic;
          Alcotest.test_case "6 copies >> 3 copies" `Quick test_ordering_46_beats_23;
          Alcotest.test_case "conditional AZ loss ordering" `Quick
            test_analytic_given_az_ordering;
          Alcotest.test_case "MC event accounting" `Slow test_mc_counts_events;
        ] );
    ]
