(** MVCC read views (§3.1, §3.4).

    A read view "establishes a logical point in time before which a SQL
    statement must see all changes and after which it may not see any
    changes other than its own".  On the writer the anchor is the current
    VDL; on a replica it is the replica's view of the writer's VDL plus
    shipped commit history — the visibility rule is identical, which is
    what lets one module serve both:

    a version is visible iff it belongs to the view's own transaction
    (own writes are exempt from the anchor), or its LSN is at or below the
    anchor and its writing transaction committed with an SCN at or below
    the anchor. *)

open Wal

type t = {
  as_of : Lsn.t;  (** Anchor LSN (a VDL point). *)
  owner : Txn_id.t option;  (** A transaction sees its own writes. *)
}

val make : as_of:Lsn.t -> ?owner:Txn_id.t -> unit -> t

val visible :
  t -> commit_scn:(Txn_id.t -> Lsn.t option) -> Storage.Block_store.version -> bool

val pick :
  t ->
  commit_scn:(Txn_id.t -> Lsn.t option) ->
  Storage.Block_store.version list ->
  Storage.Block_store.version option
(** Newest visible version from a newest-first chain (the storage tier's
    out-of-place versions, §3.4).  A visible delete returns the deleting
    version itself ([value = None]); callers map that to absence. *)

val value :
  t ->
  commit_scn:(Txn_id.t -> Lsn.t option) ->
  Storage.Block_store.version list ->
  string option
(** [pick] collapsed to the user-level result. *)
