(** Asynchronous commit processing (§2.3).

    "When a commit is received, the worker thread writes the commit record,
    puts the transaction on a commit queue, and returns to a common task
    queue ... When a driver thread advances VCL, it wakes up a dedicated
    commit thread that scans the commit queue for SCNs below the new VCL
    and sends acknowledgements."  No thread ever stalls on a commit; there
    is no group-commit latency.

    In the simulator the "dedicated commit thread" is {!drain}, invoked
    from the consistency tracker's VCL-advance hook. *)

open Wal

type t

val create : unit -> t

val enqueue : t -> txn:Txn_id.t -> scn:Lsn.t -> on_ack:(unit -> unit) -> unit
(** Park a committing transaction until VCL covers its SCN.  SCNs arrive in
    allocation order, so the queue is FIFO. *)

val drain : t -> vcl:Lsn.t -> int
(** Acknowledge every parked commit with [scn <= vcl]; returns how many. *)

val pending : t -> int

val drop_all : t -> (Txn_id.t * Lsn.t) list
(** Crash: unacknowledged commits are abandoned (their fate is decided by
    recovery); returns what was parked, for accounting. *)
