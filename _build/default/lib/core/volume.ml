open Wal
open Quorum
module Pg_id = Storage.Pg_id

type pg = {
  id : Pg_id.t;
  mutable membership : Membership.t;
  mutable addr_of : Simnet.Addr.t Member_id.Map.t;
  mutable segment_tail : Lsn.t;
}

(* Block routing must be stable under volume growth: blocks written before
   a group was added keep their owner.  The block-id space is split into
   regions; each region stripes over the first [group_count] groups that
   existed when it was opened. *)
type region = { first_block : int; group_count : int }

type t = {
  mutable groups : pg list;
  mutable regions : region list; (* descending by first_block *)
  mutable volume_epoch : Epoch.t;
  mutable geometry_epoch : Epoch.t;
  alloc : Lsn.Allocator.t;
  mutable volume_tail : Lsn.t;
  block_tails : Lsn.t Block_id.Tbl.t;
}

let make_pg (id, membership, addrs) =
  {
    id;
    membership;
    addr_of =
      List.fold_left
        (fun acc (m, a) -> Member_id.Map.add m a acc)
        Member_id.Map.empty addrs;
    segment_tail = Lsn.none;
  }

let create groups =
  if groups = [] then invalid_arg "Volume.create: no protection groups";
  {
    groups = List.map make_pg groups;
    regions = [ { first_block = 0; group_count = List.length groups } ];
    volume_epoch = Epoch.initial;
    geometry_epoch = Epoch.initial;
    alloc = Lsn.Allocator.create ();
    volume_tail = Lsn.none;
    block_tails = Block_id.Tbl.create 256;
  }

let pgs t = t.groups
let pg_count t = List.length t.groups

let find_pg t id =
  match List.find_opt (fun g -> Pg_id.equal g.id id) t.groups with
  | Some g -> g
  | None -> invalid_arg "Volume.find_pg: unknown protection group"

let pg_of_block t block =
  let b = Block_id.to_int block in
  let region =
    match List.find_opt (fun r -> b >= r.first_block) t.regions with
    | Some r -> r
    | None -> invalid_arg "Volume.pg_of_block: negative block"
  in
  List.nth t.groups (b mod region.group_count)

let volume_epoch t = t.volume_epoch

let bump_volume_epoch t =
  t.volume_epoch <- Epoch.next t.volume_epoch;
  t.volume_epoch

let geometry_epoch t = t.geometry_epoch
let last_lsn t = Lsn.Allocator.last t.alloc

let epochs_for t pg =
  {
    Storage.Protocol.volume = t.volume_epoch;
    membership = Membership.epoch pg.membership;
  }

let rule pg = Membership.rule pg.membership

let roster pg =
  List.filter_map
    (fun (m : Membership.member) ->
      match Member_id.Map.find_opt m.id pg.addr_of with
      | Some addr -> Some (m.id, addr)
      | None -> None)
    (Membership.members pg.membership)

let make_record t ~block ~txn ~mtr_id ~mtr_end ~op =
  let pg = pg_of_block t block in
  let lsn = Lsn.Allocator.take t.alloc in
  let prev_block =
    match Block_id.Tbl.find_opt t.block_tails block with
    | Some l -> l
    | None -> Lsn.none
  in
  let record =
    Log_record.make ~lsn ~prev_volume:t.volume_tail
      ~prev_segment:pg.segment_tail ~prev_block ~block ~txn ~mtr_id ~mtr_end
      ~op
  in
  t.volume_tail <- lsn;
  pg.segment_tail <- lsn;
  Block_id.Tbl.replace t.block_tails block lsn;
  (record, pg)

let grow t ~new_blocks_from membership addrs =
  let id = Pg_id.of_int (List.length t.groups) in
  let g = make_pg (id, membership, addrs) in
  t.groups <- t.groups @ [ g ];
  let boundary = Block_id.to_int new_blocks_from in
  (match t.regions with
  | r :: _ when boundary <= r.first_block ->
    invalid_arg "Volume.grow: new region must start above existing ones"
  | _ -> ());
  t.regions <-
    { first_block = boundary; group_count = List.length t.groups } :: t.regions;
  t.geometry_epoch <- Epoch.next t.geometry_epoch;
  g

let begin_membership_change t pg_id ~suspect ~replacement ~replacement_addr =
  let g = find_pg t pg_id in
  match Membership.begin_change g.membership ~suspect ~replacement with
  | Error _ as e -> e
  | Ok m ->
    g.membership <- m;
    g.addr_of <- Member_id.Map.add replacement.Membership.id replacement_addr g.addr_of;
    Ok ()

let commit_membership_change t pg_id ~suspect =
  let g = find_pg t pg_id in
  match Membership.commit_change g.membership ~suspect with
  | Error _ as e -> e
  | Ok m ->
    g.membership <- m;
    g.addr_of <- Member_id.Map.remove suspect g.addr_of;
    Ok ()

let revert_membership_change t pg_id ~suspect =
  let g = find_pg t pg_id in
  match
    List.find_opt
      (fun (p : Membership.pending) -> Member_id.equal p.suspect suspect)
      (Membership.pendings g.membership)
  with
  | None -> Error "no pending change for this suspect"
  | Some pair -> (
    match Membership.revert_change g.membership ~suspect with
    | Error _ as e -> e
    | Ok m ->
      g.membership <- m;
      g.addr_of <- Member_id.Map.remove pair.replacement g.addr_of;
      Ok ())

let restore_tails t ~alloc_above ~volume_tail ~pg_tails ~block_tails =
  Lsn.Allocator.reset_above t.alloc alloc_above;
  t.volume_tail <- volume_tail;
  List.iter
    (fun (pg_id, tail) ->
      match List.find_opt (fun g -> Pg_id.equal g.id pg_id) t.groups with
      | Some g -> g.segment_tail <- tail
      | None -> ())
    pg_tails;
  Block_id.Tbl.reset t.block_tails;
  List.iter
    (fun (block, tail) -> Block_id.Tbl.replace t.block_tails block tail)
    block_tails
