open Wal

type status = Active | Committed of Lsn.t | Aborted

type t = {
  alloc : Txn_id.Allocator.t;
  table : (int, status) Hashtbl.t;
  mutable commits : (Txn_id.t * Lsn.t) list; (* newest first *)
  mutable last_scn : Lsn.t;
}

let create () =
  {
    alloc = Txn_id.Allocator.create ();
    table = Hashtbl.create 256;
    commits = [];
    last_scn = Lsn.none;
  }

let begin_txn t =
  let id = Txn_id.Allocator.take t.alloc in
  Hashtbl.replace t.table (Txn_id.to_int id) Active;
  id

let register t id = Hashtbl.replace t.table (Txn_id.to_int id) Active
let note_floor t id = Txn_id.Allocator.reset_above t.alloc id
let status t id = Hashtbl.find_opt t.table (Txn_id.to_int id)

let mark_committed t id ~scn =
  Hashtbl.replace t.table (Txn_id.to_int id) (Committed scn);
  t.commits <- (id, scn) :: t.commits;
  if Lsn.(scn > t.last_scn) then t.last_scn <- scn

let mark_aborted t id = Hashtbl.replace t.table (Txn_id.to_int id) Aborted

let commit_scn t id =
  match status t id with
  | Some (Committed scn) -> Some scn
  | Some Active | Some Aborted | None -> None

let is_active t id = status t id = Some Active

let active t =
  Hashtbl.fold
    (fun id st acc ->
      match st with
      | Active -> Txn_id.Set.add (Txn_id.of_int id) acc
      | Committed _ | Aborted -> acc)
    t.table Txn_id.Set.empty

let active_count t = Txn_id.Set.cardinal (active t)

let commits_since t mark =
  List.rev
    (List.filter (fun (_, scn) -> Lsn.(scn > mark)) t.commits)

let last_scn t = t.last_scn
