open Simcore

type policy =
  | Immediate
  | First_record of Time_ns.t
  | Timeout_boxcar of { timeout : Time_ns.t; max_records : int }

type t = {
  sim : Sim.t;
  policy : policy;
  flush : Wal.Log_record.t list -> unit;
  mutable buffer : Wal.Log_record.t list; (* newest first *)
  mutable timer : Sim.event_id option;
  mutable batches : int;
  mutable records : int;
}

let create ~sim ~policy ~flush =
  { sim; policy; flush; buffer = []; timer = None; batches = 0; records = 0 }

let do_flush t =
  (match t.timer with
  | Some id ->
    Sim.cancel t.sim id;
    t.timer <- None
  | None -> ());
  match t.buffer with
  | [] -> ()
  | buf ->
    t.buffer <- [];
    let batch = List.rev buf in
    t.batches <- t.batches + 1;
    t.records <- t.records + List.length batch;
    t.flush batch

let arm t delay =
  t.timer <-
    Some
      (Sim.schedule t.sim ~delay (fun () ->
           t.timer <- None;
           do_flush t))

let add t record =
  match t.policy with
  | Immediate ->
    t.buffer <- [ record ];
    do_flush t
  | First_record delay ->
    let was_empty = t.buffer = [] in
    t.buffer <- record :: t.buffer;
    if was_empty then arm t delay
  | Timeout_boxcar { timeout; max_records } ->
    let was_empty = t.buffer = [] in
    t.buffer <- record :: t.buffer;
    if List.length t.buffer >= max_records then do_flush t
    else if was_empty then arm t timeout

let flush_now = do_flush
let pending t = List.length t.buffer
let batches_flushed t = t.batches
let records_flushed t = t.records

let mean_batch_size t =
  if t.batches = 0 then 0. else float_of_int t.records /. float_of_int t.batches
