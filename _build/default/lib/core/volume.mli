(** The storage volume as seen by the writer instance.

    Protection groups concatenate to form the volume (§2.1); blocks are
    striped across groups by block id.  The volume owns the writer-local
    state that makes consensus unnecessary:

    - the single monotonic LSN allocator,
    - the three chain tails (volume-wide, per-group, per-block) stitched
      into every record (§2.2),
    - the volume epoch (crash-recovery fencing, §2.4),
    - the geometry epoch (volume growth, §4.1),
    - each group's membership state machine and member->address map.

    It is deliberately passive: record construction and bookkeeping only.
    Sending, acking, and consistency tracking live in {!Database}. *)

open Wal
open Quorum

type pg = {
  id : Storage.Pg_id.t;
  mutable membership : Membership.t;
  mutable addr_of : Simnet.Addr.t Member_id.Map.t;
  mutable segment_tail : Lsn.t;  (** Last LSN routed to this group. *)
}

type t

val create :
  (Storage.Pg_id.t * Membership.t * (Member_id.t * Simnet.Addr.t) list) list ->
  t
(** @raise Invalid_argument on an empty group list. *)

val pgs : t -> pg list
val pg_count : t -> int
val find_pg : t -> Storage.Pg_id.t -> pg
val pg_of_block : t -> Block_id.t -> pg
val volume_epoch : t -> Epoch.t
val bump_volume_epoch : t -> Epoch.t
val geometry_epoch : t -> Epoch.t
val last_lsn : t -> Lsn.t
val epochs_for : t -> pg -> Storage.Protocol.epochs

val rule : pg -> Quorum_set.Rule.t
(** Current composite quorum rule (varies with membership epoch). *)

val roster : pg -> (Member_id.t * Simnet.Addr.t) list
(** Every member currently involved (including in-flight replacements),
    with its network address — the write fan-out set. *)

val make_record :
  t ->
  block:Block_id.t ->
  txn:Txn_id.t ->
  mtr_id:int ->
  mtr_end:bool ->
  op:Log_record.op ->
  Log_record.t * pg
(** Allocate the next LSN and build a fully chained record. *)

val grow :
  t ->
  new_blocks_from:Block_id.t ->
  Membership.t ->
  (Member_id.t * Simnet.Addr.t) list ->
  pg
(** Append a protection group (10 GB of new address space in the paper) and
    increment the geometry epoch.  Routing is stable: blocks below
    [new_blocks_from] keep their existing group; blocks at or above it
    stripe over the grown group list.
    @raise Invalid_argument if the boundary is not above earlier regions. *)

val begin_membership_change :
  t ->
  Storage.Pg_id.t ->
  suspect:Member_id.t ->
  replacement:Membership.member ->
  replacement_addr:Simnet.Addr.t ->
  (unit, string) result

val commit_membership_change :
  t -> Storage.Pg_id.t -> suspect:Member_id.t -> (unit, string) result

val revert_membership_change :
  t -> Storage.Pg_id.t -> suspect:Member_id.t -> (unit, string) result

val restore_tails :
  t ->
  alloc_above:Lsn.t ->
  volume_tail:Lsn.t ->
  pg_tails:(Storage.Pg_id.t * Lsn.t) list ->
  block_tails:(Block_id.t * Lsn.t) list ->
  unit
(** Crash recovery: resume allocation above [alloc_above] (the truncation
    range's upper bound) and re-anchor all three chains at the recovered
    tails (the last surviving record per chain, §2.4). *)
