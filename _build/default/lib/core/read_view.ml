open Wal

type t = { as_of : Lsn.t; owner : Txn_id.t option }

let make ~as_of ?owner () = { as_of; owner }

let visible t ~commit_scn (v : Storage.Block_store.version) =
  match t.owner with
  (* A transaction always sees its own writes, even above the anchor:
     "after which it may not see any changes other than its own". *)
  | Some me when Txn_id.equal me v.txn -> true
  | Some _ | None -> (
    Lsn.(v.lsn <= t.as_of)
    &&
    match commit_scn v.txn with
    | Some scn -> Lsn.(scn <= t.as_of)
    | None -> false)

let rec pick t ~commit_scn = function
  | [] -> None
  | v :: rest -> if visible t ~commit_scn v then Some v else pick t ~commit_scn rest

let value t ~commit_scn versions =
  match pick t ~commit_scn versions with
  | None -> None
  | Some v -> v.value
