open Wal

type cached_block = {
  keys : (string, Storage.Block_store.version list) Hashtbl.t;
  mutable last_lsn : Lsn.t;
  mutable last_used : int;
  (* A block created by a blind write holds only the keys written since it
     entered the cache; only a storage image makes it authoritative for
     absent keys. *)
  mutable complete : bool;
}

type stats = { hits : int; misses : int; evictions : int; eviction_blocked : int }

type t = {
  capacity : int;
  table : cached_block Block_id.Tbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable eviction_blocked : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Buffer_cache.create: capacity";
  {
    capacity;
    table = Block_id.Tbl.create capacity;
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    eviction_blocked = 0;
  }

let touch t entry =
  t.clock <- t.clock + 1;
  entry.last_used <- t.clock

let contains t block = Block_id.Tbl.mem t.table block

type lookup =
  | Hit of Storage.Block_store.version list
  | Partial of Storage.Block_store.version list
  | Miss

let read t block ~key =
  match Block_id.Tbl.find_opt t.table block with
  | None ->
    t.misses <- t.misses + 1;
    Miss
  | Some entry ->
    touch t entry;
    let chain =
      match Hashtbl.find_opt entry.keys key with Some l -> l | None -> []
    in
    if entry.complete then begin
      t.hits <- t.hits + 1;
      Hit chain
    end
    else Partial chain

(* Evict LRU blocks whose redo is durable (last_lsn <= vdl) until at
   capacity.  Dirty blocks are skipped; if everything over capacity is
   dirty we stay oversized — the WAL rule wins over the memory target. *)
let evict_pressure t ~vdl =
  let excess () = Block_id.Tbl.length t.table - t.capacity in
  let continue = ref (excess () > 0) in
  while !continue do
    let victim =
      Block_id.Tbl.fold
        (fun block entry acc ->
          if Lsn.(entry.last_lsn <= vdl) then
            match acc with
            | Some (_, best) when best.last_used <= entry.last_used -> acc
            | _ -> Some (block, entry)
          else acc)
        t.table None
    in
    match victim with
    | Some (block, _) ->
      Block_id.Tbl.remove t.table block;
      t.evictions <- t.evictions + 1;
      continue := excess () > 0
    | None ->
      t.eviction_blocked <- t.eviction_blocked + 1;
      continue := false
  done

let entry_of t block =
  match Block_id.Tbl.find_opt t.table block with
  | Some e -> e
  | None ->
    let e =
      { keys = Hashtbl.create 8; last_lsn = Lsn.none; last_used = 0; complete = false }
    in
    Block_id.Tbl.add t.table block e;
    e

let apply_to_entry t entry (r : Log_record.t) =
  (match r.op with
  | Put { key; value } ->
    let prior =
      match Hashtbl.find_opt entry.keys key with Some l -> l | None -> []
    in
    Hashtbl.replace entry.keys key
      ({ Storage.Block_store.value = Some value; txn = r.txn; lsn = r.lsn }
      :: prior)
  | Delete { key } ->
    let prior =
      match Hashtbl.find_opt entry.keys key with Some l -> l | None -> []
    in
    Hashtbl.replace entry.keys key
      ({ Storage.Block_store.value = None; txn = r.txn; lsn = r.lsn } :: prior)
  | Commit | Abort | Noop -> ());
  if Lsn.(r.lsn > entry.last_lsn) then entry.last_lsn <- r.lsn;
  touch t entry

let apply t r ~vdl =
  let entry = entry_of t r.Log_record.block in
  apply_to_entry t entry r;
  evict_pressure t ~vdl

let apply_if_present t r ~vdl =
  match Block_id.Tbl.find_opt t.table r.Log_record.block with
  | None -> false
  | Some entry ->
    apply_to_entry t entry r;
    evict_pressure t ~vdl;
    true

let note_partial_hit t = t.hits <- t.hits + 1

let install t (img : Storage.Protocol.block_image) ~vdl =
  let entry = entry_of t img.image_block in
  entry.complete <- true;
  List.iter
    (fun (key, versions) ->
      (* Merge: keep whichever chain is longer/newer.  Locally written
         versions above the image's as_of must not be lost. *)
      let local =
        match Hashtbl.find_opt entry.keys key with Some l -> l | None -> []
      in
      let merged =
        let newer =
          List.filter
            (fun (v : Storage.Block_store.version) ->
              Lsn.(v.lsn > img.image_as_of))
            local
        in
        newer @ versions
      in
      Hashtbl.replace entry.keys key merged;
      List.iter
        (fun (v : Storage.Block_store.version) ->
          if Lsn.(v.lsn > entry.last_lsn) then entry.last_lsn <- v.lsn)
        merged)
    img.image_entries;
  touch t entry;
  evict_pressure t ~vdl

let last_modified t block =
  match Block_id.Tbl.find_opt t.table block with
  | None -> None
  | Some e -> Some e.last_lsn

let size t = Block_id.Tbl.length t.table
let capacity t = t.capacity

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    eviction_blocked = t.eviction_blocked;
  }

let drop_all t = Block_id.Tbl.reset t.table
