lib/core/database.mli: Block_id Boxcar Buffer_cache Consistency Lsn Member_id Membership Quorum Reader Recovery Simcore Simnet Storage Txn_id Txn_table Volume Wal
