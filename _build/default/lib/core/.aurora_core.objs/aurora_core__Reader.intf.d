lib/core/reader.mli: Block_id Lsn Member_id Quorum Simcore Simnet Storage Wal
