lib/core/consistency.ml: List Lsn Member_id Queue Quorum Quorum_set Storage Wal
