lib/core/buffer_cache.ml: Block_id Hashtbl List Log_record Lsn Storage Wal
