lib/core/buffer_cache.mli: Block_id Log_record Lsn Storage Wal
