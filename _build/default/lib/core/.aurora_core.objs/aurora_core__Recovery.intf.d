lib/core/recovery.mli: Block_id Log_record Lsn Member_id Quorum Simcore Simnet Storage Txn_id Volume Wal
