lib/core/replica.mli: Buffer_cache Database Lsn Reader Recovery Simcore Simnet Storage Txn_id Volume Wal
