lib/core/boxcar.mli: Simcore Wal
