lib/core/read_view.mli: Lsn Storage Txn_id Wal
