lib/core/txn_table.mli: Lsn Txn_id Wal
