lib/core/commit_queue.ml: List Lsn Queue Txn_id Wal
