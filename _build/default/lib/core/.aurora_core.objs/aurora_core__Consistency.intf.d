lib/core/consistency.mli: Lsn Member_id Quorum Quorum_set Storage Wal
