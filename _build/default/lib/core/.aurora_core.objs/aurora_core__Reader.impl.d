lib/core/reader.ml: Block_id Float Format Hashtbl Histogram List Lsn Member_id Quorum Rng Sim Simcore Simnet Stats Storage Time_ns Wal
