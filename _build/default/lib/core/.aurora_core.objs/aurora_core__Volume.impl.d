lib/core/volume.ml: Block_id Epoch List Log_record Lsn Member_id Membership Quorum Simnet Storage Wal
