lib/core/txn_table.ml: Hashtbl List Lsn Txn_id Wal
