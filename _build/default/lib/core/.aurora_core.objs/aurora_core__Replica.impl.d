lib/core/replica.ml: Block_id Buffer_cache Database Epoch Hashtbl Histogram List Log_record Lsn Membership Quorum Read_view Reader Rng Sim Simcore Simnet Storage String Time_ns Txn_table Volume Wal
