lib/core/read_view.ml: Lsn Storage Txn_id Wal
