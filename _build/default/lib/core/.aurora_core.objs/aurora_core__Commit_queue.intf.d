lib/core/commit_queue.mli: Lsn Txn_id Wal
