lib/core/volume.mli: Block_id Epoch Log_record Lsn Member_id Membership Quorum Quorum_set Simnet Storage Txn_id Wal
