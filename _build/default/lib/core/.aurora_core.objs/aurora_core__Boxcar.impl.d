lib/core/boxcar.ml: List Sim Simcore Time_ns Wal
