lib/core/recovery.ml: Block_id Epoch Hashtbl List Log_record Lsn Member_id Quorum Quorum_set Sim Simcore Simnet Storage Time_ns Txn_id Volume Wal
