(** Block buffer cache with the write-ahead-log eviction invariant.

    "Even though Aurora does not write blocks to storage from the database
    instance, it must support write-ahead logging by ensuring redo log
    records for dirty blocks have been made durable before discarding the
    block from cache" (§3.1).  Eviction never writes anything: a block is
    simply droppable once its newest modification LSN is at or below the
    current VDL, because the storage fleet can then always rematerialize
    it.  Blocks modified above VDL are pinned.

    Replicas use the same structure with [apply_if_present]: "they receive
    a physical redo log stream ... and use this to update only data blocks
    present in their local caches; redo records for uncached blocks can be
    discarded" (§3.2). *)

open Wal

type t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  eviction_blocked : int;  (** Eviction attempts refused by the WAL rule. *)
}

val create : capacity:int -> t
(** [capacity] in blocks.  @raise Invalid_argument unless positive. *)

val contains : t -> Block_id.t -> bool

(** Outcome of a cache lookup. *)
type lookup =
  | Hit of Storage.Block_store.version list
      (** Authoritative: the block was installed from a storage image; an
          empty chain really means "no such key at this block". *)
  | Partial of Storage.Block_store.version list
      (** The block entered the cache via blind writes and only holds keys
          written since: serve only if a visible version is present,
          otherwise fall through to storage. *)
  | Miss

val read : t -> Block_id.t -> key:string -> lookup

val note_partial_hit : t -> unit
(** Metrics: a [Partial] lookup that was good enough to serve. *)

val apply : t -> Log_record.t -> vdl:Lsn.t -> unit
(** Writer path: apply a redo record to the cache, creating the block entry
    if absent, then evict clean blocks if over capacity. *)

val apply_if_present : t -> Log_record.t -> vdl:Lsn.t -> bool
(** Replica path: apply only when the block is already cached.  Returns
    whether it was applied. *)

val install : t -> Storage.Protocol.block_image -> vdl:Lsn.t -> unit
(** Insert a block image fetched from storage (read-miss fill). *)

val last_modified : t -> Block_id.t -> Lsn.t option
val size : t -> int
val capacity : t -> int
val stats : t -> stats

val evict_pressure : t -> vdl:Lsn.t -> unit
(** Shrink to capacity, evicting least-recently-used clean blocks.  Called
    with the current VDL so the WAL rule can be enforced. *)

val drop_all : t -> unit
(** Crash: the cache is ephemeral state. *)
