(** Transaction status table.

    Owned by the writer instance (locking, transaction management and
    constraints all resolve at the database tier, §2.2); a reduced copy is
    maintained by each replica from shipped commit notifications (§3.4).
    Storage nodes never consult it — they accept every write. *)

open Wal

type status =
  | Active
  | Committed of Lsn.t  (** The commit record's LSN — the SCN. *)
  | Aborted

type t

val create : unit -> t

val begin_txn : t -> Txn_id.t
(** Allocate and register a new active transaction. *)

val register : t -> Txn_id.t -> unit
(** Register an externally allocated id as active (replica promotion /
    recovery bookkeeping). *)

val note_floor : t -> Txn_id.t -> unit
(** Never allocate ids at or below this one (recovery: ids seen in the
    recovered log must not be reused). *)

val status : t -> Txn_id.t -> status option
val mark_committed : t -> Txn_id.t -> scn:Lsn.t -> unit
val mark_aborted : t -> Txn_id.t -> unit

val commit_scn : t -> Txn_id.t -> Lsn.t option
(** [Some scn] iff the transaction committed. *)

val is_active : t -> Txn_id.t -> bool
val active : t -> Txn_id.Set.t
val active_count : t -> int

val commits_since : t -> Lsn.t -> (Txn_id.t * Lsn.t) list
(** Commit notifications with SCN strictly above the mark, in SCN order —
    the increment shipped down the replication stream (§3.4). *)

val last_scn : t -> Lsn.t
