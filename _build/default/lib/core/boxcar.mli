(** Write batching ("boxcarring") policies for the redo stream (§2.2).

    The classic trade-off: issue each record immediately (latency, poor
    packing) or wait to fill a boxcar (throughput, but early records wait
    for later ones or a timeout — "jitter is greatest under low load when
    the boxcar times out").  Aurora's answer: submit the asynchronous
    network operation as soon as the first record enters the buffer, but
    keep filling until the operation actually executes — no added latency,
    and packing comes free whenever the system is busy.

    One boxcar instance feeds one destination segment; the [flush] callback
    hands a packed batch to the network. *)

type policy =
  | Immediate
      (** No batching: every record is its own network operation. *)
  | First_record of Simcore.Time_ns.t
      (** Aurora's policy: the async send fires this long after the first
          record arrives (the local I/O-submission delay), carrying
          everything that accumulated meanwhile. *)
  | Timeout_boxcar of { timeout : Simcore.Time_ns.t; max_records : int }
      (** Traditional group commit: wait for [max_records] or [timeout],
          whichever first. *)

type t

val create :
  sim:Simcore.Sim.t -> policy:policy -> flush:(Wal.Log_record.t list -> unit) -> t

val add : t -> Wal.Log_record.t -> unit

val flush_now : t -> unit
(** Force out anything pending (used at commit and shutdown). *)

val pending : t -> int
val batches_flushed : t -> int
val records_flushed : t -> int

val mean_batch_size : t -> float
(** Packing efficiency metric for the E7 experiment. *)
