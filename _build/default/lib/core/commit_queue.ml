open Wal

type entry = { txn : Txn_id.t; scn : Lsn.t; on_ack : unit -> unit }

type t = { queue : entry Queue.t }

let create () = { queue = Queue.create () }

let enqueue t ~txn ~scn ~on_ack = Queue.push { txn; scn; on_ack } t.queue

let drain t ~vcl =
  let acked = ref 0 in
  let continue = ref true in
  while !continue do
    match Queue.peek_opt t.queue with
    | Some entry when Lsn.(entry.scn <= vcl) ->
      ignore (Queue.pop t.queue : entry);
      incr acked;
      entry.on_ack ()
    | Some _ | None -> continue := false
  done;
  !acked

let pending t = Queue.length t.queue

let drop_all t =
  let entries = Queue.fold (fun acc e -> (e.txn, e.scn) :: acc) [] t.queue in
  Queue.clear t.queue;
  List.rev entries
