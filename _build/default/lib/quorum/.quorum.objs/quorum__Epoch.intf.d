lib/quorum/epoch.mli: Format
