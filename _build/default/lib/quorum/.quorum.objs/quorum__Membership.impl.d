lib/quorum/membership.ml: Az Epoch Format List Member_id Quorum_set String
