lib/quorum/quorum_set.ml: Array Format List Member_id
