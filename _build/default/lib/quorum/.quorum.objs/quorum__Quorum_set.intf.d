lib/quorum/quorum_set.mli: Format Member_id
