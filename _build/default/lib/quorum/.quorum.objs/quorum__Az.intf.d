lib/quorum/az.mli: Format Map Set
