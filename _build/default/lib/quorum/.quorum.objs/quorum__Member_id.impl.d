lib/quorum/member_id.ml: Char Format Hashtbl Int List Map Printf Set String
