lib/quorum/az.ml: Format Int Map Set
