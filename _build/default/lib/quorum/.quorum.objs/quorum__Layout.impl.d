lib/quorum/layout.ml: Az List Member_id Membership
