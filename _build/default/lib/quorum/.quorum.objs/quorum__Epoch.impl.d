lib/quorum/epoch.ml: Format Int
