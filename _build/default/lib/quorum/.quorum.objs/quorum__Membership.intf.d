lib/quorum/membership.mli: Az Epoch Format Member_id Quorum_set
