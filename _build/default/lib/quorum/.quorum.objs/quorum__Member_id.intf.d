lib/quorum/member_id.mli: Format Hashtbl Map Set
