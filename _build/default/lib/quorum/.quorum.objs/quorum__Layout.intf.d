lib/quorum/layout.mli: Az Member_id Membership
