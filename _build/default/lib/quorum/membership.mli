(** Protection-group membership state machine (§4.1, Figure 5).

    Membership changes never swap member sets atomically.  To replace a
    suspect member F with a fresh member G, the group first moves to an
    epoch whose write quorum is [4/6 of ABCDEF AND 4/6 of ABCDEG] and whose
    read quorum is [3/6 of ABCDEF OR 3/6 of ABCDEG]; once G finishes
    hydrating (or F returns) a second epoch increment lands on ABCDEG (or
    back on ABCDEF).  Both steps are plain quorum writes: I/O continues
    throughout, additional failures compose (each adds another pending
    pair, doubling the variants exactly as in the paper's E→H example),
    and every step is reversible until resolved.

    This module tracks the member roster, pending (suspect, replacement)
    pairs, and the epoch, and derives the composite quorum rule for the
    current state.  Every transition re-validates the §2.1 overlap rules by
    exhaustive enumeration. *)

type segment_kind =
  | Full  (** Stores redo log and materialized data blocks. *)
  | Tail  (** Stores redo log only (§4.2 cost reduction). *)

type member = { id : Member_id.t; az : Az.t; kind : segment_kind }

(** How atoms are formed over a concrete member set. *)
type scheme =
  | Plain of { write_threshold : int; read_threshold : int }
      (** Classic k-of-n over all members, e.g. Aurora's 4/6 write, 3/6
          read, or 2/3-of-3 for the Figure 1 comparison. *)
  | Tiered of { mixed_write : int; mixed_read : int }
      (** §4.2 unlike members: write = [mixed_write/all OR all-fulls];
          read = [mixed_read/all AND 1-of-fulls]. *)

type t

type pending = { suspect : Member_id.t; replacement : Member_id.t }

val create : scheme:scheme -> member list -> t
(** Steady group at {!Epoch.initial}.
    @raise Invalid_argument if the derived quorum rule violates §2.1 or
    member ids repeat. *)

val epoch : t -> Epoch.t
val scheme : t -> scheme

val members : t -> member list
(** All members the group currently involves, including in-flight
    replacements, in id order. *)

val member_ids : t -> Member_id.Set.t
val find_member : t -> Member_id.t -> member option
val pendings : t -> pending list

val variants : t -> Member_id.Set.t list
(** The candidate final member sets (Figure 5's ABCDEF / ABCDEG / ...). *)

val rule : t -> Quorum_set.Rule.t
(** Composite read/write quorum rule for the current epoch. *)

val is_steady : t -> bool

val begin_change :
  t -> suspect:Member_id.t -> replacement:member -> (t, string) result
(** Start replacing [suspect]: epoch+1, dual quorum.  Fails if [suspect] is
    not an active member, is already under replacement, or [replacement]'s
    id is already in use.  The replacement must have the suspect's
    [kind] (a tail segment repairs into a tail slot). *)

val commit_change : t -> suspect:Member_id.t -> (t, string) result
(** Finish: drop [suspect], keep its replacement; epoch+1. *)

val revert_change : t -> suspect:Member_id.t -> (t, string) result
(** Abandon: keep [suspect] (it came back), drop the replacement;
    epoch+1. *)

val change_scheme : t -> scheme:scheme -> member list -> (t, string) result
(** Wholesale re-formation under a new scheme/member roster (e.g. moving
    from 4/6 to 3/4 during an extended AZ outage, §4.1); epoch+1.  Only
    legal from a steady state. *)

val pp : Format.formatter -> t -> unit
