open Membership

let mk id az kind =
  { id = Member_id.of_int id; az = Az.of_int az; kind }

let aurora_v6 ?(first_id = 0) () =
  [
    mk first_id 0 Full;
    mk (first_id + 1) 0 Full;
    mk (first_id + 2) 1 Full;
    mk (first_id + 3) 1 Full;
    mk (first_id + 4) 2 Full;
    mk (first_id + 5) 2 Full;
  ]

let aurora_tiered ?(first_id = 0) () =
  [
    mk first_id 0 Full;
    mk (first_id + 1) 0 Tail;
    mk (first_id + 2) 1 Full;
    mk (first_id + 3) 1 Tail;
    mk (first_id + 4) 2 Full;
    mk (first_id + 5) 2 Tail;
  ]

let three_copies ?(first_id = 0) () =
  [ mk first_id 0 Full; mk (first_id + 1) 1 Full; mk (first_id + 2) 2 Full ]

let four_copies_two_az ?(first_id = 0) () =
  [
    mk first_id 0 Full;
    mk (first_id + 1) 0 Full;
    mk (first_id + 2) 1 Full;
    mk (first_id + 3) 1 Full;
  ]

let scheme_4_of_6 = Plain { write_threshold = 4; read_threshold = 3 }
let scheme_2_of_3 = Plain { write_threshold = 2; read_threshold = 2 }
let scheme_3_of_4 = Plain { write_threshold = 3; read_threshold = 2 }
let scheme_tiered = Tiered { mixed_write = 4; mixed_read = 3 }

let group_4_of_6 () = create ~scheme:scheme_4_of_6 (aurora_v6 ())
let group_2_of_3 () = create ~scheme:scheme_2_of_3 (three_copies ())
let group_tiered () = create ~scheme:scheme_tiered (aurora_tiered ())

let members_in_az roster az =
  List.fold_left
    (fun acc (m : member) ->
      if Az.equal m.az az then Member_id.Set.add m.id acc else acc)
    Member_id.Set.empty roster
