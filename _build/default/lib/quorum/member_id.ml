type t = int

let of_int i = if i < 0 then invalid_arg "Member_id.of_int: negative" else i
let to_int t = t
let equal = Int.equal
let compare = Int.compare
let hash t = t

let to_string t =
  if t < 26 then String.make 1 (Char.chr (Char.code 'A' + t))
  else Printf.sprintf "M%d" t

let pp fmt t = Format.pp_print_string fmt (to_string t)

module Set = Set.Make (Int)
module Map = Map.Make (Int)

module Tbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash t = t
end)

let set_of_list l = Set.of_list (l :> int list)

let pp_set fmt s =
  Format.pp_print_string fmt
    (String.concat "" (List.map to_string (Set.elements s)))
