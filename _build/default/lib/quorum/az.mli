(** Availability Zones.

    An AZ is the largest unit of correlated failure the system must tolerate
    (§1): a fault domain whose members fail together under power, network, or
    deployment events.  Aurora places two segments of each protection group
    in each of three AZs. *)

type t = private int

val of_int : int -> t
(** Zero-based AZ index.  @raise Invalid_argument on negatives. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
(** Renders as "AZ1", "AZ2", ... (1-based, matching the paper's figures). *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
