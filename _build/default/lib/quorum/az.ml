type t = int

let of_int i = if i < 0 then invalid_arg "Az.of_int: negative" else i
let to_int t = t
let equal = Int.equal
let compare = Int.compare
let pp fmt t = Format.fprintf fmt "AZ%d" (t + 1)

module Set = Set.Make (Int)
module Map = Map.Make (Int)
